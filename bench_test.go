package tdpipe

// One benchmark per paper table and figure: each regenerates the
// corresponding result on the simulated substrate and reports the
// headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Scale is experiments.Quick() (4,000
// requests); run cmd/tdpipe -paper for paper scale.

import (
	"sync"
	"testing"

	"repro/internal/experiments"
)

var (
	benchEnvOnce sync.Once
	benchEnv     *experiments.Env
	benchEnvErr  error
)

func getBenchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	benchEnvOnce.Do(func() { benchEnv, benchEnvErr = experiments.NewEnv(experiments.Quick()) })
	if benchEnvErr != nil {
		b.Fatal(benchEnvErr)
	}
	return benchEnv
}

// BenchmarkTable1GPUs regenerates the hardware catalog (paper Table 1).
func BenchmarkTable1GPUs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.FormatTable1() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Models regenerates the model catalog (paper Table 2).
func BenchmarkTable2Models(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if experiments.FormatTable2() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig2Utilization regenerates the utilization-timeline
// comparison (paper Fig. 2) and reports both means.
func BenchmarkFig2Utilization(b *testing.B) {
	b.ReportAllocs()
	env := getBenchEnv(b)
	var r *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig2(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.TDPipeMean, "tdpipe-util-%")
	b.ReportMetric(100*r.BaselineMean, "pphb-util-%")
}

// BenchmarkFig6TPBreakdown regenerates the TP prefill compute/comm
// breakdown (paper Fig. 6) and reports the 4-GPU communication shares.
func BenchmarkFig6TPBreakdown(b *testing.B) {
	b.ReportAllocs()
	env := getBenchEnv(b)
	var rows []experiments.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig6(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.GPUs == 4 {
			b.ReportMetric(100*r.CommFrac, r.Node+"-comm-%")
		}
	}
}

// BenchmarkFig11Overall regenerates the overall performance grid (paper
// Fig. 11) and reports TD-Pipe's best speedups over TP+SB and PP+SB at
// 4 GPUs.
func BenchmarkFig11Overall(b *testing.B) {
	b.ReportAllocs()
	env := getBenchEnv(b)
	var cells []experiments.Fig11Cell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.Fig11(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxTP, maxPP, tdBest float64
	for _, combo := range experiments.Fig11Combos() {
		td, _ := experiments.FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "TD-Pipe")
		tp, _ := experiments.FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "TP+SB")
		pp, _ := experiments.FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "PP+SB")
		if td.TokensPerSec > tdBest {
			tdBest = td.TokensPerSec
		}
		if !tp.OOM && td.TokensPerSec/tp.TokensPerSec > maxTP {
			maxTP = td.TokensPerSec / tp.TokensPerSec
		}
		if !pp.OOM && td.TokensPerSec/pp.TokensPerSec > maxPP {
			maxPP = td.TokensPerSec / pp.TokensPerSec
		}
	}
	b.ReportMetric(tdBest, "tdpipe-tokens/s")
	b.ReportMetric(maxTP, "speedup-vs-TP+SB")
	b.ReportMetric(maxPP, "speedup-vs-PP+SB")
}

// BenchmarkFig12KVUsage regenerates the KV fluctuation trace (paper
// Fig. 12) and reports peak usage and phase switches.
func BenchmarkFig12KVUsage(b *testing.B) {
	b.ReportAllocs()
	env := getBenchEnv(b)
	var r *experiments.Fig12Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig12(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.Peak, "kv-peak-%")
	b.ReportMetric(float64(r.PhaseSwitches), "switches")
}

// BenchmarkFig13GreedyPrefill regenerates the prefill-to-decode
// switching ablation (paper Fig. 13).
func BenchmarkFig13GreedyPrefill(b *testing.B) {
	b.ReportAllocs()
	env := getBenchEnv(b)
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig13(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAdaptive(b, rows)
}

// BenchmarkFig14Predictor regenerates the prediction-quality study
// (paper Fig. 14 and §4.4.1 accuracies).
func BenchmarkFig14Predictor(b *testing.B) {
	b.ReportAllocs()
	env := getBenchEnv(b)
	var r *experiments.Fig14Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.Fig14(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	var accSum, err256 float64
	for i := range r.ModelNames {
		accSum += r.Accuracies[i]
		err256 += r.AccumErr[i][len(r.AccumErr[i])-2] // group size 256
	}
	b.ReportMetric(accSum/float64(len(r.ModelNames)), "mean-accuracy")
	b.ReportMetric(100*err256/float64(len(r.ModelNames)), "err-at-256-%")
}

// BenchmarkFig15WorkStealing regenerates the stealing ablation (paper
// Fig. 15) and reports the wi/wo gain.
func BenchmarkFig15WorkStealing(b *testing.B) {
	b.ReportAllocs()
	env := getBenchEnv(b)
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig15(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	var wi, wo float64
	for _, r := range rows {
		if r.Label == "wi" {
			wi += r.TokensPerSec
		} else {
			wo += r.TokensPerSec
		}
	}
	if wo > 0 {
		b.ReportMetric(wi/wo, "stealing-gain")
	}
}

// BenchmarkFig16IntensitySwitch regenerates the decode-to-prefill
// switching ablation (paper Fig. 16).
func BenchmarkFig16IntensitySwitch(b *testing.B) {
	b.ReportAllocs()
	env := getBenchEnv(b)
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig16(env)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportAdaptive(b, rows)
}

// reportAdaptive reports the adaptive (TD-Pipe) throughput and its
// ratio over the best fixed hyperparameter.
func reportAdaptive(b *testing.B, rows []experiments.AblationRow) {
	var adaptive, bestFixed float64
	for _, r := range rows {
		if r.Label == "TD-Pipe" {
			adaptive += r.TokensPerSec
		} else if r.TokensPerSec > bestFixed {
			bestFixed = r.TokensPerSec
		}
	}
	b.ReportMetric(adaptive, "tdpipe-tokens/s")
	if bestFixed > 0 {
		b.ReportMetric(adaptive/2/bestFixed, "vs-best-fixed")
	}
}
