// Command lintdocs checks that every exported identifier in the given
// package directories carries a godoc comment. It is the `make
// lint-docs` gate, now a thin front end over the internal/analysis
// framework's Docs analyzer: the same loader cmd/detlint uses parses
// the tree (in parse-only mode — the doc contract needs no type
// information), so both linters share one walk and one set of
// exemption rules (testdata, vendor, dot-directories, test files).
//
// Usage:
//
//	lintdocs [-r] dir [dir...]
//
// With -r each directory is walked recursively. Grouped declarations
// (const/var/type blocks) pass when the block itself is documented.
// Exit status 1 when any exported identifier is undocumented, listing
// each as "file:line: [docs] exported Name has no doc comment".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	recurse := flag.Bool("r", false, "walk directories recursively")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: lintdocs [-r] dir [dir...]")
		os.Exit(2)
	}
	loader := analysis.NewLoader(false)
	pkgs, err := loader.Load(*recurse, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintdocs:", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, []*analysis.Analyzer{analysis.Docs})
	wd, _ := os.Getwd()
	for _, f := range findings {
		path := f.Pos.Filename
		if wd != "" {
			if rel, err := filepath.Rel(wd, path); err == nil && !filepath.IsAbs(rel) {
				path = rel
			}
		}
		fmt.Printf("%s:%d: [%s] %s\n", path, f.Pos.Line, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lintdocs: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
