// Command lintdocs checks that every exported identifier in the given
// package directories carries a godoc comment. It is the `make
// lint-docs` gate: a go/ast walk with no configuration, so the doc
// contract ("exported means documented") cannot drift from whatever a
// third-party linter happens to enforce.
//
// Usage:
//
//	lintdocs [-r] dir [dir...]
//
// With -r each directory is walked recursively (skipping testdata and
// dot-directories). Test files are ignored. Grouped declarations
// (const/var/type blocks) pass when the block itself is documented.
// Exit status 1 when any exported identifier is undocumented, listing
// each as file:line: name.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	recurse := flag.Bool("r", false, "walk directories recursively")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: lintdocs [-r] dir [dir...]")
		os.Exit(2)
	}
	var dirs []string
	for _, root := range flag.Args() {
		if !*recurse {
			dirs = append(dirs, root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			dirs = append(dirs, path)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdocs:", err)
			os.Exit(2)
		}
	}

	var missing []string
	for _, dir := range dirs {
		m, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdocs:", err)
			os.Exit(2)
		}
		missing = append(missing, m...)
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		for _, m := range missing {
			fmt.Println(m)
		}
		fmt.Fprintf(os.Stderr, "lintdocs: %d exported identifiers without doc comments\n", len(missing))
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir and returns one
// "file:line: name" entry per undocumented exported identifier.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					// Methods on unexported types are unreachable from
					// other packages unless the type leaks through an
					// exported API; hold them to the same standard.
					report(d.Pos(), funcName(d))
				case *ast.GenDecl:
					if d.Doc != nil {
						continue // a block doc covers every spec inside
					}
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
								report(s.Pos(), s.Name.Name)
							}
						case *ast.ValueSpec:
							if s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(n.Pos(), n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return missing, nil
}

// funcName renders a method as Recv.Name and a function as Name.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}
