package main

import (
	"math"
	"strings"
	"testing"
)

func snap(entries map[string]float64) Snapshot {
	s := Snapshot{Benchmarks: map[string]Metrics{}}
	for name, ns := range entries {
		s.Benchmarks[name] = Metrics{NsPerOp: ns}
	}
	return s
}

func TestParseLine(t *testing.T) {
	name, m, ok := parseLine("BenchmarkAppend-8   1000000   105.3 ns/op   16 B/op   1 allocs/op")
	if !ok || name != "BenchmarkAppend" {
		t.Fatalf("parse = %q, %v", name, ok)
	}
	if m.NsPerOp != 105.3 || m.BytesPerOp != 16 || m.AllocsPerOp != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if _, _, ok := parseLine("PASS"); ok {
		t.Error("non-benchmark line parsed")
	}
}

// Compare is table-driven over the snapshot edge cases: regression
// detection, zero/missing baselines, and additions/removals — none of
// which may flip the exit status or produce Inf/NaN deltas.
func TestCompareSnapshots(t *testing.T) {
	cases := []struct {
		name           string
		old, new       map[string]float64
		wantRegressed  int
		wantContains   []string
		wantNoContains []string
	}{
		{
			name:          "regression detected",
			old:           map[string]float64{"BenchmarkA": 100},
			new:           map[string]float64{"BenchmarkA": 200},
			wantRegressed: 1,
			wantContains:  []string{"<< REGRESSION"},
		},
		{
			name:          "improvement passes",
			old:           map[string]float64{"BenchmarkA": 200},
			new:           map[string]float64{"BenchmarkA": 100},
			wantRegressed: 0,
			wantContains:  []string{"-50.0%"},
		},
		{
			name:           "zero old ns/op never divides",
			old:            map[string]float64{"BenchmarkA": 0},
			new:            map[string]float64{"BenchmarkA": 1e9},
			wantRegressed:  0,
			wantContains:   []string{"(no baseline)"},
			wantNoContains: []string{"Inf", "NaN", "REGRESSION"},
		},
		{
			name:          "additions reported, exit unaffected",
			old:           map[string]float64{"BenchmarkA": 100},
			new:           map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 5e9},
			wantRegressed: 0,
			wantContains:  []string{"(new)", "1 new, 0 removed"},
		},
		{
			name:          "removals reported, exit unaffected",
			old:           map[string]float64{"BenchmarkA": 100, "BenchmarkGone": 50},
			new:           map[string]float64{"BenchmarkA": 100},
			wantRegressed: 0,
			wantContains:  []string{"BenchmarkGone", "(removed)"},
		},
		{
			name:          "disjoint snapshots are all additions and removals",
			old:           map[string]float64{"BenchmarkOld": 50},
			new:           map[string]float64{"BenchmarkNew": 70},
			wantRegressed: 0,
			wantContains:  []string{"(new)", "(removed)", "1 new, 1 removed"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			got := compareSnapshots(&sb, snap(tc.old), snap(tc.new), 15, false)
			if got != tc.wantRegressed {
				t.Errorf("regressed = %d, want %d\n%s", got, tc.wantRegressed, sb.String())
			}
			for _, want := range tc.wantContains {
				if !strings.Contains(sb.String(), want) {
					t.Errorf("output missing %q:\n%s", want, sb.String())
				}
			}
			for _, avoid := range tc.wantNoContains {
				if strings.Contains(sb.String(), avoid) {
					t.Errorf("output contains %q:\n%s", avoid, sb.String())
				}
			}
		})
	}
}

func TestParseLineStepsPerSec(t *testing.T) {
	name, m, ok := parseLine("BenchmarkOnlineFleetParallel/workers=8   2   885749488 ns/op   3405600 steps/s   247419220 B/op   127769 allocs/op")
	if !ok || name != "BenchmarkOnlineFleetParallel/workers=8" {
		t.Fatalf("parse = %q, %v", name, ok)
	}
	if m.StepsPerSec != 3405600 {
		t.Errorf("StepsPerSec = %v, want 3405600", m.StepsPerSec)
	}
}

// steps/s deltas ride along in the compare table when both snapshots
// report the metric; missing steps/s on either side leaves the column
// blank instead of fabricating a delta.
func TestCompareStepsPerSecDelta(t *testing.T) {
	mk := func(ns, steps float64) Snapshot {
		return Snapshot{Benchmarks: map[string]Metrics{
			"BenchmarkA": {NsPerOp: ns, StepsPerSec: steps},
		}}
	}
	var sb strings.Builder
	compareSnapshots(&sb, mk(100, 1000), mk(100, 1200), 15, false)
	if !strings.Contains(sb.String(), "+20.0%") {
		t.Errorf("steps/s delta missing:\n%s", sb.String())
	}
	sb.Reset()
	compareSnapshots(&sb, mk(100, 0), mk(100, 1200), 15, false)
	if strings.Contains(sb.String(), "+Inf") || strings.Contains(sb.String(), "NaN") {
		t.Errorf("missing baseline steps/s produced a bogus delta:\n%s", sb.String())
	}
}

func TestCompareGeomean(t *testing.T) {
	oldSnap := snap(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 100})
	newSnap := snap(map[string]float64{"BenchmarkA": 50, "BenchmarkB": 200})
	var sb strings.Builder
	compareSnapshots(&sb, oldSnap, newSnap, 1000, true)
	// ratios 0.5 and 2.0 → geomean exactly 1.000
	if !strings.Contains(sb.String(), "geomean ns/op ratio: 1.000x over 2 shared benchmark(s)") {
		t.Errorf("geomean line missing or wrong:\n%s", sb.String())
	}
	sb.Reset()
	compareSnapshots(&sb, oldSnap, newSnap, 1000, false)
	if strings.Contains(sb.String(), "geomean") {
		t.Errorf("geomean printed without the flag:\n%s", sb.String())
	}
}

func TestPctFinite(t *testing.T) {
	if d := pct(100, 115); math.Abs(d-15) > 1e-9 {
		t.Errorf("pct(100,115) = %v", d)
	}
	if d := pct(100, 100); d != 0 {
		t.Errorf("pct(100,100) = %v", d)
	}
}
