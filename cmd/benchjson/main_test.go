package main

import (
	"math"
	"strings"
	"testing"
)

func snap(entries map[string]float64) Snapshot {
	s := Snapshot{Benchmarks: map[string]Metrics{}}
	for name, ns := range entries {
		s.Benchmarks[name] = Metrics{NsPerOp: ns}
	}
	return s
}

func TestParseLine(t *testing.T) {
	name, m, ok := parseLine("BenchmarkAppend-8   1000000   105.3 ns/op   16 B/op   1 allocs/op")
	if !ok || name != "BenchmarkAppend" {
		t.Fatalf("parse = %q, %v", name, ok)
	}
	if m.NsPerOp != 105.3 || m.BytesPerOp != 16 || m.AllocsPerOp != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if _, _, ok := parseLine("PASS"); ok {
		t.Error("non-benchmark line parsed")
	}
}

// Compare is table-driven over the snapshot edge cases: regression
// detection, zero/missing baselines, and additions/removals — none of
// which may flip the exit status or produce Inf/NaN deltas.
func TestCompareSnapshots(t *testing.T) {
	cases := []struct {
		name           string
		old, new       map[string]float64
		wantRegressed  int
		wantContains   []string
		wantNoContains []string
	}{
		{
			name:          "regression detected",
			old:           map[string]float64{"BenchmarkA": 100},
			new:           map[string]float64{"BenchmarkA": 200},
			wantRegressed: 1,
			wantContains:  []string{"<< REGRESSION"},
		},
		{
			name:          "improvement passes",
			old:           map[string]float64{"BenchmarkA": 200},
			new:           map[string]float64{"BenchmarkA": 100},
			wantRegressed: 0,
			wantContains:  []string{"-50.0%"},
		},
		{
			name:           "zero old ns/op never divides",
			old:            map[string]float64{"BenchmarkA": 0},
			new:            map[string]float64{"BenchmarkA": 1e9},
			wantRegressed:  0,
			wantContains:   []string{"(no baseline)"},
			wantNoContains: []string{"Inf", "NaN", "REGRESSION"},
		},
		{
			name:          "additions reported, exit unaffected",
			old:           map[string]float64{"BenchmarkA": 100},
			new:           map[string]float64{"BenchmarkA": 100, "BenchmarkNew": 5e9},
			wantRegressed: 0,
			wantContains:  []string{"(new)", "1 new, 0 removed"},
		},
		{
			name:          "removals reported, exit unaffected",
			old:           map[string]float64{"BenchmarkA": 100, "BenchmarkGone": 50},
			new:           map[string]float64{"BenchmarkA": 100},
			wantRegressed: 0,
			wantContains:  []string{"BenchmarkGone", "(removed)"},
		},
		{
			name:          "disjoint snapshots are all additions and removals",
			old:           map[string]float64{"BenchmarkOld": 50},
			new:           map[string]float64{"BenchmarkNew": 70},
			wantRegressed: 0,
			wantContains:  []string{"(new)", "(removed)", "1 new, 1 removed"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			got := compareSnapshots(&sb, snap(tc.old), snap(tc.new), 15)
			if got != tc.wantRegressed {
				t.Errorf("regressed = %d, want %d\n%s", got, tc.wantRegressed, sb.String())
			}
			for _, want := range tc.wantContains {
				if !strings.Contains(sb.String(), want) {
					t.Errorf("output missing %q:\n%s", want, sb.String())
				}
			}
			for _, avoid := range tc.wantNoContains {
				if strings.Contains(sb.String(), avoid) {
					t.Errorf("output contains %q:\n%s", avoid, sb.String())
				}
			}
		})
	}
}

func TestPctFinite(t *testing.T) {
	if d := pct(100, 115); math.Abs(d-15) > 1e-9 {
		t.Errorf("pct(100,115) = %v", d)
	}
	if d := pct(100, 100); d != 0 {
		t.Errorf("pct(100,100) = %v", d)
	}
}
