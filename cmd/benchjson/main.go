// Command benchjson converts `go test -bench` text output on stdin
// into a JSON benchmark snapshot on stdout, so CI can archive one
// machine-readable file per run and the performance trajectory
// accumulates as build artifacts.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson > BENCH_1.json
//	benchjson -compare old.json new.json
//	benchjson -compare -threshold 10 -geomean old.json new.json
//
// The snapshot maps benchmark name (GOMAXPROCS suffix stripped) to its
// metrics; the custom steps/s metric emitted by the fleet benchmarks
// is captured when present:
//
//	{"benchmarks": {"BenchmarkOnlineFleet": {"ns_per_op": 123456,
//	  "bytes_per_op": 7890, "allocs_per_op": 12, "steps_per_sec": 3.2e6}}}
//
// In -compare mode the two snapshots are diffed per benchmark and the
// exit status is non-zero when any shared benchmark regresses more
// than -threshold percent in ns/op — the advisory perf gate CI runs
// against the merge base. Benchmarks present in only one snapshot are
// reported explicitly ("(new)" / "(removed)"), as are entries with no
// usable baseline (old ns/op of zero); none of them can fail the gate,
// so adding or retiring benchmarks never breaks a PR.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's parsed result line. The memory fields are
// serialized even when zero: "0 allocs/op" is a measurement worth
// diffing against, not an absence. StepsPerSec is the custom
// simulator-throughput metric reported by the fleet benchmarks
// (b.ReportMetric(..., "steps/s")); most benchmarks don't emit it, so
// it is omitted when absent.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	StepsPerSec float64 `json:"steps_per_sec,omitempty"`
}

// Snapshot is the file layout: a map so downstream tooling can diff
// runs by name without caring about ordering.
type Snapshot struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// parseLine extracts a benchmark result from one output line, e.g.
//
//	BenchmarkAppend-8   1000000   105.3 ns/op   16 B/op   1 allocs/op
//
// The second field (iteration count) is skipped; remaining fields come
// in "<value> <unit>" pairs.
func parseLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Metrics{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	var m Metrics
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp = v
			seen = true
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		case "steps/s":
			m.StepsPerSec = v
		}
	}
	return name, m, seen
}

func readSnapshot(path string) (Snapshot, error) {
	var snap Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return snap, err
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		return snap, fmt.Errorf("%s: %w", path, err)
	}
	if len(snap.Benchmarks) == 0 {
		return snap, fmt.Errorf("%s: no benchmarks", path)
	}
	return snap, nil
}

// pct returns the relative change from old to new in percent. The
// caller must ensure old is non-zero; entries without a usable
// baseline are reported separately instead of risking a divide-by-zero
// turning the delta column into ±Inf/NaN.
func pct(old, new float64) float64 {
	return 100 * (new - old) / old
}

// compareSnapshots prints per-benchmark deltas to w and returns the
// number of regressions beyond threshold percent in ns/op. Only
// benchmarks present in both snapshots with a positive old ns/op can
// regress: new benchmarks, removed benchmarks and zero baselines are
// reported on their own lines and never affect the count, so the exit
// status tracks genuine regressions only.
func compareSnapshots(w io.Writer, oldSnap, newSnap Snapshot, threshold float64, geomean bool) (regressed int) {
	names := make([]string, 0, len(newSnap.Benchmarks))
	for name := range newSnap.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "%-55s %14s %14s %8s %10s %10s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs", "steps/s")
	added, baselineless := 0, 0
	logSum, logN := 0.0, 0
	for _, name := range names {
		n := newSnap.Benchmarks[name]
		o, ok := oldSnap.Benchmarks[name]
		switch {
		case !ok:
			added++
			fmt.Fprintf(w, "%-55s %14s %14.0f %8s %10.0f\n", name, "(new)", n.NsPerOp, "", n.AllocsPerOp)
		case o.NsPerOp <= 0:
			baselineless++
			fmt.Fprintf(w, "%-55s %14s %14.0f %8s %10.0f\n", name, "(no baseline)", n.NsPerOp, "", n.AllocsPerOp)
		default:
			d := pct(o.NsPerOp, n.NsPerOp)
			logSum += math.Log(n.NsPerOp / o.NsPerOp)
			logN++
			mark := ""
			if d > threshold {
				mark = "  << REGRESSION"
				regressed++
			}
			// Simulator throughput is diffed alongside ns/op when both
			// snapshots report it: a drop in steps/s without a matching
			// ns/op regression points at the workload, not the kernel.
			steps := ""
			if o.StepsPerSec > 0 && n.StepsPerSec > 0 {
				steps = fmt.Sprintf("%+9.1f%%", pct(o.StepsPerSec, n.StepsPerSec))
			}
			fmt.Fprintf(w, "%-55s %14.0f %14.0f %+7.1f%% %5.0f→%-5.0f %10s%s\n",
				name, o.NsPerOp, n.NsPerOp, d, o.AllocsPerOp, n.AllocsPerOp, steps, mark)
		}
	}
	removed := make([]string, 0)
	for name := range oldSnap.Benchmarks {
		if _, ok := newSnap.Benchmarks[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "%-55s (removed)\n", name)
	}
	if added+len(removed)+baselineless > 0 {
		fmt.Fprintf(w, "\n%d new, %d removed, %d without baseline (reported only; never fail the gate)\n",
			added, len(removed), baselineless)
	}
	if geomean && logN > 0 {
		// Geometric mean of per-benchmark new/old ns/op ratios over the
		// shared set — the one-number summary of the run (1.00 = flat,
		// <1 faster, >1 slower). The geomean weights every benchmark
		// equally regardless of absolute ns/op scale.
		ratio := math.Exp(logSum / float64(logN))
		fmt.Fprintf(w, "\ngeomean ns/op ratio: %.3fx over %d shared benchmark(s) (%+.1f%%)\n",
			ratio, logN, 100*(ratio-1))
	}
	if regressed > 0 {
		fmt.Fprintf(w, "\n%d benchmark(s) regressed more than %.0f%% in ns/op\n", regressed, threshold)
	} else {
		fmt.Fprintf(w, "\nno ns/op regression beyond %.0f%%\n", threshold)
	}
	return regressed
}

// compareFiles loads and diffs two snapshot files, returning the
// process exit code.
func compareFiles(oldPath, newPath string, threshold float64, geomean bool) int {
	oldSnap, err := readSnapshot(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newSnap, err := readSnapshot(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	if compareSnapshots(os.Stdout, oldSnap, newSnap, threshold, geomean) > 0 {
		return 1
	}
	return 0
}

func main() {
	compare := flag.Bool("compare", false, "compare two snapshot files (old.json new.json) instead of parsing stdin")
	threshold := flag.Float64("threshold", 15, "ns/op regression percentage that fails -compare")
	geomean := flag.Bool("geomean", false, "with -compare, print the geomean new/old ns/op ratio over shared benchmarks")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -compare [-threshold pct] [-geomean] old.json new.json")
			os.Exit(2)
		}
		os.Exit(compareFiles(flag.Arg(0), flag.Arg(1), *threshold, *geomean))
	}

	snap := Snapshot{Benchmarks: map[string]Metrics{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, m, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
