// Command benchjson converts `go test -bench` text output on stdin
// into a JSON benchmark snapshot on stdout, so CI can archive one
// machine-readable file per run and the performance trajectory
// accumulates as build artifacts.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... | benchjson > BENCH_1.json
//
// The output maps benchmark name (GOMAXPROCS suffix stripped) to its
// metrics:
//
//	{"benchmarks": {"BenchmarkOnlineFleet": {"ns_per_op": 123456,
//	  "bytes_per_op": 7890, "allocs_per_op": 12}}}
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metrics is one benchmark's parsed result line. The memory fields are
// serialized even when zero: "0 allocs/op" is a measurement worth
// diffing against, not an absence.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Snapshot is the file layout: a map so downstream tooling can diff
// runs by name without caring about ordering.
type Snapshot struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// parseLine extracts a benchmark result from one output line, e.g.
//
//	BenchmarkAppend-8   1000000   105.3 ns/op   16 B/op   1 allocs/op
//
// The second field (iteration count) is skipped; remaining fields come
// in "<value> <unit>" pairs.
func parseLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Metrics{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	var m Metrics
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsPerOp = v
			seen = true
		case "B/op":
			m.BytesPerOp = v
		case "allocs/op":
			m.AllocsPerOp = v
		}
	}
	return name, m, seen
}

func main() {
	snap := Snapshot{Benchmarks: map[string]Metrics{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if name, m, ok := parseLine(sc.Text()); ok {
			snap.Benchmarks[name] = m
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark results on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
