// Command tdpipe regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	tdpipe -exp fig11              # one experiment at quick scale
//	tdpipe -exp all -paper         # the full evaluation at paper scale
//	tdpipe -exp fig13 -requests 3000 -seed 7
//
// Experiments: table1 table2 fig2 fig6 fig11 fig12 fig13 fig14 fig15
// fig16 fleet online prefix disagg faults chaos autoscale all. "fleet" sweeps the
// data-parallel serving layer (replica count x dispatch policy) beyond
// the paper's single-engine evaluation; "online" sweeps open-loop
// Poisson offered load and reports TTFT/TPOT/E2E tails plus SLO
// goodput; "prefix" serves a shared-prefix trace under each dispatch
// policy and compares cache hit rates and TTFT against a no-cache
// control; "disagg" splits the fleet into prefill and decode pools
// with an explicit KV hand-off and sweeps the split ratio against a
// colocated control under bursty load; "faults" injects seeded replica
// crashes, stragglers and KV-link impairments and measures recovery
// (recompute vs periodic KV checkpointing) against the fault-free
// control; "chaos" compares correlated failure domains (rack/zone
// power and network outages over a fleet topology) against
// independent crashes at equal aggregate failure rate;
// "autoscale" serves a diurnal trace under static-peak,
// static-mean and elastic provisioning and reports the GPU-hours vs
// goodput frontier.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (table1,table2,fig2,fig6,fig11,fig12,fig13,fig14,fig15,fig16,fleet,online,prefix,disagg,faults,chaos,autoscale,all)")
		requests = flag.Int("requests", 0, "evaluation sample size (default: quick scale)")
		pool     = flag.Int("pool", 0, "corpus size (default: quick scale)")
		seed     = flag.Int64("seed", 1, "trace seed")
		paper    = flag.Bool("paper", false, "use paper-scale options (86,612-pair corpus, 5,000 requests)")
		workers  = flag.Int("workers", 0, "fleet simulation workers for the co-simulated experiments (0/1 sequential, -1 auto); results are byte-identical across counts")
	)
	flag.Parse()

	opts := experiments.Quick()
	if *paper {
		opts = experiments.Paper()
	}
	if *requests > 0 {
		opts.Requests = *requests
	}
	if *pool > 0 {
		opts.PoolSize = *pool
	}
	opts.Seed = *seed
	opts.Workers = *workers

	if err := run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "tdpipe:", err)
		os.Exit(1)
	}
}

func run(exp string, opts experiments.Options) error {
	names := strings.Split(exp, ",")
	if exp == "all" {
		names = []string{"table1", "table2", "fig2", "fig6", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "offload", "fleet", "online", "prefix", "disagg", "faults", "chaos", "autoscale"}
	}

	var env *experiments.Env
	getEnv := func() (*experiments.Env, error) {
		if env != nil {
			return env, nil
		}
		fmt.Printf("building corpus (%d pairs), training predictor, sampling %d requests...\n\n",
			opts.PoolSize, opts.Requests)
		var err error
		env, err = experiments.NewEnv(opts)
		return env, err
	}

	for _, name := range names {
		switch name {
		case "table1":
			fmt.Println(experiments.FormatTable1())
		case "table2":
			fmt.Println(experiments.FormatTable2())
		case "fig2":
			e, err := getEnv()
			if err != nil {
				return err
			}
			r, err := experiments.Fig2(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFig2(r))
		case "fig6":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Fig6(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFig6(rows))
		case "fig11":
			e, err := getEnv()
			if err != nil {
				return err
			}
			cells, err := experiments.Fig11(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFig11(cells))
		case "fig12":
			e, err := getEnv()
			if err != nil {
				return err
			}
			r, err := experiments.Fig12(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFig12(r))
		case "fig13":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Fig13(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatAblation("Figure 13: prefill-to-decode switching ablation", rows))
		case "fig14":
			e, err := getEnv()
			if err != nil {
				return err
			}
			r, err := experiments.Fig14(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFig14(r))
		case "fig15":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Fig15(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatAblation("Figure 15: inter-batch work stealing ablation", rows))
		case "fig16":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Fig16(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatAblation("Figure 16: decode-to-prefill switching ablation", rows))
		case "offload":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Offload(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatOffload(rows))
		case "fleet":
			e, err := getEnv()
			if err != nil {
				return err
			}
			cells, err := experiments.Fleet(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFleet(cells))
		case "online":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Online(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatOnline(rows))
		case "prefix":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Prefix(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatPrefix(rows))
		case "disagg":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Disagg(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatDisagg(rows))
		case "faults":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Faults(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatFaults(rows))
		case "chaos":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Chaos(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatChaos(rows))
		case "autoscale":
			e, err := getEnv()
			if err != nil {
				return err
			}
			rows, err := experiments.Autoscale(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatAutoscale(rows))
		case "sweep":
			e, err := getEnv()
			if err != nil {
				return err
			}
			pb, err := experiments.SweepPrefillBatch(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatSweep("Sweep: TD-Pipe prefill batch size (4xA100 + 70B)", pb))
			ct, err := experiments.SweepChunkTokens(e)
			if err != nil {
				return err
			}
			fmt.Println(experiments.FormatSweep("Sweep: PP+HB chunk token budget (4xA100 + 70B)", ct))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	return nil
}
