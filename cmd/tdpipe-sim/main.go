// Command tdpipe-sim runs a single simulated deployment and prints its
// report, optionally exporting timelines for external plotting.
//
// Usage:
//
//	tdpipe-sim -node A100 -model 70B -gpus 4 -sched tdpipe -requests 2000
//	tdpipe-sim -sched pp+hb -node L20 -model 32B -out run/   # CSV + JSON
//	tdpipe-sim -replicas 4 -policy predicted-cost            # fleet mode
//
// Schedulers: tdpipe, tp+sb, tp+hb, pp+sb, pp+hb, offload. With
// -replicas N > 1 the trace is sharded across N data-parallel TD-Pipe
// replicas under the -policy dispatch policy (round-robin, random,
// least-work, predicted-cost); fleet mode requires -sched tdpipe and
// exports only the aggregate run.json with -out.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	var (
		nodeName  = flag.String("node", "A100", "node: L20 or A100")
		modelName = flag.String("model", "70B", "model: 13B, 32B, 70B")
		gpus      = flag.Int("gpus", 4, "number of GPUs")
		sched     = flag.String("sched", "tdpipe", "scheduler: tdpipe, tp+sb, tp+hb, pp+sb, pp+hb, offload")
		requests  = flag.Int("requests", 2000, "number of requests")
		pool      = flag.Int("pool", 20000, "corpus size for predictor training")
		seed      = flag.Int64("seed", 1, "trace seed")
		outDir    = flag.String("out", "", "directory for CSV/JSON export (optional)")
		oracle    = flag.Bool("oracle", false, "use the oracle length predictor instead of the trained classifier")
		replicas  = flag.Int("replicas", 1, "data-parallel TD-Pipe replicas (fleet mode when > 1)")
		policy    = flag.String("policy", fleet.RoundRobin, "fleet dispatch policy: "+strings.Join(fleet.Names(), ", "))
	)
	flag.Parse()
	if err := run(*nodeName, *modelName, *gpus, *sched, *requests, *pool, *seed, *outDir, *oracle, *replicas, *policy); err != nil {
		fmt.Fprintln(os.Stderr, "tdpipe-sim:", err)
		os.Exit(1)
	}
}

func pickNode(name string) (hw.Node, error) {
	switch strings.ToUpper(name) {
	case "L20":
		return hw.L20, nil
	case "A100":
		return hw.A100, nil
	}
	return hw.Node{}, fmt.Errorf("unknown node %q (L20, A100)", name)
}

func pickModel(name string) (model.Spec, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "13B", "LLAMA2-13B", "LLAMA2-13B-CHAT":
		return model.Llama2_13B, nil
	case "32B", "QWEN2.5-32B", "QWEN2.5-32B-INSTRUCT":
		return model.Qwen2_5_32B, nil
	case "70B", "LLAMA2-70B", "LLAMA2-70B-CHAT":
		return model.Llama2_70B, nil
	}
	return model.Spec{}, fmt.Errorf("unknown model %q (13B, 32B, 70B)", name)
}

// trainedPredictor fits the classifier on the corpus's 60% historical
// split, the same recipe the single-engine path uses.
func trainedPredictor(pool []workload.Request) (core.LenPredictor, error) {
	train, _, _ := workload.Split(pool, 0.6, 0.2)
	return predictor.Train(train, predictor.DefaultTrainConfig())
}

// runFleet shards the sample across data-parallel TD-Pipe replicas and
// prints per-replica reports plus the merged fleet report.
func runFleet(node hw.Node, spec model.Spec, gpus, replicas int, policy string, pool, reqs []workload.Request, seed int64, outDir string, oracle bool) error {
	cfg := core.DefaultConfig(node, spec, gpus)
	if !oracle {
		clf, err := trainedPredictor(pool)
		if err != nil {
			return err
		}
		cfg.Predictor = clf
	}
	p, err := fleet.New(policy, fleet.Options{Seed: seed, Predictor: cfg.Predictor})
	if err != nil {
		return err
	}
	res, err := fleet.Run(cfg, replicas, p, reqs)
	if err != nil {
		return err
	}
	for i, rr := range res.Replicas {
		fmt.Printf("replica %d: %d reqs, %.1fs, %.0f tok/s out, util %.1f%%\n",
			i, rr.Report.Requests, rr.Report.Elapsed,
			rr.Report.OutputThroughput(), 100*rr.Report.MeanUtilization)
	}
	fmt.Println(res.Report)
	fmt.Printf("output throughput: %.0f tokens/s, total: %.0f tokens/s\n",
		res.Report.OutputThroughput(), res.Report.TotalThroughput())

	if outDir == "" {
		return nil
	}
	// Per-GPU timelines are per-replica simulations; the fleet export
	// covers the aggregate report.
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	j, err := os.Create(filepath.Join(outDir, "run.json"))
	if err != nil {
		return err
	}
	defer j.Close()
	if err := trace.WriteRunJSON(j, trace.Run{Report: res.Report}); err != nil {
		return err
	}
	fmt.Printf("exported aggregate report to %s\n", outDir)
	return nil
}

func run(nodeName, modelName string, gpus int, sched string, requests, poolSize int, seed int64, outDir string, oracle bool, replicas int, policy string) error {
	node, err := pickNode(nodeName)
	if err != nil {
		return err
	}
	spec, err := pickModel(modelName)
	if err != nil {
		return err
	}
	if requests > poolSize {
		poolSize = requests
	}
	pool, err := workload.Generate(workload.DefaultConfig(poolSize, seed))
	if err != nil {
		return err
	}
	reqs := workload.Sample(pool, requests, seed+1000)

	if replicas > 1 {
		if s := strings.ToLower(sched); s != "tdpipe" && s != "td-pipe" {
			return fmt.Errorf("fleet mode (-replicas %d) requires -sched tdpipe, got %q", replicas, sched)
		}
		return runFleet(node, spec, gpus, replicas, policy, pool, reqs, seed, outDir, oracle)
	}

	var rep metrics.Report
	var rec *metrics.Recorder
	var kv []metrics.KVPoint

	switch strings.ToLower(sched) {
	case "tdpipe", "td-pipe":
		cfg := core.DefaultConfig(node, spec, gpus)
		cfg.RecordKV = true
		if !oracle {
			clf, err := trainedPredictor(pool)
			if err != nil {
				return err
			}
			cfg.Predictor = clf
		}
		res, err := core.Run(cfg, reqs)
		if err != nil {
			return err
		}
		rep, rec = res.Report, res.Rec
		if res.KV != nil {
			kv = res.KV.Points
		}
	case "tp+sb", "tp+hb", "pp+sb", "pp+hb":
		var m baselines.Method
		switch strings.ToLower(sched) {
		case "tp+sb":
			m = baselines.TPSB
		case "tp+hb":
			m = baselines.TPHB
		case "pp+sb":
			m = baselines.PPSB
		default:
			m = baselines.PPHB
		}
		res, err := baselines.Run(baselines.DefaultConfig(node, spec, gpus, m), reqs)
		if err != nil {
			return err
		}
		rep, rec = res.Report, res.Rec
	case "offload":
		res, err := offload.Run(offload.DefaultConfig(node, spec, gpus), reqs)
		if err != nil {
			return err
		}
		rep = res.Report
	default:
		return fmt.Errorf("unknown scheduler %q", sched)
	}

	fmt.Println(rep)
	fmt.Printf("output throughput: %.0f tokens/s, total: %.0f tokens/s\n", rep.OutputThroughput(), rep.TotalThroughput())

	if outDir == "" {
		return nil
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	var util []metrics.UtilPoint
	if rec != nil {
		util = rec.Timeline(rep.Elapsed/200, rep.Elapsed)
		f, err := os.Create(filepath.Join(outDir, "utilization.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteUtilizationCSV(f, util); err != nil {
			return err
		}
		g, err := os.Create(filepath.Join(outDir, "busy_intervals.csv"))
		if err != nil {
			return err
		}
		defer g.Close()
		if err := trace.WriteBusyIntervalsCSV(g, rec); err != nil {
			return err
		}
	}
	if kv != nil {
		f, err := os.Create(filepath.Join(outDir, "kv_usage.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteKVCSV(f, kv); err != nil {
			return err
		}
	}
	j, err := os.Create(filepath.Join(outDir, "run.json"))
	if err != nil {
		return err
	}
	defer j.Close()
	if err := trace.WriteRunJSON(j, trace.Run{Report: rep, Utilization: util, KV: kv}); err != nil {
		return err
	}
	fmt.Printf("exported timelines to %s\n", outDir)
	return nil
}
