// Command tdpipe-sim runs a single simulated deployment and prints its
// report, optionally exporting timelines for external plotting.
//
// Usage:
//
//	tdpipe-sim -node A100 -model 70B -gpus 4 -sched tdpipe -requests 2000
//	tdpipe-sim -sched pp+hb -node L20 -model 32B -out run/   # CSV + JSON
//	tdpipe-sim -replicas 4 -policy predicted-cost            # fleet mode
//	tdpipe-sim -arrivals poisson -rate 3 -slo 120            # open-loop
//	tdpipe-sim -disagg -prefill-replicas 1 -decode-replicas 3 -arrivals bursty -rate 3
//
// Schedulers: tdpipe, tp+sb, tp+hb, pp+sb, pp+hb, offload. With
// -replicas N > 1 the trace is sharded across N data-parallel TD-Pipe
// replicas under the -policy dispatch policy (round-robin, random,
// least-work, predicted-cost); fleet mode requires -sched tdpipe and
// exports only the aggregate run.json with -out.
//
// Open-loop serving: -arrivals picks the arrival process (instant,
// poisson, bursty, diurnal) and -rate its mean requests/s. Engines
// admit requests only once virtual time reaches their arrival, and the
// report gains TTFT/TPOT/E2E percentiles plus goodput under the SLO
// set by -slo (E2E seconds), -slo-ttft and -slo-tpot. In fleet mode an
// arrival-stamped trace is served by the online router: one shared
// virtual clock, per-arrival dispatch on live load snapshots.
//
// Disaggregated serving: -disagg splits the fleet into a prefill pool
// (-prefill-replicas) and a decode pool (-decode-replicas); each
// request prefills in the first pool, its KV migrates over the modeled
// hand-off link (-kv-bw GB/s, -kv-lat seconds override the node's
// defaults) and decoding resumes in the second pool. Requires -sched
// tdpipe; composes with -arrivals and the prefix flags.
//
// Shared prefixes: -prefix-groups N stamps the trace with N shared
// prefix groups (system prompts / multi-turn conversations) of mean
// length -prefix-len and depth -prefix-turns. Engines reuse resident
// prefix KV and skip the cached prefill work; -no-prefix-cache is the
// ablation. The prefix-affinity policy routes each group to the
// replica with the warmest matching prefix.
//
// Autoscaling & policies: -autoscale-max N turns on elastic
// provisioning — an SLO-watching controller scales the active replica
// count between -autoscale-min and N mid-run, each scale-up paying the
// node's modeled weight-load cold start. In fleet mode the whole fleet
// breathes; with -disagg the decode pool does. The front-door flags
// compose on the fleet router: -admit-rate/-admit-burst (token-bucket
// admission), -retry-attempts (seeded exponential backoff for shed
// requests), -breaker-failures (per-replica circuit breaking on TTFT
// SLO misses, with half-open probes; needs -slo-ttft) and
// -priority-tiers (priority-stamped traffic; high tiers preempt low
// tiers' KV under pressure via the eviction-recompute path). All
// policies are deterministic for a fixed seed and byte-identical
// across -workers counts:
//
//	tdpipe-sim -replicas 4 -arrivals diurnal -rate 3 -slo-ttft 10 \
//	    -autoscale-max 4 -autoscale-min 1 -admit-rate 6 -retry-attempts 3
//
// Fault injection: a seeded fault plan can be layered onto fleet or
// disaggregated runs (the recovery path needs a router, so -replicas >
// 1 or -disagg is required). -mtbf sets each replica's mean time
// between failures over -fault-horizon virtual seconds; each crash
// aborts the replica's in-flight requests, which are re-dispatched to
// live replicas — resumed from their last periodic KV checkpoint when
// -ckpt-interval is set, re-prefilled from scratch otherwise — until
// -max-retries is exhausted and the request is dropped with a reason.
// -stragglers/-straggler-factor slow seeded replicas; the -link-*
// flags impair the disagg KV hand-off link with degraded or
// partitioned windows. The report gains a fault/recovery accounting
// line, and runs are deterministic for a fixed seed:
//
//	tdpipe-sim -replicas 4 -arrivals poisson -rate 3 \
//	    -mtbf 120 -fault-horizon 600 -ckpt-interval 60
//
// Profiling: -cpuprofile/-memprofile write pprof profiles of the run,
// so hot-path regressions can be diagnosed against the simulator
// binary itself (go tool pprof tdpipe-sim cpu.out). The tdpipe
// scheduler also prints the kernel event rate (steps/s).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/offload"
	"repro/internal/policy"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// options collects the flag values for one invocation.
type options struct {
	node     string
	model    string
	gpus     int
	sched    string
	requests int
	pool     int
	seed     int64
	outDir   string
	oracle   bool
	replicas int
	policy   string
	workers  int
	arrivals string
	rate     float64
	slo      metrics.SLO

	disagg          bool
	prefillReplicas int
	decodeReplicas  int
	kvBW            float64
	kvLat           float64

	prefixGroups  int
	prefixLen     int
	prefixTurns   int
	noPrefixCache bool

	autoscaleMin      int
	autoscaleMax      int
	autoscaleInterval float64
	admitRate         float64
	admitBurst        int
	breakerFailures   int
	retryAttempts     int
	priorityTiers     int

	mtbf              float64
	faultHorizon      float64
	restartDelay      float64
	stragglers        int
	stragglerFactor   float64
	ckptInterval      float64
	linkDegradeFrac   float64
	linkDegradeFactor float64
	linkPartitionFrac float64
	maxRetries        int
	faultDomains      int
	domainMTBF        float64
	domainKind        string

	cpuprofile string
	memprofile string
}

// faultConfig assembles the seeded fault plan configuration from the
// flag group; the zero value (no fault flags) is fault-free.
func (o options) faultConfig() faults.Config {
	return faults.Config{
		Seed:               o.seed + 4000,
		Horizon:            o.faultHorizon,
		MTBF:               o.mtbf,
		RestartDelay:       o.restartDelay,
		MaxRetries:         o.maxRetries,
		Stragglers:         o.stragglers,
		StragglerFactor:    o.stragglerFactor,
		LinkDegradeFrac:    o.linkDegradeFrac,
		LinkDegradeFactor:  o.linkDegradeFactor,
		LinkPartitionFrac:  o.linkPartitionFrac,
		CheckpointInterval: o.ckptInterval,
		Topology:           hw.Topology{Racks: o.faultDomains},
		DomainMTBF:         o.domainMTBF,
		DomainKind:         o.domainKind,
	}
}

// policyStack assembles the front-door policy stack from the flag
// group; nil when no policy flag is set. The autoscaler's TTFT target
// is half the TTFT SLO so scale-ups start before the SLO is breached.
func (o options) policyStack() (*policy.Stack, error) {
	st := &policy.Stack{}
	if o.admitRate > 0 {
		st.Admission = policy.NewTokenBucket(o.admitRate, float64(o.admitBurst))
	}
	if o.retryAttempts > 0 {
		st.Retry = policy.NewBackoff(policy.BackoffConfig{MaxAttempts: o.retryAttempts, Seed: o.seed + 5000})
	}
	if o.breakerFailures > 0 {
		st.Breaker = &policy.BreakerConfig{FailureThreshold: o.breakerFailures}
	}
	if o.priorityTiers > 0 {
		st.Preemption = &policy.PreemptionConfig{}
	}
	if o.autoscaleMax > 0 {
		as, err := policy.NewAutoscaler(policy.AutoscalerConfig{
			Min:            o.autoscaleMin,
			Max:            o.autoscaleMax,
			Interval:       o.autoscaleInterval,
			ScaleUpQueue:   4,
			ScaleDownQueue: 1,
			TTFTTarget:     o.slo.TTFT / 2,
		})
		if err != nil {
			return nil, err
		}
		st.Autoscaler = as
	}
	if !st.Active() {
		return nil, nil
	}
	return st, nil
}

// printPolicy shows the autoscale and admission accounting when any
// policy activity was recorded.
func printPolicy(rep metrics.Report) {
	if a := rep.Autoscale; a.Any() {
		fmt.Printf("autoscale: %d ticks, %d up / %d down, peak %d replicas, %.0f GPU-s provisioned, %.0f s cold start\n",
			a.Ticks, a.ScaleUps, a.ScaleDowns, a.PeakReplicas, a.GPUSeconds, a.ColdStartSeconds)
	}
	if ad := rep.Admission; ad.Any() {
		fmt.Printf("admission: %d shed, %d retries, %d dropped, %d breaker trips (%d routing skips), %d preemptions\n",
			ad.Shed, ad.Retries, ad.Dropped, ad.BreakerTrips, ad.BreakerSkips, ad.Preemptions)
	}
}

// printFaults shows the fault/recovery accounting when any fault
// activity was recorded.
func printFaults(rep metrics.Report) {
	f := rep.Faults
	if !f.Any() {
		return
	}
	fmt.Printf("faults: %d crashes, %d aborted, %d/%d recovered (recompute/checkpoint), %d dropped, %d output tokens lost\n",
		f.Crashes, f.AbortedRequests, f.RecoveredRecompute, f.RecoveredCheckpoint, f.Dropped, f.LostOutputTokens)
	if f.DomainOutages > 0 {
		fmt.Printf("domains: %d correlated rack/zone outages\n", f.DomainOutages)
	}
	if f.Checkpoints > 0 {
		fmt.Printf("checkpoints: %d rounds, %.2f GB serialized\n", f.Checkpoints, f.CheckpointBytes/1e9)
	}
}

// main defers to realMain so profile finalizers (StopCPUProfile, file
// closes) run even when the run fails — os.Exit here would truncate
// the very profile needed to diagnose the failure.
func main() {
	os.Exit(realMain())
}

// registerFlags binds every tdpipe-sim flag to the options struct on
// the given set. The README flag-reference table is checked against
// this registration by a test, so the two cannot drift.
func registerFlags(fs *flag.FlagSet, o *options) {
	fs.StringVar(&o.node, "node", "A100", "node: L20 or A100")
	fs.StringVar(&o.model, "model", "70B", "model: 13B, 32B, 70B")
	fs.IntVar(&o.gpus, "gpus", 4, "number of GPUs")
	fs.StringVar(&o.sched, "sched", "tdpipe", "scheduler: tdpipe, tp+sb, tp+hb, pp+sb, pp+hb, offload")
	fs.IntVar(&o.requests, "requests", 2000, "number of requests")
	fs.IntVar(&o.pool, "pool", 20000, "corpus size for predictor training")
	fs.Int64Var(&o.seed, "seed", 1, "trace seed")
	fs.StringVar(&o.outDir, "out", "", "directory for CSV/JSON export (optional)")
	fs.BoolVar(&o.oracle, "oracle", false, "use the oracle length predictor instead of the trained classifier")
	fs.IntVar(&o.replicas, "replicas", 1, "data-parallel TD-Pipe replicas (fleet mode when > 1)")
	fs.StringVar(&o.policy, "policy", fleet.RoundRobin, "fleet dispatch policy: "+strings.Join(fleet.Names(), ", "))
	fs.IntVar(&o.workers, "workers", 0, "fleet simulation workers: 0 or 1 sequential, -1 auto (GOMAXPROCS on fleets of 16+ replicas); reports are byte-identical across counts")
	fs.StringVar(&o.arrivals, "arrivals", workload.ArrivalInstant,
		"arrival process: "+strings.Join(workload.ArrivalKinds(), ", "))
	fs.Float64Var(&o.rate, "rate", 0, "mean arrival rate in requests/s (required unless -arrivals instant)")
	fs.Float64Var(&o.slo.E2E, "slo", 0, "end-to-end latency SLO in seconds (0 disables)")
	fs.Float64Var(&o.slo.TTFT, "slo-ttft", 0, "time-to-first-token SLO in seconds (0 disables)")
	fs.Float64Var(&o.slo.TPOT, "slo-tpot", 0, "time-per-output-token SLO in seconds (0 disables)")
	fs.BoolVar(&o.disagg, "disagg", false, "disaggregated mode: dedicated prefill and decode pools with KV hand-off (requires -sched tdpipe)")
	fs.IntVar(&o.prefillReplicas, "prefill-replicas", 1, "prefill-pool replicas in -disagg mode")
	fs.IntVar(&o.decodeReplicas, "decode-replicas", 3, "decode-pool replicas in -disagg mode")
	fs.Float64Var(&o.kvBW, "kv-bw", 0, "KV hand-off link bandwidth in GB/s (0 keeps the node default)")
	fs.Float64Var(&o.kvLat, "kv-lat", 0, "KV hand-off link latency in seconds (0 keeps the node default)")
	fs.IntVar(&o.autoscaleMax, "autoscale-max", 0, "elastic autoscaling: max active replicas (0 disables; scales the fleet, or the decode pool with -disagg)")
	fs.IntVar(&o.autoscaleMin, "autoscale-min", 1, "elastic autoscaling: min active replicas")
	fs.Float64Var(&o.autoscaleInterval, "autoscale-interval", 1, "elastic autoscaling: evaluation cadence in virtual seconds")
	fs.Float64Var(&o.admitRate, "admit-rate", 0, "token-bucket admission rate in requests/s (0 disables admission control)")
	fs.IntVar(&o.admitBurst, "admit-burst", 16, "token-bucket admission burst size")
	fs.IntVar(&o.breakerFailures, "breaker-failures", 0, "consecutive failures that trip a replica's circuit breaker: TTFT SLO misses online (needs -slo-ttft), aborted requests with -disagg (0 disables)")
	fs.IntVar(&o.retryAttempts, "retry-attempts", 0, "admission attempts per request under seeded exponential backoff (0 disables retry; shed requests are then dropped)")
	fs.IntVar(&o.priorityTiers, "priority-tiers", 0, "stamp the trace with priority tiers and preempt low tiers under KV pressure (0 disables; >= 2 tiers)")
	fs.IntVar(&o.prefixGroups, "prefix-groups", 0, "shared-prefix groups to stamp on the trace (0 disables prefix structure)")
	fs.IntVar(&o.prefixLen, "prefix-len", 256, "mean shared-prefix length in tokens")
	fs.IntVar(&o.prefixTurns, "prefix-turns", 4, "conversation depth: turns over which a group's prefix grows")
	fs.BoolVar(&o.noPrefixCache, "no-prefix-cache", false, "disable shared-prefix KV reuse (ablation)")
	fs.Float64Var(&o.mtbf, "mtbf", 0, "mean time between replica failures in virtual seconds (0 disables crashes; needs -fault-horizon)")
	fs.Float64Var(&o.faultHorizon, "fault-horizon", 0, "virtual-time horizon bounding fault activity in seconds")
	fs.IntVar(&o.maxRetries, "max-retries", 0, "re-dispatches per crash-lost request before it is dropped (0 = default 3)")
	fs.Float64Var(&o.restartDelay, "restart-delay", 2, "process-restart seconds added to each crash outage (weight reload is modeled on top)")
	fs.IntVar(&o.stragglers, "stragglers", 0, "replicas (chosen by the fault seed) slowed by -straggler-factor")
	fs.Float64Var(&o.stragglerFactor, "straggler-factor", 1.3, "pass-duration multiplier for straggler replicas")
	fs.Float64Var(&o.ckptInterval, "ckpt-interval", 0, "periodic KV checkpoint cadence in virtual seconds (0 disables; crash recovery then recomputes)")
	fs.Float64Var(&o.linkDegradeFrac, "link-degrade-frac", 0, "fraction of KV-link windows running degraded (-disagg only)")
	fs.Float64Var(&o.linkDegradeFactor, "link-degrade-factor", 4, "KV transfer slowdown inside degraded windows")
	fs.Float64Var(&o.linkPartitionFrac, "link-partition-frac", 0, "fraction of KV-link windows fully partitioned (-disagg only)")
	fs.IntVar(&o.faultDomains, "fault-domains", 0, "racks in the fleet topology for correlated domain outages (0 disables; needs -domain-mtbf)")
	fs.Float64Var(&o.domainMTBF, "domain-mtbf", 0, "each rack's mean time between correlated outages in virtual seconds (needs -fault-domains and -fault-horizon)")
	fs.StringVar(&o.domainKind, "domain-kind", "power", "what a correlated domain outage does: power, network, or mixed")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file (pprof format)")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file at exit (pprof format)")
}

func realMain() int {
	var o options
	registerFlags(flag.CommandLine, &o)
	flag.Parse()
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdpipe-sim:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tdpipe-sim:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	code := 0
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "tdpipe-sim:", err)
		code = 1
	}
	if o.memprofile != "" {
		f, err := os.Create(o.memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tdpipe-sim:", err)
			return 1
		}
		defer f.Close()
		goruntime.GC() // settle allocations so the heap profile is stable
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "tdpipe-sim:", err)
			return 1
		}
	}
	return code
}

func pickNode(name string) (hw.Node, error) {
	switch strings.ToUpper(name) {
	case "L20":
		return hw.L20, nil
	case "A100":
		return hw.A100, nil
	}
	return hw.Node{}, fmt.Errorf("unknown node %q (L20, A100)", name)
}

func pickModel(name string) (model.Spec, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "13B", "LLAMA2-13B", "LLAMA2-13B-CHAT":
		return model.Llama2_13B, nil
	case "32B", "QWEN2.5-32B", "QWEN2.5-32B-INSTRUCT":
		return model.Qwen2_5_32B, nil
	case "70B", "LLAMA2-70B", "LLAMA2-70B-CHAT":
		return model.Llama2_70B, nil
	}
	return model.Spec{}, fmt.Errorf("unknown model %q (13B, 32B, 70B)", name)
}

// trainedPredictor fits the classifier on the corpus's 60% historical
// split, the same recipe the single-engine path uses.
func trainedPredictor(pool []workload.Request) (core.LenPredictor, error) {
	train, _, _, err := workload.Split(pool, 0.6, 0.2)
	if err != nil {
		return nil, err
	}
	return predictor.Train(train, predictor.DefaultTrainConfig())
}

// printLatency shows the per-request latency digest when it carries
// information (always under open-loop arrivals or an SLO).
func printLatency(rep metrics.Report, open bool) {
	if open || rep.Latency.SLO.Enabled() {
		fmt.Println("latency:", rep.Latency)
	}
}

// printPrefix shows prefix-cache reuse when any happened.
func printPrefix(rep metrics.Report) {
	if rep.PrefixCachedTokens > 0 {
		fmt.Printf("prefix cache: %d input tokens reused (%.1f%% hit rate)\n",
			rep.PrefixCachedTokens, 100*rep.PrefixHitRate())
	}
}

// runFleet serves the sample on data-parallel TD-Pipe replicas: an
// offline pre-shard for closed-loop traces, the shared-clock online
// router for arrival-stamped ones.
func runFleet(o options, node hw.Node, spec model.Spec, pool, reqs []workload.Request, open bool) error {
	cfg := core.DefaultConfig(node, spec, o.gpus)
	cfg.SLO = o.slo
	cfg.DisablePrefixCache = o.noPrefixCache
	if !o.oracle {
		clf, err := trainedPredictor(pool)
		if err != nil {
			return err
		}
		cfg.Predictor = clf
	}
	p, err := fleet.New(o.policy, fleet.Options{Seed: o.seed, Predictor: cfg.Predictor})
	if err != nil {
		return err
	}
	stack, err := o.policyStack()
	if err != nil {
		return err
	}
	var res *fleet.Result
	start := time.Now()
	if fc := o.faultConfig(); fc.Enabled() {
		downtime := o.restartDelay + faults.WeightReloadTime(node, spec, o.gpus)
		plan, err := faults.NewPlan(fc, o.replicas, downtime)
		if err != nil {
			return err
		}
		res, err = fleet.RunOnlineFaultsWorkers(cfg, o.replicas, p, reqs, plan, o.workers)
		if err != nil {
			return err
		}
	} else if stack != nil {
		res, err = fleet.RunOnlineElasticWorkers(cfg, o.replicas, p, reqs, stack, o.workers)
	} else if open {
		res, err = fleet.RunOnlineWorkers(cfg, o.replicas, p, reqs, o.workers)
	} else {
		res, err = fleet.Run(cfg, o.replicas, p, reqs)
	}
	wall := time.Since(start)
	if err != nil {
		return err
	}
	if res.Steps > 0 && wall > 0 {
		fmt.Printf("kernel: %d events in %v (%.0f steps/s, %d workers)\n",
			res.Steps, wall.Round(time.Millisecond), float64(res.Steps)/wall.Seconds(),
			fleet.ResolveWorkers(o.workers, o.replicas))
	}
	for i, rr := range res.Replicas {
		fmt.Printf("replica %d: %d reqs, %.1fs, %.0f tok/s out, util %.1f%%\n",
			i, rr.Report.Requests, rr.Report.Elapsed,
			rr.Report.OutputThroughput(), 100*rr.Report.MeanUtilization)
	}
	fmt.Println(res.Report)
	fmt.Printf("output throughput: %.0f tokens/s, total: %.0f tokens/s\n",
		res.Report.OutputThroughput(), res.Report.TotalThroughput())
	printLatency(res.Report, open)
	printPrefix(res.Report)
	printFaults(res.Report)
	printPolicy(res.Report)

	if o.outDir == "" {
		return nil
	}
	// Per-GPU timelines are per-replica simulations; the fleet export
	// covers the aggregate report.
	if err := os.MkdirAll(o.outDir, 0o755); err != nil {
		return err
	}
	j, err := os.Create(filepath.Join(o.outDir, "run.json"))
	if err != nil {
		return err
	}
	defer j.Close()
	if err := trace.WriteRunJSON(j, trace.Run{Report: res.Report}); err != nil {
		return err
	}
	fmt.Printf("exported aggregate report to %s\n", o.outDir)
	return nil
}

// runDisagg serves the sample on a disaggregated fleet: a prefill pool
// feeding a decode pool through the modeled KV hand-off link.
func runDisagg(o options, node hw.Node, spec model.Spec, pool, reqs []workload.Request, open bool) error {
	cfg := core.DefaultConfig(node, spec, o.gpus)
	cfg.SLO = o.slo
	cfg.DisablePrefixCache = o.noPrefixCache
	if !o.oracle {
		clf, err := trainedPredictor(pool)
		if err != nil {
			return err
		}
		cfg.Predictor = clf
	}
	stack, err := o.policyStack()
	if err != nil {
		return err
	}
	dc := fleet.DisaggConfig{PrefillReplicas: o.prefillReplicas, DecodeReplicas: o.decodeReplicas, Workers: o.workers, Stack: stack}
	var res *fleet.DisaggResult
	start := time.Now()
	if fc := o.faultConfig(); fc.Enabled() {
		downtime := o.restartDelay + faults.WeightReloadTime(node, spec, o.gpus)
		plan, perr := faults.NewPlan(fc, dc.PrefillReplicas+dc.DecodeReplicas, downtime)
		if perr != nil {
			return perr
		}
		res, err = fleet.RunDisaggFaults(cfg, dc, reqs, plan)
	} else {
		res, err = fleet.RunDisagg(cfg, dc, reqs)
	}
	wall := time.Since(start)
	if err != nil {
		return err
	}
	if res.Steps > 0 && wall > 0 {
		fmt.Printf("kernel: %d events in %v (%.0f steps/s, %d workers)\n",
			res.Steps, wall.Round(time.Millisecond), float64(res.Steps)/wall.Seconds(),
			fleet.ResolveWorkers(o.workers, dc.PrefillReplicas+dc.DecodeReplicas))
	}
	for i, rr := range res.Prefill {
		fmt.Printf("prefill %d: %d reqs, %.1fs, %.0f tok/s total, util %.1f%%\n",
			i, rr.Report.Requests, rr.Report.Elapsed,
			rr.Report.TotalThroughput(), 100*rr.Report.MeanUtilization)
	}
	for i, rr := range res.Decode {
		fmt.Printf("decode %d: %d reqs, %.1fs, %.0f tok/s out, util %.1f%%\n",
			i, rr.Report.Requests, rr.Report.Elapsed,
			rr.Report.OutputThroughput(), 100*rr.Report.MeanUtilization)
	}
	fmt.Println(res.Report)
	fmt.Printf("output throughput: %.0f tokens/s, total: %.0f tokens/s\n",
		res.Report.OutputThroughput(), res.Report.TotalThroughput())
	fmt.Printf("hand-offs: %d (%d queued for headroom), %.2f GB KV migrated\n",
		res.Handoffs, res.QueuedHandoffs, res.TransferredBytes/1e9)
	printLatency(res.Report, open)
	printPrefix(res.Report)
	printFaults(res.Report)
	printPolicy(res.Report)

	if o.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.outDir, 0o755); err != nil {
		return err
	}
	j, err := os.Create(filepath.Join(o.outDir, "run.json"))
	if err != nil {
		return err
	}
	defer j.Close()
	if err := trace.WriteRunJSON(j, trace.Run{Report: res.Report}); err != nil {
		return err
	}
	fmt.Printf("exported aggregate report to %s\n", o.outDir)
	return nil
}

func run(o options) error {
	node, err := pickNode(o.node)
	if err != nil {
		return err
	}
	spec, err := pickModel(o.model)
	if err != nil {
		return err
	}
	if o.requests > o.pool {
		o.pool = o.requests
	}
	pool, err := workload.Generate(workload.DefaultConfig(o.pool, o.seed))
	if err != nil {
		return err
	}
	reqs := workload.Sample(pool, o.requests, o.seed+1000)

	if o.prefixGroups > 0 {
		reqs, err = workload.StampPrefixes(reqs, workload.PrefixConfig{
			Groups: o.prefixGroups, PrefixLen: o.prefixLen, Turns: o.prefixTurns, Seed: o.seed + 3000,
		})
		if err != nil {
			return err
		}
	}

	acfg := workload.ArrivalConfig{Kind: o.arrivals, Rate: o.rate, Seed: o.seed + 2000}
	if err := acfg.Validate(); err != nil {
		return err
	}
	open := !strings.EqualFold(o.arrivals, workload.ArrivalInstant)
	if open {
		if reqs, err = acfg.Stamp(reqs); err != nil {
			return err
		}
	}

	if o.priorityTiers > 0 {
		reqs, err = workload.StampPriorities(reqs, workload.PriorityConfig{
			Tiers: o.priorityTiers, HighFraction: 0.2, Seed: o.seed + 6000,
		})
		if err != nil {
			return err
		}
	}

	// Flags are partitioned by mode: fleet flags are meaningless under
	// -disagg (pools are sized by -prefill/-decode-replicas, the policy
	// pair is fixed) and the disagg flags do nothing without it. Reject
	// either mismatch rather than silently substitute defaults.
	var fleetFlags, disaggFlags, linkFlags, frontFlags, scaleFlags []string
	workersSet, breakerSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "replicas", "policy":
			fleetFlags = append(fleetFlags, "-"+f.Name)
		case "prefill-replicas", "decode-replicas", "kv-bw", "kv-lat":
			disaggFlags = append(disaggFlags, "-"+f.Name)
		case "link-degrade-frac", "link-degrade-factor", "link-partition-frac":
			linkFlags = append(linkFlags, "-"+f.Name)
		case "admit-rate", "admit-burst", "retry-attempts", "priority-tiers":
			frontFlags = append(frontFlags, "-"+f.Name)
		case "breaker-failures":
			breakerSet = true
		case "autoscale-max", "autoscale-min", "autoscale-interval":
			scaleFlags = append(scaleFlags, "-"+f.Name)
		case "workers":
			workersSet = true
		}
	})
	// Breakers ride the online policy stack (TTFT-classified) outside
	// -disagg; with -disagg they attach to both pools and are fed by
	// crashes, so they compose with fault injection there.
	if breakerSet && !o.disagg {
		frontFlags = append(frontFlags, "-breaker-failures")
	}
	if len(linkFlags) > 0 && !o.disagg {
		return fmt.Errorf("%s model the KV hand-off link and only take effect with -disagg", strings.Join(linkFlags, ", "))
	}
	fc := o.faultConfig()
	if len(frontFlags) > 0 && o.disagg {
		return fmt.Errorf("%s ride the online fleet router; with -disagg only the -autoscale-* flags compose (the decode pool scales)",
			strings.Join(frontFlags, ", "))
	}
	if (len(frontFlags) > 0 || len(scaleFlags) > 0) && !o.disagg && (o.replicas <= 1 || !open) {
		return fmt.Errorf("the policy stack needs the online fleet router: -replicas > 1 with open-loop -arrivals (or -disagg for the -autoscale-* flags)")
	}
	if (len(frontFlags) > 0 || len(scaleFlags) > 0) && fc.Enabled() {
		return fmt.Errorf("fault injection and the policy stack use different routers; run them separately")
	}
	if o.breakerFailures > 0 && o.slo.TTFT <= 0 && !o.disagg {
		return fmt.Errorf("-breaker-failures classifies completions against the TTFT SLO: set -slo-ttft (with -disagg breakers are crash-fed instead)")
	}
	if workersSet && !o.disagg && (o.replicas <= 1 || (!open && !fc.Enabled())) {
		return fmt.Errorf("-workers parallelizes the co-simulated serving paths: it needs -disagg, or -replicas > 1 with open-loop arrivals or fault injection (offline fleet runs already simulate replicas concurrently)")
	}
	if (fc.MTBF > 0 || fc.LinkDegradeFrac > 0 || fc.LinkPartitionFrac > 0 || fc.DomainMTBF > 0) && fc.Horizon <= 0 {
		return fmt.Errorf("-mtbf, -domain-mtbf and the -link-* impairments need -fault-horizon to bound when failures can land")
	}
	if o.domainMTBF > 0 && o.faultDomains <= 0 {
		return fmt.Errorf("-domain-mtbf draws correlated outages over a fleet topology: set -fault-domains")
	}
	if o.faultDomains > 0 && o.domainMTBF <= 0 {
		return fmt.Errorf("-fault-domains declares the topology for correlated outages: set -domain-mtbf")
	}
	if err := fc.Validate(); err != nil {
		return err
	}
	if fc.Enabled() && !o.disagg && o.replicas <= 1 {
		return fmt.Errorf("fault injection needs a router to recover through: use fleet mode (-replicas > 1) or -disagg")
	}
	if o.disagg {
		if s := strings.ToLower(o.sched); s != "tdpipe" && s != "td-pipe" {
			return fmt.Errorf("disaggregated mode (-disagg) requires -sched tdpipe, got %q", o.sched)
		}
		if len(fleetFlags) > 0 {
			return fmt.Errorf("disaggregated mode (-disagg) does not take %s; size the pools with -prefill-replicas/-decode-replicas",
				strings.Join(fleetFlags, ", "))
		}
		if o.kvBW > 0 {
			node.KVLinkGBps = o.kvBW
		}
		if o.kvLat > 0 {
			node.KVLinkLatency = o.kvLat
		}
		return runDisagg(o, node, spec, pool, reqs, open)
	}
	if len(disaggFlags) > 0 {
		return fmt.Errorf("%s only take effect with -disagg", strings.Join(disaggFlags, ", "))
	}

	if o.replicas > 1 {
		if s := strings.ToLower(o.sched); s != "tdpipe" && s != "td-pipe" {
			return fmt.Errorf("fleet mode (-replicas %d) requires -sched tdpipe, got %q", o.replicas, o.sched)
		}
		return runFleet(o, node, spec, pool, reqs, open)
	}

	var rep metrics.Report
	var rec *metrics.Recorder
	var kv []metrics.KVPoint

	switch strings.ToLower(o.sched) {
	case "tdpipe", "td-pipe":
		cfg := core.DefaultConfig(node, spec, o.gpus)
		cfg.RecordKV = true
		cfg.SLO = o.slo
		cfg.DisablePrefixCache = o.noPrefixCache
		if !o.oracle {
			clf, err := trainedPredictor(pool)
			if err != nil {
				return err
			}
			cfg.Predictor = clf
		}
		start := time.Now()
		res, err := core.Run(cfg, reqs)
		wall := time.Since(start)
		if err != nil {
			return err
		}
		rep, rec = res.Report, res.Rec
		if res.KV != nil {
			kv = res.KV.Points
		}
		if wall > 0 {
			fmt.Printf("kernel: %d events in %v (%.0f steps/s)\n",
				res.Steps, wall.Round(time.Millisecond), float64(res.Steps)/wall.Seconds())
		}
	case "tp+sb", "tp+hb", "pp+sb", "pp+hb":
		var m baselines.Method
		switch strings.ToLower(o.sched) {
		case "tp+sb":
			m = baselines.TPSB
		case "tp+hb":
			m = baselines.TPHB
		case "pp+sb":
			m = baselines.PPSB
		default:
			m = baselines.PPHB
		}
		bcfg := baselines.DefaultConfig(node, spec, o.gpus, m)
		bcfg.SLO = o.slo
		res, err := baselines.Run(bcfg, reqs)
		if err != nil {
			return err
		}
		rep, rec = res.Report, res.Rec
	case "offload":
		if open {
			return fmt.Errorf("the offload scheduler is offline-only; use -arrivals instant")
		}
		res, err := offload.Run(offload.DefaultConfig(node, spec, o.gpus), reqs)
		if err != nil {
			return err
		}
		rep = res.Report
	default:
		return fmt.Errorf("unknown scheduler %q", o.sched)
	}

	fmt.Println(rep)
	fmt.Printf("output throughput: %.0f tokens/s, total: %.0f tokens/s\n", rep.OutputThroughput(), rep.TotalThroughput())
	printLatency(rep, open)
	printPrefix(rep)

	if o.outDir == "" {
		return nil
	}
	if err := os.MkdirAll(o.outDir, 0o755); err != nil {
		return err
	}
	var util []metrics.UtilPoint
	if rec != nil {
		util = rec.Timeline(rep.Elapsed/200, rep.Elapsed)
		f, err := os.Create(filepath.Join(o.outDir, "utilization.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteUtilizationCSV(f, util); err != nil {
			return err
		}
		g, err := os.Create(filepath.Join(o.outDir, "busy_intervals.csv"))
		if err != nil {
			return err
		}
		defer g.Close()
		if err := trace.WriteBusyIntervalsCSV(g, rec); err != nil {
			return err
		}
	}
	if kv != nil {
		f, err := os.Create(filepath.Join(o.outDir, "kv_usage.csv"))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteKVCSV(f, kv); err != nil {
			return err
		}
	}
	j, err := os.Create(filepath.Join(o.outDir, "run.json"))
	if err != nil {
		return err
	}
	defer j.Close()
	if err := trace.WriteRunJSON(j, trace.Run{Report: rep, Utilization: util, KV: kv}); err != nil {
		return err
	}
	fmt.Printf("exported timelines to %s\n", o.outDir)
	return nil
}
