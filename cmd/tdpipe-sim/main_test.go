package main

import (
	"bufio"
	"flag"
	"os"
	"strings"
	"testing"
)

// readmeFlagTable parses the "Flag reference: cmd/tdpipe-sim" table out
// of the repo README and returns flag name -> default cell (backticks
// stripped, empty cell = empty default).
func readmeFlagTable(t *testing.T) map[string]string {
	t.Helper()
	f, err := os.Open("../../README.md")
	if err != nil {
		t.Fatalf("open README: %v", err)
	}
	defer f.Close()

	rows := map[string]string{}
	inSection := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "## ") {
			inSection = strings.Contains(line, "Flag reference")
			continue
		}
		if !inSection || !strings.HasPrefix(line, "| `-") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 4 {
			t.Fatalf("malformed flag table row: %q", line)
		}
		clean := func(s string) string {
			return strings.Trim(strings.TrimSpace(s), "`")
		}
		name := strings.TrimPrefix(clean(cells[1]), "-")
		if _, dup := rows[name]; dup {
			t.Errorf("README flag table lists -%s twice", name)
		}
		rows[name] = clean(cells[2])
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read README: %v", err)
	}
	if len(rows) == 0 {
		t.Fatal("found no flag table rows in README.md (section 'Flag reference')")
	}
	return rows
}

// TestReadmeFlagTableMatchesRegistration keeps the README flag table
// honest: every registered tdpipe-sim flag must appear in the table
// with the registered default, and every table row must name a real
// flag. Registration is enumerated with flag.VisitAll on a fresh set,
// so the test sees exactly what realMain registers.
func TestReadmeFlagTableMatchesRegistration(t *testing.T) {
	rows := readmeFlagTable(t)

	var o options
	fs := flag.NewFlagSet("tdpipe-sim", flag.ContinueOnError)
	registerFlags(fs, &o)

	seen := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) {
		seen[f.Name] = true
		def, ok := rows[f.Name]
		if !ok {
			t.Errorf("flag -%s is registered but missing from the README flag table", f.Name)
			return
		}
		if def != f.DefValue {
			t.Errorf("flag -%s: README default %q != registered default %q", f.Name, def, f.DefValue)
		}
	})
	for name := range rows {
		if !seen[name] {
			t.Errorf("README flag table row -%s names a flag that is not registered", name)
		}
	}
}
