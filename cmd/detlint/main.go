// Command detlint enforces the simulator's determinism and hot-path
// invariants at compile time: no wall clock or process-global
// randomness in simulation packages, no concurrency outside the
// parallel fabric, no order-sensitive map iteration, and no
// allocations inside //det:hotpath functions. It loads, type-checks
// (stdlib source importer — no external dependencies) and walks every
// package under the given roots with the internal/analysis framework,
// the same loader cmd/lintdocs uses.
//
// Usage:
//
//	detlint [-json] [dir ...]
//
// Roots default to ".". Directories are walked recursively, skipping
// testdata, vendor and dot-directories; *_test.go files are exempt by
// construction. Findings print as "file:line: [analyzer] message"
// (or a JSON array with -json) and any finding exits 1; load or
// type-check failures exit 2. Suppressions use
// `//det:ignore <analyzer> <reason>` on or directly above the line —
// the reason is mandatory and the directive is itself linted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// jsonFinding is the -json wire form of one finding.
type jsonFinding struct {
	// File is the path as printed (relative to the working directory
	// when possible).
	File string `json:"file"`
	// Line is the 1-based source line.
	Line int `json:"line"`
	// Col is the 1-based source column.
	Col int `json:"col"`
	// Analyzer names the analyzer that fired.
	Analyzer string `json:"analyzer"`
	// Message is the human-readable diagnostic.
	Message string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array for tooling")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	loader := analysis.NewLoader(true)
	pkgs, err := loader.Load(true, roots...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, analysis.Detlint())
	wd, _ := os.Getwd()
	display := func(path string) string {
		if wd != "" {
			if rel, err := filepath.Rel(wd, path); err == nil && !filepath.IsAbs(rel) {
				return rel
			}
		}
		return path
	}
	if *jsonOut {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     display(f.Pos.Filename),
				Line:     f.Pos.Line,
				Col:      f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "detlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: [%s] %s\n", display(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
