package tdpipe

import "testing"

func TestFacadeEndToEnd(t *testing.T) {
	trace, err := NewTrace(3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainPredictor(trace.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(A100, Llama2_70B, 4)
	cfg.Predictor = clf
	reqs := trace.Sample(500, 1)
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != 500 || res.Report.OutputThroughput() <= 0 {
		t.Errorf("report = %v", res.Report)
	}

	bres, err := RunBaseline(NewBaselineConfig(A100, Llama2_70B, 4, PPSB), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Report.Scheduler != "PP+SB" {
		t.Errorf("baseline scheduler = %q", bres.Report.Scheduler)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if L20.GPU.MemGB != 48 || A100.GPU.MemGB != 80 {
		t.Error("node catalog wrong")
	}
	for _, m := range []ModelSpec{Llama2_13B, Qwen2_5_32B, Llama2_70B} {
		if err := m.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestFacadeTraceSplit(t *testing.T) {
	trace, err := NewTrace(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Train) != 600 || len(trace.Val) != 200 || len(trace.Test) != 200 {
		t.Errorf("split = %d/%d/%d", len(trace.Train), len(trace.Val), len(trace.Test))
	}
	s := trace.Sample(10, 1)
	if len(s) != 10 || s[0].ID != 0 {
		t.Errorf("sample = %v", s)
	}
}
