package tdpipe

import "testing"

func TestFacadeEndToEnd(t *testing.T) {
	trace, err := NewTrace(3000, 7)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainPredictor(trace.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(A100, Llama2_70B, 4)
	cfg.Predictor = clf
	reqs := trace.Sample(500, 1)
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != 500 || res.Report.OutputThroughput() <= 0 {
		t.Errorf("report = %v", res.Report)
	}

	bres, err := RunBaseline(NewBaselineConfig(A100, Llama2_70B, 4, PPSB), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Report.Scheduler != "PP+SB" {
		t.Errorf("baseline scheduler = %q", bres.Report.Scheduler)
	}
}

// RunFleet with 4 replicas must complete a 5k-request trace under each
// registered policy with exact request conservation, and reproduce the
// same aggregate report when rerun with the same seed.
func TestRunFleet(t *testing.T) {
	trace, err := NewTrace(20000, 11)
	if err != nil {
		t.Fatal(err)
	}
	clf, err := TrainPredictor(trace.Train)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(A100, Llama2_70B, 4)
	cfg.Predictor = clf
	reqs := trace.Sample(5000, 2)
	wantOut := 0
	for _, r := range reqs {
		wantOut += r.OutputLen
	}

	policies := FleetPolicies()
	if len(policies) < 4 {
		t.Fatalf("only %d fleet policies registered: %v", len(policies), policies)
	}
	for _, policy := range policies {
		res, err := RunFleet(cfg, 4, policy, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.CheckConservation(len(reqs)); err != nil {
			t.Errorf("%s: %v", policy, err)
		}
		if res.Report.Requests != 5000 || res.Report.OutputTokens != wantOut {
			t.Errorf("%s: completed %d requests, %d output tokens (want 5000, %d)",
				policy, res.Report.Requests, res.Report.OutputTokens, wantOut)
		}
		if res.Report.GPUs != 16 {
			t.Errorf("%s: fleet GPUs = %d, want 16", policy, res.Report.GPUs)
		}
		again, err := RunFleet(cfg, 4, policy, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Report != again.Report {
			t.Errorf("%s: aggregate report not deterministic:\n%v\n%v", policy, res.Report, again.Report)
		}
	}

	if _, err := RunFleet(cfg, 4, "no-such-policy", reqs); err == nil {
		t.Error("unknown policy accepted")
	}
}

// The facade's open-loop path: StampArrivals produces an arrival-
// stamped trace, Run admits by arrival and reports latency, and
// RunFleet auto-routes stamped traces through the online router.
func TestFacadeOnlineServing(t *testing.T) {
	trace, err := NewTrace(3000, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(A100, Llama2_70B, 4)
	cfg.SLO = DefaultSLO()
	reqs := trace.Sample(400, 5)

	stamped, err := StampArrivals(reqs, ArrivalConfig{Kind: ArrivalPoisson, Rate: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if HasArrivals(reqs) || !HasArrivals(stamped) {
		t.Fatal("HasArrivals misclassifies traces")
	}

	res, err := Run(cfg, stamped)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Latency.Requests != 400 {
		t.Errorf("latency digest covers %d requests", res.Report.Latency.Requests)
	}

	fres, err := RunFleet(cfg, 2, FleetLeastWork, stamped)
	if err != nil {
		t.Fatal(err)
	}
	if err := fres.CheckConservation(len(stamped)); err != nil {
		t.Error(err)
	}
	if fres.Report.Scheduler != "FleetOnline(TD-Pipe/least-work)x2" {
		t.Errorf("stamped trace not routed online: %q", fres.Report.Scheduler)
	}
	if len(fres.Records) != 400 {
		t.Errorf("merged %d records", len(fres.Records))
	}

	if _, err := StampArrivals(reqs, ArrivalConfig{Kind: "bogus"}); err == nil {
		t.Error("bogus arrival kind accepted")
	}
}

// The facade's fault-injection path: a seeded plan drawn through
// NewFaultPlan injects crashes into RunFleetFaults, recovery accounting
// lands in Report.Faults, conservation holds (finished + dropped covers
// the trace), and an inactive plan reproduces the fault-free run
// exactly.
func TestFacadeFaultInjection(t *testing.T) {
	trace, err := NewTrace(3000, 17)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(A100, Llama2_70B, 4)
	cfg.SLO = DefaultSLO()
	reqs := trace.Sample(300, 3)
	stamped, err := StampArrivals(reqs, ArrivalConfig{Kind: ArrivalPoisson, Rate: 6, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}

	base, err := RunFleetFaults(cfg, 3, FleetLeastWork, stamped, nil)
	if err != nil {
		t.Fatal(err)
	}
	if base.Report.Faults.Any() {
		t.Errorf("nil plan injected faults: %+v", base.Report.Faults)
	}

	horizon := base.Report.Elapsed
	fc := FaultConfig{
		Seed:               5,
		Horizon:            horizon,
		MTBF:               horizon / 2,
		RestartDelay:       horizon / 20,
		CheckpointInterval: horizon / 8,
	}
	downtime := fc.RestartDelay + FaultWeightReloadTime(A100, Llama2_70B, 4)
	plan, err := NewFaultPlan(fc, 3, downtime)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunFleetFaults(cfg, 3, FleetLeastWork, stamped, plan)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Report.Faults
	if f.Crashes != len(plan.Crashes) {
		t.Errorf("executed %d of %d planned crashes", f.Crashes, len(plan.Crashes))
	}
	if got := res.Report.Requests + f.Dropped; got != len(stamped) {
		t.Errorf("finished %d + dropped %d != %d requests", res.Report.Requests, f.Dropped, len(stamped))
	}

	again, err := RunFleetFaults(cfg, 3, FleetLeastWork, stamped, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != again.Report {
		t.Errorf("fault run not deterministic:\n%v\n%v", res.Report, again.Report)
	}

	if _, err := NewFaultPlan(FaultConfig{MTBF: -1}, 3, 0); err == nil {
		t.Error("invalid fault config accepted")
	}
}

// The facade's policy path: a full stack (admission, retry, breakers,
// preemption, autoscaler) serves a priority-stamped diurnal trace with
// exact conservation, Report.Autoscale records the breathing, and an
// inactive stack reproduces the plain RunFleet report exactly.
func TestFacadeElasticPolicies(t *testing.T) {
	trace, err := NewTrace(3000, 19)
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewConfig(A100, Llama2_70B, 4)
	cfg.SLO = DefaultSLO()
	reqs := trace.Sample(300, 7)
	stamped, err := StampArrivals(reqs, ArrivalConfig{Kind: ArrivalDiurnal, Rate: 8, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	stamped, err = StampPriorities(stamped, PriorityConfig{Tiers: 2, HighFraction: 0.3, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	if HasPriorities(reqs) || !HasPriorities(stamped) {
		t.Fatal("HasPriorities misclassifies traces")
	}

	base, err := RunFleet(cfg, 3, FleetLeastWork, stamped)
	if err != nil {
		t.Fatal(err)
	}
	inactive, err := RunFleetElastic(cfg, 3, FleetLeastWork, stamped, &PolicyStack{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Report != inactive.Report {
		t.Errorf("inactive stack diverges from RunFleet:\n%v\n%v", base.Report, inactive.Report)
	}

	as, err := NewAutoscaler(AutoscalerConfig{
		Min: 1, Max: 3, Interval: 2, ScaleUpQueue: 4, ScaleDownQueue: 1,
		TTFTTarget: cfg.SLO.TTFT / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	stack := &PolicyStack{
		Admission:  NewTokenBucket(40, 8),
		Retry:      NewBackoff(BackoffConfig{Base: 0.05, MaxAttempts: 3, Seed: 31}),
		Breaker:    &BreakerConfig{},
		Preemption: &PreemptionConfig{},
		Autoscaler: as,
	}
	res, err := RunFleetElasticWorkers(cfg, 3, FleetLeastWork, stamped, stack, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.Requests + res.Report.Admission.Dropped; got != len(stamped) {
		t.Errorf("finished %d + dropped %d != %d requests",
			res.Report.Requests, res.Report.Admission.Dropped, len(stamped))
	}
	if !res.Report.Autoscale.Any() {
		t.Errorf("elastic run recorded no autoscale activity: %+v", res.Report.Autoscale)
	}
	if res.Report.Autoscale.GPUSeconds <= 0 {
		t.Errorf("no GPU-seconds accounted: %+v", res.Report.Autoscale)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if L20.GPU.MemGB != 48 || A100.GPU.MemGB != 80 {
		t.Error("node catalog wrong")
	}
	for _, m := range []ModelSpec{Llama2_13B, Qwen2_5_32B, Llama2_70B} {
		if err := m.Validate(); err != nil {
			t.Error(err)
		}
	}
}

func TestFacadeTraceSplit(t *testing.T) {
	trace, err := NewTrace(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace.Train) != 600 || len(trace.Val) != 200 || len(trace.Test) != 200 {
		t.Errorf("split = %d/%d/%d", len(trace.Train), len(trace.Val), len(trace.Test))
	}
	s := trace.Sample(10, 1)
	if len(s) != 10 || s[0].ID != 0 {
		t.Errorf("sample = %v", s)
	}
}
