# Tier-1 verify is `make ci` (build + vet + test + race).

GO ?= go

.PHONY: build vet test race bench fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The fleet layer runs engine replicas on real goroutines; race-check it
# together with the engine it drives.
race:
	$(GO) test -race ./internal/fleet/... ./internal/core/...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzGenerateSplitInvariants -fuzztime=30s ./internal/workload/

ci: build vet test race
