# Tier-1 verify is `make ci` (build + vet + test + race).

GO ?= go
# Shorten in CI's fuzz job (make fuzz FUZZTIME=15s).
FUZZTIME ?= 30s
# Suffix for the benchmark snapshot (CI passes the run number so
# artifacts accumulate into a perf trajectory).
BENCH_N ?= local

.PHONY: build vet fmt-check detlint lint-docs test race chaos bench bench-json bench-compare fuzz smoke ci

build:
	$(GO) build ./...

vet: fmt-check detlint
	$(GO) vet ./...

# Determinism & hot-path lint: cmd/detlint type-checks every package
# (stdlib source importer, no external linter) and enforces the
# simulator's invariants at compile time — no wall clock or global
# math/rand in simulation packages, no goroutines/select outside the
# parallel fabric, no order-sensitive map iteration, no allocations in
# //det:hotpath functions. Suppressions are audited //det:ignore
# directives with mandatory reasons. Any finding exits 1.
detlint:
	$(GO) run ./cmd/detlint .

# Fail on any file gofmt would rewrite.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

# Doc gate: every exported identifier in the repo (facade, internal
# packages, commands) must carry a godoc comment. cmd/lintdocs is a
# small go/ast walker, so the rule needs no external linter.
lint-docs:
	$(GO) run ./cmd/lintdocs -r .

test:
	$(GO) test ./...

# The fleet layer runs engine replicas on real goroutines; race-check it
# together with the engine it drives. The second leg re-runs the
# parallel-fabric determinism suite under the detector with the worker
# pool forced on (multi-worker online, disagg, prefix and fault runs,
# plus the cross-shard-boundary property), since those tests are the
# only ones that exercise coordinator/worker hand-off on every code
# path.
race:
	$(GO) test -race ./internal/fleet/... ./internal/core/...
	$(GO) test -race -count=1 -run 'TestParallel' ./internal/fleet/
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/faults/

# Chaos harness: randomized-but-seeded correlated-failure plans swept
# across domain shapes, outage kinds and checkpoint cadences, served by
# both fleet fault routers at one and four workers, asserting
# exactly-once conservation and byte-identical reports run-to-run and
# across worker counts. TDPIPE_CHAOS_LONG=1 widens the seed set and
# varies the retry budget (the race job above runs the short sweep
# under the detector).
chaos:
	TDPIPE_CHAOS_LONG=$${TDPIPE_CHAOS_LONG:-0} $(GO) test -count=1 -run 'TestChaos' -v ./internal/faults/

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# One machine-readable benchmark snapshot per run: name -> ns/op,
# B/op, allocs/op. CI uploads BENCH_<run>.json as an artifact. The
# intermediate file (not a pipe) makes a benchmark failure fail the
# target instead of being masked by benchjson's exit status.
bench-json:
	$(GO) test -bench=. -benchmem -run='^$$' ./... > bench.out
	$(GO) run ./cmd/benchjson < bench.out > BENCH_$(BENCH_N).json
	@rm -f bench.out
	@echo wrote BENCH_$(BENCH_N).json

# Advisory perf gate: diff two bench-json snapshots and fail on a >15%
# ns/op regression (override with THRESHOLD). CI runs this with the
# merge-base snapshot as OLD.
OLD ?= BENCH_base.json
NEW ?= BENCH_local.json
THRESHOLD ?= 15
bench-compare:
	$(GO) run ./cmd/benchjson -compare -threshold $(THRESHOLD) -geomean $(OLD) $(NEW)

fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzGenerateSplitInvariants -fuzztime=$(FUZZTIME) ./internal/workload/

# Smoke-run the disaggregated serving sweep and the fault-injection
# study at tiny scale through the real CLI: exercises the whole
# hand-off path (prefill pool -> KV export -> modeled transfer ->
# import -> continuous-batching decode) and the crash/recovery path
# (seeded fault plan -> abort -> re-dispatch/checkpoint resume ->
# conservation) so neither -exp surface can rot unnoticed. The second
# run repeats both experiments with the parallel fabric's worker pool
# forced on (-workers 4), exercising the sharded epoch scheduler
# through the same CLI surface.
smoke:
	$(GO) run ./cmd/tdpipe -exp disagg,faults -requests 250 -pool 2000
	$(GO) run ./cmd/tdpipe -exp disagg,faults -requests 250 -pool 2000 -workers 4
	$(GO) run ./cmd/tdpipe -exp autoscale -requests 250 -pool 2000 -workers 4

ci: build vet lint-docs test race chaos smoke
