package costmodel

import (
	"math"
	"testing"

	"repro/internal/hw"
)

func TestTransferTime(t *testing.T) {
	if got := TransferTime(0, 25, 1, 50e-6); got != 0 {
		t.Errorf("empty transfer = %v, want 0", got)
	}
	want := 50e-6 + 5e9/25e9
	if got := TransferTime(5e9, 25, 1, 50e-6); math.Abs(got-want) > 1e-15 {
		t.Errorf("transfer = %v, want %v", got, want)
	}
	// Sharers divide the link: 4 contending streams each see 1/4 the
	// bandwidth.
	solo := TransferTime(1e9, 25, 1, 0)
	if got := TransferTime(1e9, 25, 4, 0); math.Abs(got-4*solo) > 1e-15 {
		t.Errorf("shared transfer = %v, want %v", got, 4*solo)
	}
	if got := TransferTime(1e9, 25, 0, 0); math.Abs(got-solo) > 1e-15 {
		t.Errorf("zero sharers = %v, want solo %v", got, solo)
	}
	// No bandwidth: bare latency, finite.
	if got := TransferTime(1e9, 0, 1, 10e-6); math.IsInf(got, 1) || math.IsNaN(got) || got != 10e-6 {
		t.Errorf("bandwidth-less transfer = %v, want the bare latency", got)
	}
}

// The KV hand-off link: latency + payload/bandwidth, with a fallback
// to the P2P parameters for nodes without an explicit KV link.
func TestKVTransfer(t *testing.T) {
	xfer := KVTransfer(hw.A100) // 25 GB/s, 50 µs
	if got := xfer(0); got != 0 {
		t.Errorf("empty transfer = %v, want 0", got)
	}
	want := 50e-6 + 5e9/25e9
	if got := xfer(5e9); math.Abs(got-want) > 1e-15 {
		t.Errorf("kv transfer = %v, want %v", got, want)
	}
	fb := hw.A100
	fb.KVLinkGBps, fb.KVLinkLatency = 0, 0
	if got, p2p := KVTransfer(fb)(5e9), fb.P2PTime(5e9); math.Abs(got-p2p) > 1e-15 {
		t.Errorf("fallback transfer = %v, want p2p %v", got, p2p)
	}
	if !(KVTransfer(hw.TestNode)(1e9) > 0) {
		t.Error("test node transfer not positive")
	}
}

// An unvalidated node with no bandwidth anywhere must still produce
// finite times (the end of the fallback chain is latency-only).
func TestKVTransferFiniteWithoutBandwidth(t *testing.T) {
	n := hw.Node{P2PLatency: 10e-6, KVLinkLatency: 50e-6}
	if got := KVTransfer(n)(1e9); math.IsInf(got, 1) || math.IsNaN(got) || got != 10e-6 {
		t.Errorf("bandwidth-less KV transfer = %v, want the P2P fallback latency", got)
	}
	n.KVLinkGBps = 25
	if got := KVTransfer(n)(1e9); math.IsInf(got, 1) || math.IsNaN(got) {
		t.Errorf("KV-link-only transfer = %v, want finite", got)
	}
}

// The offload comparator's host-link streaming must price through the
// same formula: aggregate bandwidth divided among the GPUs sharing the
// root complex, no setup latency.
func TestTransferTimeMatchesHostLinkDivision(t *testing.T) {
	const gbps, gpus = 25.0, 4
	perGPULink := gbps * 1e9 / float64(gpus)
	for _, bytes := range []float64{1, 1e6, 3.7e9} {
		want := bytes / perGPULink
		if got := TransferTime(bytes, gbps, gpus, 0); math.Abs(got-want) > 1e-12*want {
			t.Errorf("TransferTime(%v) = %v, want %v", bytes, got, want)
		}
	}
}
