// Package costmodel turns (hardware, model, batch) descriptions into
// execution times using a roofline model: a pass over a set of layers
// takes max(compute time, memory time) plus fixed kernel overheads.
//
// This is the substitute for running CUDA kernels (see DESIGN.md): the
// schedulers only ever observe durations, and the roofline reproduces
// the two regimes the paper's design exploits — prefill saturates
// compute at tiny batch sizes while decode is bound by weight/KV-cache
// bandwidth until batch sizes reach the hundreds (paper §2.1, Fig. 10).
package costmodel

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/model"
)

// Params holds calibration constants. They are the honest knobs of the
// substitution: achieved fractions of peak, not scheduler behaviour.
type Params struct {
	// MFUPrefill is the fraction of peak FLOPS achieved by large
	// compute-bound GEMMs during prefill.
	MFUPrefill float64
	// MFUDecode is the fraction of peak FLOPS achieved by the skinny
	// matmuls of decode (rarely binding; decode is memory-bound).
	MFUDecode float64
	// HBMEff is the achieved fraction of peak memory bandwidth.
	HBMEff float64
	// ActIOFactor is how many times each activation element crosses
	// HBM per layer (reads+writes across the ~10 kernels of a block).
	ActIOFactor float64
	// OverheadPerLayer is fixed kernel-launch overhead per layer.
	OverheadPerLayer float64
	// OverheadPerPass is fixed per-forward-pass overhead on a stage
	// (scheduling, sampling, Python/driver work in the real system).
	OverheadPerPass float64
	// MixedBatchEff discounts achieved FLOPS and bandwidth for hybrid
	// (chunked-prefill + decode) batches. The vLLM-0.5.3-era runtime
	// executes the prefill and decode portions as separate sliced
	// kernels with gather/scatter glue, measurably below pure-phase
	// efficiency — one of the three chunked-prefill costs the paper
	// calls out (§2.3).
	MixedBatchEff float64
}

// DefaultParams returns calibrated constants for a node. The per-GPU
// MFU values reflect that smaller GPUs are easier to saturate (the
// paper's Fig. 6 breakdown implies L20 prefill runs closer to peak than
// A100).
func DefaultParams(n hw.Node) Params {
	p := Params{
		MFUPrefill:       0.55,
		MFUDecode:        0.50,
		HBMEff:           0.80,
		ActIOFactor:      8,
		OverheadPerLayer: 15e-6,
		OverheadPerPass:  200e-6,
		MixedBatchEff:    0.85,
	}
	switch n.Name {
	case "L20":
		p.MFUPrefill = 0.60
	case "A100":
		p.MFUPrefill = 0.40
	}
	return p
}

// Model evaluates execution times for one (node, model) pair.
type Model struct {
	Node hw.Node
	Spec model.Spec
	P    Params
}

// New builds a cost model with default calibration for the node.
func New(n hw.Node, s model.Spec) (*Model, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &Model{Node: n, Spec: s, P: DefaultParams(n)}, nil
}

// PrefillBatch summarizes a batch of prompts entering prefill.
type PrefillBatch struct {
	// Seqs is the number of sequences.
	Seqs int
	// Tokens is the total number of prompt tokens.
	Tokens int
	// SumSqTokens is the sum of squared per-sequence lengths, which
	// drives the quadratic causal-attention term.
	SumSqTokens float64
}

// NewPrefillBatch summarizes the given prompt lengths.
func NewPrefillBatch(lens []int) PrefillBatch {
	b := PrefillBatch{Seqs: len(lens)}
	for _, l := range lens {
		b.Tokens += l
		b.SumSqTokens += float64(l) * float64(l)
	}
	return b
}

// flops/bytes helpers -------------------------------------------------

// prefillComputeFLOPs is the compute for nLayers layers over batch b,
// plus optional LM-head GEMM for the sequences' final positions.
func (c *Model) prefillComputeFLOPs(b PrefillBatch, nLayers int, hasHead bool) float64 {
	s := c.Spec
	dense := float64(b.Tokens) * s.DenseFLOPsPerTokenLayer()
	attn := 2 * float64(s.Hidden) * b.SumSqTokens // causal: ~s^2/2 pairs, 4 FLOPs each
	f := float64(nLayers) * (dense + attn)
	if hasHead {
		f += float64(b.Seqs) * 2 * float64(s.Vocab) * float64(s.Hidden)
	}
	return f
}

// prefillMemBytes is HBM traffic for a prefill pass: weights once,
// activations ActIOFactor times per layer, fresh KV written once.
func (c *Model) prefillMemBytes(b PrefillBatch, weightBytes float64, nLayers int) float64 {
	s := c.Spec
	act := c.P.ActIOFactor * float64(nLayers) * s.ActivationBytes(b.Tokens)
	kvWrite := float64(nLayers) * s.KVBytesPerTokenLayer() * float64(b.Tokens)
	return weightBytes + act + kvWrite
}

// decodeComputeFLOPs is the compute for one decode step of batch
// requests with kvTokens total context, over nLayers layers.
func (c *Model) decodeComputeFLOPs(batch, kvTokens, nLayers int, hasHead bool) float64 {
	s := c.Spec
	dense := float64(batch) * s.DenseFLOPsPerTokenLayer()
	attn := 4 * float64(s.Hidden) * float64(kvTokens)
	f := float64(nLayers) * (dense + attn)
	if hasHead {
		f += float64(batch) * 2 * float64(s.Vocab) * float64(s.Hidden)
	}
	return f
}

// decodeMemBytes is HBM traffic for one decode step: weights once, the
// whole resident KV for these layers, activations.
func (c *Model) decodeMemBytes(batch, kvTokens int, weightBytes float64, nLayers int) float64 {
	s := c.Spec
	kvRead := float64(nLayers) * s.KVBytesPerTokenLayer() * float64(kvTokens)
	act := c.P.ActIOFactor * float64(nLayers) * s.ActivationBytes(batch)
	return weightBytes + kvRead + act
}

// roofline combines compute and memory times with overheads.
func (c *Model) roofline(flops, bytes, mfu float64, nLayers int) float64 {
	ct := flops / (c.Node.GPU.FLOPS() * mfu)
	mt := bytes / (c.Node.GPU.MemBandwidth() * c.P.HBMEff)
	t := ct
	if mt > t {
		t = mt
	}
	return t + float64(nLayers)*c.P.OverheadPerLayer + c.P.OverheadPerPass
}

// Pipeline-parallel costs ---------------------------------------------

// PrefillStage returns the time for stage st of plan to process prefill
// batch b.
func (c *Model) PrefillStage(plan model.PipelinePlan, st int, b PrefillBatch) float64 {
	if b.Tokens == 0 {
		return 0
	}
	stage := plan.Stages[st]
	flops := c.prefillComputeFLOPs(b, stage.Layers, stage.HasHead)
	bytes := c.prefillMemBytes(b, plan.StageWeightBytes(st), stage.Layers)
	return c.roofline(flops, bytes, c.P.MFUPrefill, stage.Layers)
}

// ChunkedPrefillStage returns the time for stage st to process a prefill
// chunk of chunkTokens belonging to a request with ctxTokens already
// cached. The chunk re-reads the cached KV — the "repeated KV cache
// loading overhead" of chunked prefill the paper calls out (§1, §2.3).
func (c *Model) ChunkedPrefillStage(plan model.PipelinePlan, st int, chunkTokens, ctxTokens int) float64 {
	if chunkTokens == 0 {
		return 0
	}
	stage := plan.Stages[st]
	b := PrefillBatch{Seqs: 1, Tokens: chunkTokens,
		SumSqTokens: float64(chunkTokens)*float64(chunkTokens) + 2*float64(chunkTokens)*float64(ctxTokens)}
	flops := c.prefillComputeFLOPs(b, stage.Layers, stage.HasHead)
	bytes := c.prefillMemBytes(b, plan.StageWeightBytes(st), stage.Layers)
	bytes += float64(stage.Layers) * c.Spec.KVBytesPerTokenLayer() * float64(ctxTokens) // KV reload
	return c.roofline(flops, bytes, c.P.MFUPrefill, stage.Layers)
}

// DecodeStage returns the time for stage st to run one decode step over
// batch requests with kvTokens total cached context.
func (c *Model) DecodeStage(plan model.PipelinePlan, st int, batch, kvTokens int) float64 {
	if batch == 0 {
		return 0
	}
	stage := plan.Stages[st]
	flops := c.decodeComputeFLOPs(batch, kvTokens, stage.Layers, stage.HasHead)
	bytes := c.decodeMemBytes(batch, kvTokens, plan.StageWeightBytes(st), stage.Layers)
	return c.roofline(flops, bytes, c.P.MFUDecode, stage.Layers)
}

// HybridStage returns the time for stage st to run one hybrid-batch
// iteration: decodeBatch decode tokens (kvTokens context) mixed with a
// prefill chunk of chunkTokens (chunkCtx already cached). Used by the
// PP+HB and TP+HB baselines.
func (c *Model) HybridStage(plan model.PipelinePlan, st int, decodeBatch, kvTokens, chunkTokens, chunkCtx int) float64 {
	if decodeBatch == 0 && chunkTokens == 0 {
		return 0
	}
	stage := plan.Stages[st]
	b := PrefillBatch{Seqs: 1, Tokens: chunkTokens,
		SumSqTokens: float64(chunkTokens)*float64(chunkTokens) + 2*float64(chunkTokens)*float64(chunkCtx)}
	if chunkTokens == 0 {
		b = PrefillBatch{}
	}
	flops := c.prefillComputeFLOPs(b, stage.Layers, false) +
		c.decodeComputeFLOPs(decodeBatch, kvTokens, stage.Layers, stage.HasHead)
	bytes := float64(stage.Layers)*c.Spec.KVBytesPerTokenLayer()*float64(kvTokens+chunkCtx+chunkTokens) +
		plan.StageWeightBytes(st) +
		c.P.ActIOFactor*float64(stage.Layers)*c.Spec.ActivationBytes(decodeBatch+chunkTokens)
	// Mixed batches run at an intermediate compute efficiency, further
	// discounted by the sliced-kernel penalty.
	mfu := (c.P.MFUPrefill + c.P.MFUDecode) / 2
	return c.mixedRoofline(flops, bytes, mfu, stage.Layers, chunkTokens > 0 && decodeBatch > 0)
}

// mixedRoofline applies the hybrid-batch efficiency discount when a
// pass genuinely mixes phases.
func (c *Model) mixedRoofline(flops, bytes, mfu float64, nLayers int, mixed bool) float64 {
	if mixed {
		eff := c.P.MixedBatchEff
		if eff <= 0 || eff > 1 {
			eff = 1
		}
		mfu *= eff
		bytes /= eff // equivalent to discounting achieved bandwidth
	}
	return c.roofline(flops, bytes, mfu, nLayers)
}

// P2PActivation returns the stage-to-stage transfer time for a
// microbatch of tokens tokens.
func (c *Model) P2PActivation(tokens int) float64 {
	return c.Node.P2PTime(c.Spec.ActivationBytes(tokens))
}

// Tensor-parallel costs -----------------------------------------------

// allReduceFactor converts payload bytes to effective ring traffic:
// 2(world-1)/world per all-reduce.
func allReduceFactor(world int) float64 {
	if world <= 1 {
		return 0
	}
	return 2 * float64(world-1) / float64(world)
}

// tpComm returns total all-reduce time across all layers for tokens
// activations: two all-reduces per transformer layer (paper §2.2.3).
func (c *Model) tpComm(world, tokens int) float64 {
	if world <= 1 || tokens == 0 {
		return 0
	}
	s := c.Spec
	perLayer := allReduceFactor(world) * s.ActivationBytes(tokens) / (c.Node.AllReduceGBps * 1e9)
	return float64(s.Layers) * (2*perLayer + 2*c.Node.CollectiveLatency)
}

// TPPrefill returns (compute, communication) time for a full-model
// prefill of batch b sharded over world GPUs: each layer costs 1/world
// of the FLOPs and weight/KV bytes plus two all-reduces of the
// activation; activations themselves are replicated on every rank.
func (c *Model) TPPrefill(world int, b PrefillBatch) (compute, comm float64) {
	if b.Tokens == 0 {
		return 0, 0
	}
	s := c.Spec
	w := float64(world)
	flops := c.prefillComputeFLOPs(b, s.Layers, true) / w
	bytes := s.WeightBytes()/w +
		c.P.ActIOFactor*float64(s.Layers)*s.ActivationBytes(b.Tokens) +
		float64(s.Layers)*s.KVBytesPerTokenLayer()*float64(b.Tokens)/w
	compute = c.roofline(flops, bytes, c.P.MFUPrefill, s.Layers)
	return compute, c.tpComm(world, b.Tokens)
}

// TPDecode returns (compute, communication) time for one decode step of
// the full model sharded over world GPUs. KV cache is sharded, so each
// rank reads 1/world of it.
func (c *Model) TPDecode(world, batch, kvTokens int) (compute, comm float64) {
	if batch == 0 {
		return 0, 0
	}
	s := c.Spec
	w := float64(world)
	flops := c.decodeComputeFLOPs(batch, kvTokens, s.Layers, true) / w
	bytes := s.WeightBytes()/w +
		float64(s.Layers)*s.KVBytesPerTokenLayer()*float64(kvTokens)/w +
		c.P.ActIOFactor*float64(s.Layers)*s.ActivationBytes(batch)
	compute = c.roofline(flops, bytes, c.P.MFUDecode, s.Layers)
	return compute, c.tpComm(world, batch)
}

// TPHybrid returns (compute, communication) time for a hybrid iteration
// (decode batch mixed with a prefill chunk) under tensor parallelism.
func (c *Model) TPHybrid(world, decodeBatch, kvTokens, chunkTokens, chunkCtx int) (compute, comm float64) {
	if decodeBatch == 0 && chunkTokens == 0 {
		return 0, 0
	}
	s := c.Spec
	w := float64(world)
	b := PrefillBatch{Seqs: 1, Tokens: chunkTokens,
		SumSqTokens: float64(chunkTokens)*float64(chunkTokens) + 2*float64(chunkTokens)*float64(chunkCtx)}
	flops := (c.prefillComputeFLOPs(b, s.Layers, false) +
		c.decodeComputeFLOPs(decodeBatch, kvTokens, s.Layers, true)) / w
	bytes := s.WeightBytes()/w +
		float64(s.Layers)*s.KVBytesPerTokenLayer()*float64(kvTokens+chunkCtx+chunkTokens)/w +
		c.P.ActIOFactor*float64(s.Layers)*s.ActivationBytes(decodeBatch+chunkTokens)
	mfu := (c.P.MFUPrefill + c.P.MFUDecode) / 2
	compute = c.mixedRoofline(flops, bytes, mfu, s.Layers, chunkTokens > 0 && decodeBatch > 0)
	return compute, c.tpComm(world, decodeBatch+chunkTokens)
}

// Pipeline bottleneck helper ------------------------------------------

// DecodeBottleneck returns the slowest per-stage time of one decode
// step, which governs pipeline throughput when all stages are busy.
func (c *Model) DecodeBottleneck(plan model.PipelinePlan, batch, kvTokens int) float64 {
	var max float64
	for st := range plan.Stages {
		if t := c.DecodeStage(plan, st, batch, kvTokens); t > max {
			max = t
		}
	}
	return max
}

// PrefillBottleneck returns the slowest per-stage time of a prefill
// batch across the pipeline.
func (c *Model) PrefillBottleneck(plan model.PipelinePlan, b PrefillBatch) float64 {
	var max float64
	for st := range plan.Stages {
		if t := c.PrefillStage(plan, st, b); t > max {
			max = t
		}
	}
	return max
}

// String summarizes the calibrated deployment.
func (c *Model) String() string {
	return fmt.Sprintf("costmodel(%s on %s)", c.Spec.Name, c.Node.Name)
}
