package costmodel

import "repro/internal/hw"

// Bulk-transfer costs --------------------------------------------------
//
// Every path that moves bytes over a modeled link — KV hand-offs
// between disaggregated replicas, checkpoint serialization and
// restore, and host-link weight/KV streaming in the offload comparator
// — prices the move here, so there is exactly one transfer formula to
// calibrate rather than per-subsystem copies that drift apart.

// TransferTime returns the time to move bytes over a link of gbps GB/s
// shared by sharers concurrent streams, plus a fixed per-transfer
// latency. Zero bytes cost nothing (not even the latency: no transfer
// happens). A non-positive bandwidth yields the bare latency rather
// than dividing by zero — the result is always finite, never the +Inf
// that would poison virtual-time schedules.
func TransferTime(bytes, gbps float64, sharers int, latency float64) float64 {
	if bytes <= 0 {
		return 0
	}
	if sharers < 1 {
		sharers = 1
	}
	if gbps <= 0 {
		return latency
	}
	return latency + bytes*float64(sharers)/(gbps*1e9)
}

// KVTransfer returns the cost function for migrating KV-cache bytes to
// a peer replica on the given node: checkpoint serialization/restore
// and disaggregated prefill→decode hand-offs both use it. The link
// fallback chain is resolved once, up front: the explicit KV link if
// the node has one, else the P2P parameters, else (no usable bandwidth
// anywhere — an unvalidated node) the applicable fixed latency alone.
func KVTransfer(n hw.Node) func(bytes float64) float64 {
	bw, lat := n.KVLinkGBps, n.KVLinkLatency
	if bw <= 0 {
		bw, lat = n.P2PGBps, n.P2PLatency
	}
	return func(bytes float64) float64 {
		return TransferTime(bytes, bw, 1, lat)
	}
}
