package costmodel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
)

// The cost model sits on every scheduling decision's hot path; these
// benchmarks track its per-call cost.

func benchModel(b *testing.B) (*Model, model.PipelinePlan) {
	b.Helper()
	cm, err := New(hw.A100, model.Llama2_70B)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := model.Partition(model.Llama2_70B, 4)
	if err != nil {
		b.Fatal(err)
	}
	return cm, plan
}

func BenchmarkPrefillStage(b *testing.B) {
	b.ReportAllocs()
	cm, plan := benchModel(b)
	batch := NewPrefillBatch([]int{512, 256, 1024, 300})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cm.PrefillStage(plan, 1, batch)
	}
}

func BenchmarkDecodeStage(b *testing.B) {
	b.ReportAllocs()
	cm, plan := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cm.DecodeStage(plan, 2, 200, 200*500)
	}
}

func BenchmarkDecodeBottleneck(b *testing.B) {
	b.ReportAllocs()
	cm, plan := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = cm.DecodeBottleneck(plan, 200, 200*500)
	}
}

func BenchmarkTPDecode(b *testing.B) {
	b.ReportAllocs()
	cm, _ := benchModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = cm.TPDecode(4, 400, 400*500)
	}
}
