package costmodel

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/model"
)

func mustNew(t *testing.T, n hw.Node, s model.Spec) *Model {
	t.Helper()
	c, err := New(n, s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustPlan(t *testing.T, s model.Spec, stages int) model.PipelinePlan {
	t.Helper()
	p, err := model.Partition(s, stages)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidates(t *testing.T) {
	if _, err := New(hw.Node{}, model.Tiny); err == nil {
		t.Error("invalid node accepted")
	}
	if _, err := New(hw.L20, model.Spec{}); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestNewPrefillBatch(t *testing.T) {
	b := NewPrefillBatch([]int{100, 200, 300})
	if b.Seqs != 3 || b.Tokens != 600 {
		t.Errorf("batch = %+v", b)
	}
	if b.SumSqTokens != 100*100+200*200+300*300 {
		t.Errorf("sumsq = %v", b.SumSqTokens)
	}
}

// Paper §2.1: "a very small batch size is sufficient for the prefill
// phase to saturate computational resources, while the decode phase
// requires a substantially larger batch size."
func TestPrefillComputeBoundDecodeMemoryBound(t *testing.T) {
	c := mustNew(t, hw.A100, model.Llama2_70B)
	plan := mustPlan(t, model.Llama2_70B, 4)

	// A single 512-token prompt: compute time should dominate memory.
	b := NewPrefillBatch([]int{512})
	flops := c.prefillComputeFLOPs(b, plan.Stages[0].Layers, false)
	bytes := c.prefillMemBytes(b, plan.StageWeightBytes(0), plan.Stages[0].Layers)
	ct := flops / (c.Node.GPU.FLOPS() * c.P.MFUPrefill)
	mt := bytes / (c.Node.GPU.MemBandwidth() * c.P.HBMEff)
	if ct <= mt {
		t.Errorf("prefill not compute bound: compute %v <= memory %v", ct, mt)
	}

	// A decode step at small batch is memory bound (weight reads
	// dominate); at very large batch it approaches the compute roof,
	// which is what saturates the intensity curve.
	flops = c.decodeComputeFLOPs(32, 32*500, plan.Stages[0].Layers, false)
	bytes = c.decodeMemBytes(32, 32*500, plan.StageWeightBytes(0), plan.Stages[0].Layers)
	ct = flops / (c.Node.GPU.FLOPS() * c.P.MFUDecode)
	mt = bytes / (c.Node.GPU.MemBandwidth() * c.P.HBMEff)
	if mt <= ct {
		t.Errorf("small-batch decode not memory bound: memory %v <= compute %v", mt, ct)
	}
}

// The decode intensity curve (paper Fig. 10 left): per-request rate
// rises with batch size and saturates.
func TestDecodeIntensityCurveSaturates(t *testing.T) {
	c := mustNew(t, hw.A100, model.Llama2_70B)
	plan := mustPlan(t, model.Llama2_70B, 4)
	rate := func(b int) float64 {
		return float64(b) / c.DecodeStage(plan, 0, b, b*400)
	}
	if !(rate(16) < rate(64) && rate(64) < rate(256)) {
		t.Errorf("rate not increasing: %v %v %v", rate(16), rate(64), rate(256))
	}
	// Saturation: doubling 256->512 gains much less than 16->32.
	gainSmall := rate(32) / rate(16)
	gainLarge := rate(512) / rate(256)
	if gainLarge >= gainSmall {
		t.Errorf("no saturation: small gain %v, large gain %v", gainSmall, gainLarge)
	}
}

func TestZeroWorkCostsNothing(t *testing.T) {
	c := mustNew(t, hw.L20, model.Tiny)
	plan := mustPlan(t, model.Tiny, 2)
	if got := c.PrefillStage(plan, 0, PrefillBatch{}); got != 0 {
		t.Errorf("empty prefill = %v", got)
	}
	if got := c.DecodeStage(plan, 0, 0, 0); got != 0 {
		t.Errorf("empty decode = %v", got)
	}
	if got := c.ChunkedPrefillStage(plan, 0, 0, 100); got != 0 {
		t.Errorf("empty chunk = %v", got)
	}
	if got := c.HybridStage(plan, 0, 0, 0, 0, 0); got != 0 {
		t.Errorf("empty hybrid = %v", got)
	}
	if comp, comm := c.TPPrefill(4, PrefillBatch{}); comp != 0 || comm != 0 {
		t.Errorf("empty TP prefill = %v %v", comp, comm)
	}
	if comp, comm := c.TPDecode(4, 0, 0); comp != 0 || comm != 0 {
		t.Errorf("empty TP decode = %v %v", comp, comm)
	}
}

// Chunked prefill pays a KV-reload penalty: prefilling a prompt in k
// chunks costs more than prefilling it in one pass (paper §2.3).
func TestChunkedPrefillReloadPenalty(t *testing.T) {
	c := mustNew(t, hw.L20, model.Qwen2_5_32B)
	plan := mustPlan(t, model.Qwen2_5_32B, 4)
	whole := c.PrefillStage(plan, 1, NewPrefillBatch([]int{2048}))
	var chunked float64
	const chunk = 512
	for done := 0; done < 2048; done += chunk {
		chunked += c.ChunkedPrefillStage(plan, 1, chunk, done)
	}
	if chunked <= whole {
		t.Errorf("chunked prefill (%v) not more expensive than whole (%v)", chunked, whole)
	}
}

// Paper Fig. 6 shape: TP communication share grows with device count and
// reaches roughly half the execution time at 4 GPUs on both nodes, with
// the A100 node's share at least the L20 node's.
func TestTPCommShareShape(t *testing.T) {
	b := NewPrefillBatch([]int{2048})
	share := func(n hw.Node, world int) float64 {
		c := mustNew(t, n, model.Llama30B)
		comp, comm := c.TPPrefill(world, b)
		return comm / (comp + comm)
	}
	for _, n := range []hw.Node{hw.L20, hw.A100} {
		s1 := share(n, 1)
		s2 := share(n, 2)
		s4 := share(n, 4)
		if s1 != 0 {
			t.Errorf("%s: 1-GPU comm share = %v, want 0", n.Name, s1)
		}
		if !(s2 < s4) {
			t.Errorf("%s: comm share not growing: s2=%v s4=%v", n.Name, s2, s4)
		}
		if s4 < 0.30 || s4 > 0.65 {
			t.Errorf("%s: 4-GPU comm share = %v, want ~0.45-0.55 (paper 47%%/54%%)", n.Name, s4)
		}
	}
	if share(hw.A100, 4) <= share(hw.L20, 4) {
		t.Errorf("A100 comm share (%v) not above L20 (%v)", share(hw.A100, 4), share(hw.L20, 4))
	}
}

// Paper §2.2.3: TP prefill scales sublinearly (1.84x on L20, 1.64x on
// A100 from 1 to 4 GPUs).
func TestTPScalingSublinear(t *testing.T) {
	b := NewPrefillBatch([]int{2048})
	speedup := func(n hw.Node) float64 {
		c := mustNew(t, n, model.Llama30B)
		c1, m1 := c.TPPrefill(1, b)
		c4, m4 := c.TPPrefill(4, b)
		return (c1 + m1) / (c4 + m4)
	}
	for _, n := range []hw.Node{hw.L20, hw.A100} {
		s := speedup(n)
		if s < 1.2 || s > 3.0 {
			t.Errorf("%s: 1->4 GPU speedup %v, want sublinear in [1.2,3.0]", n.Name, s)
		}
	}
	if speedup(hw.A100) >= speedup(hw.L20) {
		t.Errorf("A100 speedup (%v) should be below L20 (%v): more comm-bound", speedup(hw.A100), speedup(hw.L20))
	}
}

// PP communicates far less than TP for the same work: a single P2P
// activation transfer per stage boundary vs 2 all-reduces per layer.
func TestPPCommFarCheaperThanTP(t *testing.T) {
	c := mustNew(t, hw.L20, model.Llama2_70B)
	b := NewPrefillBatch([]int{1024})
	_, tpComm := c.TPPrefill(4, b)
	ppComm := 3 * c.P2PActivation(1024) // 3 boundary crossings in a 4-stage pipeline
	if ppComm*5 > tpComm {
		t.Errorf("PP comm %v not far below TP comm %v", ppComm, tpComm)
	}
}

func TestDecodeBottleneckIsMaxOverStages(t *testing.T) {
	c := mustNew(t, hw.A100, model.Llama2_70B)
	plan := mustPlan(t, model.Llama2_70B, 4)
	bn := c.DecodeBottleneck(plan, 128, 128*300)
	for st := range plan.Stages {
		if tm := c.DecodeStage(plan, st, 128, 128*300); tm > bn {
			t.Errorf("stage %d time %v exceeds bottleneck %v", st, tm, bn)
		}
	}
	pbn := c.PrefillBottleneck(plan, NewPrefillBatch([]int{512}))
	if pbn <= 0 {
		t.Errorf("prefill bottleneck = %v", pbn)
	}
}

// Hybrid batch cost is at least the decode-only cost of its decode part.
func TestHybridAtLeastDecode(t *testing.T) {
	c := mustNew(t, hw.L20, model.Qwen2_5_32B)
	plan := mustPlan(t, model.Qwen2_5_32B, 4)
	d := c.DecodeStage(plan, 0, 64, 64*200)
	h := c.HybridStage(plan, 0, 64, 64*200, 256, 0)
	if h < d*0.8 {
		t.Errorf("hybrid %v implausibly below decode-only %v", h, d)
	}
}

// Property: all stage times are positive for non-empty work and monotone
// in tokens / batch size.
func TestCostMonotonicityProperty(t *testing.T) {
	c := mustNew(t, hw.L20, model.Tiny)
	plan := mustPlan(t, model.Tiny, 2)
	prop := func(a, b uint16) bool {
		x, y := int(a%4096)+1, int(b%4096)+1
		if x > y {
			x, y = y, x
		}
		pf1 := c.PrefillStage(plan, 0, NewPrefillBatch([]int{x}))
		pf2 := c.PrefillStage(plan, 0, NewPrefillBatch([]int{y}))
		d1 := c.DecodeStage(plan, 0, x, x*10)
		d2 := c.DecodeStage(plan, 0, y, y*10)
		return pf1 > 0 && d1 > 0 && pf1 <= pf2 && d1 <= d2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Sanity: absolute decode throughput for A100+70B across a 4-stage
// pipeline lands within a plausible order of magnitude of the paper's
// ~2900 tokens/s overall result (decode-only should exceed it).
func TestAbsoluteScaleSanity(t *testing.T) {
	c := mustNew(t, hw.A100, model.Llama2_70B)
	plan := mustPlan(t, model.Llama2_70B, 4)
	step := c.DecodeBottleneck(plan, 200, 200*500)
	// 4 batches in flight, each step yields `batch` tokens.
	rate := 200.0 / step
	if rate < 2000 || rate > 100000 {
		t.Errorf("decode pipeline rate = %.0f tokens/s, implausible scale", rate)
	}
	if math.IsNaN(rate) || math.IsInf(rate, 0) {
		t.Errorf("rate = %v", rate)
	}
}
