package fleet

import (
	"bytes"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

// elasticStack builds a fully-loaded policy stack for tests: admission,
// retry, breakers, preemption and an autoscaler over a max-4 fleet.
func elasticStack(t *testing.T, maxReplicas int) *policy.Stack {
	t.Helper()
	as, err := policy.NewAutoscaler(policy.AutoscalerConfig{
		Min: 1, Max: maxReplicas, Interval: 0.05,
		ScaleUpQueue: 4, ScaleDownQueue: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &policy.Stack{
		Admission:  policy.NewTokenBucket(3000, 64),
		Retry:      policy.NewBackoff(policy.BackoffConfig{Base: 0.01, Max: 0.1, Jitter: 0.2, Seed: 3}),
		Breaker:    &policy.BreakerConfig{FailureThreshold: 4, Cooldown: 0.1, HalfOpenSuccesses: 2},
		Autoscaler: as,
		Preemption: &policy.PreemptionConfig{},
	}
}

// checkElasticConservation asserts the policy-run invariant: every
// trace request finished exactly once XOR was dropped with accounting
// in Report.Admission.Dropped.
func checkElasticConservation(t *testing.T, res *Result, n int) {
	t.Helper()
	if len(res.Records) != n {
		t.Fatalf("%d records for %d requests", len(res.Records), n)
	}
	finished := 0
	for _, rec := range res.Records {
		if rec.Finished() {
			finished++
		}
	}
	if finished != res.Report.Requests {
		t.Fatalf("%d finished records, report says %d", finished, res.Report.Requests)
	}
	if got := res.Report.Requests + res.Report.Admission.Dropped; got != n {
		t.Fatalf("finished %d + dropped %d = %d, want %d",
			res.Report.Requests, res.Report.Admission.Dropped, got, n)
	}
}

// An inactive stack must take the exact RunOnline code path: reports
// and records byte-identical, at one worker and at four (the race leg
// re-runs this under -race).
func TestParallelElasticInactiveStackByteIdentical(t *testing.T) {
	cfg := fastConfig(2)
	reqs := workload.StampArrivals(smallTrace(250, 5), workload.Poisson{Rate: 400}, 17)
	for _, workers := range []int{1, 4} {
		want, err := RunOnlineWorkers(cfg, 4, mustPolicy(t, LeastWork, Options{}), reqs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, stack := range []*policy.Stack{nil, {}} {
			got, err := RunOnlineElasticWorkers(cfg, 4, mustPolicy(t, LeastWork, Options{}), reqs, stack, workers)
			if err != nil {
				t.Fatalf("workers=%d stack=%v: %v", workers, stack, err)
			}
			if !bytes.Equal(fullJSON(t, want.Report, want.Records), fullJSON(t, got.Report, got.Records)) {
				t.Fatalf("workers=%d: inactive stack %v diverges from RunOnlineWorkers", workers, stack)
			}
		}
	}
}

// The fabric guarantee extends to active stacks: every policy
// intervention executes on the control timeline, so elastic reports
// are byte-identical across worker counts.
func TestParallelElasticByteIdenticalToSequential(t *testing.T) {
	cfg := fastConfig(2)
	reqs, err := workload.StampPriorities(
		workload.StampArrivals(smallTrace(300, 5), workload.Poisson{Rate: 600}, 17),
		workload.PriorityConfig{Tiers: 2, HighFraction: 0.5, Seed: 29})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		res, err := RunOnlineElasticWorkers(cfg, 4, mustPolicy(t, LeastWork, Options{}), reqs, elasticStack(t, 4), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkElasticConservation(t, res, len(reqs))
		return fullJSON(t, res.Report, res.Records)
	}
	seq := run(1)
	for _, w := range workerSweep {
		if got := run(w); !bytes.Equal(seq, got) {
			t.Errorf("workers=%d diverges from sequential:\n%s\n%s", w, seq, got)
		}
	}
}

// The autoscaler must actually breathe: a bursty trace over a max-4
// fleet starting at 1 replica should scale up, and the provisioned
// GPU-seconds must come in under the static-peak bill (4 replicas for
// the whole run).
func TestElasticAutoscalerBreathes(t *testing.T) {
	cfg := fastConfig(2)
	reqs := workload.StampArrivals(smallTrace(400, 11), workload.Poisson{Rate: 1200}, 19)
	as, err := policy.NewAutoscaler(policy.AutoscalerConfig{
		Min: 1, Max: 4, Interval: 0.02,
		ScaleUpQueue: 2, ScaleDownQueue: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnlineElastic(cfg, 4, mustPolicy(t, LeastWork, Options{}), reqs, &policy.Stack{Autoscaler: as})
	if err != nil {
		t.Fatal(err)
	}
	checkElasticConservation(t, res, len(reqs))
	a := res.Report.Autoscale
	if !a.Any() {
		t.Fatal("no autoscale activity recorded")
	}
	if a.ScaleUps == 0 {
		t.Fatalf("bursty trace never scaled up: %+v", a)
	}
	if a.PeakReplicas < 2 {
		t.Fatalf("peak replicas = %d, want >= 2: %+v", a.PeakReplicas, a)
	}
	if a.ColdStartSeconds <= 0 {
		t.Fatalf("scale-ups paid no cold start: %+v", a)
	}
	staticPeak := 4.0 * float64(cfg.World) * res.Report.Elapsed
	if a.GPUSeconds <= 0 || a.GPUSeconds >= staticPeak {
		t.Fatalf("elastic GPU-seconds %.2f not inside (0, static peak %.2f)", a.GPUSeconds, staticPeak)
	}
	if res.Report.Requests != len(reqs) {
		t.Fatalf("autoscale-only stack dropped requests: %+v", res.Report.Admission)
	}
}

// A starved token bucket must shed, retry on the seeded schedule, and
// drop what the budget cannot save — with every decision accounted.
func TestElasticAdmissionShedsAndRetries(t *testing.T) {
	cfg := fastConfig(2)
	reqs := workload.StampArrivals(smallTrace(200, 7), workload.Poisson{Rate: 2000}, 23)
	stack := &policy.Stack{
		Admission: policy.NewTokenBucket(50, 1),
		Retry:     policy.NewBackoff(policy.BackoffConfig{Base: 0.005, Max: 0.05, MaxAttempts: 2, Seed: 1}),
	}
	res, err := RunOnlineElastic(cfg, 2, mustPolicy(t, RoundRobin, Options{}), reqs, stack)
	if err != nil {
		t.Fatal(err)
	}
	checkElasticConservation(t, res, len(reqs))
	ad := res.Report.Admission
	if ad.Shed == 0 || ad.Retries == 0 || ad.Dropped == 0 {
		t.Fatalf("starved bucket produced no policy activity: %+v", ad)
	}
	if res.Report.Requests == 0 {
		t.Fatal("everything dropped; bucket should admit some traffic")
	}
	// Determinism: the same seeded stack reproduces the exact report.
	stack2 := &policy.Stack{
		Admission: policy.NewTokenBucket(50, 1),
		Retry:     policy.NewBackoff(policy.BackoffConfig{Base: 0.005, Max: 0.05, MaxAttempts: 2, Seed: 1}),
	}
	res2, err := RunOnlineElastic(cfg, 2, mustPolicy(t, RoundRobin, Options{}), reqs, stack2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fullJSON(t, res.Report, res.Records), fullJSON(t, res2.Report, res2.Records)) {
		t.Fatal("identical seeded runs diverge")
	}
}

// Priority preemption: a trace with low-tier bulk and high-tier
// arrivals on a KV-tight single replica should evict low tiers through
// the recompute path.
func TestElasticPreemption(t *testing.T) {
	cfg := fastConfig(1)
	cfg.MemUtilization = 0.0005 // tighten the KV pool to force pressure
	reqs, err := workload.StampPriorities(
		workload.StampArrivals(smallTrace(150, 13), workload.Poisson{Rate: 3000}, 31),
		workload.PriorityConfig{Tiers: 2, HighFraction: 0.2, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	if !workload.HasPriorities(reqs) {
		t.Fatal("trace has no priority structure")
	}
	res, err := RunOnlineElastic(cfg, 1, mustPolicy(t, RoundRobin, Options{}), reqs, &policy.Stack{
		Preemption: &policy.PreemptionConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkElasticConservation(t, res, len(reqs))
	if res.Report.Admission.Preemptions == 0 {
		t.Fatalf("KV-tight priority trace caused no preemptions: %+v", res.Report.Admission)
	}
	if res.Report.Recomputes < res.Report.Admission.Preemptions {
		t.Fatalf("preemptions %d not reflected in recomputes %d",
			res.Report.Admission.Preemptions, res.Report.Recomputes)
	}
}

func TestElasticRejectsBadConfig(t *testing.T) {
	cfg := fastConfig(1)
	reqs := workload.StampArrivals(smallTrace(10, 3), workload.Poisson{Rate: 100}, 5)
	as, err := policy.NewAutoscaler(policy.AutoscalerConfig{Min: 1, Max: 8, Interval: 1, ScaleUpQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOnlineElastic(cfg, 2, mustPolicy(t, RoundRobin, Options{}), reqs, &policy.Stack{Autoscaler: as}); err == nil {
		t.Fatal("autoscaler Max above provisioned replicas must be rejected")
	}
	if _, err := RunOnlineElastic(cfg, 0, mustPolicy(t, RoundRobin, Options{}), reqs, elasticStack(t, 4)); err == nil {
		t.Fatal("zero replicas must be rejected")
	}
	if _, err := RunOnlineElasticWorkers(cfg, 2, nil, reqs, elasticStack(t, 2), 1); err == nil {
		t.Fatal("nil policy must be rejected")
	}
}
