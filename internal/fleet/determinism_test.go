package fleet

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// The fleet-level determinism regression suite: the shared-clock online
// router — with its incremental load counters, pooled events and direct
// worker transport — must produce byte-identical reports run-to-run and
// across transports.

func onlineReportJSON(t *testing.T, cfg core.Config, reqs []workload.Request) []byte {
	t.Helper()
	p := mustPolicy(t, PredictedCost, Options{Seed: 1})
	res, err := RunOnline(cfg, 4, p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestOnlineReportByteIdenticalAcrossRuns(t *testing.T) {
	reqs := workload.StampArrivals(smallTrace(400, 3), workload.Poisson{Rate: 300}, 9)
	a := onlineReportJSON(t, fastConfig(2), reqs)
	b := onlineReportJSON(t, fastConfig(2), reqs)
	if !bytes.Equal(a, b) {
		t.Errorf("online fleet reports differ across identical runs:\n%s\n%s", a, b)
	}
}

func TestOnlineReportByteIdenticalAcrossTransports(t *testing.T) {
	reqs := workload.StampArrivals(smallTrace(400, 4), workload.Poisson{Rate: 300}, 9)
	direct := fastConfig(2)
	direct.Transport = runtime.TransportDirect
	mailbox := fastConfig(2)
	mailbox.Transport = runtime.TransportMailbox
	a := onlineReportJSON(t, direct, reqs)
	b := onlineReportJSON(t, mailbox, reqs)
	if !bytes.Equal(a, b) {
		t.Errorf("direct vs mailbox online fleet reports differ:\n%s\n%s", a, b)
	}
}

// The offline pre-shard path must also be transport-invariant, with
// replicas running concurrently on real goroutines.
func TestFleetRunByteIdenticalAcrossTransports(t *testing.T) {
	reqs := smallTrace(400, 5)
	run := func(tr runtime.Transport) []byte {
		cfg := fastConfig(2)
		cfg.Transport = tr
		p := mustPolicy(t, LeastWork, Options{Seed: 1})
		res, err := Run(cfg, 4, p, reqs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := run(runtime.TransportDirect)
	b := run(runtime.TransportMailbox)
	if !bytes.Equal(a, b) {
		t.Errorf("direct vs mailbox fleet reports differ:\n%s\n%s", a, b)
	}
}
