package fleet

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/workload"
)

// Load is the dispatcher's view of the work already assigned to one
// replica.
type Load struct {
	// Requests is the number of requests assigned so far.
	Requests int
	// InputTokens is the known prefill work assigned so far.
	InputTokens int
	// CostTokens accumulates the dispatching policy's own Cost
	// estimates for the assigned requests.
	CostTokens float64
	// WarmTokens is how many tokens of the *current* request's shared
	// prefix this replica already holds — live KV residency for the
	// online router, assignment history for the offline pre-shard.
	// Always 0 for requests without prefix structure; recomputed per
	// request before Pick. In a disaggregated decode pool it is the
	// resident share of the hand-off's exported block window instead.
	WarmTokens int
	// FreeKVTokens is the replica's live KV headroom in tokens (free
	// plus reclaimable warm blocks) at routing time — the pool-aware
	// signal the disaggregated decode pick ranks on. Populated by the
	// online and disaggregated routers; 0 in the offline pre-shard,
	// which has no live engines to probe.
	FreeKVTokens int
}

// Policy decides which replica receives each request of a trace.
// Implementations may keep internal state (round-robin counters, seeded
// RNGs), so use a fresh instance per dispatch for reproducibility.
// Policies must not read Request.OutputLen — like the engine, they only
// see observable features and the predictor's estimate.
type Policy interface {
	// Name returns the registry name of the policy.
	Name() string
	// Pick returns the index in loads of the replica that receives r.
	Pick(r workload.Request, loads []Load) int
	// Cost estimates the work r adds to its replica; the dispatcher
	// accumulates it into Load.CostTokens before the next Pick.
	Cost(r workload.Request) float64
}

// Options parameterize policy construction.
type Options struct {
	// Seed drives stochastic policies (random).
	Seed int64
	// Predictor supplies output-length estimates for predicted-cost;
	// nil falls back to the oracle.
	Predictor core.LenPredictor
}

// Factory builds a fresh policy instance from options.
type Factory func(Options) Policy

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register makes a policy constructable by name. It panics on a
// duplicate name so wiring mistakes fail at init time.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("fleet: duplicate policy %q", name))
	}
	registry[name] = f
}

// New builds a registered policy by name.
func New(name string, opts Options) (Policy, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fleet: unknown policy %q (have %v)", name, Names())
	}
	return f(opts), nil
}

// Names lists the registered policies, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Built-in policy names.
const (
	// RoundRobin cycles through replicas in order.
	RoundRobin = "round-robin"
	// Random picks a seeded uniform replica per request.
	Random = "random"
	// LeastWork assigns to the replica with the least known prefill
	// work (input tokens) so far.
	LeastWork = "least-work"
	// PredictedCost assigns to the replica with the least estimated
	// total work, input plus the predictor's output-length estimate —
	// the paper's key signal, applied to dispatch.
	PredictedCost = "predicted-cost"
	// PrefixAffinity routes to the replica with the warmest matching
	// shared prefix (most reusable KV), falling back to least-work
	// when no replica holds any of the request's prefix.
	PrefixAffinity = "prefix-affinity"
	// DecodeAffinity is the disaggregated decode-pool pick: warmest
	// resident KV first (the import re-references resident blocks
	// instead of storing new ones), then the most free KV headroom,
	// then least estimated outstanding decode work. The disaggregated
	// router pairs it with least-work on the prefill pool.
	DecodeAffinity = "decode-affinity"
)

func init() {
	Register(RoundRobin, func(Options) Policy { return &roundRobin{} })
	Register(Random, func(o Options) Policy {
		return &random{rng: rand.New(rand.NewSource(o.Seed))}
	})
	Register(LeastWork, func(Options) Policy { return leastWork{} })
	Register(PredictedCost, func(o Options) Policy {
		p := o.Predictor
		if p == nil {
			p = core.OraclePredictor{}
		}
		return &predictedCost{pred: p}
	})
	Register(PrefixAffinity, func(Options) Policy { return prefixAffinity{} })
	Register(DecodeAffinity, func(o Options) Policy {
		p := o.Predictor
		if p == nil {
			p = core.OraclePredictor{}
		}
		return &decodeAffinity{pred: p}
	})
}

type roundRobin struct{ next int }

// Name returns RoundRobin.
func (*roundRobin) Name() string { return RoundRobin }

// Pick cycles through the replicas in index order.
func (p *roundRobin) Pick(_ workload.Request, loads []Load) int {
	i := p.next % len(loads)
	p.next = i + 1
	return i
}

// Cost is the known prefill work (the request's input length).
func (*roundRobin) Cost(r workload.Request) float64 { return float64(r.InputLen) }

type random struct{ rng *rand.Rand }

// Name returns Random.
func (*random) Name() string { return Random }

// Pick draws a replica uniformly from the policy's seeded generator.
func (p *random) Pick(_ workload.Request, loads []Load) int {
	return p.rng.Intn(len(loads))
}

// Cost is the known prefill work (the request's input length).
func (*random) Cost(r workload.Request) float64 { return float64(r.InputLen) }

// argminCost returns the replica with the least accumulated cost,
// breaking ties toward fewer requests, then the lower index.
func argminCost(loads []Load) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		if loads[i].CostTokens < loads[best].CostTokens ||
			(loads[i].CostTokens == loads[best].CostTokens && loads[i].Requests < loads[best].Requests) {
			best = i
		}
	}
	return best
}

type leastWork struct{}

// Name returns LeastWork.
func (leastWork) Name() string { return LeastWork }

// Pick chooses the replica with the least accumulated cost.
func (leastWork) Pick(_ workload.Request, loads []Load) int { return argminCost(loads) }

// Cost is the known prefill work (the request's input length).
func (leastWork) Cost(r workload.Request) float64 { return float64(r.InputLen) }

type prefixAffinity struct{}

// Name returns PrefixAffinity.
func (prefixAffinity) Name() string { return PrefixAffinity }

// Pick chooses the replica holding the most of the request's shared
// prefix; ties (including the all-cold case) resolve by least
// accumulated cost, so unstructured traffic degrades to least-work.
func (prefixAffinity) Pick(_ workload.Request, loads []Load) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		switch {
		case loads[i].WarmTokens > loads[best].WarmTokens:
			best = i
		case loads[i].WarmTokens < loads[best].WarmTokens:
		case loads[i].CostTokens < loads[best].CostTokens ||
			(loads[i].CostTokens == loads[best].CostTokens && loads[i].Requests < loads[best].Requests):
			best = i
		}
	}
	return best
}

// Cost is the known prefill work, as in least-work; Pick's warmth
// signal, not the cost estimate, carries the cache information.
func (prefixAffinity) Cost(r workload.Request) float64 { return float64(r.InputLen) }

type decodeAffinity struct{ pred core.LenPredictor }

// Name returns DecodeAffinity.
func (*decodeAffinity) Name() string { return DecodeAffinity }

// Pick ranks replicas for a decode-pool admission: the warmest resident
// KV wins (the import stores the fewest new blocks there), ties prefer
// the most free-KV headroom (the request's context still has to grow),
// and remaining ties fall back to least accumulated cost, then the
// lower index.
func (*decodeAffinity) Pick(_ workload.Request, loads []Load) int {
	best := 0
	for i := 1; i < len(loads); i++ {
		switch {
		case loads[i].WarmTokens > loads[best].WarmTokens:
			best = i
		case loads[i].WarmTokens < loads[best].WarmTokens:
		case loads[i].FreeKVTokens > loads[best].FreeKVTokens:
			best = i
		case loads[i].FreeKVTokens < loads[best].FreeKVTokens:
		case loads[i].CostTokens < loads[best].CostTokens ||
			(loads[i].CostTokens == loads[best].CostTokens && loads[i].Requests < loads[best].Requests):
			best = i
		}
	}
	return best
}

// Cost is the predicted decode work the request adds to its replica:
// the output-length estimate (prefill happened elsewhere).
func (p *decodeAffinity) Cost(r workload.Request) float64 {
	return float64(p.pred.PredictLen(r))
}

type predictedCost struct{ pred core.LenPredictor }

// Name returns PredictedCost.
func (*predictedCost) Name() string { return PredictedCost }

// Pick chooses the replica with the least accumulated predicted cost.
func (*predictedCost) Pick(_ workload.Request, loads []Load) int { return argminCost(loads) }

// Cost is the full predicted footprint: known prefill work plus the
// output-length estimate.
func (p *predictedCost) Cost(r workload.Request) float64 {
	return float64(r.InputLen + p.pred.PredictLen(r))
}
