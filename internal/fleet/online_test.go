package fleet

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func onlineTrace(n int, seed int64, rate float64) []workload.Request {
	return workload.StampArrivals(smallTrace(n, seed), workload.Poisson{Rate: rate}, seed+100)
}

// The online router must complete every request under every registered
// policy, conserve requests and tokens, and produce causally
// consistent merged records.
func TestRunOnlineConservation(t *testing.T) {
	reqs := onlineTrace(300, 4, 40)
	wantOut := 0
	for _, r := range reqs {
		wantOut += r.OutputLen
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			res, err := RunOnline(fastConfig(2), 4, mustPolicy(t, name, Options{Seed: 9}), reqs)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.CheckConservation(len(reqs)); err != nil {
				t.Fatal(err)
			}
			rep := res.Report
			if rep.Requests != len(reqs) {
				t.Errorf("requests = %d", rep.Requests)
			}
			if rep.OutputTokens != wantOut {
				t.Errorf("output tokens = %d, want %d", rep.OutputTokens, wantOut)
			}
			if !strings.Contains(rep.Scheduler, "FleetOnline") || !strings.Contains(rep.Scheduler, name) {
				t.Errorf("scheduler = %q", rep.Scheduler)
			}
			if len(res.Records) != len(reqs) {
				t.Fatalf("merged %d records for %d requests", len(res.Records), len(reqs))
			}
			if rep.Latency.Requests != len(reqs) {
				t.Errorf("digest covers %d of %d", rep.Latency.Requests, len(reqs))
			}
			for i, rec := range res.Records {
				if rec.ID != i {
					t.Fatalf("record %d has ID %d after merge", i, rec.ID)
				}
				if rec.Arrival != reqs[i].ArrivalTime {
					t.Fatalf("record %d arrival %v, stamped %v", i, rec.Arrival, reqs[i].ArrivalTime)
				}
				if rec.FirstToken < rec.Arrival || rec.Finish < rec.FirstToken {
					t.Fatalf("record %d not causal: %+v", i, rec)
				}
			}
		})
	}
}

// The co-simulation is single-threaded, so two runs with identical
// inputs must produce bit-identical reports and records.
func TestRunOnlineDeterministic(t *testing.T) {
	reqs := onlineTrace(200, 6, 30)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, err := RunOnline(fastConfig(2), 3, mustPolicy(t, name, Options{Seed: 3}), reqs)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunOnline(fastConfig(2), 3, mustPolicy(t, name, Options{Seed: 3}), reqs)
			if err != nil {
				t.Fatal(err)
			}
			if a.Report != b.Report {
				t.Errorf("reports differ:\n%+v\n%+v", a.Report, b.Report)
			}
			for i := range a.Records {
				if a.Records[i] != b.Records[i] {
					t.Fatalf("record %d differs across runs", i)
				}
			}
		})
	}
}

// Online routing must see live load: with greedy least-work dispatch no
// replica may sit unused while another queues the whole trace.
func TestRunOnlineSpreadsLoad(t *testing.T) {
	reqs := onlineTrace(400, 8, 60)
	res, err := RunOnline(fastConfig(2), 4, mustPolicy(t, LeastWork, Options{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range res.Shards {
		if len(sh.Reqs) == 0 {
			t.Errorf("replica %d received no requests", i)
		}
	}
}

// Bad arguments and broken policies must be rejected, not deadlock the
// co-simulation.
func TestRunOnlineRejectsBadArgs(t *testing.T) {
	reqs := onlineTrace(10, 1, 10)
	if _, err := RunOnline(fastConfig(2), 0, mustPolicy(t, RoundRobin, Options{}), reqs); err == nil {
		t.Error("replicas=0 accepted")
	}
	if _, err := RunOnline(fastConfig(2), 2, nil, reqs); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := RunOnline(fastConfig(2), 2, outOfRange{}, reqs); err == nil {
		t.Error("out-of-range pick accepted")
	}
}
