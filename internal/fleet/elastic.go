package fleet

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Elastic online serving: RunOnline's shared-clock router grown a
// policy layer (package policy). The stack's components compose in
// front of the replicas — token-bucket admission sheds arrivals, a
// seeded backoff schedule retries them, per-replica circuit breakers
// take SLO-violating replicas out of routing, priority preemption
// evicts low tiers under KV pressure — while the autoscaler watches
// windowed SLO signals at a fixed tick cadence and breathes the active
// replica set between Min and Max, paying a modeled cold-start
// (weight-load) delay on every scale-up. Every intervention executes
// on the fabric's control timeline, so elastic runs stay byte-identical
// across worker counts; conservation is exactly-once XOR dropped, as
// in the fault router.

// replica lifecycle states of the elastic router.
const (
	rIdle     = iota // provisioned but not serving (never started, or drained)
	rWarming         // scale-up decided, weight load in progress
	rActive          // serving traffic
	rDraining        // scale-down decided, finishing resident work
)

// RunOnlineElastic is RunOnline under a policy stack. An inactive (or
// nil) stack delegates to RunOnline itself, so policy-free results
// stay bit-identical to the pre-policy code path. replicas is the
// provisioned fleet — the pool the autoscaler may grow into — and must
// cover the autoscaler's Max. An autoscaler whose ColdStart is zero
// gets the modeled weight-load time of one replica
// (faults.WeightReloadTime for the run's node, model and world size).
func RunOnlineElastic(cfg core.Config, replicas int, p Policy, reqs []workload.Request, stack *policy.Stack) (*Result, error) {
	return RunOnlineElasticWorkers(cfg, replicas, p, reqs, stack, 1)
}

// RunOnlineElasticWorkers is RunOnlineElastic with an explicit worker
// budget for the conservative parallel fabric (see RunOnlineWorkers).
// Admission, retry, breaker, preemption and autoscale interventions
// all execute on the control timeline, so reports are byte-identical
// across worker counts.
func RunOnlineElasticWorkers(cfg core.Config, replicas int, p Policy, reqs []workload.Request, stack *policy.Stack, workers int) (*Result, error) {
	if !stack.Active() {
		return RunOnlineWorkers(cfg, replicas, p, reqs, workers)
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("fleet: replicas = %d", replicas)
	}
	if p == nil {
		return nil, fmt.Errorf("fleet: nil policy")
	}
	if err := validateArrivals(reqs); err != nil {
		return nil, err
	}
	coldStart := 0.0
	if as := stack.Autoscaler; as != nil {
		ac := as.Config()
		if ac.Max > replicas {
			return nil, fmt.Errorf("fleet: autoscaler Max %d exceeds provisioned replicas %d", ac.Max, replicas)
		}
		coldStart = ac.ColdStart
		if coldStart == 0 {
			coldStart = faults.WeightReloadTime(cfg.Node, cfg.Spec, cfg.World)
		}
	}
	fab := newFabric(ResolveWorkers(workers, replicas))
	fab.addTier(0, replicas)
	engines := make([]*core.Engine, replicas)
	for i := range engines {
		e, err := core.NewEngine(fab.engineFor(i), cfg)
		if err == nil {
			err = e.StartOnline()
		}
		if err != nil {
			if e != nil {
				e.Shutdown()
			}
			for _, prev := range engines[:i] {
				prev.Shutdown()
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		engines[i] = e
	}
	ro := &erouter{
		ctl:           fab.ctl,
		stack:         stack,
		policy:        p,
		engines:       engines,
		reqs:          reqs,
		shards:        make([]Shard, replicas),
		outstanding:   make([]Load, replicas),
		entries:       make([][]loadEntry, replicas),
		loads:         make([]Load, 0, replicas),
		cand:          make([]int, 0, replicas),
		winTTFT:       make([][]float64, replicas),
		final:         make([]recRef, len(reqs)),
		fin:           make([]int, len(reqs)),
		attempts:      make([]int, len(reqs)),
		droppedReason: make([]string, len(reqs)),
		ttftSLO:       cfg.SLO.TTFT,
		world:         cfg.World,
	}
	if as := stack.Autoscaler; as != nil {
		ro.pool = newElasticPool(as, replicas, coldStart)
		if as.Config().TTFTTarget > 0 {
			ro.ttftSLO = as.Config().TTFTTarget
		}
	}
	if b := stack.Breaker; b != nil {
		ro.breakers = make([]*policy.Breaker, replicas)
		for i := range ro.breakers {
			ro.breakers[i] = policy.NewBreaker(*b)
		}
	}
	for i := range engines {
		i := i
		engines[i].SetOnFinish(func(local int) { ro.finished(i, local) })
	}
	for _, idx := range workload.SortByArrival(reqs) {
		fab.ctl.AtFunc(sim.Time(reqs[idx].ArrivalTime), eadmitEvent, ro, idx, 0)
	}
	if ro.pool != nil {
		fab.ctl.AtFunc(ro.pool.tickInterval(), etickEvent, ro, 0, 0)
	}
	fab.start()
	defer fab.stopWorkers()
	fab.run()
	if ro.err != nil {
		for _, e := range engines {
			e.Shutdown()
		}
		return nil, ro.err
	}
	results := make([]*core.Result, replicas)
	var ferr error
	for i, e := range engines {
		res, err := e.Finalize()
		if err != nil && ferr == nil {
			ferr = fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		results[i] = res
	}
	if ferr != nil {
		return nil, ferr
	}
	res, err := ro.assemble(cfg, results)
	if err == nil {
		res.Steps = fab.Steps()
	}
	return res, err
}

// erouter is the policy-aware elastic online router. All of its
// interventions (admission, retry, routing, preemption, autoscale
// ticks, warm-up completions) execute as control-timeline events on
// the fabric coordinator; only the engines' finish hooks run on shard
// goroutines, and those touch per-replica slots exclusively.
type erouter struct {
	ctl     *sim.Engine
	stack   *policy.Stack
	policy  Policy
	engines []*core.Engine
	reqs    []workload.Request
	shards  []Shard

	outstanding []Load
	entries     [][]loadEntry
	loads       []Load
	cand        []int

	// pool owns the replica lifecycle and GPU-second accounting; nil
	// when no autoscaler is attached (the fleet stays static).
	pool *elasticPool
	// winTTFT[i] collects replica i's completion TTFTs since the last
	// autoscale tick (shard-written, coordinator-drained).
	winTTFT [][]float64

	breakers []*policy.Breaker

	// Conservation: exactly one terminal finish XOR a drop reason.
	final         []recRef
	fin           []int
	attempts      []int
	droppedReason []string
	dropped       int

	ttftSLO float64
	world   int

	astats metrics.AdmissionStats
	err    error
}

// eadmitEvent fires at a request's arrival instant (and again at each
// scheduled retry).
func eadmitEvent(ctx any, idx, _ int) {
	ctx.(*erouter).admit(idx)
}

// admit runs one request through the front door: the token bucket
// first, then routing across active, breaker-routable replicas. A shed
// or unroutable request re-enters admission on the backoff schedule
// until its retry budget runs out.
func (ro *erouter) admit(origin int) {
	if ro.err != nil || ro.droppedReason[origin] != "" {
		return
	}
	now := float64(ro.ctl.Now())
	if tb := ro.stack.Admission; tb != nil && !tb.Allow(now) {
		ro.astats.Shed++
		ro.requeue(origin, "shed by admission control")
		return
	}
	ro.route(origin, now)
}

// requeue schedules a retry for a refused request, or drops it once
// the budget is spent (or no retry policy is attached).
func (ro *erouter) requeue(origin int, reason string) {
	bo := ro.stack.Retry
	if bo == nil || ro.attempts[origin] >= bo.MaxAttempts() {
		ro.drop(origin, reason)
		return
	}
	ro.attempts[origin]++
	ro.astats.Retries++
	delay := bo.Delay(ro.attempts[origin])
	ro.ctl.AtFunc(ro.ctl.Now()+sim.Time(delay), eadmitEvent, ro, origin, 0)
}

// route dispatches one admitted request to an active replica.
func (ro *erouter) route(origin int, now float64) {
	r := ro.reqs[origin]
	ro.cand = ro.cand[:0]
	loads := ro.loads[:0]
	for i := range ro.engines {
		if !ro.pool.routable(i) {
			continue
		}
		if ro.breakers != nil && !ro.breakers[i].Routable(now) {
			ro.astats.BreakerSkips++
			continue
		}
		ld := ro.outstanding[i]
		ld.WarmTokens = ro.engines[i].PrefixWarmTokens(r)
		ld.FreeKVTokens = ro.engines[i].FreeKVTokens()
		ro.cand = append(ro.cand, i)
		loads = append(loads, ld)
	}
	if len(ro.cand) == 0 {
		ro.requeue(origin, "no routable replica")
		return
	}
	j := ro.policy.Pick(r, loads)
	if j < 0 || j >= len(ro.cand) {
		ro.err = fmt.Errorf("fleet: policy %q picked candidate %d of %d", ro.policy.Name(), j, len(ro.cand))
		return
	}
	k := ro.cand[j]
	if ro.breakers != nil {
		// Consume the half-open probe slot if the pick is probing.
		ro.breakers[k].Allow(now)
	}
	local, err := ro.engines[k].Submit(r)
	if err != nil {
		if errors.Is(err, core.ErrRequestTooLarge) {
			ro.drop(origin, err.Error())
			return
		}
		ro.err = fmt.Errorf("fleet: replica %d rejected request %d: %w", k, origin, err)
		return
	}
	if pc := ro.stack.Preemption; pc != nil && r.Priority == 0 {
		// The preemptor is already queued ahead; victims requeue
		// behind it for recompute.
		victims := ro.engines[k].PreemptLowPriority(pc.Evictable(), r.InputLen)
		ro.astats.Preemptions += len(victims)
	}
	cost := ro.policy.Cost(r)
	ro.entries[k] = append(ro.entries[k], loadEntry{inputTokens: r.InputLen, cost: cost})
	ro.outstanding[k].Requests++
	ro.outstanding[k].InputTokens += r.InputLen
	ro.outstanding[k].CostTokens += cost
	routed := r
	routed.ID = local
	ro.shards[k].Reqs = append(ro.shards[k].Reqs, routed)
	ro.shards[k].Origin = append(ro.shards[k].Origin, origin)
	ro.final[origin] = recRef{replica: k, local: local}
}

// finished is the engines' completion hook. It runs on the owning
// shard's goroutine and touches only replica-indexed slots; the
// coordinator reads them at barriers (ticks, routing, assemble).
func (ro *erouter) finished(replica, local int) {
	en := ro.entries[replica][local]
	ro.outstanding[replica].Requests--
	ro.outstanding[replica].InputTokens -= en.inputTokens
	ro.outstanding[replica].CostTokens -= en.cost
	ro.fin[ro.shards[replica].Origin[local]]++
	t := float64(ro.engines[replica].Now())
	if ttft, ok := ro.engines[replica].RequestTTFT(local); ok {
		ro.winTTFT[replica] = append(ro.winTTFT[replica], ttft)
		if ro.breakers != nil {
			// Trip accounting is summed from Trips() at assemble; the
			// hook must not touch the shared stats struct.
			if ttft > ro.ttftSLO {
				ro.breakers[replica].OnFailure(t)
			} else {
				ro.breakers[replica].OnSuccess(t)
			}
		}
	}
	if ro.pool != nil && ro.outstanding[replica].Requests == 0 {
		ro.pool.noteDrained(replica, t)
	}
}

// drop abandons a request with a reason (idempotent).
func (ro *erouter) drop(origin int, reason string) {
	if ro.droppedReason[origin] == "" {
		ro.droppedReason[origin] = reason
		ro.dropped++
		ro.astats.Dropped++
	}
}

// etickEvent is one autoscaler evaluation on the control timeline.
func etickEvent(ctx any, _, _ int) {
	ro := ctx.(*erouter)
	if ro.err != nil {
		return
	}
	now := float64(ro.ctl.Now())
	ro.pool.reapDrains()
	ro.pool.stats.Ticks++
	outstanding := func(i int) int { return ro.outstanding[i].Requests }
	warm := func(k int) {
		ro.ctl.AtFunc(sim.Time(now+ro.pool.coldStart), eactivateEvent, ro, k, 0)
	}
	ro.pool.scale(ro.stack.Autoscaler.Decide(now, ro.signals()), now, outstanding, warm)
	// Keep ticking while any request is unresolved; once everything is
	// terminal the timeline drains and the run ends.
	finished := 0
	for _, e := range ro.engines {
		finished += e.NumFinished()
	}
	if finished+ro.dropped < len(ro.reqs) {
		ro.ctl.AtFunc(ro.ctl.Now()+ro.pool.tickInterval(), etickEvent, ro, 0, 0)
	}
}

// signals builds the autoscaler's windowed SLO view and resets the
// window.
func (ro *erouter) signals() policy.Signals {
	var s policy.Signals
	s.Active, s.Warming = ro.pool.counts()
	queued := 0
	var win []float64
	for i := range ro.engines {
		queued += ro.outstanding[i].Requests
		win = append(win, ro.winTTFT[i]...)
		ro.winTTFT[i] = ro.winTTFT[i][:0]
	}
	if s.Active > 0 {
		s.QueuePerReplica = float64(queued) / float64(s.Active)
	} else {
		s.QueuePerReplica = float64(queued)
	}
	s.Goodput = 1
	if len(win) > 0 {
		sort.Float64s(win)
		s.TTFTP99 = metrics.Percentile(win, 99)
		good := 0
		for _, v := range win {
			if v <= ro.ttftSLO {
				good++
			}
		}
		s.Goodput = float64(good) / float64(len(win))
	}
	return s
}

// eactivateEvent completes one scale-up: the replica's weights are
// loaded and it joins routing.
func eactivateEvent(ctx any, k, _ int) {
	ro := ctx.(*erouter)
	if ro.err != nil {
		return
	}
	ro.pool.activate(k)
}

// assemble builds the elastic run's merged result: the exactly-once-
// XOR-dropped conservation check, the final-owner record merge, and
// the aggregate report with autoscale and admission accounting.
func (ro *erouter) assemble(cfg core.Config, results []*core.Result) (*Result, error) {
	n := len(ro.reqs)
	finished := 0
	for origin := 0; origin < n; origin++ {
		switch f, dropped := ro.fin[origin], ro.droppedReason[origin] != ""; {
		case f == 1 && !dropped:
			finished++
		case f == 0 && dropped:
		case f > 1:
			return nil, fmt.Errorf("fleet: request %d finished %d times", origin, f)
		case dropped:
			return nil, fmt.Errorf("fleet: request %d both finished and dropped (%s)", origin, ro.droppedReason[origin])
		default:
			return nil, fmt.Errorf("fleet: request %d lost without a drop reason (fin=%d)", origin, f)
		}
	}
	records := make([]metrics.RequestRecord, n)
	for origin, ref := range ro.final {
		if ro.droppedReason[origin] != "" {
			// Dropped: an unfinished zero record keeps the request in
			// the digest's denominator, so goodput pays for the loss.
			records[origin] = metrics.RequestRecord{ID: origin, Arrival: ro.reqs[origin].ArrivalTime}
			continue
		}
		rec := results[ref.replica].Records[ref.local]
		rec.ID = origin
		records[origin] = rec
	}

	rep := metrics.Report{
		Scheduler: fmt.Sprintf("FleetElastic(TD-Pipe/%s)x%d", ro.policy.Name(), len(results)),
		Node:      cfg.Node.Name,
		Model:     cfg.Spec.Name,
		GPUs:      cfg.World * len(results),
		Requests:  finished,
	}
	for origin, r := range ro.reqs {
		if ro.droppedReason[origin] == "" {
			rep.InputTokens += r.InputLen
		}
	}
	for _, rec := range records {
		rep.OutputTokens += rec.OutputTokens
	}
	var busy float64
	for _, r := range results {
		rr := r.Report
		rep.PhaseSwitches += rr.PhaseSwitches
		rep.Recomputes += rr.Recomputes
		rep.PrefixCachedTokens += rr.PrefixCachedTokens
		rep.Faults.Add(rr.Faults)
		if rr.Elapsed > rep.Elapsed {
			rep.Elapsed = rr.Elapsed
		}
		if rr.KVPeakUsage > rep.KVPeakUsage {
			rep.KVPeakUsage = rr.KVPeakUsage
		}
		busy += rr.MeanUtilization * rr.Elapsed * float64(rr.GPUs)
	}
	if ro.pool != nil {
		rep.Autoscale = ro.pool.finish(rep.Elapsed, ro.world)
	}
	if ro.breakers != nil {
		trips := 0
		for _, b := range ro.breakers {
			trips += b.Trips()
		}
		ro.astats.BreakerTrips = trips
	}
	rep.Admission = ro.astats
	if rep.Elapsed > 0 && rep.GPUs > 0 {
		rep.MeanUtilization = busy / (rep.Elapsed * float64(rep.GPUs))
	}
	rep.BubbleRatio = 1 - rep.MeanUtilization
	rep.Latency = metrics.Digest(records, cfg.SLO)
	return &Result{
		Report:   rep,
		Replicas: results,
		Shards:   ro.shards,
		Records:  records,
		Policy:   ro.policy.Name(),
	}, nil
}
