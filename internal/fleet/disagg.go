package fleet

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Disaggregated prefill/decode serving: the fleet is split into a
// prefill pool and a decode pool sharing one virtual clock. Every
// arrival is routed to a prefill replica (least-work); when its prefill
// completes, the engine exports the finished prefix KV (core.Handoff)
// and the router migrates it to a decode replica over the node's KV
// link — transfer time = blocks x block bytes / bandwidth + latency —
// where generation resumes via SubmitDecoded. The transfer overlaps
// decode-side queueing: a hand-off becomes placeable once its transfer
// completes, and waits in a FIFO only while no decode replica has KV
// headroom for the import (retried as decode requests finish).
//
// The split isolates the two phases' interference: prefill replicas
// never stall arrivals behind long decode phases, so TTFT stays flat
// under bursts, at the price of the modeled transfer and fewer
// decode-side token slots. Like the online router, the co-simulation is
// single-threaded, so results are deterministic for a fixed trace,
// config and split.

// DisaggConfig sizes the two pools of a disaggregated deployment. Both
// pools run the same engine configuration (core.Config); only the role
// differs.
type DisaggConfig struct {
	// PrefillReplicas is the number of engines dedicated to prefill.
	PrefillReplicas int
	// DecodeReplicas is the number of engines dedicated to decode.
	DecodeReplicas int
	// Workers budgets the conservative parallel fabric: 0 or 1 runs
	// sequentially, WorkersAuto picks GOMAXPROCS for fleets of at
	// least AutoWorkerThreshold replicas. Reports are byte-identical
	// across worker counts.
	Workers int
	// Stack attaches a policy stack to the deployment. Disaggregated
	// serving honors two components. Autoscaler is scoped to the
	// decode pool: DecodeReplicas is the provisioned pool the
	// autoscaler breathes inside (its Max must fit), and hand-off
	// placement skips inactive decode replicas. Breaker gives every
	// replica in both pools a circuit breaker: crashes open a
	// replica's breaker (one failure per aborted request), finishes
	// close it, and routing skips breaker-open replicas — falling back
	// to liveness alone when every live candidate is open, so a
	// fully-tripped pool degrades instead of stalling. A nil stack —
	// or one without these components — keeps the fleet static and
	// takes the exact pre-policy code path, byte for byte.
	Stack *policy.Stack
}

// Validate reports a configuration error, if any.
func (dc DisaggConfig) Validate() error {
	if dc.PrefillReplicas <= 0 || dc.DecodeReplicas <= 0 {
		return fmt.Errorf("fleet: disagg pools %dP+%dD (both must be positive)",
			dc.PrefillReplicas, dc.DecodeReplicas)
	}
	if dc.Stack != nil && dc.Stack.Autoscaler != nil {
		if m := dc.Stack.Autoscaler.Config().Max; m > dc.DecodeReplicas {
			return fmt.Errorf("fleet: decode autoscaler Max %d exceeds provisioned decode replicas %d",
				m, dc.DecodeReplicas)
		}
	}
	return nil
}

// DisaggResult is the outcome of a disaggregated run.
type DisaggResult struct {
	// Report is the fleet-level aggregate over both pools; Latency
	// digests the per-request records spanning the whole hand-off
	// lifecycle (arrival at the prefill pool to completion in the
	// decode pool).
	Report metrics.Report
	// Prefill and Decode hold the per-replica engine results.
	Prefill, Decode []*core.Result
	// PrefillShards records the arrival routing: every trace request
	// appears in exactly one prefill shard. DecodeShards records the
	// hand-off placement: requests that finished at prefill
	// (single-token outputs) appear in no decode shard.
	PrefillShards, DecodeShards []Shard
	// Records holds the merged per-request records indexed by trace
	// position: the decode replica's record for handed-off requests
	// (it carries the original arrival and first-token instants), the
	// prefill replica's for requests that completed there.
	Records []metrics.RequestRecord
	// Handoffs counts requests migrated to the decode pool.
	Handoffs int
	// TransferredBytes is the total KV moved over the hand-off link.
	TransferredBytes float64
	// QueuedHandoffs counts hand-offs that had to wait for decode-pool
	// KV headroom after their transfer completed.
	QueuedHandoffs int
	// Steps counts the simulation events processed across the run's
	// engines and the router timeline.
	Steps uint64
}

// recRef locates a request's finished record: the pool, replica index
// and replica-local id that owns it.
type recRef struct {
	decode  bool
	replica int
	local   int
}

// handoffItem is one in-flight migration. recovery marks checkpoint
// restores re-entering the decode pool after a crash (counted as
// recoveries, not hand-offs).
type handoffItem struct {
	origin   int
	h        core.Handoff
	recovery bool
}

// disaggRouter coordinates the two pools across the fabric: prefill
// replicas form tier 0, decode replicas tier 1, and every router
// intervention (arrival dispatch, transfer completion, crash, restore,
// pending drain) executes on the control timeline.
type disaggRouter struct {
	ctl     *sim.Engine
	fab     *fabric
	prefill []*core.Engine
	decode  []*core.Engine
	ppolicy Policy
	dpolicy Policy
	reqs    []workload.Request
	// blockBytes is the KV footprint of one block across the model.
	blockBytes float64
	xferTime   func(bytes float64) float64

	pOut     []Load
	pEntries [][]loadEntry
	pShards  []Shard

	dOut     []Load
	dEntries [][]loadEntry
	dShards  []Shard

	// loads is the per-pick snapshot buffer, sized for the larger pool.
	loads []Load
	// cand maps snapshot rows back to decode replica indices when the
	// importability filter drops some replicas.
	cand []int

	items []handoffItem
	// pending holds item indices whose transfer completed but which no
	// decode replica can import yet, in completion order.
	pending []int

	final    []recRef
	handoffs int
	moved    float64
	queued   int
	err      error

	// Fault-injection state, all nil/zero when plan is nil — the
	// fault-free run takes the exact pre-fault code paths.
	plan *faults.Plan
	// fin[origin] counts terminal finishes: +1 at any engine finish,
	// -1 when a prefill "finish" was really a hand-off. Conservation
	// demands exactly 1 (finished) xor a drop reason.
	fin      []int
	attempts []int
	// droppedReason[origin] is non-empty once the request is abandoned.
	droppedReason []string
	// queuedPrefill holds origins waiting for a live prefill replica.
	queuedPrefill []int
	fstats        metrics.FaultStats

	// pBreakers/dBreakers hold per-replica circuit breakers for the
	// two pools when DisaggConfig.Stack carries a BreakerConfig; nil
	// keeps routing on the exact pre-breaker code paths. Crashes feed
	// OnFailure (one per aborted request, at least one per crash),
	// finishes feed OnSuccess.
	pBreakers []*policy.Breaker
	dBreakers []*policy.Breaker
	astats    metrics.AdmissionStats

	// dpool owns the decode pool's elastic lifecycle when
	// DisaggConfig.Stack carries an autoscaler; nil keeps the pool
	// static on the exact pre-policy code paths.
	dpool *elasticPool
}

// RunDisagg serves an arrival-stamped trace on a disaggregated fleet:
// dc.PrefillReplicas prefill engines and dc.DecodeReplicas decode
// engines, all instances of cfg on one shared virtual clock. Arrivals
// are dispatched least-work across the prefill pool; hand-offs are
// placed by the decode-affinity pick (warmest resident KV, then free-KV
// headroom, then least predicted decode work). Closed-loop traces
// (all arrivals at t=0) are served the same way — every request routes
// at t=0.
func RunDisagg(cfg core.Config, dc DisaggConfig, reqs []workload.Request) (*DisaggResult, error) {
	return disaggRun(cfg, dc, reqs, nil)
}

// RunDisaggFaults is RunDisagg under a fault plan: replica crashes hit
// both pools, stragglers run slowed, KV hand-offs cross the impaired
// link timeline, and crash-lost requests are re-dispatched — resumed
// from their periodic KV checkpoint on the decode pool when one exists,
// re-prefilled from scratch through the prefill pool otherwise.
// Requests that exhaust the retry budget or fit nowhere when the run
// drains are dropped with a reason and accounted in Report.Faults. An
// inactive (or nil) plan takes the exact RunDisagg code path.
func RunDisaggFaults(cfg core.Config, dc DisaggConfig, reqs []workload.Request, plan *faults.Plan) (*DisaggResult, error) {
	if !plan.Active() {
		return disaggRun(cfg, dc, reqs, nil)
	}
	return disaggRun(cfg, dc, reqs, plan)
}

func disaggRun(cfg core.Config, dc DisaggConfig, reqs []workload.Request, plan *faults.Plan) (*DisaggResult, error) {
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	ppolicy, err := New(LeastWork, Options{Predictor: cfg.Predictor})
	if err != nil {
		return nil, err
	}
	dpolicy, err := New(DecodeAffinity, Options{Predictor: cfg.Predictor})
	if err != nil {
		return nil, err
	}

	if err := validateArrivals(reqs); err != nil {
		return nil, err
	}
	total := dc.PrefillReplicas + dc.DecodeReplicas
	// Prefill and decode replicas never share a shard engine: the
	// prefill tier advances to each control horizon first (discovering
	// hand-offs), and the decode tier follows only after their
	// transfer completions are on the control timeline.
	fab := newFabric(ResolveWorkers(dc.Workers, total))
	fab.addTier(0, dc.PrefillReplicas)
	fab.addTier(1, dc.DecodeReplicas)
	engines := make([]*core.Engine, 0, total)
	shutdownAll := func() {
		for _, e := range engines {
			e.Shutdown()
		}
	}
	for i := 0; i < total; i++ {
		e, err := core.NewEngine(fab.engineFor(i), replicaConfig(cfg, plan, i))
		if err != nil {
			shutdownAll()
			return nil, fmt.Errorf("fleet: disagg replica %d: %w", i, err)
		}
		engines = append(engines, e)
		if err := e.StartOnline(); err != nil {
			shutdownAll()
			return nil, fmt.Errorf("fleet: disagg replica %d: %w", i, err)
		}
	}

	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = kvcache.DefaultBlockSize
	}
	ro := &disaggRouter{
		ctl:        fab.ctl,
		fab:        fab,
		prefill:    engines[:dc.PrefillReplicas],
		decode:     engines[dc.PrefillReplicas:],
		ppolicy:    ppolicy,
		dpolicy:    dpolicy,
		reqs:       reqs,
		blockBytes: float64(blockSize) * cfg.Spec.KVBytesPerToken(),
		xferTime:   costmodel.KVTransfer(cfg.Node),
		pOut:       make([]Load, dc.PrefillReplicas),
		pEntries:   make([][]loadEntry, dc.PrefillReplicas),
		pShards:    make([]Shard, dc.PrefillReplicas),
		dOut:       make([]Load, dc.DecodeReplicas),
		dEntries:   make([][]loadEntry, dc.DecodeReplicas),
		dShards:    make([]Shard, dc.DecodeReplicas),
		loads:      make([]Load, max(dc.PrefillReplicas, dc.DecodeReplicas)),
		cand:       make([]int, 0, total),
		final:      make([]recRef, len(reqs)),
		plan:       plan,
	}
	if plan != nil {
		ro.fin = make([]int, len(reqs))
		ro.attempts = make([]int, len(reqs))
		ro.droppedReason = make([]string, len(reqs))
	}
	if dc.Stack != nil && dc.Stack.Autoscaler != nil {
		coldStart := dc.Stack.Autoscaler.Config().ColdStart
		if coldStart == 0 {
			coldStart = faults.WeightReloadTime(cfg.Node, cfg.Spec, cfg.World)
		}
		ro.dpool = newElasticPool(dc.Stack.Autoscaler, dc.DecodeReplicas, coldStart)
	}
	if dc.Stack != nil && dc.Stack.Breaker != nil {
		ro.pBreakers = make([]*policy.Breaker, dc.PrefillReplicas)
		for i := range ro.pBreakers {
			ro.pBreakers[i] = policy.NewBreaker(*dc.Stack.Breaker)
		}
		ro.dBreakers = make([]*policy.Breaker, dc.DecodeReplicas)
		for i := range ro.dBreakers {
			ro.dBreakers[i] = policy.NewBreaker(*dc.Stack.Breaker)
		}
	}
	for i := range ro.prefill {
		i := i
		ro.prefill[i].SetOnFinish(func(local int) { ro.prefillFinished(i, local) })
		// Hand-offs are discovered while a shard worker advances its
		// epoch window: buffer them on the shard; the coordinator
		// drains the buffers in canonical order at the barrier and
		// feeds them to ro.handoff.
		ro.prefill[i].SetHandoff(func(h core.Handoff) { fab.note(i, h) })
	}
	for i := range ro.decode {
		i := i
		ro.decode[i].SetOnFinish(func(local int) { ro.decodeFinished(i, local) })
	}
	fab.onNote = ro.handoff
	fab.pendingWork = func() bool { return len(ro.pending) > 0 }
	fab.drainAt = ro.drainPending

	// One control event per request at its arrival instant, in
	// (arrival, trace index) order so simultaneous arrivals route in
	// trace order.
	for _, idx := range workload.SortByArrival(reqs) {
		fab.ctl.AtFunc(sim.Time(reqs[idx].ArrivalTime), disaggArrivalEvent, ro, idx, 0)
	}
	if plan != nil {
		for ci, c := range plan.Crashes {
			fab.ctl.AtFunc(sim.Time(c.At), disaggCrashEvent, ro, ci, 0)
			fab.ctl.AtFunc(sim.Time(c.RestartAt), disaggRestoreEvent, ro, ci, 0)
		}
	}
	if ro.dpool != nil {
		fab.ctl.AtFunc(ro.dpool.tickInterval(), dtickEvent, ro, 0, 0)
	}
	fab.start()
	defer fab.stopWorkers()
	fab.run()
	if ro.err == nil && plan != nil {
		// The run drained with work still unplaceable: account it as
		// dropped-with-reason instead of failing the run (a fault run is
		// allowed to lose requests, never to lose them silently).
		for _, item := range ro.pending {
			ro.drop(ro.items[item].origin, "stranded hand-off: fits no decode replica")
		}
		ro.pending = ro.pending[:0]
		for _, origin := range ro.queuedPrefill {
			ro.drop(origin, "no live prefill replica")
		}
		ro.queuedPrefill = ro.queuedPrefill[:0]
	}
	if ro.err == nil && plan == nil && len(ro.pending) > 0 {
		it := ro.items[ro.pending[0]]
		ro.err = fmt.Errorf("fleet: %d hand-offs stranded: request %d (%d KV blocks) fits no decode replica",
			len(ro.pending), it.origin, it.h.KV.Blocks())
	}
	if ro.err != nil {
		shutdownAll()
		return nil, ro.err
	}
	// Finalize every engine even after a failure so no worker
	// goroutines leak.
	results := make([]*core.Result, total)
	var ferr error
	for i, e := range engines {
		res, err := e.Finalize()
		if err != nil && ferr == nil {
			ferr = fmt.Errorf("fleet: disagg replica %d: %w", i, err)
		}
		results[i] = res
	}
	if ferr != nil {
		return nil, ferr
	}
	res, err := ro.assemble(cfg, dc, results)
	if err == nil {
		res.Steps = fab.Steps()
		if ro.dpool != nil {
			res.Report.Autoscale = ro.dpool.finish(res.Report.Elapsed, cfg.World)
		}
	}
	return res, err
}

// dtickEvent is one decode-pool autoscaler evaluation on the control
// timeline. The decode queue signal counts resident decode requests
// plus hand-offs still waiting for headroom; TTFT/goodput carry no
// decode-side meaning, so they stay at their neutral values.
func dtickEvent(ctx any, _, _ int) {
	ro := ctx.(*disaggRouter)
	if ro.err != nil {
		return
	}
	now := float64(ro.ctl.Now())
	ro.dpool.reapDrains()
	ro.dpool.stats.Ticks++
	var s policy.Signals
	s.Active, s.Warming = ro.dpool.counts()
	queued := len(ro.pending)
	for i := range ro.decode {
		queued += ro.dOut[i].Requests
	}
	if s.Active > 0 {
		s.QueuePerReplica = float64(queued) / float64(s.Active)
	} else {
		s.QueuePerReplica = float64(queued)
	}
	s.Goodput = 1
	outstanding := func(i int) int { return ro.dOut[i].Requests }
	warm := func(k int) {
		ro.ctl.AtFunc(sim.Time(now+ro.dpool.coldStart), dactivateEvent, ro, k, 0)
	}
	ro.dpool.scale(ro.dpool.as.Decide(now, s), now, outstanding, warm)
	// Keep ticking while any request is unresolved. A handed-off
	// request is counted once by its prefill engine and once at its
	// real decode finish, so subtract the hand-off count.
	finished := -ro.handoffs
	for _, e := range ro.prefill {
		finished += e.NumFinished()
	}
	for _, e := range ro.decode {
		finished += e.NumFinished()
	}
	if finished+ro.fstats.Dropped < len(ro.reqs) {
		ro.ctl.AtFunc(ro.ctl.Now()+ro.dpool.tickInterval(), dtickEvent, ro, 0, 0)
	}
}

// dactivateEvent completes one decode-pool scale-up and immediately
// retries queued hand-offs against the new headroom.
func dactivateEvent(ctx any, k, _ int) {
	ro := ctx.(*disaggRouter)
	if ro.err != nil {
		return
	}
	ro.dpool.activate(k)
	ro.drainPending()
}

// disaggArrivalEvent fires at a request's arrival instant (AtFunc: ctx
// is the router, a the trace index).
func disaggArrivalEvent(ctx any, idx, _ int) {
	ro := ctx.(*disaggRouter)
	ro.route(ro.reqs[idx], idx)
}

// route dispatches one arrival to the prefill pool. Under a fault plan
// the pick is health-checked: dead replicas are filtered out first, and
// an arrival with no live prefill replica queues until a restart.
func (ro *disaggRouter) route(r workload.Request, origin int) {
	if ro.err != nil {
		return
	}
	if ro.plan != nil || ro.pBreakers != nil {
		ro.dispatchPrefill(origin)
		return
	}
	loads := ro.loads[:len(ro.prefill)]
	for i := range ro.prefill {
		l := ro.pOut[i]
		l.WarmTokens = ro.prefill[i].PrefixWarmTokens(r)
		l.FreeKVTokens = ro.prefill[i].FreeKVTokens()
		loads[i] = l
	}
	k := ro.ppolicy.Pick(r, loads)
	if k < 0 || k >= len(ro.prefill) {
		ro.err = fmt.Errorf("fleet: policy %q picked prefill replica %d of %d", ro.ppolicy.Name(), k, len(ro.prefill))
		return
	}
	ro.submitPrefill(r, origin, k)
}

// dispatchPrefill routes origin's request to a live, breaker-routable
// prefill replica (arrivals and crash recompute re-dispatches alike),
// queueing it when the whole pool is down. When every live replica's
// breaker is open the filter falls back to liveness alone — a
// fully-tripped pool keeps serving (degraded) instead of stalling
// arrivals forever.
func (ro *disaggRouter) dispatchPrefill(origin int) {
	r := ro.reqs[origin]
	now := float64(ro.ctl.Now())
	ro.cand = ro.cand[:0]
	loads := ro.loads[:0]
	skips := 0
	add := func(i int) {
		l := ro.pOut[i]
		l.WarmTokens = ro.prefill[i].PrefixWarmTokens(r)
		l.FreeKVTokens = ro.prefill[i].FreeKVTokens()
		ro.cand = append(ro.cand, i)
		loads = append(loads, l)
	}
	for i := range ro.prefill {
		if !ro.prefill[i].Alive() {
			continue
		}
		if ro.pBreakers != nil && !ro.pBreakers[i].Routable(now) {
			skips++
			continue
		}
		add(i)
	}
	if len(ro.cand) == 0 && skips > 0 {
		for i := range ro.prefill {
			if ro.prefill[i].Alive() {
				add(i)
			}
		}
	} else {
		ro.astats.BreakerSkips += skips
	}
	if len(ro.cand) == 0 {
		ro.queuedPrefill = append(ro.queuedPrefill, origin)
		return
	}
	j := ro.ppolicy.Pick(r, loads)
	if j < 0 || j >= len(ro.cand) {
		ro.err = fmt.Errorf("fleet: policy %q picked prefill candidate %d of %d", ro.ppolicy.Name(), j, len(ro.cand))
		return
	}
	k := ro.cand[j]
	if ro.pBreakers != nil {
		// Consume the half-open probe slot if the pick is probing.
		ro.pBreakers[k].Allow(now)
	}
	ro.submitPrefill(r, origin, k)
}

// submitPrefill lands one request on prefill replica k and records the
// routing.
func (ro *disaggRouter) submitPrefill(r workload.Request, origin, k int) {
	cost := ro.ppolicy.Cost(r)
	local, err := ro.prefill[k].Submit(r)
	if err != nil {
		if ro.plan != nil && errors.Is(err, core.ErrRequestTooLarge) {
			// A fault run is allowed to lose requests, never to lose
			// them silently: an unservable request drops with a reason
			// instead of failing the whole run.
			ro.drop(origin, err.Error())
			return
		}
		ro.err = fmt.Errorf("fleet: prefill replica %d rejected request %d: %w", k, origin, err)
		return
	}
	ro.pEntries[k] = append(ro.pEntries[k], loadEntry{inputTokens: r.InputLen, cost: cost})
	ro.pOut[k].Requests++
	ro.pOut[k].InputTokens += r.InputLen
	ro.pOut[k].CostTokens += cost
	routed := r
	routed.ID = local
	ro.pShards[k].Reqs = append(ro.pShards[k].Reqs, routed)
	ro.pShards[k].Origin = append(ro.pShards[k].Origin, origin)
	ro.final[origin] = recRef{decode: false, replica: k, local: local}
}

// retirePrefill removes a request's contribution from its prefill
// replica's load counters (finish, hand-off and crash-abort alike).
func (ro *disaggRouter) retirePrefill(replica, local int) {
	en := ro.pEntries[replica][local]
	ro.pOut[replica].Requests--
	ro.pOut[replica].InputTokens -= en.inputTokens
	ro.pOut[replica].CostTokens -= en.cost
}

// prefillFinished is the prefill engines' completion hook; it fires
// both for local completions and for hand-offs (the prefill engine
// retires the request before the hand-off hook runs, which immediately
// takes the tentative finish back).
func (ro *disaggRouter) prefillFinished(replica, local int) {
	ro.retirePrefill(replica, local)
	if ro.fin != nil {
		ro.fin[ro.pShards[replica].Origin[local]]++
	}
	if ro.pBreakers != nil {
		// Trip accounting is summed from Trips() at assemble; the
		// hook must not touch the shared stats struct.
		ro.pBreakers[replica].OnSuccess(float64(ro.prefill[replica].Now()))
	}
}

// handoff receives a prefill-completed request (drained canonically at
// an epoch barrier) and schedules its KV transfer on the control
// timeline: the whole exported block window crosses the link, so the
// request becomes placeable on the decode pool only once the transfer
// completes. The link's minimum transfer time is the lookahead that
// keeps the decode tier's conservative advance safe.
func (ro *disaggRouter) handoff(replica int, h core.Handoff) {
	if ro.err != nil {
		return
	}
	origin := ro.pShards[replica].Origin[h.Local]
	if ro.fin != nil {
		// The engine-local "finish" was a hand-off, not a completion.
		ro.fin[origin]--
	}
	ro.items = append(ro.items, handoffItem{origin: origin, h: h})
	ro.handoffs++
	bytes := float64(h.KV.Blocks()) * ro.blockBytes
	ro.moved += bytes
	done := float64(h.At) + ro.xferTime(bytes)
	if ro.plan != nil {
		// The export crosses the source replica's link timeline: a
		// prefill replica inside a network domain outage stalls its
		// hand-offs until the partition lifts.
		done = ro.plan.TransferDoneFrom(replica, float64(h.At), ro.xferTime(bytes))
	}
	ro.ctl.AtFunc(sim.Time(done), transferDoneEvent, ro, len(ro.items)-1, 0)
}

// transferDoneEvent fires when a hand-off's KV transfer completes
// (AtFunc: ctx is the router, a the item index).
func transferDoneEvent(ctx any, item, _ int) {
	ro := ctx.(*disaggRouter)
	if ro.err != nil {
		return
	}
	if !ro.place(item) {
		ro.queued++
		ro.pending = append(ro.pending, item)
	}
}

// place admits a transferred hand-off on a decode replica, if any has
// headroom for the import. Replicas that cannot import — dead,
// drained, out of KV headroom, or inside a network domain outage —
// are filtered out before the decode-affinity pick ranks the rest;
// breaker-open replicas are skipped too, falling back to the
// importable set when every importable breaker is open.
func (ro *disaggRouter) place(item int) bool {
	it := &ro.items[item]
	r := ro.reqs[it.origin]
	now := float64(ro.ctl.Now())
	ro.cand = ro.cand[:0]
	loads := ro.loads[:0]
	skips := 0
	add := func(i int) {
		l := ro.dOut[i]
		l.WarmTokens = ro.decode[i].ResidentKVTokens(it.h.KV)
		l.FreeKVTokens = ro.decode[i].FreeKVTokens()
		ro.cand = append(ro.cand, i)
		loads = append(loads, l)
	}
	// lift is the earliest instant a partition excluding a replica
	// here will end; a placement retry is scheduled there so work is
	// never stranded behind an outage that outlives the decode pool's
	// finish stream.
	lift := -1.0
	importable := func(i int) bool {
		if !ro.dpool.routable(i) || !ro.decode[i].Alive() || !ro.decode[i].CanImportKV(it.h.KV) {
			return false
		}
		if ro.plan.PartitionedAt(len(ro.prefill)+i, now) {
			if end := ro.plan.PartitionLiftsAt(len(ro.prefill)+i, now); lift < 0 || end < lift {
				lift = end
			}
			return false
		}
		return true
	}
	for i := range ro.decode {
		if !importable(i) {
			continue
		}
		if ro.dBreakers != nil && !ro.dBreakers[i].Routable(now) {
			skips++
			continue
		}
		add(i)
	}
	if len(ro.cand) == 0 && skips > 0 {
		for i := range ro.decode {
			if importable(i) {
				add(i)
			}
		}
	} else {
		ro.astats.BreakerSkips += skips
	}
	if len(ro.cand) == 0 {
		if lift > now {
			ro.ctl.AtFunc(sim.Time(lift), drainPendingEvent, ro, 0, 0)
		}
		return false
	}
	j := ro.dpolicy.Pick(r, loads)
	if j < 0 || j >= len(ro.cand) {
		ro.err = fmt.Errorf("fleet: policy %q picked decode candidate %d of %d", ro.dpolicy.Name(), j, len(ro.cand))
		return true
	}
	k := ro.cand[j]
	if ro.dBreakers != nil {
		// Consume the half-open probe slot if the pick is probing.
		ro.dBreakers[k].Allow(now)
	}
	local, err := ro.decode[k].SubmitDecoded(r, it.h)
	if err != nil {
		if ro.plan != nil {
			// The import failed at arrival — the target died or lost
			// its headroom in this very instant. Re-enter the
			// lifecycle through the prefill pool with recompute on the
			// same attempt instead of stranding the request (an
			// oversized request drops inside submitPrefill).
			ro.fstats.RecoveredRecompute++
			ro.dispatchPrefill(it.origin)
			return true
		}
		ro.err = fmt.Errorf("fleet: import on decode replica %d: %w", k, err)
		return true
	}
	cost := ro.dpolicy.Cost(r)
	ro.dEntries[k] = append(ro.dEntries[k], loadEntry{inputTokens: r.InputLen, cost: cost})
	ro.dOut[k].Requests++
	ro.dOut[k].InputTokens += r.InputLen
	ro.dOut[k].CostTokens += cost
	routed := r
	routed.ID = local
	ro.dShards[k].Reqs = append(ro.dShards[k].Reqs, routed)
	ro.dShards[k].Origin = append(ro.dShards[k].Origin, it.origin)
	ro.final[it.origin] = recRef{decode: true, replica: k, local: local}
	if it.recovery {
		ro.fstats.RecoveredCheckpoint++
	}
	return true
}

// decodeFinished retires a request from its decode replica's counters
// and flags the finish on the replica's shard: when hand-offs are
// queued for headroom, the fabric lockstep sees the flag and retries
// placement at this instant (after every decode event at it has run).
func (ro *disaggRouter) decodeFinished(replica, local int) {
	ro.retireDecode(replica, local)
	if ro.fin != nil {
		ro.fin[ro.dShards[replica].Origin[local]]++
	}
	if ro.dBreakers != nil {
		ro.dBreakers[replica].OnSuccess(float64(ro.decode[replica].Now()))
	}
	if ro.dpool != nil && ro.dOut[replica].Requests == 0 {
		ro.dpool.noteDrained(replica, float64(ro.decode[replica].Now()))
	}
	ro.fab.markFinish(len(ro.prefill) + replica)
}

// retireDecode removes a request's contribution from its decode
// replica's load counters (finish and crash-abort alike).
func (ro *disaggRouter) retireDecode(replica, local int) {
	en := ro.dEntries[replica][local]
	ro.dOut[replica].Requests--
	ro.dOut[replica].InputTokens -= en.inputTokens
	ro.dOut[replica].CostTokens -= en.cost
}

// drainPendingEvent retries queued hand-offs in completion order
// (AtFunc: ctx is the router). Scheduled by restores; the fabric
// lockstep calls drainPending directly at decode-finish instants.
func drainPendingEvent(ctx any, _, _ int) {
	ctx.(*disaggRouter).drainPending()
}

// drainPending retries queued hand-offs in completion order. Callers
// guarantee every decode replica's clock is parked at the drain
// instant.
func (ro *disaggRouter) drainPending() {
	if ro.err != nil {
		return
	}
	kept := ro.pending[:0]
	for _, item := range ro.pending {
		if ro.err != nil || !ro.place(item) {
			kept = append(kept, item)
		}
	}
	ro.pending = kept
}

// disaggCrashEvent executes one planned replica failure (AtFunc: ctx
// is the router, a the crash index in the plan). The replica's
// in-flight requests are aborted and re-dispatched: resumed from their
// KV checkpoint on the decode pool when one exists, re-prefilled
// through the prefill pool otherwise.
func disaggCrashEvent(ctx any, ci, _ int) {
	ro := ctx.(*disaggRouter)
	if ro.err != nil {
		return
	}
	c := ro.plan.Crashes[ci]
	restart := sim.Time(c.RestartAt)
	var lost []core.Lost
	var err error
	var origins []int
	if c.Replica < len(ro.prefill) {
		k := c.Replica
		lost, err = ro.prefill[k].Crash(restart)
		if err == nil {
			for _, l := range lost {
				ro.retirePrefill(k, l.Local)
				origins = append(origins, ro.pShards[k].Origin[l.Local])
			}
		}
	} else {
		dk := c.Replica - len(ro.prefill)
		lost, err = ro.decode[dk].Crash(restart)
		if err == nil {
			for _, l := range lost {
				ro.retireDecode(dk, l.Local)
				origins = append(origins, ro.dShards[dk].Origin[l.Local])
			}
		}
	}
	if err != nil {
		ro.err = fmt.Errorf("fleet: crash of replica %d: %w", c.Replica, err)
		return
	}
	if b := ro.breakerFor(c.Replica); b != nil {
		// A crash is a failure signal per aborted request — at least
		// one even when the replica was idle — so repeated outages
		// open the breaker and routing stops probing the replica.
		now := float64(ro.ctl.Now())
		for i := 0; i < max(len(lost), 1); i++ {
			b.OnFailure(now)
		}
	}
	for i, l := range lost {
		ro.recover(origins[i], l)
	}
}

// breakerFor maps a fleet-global replica index to its pool's breaker,
// nil when breakers are off.
func (ro *disaggRouter) breakerFor(replica int) *policy.Breaker {
	switch {
	case ro.pBreakers == nil:
		return nil
	case replica < len(ro.prefill):
		return ro.pBreakers[replica]
	default:
		return ro.dBreakers[replica-len(ro.prefill)]
	}
}

// recover re-dispatches one crash-lost request, spending one retry.
func (ro *disaggRouter) recover(origin int, l core.Lost) {
	if ro.err != nil {
		return
	}
	ro.attempts[origin]++
	if ro.attempts[origin] > ro.plan.MaxRetries() {
		ro.drop(origin, "retry budget exhausted")
		return
	}
	if l.Ckpt != nil {
		// Checkpoint resume: ship the snapshot back over the KV link
		// and re-enter the decode pool through the hand-off machinery
		// (placement, headroom queueing and the pending drain all
		// behave exactly as for a fresh hand-off).
		now := ro.ctl.Now()
		h := core.Handoff{
			Local:        -1,
			Req:          ro.reqs[origin],
			KV:           l.Ckpt.KV,
			Generated:    l.Ckpt.Generated,
			FirstTokenAt: l.Ckpt.FirstTokenAt,
			At:           now,
		}
		ro.items = append(ro.items, handoffItem{origin: origin, h: h, recovery: true})
		bytes := float64(l.Ckpt.KV.Blocks()) * ro.blockBytes
		ro.moved += bytes
		done := ro.plan.TransferDone(float64(now), ro.xferTime(bytes))
		ro.ctl.AtFunc(sim.Time(done), transferDoneEvent, ro, len(ro.items)-1, 0)
		return
	}
	// Recompute resume: the whole lifecycle restarts through the
	// prefill pool (the generation already delivered is redone there —
	// Faults.LostOutputTokens accounts it).
	ro.fstats.RecoveredRecompute++
	ro.dispatchPrefill(origin)
}

// disaggRestoreEvent brings a crashed replica back at its restart
// instant and drains work that queued while it was (or everything was)
// down.
func disaggRestoreEvent(ctx any, ci, _ int) {
	ro := ctx.(*disaggRouter)
	if ro.err != nil {
		return
	}
	c := ro.plan.Crashes[ci]
	if c.Replica < len(ro.prefill) {
		if err := ro.prefill[c.Replica].Restore(); err != nil {
			ro.err = fmt.Errorf("fleet: restore of replica %d: %w", c.Replica, err)
			return
		}
		if len(ro.queuedPrefill) > 0 {
			q := ro.queuedPrefill
			ro.queuedPrefill = nil
			for _, origin := range q {
				ro.dispatchPrefill(origin)
			}
		}
		return
	}
	if err := ro.decode[c.Replica-len(ro.prefill)].Restore(); err != nil {
		ro.err = fmt.Errorf("fleet: restore of replica %d: %w", c.Replica, err)
		return
	}
	if len(ro.pending) > 0 {
		// Retry after the control events at this instant settle: the
		// restored replica may now import what others could not.
		ro.ctl.AtFunc(ro.ctl.Now(), drainPendingEvent, ro, 0, 0)
	}
}

// drop abandons a request with a reason (idempotent).
func (ro *disaggRouter) drop(origin int, reason string) {
	if ro.droppedReason[origin] == "" {
		ro.droppedReason[origin] = reason
		ro.fstats.Dropped++
	}
}

// assemble builds the merged disaggregated result: the conservation
// check, the record merge across pools, and the aggregate report.
func (ro *disaggRouter) assemble(cfg core.Config, dc DisaggConfig, results []*core.Result) (*DisaggResult, error) {
	if ro.plan != nil {
		return ro.assembleFaults(cfg, dc, results)
	}
	n := len(ro.reqs)
	res := &DisaggResult{
		Prefill:          results[:dc.PrefillReplicas],
		Decode:           results[dc.PrefillReplicas:],
		PrefillShards:    ro.pShards,
		DecodeShards:     ro.dShards,
		Handoffs:         ro.handoffs,
		TransferredBytes: ro.moved,
		QueuedHandoffs:   ro.queued,
	}
	if err := res.checkConservation(n); err != nil {
		return nil, err
	}
	records := make([]metrics.RequestRecord, n)
	for origin, ref := range ro.final {
		pool := res.Prefill
		if ref.decode {
			pool = res.Decode
		}
		rec := pool[ref.replica].Records[ref.local]
		rec.ID = origin
		records[origin] = rec
	}
	res.Records = records

	rep := metrics.Report{
		Scheduler: fmt.Sprintf("Disagg(TD-Pipe %dP+%dD)", dc.PrefillReplicas, dc.DecodeReplicas),
		Node:      cfg.Node.Name,
		Model:     cfg.Spec.Name,
		GPUs:      cfg.World * (dc.PrefillReplicas + dc.DecodeReplicas),
		Requests:  n,
	}
	for _, r := range ro.reqs {
		rep.InputTokens += r.InputLen
	}
	for _, rec := range records {
		rep.OutputTokens += rec.OutputTokens
	}
	var busy float64
	for _, r := range results {
		rr := r.Report
		rep.PhaseSwitches += rr.PhaseSwitches
		rep.Recomputes += rr.Recomputes
		rep.PrefixCachedTokens += rr.PrefixCachedTokens
		if rr.Elapsed > rep.Elapsed {
			rep.Elapsed = rr.Elapsed
		}
		if rr.KVPeakUsage > rep.KVPeakUsage {
			rep.KVPeakUsage = rr.KVPeakUsage
		}
		busy += rr.MeanUtilization * rr.Elapsed * float64(rr.GPUs)
	}
	if rep.Elapsed > 0 && rep.GPUs > 0 {
		rep.MeanUtilization = busy / (rep.Elapsed * float64(rep.GPUs))
	}
	ro.addBreakerStats(&rep)
	rep.BubbleRatio = 1 - rep.MeanUtilization
	rep.Latency = metrics.Digest(records, cfg.SLO)
	res.Report = rep
	return res, nil
}

// addBreakerStats folds routing-time breaker activity and the trip
// count into the report's admission stats (a no-op zero value when
// breakers are off, so pre-breaker reports stay byte-identical).
func (ro *disaggRouter) addBreakerStats(rep *metrics.Report) {
	if ro.pBreakers != nil {
		trips := 0
		for _, b := range ro.pBreakers {
			trips += b.Trips()
		}
		for _, b := range ro.dBreakers {
			trips += b.Trips()
		}
		ro.astats.BreakerTrips = trips
	}
	rep.Admission = ro.astats
}

// assembleFaults builds the result of a fault-injected run. The
// conservation invariant changes shape: instead of "every replica
// completed exactly its shard", every trace request must have finished
// terminally exactly once XOR carry a drop reason — nothing lost
// silently, nothing double-finished, across any number of crashes and
// re-dispatches.
func (ro *disaggRouter) assembleFaults(cfg core.Config, dc DisaggConfig, results []*core.Result) (*DisaggResult, error) {
	n := len(ro.reqs)
	res := &DisaggResult{
		Prefill:          results[:dc.PrefillReplicas],
		Decode:           results[dc.PrefillReplicas:],
		PrefillShards:    ro.pShards,
		DecodeShards:     ro.dShards,
		Handoffs:         ro.handoffs,
		TransferredBytes: ro.moved,
		QueuedHandoffs:   ro.queued,
	}
	finished := 0
	for origin := 0; origin < n; origin++ {
		switch f, dropped := ro.fin[origin], ro.droppedReason[origin] != ""; {
		case f == 1 && !dropped:
			finished++
		case f == 0 && dropped:
		case f > 1:
			return nil, fmt.Errorf("fleet: request %d finished %d times across crashes", origin, f)
		case dropped:
			return nil, fmt.Errorf("fleet: request %d both finished and dropped (%s)", origin, ro.droppedReason[origin])
		default:
			return nil, fmt.Errorf("fleet: request %d lost without a drop reason (fin=%d)", origin, f)
		}
	}
	records := make([]metrics.RequestRecord, n)
	for origin, ref := range ro.final {
		if ro.droppedReason[origin] != "" {
			// Dropped: an unfinished zero record — it stays in the
			// digest's denominator, so goodput pays for the loss.
			records[origin] = metrics.RequestRecord{ID: origin, Arrival: ro.reqs[origin].ArrivalTime}
			continue
		}
		pool := res.Prefill
		if ref.decode {
			pool = res.Decode
		}
		rec := pool[ref.replica].Records[ref.local]
		rec.ID = origin
		records[origin] = rec
	}
	res.Records = records

	rep := metrics.Report{
		Scheduler: fmt.Sprintf("DisaggFaults(TD-Pipe %dP+%dD)", dc.PrefillReplicas, dc.DecodeReplicas),
		Node:      cfg.Node.Name,
		Model:     cfg.Spec.Name,
		GPUs:      cfg.World * (dc.PrefillReplicas + dc.DecodeReplicas),
		Requests:  finished,
	}
	for origin, r := range ro.reqs {
		if ro.droppedReason[origin] == "" {
			rep.InputTokens += r.InputLen
		}
	}
	for _, rec := range records {
		rep.OutputTokens += rec.OutputTokens
	}
	var busy float64
	for _, r := range results {
		rr := r.Report
		rep.PhaseSwitches += rr.PhaseSwitches
		rep.Recomputes += rr.Recomputes
		rep.PrefixCachedTokens += rr.PrefixCachedTokens
		rep.Faults.Add(rr.Faults)
		if rr.Elapsed > rep.Elapsed {
			rep.Elapsed = rr.Elapsed
		}
		if rr.KVPeakUsage > rep.KVPeakUsage {
			rep.KVPeakUsage = rr.KVPeakUsage
		}
		busy += rr.MeanUtilization * rr.Elapsed * float64(rr.GPUs)
	}
	ro.fstats.DomainOutages = len(ro.plan.Domains)
	rep.Faults.Add(ro.fstats)
	ro.addBreakerStats(&rep)
	if rep.Elapsed > 0 && rep.GPUs > 0 {
		rep.MeanUtilization = busy / (rep.Elapsed * float64(rep.GPUs))
	}
	rep.BubbleRatio = 1 - rep.MeanUtilization
	rep.Latency = metrics.Digest(records, cfg.SLO)
	res.Report = rep
	return res, nil
}

// checkConservation verifies the disaggregated request lifecycle:
// every trace request was prefilled on exactly one prefill replica,
// handed to at most one decode replica, and each replica completed
// exactly its shard.
func (r *DisaggResult) checkConservation(n int) error {
	prefilled := make([]int, n)
	for i, sh := range r.PrefillShards {
		if len(sh.Reqs) != len(sh.Origin) {
			return fmt.Errorf("fleet: prefill replica %d has %d requests but %d origins", i, len(sh.Reqs), len(sh.Origin))
		}
		if got := r.Prefill[i].Report.Requests; got != len(sh.Reqs) {
			return fmt.Errorf("fleet: prefill replica %d completed %d of %d requests", i, got, len(sh.Reqs))
		}
		for _, o := range sh.Origin {
			if o < 0 || o >= n {
				return fmt.Errorf("fleet: prefill replica %d has origin %d outside trace of %d", i, o, n)
			}
			prefilled[o]++
		}
	}
	for o, c := range prefilled {
		if c != 1 {
			return fmt.Errorf("fleet: request %d prefilled %d times", o, c)
		}
	}
	decoded := make([]int, n)
	for i, sh := range r.DecodeShards {
		if len(sh.Reqs) != len(sh.Origin) {
			return fmt.Errorf("fleet: decode replica %d has %d requests but %d origins", i, len(sh.Reqs), len(sh.Origin))
		}
		if got := r.Decode[i].Report.Requests; got != len(sh.Reqs) {
			return fmt.Errorf("fleet: decode replica %d completed %d of %d requests", i, got, len(sh.Reqs))
		}
		for _, o := range sh.Origin {
			if o < 0 || o >= n {
				return fmt.Errorf("fleet: decode replica %d has origin %d outside trace of %d", i, o, n)
			}
			decoded[o]++
		}
	}
	handed := 0
	for o, c := range decoded {
		if c > 1 {
			return fmt.Errorf("fleet: request %d decoded on %d replicas", o, c)
		}
		handed += c
	}
	if handed != r.Handoffs {
		return fmt.Errorf("fleet: %d hand-offs recorded but %d requests placed on the decode pool", r.Handoffs, handed)
	}
	return nil
}
