package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Disaggregated prefill/decode serving: the fleet is split into a
// prefill pool and a decode pool sharing one virtual clock. Every
// arrival is routed to a prefill replica (least-work); when its prefill
// completes, the engine exports the finished prefix KV (core.Handoff)
// and the router migrates it to a decode replica over the node's KV
// link — transfer time = blocks x block bytes / bandwidth + latency —
// where generation resumes via SubmitDecoded. The transfer overlaps
// decode-side queueing: a hand-off becomes placeable once its transfer
// completes, and waits in a FIFO only while no decode replica has KV
// headroom for the import (retried as decode requests finish).
//
// The split isolates the two phases' interference: prefill replicas
// never stall arrivals behind long decode phases, so TTFT stays flat
// under bursts, at the price of the modeled transfer and fewer
// decode-side token slots. Like the online router, the co-simulation is
// single-threaded, so results are deterministic for a fixed trace,
// config and split.

// DisaggConfig sizes the two pools of a disaggregated deployment. Both
// pools run the same engine configuration (core.Config); only the role
// differs.
type DisaggConfig struct {
	// PrefillReplicas is the number of engines dedicated to prefill.
	PrefillReplicas int
	// DecodeReplicas is the number of engines dedicated to decode.
	DecodeReplicas int
}

// Validate reports a configuration error, if any.
func (dc DisaggConfig) Validate() error {
	if dc.PrefillReplicas <= 0 || dc.DecodeReplicas <= 0 {
		return fmt.Errorf("fleet: disagg pools %dP+%dD (both must be positive)",
			dc.PrefillReplicas, dc.DecodeReplicas)
	}
	return nil
}

// DisaggResult is the outcome of a disaggregated run.
type DisaggResult struct {
	// Report is the fleet-level aggregate over both pools; Latency
	// digests the per-request records spanning the whole hand-off
	// lifecycle (arrival at the prefill pool to completion in the
	// decode pool).
	Report metrics.Report
	// Prefill and Decode hold the per-replica engine results.
	Prefill, Decode []*core.Result
	// PrefillShards records the arrival routing: every trace request
	// appears in exactly one prefill shard. DecodeShards records the
	// hand-off placement: requests that finished at prefill
	// (single-token outputs) appear in no decode shard.
	PrefillShards, DecodeShards []Shard
	// Records holds the merged per-request records indexed by trace
	// position: the decode replica's record for handed-off requests
	// (it carries the original arrival and first-token instants), the
	// prefill replica's for requests that completed there.
	Records []metrics.RequestRecord
	// Handoffs counts requests migrated to the decode pool.
	Handoffs int
	// TransferredBytes is the total KV moved over the hand-off link.
	TransferredBytes float64
	// QueuedHandoffs counts hand-offs that had to wait for decode-pool
	// KV headroom after their transfer completed.
	QueuedHandoffs int
}

// recRef locates a request's finished record: the pool, replica index
// and replica-local id that owns it.
type recRef struct {
	decode  bool
	replica int
	local   int
}

// handoffItem is one in-flight migration.
type handoffItem struct {
	origin int
	h      core.Handoff
}

// disaggRouter coordinates the two pools inside the shared simulation.
type disaggRouter struct {
	eng     *sim.Engine
	prefill []*core.Engine
	decode  []*core.Engine
	ppolicy Policy
	dpolicy Policy
	reqs    []workload.Request
	// blockBytes is the KV footprint of one block across the model.
	blockBytes float64
	xferTime   func(bytes float64) float64

	pOut     []Load
	pEntries [][]loadEntry
	pShards  []Shard

	dOut     []Load
	dEntries [][]loadEntry
	dShards  []Shard

	// loads is the per-pick snapshot buffer, sized for the larger pool.
	loads []Load
	// cand maps snapshot rows back to decode replica indices when the
	// importability filter drops some replicas.
	cand []int

	items []handoffItem
	// pending holds item indices whose transfer completed but which no
	// decode replica can import yet, in completion order.
	pending        []int
	drainScheduled bool

	final    []recRef
	handoffs int
	moved    float64
	queued   int
	err      error
}

// RunDisagg serves an arrival-stamped trace on a disaggregated fleet:
// dc.PrefillReplicas prefill engines and dc.DecodeReplicas decode
// engines, all instances of cfg on one shared virtual clock. Arrivals
// are dispatched least-work across the prefill pool; hand-offs are
// placed by the decode-affinity pick (warmest resident KV, then free-KV
// headroom, then least predicted decode work). Closed-loop traces
// (all arrivals at t=0) are served the same way — every request routes
// at t=0.
func RunDisagg(cfg core.Config, dc DisaggConfig, reqs []workload.Request) (*DisaggResult, error) {
	if err := dc.Validate(); err != nil {
		return nil, err
	}
	ppolicy, err := New(LeastWork, Options{Predictor: cfg.Predictor})
	if err != nil {
		return nil, err
	}
	dpolicy, err := New(DecodeAffinity, Options{Predictor: cfg.Predictor})
	if err != nil {
		return nil, err
	}

	eng := sim.NewEngine()
	total := dc.PrefillReplicas + dc.DecodeReplicas
	engines := make([]*core.Engine, 0, total)
	shutdownAll := func() {
		for _, e := range engines {
			e.Shutdown()
		}
	}
	for i := 0; i < total; i++ {
		e, err := core.NewEngine(eng, cfg)
		if err != nil {
			shutdownAll()
			return nil, fmt.Errorf("fleet: disagg replica %d: %w", i, err)
		}
		engines = append(engines, e)
		if err := e.StartOnline(); err != nil {
			shutdownAll()
			return nil, fmt.Errorf("fleet: disagg replica %d: %w", i, err)
		}
	}

	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = kvcache.DefaultBlockSize
	}
	ro := &disaggRouter{
		eng:        eng,
		prefill:    engines[:dc.PrefillReplicas],
		decode:     engines[dc.PrefillReplicas:],
		ppolicy:    ppolicy,
		dpolicy:    dpolicy,
		reqs:       reqs,
		blockBytes: float64(blockSize) * cfg.Spec.KVBytesPerToken(),
		xferTime:   cfg.Node.KVTransferTime,
		pOut:       make([]Load, dc.PrefillReplicas),
		pEntries:   make([][]loadEntry, dc.PrefillReplicas),
		pShards:    make([]Shard, dc.PrefillReplicas),
		dOut:       make([]Load, dc.DecodeReplicas),
		dEntries:   make([][]loadEntry, dc.DecodeReplicas),
		dShards:    make([]Shard, dc.DecodeReplicas),
		loads:      make([]Load, max(dc.PrefillReplicas, dc.DecodeReplicas)),
		cand:       make([]int, 0, dc.DecodeReplicas),
		final:      make([]recRef, len(reqs)),
	}
	for i := range ro.prefill {
		i := i
		ro.prefill[i].SetOnFinish(func(local int) { ro.prefillFinished(i, local) })
		ro.prefill[i].SetHandoff(func(h core.Handoff) { ro.handoff(i, h) })
	}
	for i := range ro.decode {
		i := i
		ro.decode[i].SetOnFinish(func(local int) { ro.decodeFinished(i, local) })
	}

	// One event per request at its arrival instant, in (arrival, trace
	// index) order so simultaneous arrivals route in trace order.
	for _, idx := range workload.SortByArrival(reqs) {
		at := sim.Time(reqs[idx].ArrivalTime)
		if at < 0 {
			at = 0
		}
		eng.AtFunc(at, disaggArrivalEvent, ro, idx, 0)
	}
	eng.Run()
	if ro.err == nil && len(ro.pending) > 0 {
		it := ro.items[ro.pending[0]]
		ro.err = fmt.Errorf("fleet: %d hand-offs stranded: request %d (%d KV blocks) fits no decode replica",
			len(ro.pending), it.origin, it.h.KV.Blocks())
	}
	if ro.err != nil {
		shutdownAll()
		return nil, ro.err
	}
	// Finalize every engine even after a failure so no worker
	// goroutines leak.
	results := make([]*core.Result, total)
	var ferr error
	for i, e := range engines {
		res, err := e.Finalize()
		if err != nil && ferr == nil {
			ferr = fmt.Errorf("fleet: disagg replica %d: %w", i, err)
		}
		results[i] = res
	}
	if ferr != nil {
		return nil, ferr
	}
	return ro.assemble(cfg, dc, results)
}

// disaggArrivalEvent fires at a request's arrival instant (AtFunc: ctx
// is the router, a the trace index).
func disaggArrivalEvent(ctx any, idx, _ int) {
	ro := ctx.(*disaggRouter)
	ro.route(ro.reqs[idx], idx)
}

// route dispatches one arrival to the prefill pool.
func (ro *disaggRouter) route(r workload.Request, origin int) {
	if ro.err != nil {
		return
	}
	loads := ro.loads[:len(ro.prefill)]
	for i := range ro.prefill {
		l := ro.pOut[i]
		l.WarmTokens = ro.prefill[i].PrefixWarmTokens(r)
		l.FreeKVTokens = ro.prefill[i].FreeKVTokens()
		loads[i] = l
	}
	k := ro.ppolicy.Pick(r, loads)
	if k < 0 || k >= len(ro.prefill) {
		ro.err = fmt.Errorf("fleet: policy %q picked prefill replica %d of %d", ro.ppolicy.Name(), k, len(ro.prefill))
		return
	}
	cost := ro.ppolicy.Cost(r)
	local := ro.prefill[k].Submit(r)
	ro.pEntries[k] = append(ro.pEntries[k], loadEntry{inputTokens: r.InputLen, cost: cost})
	ro.pOut[k].Requests++
	ro.pOut[k].InputTokens += r.InputLen
	ro.pOut[k].CostTokens += cost
	routed := r
	routed.ID = local
	ro.pShards[k].Reqs = append(ro.pShards[k].Reqs, routed)
	ro.pShards[k].Origin = append(ro.pShards[k].Origin, origin)
	ro.final[origin] = recRef{decode: false, replica: k, local: local}
}

// prefillFinished retires a request's contribution from its prefill
// replica's counters; it fires both for local completions and for
// hand-offs (the prefill engine retires the request before the hand-off
// hook runs).
func (ro *disaggRouter) prefillFinished(replica, local int) {
	en := ro.pEntries[replica][local]
	ro.pOut[replica].Requests--
	ro.pOut[replica].InputTokens -= en.inputTokens
	ro.pOut[replica].CostTokens -= en.cost
}

// handoff receives a prefill-completed request and schedules its KV
// transfer: the whole exported block window crosses the link, so the
// request becomes placeable on the decode pool only once the transfer
// completes.
func (ro *disaggRouter) handoff(replica int, h core.Handoff) {
	if ro.err != nil {
		return
	}
	origin := ro.pShards[replica].Origin[h.Local]
	ro.items = append(ro.items, handoffItem{origin: origin, h: h})
	ro.handoffs++
	bytes := float64(h.KV.Blocks()) * ro.blockBytes
	ro.moved += bytes
	ro.eng.AtFunc(h.At+sim.Time(ro.xferTime(bytes)), transferDoneEvent, ro, len(ro.items)-1, 0)
}

// transferDoneEvent fires when a hand-off's KV transfer completes
// (AtFunc: ctx is the router, a the item index).
func transferDoneEvent(ctx any, item, _ int) {
	ro := ctx.(*disaggRouter)
	if ro.err != nil {
		return
	}
	if !ro.place(item) {
		ro.queued++
		ro.pending = append(ro.pending, item)
	}
}

// place admits a transferred hand-off on a decode replica, if any has
// headroom for the import. Replicas that cannot import are filtered
// out before the decode-affinity pick ranks the rest.
func (ro *disaggRouter) place(item int) bool {
	it := &ro.items[item]
	r := ro.reqs[it.origin]
	ro.cand = ro.cand[:0]
	loads := ro.loads[:0]
	for i := range ro.decode {
		if !ro.decode[i].CanImportKV(it.h.KV) {
			continue
		}
		l := ro.dOut[i]
		l.WarmTokens = ro.decode[i].ResidentKVTokens(it.h.KV)
		l.FreeKVTokens = ro.decode[i].FreeKVTokens()
		ro.cand = append(ro.cand, i)
		loads = append(loads, l)
	}
	if len(ro.cand) == 0 {
		return false
	}
	j := ro.dpolicy.Pick(r, loads)
	if j < 0 || j >= len(ro.cand) {
		ro.err = fmt.Errorf("fleet: policy %q picked decode candidate %d of %d", ro.dpolicy.Name(), j, len(ro.cand))
		return true
	}
	k := ro.cand[j]
	local, err := ro.decode[k].SubmitDecoded(r, it.h)
	if err != nil {
		ro.err = fmt.Errorf("fleet: import on decode replica %d: %w", k, err)
		return true
	}
	cost := ro.dpolicy.Cost(r)
	ro.dEntries[k] = append(ro.dEntries[k], loadEntry{inputTokens: r.InputLen, cost: cost})
	ro.dOut[k].Requests++
	ro.dOut[k].InputTokens += r.InputLen
	ro.dOut[k].CostTokens += cost
	routed := r
	routed.ID = local
	ro.dShards[k].Reqs = append(ro.dShards[k].Reqs, routed)
	ro.dShards[k].Origin = append(ro.dShards[k].Origin, it.origin)
	ro.final[it.origin] = recRef{decode: true, replica: k, local: local}
	return true
}

// decodeFinished retires a request from its decode replica's counters
// and, when hand-offs are waiting for headroom, schedules a drain at
// the current instant (after the engine's event finishes, keeping the
// engine re-entrancy-free).
func (ro *disaggRouter) decodeFinished(replica, local int) {
	en := ro.dEntries[replica][local]
	ro.dOut[replica].Requests--
	ro.dOut[replica].InputTokens -= en.inputTokens
	ro.dOut[replica].CostTokens -= en.cost
	if len(ro.pending) > 0 && !ro.drainScheduled {
		ro.drainScheduled = true
		ro.eng.AtFunc(ro.eng.Now(), drainPendingEvent, ro, 0, 0)
	}
}

// drainPendingEvent retries queued hand-offs in completion order
// (AtFunc: ctx is the router).
func drainPendingEvent(ctx any, _, _ int) {
	ro := ctx.(*disaggRouter)
	ro.drainScheduled = false
	if ro.err != nil {
		return
	}
	kept := ro.pending[:0]
	for _, item := range ro.pending {
		if ro.err != nil || !ro.place(item) {
			kept = append(kept, item)
		}
	}
	ro.pending = kept
}

// assemble builds the merged disaggregated result: the conservation
// check, the record merge across pools, and the aggregate report.
func (ro *disaggRouter) assemble(cfg core.Config, dc DisaggConfig, results []*core.Result) (*DisaggResult, error) {
	n := len(ro.reqs)
	res := &DisaggResult{
		Prefill:          results[:dc.PrefillReplicas],
		Decode:           results[dc.PrefillReplicas:],
		PrefillShards:    ro.pShards,
		DecodeShards:     ro.dShards,
		Handoffs:         ro.handoffs,
		TransferredBytes: ro.moved,
		QueuedHandoffs:   ro.queued,
	}
	if err := res.checkConservation(n); err != nil {
		return nil, err
	}
	records := make([]metrics.RequestRecord, n)
	for origin, ref := range ro.final {
		pool := res.Prefill
		if ref.decode {
			pool = res.Decode
		}
		rec := pool[ref.replica].Records[ref.local]
		rec.ID = origin
		records[origin] = rec
	}
	res.Records = records

	rep := metrics.Report{
		Scheduler: fmt.Sprintf("Disagg(TD-Pipe %dP+%dD)", dc.PrefillReplicas, dc.DecodeReplicas),
		Node:      cfg.Node.Name,
		Model:     cfg.Spec.Name,
		GPUs:      cfg.World * (dc.PrefillReplicas + dc.DecodeReplicas),
		Requests:  n,
	}
	for _, r := range ro.reqs {
		rep.InputTokens += r.InputLen
	}
	for _, rec := range records {
		rep.OutputTokens += rec.OutputTokens
	}
	var busy float64
	for _, r := range results {
		rr := r.Report
		rep.PhaseSwitches += rr.PhaseSwitches
		rep.Recomputes += rr.Recomputes
		rep.PrefixCachedTokens += rr.PrefixCachedTokens
		if rr.Elapsed > rep.Elapsed {
			rep.Elapsed = rr.Elapsed
		}
		if rr.KVPeakUsage > rep.KVPeakUsage {
			rep.KVPeakUsage = rr.KVPeakUsage
		}
		busy += rr.MeanUtilization * rr.Elapsed * float64(rr.GPUs)
	}
	if rep.Elapsed > 0 && rep.GPUs > 0 {
		rep.MeanUtilization = busy / (rep.Elapsed * float64(rep.GPUs))
	}
	rep.BubbleRatio = 1 - rep.MeanUtilization
	rep.Latency = metrics.Digest(records, cfg.SLO)
	res.Report = rep
	return res, nil
}

// checkConservation verifies the disaggregated request lifecycle:
// every trace request was prefilled on exactly one prefill replica,
// handed to at most one decode replica, and each replica completed
// exactly its shard.
func (r *DisaggResult) checkConservation(n int) error {
	prefilled := make([]int, n)
	for i, sh := range r.PrefillShards {
		if len(sh.Reqs) != len(sh.Origin) {
			return fmt.Errorf("fleet: prefill replica %d has %d requests but %d origins", i, len(sh.Reqs), len(sh.Origin))
		}
		if got := r.Prefill[i].Report.Requests; got != len(sh.Reqs) {
			return fmt.Errorf("fleet: prefill replica %d completed %d of %d requests", i, got, len(sh.Reqs))
		}
		for _, o := range sh.Origin {
			if o < 0 || o >= n {
				return fmt.Errorf("fleet: prefill replica %d has origin %d outside trace of %d", i, o, n)
			}
			prefilled[o]++
		}
	}
	for o, c := range prefilled {
		if c != 1 {
			return fmt.Errorf("fleet: request %d prefilled %d times", o, c)
		}
	}
	decoded := make([]int, n)
	for i, sh := range r.DecodeShards {
		if len(sh.Reqs) != len(sh.Origin) {
			return fmt.Errorf("fleet: decode replica %d has %d requests but %d origins", i, len(sh.Reqs), len(sh.Origin))
		}
		if got := r.Decode[i].Report.Requests; got != len(sh.Reqs) {
			return fmt.Errorf("fleet: decode replica %d completed %d of %d requests", i, got, len(sh.Reqs))
		}
		for _, o := range sh.Origin {
			if o < 0 || o >= n {
				return fmt.Errorf("fleet: decode replica %d has origin %d outside trace of %d", i, o, n)
			}
			decoded[o]++
		}
	}
	handed := 0
	for o, c := range decoded {
		if c > 1 {
			return fmt.Errorf("fleet: request %d decoded on %d replicas", o, c)
		}
		handed += c
	}
	if handed != r.Handoffs {
		return fmt.Errorf("fleet: %d hand-offs recorded but %d requests placed on the decode pool", r.Handoffs, handed)
	}
	return nil
}
