package fleet

import (
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
)

// elasticPool owns the replica-lifecycle mechanics an autoscaled pool
// needs: the per-replica state machine (idle / warming / active /
// draining), the provisioned GPU-second spans, and the execution of
// scale decisions. The online elastic router scales its whole fleet
// with one; the disaggregated router scales its decode pool. A nil
// pool means "static": every routable check passes and no accounting
// happens, preserving the pre-policy code paths byte for byte.
type elasticPool struct {
	as        *policy.Autoscaler
	coldStart float64

	// Coordinator-owned lifecycle state.
	state     []int
	openStart []float64
	gpuSec    []float64
	// drainDoneAt[i] is shard-written: the instant replica i's last
	// outstanding request finished while draining (-1 otherwise). The
	// coordinator reaps it at ticks and at assemble.
	drainDoneAt []float64

	stats metrics.AutoscaleStats
}

// newElasticPool provisions n replicas, the autoscaler's initial count
// active and the rest idle. coldStart is the modeled weight-load delay
// every scale-up pays.
func newElasticPool(as *policy.Autoscaler, n int, coldStart float64) *elasticPool {
	ep := &elasticPool{
		as:          as,
		coldStart:   coldStart,
		state:       make([]int, n),
		openStart:   make([]float64, n),
		gpuSec:      make([]float64, n),
		drainDoneAt: make([]float64, n),
	}
	initial := as.InitialReplicas()
	for i := range ep.state {
		ep.drainDoneAt[i] = -1
		if i < initial {
			ep.state[i] = rActive
		}
	}
	ep.stats.PeakReplicas = initial
	return ep
}

// routable reports whether replica i may receive new traffic. A nil
// pool is static: everything is routable.
func (ep *elasticPool) routable(i int) bool {
	return ep == nil || ep.state[i] == rActive
}

// counts returns the active and warming replica totals.
func (ep *elasticPool) counts() (active, warming int) {
	for _, st := range ep.state {
		switch st {
		case rActive:
			active++
		case rWarming:
			warming++
		}
	}
	return
}

// provisioned counts replicas currently costing GPU time.
func (ep *elasticPool) provisioned() int {
	n := 0
	for _, st := range ep.state {
		if st != rIdle {
			n++
		}
	}
	return n
}

// scale executes one autoscaler decision at instant now: +delta
// replicas start warming (idle first, then canceling drains; warm
// schedules the activation event for each), -delta active replicas
// start draining (fewest outstanding requests first, higher index on
// ties; outstanding reports a replica's resident request count).
func (ep *elasticPool) scale(delta int, now float64, outstanding func(int) int, warm func(k int)) {
	for ; delta > 0; delta-- {
		k := -1
		for i := range ep.state {
			if ep.state[i] == rIdle {
				k = i
				break
			}
		}
		if k >= 0 {
			ep.state[k] = rWarming
			ep.openStart[k] = now
			ep.stats.ScaleUps++
			ep.stats.ColdStartSeconds += ep.coldStart
			warm(k)
		} else {
			// No idle replica: cancel a drain instead (the span stays
			// open, no cold start to pay — weights are still loaded).
			for i := range ep.state {
				if ep.state[i] == rDraining {
					k = i
					break
				}
			}
			if k < 0 {
				break
			}
			ep.state[k] = rActive
			ep.drainDoneAt[k] = -1
			ep.stats.ScaleUps++
		}
		if p := ep.provisioned(); p > ep.stats.PeakReplicas {
			ep.stats.PeakReplicas = p
		}
	}
	for ; delta < 0; delta++ {
		k := -1
		for i := len(ep.state) - 1; i >= 0; i-- {
			if ep.state[i] != rActive {
				continue
			}
			if k < 0 || outstanding(i) < outstanding(k) {
				k = i
			}
		}
		if k < 0 {
			break
		}
		ep.stats.ScaleDowns++
		if outstanding(k) == 0 {
			ep.closeSpan(k, now)
		} else {
			ep.state[k] = rDraining
			ep.drainDoneAt[k] = -1
		}
	}
}

// activate completes one scale-up: replica k's weights are loaded and
// it joins routing (a no-op if the warm-up was overtaken, e.g. by an
// error unwinding the run).
func (ep *elasticPool) activate(k int) {
	if ep.state[k] == rWarming {
		ep.state[k] = rActive
	}
}

// noteDrained records — from the owning shard's finish hook — that
// draining replica k ran out of resident work at instant t.
func (ep *elasticPool) noteDrained(k int, t float64) {
	if ep.state[k] == rDraining {
		ep.drainDoneAt[k] = t
	}
}

// closeSpan retires replica k's provisioned stretch at instant end.
func (ep *elasticPool) closeSpan(k int, end float64) {
	if end > ep.openStart[k] {
		ep.gpuSec[k] += end - ep.openStart[k]
	}
	ep.state[k] = rIdle
	ep.drainDoneAt[k] = -1
}

// reapDrains closes the spans of draining replicas whose last resident
// request has finished (recorded by noteDrained).
func (ep *elasticPool) reapDrains() {
	for i := range ep.state {
		if ep.state[i] == rDraining && ep.drainDoneAt[i] >= 0 {
			ep.closeSpan(i, ep.drainDoneAt[i])
		}
	}
}

// finish closes every open span at instant end and returns the final
// accounting, with GPUSeconds summed across replicas at world GPUs
// each.
func (ep *elasticPool) finish(end float64, world int) metrics.AutoscaleStats {
	ep.reapDrains()
	for i := range ep.state {
		if ep.state[i] != rIdle {
			ep.closeSpan(i, end)
		}
		ep.stats.GPUSeconds += ep.gpuSec[i] * float64(world)
	}
	return ep.stats
}

// tickInterval returns the autoscaler's evaluation cadence as a
// simulation duration.
func (ep *elasticPool) tickInterval() sim.Time {
	return sim.Time(ep.as.Config().Interval)
}
