package fleet

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/workload"
)

// fastConfig mirrors the core test configuration: Tiny model on the
// L20 node, completing in milliseconds of wall time per replica.
func fastConfig(world int) core.Config {
	cfg := core.DefaultConfig(hw.L20, model.Tiny, world)
	cfg.ReserveGB = 0
	cfg.MaxPrefillTokens = 512
	cfg.PeakProfileBatch = 128
	return cfg
}

func smallTrace(n int, seed int64) []workload.Request {
	cfg := workload.DefaultConfig(n, seed)
	cfg.MaxInputLen = 255
	cfg.MaxOutputLen = 128
	cfg.InputLogMean = 4.0
	return workload.MustGenerate(cfg)
}

func mustPolicy(t testing.TB, name string, opts Options) Policy {
	t.Helper()
	p, err := New(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{RoundRobin, Random, LeastWork, PredictedCost} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("policy %q not registered (have %v)", want, names)
		}
	}
	if _, err := New("no-such-policy", Options{}); err == nil {
		t.Error("unknown policy accepted")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

// Every policy must dispatch each request exactly once, preserving
// order within shards and renumbering to dense IDs.
func TestDispatchExactlyOnce(t *testing.T) {
	reqs := smallTrace(500, 2)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			p := mustPolicy(t, name, Options{Seed: 7})
			shards, err := Dispatch(p, 4, reqs)
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]int, len(reqs))
			total := 0
			for ri, sh := range shards {
				if len(sh.Reqs) != len(sh.Origin) {
					t.Fatalf("replica %d: %d reqs, %d origins", ri, len(sh.Reqs), len(sh.Origin))
				}
				total += len(sh.Reqs)
				prev := -1
				for i, r := range sh.Reqs {
					if r.ID != i {
						t.Fatalf("replica %d: ID %d at position %d", ri, r.ID, i)
					}
					o := sh.Origin[i]
					if o <= prev {
						t.Fatalf("replica %d: origins out of order (%d after %d)", ri, o, prev)
					}
					prev = o
					seen[o]++
					// The shard request must be the original, only renumbered.
					if r.InputLen != reqs[o].InputLen || r.OutputLen != reqs[o].OutputLen {
						t.Fatalf("replica %d: request %d mutated", ri, o)
					}
				}
			}
			if total != len(reqs) {
				t.Fatalf("dispatched %d of %d", total, len(reqs))
			}
			for idx, c := range seen {
				if c != 1 {
					t.Fatalf("request %d dispatched %d times", idx, c)
				}
			}
		})
	}
}

// A fresh policy with the same seed must shard identically.
func TestDispatchDeterministic(t *testing.T) {
	reqs := smallTrace(300, 5)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, err := Dispatch(mustPolicy(t, name, Options{Seed: 42}), 4, reqs)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Dispatch(mustPolicy(t, name, Options{Seed: 42}), 4, reqs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range a {
				if len(a[i].Origin) != len(b[i].Origin) {
					t.Fatalf("replica %d: %d vs %d requests", i, len(a[i].Origin), len(b[i].Origin))
				}
				for j := range a[i].Origin {
					if a[i].Origin[j] != b[i].Origin[j] {
						t.Fatalf("replica %d position %d: origin %d vs %d", i, j, a[i].Origin[j], b[i].Origin[j])
					}
				}
			}
		})
	}
}

func TestRoundRobinShape(t *testing.T) {
	reqs := smallTrace(10, 1)
	shards, err := Dispatch(mustPolicy(t, RoundRobin, Options{}), 4, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for ri, sh := range shards {
		for i, o := range sh.Origin {
			if o != ri+4*i {
				t.Errorf("replica %d: origin[%d] = %d, want %d", ri, i, o, ri+4*i)
			}
		}
	}
}

// Greedy argmin dispatch bounds the load spread by the largest single
// request cost: when a replica is picked it is the least loaded.
func TestGreedyPoliciesBoundLoadSpread(t *testing.T) {
	reqs := smallTrace(800, 3)
	for _, name := range []string{LeastWork, PredictedCost} {
		t.Run(name, func(t *testing.T) {
			p := mustPolicy(t, name, Options{})
			var maxCost float64
			for _, r := range reqs {
				if c := p.Cost(r); c > maxCost {
					maxCost = c
				}
			}
			shards, err := Dispatch(p, 4, reqs)
			if err != nil {
				t.Fatal(err)
			}
			// Recompute per-shard cost with an identical fresh policy
			// (predicted-cost's classifier is deterministic).
			q := mustPolicy(t, name, Options{})
			lo, hi := -1.0, 0.0
			for _, sh := range shards {
				var c float64
				for _, r := range sh.Reqs {
					c += q.Cost(r)
				}
				if lo < 0 || c < lo {
					lo = c
				}
				if c > hi {
					hi = c
				}
			}
			if hi-lo > maxCost {
				t.Errorf("load spread %.0f exceeds max request cost %.0f", hi-lo, maxCost)
			}
		})
	}
}

func TestDispatchRejectsBadArgs(t *testing.T) {
	reqs := smallTrace(10, 1)
	if _, err := Dispatch(mustPolicy(t, RoundRobin, Options{}), 0, reqs); err == nil {
		t.Error("replicas=0 accepted")
	}
	if _, err := Dispatch(nil, 4, reqs); err == nil {
		t.Error("nil policy accepted")
	}
}

// outOfRange is a broken policy for error-path coverage.
type outOfRange struct{}

func (outOfRange) Name() string                      { return "out-of-range" }
func (outOfRange) Pick(workload.Request, []Load) int { return 99 }
func (outOfRange) Cost(workload.Request) float64     { return 0 }

func TestDispatchRejectsOutOfRangePick(t *testing.T) {
	if _, err := Dispatch(outOfRange{}, 4, smallTrace(10, 1)); err == nil {
		t.Error("out-of-range pick accepted")
	}
}

// Run with 4 concurrent replicas must conserve requests and tokens
// exactly under every policy. This is also the -race exercise: each
// replica simulates on its own goroutine.
func TestRunConservation(t *testing.T) {
	reqs := smallTrace(400, 4)
	wantOut := 0
	for _, r := range reqs {
		wantOut += r.OutputLen
	}
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			res, err := Run(fastConfig(2), 4, mustPolicy(t, name, Options{Seed: 9}), reqs)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.CheckConservation(len(reqs)); err != nil {
				t.Fatal(err)
			}
			rep := res.Report
			if rep.Requests != len(reqs) {
				t.Errorf("requests = %d", rep.Requests)
			}
			if rep.OutputTokens != wantOut {
				t.Errorf("output tokens = %d, want %d", rep.OutputTokens, wantOut)
			}
			if rep.GPUs != 8 {
				t.Errorf("fleet GPUs = %d, want 8", rep.GPUs)
			}
			if !strings.Contains(rep.Scheduler, name) {
				t.Errorf("scheduler %q does not name policy %q", rep.Scheduler, name)
			}
			var maxElapsed float64
			var sumOut int
			for _, rr := range res.Replicas {
				if rr.Report.Elapsed > maxElapsed {
					maxElapsed = rr.Report.Elapsed
				}
				sumOut += rr.Report.OutputTokens
			}
			if rep.Elapsed != maxElapsed {
				t.Errorf("elapsed = %v, want slowest replica %v", rep.Elapsed, maxElapsed)
			}
			if sumOut != wantOut {
				t.Errorf("replica output tokens sum to %d, want %d", sumOut, wantOut)
			}
			if rep.MeanUtilization <= 0 || rep.MeanUtilization > 1 {
				t.Errorf("utilization = %v", rep.MeanUtilization)
			}
		})
	}
}

// The aggregate report must be bit-identical across runs for a fixed
// seed, despite goroutine scheduling.
func TestRunDeterministic(t *testing.T) {
	reqs := smallTrace(200, 6)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a, err := Run(fastConfig(2), 4, mustPolicy(t, name, Options{Seed: 3}), reqs)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(fastConfig(2), 4, mustPolicy(t, name, Options{Seed: 3}), reqs)
			if err != nil {
				t.Fatal(err)
			}
			if a.Report != b.Report {
				t.Errorf("aggregate reports differ:\n%v\n%v", a.Report, b.Report)
			}
		})
	}
}

// A fleet wider than the trace leaves some replicas empty; they must
// contribute zero work without failing the run.
func TestRunEmptyShards(t *testing.T) {
	reqs := smallTrace(2, 8)
	res, err := Run(fastConfig(2), 4, mustPolicy(t, RoundRobin, Options{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != 2 {
		t.Errorf("requests = %d", res.Report.Requests)
	}
	for i := 2; i < 4; i++ {
		if n := res.Replicas[i].Report.Requests; n != 0 {
			t.Errorf("replica %d ran %d requests, want 0", i, n)
		}
	}
}

// Concurrent fleet runs must not interfere: exercises the registry and
// the engines under -race from multiple dispatchers at once.
func TestConcurrentFleetsRace(t *testing.T) {
	reqs := smallTrace(120, 10)
	var wg sync.WaitGroup
	for _, name := range []string{RoundRobin, PredictedCost} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			p, err := New(name, Options{Seed: 1})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := Run(fastConfig(2), 4, p, reqs); err != nil {
				t.Error(err)
			}
		}(name)
	}
	wg.Wait()
}

// A single-replica fleet is just the lone engine: every aggregate field
// must equal the replica's own report (only the scheduler label and the
// record IDs differ).
func TestMergeSingleReplicaEqualsLoneReport(t *testing.T) {
	reqs := smallTrace(150, 12)
	res, err := Run(fastConfig(2), 1, mustPolicy(t, RoundRobin, Options{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	lone := res.Replicas[0].Report
	agg := res.Report
	if agg.Requests != lone.Requests || agg.InputTokens != lone.InputTokens ||
		agg.OutputTokens != lone.OutputTokens || agg.Elapsed != lone.Elapsed ||
		agg.GPUs != lone.GPUs || agg.PhaseSwitches != lone.PhaseSwitches ||
		agg.Recomputes != lone.Recomputes || agg.KVPeakUsage != lone.KVPeakUsage {
		t.Errorf("aggregate differs from lone replica:\nagg:  %+v\nlone: %+v", agg, lone)
	}
	if agg.MeanUtilization != lone.MeanUtilization {
		t.Errorf("utilization %v != lone %v", agg.MeanUtilization, lone.MeanUtilization)
	}
	if agg.Latency != lone.Latency {
		t.Errorf("latency digest differs:\nagg:  %+v\nlone: %+v", agg.Latency, lone.Latency)
	}
}

// Empty shards produce zero-duration replicas (Elapsed 0); the merge
// must not divide by zero anywhere — utilization, throughput and the
// latency digest must stay finite.
func TestMergeZeroDurationReplica(t *testing.T) {
	reqs := smallTrace(2, 8)
	res, err := Run(fastConfig(2), 4, mustPolicy(t, RoundRobin, Options{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 4; i++ {
		if e := res.Replicas[i].Report.Elapsed; e != 0 {
			t.Fatalf("replica %d elapsed = %v, want 0 (empty shard)", i, e)
		}
	}
	rep := res.Report
	if math.IsNaN(rep.MeanUtilization) || rep.MeanUtilization < 0 || rep.MeanUtilization > 1 {
		t.Errorf("utilization = %v", rep.MeanUtilization)
	}
	if math.IsNaN(rep.OutputThroughput()) || math.IsInf(rep.OutputThroughput(), 0) {
		t.Errorf("throughput = %v", rep.OutputThroughput())
	}
	if rep.Latency.Requests != 2 {
		t.Errorf("digest covers %d requests, want 2", rep.Latency.Requests)
	}
	if g := rep.Latency.Goodput(); math.IsNaN(g) {
		t.Errorf("goodput = %v", g)
	}
	if len(res.Records) != 2 {
		t.Errorf("merged %d records, want 2", len(res.Records))
	}
}

// An entirely empty trace: every replica is zero-duration and the
// aggregate must still be finite and conservation-clean.
func TestMergeEmptyTrace(t *testing.T) {
	res, err := Run(fastConfig(2), 3, mustPolicy(t, RoundRobin, Options{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Requests != 0 || rep.Elapsed != 0 {
		t.Errorf("empty fleet report = %+v", rep)
	}
	if math.IsNaN(rep.MeanUtilization) || rep.MeanUtilization != 0 {
		t.Errorf("utilization = %v", rep.MeanUtilization)
	}
	if rep.OutputThroughput() != 0 {
		t.Errorf("throughput = %v", rep.OutputThroughput())
	}
	if g := rep.Latency.Goodput(); g != 1 {
		t.Errorf("empty goodput = %v", g)
	}
}

func TestPredictedCostFallsBackToOracle(t *testing.T) {
	p := mustPolicy(t, PredictedCost, Options{})
	r := workload.Request{InputLen: 100, OutputLen: 50}
	if c := p.Cost(r); c != 150 {
		t.Errorf("oracle-backed cost = %v, want 150", c)
	}
	q := mustPolicy(t, PredictedCost, Options{Predictor: core.ConstPredictor(10)})
	if c := q.Cost(r); c != 110 {
		t.Errorf("const-backed cost = %v, want 110", c)
	}
}
