// Package fleet is the data-parallel serving layer: it shards a request
// trace across N concurrently-running TD-Pipe engine replicas and
// merges their per-replica reports into one fleet-level report. Each
// replica is a full core engine on its own virtual-time substrate, so
// replicas simulate independently and the fleet runs them on real
// goroutines; the merge is deterministic because replicas are combined
// in index order regardless of completion order.
//
// Dispatch is pluggable: a Policy picks a replica per request
// (round-robin, seeded random, least known work, or predicted-cost
// using the paper's output-length classifier), and policies are
// registered by name so binaries can select them via a flag.
package fleet

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Shard is the portion of a trace dispatched to one replica.
type Shard struct {
	// Reqs are the replica's requests, renumbered to the dense IDs the
	// core engine requires.
	Reqs []workload.Request
	// Origin[i] is the index in the dispatched trace of Reqs[i].
	Origin []int
}

// Dispatch shards reqs across replicas under policy p. Every request is
// assigned to exactly one shard; within a shard, requests keep their
// trace order and are renumbered 0..len-1.
func Dispatch(p Policy, replicas int, reqs []workload.Request) ([]Shard, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("fleet: replicas = %d", replicas)
	}
	if p == nil {
		return nil, fmt.Errorf("fleet: nil policy")
	}
	loads := make([]Load, replicas)
	shards := make([]Shard, replicas)
	// warmth[k][g] is the longest prefix of group g assigned to
	// replica k so far — the pre-shard's stand-in for live KV
	// residency (without engines there is nothing to probe).
	warmth := make([]map[int]int, replicas)
	for i, r := range reqs {
		for k := range loads {
			loads[k].WarmTokens = warmTokens(warmth[k], r)
		}
		k := p.Pick(r, loads)
		if k < 0 || k >= replicas {
			return nil, fmt.Errorf("fleet: policy %q picked replica %d of %d", p.Name(), k, replicas)
		}
		loads[k].Requests++
		loads[k].InputTokens += r.InputLen
		loads[k].CostTokens += p.Cost(r)
		if r.PrefixLen > 0 {
			if warmth[k] == nil {
				warmth[k] = make(map[int]int)
			}
			if plen := min(r.PrefixLen, r.InputLen); plen > warmth[k][r.PrefixGroup] {
				warmth[k][r.PrefixGroup] = plen
			}
		}
		r.ID = len(shards[k].Reqs)
		shards[k].Reqs = append(shards[k].Reqs, r)
		shards[k].Origin = append(shards[k].Origin, i)
	}
	return shards, nil
}

// warmTokens is the usable overlap between r's shared prefix and the
// longest same-group prefix recorded in m.
func warmTokens(m map[int]int, r workload.Request) int {
	if r.PrefixLen <= 0 || m == nil {
		return 0
	}
	return min(r.PrefixLen, r.InputLen, m[r.PrefixGroup])
}

// Result is the outcome of a fleet run.
type Result struct {
	// Report is the fleet-level aggregate: token counts summed,
	// Elapsed the slowest replica (replicas run concurrently), and
	// utilization averaged over all GPU-seconds of the fleet makespan.
	// Report.Latency digests the merged per-request records.
	Report metrics.Report
	// Replicas holds per-replica engine results in replica order.
	Replicas []*core.Result
	// Shards records the dispatch; Shards[i].Origin maps replica i's
	// requests back to indices in the dispatched trace.
	Shards []Shard
	// Records holds the merged per-request records, indexed by the
	// request's position in the dispatched trace (record ID == trace
	// index). The merge is deterministic and conservation-checked:
	// every trace position is covered by exactly one replica record.
	Records []metrics.RequestRecord
	// Policy is the dispatch policy name.
	Policy string
	// Steps counts the simulation events processed across the run's
	// engines (router timeline included for online runs). Dividing by
	// wall-clock time yields the simulator's steps/sec rate.
	Steps uint64
}

// Run executes reqs across replicas data-parallel copies of cfg under
// policy p. Each replica runs core.Run on its own goroutine and its own
// simulation; the aggregate is deterministic for a fixed trace, config
// and policy seed.
func Run(cfg core.Config, replicas int, p Policy, reqs []workload.Request) (*Result, error) {
	shards, err := Dispatch(p, replicas, reqs)
	if err != nil {
		return nil, err
	}
	results := make([]*core.Result, replicas)
	errs := make([]error, replicas)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		//det:ignore goroutine offline replicas run disjoint engines with no cross-talk; the WaitGroup join is the only synchronization and results land in slot order
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = core.Run(cfg, shards[i].Reqs)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
	}
	res, err := assemble(cfg, "Fleet", p.Name(), results, shards, len(reqs))
	if err == nil {
		// Offline replicas own their engines, so per-replica step
		// counts sum without double counting.
		for _, r := range results {
			res.Steps += r.Steps
		}
	}
	return res, err
}

// assemble builds the merged fleet result from per-replica outcomes:
// the aggregate report, the conservation check, and the record merge
// with its latency digest. Shared by the offline pre-shard and the
// online router.
func assemble(cfg core.Config, mode, policy string, results []*core.Result, shards []Shard, n int) (*Result, error) {
	res := &Result{
		Report:   mergeReports(cfg, mode, policy, results),
		Replicas: results,
		Shards:   shards,
		Policy:   policy,
	}
	if err := res.CheckConservation(n); err != nil {
		return nil, err
	}
	records, err := mergeRecords(results, shards, n)
	if err != nil {
		return nil, err
	}
	res.Records = records
	res.Report.Latency = metrics.Digest(records, cfg.SLO)
	return res, nil
}

// mergeRecords folds per-replica request records into trace order:
// replica-local record j of replica i lands at trace index
// Shards[i].Origin[j]. It fails if the records do not exactly cover
// the trace (the per-request conservation check).
func mergeRecords(results []*core.Result, shards []Shard, n int) ([]metrics.RequestRecord, error) {
	out := make([]metrics.RequestRecord, n)
	seen := make([]bool, n)
	for i, r := range results {
		if len(r.Records) != len(shards[i].Origin) {
			return nil, fmt.Errorf("fleet: replica %d has %d records for %d requests",
				i, len(r.Records), len(shards[i].Origin))
		}
		for j, rec := range r.Records {
			o := shards[i].Origin[j]
			if o < 0 || o >= n {
				return nil, fmt.Errorf("fleet: replica %d record %d has origin %d outside trace of %d", i, j, o, n)
			}
			if seen[o] {
				return nil, fmt.Errorf("fleet: trace request %d recorded by multiple replicas", o)
			}
			seen[o] = true
			rec.ID = o
			out[o] = rec
		}
	}
	for o, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("fleet: trace request %d has no record", o)
		}
	}
	return out, nil
}

// mergeReports folds per-replica reports into the fleet aggregate.
// mode labels the scheduler ("Fleet" for pre-sharded offline runs,
// "FleetOnline" for the shared-clock router).
func mergeReports(cfg core.Config, mode, policy string, results []*core.Result) metrics.Report {
	rep := metrics.Report{
		Scheduler: fmt.Sprintf("%s(TD-Pipe/%s)x%d", mode, policy, len(results)),
		Node:      cfg.Node.Name,
		Model:     cfg.Spec.Name,
		GPUs:      cfg.World * len(results),
	}
	var busy float64
	for _, r := range results {
		rr := r.Report
		rep.Requests += rr.Requests
		rep.InputTokens += rr.InputTokens
		rep.OutputTokens += rr.OutputTokens
		rep.PhaseSwitches += rr.PhaseSwitches
		rep.Recomputes += rr.Recomputes
		rep.PrefixCachedTokens += rr.PrefixCachedTokens
		if rr.Elapsed > rep.Elapsed {
			rep.Elapsed = rr.Elapsed
		}
		if rr.KVPeakUsage > rep.KVPeakUsage {
			rep.KVPeakUsage = rr.KVPeakUsage
		}
		busy += rr.MeanUtilization * rr.Elapsed * float64(rr.GPUs)
	}
	if len(results) == 1 {
		// A single-replica fleet is the lone engine; copy its
		// utilization rather than round-tripping through the weighted
		// average (which costs one ulp).
		rep.MeanUtilization = results[0].Report.MeanUtilization
	} else if rep.Elapsed > 0 && rep.GPUs > 0 {
		rep.MeanUtilization = busy / (rep.Elapsed * float64(rep.GPUs))
	}
	rep.BubbleRatio = 1 - rep.MeanUtilization
	return rep
}

// CheckConservation verifies that each of n dispatched requests was
// assigned to exactly one replica and completed there: shard origins
// partition 0..n-1 and every replica reports exactly its shard size.
func (r *Result) CheckConservation(n int) error {
	if len(r.Shards) != len(r.Replicas) {
		return fmt.Errorf("fleet: %d shards but %d replica results", len(r.Shards), len(r.Replicas))
	}
	seen := make([]int, n)
	for i, sh := range r.Shards {
		if len(sh.Reqs) != len(sh.Origin) {
			return fmt.Errorf("fleet: replica %d has %d requests but %d origins", i, len(sh.Reqs), len(sh.Origin))
		}
		if got := r.Replicas[i].Report.Requests; got != len(sh.Reqs) {
			return fmt.Errorf("fleet: replica %d completed %d of %d requests", i, got, len(sh.Reqs))
		}
		for _, o := range sh.Origin {
			if o < 0 || o >= n {
				return fmt.Errorf("fleet: replica %d has origin %d outside trace of %d", i, o, n)
			}
			seen[o]++
		}
	}
	for idx, c := range seen {
		if c != 1 {
			return fmt.Errorf("fleet: request %d dispatched %d times", idx, c)
		}
	}
	return nil
}
