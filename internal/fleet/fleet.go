// Package fleet is the data-parallel serving layer: it shards a request
// trace across N concurrently-running TD-Pipe engine replicas and
// merges their per-replica reports into one fleet-level report. Each
// replica is a full core engine on its own virtual-time substrate, so
// replicas simulate independently and the fleet runs them on real
// goroutines; the merge is deterministic because replicas are combined
// in index order regardless of completion order.
//
// Dispatch is pluggable: a Policy picks a replica per request
// (round-robin, seeded random, least known work, or predicted-cost
// using the paper's output-length classifier), and policies are
// registered by name so binaries can select them via a flag.
package fleet

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Shard is the portion of a trace dispatched to one replica.
type Shard struct {
	// Reqs are the replica's requests, renumbered to the dense IDs the
	// core engine requires.
	Reqs []workload.Request
	// Origin[i] is the index in the dispatched trace of Reqs[i].
	Origin []int
}

// Dispatch shards reqs across replicas under policy p. Every request is
// assigned to exactly one shard; within a shard, requests keep their
// trace order and are renumbered 0..len-1.
func Dispatch(p Policy, replicas int, reqs []workload.Request) ([]Shard, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("fleet: replicas = %d", replicas)
	}
	if p == nil {
		return nil, fmt.Errorf("fleet: nil policy")
	}
	loads := make([]Load, replicas)
	shards := make([]Shard, replicas)
	for i, r := range reqs {
		k := p.Pick(r, loads)
		if k < 0 || k >= replicas {
			return nil, fmt.Errorf("fleet: policy %q picked replica %d of %d", p.Name(), k, replicas)
		}
		loads[k].Requests++
		loads[k].InputTokens += r.InputLen
		loads[k].CostTokens += p.Cost(r)
		r.ID = len(shards[k].Reqs)
		shards[k].Reqs = append(shards[k].Reqs, r)
		shards[k].Origin = append(shards[k].Origin, i)
	}
	return shards, nil
}

// Result is the outcome of a fleet run.
type Result struct {
	// Report is the fleet-level aggregate: token counts summed,
	// Elapsed the slowest replica (replicas run concurrently), and
	// utilization averaged over all GPU-seconds of the fleet makespan.
	Report metrics.Report
	// Replicas holds per-replica engine results in replica order.
	Replicas []*core.Result
	// Shards records the dispatch; Shards[i].Origin maps replica i's
	// requests back to indices in the dispatched trace.
	Shards []Shard
	// Policy is the dispatch policy name.
	Policy string
}

// Run executes reqs across replicas data-parallel copies of cfg under
// policy p. Each replica runs core.Run on its own goroutine and its own
// simulation; the aggregate is deterministic for a fixed trace, config
// and policy seed.
func Run(cfg core.Config, replicas int, p Policy, reqs []workload.Request) (*Result, error) {
	shards, err := Dispatch(p, replicas, reqs)
	if err != nil {
		return nil, err
	}
	results := make([]*core.Result, replicas)
	errs := make([]error, replicas)
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = core.Run(cfg, shards[i].Reqs)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
	}
	res := &Result{
		Report:   mergeReports(cfg, p.Name(), results),
		Replicas: results,
		Shards:   shards,
		Policy:   p.Name(),
	}
	if err := res.CheckConservation(len(reqs)); err != nil {
		return nil, err
	}
	return res, nil
}

// mergeReports folds per-replica reports into the fleet aggregate.
func mergeReports(cfg core.Config, policy string, results []*core.Result) metrics.Report {
	rep := metrics.Report{
		Scheduler: fmt.Sprintf("Fleet(TD-Pipe/%s)x%d", policy, len(results)),
		Node:      cfg.Node.Name,
		Model:     cfg.Spec.Name,
		GPUs:      cfg.World * len(results),
	}
	var busy float64
	for _, r := range results {
		rr := r.Report
		rep.Requests += rr.Requests
		rep.InputTokens += rr.InputTokens
		rep.OutputTokens += rr.OutputTokens
		rep.PhaseSwitches += rr.PhaseSwitches
		rep.Recomputes += rr.Recomputes
		if rr.Elapsed > rep.Elapsed {
			rep.Elapsed = rr.Elapsed
		}
		if rr.KVPeakUsage > rep.KVPeakUsage {
			rep.KVPeakUsage = rr.KVPeakUsage
		}
		busy += rr.MeanUtilization * rr.Elapsed * float64(rr.GPUs)
	}
	if rep.Elapsed > 0 && rep.GPUs > 0 {
		rep.MeanUtilization = busy / (rep.Elapsed * float64(rep.GPUs))
	}
	rep.BubbleRatio = 1 - rep.MeanUtilization
	return rep
}

// CheckConservation verifies that each of n dispatched requests was
// assigned to exactly one replica and completed there: shard origins
// partition 0..n-1 and every replica reports exactly its shard size.
func (r *Result) CheckConservation(n int) error {
	if len(r.Shards) != len(r.Replicas) {
		return fmt.Errorf("fleet: %d shards but %d replica results", len(r.Shards), len(r.Replicas))
	}
	seen := make([]int, n)
	for i, sh := range r.Shards {
		if len(sh.Reqs) != len(sh.Origin) {
			return fmt.Errorf("fleet: replica %d has %d requests but %d origins", i, len(sh.Reqs), len(sh.Origin))
		}
		if got := r.Replicas[i].Report.Requests; got != len(sh.Reqs) {
			return fmt.Errorf("fleet: replica %d completed %d of %d requests", i, got, len(sh.Reqs))
		}
		for _, o := range sh.Origin {
			if o < 0 || o >= n {
				return fmt.Errorf("fleet: replica %d has origin %d outside trace of %d", i, o, n)
			}
			seen[o]++
		}
	}
	for idx, c := range seen {
		if c != 1 {
			return fmt.Errorf("fleet: request %d dispatched %d times", idx, c)
		}
	}
	return nil
}
