package fleet

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/workload"
)

// BenchmarkDispatch measures pure dispatch cost per policy over a
// 5,000-request trace and 8 replicas.
func BenchmarkDispatch(b *testing.B) {
	b.ReportAllocs()
	reqs := workload.MustGenerate(workload.DefaultConfig(5000, 1))
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := New(name, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Dispatch(p, 8, reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineFleet measures the online serving path — shared-clock
// co-simulation, per-arrival routing with live load snapshots, and the
// record merge — on an arrival-stamped 5,000-request trace across 4
// replicas, alongside the offline benchmarks so future PRs can track
// online-path cost.
func BenchmarkOnlineFleet(b *testing.B) {
	b.ReportAllocs()
	reqs := workload.StampArrivals(smallTrace(5000, 1), workload.Poisson{Rate: 200}, 7)
	for i := 0; i < b.N; i++ {
		p, err := New(PredictedCost, Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunOnline(fastConfig(2), 4, p, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Report.OutputThroughput(), "tok/s")
			b.ReportMetric(res.Report.Latency.TTFTP99, "ttft-p99-s")
		}
	}
}

// BenchmarkOnlineFleetInactivePolicy is BenchmarkOnlineFleet with an
// attached-but-inactive policy stack: the elastic entry point must
// delegate straight to the plain online router, so this benchmark
// tracking BenchmarkOnlineFleet proves the hot path is unchanged.
func BenchmarkOnlineFleetInactivePolicy(b *testing.B) {
	b.ReportAllocs()
	reqs := workload.StampArrivals(smallTrace(5000, 1), workload.Poisson{Rate: 200}, 7)
	for i := 0; i < b.N; i++ {
		p, err := New(PredictedCost, Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunOnlineElastic(fastConfig(2), 4, p, reqs, &policy.Stack{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Report.OutputThroughput(), "tok/s")
			b.ReportMetric(res.Report.Latency.TTFTP99, "ttft-p99-s")
		}
	}
}

// BenchmarkOnlineFleetParallel measures the conservative-parallel
// online path on a 64-replica fleet, sweeping the worker count. The
// workers=1 leg is the sequential baseline (identical algorithm, no
// goroutines); higher legs shard the fleet across cores while staying
// byte-identical. steps/s reports total simulator events processed
// per wall-clock second.
func BenchmarkOnlineFleetParallel(b *testing.B) {
	reqs := workload.StampArrivals(workload.MustGenerate(workload.DefaultConfig(4000, 1)), workload.Poisson{Rate: 400}, 7)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var steps uint64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				p, err := New(PredictedCost, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := RunOnlineWorkers(fastConfig(2), 64, p, reqs, workers)
				if err != nil {
					b.Fatal(err)
				}
				steps += res.Steps
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(steps)/elapsed, "steps/s")
			}
		})
	}
}

// BenchmarkMilestoneFleet is the ROADMAP item-2 record run: 1000
// replicas serving a 1M-request online trace. It takes tens of
// seconds, so it only runs when TDPIPE_MILESTONE is set:
//
//	TDPIPE_MILESTONE=1 go test ./internal/fleet -bench MilestoneFleet -benchtime 1x
func BenchmarkMilestoneFleet(b *testing.B) {
	if os.Getenv("TDPIPE_MILESTONE") == "" {
		b.Skip("set TDPIPE_MILESTONE=1 to run the 1000-replica / 1M-request record benchmark")
	}
	reqs := workload.StampArrivals(smallTrace(1_000_000, 1), workload.Poisson{Rate: 60000}, 7)
	for i := 0; i < b.N; i++ {
		p, err := New(PredictedCost, Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		res, err := RunOnlineWorkers(fastConfig(2), 1000, p, reqs, WorkersAuto)
		if err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start).Seconds()
		b.ReportMetric(elapsed, "wall-s")
		b.ReportMetric(float64(res.Steps)/elapsed, "steps/s")
	}
}

// BenchmarkRun measures a full fleet run (dispatch + N concurrent
// engine replicas + merge) on the fast test deployment, scaling the
// replica count.
func BenchmarkRun(b *testing.B) {
	b.ReportAllocs()
	reqs := smallTrace(600, 1)
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := New(PredictedCost, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := Run(fastConfig(2), replicas, p, reqs)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Report.OutputThroughput(), "tok/s")
				}
			}
		})
	}
}
