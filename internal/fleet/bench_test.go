package fleet

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// BenchmarkDispatch measures pure dispatch cost per policy over a
// 5,000-request trace and 8 replicas.
func BenchmarkDispatch(b *testing.B) {
	reqs := workload.MustGenerate(workload.DefaultConfig(5000, 1))
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := New(name, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Dispatch(p, 8, reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRun measures a full fleet run (dispatch + N concurrent
// engine replicas + merge) on the fast test deployment, scaling the
// replica count.
func BenchmarkRun(b *testing.B) {
	reqs := smallTrace(600, 1)
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := New(PredictedCost, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := Run(fastConfig(2), replicas, p, reqs)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Report.OutputThroughput(), "tok/s")
				}
			}
		})
	}
}
