package fleet

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// BenchmarkDispatch measures pure dispatch cost per policy over a
// 5,000-request trace and 8 replicas.
func BenchmarkDispatch(b *testing.B) {
	b.ReportAllocs()
	reqs := workload.MustGenerate(workload.DefaultConfig(5000, 1))
	for _, name := range Names() {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := New(name, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Dispatch(p, 8, reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineFleet measures the online serving path — shared-clock
// co-simulation, per-arrival routing with live load snapshots, and the
// record merge — on an arrival-stamped 5,000-request trace across 4
// replicas, alongside the offline benchmarks so future PRs can track
// online-path cost.
func BenchmarkOnlineFleet(b *testing.B) {
	b.ReportAllocs()
	reqs := workload.StampArrivals(smallTrace(5000, 1), workload.Poisson{Rate: 200}, 7)
	for i := 0; i < b.N; i++ {
		p, err := New(PredictedCost, Options{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunOnline(fastConfig(2), 4, p, reqs)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Report.OutputThroughput(), "tok/s")
			b.ReportMetric(res.Report.Latency.TTFTP99, "ttft-p99-s")
		}
	}
}

// BenchmarkRun measures a full fleet run (dispatch + N concurrent
// engine replicas + merge) on the fast test deployment, scaling the
// replica count.
func BenchmarkRun(b *testing.B) {
	b.ReportAllocs()
	reqs := smallTrace(600, 1)
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := New(PredictedCost, Options{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := Run(fastConfig(2), replicas, p, reqs)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Report.OutputThroughput(), "tok/s")
				}
			}
		})
	}
}
