package fleet

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ErrInvalidArrival reports a trace whose arrival stamps cannot be
// scheduled: negative (before simulation start) or NaN. Every online
// router validates the trace up front and returns this error (wrapped
// with the offending trace index) before any engine is built — a bad
// stamp is a workload bug, and silently clamping it to t=0 would
// reorder the trace behind the caller's back.
var ErrInvalidArrival = errors.New("fleet: invalid arrival time")

// validateArrivals rejects traces with negative or NaN arrival stamps.
// Closed-loop traces (all zeros) pass: zero is a valid instant.
func validateArrivals(reqs []workload.Request) error {
	for i := range reqs {
		if at := reqs[i].ArrivalTime; at < 0 || math.IsNaN(at) {
			return fmt.Errorf("%w: request %d arrives at %v; stamp traces with workload arrival processes or shift them to start at t >= 0", ErrInvalidArrival, i, at)
		}
	}
	return nil
}

// RunOnline serves an arrival-stamped trace as an online router: every
// replica engine runs on ONE shared virtual clock, and each request is
// routed at its arrival instant. Unlike the offline pre-shard
// (Dispatch), policies see the arrival order and a live load snapshot —
// the work each replica still has outstanding at that moment, not the
// whole-trace totals — through the same Policy interface and registry.
// The snapshot is maintained incrementally: submissions add to
// per-replica counters and each engine's finish hook subtracts, so
// routing one arrival costs O(replicas) instead of rescanning every
// outstanding request.
//
// The co-simulation is deterministic for a fixed trace, config and
// policy seed, independent of the worker count. Use Run for
// closed-loop (all-at-t=0) traces, where the pre-shard is equivalent
// and replicas can simulate in parallel.
func RunOnline(cfg core.Config, replicas int, p Policy, reqs []workload.Request) (*Result, error) {
	return RunOnlineWorkers(cfg, replicas, p, reqs, 1)
}

// RunOnlineWorkers is RunOnline with an explicit worker budget for the
// conservative parallel fabric: 0 or 1 runs sequentially, WorkersAuto
// picks GOMAXPROCS for fleets of at least AutoWorkerThreshold
// replicas. Reports are byte-identical across worker counts.
func RunOnlineWorkers(cfg core.Config, replicas int, p Policy, reqs []workload.Request, workers int) (*Result, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("fleet: replicas = %d", replicas)
	}
	if p == nil {
		return nil, fmt.Errorf("fleet: nil policy")
	}
	if err := validateArrivals(reqs); err != nil {
		return nil, err
	}
	fab := newFabric(ResolveWorkers(workers, replicas))
	fab.addTier(0, replicas)
	engines := make([]*core.Engine, replicas)
	for i := range engines {
		e, err := core.NewEngine(fab.engineFor(i), cfg)
		if err != nil {
			for _, prev := range engines[:i] {
				prev.Shutdown()
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		if err := e.StartOnline(); err != nil {
			e.Shutdown()
			for _, prev := range engines[:i] {
				prev.Shutdown()
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		engines[i] = e
	}
	router := &onlineRouter{
		policy:      p,
		engines:     engines,
		reqs:        reqs,
		shards:      make([]Shard, replicas),
		outstanding: make([]Load, replicas),
		entries:     make([][]loadEntry, replicas),
		loads:       make([]Load, replicas),
	}
	for i := range engines {
		i := i
		engines[i].SetOnFinish(func(local int) { router.finished(i, local) })
	}
	// One control event per request at its arrival instant, scheduled
	// in (arrival, trace index) order so simultaneous arrivals route in
	// trace order. AtFunc carries the trace index, so arrivals cost no
	// closure.
	for _, idx := range workload.SortByArrival(reqs) {
		fab.ctl.AtFunc(sim.Time(reqs[idx].ArrivalTime), routeEvent, router, idx, 0)
	}
	fab.start()
	defer fab.stopWorkers()
	fab.run()
	if router.err != nil {
		for _, e := range engines {
			e.Shutdown()
		}
		return nil, router.err
	}
	// Finalize every engine even after a failure: Finalize shuts the
	// replica's worker cluster down, and skipping the rest would leak
	// their worker goroutines.
	results := make([]*core.Result, replicas)
	var ferr error
	for i, e := range engines {
		res, err := e.Finalize()
		if err != nil && ferr == nil {
			ferr = fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		results[i] = res
	}
	if ferr != nil {
		return nil, ferr
	}
	res, err := assemble(cfg, "FleetOnline", p.Name(), results, router.shards, len(reqs))
	if err == nil {
		res.Steps = fab.Steps()
	}
	return res, err
}

// loadEntry is one routed request's contribution to its replica's load
// counters, subtracted when the engine reports it finished.
type loadEntry struct {
	inputTokens int
	cost        float64
}

// onlineRouter routes arrivals to replica engines inside the shared
// simulation.
type onlineRouter struct {
	policy  Policy
	engines []*core.Engine
	reqs    []workload.Request
	shards  []Shard
	// outstanding[i] is replica i's live load, maintained
	// incrementally: route adds, the engine's finish hook subtracts.
	outstanding []Load
	// entries[i][local] is the load contribution of replica i's local
	// request local.
	entries [][]loadEntry
	// loads is the per-arrival snapshot buffer handed to Policy.Pick,
	// reused across arrivals.
	loads []Load
	err   error
}

// routeEvent fires at a request's arrival instant (scheduled via
// AtFunc: ctx is the router, a the trace index).
func routeEvent(ctx any, idx, _ int) {
	ro := ctx.(*onlineRouter)
	ro.route(ro.reqs[idx], idx)
}

// route dispatches one request at its arrival instant.
func (ro *onlineRouter) route(r workload.Request, origin int) {
	if ro.err != nil {
		return
	}
	k := ro.policy.Pick(r, ro.snapshot(r))
	if k < 0 || k >= len(ro.engines) {
		ro.err = fmt.Errorf("fleet: policy %q picked replica %d of %d", ro.policy.Name(), k, len(ro.engines))
		return
	}
	cost := ro.policy.Cost(r)
	local, err := ro.engines[k].Submit(r)
	if err != nil {
		ro.err = fmt.Errorf("fleet: replica %d rejected request %d: %w", k, origin, err)
		return
	}
	// Submit only schedules simulation events, so the finish hook
	// cannot fire before the entry lands below.
	ro.entries[k] = append(ro.entries[k], loadEntry{inputTokens: r.InputLen, cost: cost})
	ro.outstanding[k].Requests++
	ro.outstanding[k].InputTokens += r.InputLen
	ro.outstanding[k].CostTokens += cost
	routed := r
	routed.ID = local
	ro.shards[k].Reqs = append(ro.shards[k].Reqs, routed)
	ro.shards[k].Origin = append(ro.shards[k].Origin, origin)
}

// snapshot fills the reusable load view for routing r right now: the
// incrementally maintained outstanding counters plus two live probes of
// each replica's KV pool — how much of r's shared prefix is resident
// (warm blocks included, so affinity survives request completion) and
// the free-KV headroom pool-aware policies rank on.
//
//det:hotpath
func (ro *onlineRouter) snapshot(r workload.Request) []Load {
	for i := range ro.engines {
		l := ro.outstanding[i]
		l.WarmTokens = ro.engines[i].PrefixWarmTokens(r)
		l.FreeKVTokens = ro.engines[i].FreeKVTokens()
		ro.loads[i] = l
	}
	return ro.loads
}

// finished is the engines' completion hook: it retires the request's
// contribution from its replica's counters in O(1).
//
//det:hotpath
func (ro *onlineRouter) finished(replica, local int) {
	en := ro.entries[replica][local]
	ro.outstanding[replica].Requests--
	ro.outstanding[replica].InputTokens -= en.inputTokens
	ro.outstanding[replica].CostTokens -= en.cost
}
