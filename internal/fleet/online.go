package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

// RunOnline serves an arrival-stamped trace as an online router: every
// replica engine runs on ONE shared virtual clock, and each request is
// routed at its arrival instant. Unlike the offline pre-shard
// (Dispatch), policies see the arrival order and a live load snapshot —
// the work each replica still has outstanding at that moment, not the
// whole-trace totals — through the same Policy interface and registry.
//
// The co-simulation is single-threaded (one event queue), so results
// are deterministic for a fixed trace, config and policy seed. Use Run
// for closed-loop (all-at-t=0) traces, where the pre-shard is
// equivalent and replicas can simulate in parallel.
func RunOnline(cfg core.Config, replicas int, p Policy, reqs []workload.Request) (*Result, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("fleet: replicas = %d", replicas)
	}
	if p == nil {
		return nil, fmt.Errorf("fleet: nil policy")
	}
	eng := sim.NewEngine()
	engines := make([]*core.Engine, replicas)
	for i := range engines {
		e, err := core.NewEngine(eng, cfg)
		if err != nil {
			for _, prev := range engines[:i] {
				prev.Shutdown()
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		if err := e.StartOnline(); err != nil {
			e.Shutdown()
			for _, prev := range engines[:i] {
				prev.Shutdown()
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		engines[i] = e
	}
	router := &onlineRouter{
		policy:  p,
		engines: engines,
		shards:  make([]Shard, replicas),
		ledger:  make([][]ledgerEntry, replicas),
	}
	// One event per request at its arrival instant, scheduled in
	// (arrival, trace index) order so simultaneous arrivals route in
	// trace order.
	for _, idx := range workload.SortByArrival(reqs) {
		idx := idx
		r := reqs[idx]
		at := sim.Time(r.ArrivalTime)
		if at < 0 {
			at = 0
		}
		eng.At(at, func() { router.route(r, idx) })
	}
	eng.Run()
	if router.err != nil {
		for _, e := range engines {
			e.Shutdown()
		}
		return nil, router.err
	}
	// Finalize every engine even after a failure: Finalize shuts the
	// replica's worker cluster down, and skipping the rest would leak
	// their worker goroutines.
	results := make([]*core.Result, replicas)
	var ferr error
	for i, e := range engines {
		res, err := e.Finalize()
		if err != nil && ferr == nil {
			ferr = fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		results[i] = res
	}
	if ferr != nil {
		return nil, ferr
	}
	return assemble(cfg, "FleetOnline", p.Name(), results, router.shards, len(reqs))
}

// ledgerEntry tracks one routed request until it finishes, so load
// snapshots count only outstanding work.
type ledgerEntry struct {
	// local is the request's dense ID inside its replica.
	local int
	// inputTokens and cost are the entry's contribution to the load
	// snapshot while outstanding.
	inputTokens int
	cost        float64
}

// onlineRouter routes arrivals to replica engines inside the shared
// simulation.
type onlineRouter struct {
	policy  Policy
	engines []*core.Engine
	shards  []Shard
	ledger  [][]ledgerEntry
	err     error
}

// route dispatches one request at its arrival instant.
func (ro *onlineRouter) route(r workload.Request, origin int) {
	if ro.err != nil {
		return
	}
	k := ro.policy.Pick(r, ro.loads(r))
	if k < 0 || k >= len(ro.engines) {
		ro.err = fmt.Errorf("fleet: policy %q picked replica %d of %d", ro.policy.Name(), k, len(ro.engines))
		return
	}
	cost := ro.policy.Cost(r)
	local := ro.engines[k].Submit(r)
	ro.ledger[k] = append(ro.ledger[k], ledgerEntry{local: local, inputTokens: r.InputLen, cost: cost})
	routed := r
	routed.ID = local
	ro.shards[k].Reqs = append(ro.shards[k].Reqs, routed)
	ro.shards[k].Origin = append(ro.shards[k].Origin, origin)
}

// loads snapshots each replica's state for routing r right now: the
// outstanding work (requests routed to it that have not finished,
// their input tokens, the policy's own cost estimates) plus how much
// of r's shared prefix is resident in the replica's KV pool — warm
// blocks included, so affinity survives request completion. Finished
// entries are dropped from the ledger as they are discovered, so the
// scan stays amortized-linear.
func (ro *onlineRouter) loads(r workload.Request) []Load {
	loads := make([]Load, len(ro.engines))
	for i := range ro.engines {
		live := ro.ledger[i][:0]
		var l Load
		for _, entry := range ro.ledger[i] {
			if ro.engines[i].RequestFinished(entry.local) {
				continue
			}
			live = append(live, entry)
			l.Requests++
			l.InputTokens += entry.inputTokens
			l.CostTokens += entry.cost
		}
		ro.ledger[i] = live
		l.WarmTokens = ro.engines[i].PrefixWarmTokens(r)
		loads[i] = l
	}
	return loads
}
