package fleet

import (
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
)

// Conservative parallel co-simulation substrate ("fabric") shared by
// every fleet router. The fleet is split across shards, each a private
// sim.Engine hosting a group of replica engines, coordinated by a
// control timeline (ctl) that carries every router intervention:
// arrival routing, crash/restore injection, KV-transfer completions,
// checkpoint resumes and queue drains. The run alternates epochs:
//
//  1. t = next control event. Shards advance in parallel through all
//     replica events strictly before t (RunBefore) — safe because no
//     control intervention can land inside the window: arrivals,
//     crashes and restores are scheduled up front, and cross-shard
//     messages (KV hand-offs, checkpoint reloads) carry the link's
//     minimum transfer latency as lookahead.
//  2. Hand-off notifications buffered by the shard workers are drained
//     in canonical (time, replica, local-id) order and become
//     timestamped control events (transfer completions).
//  3. Control events at instant t execute on the coordinator with
//     every shard clock parked exactly at t, so routing policies see
//     the same incremental load snapshots as a single shared heap.
//
// The same loop runs inline when workers == 1 — the sequential path is
// the one-worker instance of the identical algorithm, which is what
// makes parallel reports byte-identical to sequential ones: replica
// event streams never depend on shard layout (engines share no state),
// and every cross-replica decision happens on the coordinator in a
// canonical order. The determinism suite (parallel_test.go) enforces
// this for online, disagg, prefix-affinity and fault runs.
//
// Tie semantics: control events at instant t execute before replica
// events at t. For arrival routing this matches the shared-heap
// ordering exactly (arrivals were scheduled first and won ties by
// sequence number); for router events scheduled mid-run the shared
// heap interleaved ties by scheduling order, so runs can differ from
// the pre-fabric router only when a replica event collides with a
// transfer completion at the exact same float64 instant.

// WorkersAuto requests automatic worker selection: GOMAXPROCS when the
// fleet has at least AutoWorkerThreshold replicas, sequential below
// that (small fleets lose more to epoch barriers than they gain).
const WorkersAuto = -1

// AutoWorkerThreshold is the fleet size at which WorkersAuto switches
// from sequential to GOMAXPROCS workers.
const AutoWorkerThreshold = 16

// ResolveWorkers maps a worker request (0 or 1 = sequential, negative
// = auto) to the concrete worker count for a fleet of the given size.
func ResolveWorkers(workers, replicas int) int {
	if workers < 0 {
		if replicas < AutoWorkerThreshold {
			return 1
		}
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > replicas {
		workers = replicas
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// handoffNote is one cross-shard notification buffered by a shard
// worker: replica's engine exported a finished prefix (core.Handoff)
// while the shard advanced through its epoch window. The coordinator
// drains notes at the barrier in (at, replica, local) order.
type handoffNote struct {
	at      sim.Time
	replica int
	h       core.Handoff
}

// fabShard is one shard: a private simulation engine and the replicas
// living on it. Between barriers exactly one goroutine touches the
// shard (its worker while advancing, the coordinator otherwise).
type fabShard struct {
	eng  *sim.Engine
	tier int
	// notes buffers hand-off notifications in the shard's event order.
	notes []handoffNote
	// sawFinish is set by finish hooks during an advance; the
	// coordinator polls and clears it while lockstepping the decode
	// tier through instants where queued hand-offs may become
	// placeable.
	sawFinish bool
}

// advance modes.
const (
	advBefore = iota // RunBefore: strictly before the horizon
	advUntil         // RunUntil + park the clock at the horizon
)

func (sh *fabShard) advance(mode int, horizon sim.Time) {
	if mode == advBefore {
		sh.eng.RunBefore(horizon)
		return
	}
	sh.eng.RunUntil(horizon)
	if sh.eng.Now() < horizon {
		sh.eng.AdvanceTo(horizon)
	}
}

// needs reports whether the shard has events inside an advance window.
func (sh *fabShard) needs(mode int, horizon sim.Time) bool {
	nt := sh.eng.NextEventTime()
	if mode == advBefore {
		return nt < horizon
	}
	return nt <= horizon
}

// fabric is the coordinator: the control timeline, the shard set and
// the worker pool that advances shards between control instants.
type fabric struct {
	ctl     *sim.Engine
	shards  []*fabShard
	tiers   [2][]*fabShard
	byRep   []*fabShard
	workers int

	cmds []chan fabCmd
	done chan struct{}

	notes []handoffNote // canonical-drain scratch

	// onNote consumes one hand-off notification at the barrier
	// (disagg: accounts the migration and schedules the transfer
	// completion on ctl). Nil for single-tier fleets.
	onNote func(replica int, h core.Handoff)
	// pendingWork reports whether hand-offs are queued for decode-side
	// headroom, which forces the decode tier to advance in lockstep so
	// placement retries happen at the finish instants that free KV.
	pendingWork func() bool
	// drainAt retries queued placements; every decode-tier clock is
	// parked at the drain instant when it runs.
	drainAt func()
}

type fabCmd struct {
	tier    int
	mode    int
	horizon sim.Time
}

// newFabric builds a fabric with the given worker budget. Tiers are
// added before any engines are constructed.
func newFabric(workers int) *fabric {
	if workers < 1 {
		workers = 1
	}
	return &fabric{ctl: sim.NewEngine(), workers: workers}
}

// addTier creates the shards for one tier and assigns the next
// `replicas` global replica indices to them contiguously. Replica
// event streams are independent of co-tenancy, so any grouping yields
// identical per-replica results; contiguous blocks keep cache locality.
func (f *fabric) addTier(tier, replicas int) {
	n := f.workers
	if n > replicas {
		n = replicas
	}
	if n < 1 {
		n = 1
	}
	shards := make([]*fabShard, n)
	for s := range shards {
		shards[s] = &fabShard{eng: sim.NewEngine(), tier: tier}
	}
	f.tiers[tier] = shards
	f.shards = append(f.shards, shards...)
	for i := 0; i < replicas; i++ {
		f.byRep = append(f.byRep, shards[i*n/replicas])
	}
}

// engineFor returns the simulation engine hosting a global replica.
func (f *fabric) engineFor(replica int) *sim.Engine { return f.byRep[replica].eng }

// note buffers a hand-off notification from a replica's engine hook.
// Runs on the owning shard's goroutine during an advance.
func (f *fabric) note(replica int, h core.Handoff) {
	sh := f.byRep[replica]
	sh.notes = append(sh.notes, handoffNote{at: h.At, replica: replica, h: h})
}

// markFinish records that a replica finished a request during the
// current advance. Runs on the owning shard's goroutine.
func (f *fabric) markFinish(replica int) { f.byRep[replica].sawFinish = true }

// Steps sums the events processed across the control timeline and all
// shard engines.
func (f *fabric) Steps() uint64 {
	total := f.ctl.Steps()
	for _, sh := range f.shards {
		total += sh.eng.Steps()
	}
	return total
}

// start launches the worker pool (no-op for sequential runs).
func (f *fabric) start() {
	if f.workers <= 1 {
		return
	}
	f.done = make(chan struct{}, f.workers)
	f.cmds = make([]chan fabCmd, f.workers)
	for w := range f.cmds {
		f.cmds[w] = make(chan fabCmd, 1)
		go f.worker(w, f.cmds[w])
	}
}

// stopWorkers shuts the pool down; safe to call twice.
func (f *fabric) stopWorkers() {
	for _, c := range f.cmds {
		close(c)
	}
	f.cmds = nil
}

func (f *fabric) worker(w int, cmds <-chan fabCmd) {
	for cmd := range cmds {
		shards := f.tiers[cmd.tier]
		for s := w; s < len(shards); s += f.workers {
			shards[s].advance(cmd.mode, cmd.horizon)
		}
		f.done <- struct{}{}
	}
}

// advanceTier moves every shard of a tier through the window, fanning
// the work out to the pool when more than one shard has events there.
// The channel round-trips form the happens-before edges that hand shard
// ownership between the coordinator and the workers.
func (f *fabric) advanceTier(tier int, horizon sim.Time, mode int) {
	shards := f.tiers[tier]
	if f.cmds == nil {
		for _, sh := range shards {
			sh.advance(mode, horizon)
		}
		return
	}
	needy, last := 0, -1
	for s, sh := range shards {
		if sh.needs(mode, horizon) {
			needy++
			last = s
		}
	}
	switch needy {
	case 0:
		if mode == advUntil {
			f.syncTier(tier, horizon)
		}
		return
	case 1:
		// One busy shard: advancing inline beats waking a worker.
		shards[last].advance(mode, horizon)
		if mode == advUntil {
			f.syncTier(tier, horizon)
		}
		return
	}
	woken := 0
	cmd := fabCmd{tier: tier, mode: mode, horizon: horizon}
	for w := 0; w < f.workers; w++ {
		wake := false
		for s := w; s < len(shards); s += f.workers {
			if shards[s].needs(mode, horizon) {
				wake = true
				break
			}
		}
		if wake {
			f.cmds[w] <- cmd
			woken++
		}
	}
	for i := 0; i < woken; i++ {
		<-f.done
	}
	if mode == advUntil {
		f.syncTier(tier, horizon)
	}
}

// syncTier parks every shard clock of a tier exactly at t. Only legal
// once the tier has advanced through all events before t.
func (f *fabric) syncTier(tier int, t sim.Time) {
	for _, sh := range f.tiers[tier] {
		if sh.eng.Now() < t {
			sh.eng.AdvanceTo(t)
		}
	}
}

// syncAll parks every shard that has not outrun t at t, so control
// events executing at t stamp submissions with the coordinator clock.
// Tier-0 shards may legitimately sit past t after a horizon refresh
// (a transfer completed earlier than the pre-drain horizon); control
// events at such refreshed instants only touch the later tier.
func (f *fabric) syncAll(t sim.Time) {
	for _, sh := range f.shards {
		if sh.eng.Now() < t {
			sh.eng.AdvanceTo(t)
		}
	}
}

// drainNotes merges the hand-off notifications buffered by the tier-0
// shards into canonical (time, replica, local) order and feeds them to
// the router, which schedules their transfer completions on ctl.
func (f *fabric) drainNotes() {
	f.notes = f.notes[:0]
	for _, sh := range f.tiers[0] {
		f.notes = append(f.notes, sh.notes...)
		sh.notes = sh.notes[:0]
	}
	if len(f.notes) == 0 {
		return
	}
	sort.Slice(f.notes, func(i, j int) bool {
		a, b := &f.notes[i], &f.notes[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.replica != b.replica {
			return a.replica < b.replica
		}
		return a.h.Local < b.h.Local
	})
	for i := range f.notes {
		f.onNote(f.notes[i].replica, f.notes[i].h)
	}
}

// advanceLater advances the second tier to the (possibly refreshed)
// horizon t. While hand-offs are queued for decode headroom the tier
// moves in lockstep — one instant at a time, retrying placement at
// every instant where a finish freed KV — because a placement there
// changes the very next decode events. With nothing queued the whole
// window is safe in one parallel sweep.
func (f *fabric) advanceLater(t sim.Time) {
	for f.pendingWork() {
		h := sim.Infinity
		for _, sh := range f.tiers[1] {
			if nt := sh.eng.NextEventTime(); nt < h {
				h = nt
			}
		}
		if h >= t {
			return
		}
		for _, sh := range f.tiers[1] {
			sh.sawFinish = false
		}
		f.advanceTier(1, h, advUntil)
		finished := false
		for _, sh := range f.tiers[1] {
			if sh.sawFinish {
				finished = true
				break
			}
		}
		if finished {
			f.drainAt()
		}
	}
	f.advanceTier(1, t, advBefore)
}

// run drives the epoch loop to completion: every shard drained and no
// control events left.
func (f *fabric) run() {
	two := f.tiers[1] != nil
	for {
		t := f.ctl.NextEventTime()
		f.advanceTier(0, t, advBefore)
		if two {
			f.drainNotes()
			// Drained hand-offs may have scheduled transfer
			// completions before the pre-drain horizon; the later tier
			// must not advance past them.
			t = f.ctl.NextEventTime()
			f.advanceLater(t)
		}
		if t == sim.Infinity {
			return
		}
		f.syncAll(t)
		f.ctl.RunUntil(t)
	}
}
