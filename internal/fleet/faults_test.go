package fleet

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/workload"
)

// faultTrace is an arrival-stamped trace so crashes land mid-stream.
func faultTrace(n int, seed int64) []workload.Request {
	return workload.StampArrivals(smallTrace(n, seed), workload.Poisson{Rate: 2000}, seed+1)
}

// checkFaultConservation asserts the fault-run invariant from the
// outside: every trace request either finished (exactly one finished
// record, counted in Report.Requests) or was dropped with accounting in
// Report.Faults.Dropped — nothing lost silently.
func checkFaultConservation(t *testing.T, res *Result, n int) {
	t.Helper()
	if len(res.Records) != n {
		t.Fatalf("%d records for %d requests", len(res.Records), n)
	}
	finished := 0
	for _, rec := range res.Records {
		if rec.Finished() {
			finished++
		}
	}
	if finished != res.Report.Requests {
		t.Fatalf("%d finished records, report says %d", finished, res.Report.Requests)
	}
	if got := res.Report.Requests + res.Report.Faults.Dropped; got != n {
		t.Fatalf("finished %d + dropped %d = %d, want %d",
			res.Report.Requests, res.Report.Faults.Dropped, got, n)
	}
}

// An inactive plan must take the exact RunOnline code path: reports and
// records bit-identical.
func TestRunOnlineFaultsInactivePlan(t *testing.T) {
	reqs := faultTrace(150, 3)
	cfg := fastConfig(2)
	p := mustPolicy(t, LeastWork, Options{})
	base, err := RunOnline(cfg, 3, p, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []*faults.Plan{nil, {Config: faults.Config{Seed: 9}, Replicas: 3}} {
		got, err := RunOnlineFaults(cfg, 3, mustPolicy(t, LeastWork, Options{}), reqs, plan)
		if err != nil {
			t.Fatal(err)
		}
		if got.Report != base.Report {
			t.Errorf("plan %v changed the report:\n%+v\n%+v", plan, got.Report, base.Report)
		}
		if !reflect.DeepEqual(got.Records, base.Records) {
			t.Errorf("plan %v changed the records", plan)
		}
	}
}

// The conservation property, across several seeds and aggressive MTBFs:
// crashes abort work mid-flight, recovery re-dispatches it, and every
// request ends exactly-once-finished xor dropped-with-reason. Run with
// -race in CI.
func TestRunOnlineFaultsConservation(t *testing.T) {
	cfg := fastConfig(2)
	const replicas = 3
	reqs := faultTrace(120, 7)
	base, err := RunOnline(cfg, replicas, mustPolicy(t, LeastWork, Options{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	horizon := base.Report.Elapsed
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		for _, ckpt := range []float64{0, horizon / 6} {
			fc := faults.Config{
				Seed:               seed,
				Horizon:            horizon,
				MTBF:               horizon / 2,
				RestartDelay:       horizon / 10,
				CheckpointInterval: ckpt,
			}
			plan, err := faults.NewPlan(fc, replicas, fc.RestartDelay)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunOnlineFaults(cfg, replicas, mustPolicy(t, LeastWork, Options{}), reqs, plan)
			if err != nil {
				t.Fatalf("seed %d ckpt %v: %v", seed, ckpt, err)
			}
			checkFaultConservation(t, res, len(reqs))
			f := res.Report.Faults
			if f.Crashes != len(plan.Crashes) {
				t.Errorf("seed %d: executed %d of %d planned crashes", seed, f.Crashes, len(plan.Crashes))
			}
			// Every abort is answered: recompute, checkpoint resume, or
			// a drop (end-of-run queue drops can add to the left side).
			if f.RecoveredRecompute+f.RecoveredCheckpoint+f.Dropped < f.AbortedRequests {
				t.Errorf("seed %d: %d aborts but only %d recoveries + %d drops",
					seed, f.AbortedRequests, f.RecoveredRecompute+f.RecoveredCheckpoint, f.Dropped)
			}
			if ckpt > 0 && len(plan.Crashes) > 0 && f.Checkpoints == 0 {
				t.Errorf("seed %d: checkpoint cadence %v took no checkpoints", seed, ckpt)
			}
		}
	}
}

// Fault runs are deterministic: the same seed, trace and config must
// produce byte-identical reports and records run-to-run.
func TestRunOnlineFaultsDeterministic(t *testing.T) {
	cfg := fastConfig(2)
	const replicas = 3
	reqs := faultTrace(100, 11)
	fc := faults.Config{
		Seed: 5, Horizon: 0.2, MTBF: 0.05, RestartDelay: 0.02,
		Stragglers: 1, StragglerFactor: 1.3,
		CheckpointInterval: 0.02,
	}
	plan, err := faults.NewPlan(fc, replicas, fc.RestartDelay)
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	for run := 0; run < 3; run++ {
		res, err := RunOnlineFaults(cfg, replicas, mustPolicy(t, LeastWork, Options{}), reqs, plan)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(struct {
			Report  any
			Records any
		}{res.Report, res.Records})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && string(b) != string(prev) {
			t.Fatalf("run %d differs from run %d:\n%s\n%s", run, run-1, b, prev)
		}
		prev = b
	}
}

// Stragglers alone: no crashes, so nothing is dropped and everything
// finishes — just slower than the nominal fleet.
func TestRunOnlineFaultsStragglers(t *testing.T) {
	cfg := fastConfig(2)
	const replicas = 3
	reqs := faultTrace(100, 13)
	base, err := RunOnline(cfg, replicas, mustPolicy(t, LeastWork, Options{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.NewPlan(faults.Config{Seed: 2, Stragglers: 1, StragglerFactor: 2}, replicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunOnlineFaults(cfg, replicas, mustPolicy(t, LeastWork, Options{}), reqs, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != len(reqs) || res.Report.Faults.Dropped != 0 {
		t.Fatalf("straggler run lost requests: %+v", res.Report.Faults)
	}
	if res.Report.Elapsed <= base.Report.Elapsed {
		t.Errorf("a 2x straggler did not stretch the fleet makespan: %v vs %v",
			res.Report.Elapsed, base.Report.Elapsed)
	}
}

// An inactive plan on the disaggregated fleet takes the exact RunDisagg
// code path.
func TestRunDisaggFaultsInactivePlan(t *testing.T) {
	cfg := fastConfig(2)
	dc := DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2}
	reqs := faultTrace(120, 17)
	base, err := RunDisagg(cfg, dc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunDisaggFaults(cfg, dc, reqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Report != base.Report {
		t.Errorf("nil plan changed the report:\n%+v\n%+v", got.Report, base.Report)
	}
	if !reflect.DeepEqual(got.Records, base.Records) {
		t.Error("nil plan changed the records")
	}
}

// Crash a decode replica while KV hand-offs are in flight: requests
// mid-hand-off must survive (they are resident nowhere during the
// transfer), decode-resident requests are aborted and recovered, and
// conservation holds across the whole episode. The plan is
// hand-crafted so the crash instant is guaranteed to sit inside the
// hand-off stream.
func TestRunDisaggFaultsCrashMidHandoff(t *testing.T) {
	cfg := fastConfig(2)
	dc := DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2}
	reqs := faultTrace(120, 19)
	base, err := RunDisagg(cfg, dc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if base.Handoffs == 0 {
		t.Fatal("trace produced no hand-offs")
	}
	mid := base.Report.Elapsed / 3
	for _, victim := range []int{1, 2} { // decode replicas (pool offset 1)
		plan := &faults.Plan{
			Config:   faults.Config{MaxRetries: 5},
			Replicas: dc.PrefillReplicas + dc.DecodeReplicas,
			Downtime: mid / 2,
			Crashes: []faults.Crash{
				{Replica: victim, At: mid, RestartAt: mid + mid/2},
			},
		}
		res, err := RunDisaggFaults(cfg, dc, reqs, plan)
		if err != nil {
			t.Fatalf("victim %d: %v", victim, err)
		}
		if len(res.Records) != len(reqs) {
			t.Fatalf("victim %d: %d records for %d requests", victim, len(res.Records), len(reqs))
		}
		finished := 0
		for _, rec := range res.Records {
			if rec.Finished() {
				finished++
			}
		}
		if finished != res.Report.Requests {
			t.Fatalf("victim %d: %d finished records, report says %d", victim, finished, res.Report.Requests)
		}
		if got := res.Report.Requests + res.Report.Faults.Dropped; got != len(reqs) {
			t.Fatalf("victim %d: finished %d + dropped %d != %d",
				victim, res.Report.Requests, res.Report.Faults.Dropped, len(reqs))
		}
		if res.Report.Faults.Crashes != 1 {
			t.Fatalf("victim %d: %d crashes executed", victim, res.Report.Faults.Crashes)
		}
		if res.Report.Faults.AbortedRequests == 0 {
			t.Errorf("victim %d: crash at %v aborted nothing (crash later?)", victim, mid)
		}
	}
}

// Disagg fault runs are deterministic run-to-run, including KV-link
// degradation windows on the hand-off path.
func TestRunDisaggFaultsDeterministic(t *testing.T) {
	cfg := fastConfig(2)
	dc := DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2}
	reqs := faultTrace(100, 23)
	base, err := RunDisagg(cfg, dc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	fc := faults.Config{
		Seed:              3,
		Horizon:           base.Report.Elapsed,
		MTBF:              base.Report.Elapsed / 2,
		RestartDelay:      base.Report.Elapsed / 10,
		LinkDegradeFrac:   0.3,
		LinkDegradeFactor: 4,
		LinkPartitionFrac: 0.2,
	}
	plan, err := faults.NewPlan(fc, dc.PrefillReplicas+dc.DecodeReplicas, fc.RestartDelay)
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	for run := 0; run < 3; run++ {
		res, err := RunDisaggFaults(cfg, dc, reqs, plan)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(struct {
			Report  any
			Records any
		}{res.Report, res.Records})
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && string(b) != string(prev) {
			t.Fatalf("run %d differs", run)
		}
		prev = b
	}
}
