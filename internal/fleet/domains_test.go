package fleet

import (
	"encoding/json"
	"testing"

	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/policy"
)

// marshalRun serializes the comparable surface of a fleet result for
// byte-identity assertions.
func marshalRun(t *testing.T, report, records any) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Report  any
		Records any
	}{report, records})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// A correlated power-outage plan on the online fault router: whole
// racks crash together, recovery re-dispatches the aborted work, and
// the exactly-once invariant holds — byte-identically across worker
// counts.
func TestRunOnlineFaultsDomainPower(t *testing.T) {
	cfg := fastConfig(2)
	const replicas = 4
	reqs := faultTrace(120, 37)
	base, err := RunOnline(cfg, replicas, mustPolicy(t, LeastWork, Options{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	horizon := base.Report.Elapsed
	fc := faults.Config{
		Seed:         11,
		Horizon:      horizon,
		RestartDelay: horizon / 10,
		Topology:     hw.Topology{Racks: 2},
		DomainMTBF:   horizon / 3,
		DomainKind:   faults.DomainPower,
	}
	plan, err := faults.NewPlan(fc, replicas, fc.RestartDelay)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Domains) == 0 {
		t.Fatal("seed drew no domain outages; pick another seed")
	}
	var prev []byte
	for _, workers := range []int{1, 4} {
		res, err := RunOnlineFaultsWorkers(cfg, replicas, mustPolicy(t, LeastWork, Options{}), reqs, plan, workers)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		checkFaultConservation(t, res, len(reqs))
		f := res.Report.Faults
		if f.DomainOutages != len(plan.Domains) {
			t.Errorf("workers %d: report carries %d domain outages, plan has %d",
				workers, f.DomainOutages, len(plan.Domains))
		}
		if f.Crashes != len(plan.Crashes) {
			t.Errorf("workers %d: executed %d of %d materialized crashes",
				workers, f.Crashes, len(plan.Crashes))
		}
		b := marshalRun(t, res.Report, res.Records)
		if prev != nil && string(b) != string(prev) {
			t.Fatalf("workers %d diverged from workers 1", workers)
		}
		prev = b
	}
}

// A network domain outage on the disaggregated fleet: members survive
// (nothing crashes, nothing drops) but their KV links partition, so
// hand-offs stall until the outage lifts and the makespan stretches.
func TestRunDisaggFaultsDomainNetwork(t *testing.T) {
	cfg := fastConfig(2)
	dc := DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2}
	reqs := faultTrace(120, 41)
	base, err := RunDisagg(cfg, dc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if base.Handoffs == 0 {
		t.Fatal("trace produced no hand-offs")
	}
	horizon := base.Report.Elapsed
	fc := faults.Config{
		Seed:       7,
		Horizon:    horizon,
		Topology:   hw.Topology{Racks: 2},
		DomainMTBF: horizon / 3,
		DomainKind: faults.DomainNetwork,
	}
	plan, err := faults.NewPlan(fc, dc.PrefillReplicas+dc.DecodeReplicas, horizon/4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Domains) == 0 {
		t.Fatal("seed drew no domain outages; pick another seed")
	}
	var prev []byte
	for run := 0; run < 2; run++ {
		res, err := RunDisaggFaults(cfg, dc, reqs, plan)
		if err != nil {
			t.Fatal(err)
		}
		f := res.Report.Faults
		if f.Crashes != 0 || f.Dropped != 0 {
			t.Fatalf("network outages crashed %d / dropped %d; they must only partition links", f.Crashes, f.Dropped)
		}
		if res.Report.Requests != len(reqs) {
			t.Fatalf("finished %d of %d under a pure network outage", res.Report.Requests, len(reqs))
		}
		if f.DomainOutages != len(plan.Domains) {
			t.Errorf("report carries %d domain outages, plan has %d", f.DomainOutages, len(plan.Domains))
		}
		if res.Report.Elapsed < base.Report.Elapsed {
			t.Errorf("partitioned run finished earlier than the clean run: %v < %v",
				res.Report.Elapsed, base.Report.Elapsed)
		}
		b := marshalRun(t, res.Report, res.Records)
		if prev != nil && string(b) != string(prev) {
			t.Fatal("network-domain run not deterministic")
		}
		prev = b
	}
}

// A breaker-carrying stack without any failure source must not perturb
// the disaggregated run: no breaker ever opens, so routing, records
// and the report match the stackless run (Admission stays zero).
func TestRunDisaggBreakerFaultFree(t *testing.T) {
	cfg := fastConfig(2)
	reqs := faultTrace(120, 43)
	base, err := RunDisagg(cfg, DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	dc := DisaggConfig{
		PrefillReplicas: 1, DecodeReplicas: 2,
		Stack: &policy.Stack{Breaker: &policy.BreakerConfig{}},
	}
	res, err := RunDisagg(cfg, dc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != base.Report {
		t.Errorf("idle breakers changed the report:\n%+v\n%+v", res.Report, base.Report)
	}
}

// Repeated crashes of one decode replica open its breaker: routing
// stops offering it hand-offs (skips accounted), the trip lands in the
// admission stats, and conservation still holds.
func TestRunDisaggBreakerTripsOnCrashes(t *testing.T) {
	cfg := fastConfig(2)
	dc := DisaggConfig{
		PrefillReplicas: 1, DecodeReplicas: 2,
		Stack: &policy.Stack{Breaker: &policy.BreakerConfig{
			FailureThreshold: 2,
			Cooldown:         1000, // virtual seconds: stays open for the whole run
		}},
	}
	reqs := faultTrace(120, 19)
	base, err := RunDisagg(cfg, DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2}, reqs)
	if err != nil {
		t.Fatal(err)
	}
	e := base.Report.Elapsed
	victim := 2 // decode replica 1 (pool offset 1)
	plan := &faults.Plan{
		Config:   faults.Config{MaxRetries: 5},
		Replicas: 3,
		Downtime: e / 20,
		Crashes: []faults.Crash{
			{Replica: victim, At: e / 4, RestartAt: e/4 + e/20},
			{Replica: victim, At: e/4 + e/10, RestartAt: e/4 + e/10 + e/20},
		},
	}
	if err := faults.Validate(plan); err != nil {
		t.Fatal(err)
	}
	res, err := RunDisaggFaults(cfg, dc, reqs, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.Requests + res.Report.Faults.Dropped; got != len(reqs) {
		t.Fatalf("finished %d + dropped %d != %d", res.Report.Requests, res.Report.Faults.Dropped, len(reqs))
	}
	adm := res.Report.Admission
	if adm.BreakerTrips == 0 {
		t.Error("two crashes under FailureThreshold 2 tripped no breaker")
	}
	if adm.BreakerSkips == 0 {
		t.Error("an open breaker was never skipped in routing")
	}
}
