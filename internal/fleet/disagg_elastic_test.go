package fleet

import (
	"bytes"
	"testing"

	"repro/internal/policy"
	"repro/internal/workload"
)

func decodeScalerStack(t *testing.T, maxDecode int) *policy.Stack {
	t.Helper()
	as, err := policy.NewAutoscaler(policy.AutoscalerConfig{
		Min: 1, Max: maxDecode, Interval: 0.02,
		ScaleUpQueue: 2, ScaleDownQueue: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &policy.Stack{Autoscaler: as}
}

// A stack without an autoscaler must take the exact RunDisagg code
// path: reports and records byte-identical, at one worker and at four.
func TestParallelDisaggElasticInactiveStackByteIdentical(t *testing.T) {
	cfg := fastConfig(2)
	reqs := workload.StampArrivals(smallTrace(250, 7), workload.Poisson{Rate: 500}, 13)
	for _, workers := range []int{1, 4} {
		want, err := RunDisagg(cfg, DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2, Workers: workers}, reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for _, stack := range []*policy.Stack{nil, {}, {Admission: policy.NewTokenBucket(1, 1)}} {
			dc := DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2, Workers: workers, Stack: stack}
			got, err := RunDisagg(cfg, dc, reqs)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !bytes.Equal(fullJSON(t, want.Report, want.Records), fullJSON(t, got.Report, got.Records)) {
				t.Fatalf("workers=%d: autoscaler-free stack diverges from RunDisagg", workers)
			}
		}
	}
}

// Decode-pool autoscale interventions execute on the control timeline,
// so elastic disagg reports are byte-identical across worker counts.
func TestParallelDisaggElasticByteIdenticalToSequential(t *testing.T) {
	cfg := fastConfig(2)
	reqs := workload.StampArrivals(smallTrace(300, 9), workload.Poisson{Rate: 800}, 21)
	run := func(workers int) []byte {
		dc := DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 4, Workers: workers, Stack: decodeScalerStack(t, 4)}
		res, err := RunDisagg(cfg, dc, reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fullJSON(t, res.Report, res.Records)
	}
	seq := run(1)
	for _, w := range workerSweep {
		if got := run(w); !bytes.Equal(seq, got) {
			t.Errorf("workers=%d diverges from sequential:\n%s\n%s", w, seq, got)
		}
	}
}

// The decode pool must actually breathe under a bursty trace, and the
// provisioned decode GPU-seconds must come in under the static bill.
func TestDisaggDecodeAutoscalerBreathes(t *testing.T) {
	cfg := fastConfig(2)
	reqs := workload.StampArrivals(smallTrace(400, 11), workload.Poisson{Rate: 1500}, 19)
	dc := DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 4, Stack: decodeScalerStack(t, 4)}
	res, err := RunDisagg(cfg, dc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != len(reqs) {
		t.Fatalf("finished %d of %d requests", res.Report.Requests, len(reqs))
	}
	a := res.Report.Autoscale
	if !a.Any() || a.ScaleUps == 0 || a.PeakReplicas < 2 {
		t.Fatalf("decode pool never scaled up: %+v", a)
	}
	staticDecode := 4.0 * float64(cfg.World) * res.Report.Elapsed
	if a.GPUSeconds <= 0 || a.GPUSeconds >= staticDecode {
		t.Fatalf("decode GPU-seconds %.2f not inside (0, static %.2f)", a.GPUSeconds, staticDecode)
	}
}

func TestDisaggElasticRejectsOverMax(t *testing.T) {
	cfg := fastConfig(1)
	reqs := workload.StampArrivals(smallTrace(10, 3), workload.Poisson{Rate: 100}, 5)
	dc := DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 2, Stack: decodeScalerStack(t, 4)}
	if _, err := RunDisagg(cfg, dc, reqs); err == nil {
		t.Fatal("decode autoscaler Max above provisioned decode replicas must be rejected")
	}
}
