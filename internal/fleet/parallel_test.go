package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/faults"
	"repro/internal/workload"
)

// The headline guarantee of the parallel fabric: for every router,
// reports and per-request records are byte-identical across worker
// counts. Sequential (workers=1) is the reference; 2/4/8 must match it
// bit for bit.

var workerSweep = []int{2, 4, 8}

func fullJSON(t *testing.T, report, records any) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Report  any
		Records any
	}{report, records})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestParallelOnlineByteIdenticalToSequential(t *testing.T) {
	cfg := fastConfig(2)
	reqs := workload.StampArrivals(smallTrace(400, 3), workload.Poisson{Rate: 300}, 9)
	run := func(workers int) []byte {
		res, err := RunOnlineWorkers(cfg, 8, mustPolicy(t, PredictedCost, Options{Seed: 1}), reqs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fullJSON(t, res.Report, res.Records)
	}
	seq := run(1)
	for _, w := range workerSweep {
		if got := run(w); !bytes.Equal(seq, got) {
			t.Errorf("workers=%d diverges from sequential:\n%s\n%s", w, seq, got)
		}
	}
}

func TestParallelPrefixAffinityByteIdenticalToSequential(t *testing.T) {
	cfg := fastConfig(2)
	reqs := prefixOnlineTrace(300, 41, 8000, 32, 512)
	run := func(workers int) []byte {
		res, err := RunOnlineWorkers(cfg, 8, mustPolicy(t, PrefixAffinity, Options{}), reqs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fullJSON(t, res.Report, res.Records)
	}
	seq := run(1)
	for _, w := range workerSweep {
		if got := run(w); !bytes.Equal(seq, got) {
			t.Errorf("workers=%d diverges from sequential:\n%s\n%s", w, seq, got)
		}
	}
}

func TestParallelDisaggByteIdenticalToSequential(t *testing.T) {
	cfg := fastConfig(2)
	reqs := workload.StampArrivals(smallTrace(300, 7), workload.Poisson{Rate: 500}, 13)
	run := func(workers int) []byte {
		dc := DisaggConfig{PrefillReplicas: 4, DecodeReplicas: 4, Workers: workers}
		res, err := RunDisagg(cfg, dc, reqs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fullJSON(t, res.Report, res.Records)
	}
	seq := run(1)
	for _, w := range workerSweep {
		if got := run(w); !bytes.Equal(seq, got) {
			t.Errorf("workers=%d diverges from sequential:\n%s\n%s", w, seq, got)
		}
	}
}

func TestParallelOnlineFaultsByteIdenticalToSequential(t *testing.T) {
	cfg := fastConfig(2)
	const replicas = 8
	reqs := faultTrace(200, 11)
	fc := faults.Config{
		Seed: 5, Horizon: 0.2, MTBF: 0.04, RestartDelay: 0.02,
		Stragglers: 2, StragglerFactor: 1.3,
		CheckpointInterval: 0.02,
	}
	plan, err := faults.NewPlan(fc, replicas, fc.RestartDelay)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		res, err := RunOnlineFaultsWorkers(cfg, replicas, mustPolicy(t, LeastWork, Options{}), reqs, plan, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkFaultConservation(t, res, len(reqs))
		return fullJSON(t, res.Report, res.Records)
	}
	seq := run(1)
	for _, w := range workerSweep {
		if got := run(w); !bytes.Equal(seq, got) {
			t.Errorf("workers=%d diverges from sequential:\n%s\n%s", w, seq, got)
		}
	}
}

func TestParallelDisaggFaultsByteIdenticalToSequential(t *testing.T) {
	cfg := fastConfig(2)
	dc := DisaggConfig{PrefillReplicas: 3, DecodeReplicas: 5}
	reqs := faultTrace(200, 23)
	base, err := RunDisagg(cfg, dc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	fc := faults.Config{
		Seed:               3,
		Horizon:            base.Report.Elapsed,
		MTBF:               base.Report.Elapsed / 3,
		RestartDelay:       base.Report.Elapsed / 10,
		LinkDegradeFrac:    0.3,
		LinkDegradeFactor:  4,
		LinkPartitionFrac:  0.2,
		CheckpointInterval: base.Report.Elapsed / 8,
	}
	plan, err := faults.NewPlan(fc, dc.PrefillReplicas+dc.DecodeReplicas, fc.RestartDelay)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		wdc := dc
		wdc.Workers = workers
		res, err := RunDisaggFaults(cfg, wdc, reqs, plan)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fullJSON(t, res.Report, res.Records)
	}
	seq := run(1)
	for _, w := range workerSweep {
		if got := run(w); !bytes.Equal(seq, got) {
			t.Errorf("workers=%d diverges from sequential:\n%s\n%s", w, seq, got)
		}
	}
}

// Cross-shard-boundary property test: random traces engineered so that
// crashes and KV hand-offs land exactly on epoch horizons (crash
// instants coincide with arrival instants, restores with later
// arrivals), then every worker count 1..8 must produce byte-identical
// results and preserve exactly-once conservation. This drives the
// fabric's nastiest corners: control events tied at one instant,
// transfer completions rewinding the decode horizon mid-epoch, and
// lockstep placement during drained-pending windows.
func TestParallelCrossShardBoundaryProperty(t *testing.T) {
	cfg := fastConfig(2)
	for _, seed := range []int64{1, 2, 3} {
		reqs := workload.StampArrivals(smallTrace(120, seed), workload.Poisson{Rate: 1500}, seed+31)
		// Plant crashes exactly at arrival instants (the epoch
		// horizons of the fabric) and restores at later arrivals.
		n := len(reqs)
		plan := &faults.Plan{
			Replicas: 6,
			Config:   faults.Config{Seed: seed, MaxRetries: 4, CheckpointInterval: 0.01},
			Crashes: []faults.Crash{
				{Replica: 1, At: reqs[n/4].ArrivalTime, RestartAt: reqs[n/2].ArrivalTime},
				{Replica: 4, At: reqs[n/3].ArrivalTime, RestartAt: reqs[2*n/3].ArrivalTime},
			},
		}
		online := func(workers int) []byte {
			res, err := RunOnlineFaultsWorkers(cfg, 6, mustPolicy(t, LeastWork, Options{}), reqs, plan, workers)
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			checkFaultConservation(t, res, len(reqs))
			return fullJSON(t, res.Report, res.Records)
		}
		disagg := func(workers int) []byte {
			dc := DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 4, Workers: workers}
			res, err := RunDisaggFaults(cfg, dc, reqs, plan)
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			if got := res.Report.Requests + res.Report.Faults.Dropped; got != len(reqs) {
				t.Fatalf("seed %d workers=%d: finished %d + dropped %d != %d",
					seed, workers, res.Report.Requests, res.Report.Faults.Dropped, len(reqs))
			}
			return fullJSON(t, res.Report, res.Records)
		}
		seqOnline, seqDisagg := online(1), disagg(1)
		for w := 2; w <= 8; w++ {
			if got := online(w); !bytes.Equal(seqOnline, got) {
				t.Errorf("seed %d: online workers=%d diverges from sequential", seed, w)
			}
			if got := disagg(w); !bytes.Equal(seqDisagg, got) {
				t.Errorf("seed %d: disagg workers=%d diverges from sequential", seed, w)
			}
		}
	}
}

// Satellite: invalid arrival stamps are rejected up front with a
// documented error, consistently across all four routers — never
// silently clamped to t=0.
func TestInvalidArrivalsRejectedByAllRouters(t *testing.T) {
	cfg := fastConfig(2)
	plan := &faults.Plan{
		Replicas: 2,
		Config:   faults.Config{Seed: 1},
		Crashes:  []faults.Crash{{Replica: 0, At: 0.01, RestartAt: 0.02}},
	}
	dc := DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 1}
	routers := []struct {
		name string
		run  func(reqs []workload.Request) error
	}{
		{"RunOnline", func(reqs []workload.Request) error {
			_, err := RunOnline(cfg, 2, mustPolicy(t, RoundRobin, Options{}), reqs)
			return err
		}},
		{"RunOnlineFaults", func(reqs []workload.Request) error {
			_, err := RunOnlineFaults(cfg, 2, mustPolicy(t, RoundRobin, Options{}), reqs, plan)
			return err
		}},
		{"RunDisagg", func(reqs []workload.Request) error {
			_, err := RunDisagg(cfg, dc, reqs)
			return err
		}},
		{"RunDisaggFaults", func(reqs []workload.Request) error {
			_, err := RunDisaggFaults(cfg, dc, reqs, plan)
			return err
		}},
	}
	cases := []struct {
		name    string
		stamp   float64
		wantErr bool
	}{
		{"negative", -0.5, true},
		{"nan", math.NaN(), true},
		{"zero", 0, false},
		{"positive", 0.25, false},
	}
	for _, rt := range routers {
		for _, tc := range cases {
			reqs := workload.StampArrivals(smallTrace(10, 3), workload.Poisson{Rate: 100}, 7)
			reqs[4].ArrivalTime = tc.stamp
			err := rt.run(reqs)
			if tc.wantErr {
				if !errors.Is(err, ErrInvalidArrival) {
					t.Errorf("%s/%s: err = %v, want ErrInvalidArrival", rt.name, tc.name, err)
				}
			} else if err != nil {
				t.Errorf("%s/%s: unexpected error %v", rt.name, tc.name, err)
			}
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	cases := []struct {
		workers, replicas, want int
	}{
		{0, 4, 1},
		{1, 4, 1},
		{8, 4, 4},   // capped at the fleet size
		{4, 100, 4}, // explicit request honored
		{WorkersAuto, AutoWorkerThreshold - 1, 1},
	}
	for _, tc := range cases {
		if got := ResolveWorkers(tc.workers, tc.replicas); got != tc.want {
			t.Errorf("ResolveWorkers(%d, %d) = %d, want %d", tc.workers, tc.replicas, got, tc.want)
		}
	}
	// Auto at or above the threshold resolves to at least one worker
	// per core, bounded by the fleet.
	got := ResolveWorkers(WorkersAuto, AutoWorkerThreshold)
	if got < 1 || got > AutoWorkerThreshold {
		t.Errorf("ResolveWorkers(auto, %d) = %d out of range", AutoWorkerThreshold, got)
	}
}
