package fleet

import (
	"testing"

	"repro/internal/workload"
)

func prefixOnlineTrace(n int, seed int64, rate float64, groups, plen int) []workload.Request {
	reqs, err := workload.StampPrefixes(smallTrace(n, seed), workload.PrefixConfig{
		Groups: groups, PrefixLen: plen, Turns: 3, Seed: seed + 50,
	})
	if err != nil {
		panic(err)
	}
	return workload.StampArrivals(reqs, workload.Poisson{Rate: rate}, seed+7)
}

// The acceptance gate of the prefix tentpole: on a shared-prefix trace
// served online, prefix-affinity dispatch must produce a positive
// cache hit rate and a lower mean TTFT than round-robin, which
// scatters each group across replicas and re-prefills the prefix
// everywhere. The operating point matters: many groups relative to
// per-replica traffic (so scattering actually misses) and offered
// load at saturation (so wasted prefill shows up as queueing delay).
func TestPrefixAffinityBeatsRoundRobinOnSharedPrefixTrace(t *testing.T) {
	reqs := prefixOnlineTrace(400, 31, 16000, 64, 512)
	run := func(policy string) *Result {
		res, err := RunOnline(fastConfig(2), 4, mustPolicy(t, policy, Options{Seed: 1}), reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	aff := run(PrefixAffinity)
	rr := run(RoundRobin)
	if aff.Report.PrefixCachedTokens <= 0 {
		t.Fatal("prefix-affinity produced no cache hits on a shared-prefix trace")
	}
	if ahr, rhr := aff.Report.PrefixHitRate(), rr.Report.PrefixHitRate(); ahr <= rhr {
		t.Errorf("affinity hit rate %.3f not above round-robin %.3f", ahr, rhr)
	}
	if am, rm := aff.Report.Latency.MeanTTFT, rr.Report.Latency.MeanTTFT; am >= rm {
		t.Errorf("affinity mean TTFT %.3fs not below round-robin %.3fs", am, rm)
	}
}

// Warmth bookkeeping must also steer the offline pre-shard: with the
// affinity policy, each prefix group's requests land on one replica.
func TestDispatchPrefixAffinityKeepsGroupsTogether(t *testing.T) {
	reqs, err := workload.StampPrefixes(smallTrace(200, 33), workload.PrefixConfig{
		Groups: 4, PrefixLen: 128, Turns: 1, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards, err := Dispatch(mustPolicy(t, PrefixAffinity, Options{}), 4, reqs)
	if err != nil {
		t.Fatal(err)
	}
	home := map[int]int{}
	for k, sh := range shards {
		for _, r := range sh.Reqs {
			if prev, ok := home[r.PrefixGroup]; ok && prev != k {
				t.Fatalf("group %d split across replicas %d and %d", r.PrefixGroup, prev, k)
			}
			home[r.PrefixGroup] = k
		}
	}
	if len(home) != 4 {
		t.Errorf("%d groups dispatched, want 4", len(home))
	}
}

// Without prefix structure the affinity policy must degrade to
// least-work: identical shard assignment on the same trace.
func TestPrefixAffinityFallsBackToLeastWork(t *testing.T) {
	reqs := smallTrace(150, 35)
	affinity, err := Dispatch(mustPolicy(t, PrefixAffinity, Options{}), 3, reqs)
	if err != nil {
		t.Fatal(err)
	}
	least, err := Dispatch(mustPolicy(t, LeastWork, Options{}), 3, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range affinity {
		if len(affinity[k].Reqs) != len(least[k].Reqs) {
			t.Fatalf("replica %d: affinity %d reqs, least-work %d", k, len(affinity[k].Reqs), len(least[k].Reqs))
		}
		for j := range affinity[k].Reqs {
			if affinity[k].Origin[j] != least[k].Origin[j] {
				t.Fatalf("replica %d slot %d: affinity origin %d, least-work %d",
					k, j, affinity[k].Origin[j], least[k].Origin[j])
			}
		}
	}
}

// The fleet aggregate must sum per-replica prefix hits.
func TestFleetMergeSumsPrefixCachedTokens(t *testing.T) {
	reqs := prefixOnlineTrace(200, 37, 80, 4, 128)
	res, err := RunOnline(fastConfig(2), 2, mustPolicy(t, PrefixAffinity, Options{}), reqs)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, rr := range res.Replicas {
		sum += rr.Report.PrefixCachedTokens
	}
	if res.Report.PrefixCachedTokens != sum || sum <= 0 {
		t.Errorf("aggregate cached tokens %d, replica sum %d", res.Report.PrefixCachedTokens, sum)
	}
}
