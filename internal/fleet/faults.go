package fleet

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/faults"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Fault-injected online serving: RunOnline's shared-clock router grown
// a failure domain. The plan (package faults) schedules replica
// crashes and restarts as simulation events; the router health-checks
// every dispatch (dead replicas receive nothing), aborts and
// re-dispatches crash-lost requests — resuming from a periodic KV
// checkpoint when one exists, re-prefilling input+generated tokens
// otherwise — and drops a request only after its retry budget is
// exhausted or no live replica remains, always with a recorded reason.
// Conservation changes shape accordingly: every trace request finishes
// terminally exactly once XOR carries a drop reason.

// replicaConfig specializes the fleet config for replica i under a
// fault plan: stragglers get their slowdown factor, and the checkpoint
// cadence is switched on fleet-wide.
func replicaConfig(cfg core.Config, plan *faults.Plan, i int) core.Config {
	if plan == nil {
		return cfg
	}
	c := cfg
	if f := plan.SlowdownFor(i); f > 0 {
		c.Slowdown = f
	}
	if ci := plan.Config.CheckpointInterval; ci > 0 {
		c.CheckpointInterval = ci
	}
	return c
}

// RunOnlineFaults is RunOnline under a fault plan. An inactive (or
// nil) plan delegates to RunOnline itself, so fault-free results stay
// bit-identical to the pre-fault code path.
func RunOnlineFaults(cfg core.Config, replicas int, p Policy, reqs []workload.Request, plan *faults.Plan) (*Result, error) {
	return RunOnlineFaultsWorkers(cfg, replicas, p, reqs, plan, 1)
}

// RunOnlineFaultsWorkers is RunOnlineFaults with an explicit worker
// budget for the conservative parallel fabric (see RunOnlineWorkers).
// Crash, restore and checkpoint-resume interventions all execute on
// the control timeline, so fault runs stay byte-identical across
// worker counts.
func RunOnlineFaultsWorkers(cfg core.Config, replicas int, p Policy, reqs []workload.Request, plan *faults.Plan, workers int) (*Result, error) {
	if !plan.Active() {
		return RunOnlineWorkers(cfg, replicas, p, reqs, workers)
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("fleet: replicas = %d", replicas)
	}
	if p == nil {
		return nil, fmt.Errorf("fleet: nil policy")
	}
	if err := validateArrivals(reqs); err != nil {
		return nil, err
	}
	fab := newFabric(ResolveWorkers(workers, replicas))
	fab.addTier(0, replicas)
	engines := make([]*core.Engine, replicas)
	for i := range engines {
		e, err := core.NewEngine(fab.engineFor(i), replicaConfig(cfg, plan, i))
		if err == nil {
			err = e.StartOnline()
		}
		if err != nil {
			if e != nil {
				e.Shutdown()
			}
			for _, prev := range engines[:i] {
				prev.Shutdown()
			}
			return nil, fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		engines[i] = e
	}
	blockSize := cfg.BlockSize
	if blockSize <= 0 {
		blockSize = kvcache.DefaultBlockSize
	}
	ro := &frouter{
		ctl:           fab.ctl,
		plan:          plan,
		policy:        p,
		engines:       engines,
		reqs:          reqs,
		shards:        make([]Shard, replicas),
		outstanding:   make([]Load, replicas),
		entries:       make([][]loadEntry, replicas),
		loads:         make([]Load, 0, replicas),
		cand:          make([]int, 0, replicas),
		final:         make([]recRef, len(reqs)),
		fin:           make([]int, len(reqs)),
		attempts:      make([]int, len(reqs)),
		droppedReason: make([]string, len(reqs)),
		blockBytes:    float64(blockSize) * cfg.Spec.KVBytesPerToken(),
		xferTime:      costmodel.KVTransfer(cfg.Node),
	}
	for i := range engines {
		i := i
		engines[i].SetOnFinish(func(local int) { ro.finished(i, local) })
	}
	for _, idx := range workload.SortByArrival(reqs) {
		fab.ctl.AtFunc(sim.Time(reqs[idx].ArrivalTime), frouteEvent, ro, idx, 0)
	}
	for ci, c := range plan.Crashes {
		if c.Replica < replicas {
			fab.ctl.AtFunc(sim.Time(c.At), fcrashEvent, ro, ci, 0)
			fab.ctl.AtFunc(sim.Time(c.RestartAt), frestoreEvent, ro, ci, 0)
		}
	}
	fab.start()
	defer fab.stopWorkers()
	fab.run()
	if ro.err == nil {
		for _, q := range ro.queued {
			ro.drop(q.origin, "no live replica")
		}
		ro.queued = nil
	}
	if ro.err != nil {
		for _, e := range engines {
			e.Shutdown()
		}
		return nil, ro.err
	}
	results := make([]*core.Result, replicas)
	var ferr error
	for i, e := range engines {
		res, err := e.Finalize()
		if err != nil && ferr == nil {
			ferr = fmt.Errorf("fleet: replica %d: %w", i, err)
		}
		results[i] = res
	}
	if ferr != nil {
		return nil, ferr
	}
	res, err := ro.assemble(cfg, results)
	if err == nil {
		res.Steps = fab.Steps()
	}
	return res, err
}

// pendingRec is one dispatchable unit: a fresh arrival or a crash-lost
// request awaiting re-dispatch (its checkpoint, if any, rides along).
type pendingRec struct {
	origin int
	fresh  bool
	lost   core.Lost
}

// frouter is the fault-aware online router. All of its interventions
// (arrival dispatch, crash, restore, checkpoint resume) execute as
// control-timeline events on the fabric coordinator.
type frouter struct {
	ctl     *sim.Engine
	plan    *faults.Plan
	policy  Policy
	engines []*core.Engine
	reqs    []workload.Request
	shards  []Shard

	outstanding []Load
	entries     [][]loadEntry
	loads       []Load
	cand        []int

	// final[origin] locates the record of origin's last owner (recRef
	// with decode unused).
	final []recRef
	// fin[origin] counts terminal finishes (conservation: exactly 1
	// XOR dropped).
	fin           []int
	attempts      []int
	droppedReason []string
	queued        []pendingRec
	// items holds checkpoint restores in flight (KV reloading from
	// stable storage before re-import).
	items []pendingRec

	blockBytes float64
	xferTime   func(bytes float64) float64

	fstats metrics.FaultStats
	err    error
}

// frouteEvent fires at a request's arrival instant.
func frouteEvent(ctx any, idx, _ int) {
	ro := ctx.(*frouter)
	if ro.err != nil {
		return
	}
	ro.dispatch(idx, pendingRec{origin: idx, fresh: true})
}

// dispatch routes one request to a live replica: fresh arrivals submit
// normally, recompute re-dispatches resume via SubmitRecovered. With
// the whole fleet down the request queues until a restart.
func (ro *frouter) dispatch(origin int, pr pendingRec) {
	r := ro.reqs[origin]
	ro.cand = ro.cand[:0]
	loads := ro.loads[:0]
	for i := range ro.engines {
		if !ro.engines[i].Alive() {
			continue
		}
		ld := ro.outstanding[i]
		ld.WarmTokens = ro.engines[i].PrefixWarmTokens(r)
		ld.FreeKVTokens = ro.engines[i].FreeKVTokens()
		ro.cand = append(ro.cand, i)
		loads = append(loads, ld)
	}
	if len(ro.cand) == 0 {
		ro.queued = append(ro.queued, pr)
		return
	}
	j := ro.policy.Pick(r, loads)
	if j < 0 || j >= len(ro.cand) {
		ro.err = fmt.Errorf("fleet: policy %q picked candidate %d of %d", ro.policy.Name(), j, len(ro.cand))
		return
	}
	k := ro.cand[j]
	var local int
	var err error
	if pr.fresh {
		local, err = ro.engines[k].Submit(r)
	} else {
		local, err = ro.engines[k].SubmitRecovered(r, pr.lost.Generated, pr.lost.FirstTokenAt)
	}
	if err != nil {
		if errors.Is(err, core.ErrRequestTooLarge) {
			ro.drop(origin, err.Error())
			return
		}
		ro.err = fmt.Errorf("fleet: replica %d rejected request %d: %w", k, origin, err)
		return
	}
	ro.record(r, origin, k, local)
}

// record books one landed submission: load counters, shard membership
// and the final-owner pointer.
func (ro *frouter) record(r workload.Request, origin, k, local int) {
	cost := ro.policy.Cost(r)
	ro.entries[k] = append(ro.entries[k], loadEntry{inputTokens: r.InputLen, cost: cost})
	ro.outstanding[k].Requests++
	ro.outstanding[k].InputTokens += r.InputLen
	ro.outstanding[k].CostTokens += cost
	routed := r
	routed.ID = local
	ro.shards[k].Reqs = append(ro.shards[k].Reqs, routed)
	ro.shards[k].Origin = append(ro.shards[k].Origin, origin)
	ro.final[origin] = recRef{replica: k, local: local}
}

// retire removes a request's contribution from its replica's load
// counters (finish and crash-abort alike).
func (ro *frouter) retire(replica, local int) {
	en := ro.entries[replica][local]
	ro.outstanding[replica].Requests--
	ro.outstanding[replica].InputTokens -= en.inputTokens
	ro.outstanding[replica].CostTokens -= en.cost
}

// finished is the engines' completion hook.
func (ro *frouter) finished(replica, local int) {
	ro.retire(replica, local)
	ro.fin[ro.shards[replica].Origin[local]]++
}

// fcrashEvent executes one planned crash (AtFunc: a is the crash index
// in the plan).
func fcrashEvent(ctx any, ci, _ int) {
	ro := ctx.(*frouter)
	if ro.err != nil {
		return
	}
	c := ro.plan.Crashes[ci]
	lost, err := ro.engines[c.Replica].Crash(sim.Time(c.RestartAt))
	if err != nil {
		ro.err = fmt.Errorf("fleet: crash of replica %d: %w", c.Replica, err)
		return
	}
	origins := make([]int, len(lost))
	for i, l := range lost {
		ro.retire(c.Replica, l.Local)
		origins[i] = ro.shards[c.Replica].Origin[l.Local]
	}
	for i, l := range lost {
		ro.recover(origins[i], l)
	}
}

// recover re-dispatches one crash-lost request, spending one retry.
func (ro *frouter) recover(origin int, l core.Lost) {
	if ro.err != nil {
		return
	}
	ro.attempts[origin]++
	if ro.attempts[origin] > ro.plan.MaxRetries() {
		ro.drop(origin, "retry budget exhausted")
		return
	}
	if l.Ckpt != nil {
		// Checkpoint resume: the snapshot reloads from stable storage
		// over the KV link before it can be re-imported. The reload
		// rides the shared link timeline (TransferDoneFrom with no
		// source replica), so link degradation and partitions stretch
		// or stall it like any other transfer.
		ro.items = append(ro.items, pendingRec{origin: origin, lost: l})
		bytes := float64(l.Ckpt.KV.Blocks()) * ro.blockBytes
		done := ro.plan.TransferDoneFrom(-1, float64(ro.ctl.Now()), ro.xferTime(bytes))
		ro.ctl.AtFunc(sim.Time(done), fresumeEvent, ro, len(ro.items)-1, 0)
		return
	}
	ro.fstats.RecoveredRecompute++
	ro.dispatch(origin, pendingRec{origin: origin, lost: l})
}

// fresumeEvent places a reloaded checkpoint on a live replica with KV
// headroom; with none available it falls back to recompute recovery
// (no retry spent — the fall-back is part of the same attempt).
func fresumeEvent(ctx any, item, _ int) {
	ro := ctx.(*frouter)
	if ro.err != nil {
		return
	}
	it := ro.items[item]
	if ro.droppedReason[it.origin] != "" {
		return
	}
	ck := it.lost.Ckpt
	r := ro.reqs[it.origin]
	h := core.Handoff{
		Local:        -1,
		Req:          r,
		KV:           ck.KV,
		Generated:    ck.Generated,
		FirstTokenAt: ck.FirstTokenAt,
		At:           ro.ctl.Now(),
	}
	ro.cand = ro.cand[:0]
	loads := ro.loads[:0]
	now := float64(ro.ctl.Now())
	for i := range ro.engines {
		// A replica inside a network domain outage keeps serving but
		// cannot receive KV, so it is no import target.
		if !ro.engines[i].Alive() || !ro.engines[i].CanImportKV(ck.KV) ||
			ro.plan.PartitionedAt(i, now) {
			continue
		}
		ld := ro.outstanding[i]
		ld.WarmTokens = ro.engines[i].ResidentKVTokens(ck.KV)
		ld.FreeKVTokens = ro.engines[i].FreeKVTokens()
		ro.cand = append(ro.cand, i)
		loads = append(loads, ld)
	}
	if len(ro.cand) == 0 {
		// Nowhere to import: redo the work instead of waiting (same
		// retry attempt, the cheaper resume just was not available).
		noCkpt := it.lost
		noCkpt.Ckpt = nil
		ro.fstats.RecoveredRecompute++
		ro.dispatch(it.origin, pendingRec{origin: it.origin, lost: noCkpt})
		return
	}
	j := ro.policy.Pick(r, loads)
	if j < 0 || j >= len(ro.cand) {
		ro.err = fmt.Errorf("fleet: policy %q picked candidate %d of %d", ro.policy.Name(), j, len(ro.cand))
		return
	}
	k := ro.cand[j]
	local, err := ro.engines[k].SubmitDecoded(r, h)
	if err != nil {
		// The import failed at arrival — the target died or lost its
		// headroom in this very instant. Re-enter recovery with
		// recompute on the same attempt instead of stranding the
		// request (an oversized request drops inside dispatch).
		noCkpt := it.lost
		noCkpt.Ckpt = nil
		ro.fstats.RecoveredRecompute++
		ro.dispatch(it.origin, pendingRec{origin: it.origin, lost: noCkpt})
		return
	}
	ro.fstats.RecoveredCheckpoint++
	ro.record(r, it.origin, k, local)
}

// frestoreEvent brings a crashed replica back and drains the queue of
// requests that found no live replica.
func frestoreEvent(ctx any, ci, _ int) {
	ro := ctx.(*frouter)
	if ro.err != nil {
		return
	}
	c := ro.plan.Crashes[ci]
	if err := ro.engines[c.Replica].Restore(); err != nil {
		ro.err = fmt.Errorf("fleet: restore of replica %d: %w", c.Replica, err)
		return
	}
	if len(ro.queued) > 0 {
		q := ro.queued
		ro.queued = nil
		for _, p := range q {
			if ro.err != nil {
				return
			}
			ro.dispatch(p.origin, p)
		}
	}
}

// drop abandons a request with a reason (idempotent).
func (ro *frouter) drop(origin int, reason string) {
	if ro.droppedReason[origin] == "" {
		ro.droppedReason[origin] = reason
		ro.fstats.Dropped++
	}
}

// assemble builds the fault run's merged result: the exactly-once-XOR-
// dropped conservation check, the final-owner record merge, and the
// aggregate report with its fault accounting.
func (ro *frouter) assemble(cfg core.Config, results []*core.Result) (*Result, error) {
	n := len(ro.reqs)
	finished := 0
	for origin := 0; origin < n; origin++ {
		switch f, dropped := ro.fin[origin], ro.droppedReason[origin] != ""; {
		case f == 1 && !dropped:
			finished++
		case f == 0 && dropped:
		case f > 1:
			return nil, fmt.Errorf("fleet: request %d finished %d times across crashes", origin, f)
		case dropped:
			return nil, fmt.Errorf("fleet: request %d both finished and dropped (%s)", origin, ro.droppedReason[origin])
		default:
			return nil, fmt.Errorf("fleet: request %d lost without a drop reason (fin=%d)", origin, f)
		}
	}
	records := make([]metrics.RequestRecord, n)
	for origin, ref := range ro.final {
		if ro.droppedReason[origin] != "" {
			// Dropped: an unfinished zero record keeps the request in
			// the digest's denominator, so goodput pays for the loss.
			records[origin] = metrics.RequestRecord{ID: origin, Arrival: ro.reqs[origin].ArrivalTime}
			continue
		}
		rec := results[ref.replica].Records[ref.local]
		rec.ID = origin
		records[origin] = rec
	}

	rep := metrics.Report{
		Scheduler: fmt.Sprintf("FleetFaults(TD-Pipe/%s)x%d", ro.policy.Name(), len(results)),
		Node:      cfg.Node.Name,
		Model:     cfg.Spec.Name,
		GPUs:      cfg.World * len(results),
		Requests:  finished,
	}
	for origin, r := range ro.reqs {
		if ro.droppedReason[origin] == "" {
			rep.InputTokens += r.InputLen
		}
	}
	for _, rec := range records {
		rep.OutputTokens += rec.OutputTokens
	}
	var busy float64
	for _, r := range results {
		rr := r.Report
		rep.PhaseSwitches += rr.PhaseSwitches
		rep.Recomputes += rr.Recomputes
		rep.PrefixCachedTokens += rr.PrefixCachedTokens
		rep.Faults.Add(rr.Faults)
		if rr.Elapsed > rep.Elapsed {
			rep.Elapsed = rr.Elapsed
		}
		if rr.KVPeakUsage > rep.KVPeakUsage {
			rep.KVPeakUsage = rr.KVPeakUsage
		}
		busy += rr.MeanUtilization * rr.Elapsed * float64(rr.GPUs)
	}
	ro.fstats.DomainOutages = len(ro.plan.Domains)
	rep.Faults.Add(ro.fstats)
	if rep.Elapsed > 0 && rep.GPUs > 0 {
		rep.MeanUtilization = busy / (rep.Elapsed * float64(rep.GPUs))
	}
	rep.BubbleRatio = 1 - rep.MeanUtilization
	rep.Latency = metrics.Digest(records, cfg.SLO)
	return &Result{
		Report:   rep,
		Replicas: results,
		Shards:   ro.shards,
		Records:  records,
		Policy:   ro.policy.Name(),
	}, nil
}
