package fleet

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/runtime"
	"repro/internal/workload"
)

func runDisagg(t *testing.T, cfg core.Config, dc DisaggConfig, reqs []workload.Request) *DisaggResult {
	t.Helper()
	res, err := RunDisagg(cfg, dc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDisaggValidatesPools(t *testing.T) {
	reqs := smallTrace(10, 1)
	for _, dc := range []DisaggConfig{{PrefillReplicas: 0, DecodeReplicas: 2}, {PrefillReplicas: 2, DecodeReplicas: 0}, {PrefillReplicas: -1, DecodeReplicas: 1}} {
		if _, err := RunDisagg(fastConfig(2), dc, reqs); err == nil {
			t.Errorf("pools %+v accepted", dc)
		}
	}
}

// Every request must be prefilled once, decoded at most once, and
// finish with its full output; records must span the whole lifecycle.
func TestDisaggConservation(t *testing.T) {
	reqs := workload.StampArrivals(smallTrace(300, 21), workload.Poisson{Rate: 250}, 9)
	res := runDisagg(t, fastConfig(2), DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2}, reqs)

	if res.Report.Requests != len(reqs) {
		t.Fatalf("report covers %d of %d requests", res.Report.Requests, len(reqs))
	}
	if res.Handoffs == 0 {
		t.Fatal("no hand-offs on a multi-token trace")
	}
	if res.TransferredBytes <= 0 {
		t.Errorf("TransferredBytes = %v with %d hand-offs", res.TransferredBytes, res.Handoffs)
	}
	wantOut := 0
	for i, r := range reqs {
		rec := res.Records[i]
		if rec.ID != i {
			t.Fatalf("record %d has ID %d", i, rec.ID)
		}
		if rec.OutputTokens != r.OutputLen {
			t.Errorf("request %d generated %d of %d tokens", i, rec.OutputTokens, r.OutputLen)
		}
		if rec.Arrival != r.ArrivalTime {
			t.Errorf("request %d record arrival %v, trace %v", i, rec.Arrival, r.ArrivalTime)
		}
		if rec.FirstToken < rec.Arrival || rec.Finish < rec.FirstToken {
			t.Errorf("request %d has non-monotone lifecycle %+v", i, rec)
		}
		wantOut += r.OutputLen
	}
	if res.Report.OutputTokens != wantOut {
		t.Errorf("report output tokens %d, want %d", res.Report.OutputTokens, wantOut)
	}
	// Single-token outputs finish at the prefill pool; everything else
	// must appear in exactly one decode shard (checkConservation has
	// already verified multiplicity, this pins the split).
	multi := 0
	for _, r := range reqs {
		if r.OutputLen > 1 {
			multi++
		}
	}
	if res.Handoffs != multi {
		t.Errorf("%d hand-offs for %d multi-token requests", res.Handoffs, multi)
	}
}

// The co-simulated hand-off pipeline must be deterministic:
// byte-identical reports run-to-run.
func TestDisaggReportByteIdenticalAcrossRuns(t *testing.T) {
	reqs := workload.StampArrivals(smallTrace(300, 22), workload.Poisson{Rate: 300}, 11)
	run := func() []byte {
		res := runDisagg(t, fastConfig(2), DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 3}, reqs)
		b, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Errorf("disagg reports differ across identical runs:\n%s\n%s", a, b)
	}
}

// The hand-off lifecycle must be transport-invariant like every other
// path: direct calls vs goroutine mailboxes, byte-identical reports.
func TestDisaggReportByteIdenticalAcrossTransports(t *testing.T) {
	reqs := workload.StampArrivals(smallTrace(300, 25), workload.Poisson{Rate: 300}, 17)
	run := func(tr runtime.Transport) []byte {
		cfg := fastConfig(2)
		cfg.Transport = tr
		res := runDisagg(t, cfg, DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2}, reqs)
		b, err := json.Marshal(res.Report)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(runtime.TransportDirect), run(runtime.TransportMailbox)
	if !bytes.Equal(a, b) {
		t.Errorf("direct vs mailbox disagg reports differ:\n%s\n%s", a, b)
	}
}

// Under a starved decode pool, transfers must queue for KV headroom
// (overlapping the wait) and still drain to completion.
func TestDisaggQueuesHandoffsUnderMemoryPressure(t *testing.T) {
	cfg := fastConfig(2)
	cfg.MemUtilization = 0.0002 // a few hundred KV tokens per replica
	reqs := workload.StampArrivals(smallTrace(200, 23), workload.Poisson{Rate: 500}, 13)
	res := runDisagg(t, cfg, DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 1}, reqs)
	if res.QueuedHandoffs == 0 {
		t.Fatal("memory pressure did not force hand-off queueing")
	}
	for i, r := range reqs {
		if res.Records[i].OutputTokens != r.OutputLen {
			t.Fatalf("request %d incomplete after queued hand-off", i)
		}
	}
}

// A decode replica that already holds the hand-off's shared prefix
// chain should attract same-group requests (the warm-KV signal).
func TestDisaggPrefixAffinityOnDecodePool(t *testing.T) {
	reqs, err := workload.StampPrefixes(smallTrace(200, 24), workload.PrefixConfig{
		Groups: 4, PrefixLen: 96, Turns: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs = workload.StampArrivals(reqs, workload.Poisson{Rate: 200}, 15)
	res := runDisagg(t, fastConfig(2), DisaggConfig{PrefillReplicas: 1, DecodeReplicas: 3}, reqs)
	if res.Report.PrefixCachedTokens == 0 {
		t.Error("no prefix reuse on a prefix-structured disaggregated trace")
	}
}
