// Package hw models the multi-GPU node hardware TD-Pipe targets: GPUs
// described by their FP16 tensor throughput, HBM bandwidth and memory
// capacity, connected through a PCIe switch without GPU-direct cables
// (paper Table 1 and Figure 4).
//
// The simulation does not execute kernels; it only needs the quantities
// that determine execution time under a roofline model plus the
// interconnect bandwidths that determine communication time.
package hw

import "fmt"

// GPU describes one accelerator.
type GPU struct {
	Name string
	// FP16TFLOPS is peak FP16 tensor-core throughput in TFLOP/s.
	FP16TFLOPS float64
	// HBMGBps is peak memory bandwidth in GB/s.
	HBMGBps float64
	// MemGB is device memory capacity in GB.
	MemGB float64
}

// FLOPS returns peak throughput in FLOP/s.
func (g GPU) FLOPS() float64 { return g.FP16TFLOPS * 1e12 }

// MemBandwidth returns memory bandwidth in bytes/s.
func (g GPU) MemBandwidth() float64 { return g.HBMGBps * 1e9 }

// MemBytes returns memory capacity in bytes. GPU marketing capacities
// are decimal (an "80 GB" A100 has 80e9 bytes of HBM).
func (g GPU) MemBytes() float64 { return g.MemGB * 1e9 }

// String names the GPU with its memory size.
func (g GPU) String() string {
	return fmt.Sprintf("%s (%.1f TFLOPS fp16, %.0f GB/s, %.0f GB)", g.Name, g.FP16TFLOPS, g.HBMGBps, g.MemGB)
}

// Node describes a multi-GPU server: identical GPUs behind one PCIe
// switch sharing the CPU root complex, as in paper Figure 4.
type Node struct {
	Name string
	GPU  GPU
	// NumGPUs is the number of installed devices (the paper uses 4).
	NumGPUs int
	// AllReduceGBps is the measured bus (algorithm) bandwidth of an
	// all-reduce across the node's GPUs, in GB/s. Table 1 reports
	// 14.65 GB/s (L20 node) and 14.82 GB/s (A100 node).
	AllReduceGBps float64
	// P2PGBps is effective point-to-point bandwidth between two GPUs
	// through the PCIe switch (GPUDirect), in GB/s.
	P2PGBps float64
	// P2PLatency is the fixed per-transfer latency in seconds
	// (driver + switch traversal).
	P2PLatency float64
	// CollectiveLatency is the fixed per-operation latency of a
	// collective (NCCL launch + synchronization), in seconds.
	CollectiveLatency float64
	// KVLinkGBps is the effective bandwidth of the interconnect that
	// migrates KV blocks between replicas in a disaggregated
	// prefill/decode deployment, in GB/s. Zero falls back to the P2P
	// parameters (hand-off over the same switch fabric).
	KVLinkGBps float64
	// KVLinkLatency is the fixed per-hand-off latency in seconds
	// (connection setup + first-byte). Used with KVLinkGBps; when
	// KVLinkGBps is zero, P2PLatency applies instead.
	KVLinkLatency float64
}

// Validate reports a configuration error, if any.
func (n Node) Validate() error {
	switch {
	case n.NumGPUs <= 0:
		return fmt.Errorf("hw: node %q has %d GPUs", n.Name, n.NumGPUs)
	case n.GPU.FP16TFLOPS <= 0 || n.GPU.HBMGBps <= 0 || n.GPU.MemGB <= 0:
		return fmt.Errorf("hw: node %q has incomplete GPU spec %+v", n.Name, n.GPU)
	case n.AllReduceGBps <= 0 || n.P2PGBps <= 0:
		return fmt.Errorf("hw: node %q has incomplete interconnect spec", n.Name)
	case n.P2PLatency < 0 || n.CollectiveLatency < 0:
		return fmt.Errorf("hw: node %q has negative interconnect latency", n.Name)
	case n.KVLinkGBps < 0 || n.KVLinkLatency < 0:
		return fmt.Errorf("hw: node %q has negative KV link spec (%.3g GB/s, %.3g s); zero means 'fall back to P2P'",
			n.Name, n.KVLinkGBps, n.KVLinkLatency)
	}
	return nil
}

// WithGPUs returns a copy of the node restricted to k GPUs (used for the
// 1/2/4-device scaling experiments).
func (n Node) WithGPUs(k int) Node {
	n.NumGPUs = k
	return n
}

// AllReduceTime returns the time for an all-reduce of the given payload
// (bytes per rank) across world GPUs. With one participant there is no
// communication. The measured Table-1 number is a bus bandwidth for the
// full node, so time scales with payload directly.
func (n Node) AllReduceTime(bytes float64, world int) float64 {
	if world <= 1 || bytes <= 0 {
		return 0
	}
	return n.CollectiveLatency + bytes/(n.AllReduceGBps*1e9)
}

// P2PTime returns the time to move bytes from one GPU to a neighbour
// through the switch. A node with no usable P2P bandwidth (rejected by
// Validate, but reachable through hand-built configs) yields the fixed
// latency alone rather than dividing by zero and propagating +Inf into
// schedules.
func (n Node) P2PTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	if n.P2PGBps <= 0 {
		return n.P2PLatency
	}
	return n.P2PLatency + bytes/(n.P2PGBps*1e9)
}

// The time to migrate KV-cache bytes over the KV link (checkpoints,
// disaggregated hand-offs) is priced by costmodel.KVTransfer, which
// owns the one canonical transfer formula; hw only declares the link.

// Table 1 of the paper, plus interconnect characteristics measured
// there. P2P bandwidth through a PCIe 4.0 switch with GPUDirect is set
// to a typical ~20 GB/s effective; the collectives use the measured
// all-reduce bus bandwidths. The KV hand-off link between replicas is
// a 200 Gb/s-class fabric (~25 GB/s effective, 50 µs setup), the kind
// of RDMA path disaggregated serving systems migrate prefix caches
// over.
var (
	// L20 is the 4x NVIDIA L20 (48 GB) PCIe node.
	L20 = Node{
		Name:              "L20",
		GPU:               GPU{Name: "NVIDIA L20", FP16TFLOPS: 119.5, HBMGBps: 864, MemGB: 48},
		NumGPUs:           4,
		AllReduceGBps:     14.65,
		P2PGBps:           20,
		P2PLatency:        10e-6,
		CollectiveLatency: 80e-6,
		KVLinkGBps:        25,
		KVLinkLatency:     50e-6,
	}
	// A100 is the 4x NVIDIA A100 (80 GB) PCIe node.
	A100 = Node{
		Name:              "A100",
		GPU:               GPU{Name: "NVIDIA A100", FP16TFLOPS: 312, HBMGBps: 1935, MemGB: 80},
		NumGPUs:           4,
		AllReduceGBps:     14.82,
		P2PGBps:           20,
		P2PLatency:        10e-6,
		CollectiveLatency: 80e-6,
		KVLinkGBps:        25,
		KVLinkLatency:     50e-6,
	}
	// TestNode is a small fast node for unit tests: timings stay easy
	// to reason about (1 TFLOPS, 1 GB/s everything).
	TestNode = Node{
		Name:              "test",
		GPU:               GPU{Name: "testgpu", FP16TFLOPS: 1e-3, HBMGBps: 1, MemGB: 1},
		NumGPUs:           4,
		AllReduceGBps:     1,
		P2PGBps:           1,
		P2PLatency:        0,
		CollectiveLatency: 0,
	}
)

// Nodes lists the evaluation nodes from the paper.
func Nodes() []Node { return []Node{L20, A100} }
