package hw

import (
	"reflect"
	"testing"
)

func TestTopologyDisabled(t *testing.T) {
	var z Topology
	if z.Enabled() {
		t.Error("zero topology enabled")
	}
	if err := z.Validate(); err != nil {
		t.Errorf("zero topology invalid: %v", err)
	}
	if z.Zones() != 0 {
		t.Errorf("zero topology has %d zones", z.Zones())
	}
	if z.String() != "no topology" {
		t.Errorf("String = %q", z.String())
	}
}

func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		top Topology
		ok  bool
	}{
		{Topology{Replicas: 8, Racks: 4, RacksPerZone: 2}, true},
		{Topology{Replicas: 4, Racks: 4}, true},
		{Topology{Replicas: 3, Racks: 2}, true},
		{Topology{Replicas: 0, Racks: 2}, false}, // racks but no replicas
		{Topology{Replicas: 2, Racks: 4}, false}, // more racks than replicas
		{Topology{Replicas: 4, Racks: 2, RacksPerZone: -1}, false},
		{Topology{RacksPerZone: 2}, false}, // zones without racks
	}
	for _, c := range cases {
		if err := c.top.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.top, err, c.ok)
		}
	}
}

// The contiguous balanced mapping: racks differ in size by at most
// one, every replica lands in exactly one rack, members are ascending.
func TestTopologyRackMapping(t *testing.T) {
	for _, shape := range []Topology{
		{Replicas: 8, Racks: 4},
		{Replicas: 7, Racks: 3},
		{Replicas: 5, Racks: 5},
		{Replicas: 12, Racks: 4, RacksPerZone: 2},
		{Replicas: 1, Racks: 1},
	} {
		if err := shape.Validate(); err != nil {
			t.Fatalf("shape %+v invalid: %v", shape, err)
		}
		seen := make(map[int]int)
		minSize, maxSize := shape.Replicas, 0
		for rack := 0; rack < shape.Racks; rack++ {
			members := shape.RackMembers(rack)
			if len(members) == 0 {
				t.Errorf("%v: rack %d empty", shape, rack)
			}
			if len(members) < minSize {
				minSize = len(members)
			}
			if len(members) > maxSize {
				maxSize = len(members)
			}
			for i, m := range members {
				if i > 0 && m <= members[i-1] {
					t.Errorf("%v: rack %d members not ascending: %v", shape, rack, members)
				}
				if got := shape.Rack(m); got != rack {
					t.Errorf("%v: Rack(%d) = %d, want %d", shape, m, got, rack)
				}
				seen[m]++
			}
		}
		if maxSize-minSize > 1 {
			t.Errorf("%v: rack sizes unbalanced (min %d, max %d)", shape, minSize, maxSize)
		}
		if len(seen) != shape.Replicas {
			t.Errorf("%v: %d replicas assigned, want %d", shape, len(seen), shape.Replicas)
		}
		for m, n := range seen {
			if n != 1 {
				t.Errorf("%v: replica %d in %d racks", shape, m, n)
			}
		}
	}
}

func TestTopologyZones(t *testing.T) {
	top := Topology{Replicas: 12, Racks: 4, RacksPerZone: 2}
	if top.Zones() != 2 {
		t.Fatalf("Zones = %d, want 2", top.Zones())
	}
	if top.Zone(0) != 0 || top.Zone(1) != 0 || top.Zone(2) != 1 || top.Zone(3) != 1 {
		t.Errorf("zone mapping wrong: %d %d %d %d", top.Zone(0), top.Zone(1), top.Zone(2), top.Zone(3))
	}
	want := append(top.RackMembers(2), top.RackMembers(3)...)
	if got := top.ZoneMembers(1); !reflect.DeepEqual(got, want) {
		t.Errorf("ZoneMembers(1) = %v, want %v", got, want)
	}
	// Uneven split: 3 racks, 2 per zone → 2 zones, the last with 1 rack.
	odd := Topology{Replicas: 6, Racks: 3, RacksPerZone: 2}
	if odd.Zones() != 2 {
		t.Errorf("odd Zones = %d, want 2", odd.Zones())
	}
	if got := odd.ZoneMembers(1); !reflect.DeepEqual(got, odd.RackMembers(2)) {
		t.Errorf("odd ZoneMembers(1) = %v, want rack 2's %v", got, odd.RackMembers(2))
	}
	// Default: everything in one zone.
	one := Topology{Replicas: 8, Racks: 4}
	if one.Zones() != 1 {
		t.Errorf("default Zones = %d, want 1", one.Zones())
	}
	if got := one.ZoneMembers(0); len(got) != 8 {
		t.Errorf("default ZoneMembers(0) = %v, want all 8", got)
	}
}
