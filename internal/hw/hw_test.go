package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1Specs(t *testing.T) {
	// Paper Table 1.
	if L20.GPU.FP16TFLOPS != 119.5 || L20.GPU.HBMGBps != 864 || L20.GPU.MemGB != 48 {
		t.Errorf("L20 spec drifted from Table 1: %+v", L20.GPU)
	}
	if A100.GPU.FP16TFLOPS != 312 || A100.GPU.HBMGBps != 1935 || A100.GPU.MemGB != 80 {
		t.Errorf("A100 spec drifted from Table 1: %+v", A100.GPU)
	}
	if L20.AllReduceGBps != 14.65 || A100.AllReduceGBps != 14.82 {
		t.Errorf("all-reduce bandwidths drifted from Table 1: %v %v", L20.AllReduceGBps, A100.AllReduceGBps)
	}
}

func TestUnitConversions(t *testing.T) {
	g := GPU{FP16TFLOPS: 2, HBMGBps: 3, MemGB: 4}
	if g.FLOPS() != 2e12 {
		t.Errorf("FLOPS = %v", g.FLOPS())
	}
	if g.MemBandwidth() != 3e9 {
		t.Errorf("MemBandwidth = %v", g.MemBandwidth())
	}
	if g.MemBytes() != 4e9 {
		t.Errorf("MemBytes = %v", g.MemBytes())
	}
}

func TestValidate(t *testing.T) {
	if err := L20.Validate(); err != nil {
		t.Errorf("L20 invalid: %v", err)
	}
	if err := A100.Validate(); err != nil {
		t.Errorf("A100 invalid: %v", err)
	}
	bad := L20
	bad.NumGPUs = 0
	if bad.Validate() == nil {
		t.Error("zero-GPU node validated")
	}
	bad = L20
	bad.GPU.HBMGBps = 0
	if bad.Validate() == nil {
		t.Error("bandwidth-less GPU validated")
	}
	bad = L20
	bad.AllReduceGBps = 0
	if bad.Validate() == nil {
		t.Error("interconnect-less node validated")
	}
	bad = L20
	bad.P2PGBps = 0
	if bad.Validate() == nil {
		t.Error("node with zero P2P bandwidth validated")
	}
	bad = L20
	bad.KVLinkGBps = -1
	if bad.Validate() == nil {
		t.Error("node with negative KV link bandwidth validated")
	}
	bad = L20
	bad.P2PLatency = -1e-6
	if bad.Validate() == nil {
		t.Error("node with negative P2P latency validated")
	}
}

func TestWithGPUs(t *testing.T) {
	n := L20.WithGPUs(2)
	if n.NumGPUs != 2 {
		t.Errorf("NumGPUs = %d", n.NumGPUs)
	}
	if L20.NumGPUs != 4 {
		t.Error("WithGPUs mutated the original")
	}
}

func TestAllReduceTime(t *testing.T) {
	n := Node{AllReduceGBps: 10, CollectiveLatency: 1e-3}
	if got := n.AllReduceTime(1e9, 1); got != 0 {
		t.Errorf("single-rank all-reduce = %v, want 0", got)
	}
	if got := n.AllReduceTime(0, 4); got != 0 {
		t.Errorf("empty all-reduce = %v, want 0", got)
	}
	want := 1e-3 + 0.1
	if got := n.AllReduceTime(1e9, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("all-reduce time = %v, want %v", got, want)
	}
}

func TestP2PTime(t *testing.T) {
	n := Node{P2PGBps: 20, P2PLatency: 10e-6}
	if got := n.P2PTime(0); got != 0 {
		t.Errorf("empty transfer = %v, want 0", got)
	}
	want := 10e-6 + 2e9/(20e9)
	if got := n.P2PTime(2e9); math.Abs(got-want) > 1e-15 {
		t.Errorf("p2p time = %v, want %v", got, want)
	}
}

// An unvalidated node with no P2P bandwidth must still produce finite
// times (latency-only), never +Inf that would poison virtual-time
// schedules. The KV-link equivalent lives in costmodel, which owns the
// transfer formula.
func TestTransferTimesFiniteWithoutBandwidth(t *testing.T) {
	n := Node{P2PLatency: 10e-6}
	if got := n.P2PTime(1e9); math.IsInf(got, 1) || math.IsNaN(got) || got != 10e-6 {
		t.Errorf("bandwidth-less P2PTime = %v, want the bare latency", got)
	}
}

// Property: transfer and collective times are monotone in payload size.
func TestMonotoneTimesProperty(t *testing.T) {
	prop := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsNaN(a) || math.IsNaN(b) || a > 1e15 || b > 1e15 {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return L20.P2PTime(lo) <= L20.P2PTime(hi) &&
			L20.AllReduceTime(lo, 4) <= L20.AllReduceTime(hi, 4)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestNodesList(t *testing.T) {
	ns := Nodes()
	if len(ns) != 2 || ns[0].Name != "L20" || ns[1].Name != "A100" {
		t.Errorf("Nodes() = %v", ns)
	}
}
