package hw

import "fmt"

// Topology places a fleet's replicas into physical failure domains:
// replicas fill racks in balanced contiguous blocks, and consecutive
// racks group into zones. It is the substrate for correlated failure
// injection (a rack power event or ToR switch failure takes out every
// member at once) — the zero value means "no domain structure", i.e.
// every replica fails independently.
//
// The mapping is deterministic and purely arithmetic: rack r holds
// replicas [ceil boundaries of r*Replicas/Racks, (r+1)*Replicas/Racks),
// so racks differ in size by at most one replica and the assignment
// never depends on iteration order.
type Topology struct {
	// Replicas is the fleet size the topology covers.
	Replicas int
	// Racks is the number of rack-level failure domains. Zero disables
	// the topology (Enabled reports false).
	Racks int
	// RacksPerZone groups that many consecutive racks into one
	// zone-level domain. Zero (or >= Racks) means a single zone.
	RacksPerZone int
}

// Enabled reports whether the topology defines any domain structure.
func (t Topology) Enabled() bool { return t.Racks > 0 }

// Validate reports a configuration error, if any. The zero value is
// valid (disabled).
func (t Topology) Validate() error {
	if !t.Enabled() {
		if t.RacksPerZone != 0 {
			return fmt.Errorf("hw: topology has %d racks/zone but no racks", t.RacksPerZone)
		}
		return nil
	}
	switch {
	case t.Replicas <= 0:
		return fmt.Errorf("hw: topology has %d racks but %d replicas", t.Racks, t.Replicas)
	case t.Racks > t.Replicas:
		return fmt.Errorf("hw: topology has more racks (%d) than replicas (%d)", t.Racks, t.Replicas)
	case t.RacksPerZone < 0:
		return fmt.Errorf("hw: topology has negative racks/zone (%d)", t.RacksPerZone)
	}
	return nil
}

// racksPerZone normalizes the zero/oversized cases to "one zone".
func (t Topology) racksPerZone() int {
	if t.RacksPerZone <= 0 || t.RacksPerZone > t.Racks {
		return t.Racks
	}
	return t.RacksPerZone
}

// Zones returns the number of zone-level domains (the last zone may
// hold fewer racks).
func (t Topology) Zones() int {
	if !t.Enabled() {
		return 0
	}
	rpz := t.racksPerZone()
	return (t.Racks + rpz - 1) / rpz
}

// Rack returns the rack holding the given replica.
func (t Topology) Rack(replica int) int {
	return replica * t.Racks / t.Replicas
}

// Zone returns the zone holding the given rack.
func (t Topology) Zone(rack int) int { return rack / t.racksPerZone() }

// RackMembers returns the replicas in the given rack, ascending.
func (t Topology) RackMembers(rack int) []int {
	lo := (rack*t.Replicas + t.Racks - 1) / t.Racks
	hi := ((rack+1)*t.Replicas + t.Racks - 1) / t.Racks
	// The balanced contiguous mapping guarantees lo < hi for every
	// valid rack when Racks <= Replicas.
	members := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		if t.Rack(r) == rack {
			members = append(members, r)
		}
	}
	return members
}

// ZoneMembers returns the replicas in every rack of the given zone,
// ascending.
func (t Topology) ZoneMembers(zone int) []int {
	rpz := t.racksPerZone()
	var members []int
	for rack := zone * rpz; rack < (zone+1)*rpz && rack < t.Racks; rack++ {
		members = append(members, t.RackMembers(rack)...)
	}
	return members
}

// String renders the domain shape, e.g. "8 replicas / 4 racks / 2 zones".
func (t Topology) String() string {
	if !t.Enabled() {
		return "no topology"
	}
	return fmt.Sprintf("%d replicas / %d racks / %d zones", t.Replicas, t.Racks, t.Zones())
}
