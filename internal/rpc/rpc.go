// Package rpc carries the hierarchy-controller's control messages over
// net/rpc, matching the paper's Figure 7 where the centralized engine
// "manages and controls workers via remote procedure call (RPC)". The
// in-process channel transport (runtime.NewWorker) is what the
// simulation uses by default; this package provides the wire-level
// equivalent so the control plane can drive workers across process
// boundaries — demonstrated here over in-memory full-duplex pipes,
// deployable over TCP unchanged.
package rpc

import (
	"fmt"
	"io"
	"net"
	"net/rpc"

	"repro/internal/runtime"
)

// WorkerService exposes a worker's message handlers as RPC methods.
// Every method forwards to the worker's mailbox, preserving the
// one-message-at-a-time semantics of the execution plane.
type WorkerService struct {
	w *runtime.Worker
}

// NewWorkerService wraps a worker for serving.
func NewWorkerService(w *runtime.Worker) *WorkerService {
	return &WorkerService{w: w}
}

func (s *WorkerService) call(msg runtime.Msg, reply *runtime.Msg) error {
	rep := s.w.Call(msg)
	if er, bad := rep.(runtime.ErrorReply); bad {
		return er.Err
	}
	*reply = rep
	return nil
}

// Init configures the worker's model slice and comm context.
func (s *WorkerService) Init(args runtime.Init, reply *runtime.InitAck) error {
	var rep runtime.Msg
	if err := s.call(args, &rep); err != nil {
		return err
	}
	ack, ok := rep.(runtime.InitAck)
	if !ok {
		return fmt.Errorf("rpc: unexpected reply %T", rep)
	}
	*reply = ack
	return nil
}

// ExecPrefill runs a prefill batch through the worker's layers.
func (s *WorkerService) ExecPrefill(args runtime.ExecPrefill, reply *runtime.ExecResult) error {
	return s.exec(args, reply)
}

// ExecDecode runs one decode step.
func (s *WorkerService) ExecDecode(args runtime.ExecDecode, reply *runtime.ExecResult) error {
	return s.exec(args, reply)
}

// ExecChunked runs a chunked-prefill piece.
func (s *WorkerService) ExecChunked(args runtime.ExecChunked, reply *runtime.ExecResult) error {
	return s.exec(args, reply)
}

// ExecHybrid runs a hybrid iteration.
func (s *WorkerService) ExecHybrid(args runtime.ExecHybrid, reply *runtime.ExecResult) error {
	return s.exec(args, reply)
}

func (s *WorkerService) exec(msg runtime.Msg, reply *runtime.ExecResult) error {
	var rep runtime.Msg
	if err := s.call(msg, &rep); err != nil {
		return err
	}
	er, ok := rep.(runtime.ExecResult)
	if !ok {
		return fmt.Errorf("rpc: unexpected reply %T", rep)
	}
	*reply = er
	return nil
}

// Shutdown stops the worker goroutine.
func (s *WorkerService) Shutdown(args runtime.Shutdown, reply *runtime.Ack) error {
	var rep runtime.Msg
	if err := s.call(args, &rep); err != nil {
		return err
	}
	*reply = runtime.Ack{}
	return nil
}

// Serve registers the service and serves one connection (blocking).
func Serve(w *runtime.Worker, conn io.ReadWriteCloser) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", NewWorkerService(w)); err != nil {
		return err
	}
	srv.ServeConn(conn)
	return nil
}

// Client is a runtime.Caller backed by an RPC connection, so a Cluster
// can use remote workers transparently.
type Client struct {
	c *rpc.Client
}

var _ runtime.Caller = (*Client)(nil)

// NewClient wraps an established connection.
func NewClient(conn io.ReadWriteCloser) *Client {
	return &Client{c: rpc.NewClient(conn)}
}

// Call implements runtime.Caller by dispatching on message type.
func (c *Client) Call(msg runtime.Msg) runtime.Msg {
	switch m := msg.(type) {
	case runtime.Init:
		var ack runtime.InitAck
		if err := c.c.Call("Worker.Init", m, &ack); err != nil {
			return runtime.ErrorReply{Err: err}
		}
		return ack
	case runtime.ExecPrefill:
		return c.exec("Worker.ExecPrefill", m)
	case runtime.ExecDecode:
		return c.exec("Worker.ExecDecode", m)
	case runtime.ExecChunked:
		return c.exec("Worker.ExecChunked", m)
	case runtime.ExecHybrid:
		return c.exec("Worker.ExecHybrid", m)
	case runtime.Shutdown:
		var ack runtime.Ack
		if err := c.c.Call("Worker.Shutdown", m, &ack); err != nil {
			return runtime.ErrorReply{Err: err}
		}
		_ = c.c.Close()
		return ack
	default:
		return runtime.ErrorReply{Err: fmt.Errorf("rpc: unroutable message %T", msg)}
	}
}

func (c *Client) exec(method string, args interface{}) runtime.Msg {
	var er runtime.ExecResult
	if err := c.c.Call(method, args, &er); err != nil {
		return runtime.ErrorReply{Err: err}
	}
	return er
}

// PipeWorker starts a worker goroutine served over an in-memory
// connection and returns the RPC client for it — the cross-process
// topology of Figure 7, collapsed into one process for the simulation.
func PipeWorker() *Client {
	srvConn, cliConn := net.Pipe()
	w := runtime.NewWorker()
	go func() { _ = Serve(w, srvConn) }()
	return NewClient(cliConn)
}
