package rpc

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/sim"
)

func initArgs(t testing.TB, world, rank int) runtime.Init {
	t.Helper()
	plan, err := model.Partition(model.Tiny, world)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := costmodel.New(hw.L20, model.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return runtime.Init{Plan: plan, Rank: rank, World: world, Cost: cm}
}

func TestRPCInitAndExec(t *testing.T) {
	c := PipeWorker()
	defer c.Call(runtime.Shutdown{})

	rep := c.Call(initArgs(t, 2, 0))
	ack, ok := rep.(runtime.InitAck)
	if !ok {
		t.Fatalf("init reply = %#v", rep)
	}
	if ack.WeightBytes <= 0 {
		t.Errorf("weights = %v", ack.WeightBytes)
	}

	rep = c.Call(runtime.ExecDecode{BatchSize: 8, KVTokens: 400})
	er, ok := rep.(runtime.ExecResult)
	if !ok {
		t.Fatalf("exec reply = %#v", rep)
	}
	if er.Dur <= 0 || er.SendTokens != 8 {
		t.Errorf("exec result = %+v", er)
	}
}

// The RPC transport must be observationally identical to the in-process
// mailbox: same durations for the same tasks.
func TestRPCEquivalentToMailbox(t *testing.T) {
	remote := PipeWorker()
	defer remote.Call(runtime.Shutdown{})
	local := runtime.NewWorker()
	defer local.Call(runtime.Shutdown{})

	for rank := 0; rank < 2; rank++ {
		if rep := remote.Call(initArgs(t, 2, rank)); rep == nil {
			t.Fatal("nil init reply")
		}
		local.Call(initArgs(t, 2, rank))
		tasks := []runtime.Msg{
			runtime.ExecPrefill{Batch: costmodel.NewPrefillBatch([]int{64, 128})},
			runtime.ExecDecode{BatchSize: 16, KVTokens: 1600},
			runtime.ExecChunked{ChunkTokens: 32, CtxTokens: 64},
			runtime.ExecHybrid{DecodeBatch: 8, KVTokens: 800, ChunkTokens: 16, ChunkCtx: 32},
		}
		for _, task := range tasks {
			r1 := remote.Call(task)
			r2 := local.Call(task)
			e1, ok1 := r1.(runtime.ExecResult)
			e2, ok2 := r2.(runtime.ExecResult)
			if !ok1 || !ok2 {
				t.Fatalf("replies %#v vs %#v", r1, r2)
			}
			if math.Abs(e1.Dur-e2.Dur) > 1e-15 || e1.SendTokens != e2.SendTokens {
				t.Errorf("%T: rpc %+v != mailbox %+v", task, e1, e2)
			}
		}
	}
}

func TestRPCErrorsPropagate(t *testing.T) {
	c := PipeWorker()
	defer c.Call(runtime.Shutdown{})
	// Exec before init must come back as an ErrorReply, not a panic.
	rep := c.Call(runtime.ExecDecode{BatchSize: 1, KVTokens: 1})
	if _, bad := rep.(runtime.ErrorReply); !bad {
		t.Errorf("error did not propagate: %#v", rep)
	}
	// Bad init too.
	rep = c.Call(initArgs(t, 2, 5))
	if _, bad := rep.(runtime.ErrorReply); !bad {
		t.Errorf("bad init accepted: %#v", rep)
	}
}

// A cluster whose workers sit behind RPC produces the exact same
// schedule as the default in-process cluster.
func TestClusterOverRPC(t *testing.T) {
	run := func(useRPC bool) sim.Time {
		eng := sim.NewEngine()
		c, err := runtime.NewCluster(eng, hw.L20, model.Tiny, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		if useRPC {
			for i := range c.Workers {
				cl := PipeWorker()
				if rep := cl.Call(initArgs(t, 4, i)); rep == nil {
					t.Fatal("nil init reply")
				}
				c.Workers[i] = cl
			}
		}
		var end sim.Time
		c.SubmitPass(runtime.PrefillTask(costmodel.NewPrefillBatch([]int{256})), 0, func(r runtime.PassResult) {
			c.SubmitPass(runtime.DecodeTask(4, 256), r.End, func(r2 runtime.PassResult) { end = r2.End })
		})
		eng.Run()
		return end
	}
	direct := run(false)
	viaRPC := run(true)
	if direct != viaRPC {
		t.Errorf("schedules differ: direct %v, rpc %v", direct, viaRPC)
	}
	if direct == 0 {
		t.Error("no work executed")
	}
}
