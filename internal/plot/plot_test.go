package plot

import (
	"strings"
	"testing"
)

func TestLineBasic(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 0.5, 1}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{1, 0.5, 0}},
	}
	out := Line(s, 30, 8, 1)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "b") {
		t.Errorf("legend missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// height rows + axis + 2 legend rows.
	if len(lines) != 8+1+2 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}

func TestLineAutoscaleAndClamp(t *testing.T) {
	s := []Series{{Name: "x", X: []float64{0, 1}, Y: []float64{2, 4}}}
	out := Line(s, 20, 5, 0)
	if !strings.Contains(out, "4.00") {
		t.Errorf("autoscale label missing:\n%s", out)
	}
	// Degenerate inputs must not panic.
	_ = Line(nil, 0, 0, 0)
	_ = Line([]Series{{Name: "e"}}, 10, 4, 1)
}

func TestBars(t *testing.T) {
	out := Bars([]Bar{{"TD-Pipe", 100}, {"TP+SB", 50}, {"zero", 0}}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[0], "#") != 20 {
		t.Errorf("max bar not full width: %q", lines[0])
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Errorf("half bar wrong: %q", lines[1])
	}
	if strings.Count(lines[2], "#") != 0 {
		t.Errorf("zero bar wrong: %q", lines[2])
	}
	_ = Bars(nil, 0)
}
