// Package plot renders small ASCII charts for the experiment CLI:
// multi-row line charts for timelines (Fig. 2, Fig. 12) and horizontal
// bar charts for throughput comparisons (Fig. 11, ablations).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is a named sequence of (x, y) samples.
type Series struct {
	Name string
	X, Y []float64
}

// Line renders one or more series as a height-row ASCII chart with a
// y-axis in [0, yMax] (yMax <= 0 autoscales) and width columns. Each
// series gets its own glyph.
func Line(series []Series, width, height int, yMax float64) string {
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	glyphs := []byte("*o+x#@")
	if yMax <= 0 {
		for _, s := range series {
			for _, y := range s.Y {
				if y > yMax {
					yMax = y
				}
			}
		}
		if yMax <= 0 {
			yMax = 1
		}
	}
	var xMax float64
	for _, s := range series {
		for _, x := range s.X {
			if x > xMax {
				xMax = x
			}
		}
	}
	if xMax <= 0 {
		xMax = 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for i := range s.X {
			col := int(s.X[i] / xMax * float64(width-1))
			row := height - 1 - int(math.Min(s.Y[i]/yMax, 1)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = g
			}
		}
	}

	var sb strings.Builder
	for r, line := range grid {
		label := "      "
		if r == 0 {
			label = fmt.Sprintf("%5.2f ", yMax)
		} else if r == height-1 {
			label = fmt.Sprintf("%5.2f ", 0.0)
		}
		sb.WriteString(label)
		sb.WriteString("|")
		sb.Write(line)
		sb.WriteString("\n")
	}
	sb.WriteString("      +" + strings.Repeat("-", width) + fmt.Sprintf(" x<=%.1f\n", xMax))
	for si, s := range series {
		sb.WriteString(fmt.Sprintf("      %c %s\n", glyphs[si%len(glyphs)], s.Name))
	}
	return sb.String()
}

// Bar is one horizontal bar.
type Bar struct {
	Label string
	Value float64
}

// Bars renders a horizontal bar chart scaled to the maximum value.
func Bars(bars []Bar, width int) string {
	if width < 8 {
		width = 8
	}
	var max float64
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	if max <= 0 {
		max = 1
	}
	var sb strings.Builder
	for _, b := range bars {
		n := int(b.Value / max * float64(width))
		if n < 0 {
			n = 0
		}
		sb.WriteString(fmt.Sprintf("%-*s %s %.0f\n", labelW, b.Label, strings.Repeat("#", n), b.Value))
	}
	return sb.String()
}
