package core
