package core

import (
	"testing"
	"testing/quick"
)

func TestFuturePointGrid(t *testing.T) {
	s := newUsageSim(32, 1024)
	if len(s.points) != 32 {
		t.Fatalf("%d future points, want 32 (32..1024 step 32)", len(s.points))
	}
	if s.points[0] != 32 || s.points[31] != 1024 {
		t.Errorf("grid = [%d..%d]", s.points[0], s.points[31])
	}
}

// Algorithm 1's UpdateUsage: a request with context in and predicted
// remaining output out adds in+fp tokens at every futurePoint fp <= out.
func TestUpdateUsageMatchesAlgorithm1(t *testing.T) {
	s := newUsageSim(32, 1024)
	s.UpdateUsage(100, 70) // alive at fp=32 and fp=64 only
	want := map[int]int{32: 132, 64: 164, 96: 0}
	for i, fp := range s.points {
		if w, ok := want[fp]; ok && s.usage[i] != w {
			t.Errorf("usage[fp=%d] = %d, want %d", fp, s.usage[i], w)
		}
	}
	if got := s.MaxUsage(); got != 164 {
		t.Errorf("max usage = %d, want 164", got)
	}
}

func TestUsageAccumulatesAcrossRequests(t *testing.T) {
	s := newUsageSim(32, 256)
	s.UpdateUsage(50, 100)
	s.UpdateUsage(60, 40)
	// At fp=32 both alive: (50+32)+(60+32) = 174.
	if s.usage[0] != 174 {
		t.Errorf("usage[32] = %d, want 174", s.usage[0])
	}
	// At fp=64 only the first: 50+64 = 114.
	if s.usage[1] != 114 {
		t.Errorf("usage[64] = %d, want 114", s.usage[1])
	}
}

func TestShouldSwitchThreshold(t *testing.T) {
	s := newUsageSim(32, 64)
	s.UpdateUsage(100, 64)
	// Max usage is 164 at fp=64.
	if s.ShouldSwitch(200) {
		t.Error("switched below capacity")
	}
	if !s.ShouldSwitch(163) {
		t.Error("did not switch above capacity")
	}
}

func TestResetClearsUsage(t *testing.T) {
	s := newUsageSim(32, 128)
	s.UpdateUsage(10, 128)
	s.Reset()
	if s.MaxUsage() != 0 {
		t.Errorf("usage after reset = %d", s.MaxUsage())
	}
}

func TestZeroRemainingContributesNothing(t *testing.T) {
	s := newUsageSim(32, 128)
	s.UpdateUsage(500, 0) // predicted to finish before the first point
	if s.MaxUsage() != 0 {
		t.Errorf("finished request contributes %d", s.MaxUsage())
	}
	s.UpdateUsage(500, 31) // also before the first point
	if s.MaxUsage() != 0 {
		t.Errorf("sub-stride request contributes %d", s.MaxUsage())
	}
}

// Property: usage at every point is nonnegative and monotone under
// updates; max usage never decreases as requests are added.
func TestUsageMonotoneProperty(t *testing.T) {
	prop := func(adds []uint16) bool {
		s := newUsageSim(32, 512)
		prevMax := 0
		for _, a := range adds {
			ctx := int(a%1000) + 1
			rem := int(a/16) % 600
			s.UpdateUsage(ctx, rem)
			m := s.MaxUsage()
			if m < prevMax {
				return false
			}
			prevMax = m
			for _, u := range s.usage {
				if u < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
