package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/runtime"
	"repro/internal/workload"
)

// The determinism regression suite: the hot-path machinery (pooled
// events, direct transport, scratch-buffer reuse) must not perturb a
// single bit of the report. Each test serializes the full
// metrics.Report to JSON and compares bytes.

// detTraces returns the trace shapes the suite runs: offline batch,
// open-loop arrivals, and a prefix-structured trace under memory
// pressure (evictions + recompute + shared KV all exercised).
func detTraces(t *testing.T) map[string][]workload.Request {
	t.Helper()
	offline := smallTrace(150, 11)
	arrivals := workload.StampArrivals(smallTrace(150, 12), workload.Poisson{Rate: 400}, 5)
	prefixed, err := workload.StampPrefixes(smallTrace(150, 13), workload.PrefixConfig{
		Groups: 6, PrefixLen: 96, Turns: 3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string][]workload.Request{
		"offline":  offline,
		"arrivals": arrivals,
		"prefixed": prefixed,
	}
}

func detConfig(world int) Config {
	cfg := fastConfig(world)
	// Low memory forces multiple phases and recompute evictions.
	cfg.MemUtilization = 0.001
	return cfg
}

func reportJSON(t *testing.T, cfg Config, reqs []workload.Request) []byte {
	t.Helper()
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res.Report)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Same seed, two runs: byte-identical reports.
func TestReportByteIdenticalAcrossRuns(t *testing.T) {
	for name, reqs := range detTraces(t) {
		t.Run(name, func(t *testing.T) {
			a := reportJSON(t, detConfig(4), reqs)
			b := reportJSON(t, detConfig(4), reqs)
			if !bytes.Equal(a, b) {
				t.Errorf("reports differ across identical runs:\n%s\n%s", a, b)
			}
		})
	}
}

// The zero-roundtrip direct transport and the goroutine-mailbox
// transport must produce byte-identical reports.
func TestReportByteIdenticalAcrossTransports(t *testing.T) {
	for name, reqs := range detTraces(t) {
		t.Run(name, func(t *testing.T) {
			direct := detConfig(4)
			direct.Transport = runtime.TransportDirect
			mailbox := detConfig(4)
			mailbox.Transport = runtime.TransportMailbox
			a := reportJSON(t, direct, reqs)
			b := reportJSON(t, mailbox, reqs)
			if !bytes.Equal(a, b) {
				t.Errorf("direct vs mailbox reports differ:\n%s\n%s", a, b)
			}
		})
	}
}

// Scratch-slice reuse on vs off: recycling per-iteration buffers must
// be invisible in the results.
func TestReportByteIdenticalScratchReuse(t *testing.T) {
	for name, reqs := range detTraces(t) {
		t.Run(name, func(t *testing.T) {
			on := reportJSON(t, detConfig(4), reqs)
			scratchReuse = false
			defer func() { scratchReuse = true }()
			off := reportJSON(t, detConfig(4), reqs)
			if !bytes.Equal(on, off) {
				t.Errorf("scratch reuse on vs off reports differ:\n%s\n%s", on, off)
			}
		})
	}
}

// The per-request records (arrival, first token, finish) must match as
// exactly as the aggregate report across transports.
func TestRecordsIdenticalAcrossTransports(t *testing.T) {
	reqs := detTraces(t)["arrivals"]
	direct := detConfig(2)
	mailbox := detConfig(2)
	mailbox.Transport = runtime.TransportMailbox
	a, err := Run(direct, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mailbox, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Records[i], b.Records[i])
		}
	}
}
