package core

// Stealer implements Approach 2, inter-batch work stealing (§3.4).
//
// The scheduler can observe the true size of at most one decode batch
// at a time (the one that just returned), so balancing uses a sliding
// window over the most recent known size of each batch: when a batch
// returns, finished requests are removed, the window is updated, and
// the batch is compared with the window average. Surplus requests are
// withheld into a stash; deficits are topped up from the stash on later
// submissions. Figure 9's example replays exactly through this type.
type Stealer struct {
	// window[slot] is the most recent known size of each batch.
	window []int
	// stash holds withheld request ids awaiting redistribution.
	stash []int
	// enabled mirrors the Fig.-15 ablation toggle.
	enabled bool
}

// NewStealer tracks slots decode batches. If enabled is false,
// Rebalance passes batches through untouched (the "wo" ablation).
func NewStealer(slots int, enabled bool) *Stealer {
	return &Stealer{window: make([]int, slots), enabled: enabled}
}

// Prime records the initial submitted sizes.
func (s *Stealer) Prime(sizes []int) {
	copy(s.window, sizes)
}

// StashLen returns the number of withheld requests.
func (s *Stealer) StashLen() int { return len(s.stash) }

// DrainStash removes and returns all withheld requests (used when the
// decode phase ends so no request is stranded).
func (s *Stealer) DrainStash() []int {
	out := s.stash
	s.stash = nil
	return out
}

// average returns the sliding-window mean, rounded to nearest. Stashed
// requests are part of the balancing target: counting them keeps the
// stash draining instead of idling requests across rounds.
func (s *Stealer) average() int {
	sum := len(s.stash)
	for _, v := range s.window {
		sum += v
	}
	return (sum + len(s.window)/2) / len(s.window)
}

// Rebalance processes batch (already stripped of finished requests)
// returning from slot and returns the ids to resubmit: the window entry
// is refreshed, surplus beyond the window average is withheld, and
// deficits are supplemented from the stash. The returned slice is the
// batch to submit for the next decode step.
func (s *Stealer) Rebalance(slot int, batch []int) []int {
	if !s.enabled {
		s.window[slot] = len(batch)
		return batch
	}
	s.window[slot] = len(batch)
	avg := s.average()
	// Withholding a request costs it one idle round, so steal only
	// when the surplus is material (beyond avg/32); top deficits up eagerly.
	tol := avg / 32
	if tol < 1 {
		tol = 1
	}
	switch {
	case len(batch) > avg+tol:
		surplus := len(batch) - avg
		s.stash = append(s.stash, batch[len(batch)-surplus:]...)
		batch = batch[:len(batch)-surplus]
	case len(batch) < avg && len(s.stash) > 0:
		take := avg - len(batch)
		if take > len(s.stash) {
			take = len(s.stash)
		}
		batch = append(batch, s.stash[len(s.stash)-take:]...)
		s.stash = s.stash[:len(s.stash)-take]
	}
	s.window[slot] = len(batch)
	return batch
}

// Remove drops an id from the stash if present (used when a stashed
// request is evicted for recomputation).
func (s *Stealer) Remove(id int) bool {
	for i, v := range s.stash {
		if v == id {
			s.stash = append(s.stash[:i], s.stash[i+1:]...)
			return true
		}
	}
	return false
}
