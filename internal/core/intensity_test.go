package core

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/model"
)

func newIntensity(t *testing.T) *Intensity {
	t.Helper()
	cm, err := costmodel.New(hw.A100, model.Llama2_70B)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := model.Partition(model.Llama2_70B, 4)
	if err != nil {
		t.Fatal(err)
	}
	return NewIntensity(cm, plan, 512)
}

func TestSpatialIntensityRisesWithBatch(t *testing.T) {
	x := newIntensity(t)
	prev := 0.0
	for _, b := range []int{8, 32, 128, 512} {
		si := x.Spatial(b, 400, 0)
		if si < prev {
			t.Errorf("SI(%d) = %v below SI of smaller batch %v", b, si, prev)
		}
		if si < 0 || si > 1 {
			t.Errorf("SI(%d) = %v out of range", b, si)
		}
		prev = si
	}
	if got := x.Spatial(512, 400, 0); got != 1 {
		t.Errorf("SI at peak batch = %v, want 1", got)
	}
	if got := x.Spatial(0, 400, 0); got != 0 {
		t.Errorf("SI(0) = %v", got)
	}
}

func TestTemporalIntensityNoPendingMeansNoSwitch(t *testing.T) {
	x := newIntensity(t)
	if got := x.Temporal(nil, 0.05, 4); got != 0 {
		t.Errorf("TI with no pending prefills = %v, want 0", got)
	}
}

func TestTemporalIntensityRisesWithPendingWork(t *testing.T) {
	x := newIntensity(t)
	one := []costmodel.PrefillBatch{costmodel.NewPrefillBatch([]int{2048})}
	many := []costmodel.PrefillBatch{
		costmodel.NewPrefillBatch([]int{2048}),
		costmodel.NewPrefillBatch([]int{2048}),
		costmodel.NewPrefillBatch([]int{2048}),
		costmodel.NewPrefillBatch([]int{2048}),
	}
	decodeStep := 0.01 // short decode step -> visible bubble
	tiOne := x.Temporal(one, decodeStep, 4)
	tiMany := x.Temporal(many, decodeStep, 4)
	if tiMany <= tiOne {
		t.Errorf("TI(many)=%v not above TI(one)=%v: more pending work amortizes the bubble", tiMany, tiOne)
	}
	if tiOne < 0 || tiOne > 1 || tiMany < 0 || tiMany > 1 {
		t.Errorf("TI out of range: %v %v", tiOne, tiMany)
	}
}

func TestTemporalIntensityBubbleAbsorbedByLongDecode(t *testing.T) {
	x := newIntensity(t)
	pending := []costmodel.PrefillBatch{costmodel.NewPrefillBatch([]int{2048})}
	longDecode := x.cm.PrefillBottleneck(x.plan, pending[0]) * 2
	if got := x.Temporal(pending, longDecode, 4); got != 1 {
		t.Errorf("TI with decode longer than prefill = %v, want 1 (no bubble)", got)
	}
}

func TestShouldSwitchRule(t *testing.T) {
	x := newIntensity(t)
	if !x.ShouldSwitch(0.4, 0.9) {
		t.Error("SI < TI must switch")
	}
	if x.ShouldSwitch(0.9, 0.4) {
		t.Error("SI > TI must not switch")
	}
}

// The crossover dynamic of §3.5: early in the decode phase (large
// batches, no free memory) the engine must keep decoding; late (small
// batches, plenty of freed memory) it must switch.
func TestIntensityCrossover(t *testing.T) {
	x := newIntensity(t)
	pendingLate := []costmodel.PrefillBatch{
		costmodel.NewPrefillBatch([]int{2048}),
		costmodel.NewPrefillBatch([]int{2048}),
		costmodel.NewPrefillBatch([]int{2048}),
	}
	// Early: batch 400 per slot, memory full -> no pending prefills.
	siEarly := x.Spatial(400, 500, 400)
	tiEarly := x.Temporal(nil, x.cm.DecodeBottleneck(x.plan, 400, 400*500), 4)
	if x.ShouldSwitch(siEarly, tiEarly) {
		t.Errorf("switched early: SI=%v TI=%v", siEarly, tiEarly)
	}
	// Late: batch 24 per slot, lots of pending work.
	siLate := x.Spatial(24, 700, 400)
	tiLate := x.Temporal(pendingLate, x.cm.DecodeBottleneck(x.plan, 24, 24*700), 4)
	if !x.ShouldSwitch(siLate, tiLate) {
		t.Errorf("did not switch late: SI=%v TI=%v", siLate, tiLate)
	}
}
