package core

import (
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// crashHarness drives one online engine with a scheduled mid-run crash.
type crashHarness struct {
	t       *testing.T
	eng     *sim.Engine
	e       *Engine
	lost    []Lost
	restart sim.Time
	// resubmit, when set, handles each Lost at restore time.
	resubmit func(l Lost)
}

func crashEventCB(ctx any, _, _ int) {
	h := ctx.(*crashHarness)
	lost, err := h.e.Crash(h.restart)
	if err != nil {
		h.t.Fatalf("Crash: %v", err)
	}
	h.lost = lost
}

func restoreEventCB(ctx any, _, _ int) {
	h := ctx.(*crashHarness)
	if err := h.e.Restore(); err != nil {
		h.t.Fatalf("Restore: %v", err)
	}
	if h.resubmit != nil {
		for _, l := range h.lost {
			h.resubmit(l)
		}
	}
}

// A crash mid-run aborts every in-flight request; re-submitting them
// after restore completes all of them, and the fault accounting in the
// report lines up: finished + aborted covers every submission, nothing
// is double-finished.
func TestCrashAbortsAndRecompute(t *testing.T) {
	eng := sim.NewEngine()
	e, err := NewEngine(eng, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartOnline(); err != nil {
		t.Fatal(err)
	}
	reqs := smallTrace(80, 11)
	for _, r := range reqs {
		if _, err := e.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	h := &crashHarness{t: t, eng: eng, e: e, restart: 0.05}
	recovered := 0
	h.resubmit = func(l Lost) {
		if l.Ckpt != nil {
			t.Fatalf("checkpoint without CheckpointInterval: %+v", l.Ckpt)
		}
		if _, err := e.SubmitRecovered(l.Req, l.Generated, l.FirstTokenAt); err != nil {
			t.Fatalf("SubmitRecovered: %v", err)
		}
		recovered++
	}
	eng.AtFunc(0.02, crashEventCB, h, 0, 0)
	eng.AtFunc(0.05, restoreEventCB, h, 0, 0)
	eng.Run()
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.lost) == 0 {
		t.Fatal("crash aborted nothing; pick an earlier instant")
	}
	if recovered != len(h.lost) {
		t.Fatalf("recovered %d of %d lost", recovered, len(h.lost))
	}
	f := res.Report.Faults
	if f.Crashes != 1 || f.AbortedRequests != len(h.lost) {
		t.Fatalf("fault stats %+v, want 1 crash / %d aborted", f, len(h.lost))
	}
	// Every original + every resubmission is a state; finished must be
	// exactly the non-aborted ones.
	if want := len(reqs) + recovered; res.Report.Requests != want-len(h.lost) {
		t.Fatalf("finished %d, want %d", res.Report.Requests, want-len(h.lost))
	}
	// Aborted locals carry unfinished zero records; recovered copies
	// must all have finished.
	aborted := make(map[int]bool, len(h.lost))
	for _, l := range h.lost {
		aborted[l.Local] = true
	}
	for id, rec := range res.Records {
		if aborted[id] {
			if rec.Finished() {
				t.Fatalf("aborted request %d has a finished record %+v", id, rec)
			}
		} else if !rec.Finished() {
			t.Fatalf("request %d unfinished: %+v", id, rec)
		}
	}
	if e.Crashes() != 1 {
		t.Fatalf("Crashes() = %d", e.Crashes())
	}
}

// Dead engines accept nothing; Restore reopens them. Crash/Restore
// reject nonsensical transitions.
func TestCrashLifecycleGuards(t *testing.T) {
	eng := sim.NewEngine()
	e, err := NewEngine(eng, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if _, err := e.Crash(0); err == nil {
		t.Fatal("Crash before StartOnline accepted")
	}
	if err := e.StartOnline(); err != nil {
		t.Fatal(err)
	}
	if err := e.Restore(); err == nil {
		t.Fatal("Restore of a live engine accepted")
	}
	if !e.Alive() {
		t.Fatal("started engine not alive")
	}
	if _, err := e.Crash(0); err != nil {
		t.Fatal(err)
	}
	if e.Alive() {
		t.Fatal("crashed engine still alive")
	}
	r := smallTrace(1, 1)[0]
	if _, err := e.Submit(r); err == nil {
		t.Fatal("dead engine accepted Submit")
	}
	if _, err := e.SubmitRecovered(r, 0, 0); err == nil {
		t.Fatal("dead engine accepted SubmitRecovered")
	}
	if _, err := e.Crash(0); err == nil {
		t.Fatal("double crash accepted")
	}
	if err := e.Restore(); err != nil {
		t.Fatal(err)
	}
	if !e.Alive() {
		t.Fatal("restored engine not alive")
	}
	if _, err := e.Submit(r); err != nil {
		t.Fatalf("restored engine rejected Submit: %v", err)
	}
	eng.Run()
	if _, err := e.Finalize(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitRecoveredValidation(t *testing.T) {
	eng := sim.NewEngine()
	e, err := NewEngine(eng, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if err := e.StartOnline(); err != nil {
		t.Fatal(err)
	}
	r := smallTrace(1, 2)[0]
	r.OutputLen = 8
	if _, err := e.SubmitRecovered(r, -1, 0); err == nil {
		t.Fatal("negative generated accepted")
	}
	if _, err := e.SubmitRecovered(r, 8, 0); err == nil {
		t.Fatal("generated == OutputLen accepted (nothing left to do)")
	}
	big := r
	big.InputLen = e.CapacityTokens() + 1
	if _, err := e.Submit(big); !errors.Is(err, ErrRequestTooLarge) {
		t.Fatalf("oversized Submit error = %v, want ErrRequestTooLarge", err)
	}
	if _, err := e.SubmitRecovered(big, 0, 0); !errors.Is(err, ErrRequestTooLarge) {
		t.Fatalf("oversized SubmitRecovered error = %v, want ErrRequestTooLarge", err)
	}
}

// The documented replacement for the old "core: stalled" panic: a
// request whose decode-plane peak can never fit is refused at submit
// time with ErrRequestTooLarge instead of crash-looping the phase
// machine later.
func TestOversizedRequestRejectedUpfront(t *testing.T) {
	cfg := fastConfig(2)
	reqs := smallTrace(4, 9)
	eng := sim.NewEngine()
	e, err := NewEngine(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if err := e.StartOnline(); err != nil {
		t.Fatal(err)
	}
	huge := reqs[0]
	huge.InputLen = 64
	huge.OutputLen = e.CapacityTokens() + 64
	_, err = e.Submit(huge)
	if !errors.Is(err, ErrRequestTooLarge) {
		t.Fatalf("err = %v, want ErrRequestTooLarge", err)
	}
	// The engine stays usable for sane requests afterwards.
	for _, r := range reqs {
		if _, err := e.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != len(reqs) {
		t.Fatalf("finished %d of %d", res.Report.Requests, len(reqs))
	}
}

// With a checkpoint cadence, crashes hand back checkpoints whose replay
// through SubmitDecoded resumes generation: the resumed requests finish
// with their original arrival and first-token instants intact.
func TestCheckpointResumeAfterCrash(t *testing.T) {
	cfg := fastConfig(2)
	cfg.CheckpointInterval = 0.005
	eng := sim.NewEngine()
	e, err := NewEngine(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartOnline(); err != nil {
		t.Fatal(err)
	}
	// A second, independent engine stands in for the live replica the
	// checkpoint is replayed on.
	spare, err := NewEngine(eng, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := spare.StartOnline(); err != nil {
		t.Fatal(err)
	}
	reqs := smallTrace(80, 13)
	for _, r := range reqs {
		if _, err := e.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	h := &crashHarness{t: t, eng: eng, e: e, restart: 0.08}
	resumed := 0
	h.resubmit = func(l Lost) {
		if l.Ckpt == nil {
			// Crashed before its first checkpoint: recompute instead.
			if _, err := e.SubmitRecovered(l.Req, l.Generated, l.FirstTokenAt); err != nil {
				t.Fatalf("SubmitRecovered: %v", err)
			}
			return
		}
		ck := l.Ckpt
		if ck.Generated <= 0 || ck.Generated > l.Generated {
			t.Fatalf("checkpoint generated %d, lost generated %d", ck.Generated, l.Generated)
		}
		if !spare.CanImportKV(ck.KV) {
			t.Fatalf("spare cannot import checkpoint of %d blocks", ck.KV.Blocks())
		}
		if _, err := spare.SubmitDecoded(l.Req, Handoff{
			Local:        -1,
			Req:          l.Req,
			KV:           ck.KV,
			Generated:    ck.Generated,
			FirstTokenAt: ck.FirstTokenAt,
			At:           eng.Now(),
		}); err != nil {
			t.Fatalf("SubmitDecoded: %v", err)
		}
		resumed++
	}
	// Crash late enough for a few checkpoint rounds to have happened.
	eng.AtFunc(0.03, crashEventCB, h, 0, 0)
	eng.AtFunc(0.08, restoreEventCB, h, 0, 0)
	eng.Run()
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	spareRes, err := spare.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Faults.Checkpoints == 0 {
		t.Fatal("no checkpoint rounds before the crash")
	}
	if resumed == 0 {
		t.Fatal("no request resumed from a checkpoint; crash later or checkpoint more often")
	}
	if got := spareRes.Report.Requests; got != resumed {
		t.Fatalf("spare finished %d of %d resumed", got, resumed)
	}
	for _, rec := range spareRes.Records {
		if !rec.Finished() {
			t.Fatalf("resumed request unfinished: %+v", rec)
		}
	}
	// Totals: originals - aborted finished on e, plus recomputes there,
	// plus checkpoint resumes on the spare.
	totalFinished := res.Report.Requests + spareRes.Report.Requests
	if want := len(reqs) + (len(h.lost) - resumed); totalFinished != want {
		t.Fatalf("finished %d across engines, want %d", totalFinished, want)
	}
}

// Checkpointing alone (no crash) must not change what completes — only
// add stall time.
func TestCheckpointCadenceCompletesEverything(t *testing.T) {
	reqs := workload.StampArrivals(smallTrace(60, 17), workload.Poisson{Rate: 200}, 5)
	base, err := Run(fastConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(2)
	cfg.CheckpointInterval = 0.1
	ck, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Report.Requests != len(reqs) {
		t.Fatalf("finished %d of %d with checkpointing", ck.Report.Requests, len(reqs))
	}
	if ck.Report.Faults.Checkpoints == 0 {
		t.Fatal("no checkpoints taken")
	}
	if ck.Report.OutputTokens != base.Report.OutputTokens {
		t.Fatalf("output tokens changed: %d vs %d", ck.Report.OutputTokens, base.Report.OutputTokens)
	}
	if ck.Report.Elapsed < base.Report.Elapsed {
		t.Fatalf("checkpointing made the run faster: %v < %v", ck.Report.Elapsed, base.Report.Elapsed)
	}
}

// A straggler engine (Slowdown > 1) finishes the same work, slower;
// Slowdown == 1 is bit-identical to nominal.
func TestSlowdownStretchesElapsed(t *testing.T) {
	reqs := smallTrace(60, 19)
	base, err := Run(fastConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	one := fastConfig(2)
	one.Slowdown = 1
	same, err := Run(one, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if same.Report != base.Report {
		t.Errorf("Slowdown=1 changed the report:\n%+v\n%+v", same.Report, base.Report)
	}
	slow := fastConfig(2)
	slow.Slowdown = 1.5
	st, err := Run(slow, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Report.Requests != len(reqs) {
		t.Fatalf("straggler finished %d of %d", st.Report.Requests, len(reqs))
	}
	if st.Report.Elapsed <= base.Report.Elapsed {
		t.Fatalf("Slowdown=1.5 not slower: %v vs %v", st.Report.Elapsed, base.Report.Elapsed)
	}
}
