package core

import "repro/internal/sim"

// Now returns the engine's current virtual time. Routers use it to
// timestamp policy decisions (breaker transitions, autoscale spans)
// from inside finish hooks and control events.
func (e *Engine) Now() sim.Time { return e.eng.Now() }

// RequestTTFT returns the time-to-first-token of a request by local id,
// and whether a first token has been produced yet. Recompute evictions
// and crash recoveries keep the original first-token instant, so the
// value spans the request's whole lifecycle.
func (e *Engine) RequestTTFT(id int) (float64, bool) {
	if id < 0 || id >= len(e.states) {
		return 0, false
	}
	st := e.states[id]
	if st.generated <= 0 && !st.done {
		return 0, false
	}
	return float64(st.firstTokenAt - st.arrival), true
}

// PreemptLowPriority evicts resident requests whose workload priority
// tier is minPrio or below-importance (Priority >= minPrio) until at
// least needTokens of KV headroom open up, most recent admissions
// first. Victims take the eviction-recompute path — cache freed,
// generated tokens kept, requeued at the back of the waiting queue for
// a fresh prefill over input+generated tokens — so a high-priority
// arrival submitted just before this call stays ahead of them. Returns
// the evicted local ids (empty when nothing evictable was resident or
// headroom already sufficed).
func (e *Engine) PreemptLowPriority(minPrio, needTokens int) []int {
	if !e.running || e.dead {
		return nil
	}
	if e.FreeKVTokens() >= needTokens {
		return nil
	}
	var victims []int
	for id := len(e.states) - 1; id >= 0; id-- {
		st := e.states[id]
		if st.done || st.evicted || st.aborted || st.req.Priority < minPrio || !e.kv.Has(id) {
			continue
		}
		st.evicted = true
		st.launch = 0 // void any in-flight prefill for this request
		st.recomputes++
		e.recomputes++
		st.prefillLen = st.req.InputLen + st.generated
		st.ctx = 0
		st.cached = 0
		e.kv.Free(id)
		e.stealer.Remove(id)
		e.removeImported(id)
		e.waiting.PushBack(id)
		victims = append(victims, id)
		if e.FreeKVTokens() >= needTokens {
			break
		}
	}
	return victims
}
