package core

import (
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

// Property: for any seed and any predictor quality, TD-Pipe completes
// every request with exactly its output length generated, never loses a
// request to eviction, and produces monotonically consistent reports.
func TestEngineConservationProperty(t *testing.T) {
	prop := func(seed int64, mispredict bool) bool {
		cfg := workload.DefaultConfig(60, seed)
		cfg.MaxInputLen = 127
		cfg.MaxOutputLen = 64
		cfg.InputLogMean = 3.5
		reqs := workload.MustGenerate(cfg)

		ecfg := fastConfig(4)
		ecfg.MemUtilization = 0.0001 // force multiple phases + evictions
		if mispredict {
			ecfg.Predictor = ConstPredictor(1)
		}
		res, err := Run(ecfg, reqs)
		if err != nil {
			return false
		}
		wantOut := 0
		for _, r := range reqs {
			wantOut += r.OutputLen
		}
		if res.Report.OutputTokens != wantOut || res.Report.Requests != len(reqs) {
			return false
		}
		for _, ft := range res.Finished {
			if ft <= 0 {
				return false
			}
		}
		u := res.Report.MeanUtilization
		return res.Report.Elapsed > 0 && u > 0 && u <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: finish times are consistent with the virtual clock — no
// request finishes after the run's elapsed time.
func TestFinishTimesWithinElapsed(t *testing.T) {
	reqs := smallTrace(150, 77)
	res, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for id, ft := range res.Finished {
		if float64(ft) > res.Report.Elapsed+1e-9 {
			t.Fatalf("request %d finished at %v after elapsed %v", id, ft, res.Report.Elapsed)
		}
	}
}

// The engine must behave identically with a classifier predictor and
// with constants in terms of *correctness* (only performance differs).
func TestPredictorQualityDoesNotAffectCorrectness(t *testing.T) {
	reqs := smallTrace(200, 91)
	wantOut := 0
	for _, r := range reqs {
		wantOut += r.OutputLen
	}
	for _, p := range []LenPredictor{OraclePredictor{}, ConstPredictor(1), ConstPredictor(10000)} {
		cfg := fastConfig(4)
		cfg.MemUtilization = 0.0001
		cfg.Predictor = p
		res, err := Run(cfg, reqs)
		if err != nil {
			t.Fatalf("%T: %v", p, err)
		}
		if res.Report.OutputTokens != wantOut {
			t.Errorf("%T: output = %d, want %d", p, res.Report.OutputTokens, wantOut)
		}
	}
}

// Extreme over-prediction makes the greedy prefill maximally cautious;
// it must still make progress (one batch per cycle at worst).
func TestOverpredictionStillProgresses(t *testing.T) {
	cfg := fastConfig(2)
	cfg.Predictor = ConstPredictor(1 << 20)
	reqs := smallTrace(50, 13)
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != 50 {
		t.Errorf("report = %v", res.Report)
	}
}
