package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/deque"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/workload"
)

// ErrRequestTooLarge rejects a request at submission because its KV
// footprint can never fit the engine's pool: even with every other
// request evicted, the decode plane would OOM-loop on it forever (the
// old behavior was a crash-looping "core: stalled" panic deep in the
// phase machine). Callers distinguish it with errors.Is to drop the
// request with a reason instead of failing the run.
var ErrRequestTooLarge = errors.New("request KV footprint exceeds engine capacity")

// scratchReuse gates the recycling of per-iteration scratch buffers
// (prefill id/len slices, decode batch slices, the decode pool, pack
// previews). It is always on in production; the determinism regression
// suite turns it off to prove buffer reuse does not change results.
var scratchReuse = true

// reqState tracks one request through the engine.
type reqState struct {
	req       workload.Request
	predicted int
	// ctx is the number of tokens currently cached.
	ctx int
	// generated is the number of output tokens produced so far.
	generated int
	// prefillLen is how many tokens the next prefill must process
	// (input plus any tokens generated before an eviction).
	prefillLen int
	// cached is how many leading tokens of the last allocation were
	// served from shared prefix blocks — prefill work skipped, and KV
	// this request references but did not pay for.
	cached     int
	done       bool
	evicted    bool
	recomputes int
	// launch identifies the prefill batch that most recently packed
	// this request. A request evicted while its prefill pass is still
	// in flight can be re-launched in a second pass before the first
	// completes; the stale completion sees a newer launch id and is
	// ignored, so the request is never processed twice.
	launch uint64
	// arrival is when the request entered the system; the engine never
	// schedules it before this instant.
	arrival sim.Time
	// firstTokenAt is when the first output token was produced
	// (recompute evictions keep the original first-token time).
	firstTokenAt sim.Time
	finishedAt   sim.Time
	// aborted marks a request lost to a crash: it stays in states for
	// record-keeping (its record is unfinished) but no longer counts
	// toward completion. Routers re-dispatch it elsewhere.
	aborted bool
	// ckpt is the latest periodic KV checkpoint of this request (nil
	// until the first checkpoint round catches it resident).
	ckpt *Checkpoint
}

func (s *reqState) remainingPredicted() int {
	rem := s.predicted - s.generated
	if rem < 0 {
		rem = 0
	}
	return rem
}

// Result is the outcome of a TD-Pipe run.
type Result struct {
	Report metrics.Report
	// Rec holds per-GPU busy intervals for utilization analysis.
	Rec *metrics.Recorder
	// KV is the Fig.-12 usage timeline (nil unless Config.RecordKV).
	KV *metrics.KVTimeline
	// Finished lists per-request completion times by request ID.
	Finished []sim.Time
	// Records holds per-request lifecycle timestamps (arrival, first
	// token, finish) by request ID; Report.Latency digests them.
	Records []metrics.RequestRecord
	// Steps is the number of simulation events processed by the run's
	// engine (the shared engine's total for co-simulated fleets);
	// divided by wall-clock time it gives the kernel's steps/sec.
	Steps uint64
}

// Engine is the TD-Pipe centralized engine bound to one simulation.
type Engine struct {
	cfg     Config
	eng     *sim.Engine
	cluster *runtime.Cluster
	kv      *kvcache.Manager
	usage   *usageSim
	inten   *Intensity
	stealer *Stealer

	capacityTokens int

	states  []*reqState
	waiting deque.Int

	phase      metrics.Phase
	everPhased bool

	// Prefill-phase state.
	inflight int
	// launchSeq numbers prefill batches; see reqState.launch.
	launchSeq uint64
	// decodePool holds ids that are resident and waiting for the next
	// decode phase.
	decodePool []int

	// Decode-phase state.
	batches        [][]int
	activeBatches  int
	numSlots       int
	switchToPrefil bool
	decodeInitial  int
	decodeFinished int
	// imported stages SubmitDecoded admissions that arrived while a
	// phase was active: a dedicated decode server cannot wait for the
	// whole phase to drain, so staged requests are injected into a
	// running decode batch at the next step boundary (continuous
	// batching). Always empty in colocated deployments.
	imported []int

	step       int
	kvTimeline *metrics.KVTimeline
	// prefixCached sums prompt tokens whose prefill was skipped via
	// shared-prefix KV hits.
	prefixCached int
	recomputes   int
	switches     int
	finished     int
	doneAt       sim.Time
	running      bool

	// pendingArrivals counts requests whose arrival event has not fired
	// yet; while it is positive the engine may legitimately go idle.
	pendingArrivals int
	// idle is true when both planes are drained and the engine is
	// waiting for the next arrival; the arrival kicks a prefill phase.
	idle bool
	// shutdown guards cluster release across Run, Finalize and error
	// paths.
	shutdown bool

	// Fault-injection lifecycle state. epoch counts crash/restore
	// cycles; every scheduled event and pass completion carries the
	// epoch that issued it and is discarded when stale, so work in
	// flight at a crash cannot touch the restarted engine. dead is true
	// between Crash and Restore (no work is accepted); aborted counts
	// requests lost to crashes (Finalize's balance becomes finished +
	// aborted == submitted). fatalErr parks the engine on an internal
	// error instead of panicking inside the shared event loop; Finalize
	// surfaces it.
	epoch    int
	dead     bool
	aborted  int
	fatalErr error
	crashes  int
	// restartAt is the instant the last crash's downtime ends; Restore
	// before it is a lifecycle bug (the GPUs are still stalled
	// reloading weights) and is rejected.
	restartAt sim.Time

	// Checkpoint cadence state (Config.CheckpointInterval).
	ckptScheduled    bool
	checkpoints      int
	checkpointBytes  float64
	lostOutputTokens int

	// onFinish, when set, is invoked synchronously as each request
	// completes — the O(1) load-tracking hook online routers use
	// instead of rescanning outstanding requests.
	onFinish func(id int)

	// handoff, when set, turns the engine into the prefill half of a
	// disaggregated deployment: each request that completes prefill
	// with output still to generate has its KV exported and is handed
	// to this hook instead of entering the local decode pool. Requests
	// that finish at prefill (single-token outputs) complete locally.
	handoff func(Handoff)

	// Scratch buffers recycled across scheduler iterations when
	// scratchReuse is on: idsFree recycles prefill batch id slices
	// (returned by onPrefillDone), lensBuf the per-batch length
	// staging, sizesBuf the decode split sizes, packLens/packBatches
	// the pending-prefill preview, and decodeDone the per-slot
	// completion callbacks (bound once, not per step).
	idsFree     [][]int
	lensBuf     []int
	sizesBuf    []int
	packLens    []int
	packBatches []costmodel.PrefillBatch
	decodeDone  []func(runtime.PassResult)
}

// NewEngine validates the configuration, sizes the KV pool and builds
// the worker cluster.
func NewEngine(eng *sim.Engine, cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	capTokens, err := KVCapacityTokens(cfg)
	if err != nil {
		return nil, err
	}
	cluster, err := runtime.NewClusterTransport(eng, cfg.Node, cfg.Spec, cfg.World, cfg.Transport)
	if err != nil {
		return nil, err
	}
	// The byte-derived capacity is floor-aligned so the pool keeps the
	// exact block count it always had (NewManager now rounds up).
	kv, err := kvcache.NewManager(kvcache.AlignTokens(capTokens, cfg.BlockSize), cfg.BlockSize)
	if err != nil {
		cluster.Shutdown()
		return nil, err
	}
	if cfg.Slowdown > 0 {
		cluster.SetSlowdown(cfg.Slowdown)
	}
	e := &Engine{
		cfg:            cfg,
		eng:            eng,
		cluster:        cluster,
		kv:             kv,
		usage:          newUsageSim(cfg.FuturePointStride, cfg.FuturePointMax),
		inten:          NewIntensity(cluster.Cost, cluster.Plan, cfg.PeakProfileBatch),
		capacityTokens: capTokens,
		kvTimeline:     &metrics.KVTimeline{},
	}
	return e, nil
}

// CapacityTokens returns the engine's KV capacity in tokens.
func (e *Engine) CapacityTokens() int { return e.capacityTokens }

// SetOnFinish registers fn to be called with each request's local id
// the moment it completes, from inside the simulation's event context.
// Online routers use it to maintain incremental load counters. Call
// before the simulation runs; a nil fn disables the hook.
func (e *Engine) SetOnFinish(fn func(id int)) { e.onFinish = fn }

// Handoff describes a request leaving a prefill-only engine: its
// original request, the exported KV block window, and the generation
// state a decode engine needs to resume it via SubmitDecoded.
type Handoff struct {
	// Local is the request's id on the prefill engine.
	Local int
	// Req is the engine-local copy of the request (ID == Local); the
	// router maps it back to its trace position.
	Req workload.Request
	// KV is the exported block window to migrate.
	KV kvcache.ExportedSeq
	// Generated is how many output tokens prefill produced (1, unless
	// the request was recompute-prefilled after an eviction).
	Generated int
	// FirstTokenAt is when the first output token was produced.
	FirstTokenAt sim.Time
	// At is when the prefill pass completed — the instant the KV
	// transfer can start.
	At sim.Time
}

// SetHandoff registers fn as the prefill hand-off hook (see Handoff).
// Call before the simulation runs; a nil fn restores colocated
// behavior. The hook fires inside the simulation's event context,
// after the request is retired locally (finish hook included), so load
// counters are already settled when the router sees the hand-off.
func (e *Engine) SetHandoff(fn func(Handoff)) { e.handoff = fn }

// SubmitDecoded admits a request whose prefill completed on another
// engine: the exported KV is re-materialized in this engine's pool and
// the request joins the decode plane directly, skipping prefill. The
// caller is responsible for modeling the transfer delay (call at the
// transfer's completion instant) and for checking CanImportKV first; an
// import that does not fit is returned as an error, not queued. The
// request keeps its original arrival and first-token instants, so
// latency records span the whole disaggregated lifecycle. Checkpoint
// recovery reuses this entry point: a crash-lost request's periodic KV
// checkpoint replayed here resumes generation from the checkpointed
// token instead of re-prefilling.
func (e *Engine) SubmitDecoded(r workload.Request, h Handoff) (int, error) {
	if e.dead {
		return 0, fmt.Errorf("core: import on crashed engine")
	}
	if err := e.checkFits(r, h.KV.Tokens); err != nil {
		return 0, err
	}
	id := len(e.states)
	r.ID = id
	if _, err := e.kv.ImportKV(id, h.KV); err != nil {
		return 0, err
	}
	st := e.newState(r)
	st.ctx = h.KV.Tokens
	st.generated = h.Generated
	st.firstTokenAt = h.FirstTokenAt
	// Shared chain blocks are accounted once globally, like a prefix
	// hit: this request references them but did not pay for them here.
	st.cached = len(h.KV.Keys) * e.kv.BlockSize()
	e.states = append(e.states, st)
	if e.idle {
		e.decodePool = append(e.decodePool, id)
		e.idle = false
		e.startDecodePhase()
	} else {
		// A phase is running: stage the request for continuous
		// injection at the next decode step boundary (or the next
		// phase transition, whichever comes first).
		e.imported = append(e.imported, id)
	}
	return id, nil
}

// CanImportKV reports whether the exported sequence fits in this
// engine's KV pool right now (warm shared blocks count as reclaimable).
func (e *Engine) CanImportKV(ex kvcache.ExportedSeq) bool { return e.kv.CanImport(ex) }

// ResidentKVTokens returns how many tokens of the exported sequence's
// shared blocks are already resident here — KV a hand-off to this
// engine would not need to move, the decode-pool affinity signal.
func (e *Engine) ResidentKVTokens(ex kvcache.ExportedSeq) int {
	return e.kv.ResidentBlocks(ex) * e.kv.BlockSize()
}

// FreeKVTokens returns the KV headroom in tokens: free blocks plus
// warm shared blocks reclaimable under pressure.
func (e *Engine) FreeKVTokens() int { return e.kv.AvailableBlocks() * e.kv.BlockSize() }

// Run executes the full trace to completion in virtual time and returns
// the report. Requests with ArrivalTime > 0 are admitted only once the
// virtual clock reaches their arrival; a trace of all-zero arrivals
// reproduces the offline-batch behavior exactly. It may be called once
// per engine.
func (e *Engine) Run(reqs []workload.Request) (*Result, error) {
	if err := e.Start(reqs); err != nil {
		e.Shutdown()
		return nil, err
	}
	e.eng.Run()
	return e.Finalize()
}

// Start seeds the trace and schedules its arrivals without running the
// simulation — the entry point for co-simulated deployments (e.g. a
// fleet sharing one virtual clock). Requests already due at the current
// virtual time are admitted immediately; later ones are scheduled as
// arrival events. Drive the shared sim.Engine to completion, then call
// Finalize.
func (e *Engine) Start(reqs []workload.Request) error {
	if e.running {
		return fmt.Errorf("core: engine already used")
	}
	e.running = true

	e.states = make([]*reqState, 0, len(reqs))
	e.waiting.Reset()
	for i, r := range reqs {
		if r.ID != i {
			return fmt.Errorf("core: request IDs must be dense 0..n-1 (got %d at %d)", r.ID, i)
		}
		if err := e.addRequest(r); err != nil {
			return err
		}
	}
	if e.waiting.Len() > 0 {
		e.startPrefillPhase()
	} else {
		e.idle = true
	}
	return nil
}

// StartOnline prepares an empty engine to accept Submit calls on its
// (possibly shared) simulation. The engine sits idle until the first
// submission.
func (e *Engine) StartOnline() error {
	if e.running {
		return fmt.Errorf("core: engine already used")
	}
	e.running = true
	e.idle = true
	return nil
}

// Submit hands the engine one request at the current virtual time,
// renumbering it to the engine's dense ID space, and returns that local
// ID. It is the online-router entry point: call between StartOnline and
// Finalize, from inside the shared simulation's event context. A future
// ArrivalTime is honored rather than admitted early. Requests that can
// never fit the KV pool are rejected with ErrRequestTooLarge; crashed
// engines accept nothing until Restore.
func (e *Engine) Submit(r workload.Request) (int, error) {
	if e.dead {
		return 0, fmt.Errorf("core: submit to crashed engine")
	}
	id := len(e.states)
	r.ID = id
	if err := e.addRequest(r); err != nil {
		return 0, err
	}
	return id, nil
}

// SubmitRecovered re-admits a request aborted by a crash elsewhere for
// recompute recovery: like the eviction path, the engine prefills
// input+generated tokens from scratch and generation resumes where it
// stopped, with the original first-token instant preserved so latency
// records span the whole lifecycle. generated must be the token count
// already delivered (0 for a request that never started decoding).
func (e *Engine) SubmitRecovered(r workload.Request, generated int, firstTokenAt sim.Time) (int, error) {
	if e.dead {
		return 0, fmt.Errorf("core: submit to crashed engine")
	}
	if generated < 0 || generated >= r.OutputLen {
		return 0, fmt.Errorf("core: recovered request %d with %d of %d tokens generated", r.ID, generated, r.OutputLen)
	}
	if err := e.checkFits(r, r.InputLen+generated); err != nil {
		return 0, err
	}
	id := len(e.states)
	r.ID = id
	st := e.newState(r)
	st.generated = generated
	st.prefillLen = r.InputLen + generated
	st.firstTokenAt = firstTokenAt
	e.states = append(e.states, st)
	e.admit(id)
	return id, nil
}

// checkFits rejects a request whose worst-case KV demand exceeds the
// whole pool: the largest single allocation it will request (ctxTokens,
// its prefill length or imported context) and the decode-plane peak it
// grows to — input + output - 2 tokens, since the last token needs no
// KV slot. Such a request used to OOM-evict everything else and then
// crash-loop the phase machine; now it is refused up front.
func (e *Engine) checkFits(r workload.Request, ctxTokens int) error {
	peak := r.InputLen
	if extra := r.OutputLen - 2; extra > 0 {
		peak += extra
	}
	if ctxTokens > peak {
		peak = ctxTokens
	}
	if need := e.kv.BlocksFor(peak); need > e.kv.CapacityBlocks() {
		return fmt.Errorf("core: request of %d input + %d output tokens needs %d KV blocks, capacity is %d: %w",
			r.InputLen, r.OutputLen, need, e.kv.CapacityBlocks(), ErrRequestTooLarge)
	}
	return nil
}

// Checkpoint is a periodic KV snapshot of one in-flight request, taken
// by the engine's checkpoint cadence (Config.CheckpointInterval). A
// crash hands it to the router inside Lost; replaying it through
// SubmitDecoded on a live engine resumes generation from the
// checkpointed token instead of re-prefilling the whole context.
type Checkpoint struct {
	// KV is the snapshotted block window (valid for ImportKV).
	KV kvcache.ExportedSeq
	// Generated is how many output tokens existed at the snapshot.
	Generated int
	// FirstTokenAt is the request's original first-token instant.
	FirstTokenAt sim.Time
	// At is when the snapshot was taken.
	At sim.Time
}

// Lost describes one request aborted by Crash: everything a router
// needs to re-dispatch it — the original request, how much generation
// work died with the replica, and the latest checkpoint if one exists.
type Lost struct {
	// Local is the request's id on the crashed engine.
	Local int
	// Req is the engine-local copy of the request (ID == Local).
	Req workload.Request
	// Generated is how many output tokens had been produced (work a
	// recompute resume must redo; a checkpoint resume redoes only the
	// post-checkpoint suffix).
	Generated int
	// FirstTokenAt is when the first token was produced (zero value if
	// the request never started decoding).
	FirstTokenAt sim.Time
	// Ckpt is the latest periodic KV checkpoint, nil if none was taken.
	Ckpt *Checkpoint
}

// Crash kills the engine at the current virtual time: every in-flight
// request is aborted and returned for the caller to re-dispatch, all KV
// is lost (the pool is rebuilt empty), and the cluster's GPUs are held
// unavailable until restartAt — the caller folds restart delay and
// weight-reload time into that instant. Work already submitted to the
// pipeline completes in virtual time but its results are discarded via
// the epoch guard. The engine accepts no submissions until Restore.
func (e *Engine) Crash(restartAt sim.Time) ([]Lost, error) {
	if !e.running {
		return nil, fmt.Errorf("core: crash of an engine that never started")
	}
	if e.dead {
		return nil, fmt.Errorf("core: crash of an already-crashed engine")
	}
	now := e.eng.Now()
	if restartAt < now {
		return nil, fmt.Errorf("core: restart at %v precedes crash at %v", restartAt, now)
	}
	e.dead = true
	e.epoch++
	e.crashes++
	e.restartAt = restartAt
	var lost []Lost
	for id, st := range e.states {
		if st.done || st.aborted {
			continue
		}
		st.aborted = true
		e.aborted++
		e.lostOutputTokens += st.generated
		lost = append(lost, Lost{
			Local:        id,
			Req:          st.req,
			Generated:    st.generated,
			FirstTokenAt: st.firstTokenAt,
			Ckpt:         st.ckpt,
		})
	}
	// Wipe the in-flight machinery. Completions already queued in the
	// simulation carry the old epoch and will be discarded; the decode
	// callbacks are truncated so the next decode phase rebinds them with
	// the new epoch.
	e.waiting.Reset()
	e.decodePool = e.decodePool[:0]
	e.imported = e.imported[:0]
	for s := range e.batches {
		e.batches[s] = e.batches[s][:0]
	}
	e.batches = e.batches[:0]
	e.decodeDone = e.decodeDone[:0]
	e.inflight = 0
	e.activeBatches = 0
	e.numSlots = 0
	e.switchToPrefil = false
	e.pendingArrivals = 0
	e.ckptScheduled = false
	// The process died: its KV pool dies with it.
	kv, err := kvcache.NewManager(e.kv.CapacityTokens(), e.kv.BlockSize())
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding KV pool after crash: %w", err)
	}
	e.kv = kv
	// Model the downtime: every GPU is unavailable until restartAt.
	e.cluster.Stall(now, float64(restartAt-now))
	// The replica worked up to this instant; without this a replica that
	// was never allowed to drain naturally reports Elapsed 0.
	e.finish(now)
	e.idle = true
	return lost, nil
}

// Restore brings a crashed engine back to life at the current virtual
// time (call at the restart instant passed to Crash — earlier is a
// lifecycle bug, the process is still reloading weights, and is
// rejected so a mis-scheduled restore cannot resurrect a replica whose
// GPUs the cluster still holds stalled). The engine is idle and empty;
// submissions kick the phase machine as usual.
func (e *Engine) Restore() error {
	if !e.dead {
		return fmt.Errorf("core: restore of a live engine")
	}
	if now := e.eng.Now(); now < e.restartAt {
		return fmt.Errorf("core: restore at %v before the restart instant %v", now, e.restartAt)
	}
	e.dead = false
	return nil
}

// Alive reports whether the engine accepts work right now — started and
// not between Crash and Restore. Health-checked routers poll this.
func (e *Engine) Alive() bool { return e.running && !e.dead }

// Crashes returns how many times this engine has crashed.
func (e *Engine) Crashes() int { return e.crashes }

// fail parks the engine on an internal error instead of panicking
// inside the shared event loop (a fleet shares one simulation; one
// replica's bug must not take down the whole run's diagnostics).
// Finalize surfaces the first error.
func (e *Engine) fail(err error) {
	if e.fatalErr == nil {
		e.fatalErr = err
	}
}

// maybeScheduleCheckpoint arms the periodic checkpoint timer when the
// cadence is configured and no timer is pending. Called at phase starts
// so an idle engine never holds a live timer (the simulation must be
// able to drain to termination).
func (e *Engine) maybeScheduleCheckpoint() {
	if e.cfg.CheckpointInterval <= 0 || e.ckptScheduled || e.dead {
		return
	}
	e.ckptScheduled = true
	e.eng.AtFunc(e.eng.Now()+sim.Time(e.cfg.CheckpointInterval), checkpointEvent, e, e.epoch, 0)
}

// checkpointEvent fires one checkpoint round and re-arms, unless the
// engine went idle (the next phase start re-arms), died (recovery owns
// the requests now) or failed.
func checkpointEvent(ctx any, ep, _ int) {
	e := ctx.(*Engine)
	if ep != e.epoch {
		return
	}
	e.ckptScheduled = false
	if e.dead || e.fatalErr != nil || e.idle {
		return
	}
	e.doCheckpoint()
	e.ckptScheduled = true
	e.eng.AtFunc(e.eng.Now()+sim.Time(e.cfg.CheckpointInterval), checkpointEvent, e, e.epoch, 0)
}

// doCheckpoint snapshots the KV of every resident in-flight request
// that has produced output (prefill-only context is cheaper to redo
// than to ship, so it is not checkpointed) and charges the serialization
// as a stall on every GPU, sized by the node's KV link.
func (e *Engine) doCheckpoint() {
	now := e.eng.Now()
	blocks := 0
	for id, st := range e.states {
		if st.done || st.aborted || st.evicted || st.generated == 0 || !e.kv.Has(id) {
			continue
		}
		ex, err := e.kv.SnapshotKV(id)
		if err != nil {
			continue
		}
		st.ckpt = &Checkpoint{KV: ex, Generated: st.generated, FirstTokenAt: st.firstTokenAt, At: now}
		blocks += ex.Blocks()
	}
	if blocks == 0 {
		return
	}
	e.checkpoints++
	bytes := float64(blocks*e.kv.BlockSize()) * e.cfg.Spec.KVBytesPerToken()
	e.checkpointBytes += bytes
	e.cluster.Stall(now, costmodel.KVTransfer(e.cfg.Node)(bytes))
}

func (e *Engine) newState(r workload.Request) *reqState {
	return &reqState{
		req:        r,
		predicted:  e.cfg.Predictor.PredictLen(r),
		prefillLen: r.InputLen,
		arrival:    sim.Time(r.ArrivalTime),
	}
}

// arrivalEvent admits a request when its arrival instant is reached
// (scheduled allocation-free via AtFunc: ctx is the engine, a the id,
// b the epoch that scheduled it — a crash in between voids the event,
// the request was aborted and recovery owns it).
func arrivalEvent(ctx any, id, ep int) {
	e := ctx.(*Engine)
	if ep != e.epoch {
		return
	}
	e.pendingArrivals--
	e.admit(id)
}

// addRequest registers one request: due requests are admitted right
// away (a bare queue append while Start seeds with idle unset), future
// ones become arrival events.
func (e *Engine) addRequest(r workload.Request) error {
	if err := e.checkFits(r, r.InputLen); err != nil {
		return err
	}
	id := len(e.states)
	e.states = append(e.states, e.newState(r))
	if at := sim.Time(r.ArrivalTime); at > e.eng.Now() {
		e.pendingArrivals++
		e.eng.AtFunc(at, arrivalEvent, e, id, e.epoch)
		return nil
	}
	e.admit(id)
	return nil
}

// admit moves an arrived request into the waiting queue and, if the
// engine drained to idle, restarts the phase machine.
func (e *Engine) admit(id int) {
	if e.fatalErr != nil {
		return
	}
	e.waiting.PushBack(id)
	if e.idle {
		e.idle = false
		e.startPrefillPhase()
	}
}

// sharePlan returns the shared-prefix coordinates of st's next
// allocation, or (0, 0) when no KV reuse applies — sharing disabled,
// unstructured request, or an empty effective prefix.
func (e *Engine) sharePlan(st *reqState) (group, prefix int) {
	if e.cfg.DisablePrefixCache || st.req.PrefixLen <= 0 {
		return 0, 0
	}
	p := st.req.PrefixLen
	if p > st.prefillLen {
		p = st.prefillLen
	}
	return st.req.PrefixGroup, p
}

// PrefixWarmTokens reports how many tokens of r's shared prefix are
// resident in this engine's KV pool right now — the cache-affinity
// signal fleet dispatch policies read.
func (e *Engine) PrefixWarmTokens(r workload.Request) int {
	if e.cfg.DisablePrefixCache || r.PrefixLen <= 0 {
		return 0
	}
	p := r.PrefixLen
	if p > r.InputLen {
		p = r.InputLen
	}
	return e.kv.MatchPrefix(r.PrefixGroup, p)
}

// NumFinished returns the number of completed requests so far.
func (e *Engine) NumFinished() int { return e.finished }

// Shutdown releases the worker cluster. Finalize calls it; use directly
// only on error paths that abandon the engine.
func (e *Engine) Shutdown() {
	if !e.shutdown {
		e.shutdown = true
		e.cluster.Shutdown()
	}
}

// Finalize checks completion, releases the cluster and builds the
// result. Call after the simulation has run to completion.
func (e *Engine) Finalize() (*Result, error) {
	e.Shutdown()
	if e.fatalErr != nil {
		return nil, e.fatalErr
	}
	if e.finished+e.aborted != len(e.states) {
		return nil, fmt.Errorf("core: run stalled with %d/%d finished (%d aborted) at t=%v (waiting=%d, pool=%d, active=%d)",
			e.finished, len(e.states), e.aborted, e.eng.Now(), e.waiting.Len(), len(e.decodePool), e.activeBatches)
	}
	return e.buildResult(), nil
}

// --- phase control ----------------------------------------------------

func (e *Engine) setPhase(p metrics.Phase) {
	if e.everPhased && p != e.phase {
		e.switches++
	}
	e.phase = p
	e.everPhased = true
}

func (e *Engine) startPrefillPhase() {
	e.maybeScheduleCheckpoint()
	e.setPhase(metrics.PhasePrefill)
	// Rebuild Algorithm 1's usage map from still-resident requests so
	// their predicted lifetimes constrain how much we admit.
	e.usage.Reset()
	for _, id := range e.decodePool {
		st := e.states[id]
		e.usage.UpdateUsage(st.ctx-st.cached, st.remainingPredicted())
	}
	if e.launchPrefills() == 0 && e.inflight == 0 {
		// Nothing could be admitted (memory still holds residents):
		// return to decoding the pool; a trace that fits no request at
		// all is rejected by KVCapacityTokens, so progress is certain.
		e.afterPrefillDrained()
	}
}

// getScratchIDs returns an empty id buffer, recycling the slice of a
// completed prefill batch when scratch reuse is on.
func (e *Engine) getScratchIDs() []int {
	if scratchReuse {
		if n := len(e.idsFree); n > 0 {
			s := e.idsFree[n-1]
			e.idsFree[n-1] = nil
			e.idsFree = e.idsFree[:n-1]
			return s[:0]
		}
	}
	return nil
}

// putScratchIDs recycles a consumed prefill id buffer.
func (e *Engine) putScratchIDs(s []int) {
	if scratchReuse && cap(s) > 0 {
		e.idsFree = append(e.idsFree, s)
	}
}

// launchPrefills packs and submits prefill batches until Algorithm 1
// (or the ablation ratio, or memory itself) says stop. It returns the
// number of batches submitted.
func (e *Engine) launchPrefills() (launched int) {
	switchNow := false
	for e.waiting.Len() > 0 && !switchNow {
		ids := e.getScratchIDs()
		var lens []int
		if scratchReuse {
			lens = e.lensBuf[:0]
		}
		tokens := 0
		for e.waiting.Len() > 0 && tokens < e.cfg.MaxPrefillTokens {
			id := e.waiting.Front()
			st := e.states[id]
			if group, prefix := e.sharePlan(st); prefix > 0 {
				if !e.kv.CanAllocateShared(st.prefillLen, group, prefix) {
					break
				}
				hit, err := e.kv.AllocateShared(id, st.prefillLen, group, prefix)
				if err != nil {
					break
				}
				st.cached = hit
			} else {
				if !e.kv.CanAllocate(st.prefillLen) {
					break
				}
				if err := e.kv.Allocate(id, st.prefillLen); err != nil {
					break
				}
				st.cached = 0
			}
			e.waiting.PopFront()
			ids = append(ids, id)
			// Cached prefix tokens skip prefill compute; at least the
			// last prompt token is always recomputed to produce logits.
			n := st.prefillLen - st.cached
			if n < 1 {
				n = 1
			}
			e.prefixCached += st.prefillLen - n
			lens = append(lens, n)
			tokens += n
		}
		if len(ids) == 0 {
			e.putScratchIDs(ids)
			break // memory full: decode must free space first
		}
		batch := costmodel.NewPrefillBatch(lens)
		if scratchReuse {
			e.lensBuf = lens[:0]
		}
		// Stamp the launch so a completion that raced an eviction and
		// re-launch can recognize it is stale.
		e.launchSeq++
		launchID := e.launchSeq
		for _, id := range ids {
			e.states[id].launch = launchID
		}
		e.inflight++
		launched++
		idsCopy, ep := ids, e.epoch
		e.cluster.SubmitPass(runtime.PrefillTask(batch), e.eng.Now(), func(res runtime.PassResult) {
			e.onPrefillDone(idsCopy, launchID, ep, res)
		})
		// Algorithm 1: account the new requests and check the switch
		// condition after each launched prefill. Shared prefix blocks
		// are accounted once, by the request that allocated them; hits
		// contribute only their private suffix.
		for _, id := range ids {
			st := e.states[id]
			e.usage.UpdateUsage(st.prefillLen-st.cached, st.remainingPredicted())
		}
		switch {
		case e.handoff != nil:
			// A dedicated prefill server has no decode phase to switch
			// to and its residents leave at prefill completion, so
			// Algorithm 1's projected-growth stop does not apply:
			// actual memory is the only admission limit.
		case e.cfg.FixedPrefillSwitchRatio > 0:
			switchNow = e.kv.UsageRatio() >= e.cfg.FixedPrefillSwitchRatio
		default:
			switchNow = e.usage.ShouldSwitch(e.capacityTokens)
		}
	}
	return launched
}

func (e *Engine) onPrefillDone(ids []int, launchID uint64, ep int, res runtime.PassResult) {
	if ep != e.epoch {
		// The issuing engine incarnation crashed while this pass was in
		// flight: its requests were aborted and re-dispatched elsewhere,
		// only the scratch buffer is worth salvaging.
		e.putScratchIDs(ids)
		return
	}
	if e.fatalErr != nil {
		return
	}
	e.inflight--
	e.step++
	for _, id := range ids {
		st := e.states[id]
		if st.launch != launchID {
			// Evicted mid-flight (launch token zeroed), possibly
			// already re-launched in a newer batch whose completion
			// supersedes this one.
			continue
		}
		// The request survives as evicted until its recompute prefill
		// lands here: clearing the flag at launch would let a stale
		// decode batch entry resume generating while the prefill is
		// still in flight.
		st.evicted = false
		st.ctx = st.prefillLen
		if st.generated == 0 {
			st.firstTokenAt = res.End
		}
		st.generated++ // prefill emits the first output token
		switch {
		case st.generated >= st.req.OutputLen:
			e.finishReq(id, res.End)
		case e.handoff != nil:
			// Disaggregated prefill: export the KV, retire the request
			// locally, and hand it to the router. Free-after-export is
			// a no-op, so finishReq stays the single retirement path.
			ex, err := e.kv.ExportKV(id)
			if err != nil {
				panic(fmt.Sprintf("core: hand-off export of resident request %d: %v", id, err))
			}
			h := Handoff{
				Local:        id,
				Req:          st.req,
				KV:           ex,
				Generated:    st.generated,
				FirstTokenAt: st.firstTokenAt,
				At:           res.End,
			}
			e.finishReq(id, res.End)
			e.handoff(h)
		default:
			e.decodePool = append(e.decodePool, id)
		}
	}
	e.putScratchIDs(ids)
	e.recordKV()
	// A prefill server launches continuously: every completed pass
	// exported its KV, so freed memory admits more waiting work right
	// away instead of after a full pipeline drain.
	if e.handoff != nil && e.waiting.Len() > 0 {
		e.launchPrefills()
	}
	if e.inflight == 0 {
		e.afterPrefillDrained()
	}
}

// afterPrefillDrained advances the phase machine once both planes are
// quiet: no prefill pass in flight and no decode batch active. (During
// an overlapped switch one plane drains while the other fills, so both
// completion paths funnel here.)
func (e *Engine) afterPrefillDrained() {
	if e.inflight > 0 || e.activeBatches > 0 || e.fatalErr != nil {
		return
	}
	// Imported requests staged during the drained phase join the pool
	// now, so a decode server never goes idle over work it holds.
	if len(e.imported) > 0 {
		e.decodePool = append(e.decodePool, e.imported...)
		e.imported = e.imported[:0]
	}
	switch {
	case len(e.decodePool) > 0:
		e.startDecodePhase()
	case e.waiting.Len() > 0:
		// Everything prefilled so far finished during prefill (or was
		// evicted); memory is free again, keep prefilling. Submit-time
		// size checks make this unreachable for admissible traces, but a
		// stall must park the engine with an error, not panic the shared
		// event loop (Finalize surfaces it).
		if e.launchPrefills() == 0 && e.inflight == 0 {
			e.fail(fmt.Errorf("core: stalled: %d waiting requests, empty pool, nothing admissible (free=%d tokens)",
				e.waiting.Len(), e.kv.FreeBlocks()*e.kv.BlockSize()))
		}
	default:
		// Drained. Note the completion time and go idle: a later
		// arrival (scheduled event or online Submit) restarts the
		// phase machine and extends doneAt.
		e.finish(e.eng.Now())
		e.idle = true
	}
}

// overlapPrefill starts the next prefill phase while decode batches are
// still draining their in-flight steps — the compact switch of Fig. 7:
// prefill passes queue on stage 0 right behind the final decode steps,
// leaving only the rate-mismatch bubble.
func (e *Engine) overlapPrefill() {
	e.setPhase(metrics.PhasePrefill)
	e.usage.Reset()
	account := func(ids []int) {
		for _, id := range ids {
			st := e.states[id]
			if st.done || st.evicted {
				continue
			}
			e.usage.UpdateUsage(st.ctx-st.cached, st.remainingPredicted())
		}
	}
	for _, b := range e.batches {
		account(b)
	}
	account(e.stealer.stash)
	account(e.decodePool)
	account(e.imported)
	e.launchPrefills()
}

func (e *Engine) startDecodePhase() {
	e.maybeScheduleCheckpoint()
	e.setPhase(metrics.PhaseDecode)
	// Drop evicted ids; sort for determinism.
	pool := e.decodePool[:0]
	for _, id := range e.decodePool {
		if !e.states[id].evicted && !e.states[id].done {
			pool = append(pool, id)
		}
	}
	sort.Ints(pool)
	if scratchReuse {
		e.decodePool = pool[:0]
	} else {
		e.decodePool = nil
	}
	if len(pool) == 0 {
		e.afterPrefillDrained()
		return
	}
	e.numSlots = e.cfg.World
	if len(pool) < e.numSlots {
		e.numSlots = len(pool)
	}
	// Even split, as in §3.4: "divide the requests into batches equal
	// to the number of GPUs, each containing the same number".
	if scratchReuse && cap(e.batches) >= e.numSlots {
		e.batches = e.batches[:e.numSlots]
		for s := range e.batches {
			e.batches[s] = e.batches[s][:0]
		}
	} else {
		e.batches = make([][]int, e.numSlots)
	}
	for i, id := range pool {
		slot := i % e.numSlots
		e.batches[slot] = append(e.batches[slot], id)
	}
	var sizes []int
	if scratchReuse {
		sizes = e.sizesBuf[:0]
	}
	for s := range e.batches {
		sizes = append(sizes, len(e.batches[s]))
	}
	if scratchReuse {
		e.sizesBuf = sizes
	}
	// Completion callbacks are bound per slot once and reused by every
	// decode step submitted to that slot (Crash truncates the list so a
	// restarted engine rebinds them with its new epoch).
	for len(e.decodeDone) < e.numSlots {
		slot, ep := len(e.decodeDone), e.epoch
		e.decodeDone = append(e.decodeDone, func(res runtime.PassResult) { e.onDecodeDone(slot, ep, res) })
	}
	e.stealer = NewStealer(e.numSlots, !e.cfg.DisableWorkStealing)
	e.stealer.Prime(sizes)
	e.decodeInitial = len(pool)
	e.decodeFinished = 0
	e.switchToPrefil = false
	e.activeBatches = e.numSlots
	for s := 0; s < e.numSlots; s++ {
		e.submitDecode(s, e.eng.Now())
	}
}

// submitDecode dispatches slot's current batch to the cluster with the
// callback bound once at engine construction.
//
//det:hotpath
func (e *Engine) submitDecode(slot int, readyAt sim.Time) {
	ids := e.batches[slot]
	kvTokens := 0
	for _, id := range ids {
		kvTokens += e.states[id].ctx
	}
	e.cluster.SubmitDecode(len(ids), kvTokens, readyAt, e.decodeDone[slot])
}

// onDecodeDone is the steady-state decode step: retire finished
// requests, grow each survivor's KV by one token, fold in staged
// imports, and resubmit — the tightest loop in the engine.
//
//det:hotpath
func (e *Engine) onDecodeDone(slot, ep int, res runtime.PassResult) {
	if ep != e.epoch || e.fatalErr != nil {
		return
	}
	e.step++
	survivors := e.batches[slot][:0]
	for _, id := range e.batches[slot] {
		st := e.states[id]
		if st.evicted || st.done {
			continue
		}
		st.generated++
		st.ctx++
		if st.generated >= st.req.OutputLen {
			// The final token needs no KV slot; the request is done.
			e.finishReq(id, res.End)
			e.decodeFinished++
			continue
		}
		if err := e.kv.Append(id, 1); err != nil {
			e.handleOOM(id, slot)
			if st.evicted {
				continue
			}
		}
		survivors = append(survivors, id) //det:ignore hotalloc survivors reslices this batch's own backing array; no growth past the submitted batch
	}
	e.batches[slot] = survivors
	e.recordKV()

	// Approach 2: rebalance through the sliding-window stealer.
	e.batches[slot] = e.stealer.Rebalance(slot, e.batches[slot])

	// Continuous batching for disaggregated decode: requests imported
	// mid-phase join this slot's batch at the step boundary instead of
	// waiting out the phase. (Colocated engines never stage imports.)
	if len(e.imported) > 0 && !e.switchToPrefil {
		for _, id := range e.imported {
			st := e.states[id]
			if st.done || st.evicted {
				continue
			}
			e.batches[slot] = append(e.batches[slot], id) //det:ignore hotalloc amortized batch growth when staged imports join at a step boundary
			e.decodeInitial++
		}
		e.imported = e.imported[:0]
	}

	// Approach 3 (or the Fig.-16 ablation): decide whether to switch
	// back to prefill. On a switch, prefill launches immediately and
	// overlaps the remaining decode drain.
	if !e.switchToPrefil && e.waiting.Len() > 0 && e.shouldSwitchToPrefill(slot) {
		e.switchToPrefil = true
		e.overlapPrefill()
	}

	if e.switchToPrefil || len(e.batches[slot]) == 0 {
		e.decodePool = append(e.decodePool, e.batches[slot]...) //det:ignore hotalloc pool drain on phase switch, not per-token work
		if scratchReuse {
			e.batches[slot] = e.batches[slot][:0]
		} else {
			e.batches[slot] = nil
		}
		e.activeBatches--
		if e.activeBatches == 0 {
			e.decodePool = append(e.decodePool, e.stealer.DrainStash()...) //det:ignore hotalloc pool drain on phase switch, not per-token work
			e.afterPrefillDrained()
		}
		return
	}
	e.submitDecode(slot, res.End)
}

// shouldSwitchToPrefill evaluates the decode->prefill switch rule.
func (e *Engine) shouldSwitchToPrefill(slot int) bool {
	if e.cfg.FixedDecodeSwitchRatio > 0 {
		if float64(e.decodeFinished) < e.cfg.FixedDecodeSwitchRatio*float64(e.decodeInitial) {
			return false
		}
		// Only worth switching if the head of the queue fits.
		return e.kv.CanAllocate(e.states[e.waiting.Front()].prefillLen)
	}
	resident, kvTokens := e.residentLoad()
	if resident == 0 {
		return true
	}
	avgBatch := (resident + e.numSlots - 1) / e.numSlots
	avgCtx := kvTokens / resident
	pending := e.packPendingPrefills()
	feasiblePeak := e.capacityTokens / (e.numSlots * avgCtx)
	si := e.inten.Spatial(avgBatch, avgCtx, feasiblePeak)
	ti := e.inten.Temporal(pending, e.cluster.Cost.DecodeBottleneck(e.cluster.Plan, avgBatch, avgBatch*avgCtx), e.numSlots)
	return e.inten.ShouldSwitch(si, ti)
}

// residentLoad sums live decode requests and their cached tokens across
// batches and the stash.
func (e *Engine) residentLoad() (n, kvTokens int) {
	count := func(ids []int) {
		for _, id := range ids {
			st := e.states[id]
			if st.done || st.evicted {
				continue
			}
			n++
			kvTokens += st.ctx
		}
	}
	for _, b := range e.batches {
		count(b)
	}
	count(e.stealer.stash)
	count(e.decodePool)
	count(e.imported)
	return
}

// packPendingPrefills previews the prefill batches launchable with the
// currently free KV (the "pending prefills" of §3.5). It returns nil if
// free memory cannot hold a meaningful amount of prefill work — one
// full batch, or all of the remaining waiting set if smaller. The
// returned slice shares a recycled buffer, valid until the next call.
func (e *Engine) packPendingPrefills() []costmodel.PrefillBatch {
	free := e.kv.FreeBlocks() * e.kv.BlockSize()
	var batches []costmodel.PrefillBatch
	var lens []int
	if scratchReuse {
		batches = e.packBatches[:0]
		lens = e.packLens[:0]
	}
	tokens := 0
	packed := 0
	waitingTokens := 0
	for i := 0; i < e.waiting.Len(); i++ {
		waitingTokens += e.states[e.waiting.At(i)].prefillLen
	}
	for i := 0; i < e.waiting.Len(); i++ {
		need := e.states[e.waiting.At(i)].prefillLen
		if packed+need > free {
			break
		}
		packed += need
		lens = append(lens, need)
		tokens += need
		if tokens >= e.cfg.MaxPrefillTokens {
			batches = append(batches, costmodel.NewPrefillBatch(lens))
			if scratchReuse {
				lens, tokens = lens[:0], 0
			} else {
				lens, tokens = nil, 0
			}
		}
	}
	if len(lens) > 0 {
		batches = append(batches, costmodel.NewPrefillBatch(lens))
	}
	if scratchReuse {
		e.packBatches = batches
		e.packLens = lens[:0]
	}
	min := e.cfg.MaxPrefillTokens
	if waitingTokens < min {
		min = waitingTokens
	}
	if packed < min {
		return nil
	}
	return batches
}

// handleOOM evicts recently admitted requests to make room for the
// append that failed — the recompute strategy of §4.1. Victims lose
// their cache, keep their generated tokens, and requeue for a fresh
// prefill over input+generated tokens. The ring-buffer waiting queue
// makes the front-insertion O(1) instead of reslicing the whole queue.
func (e *Engine) handleOOM(needID, slot int) {
	keep := map[int]bool{needID: true}
	for _, id := range e.batches[slot] {
		keep[id] = true
	}
	victims := e.kv.EvictMostRecent(e.kv.BlocksFor(1), keep)
	for _, id := range victims {
		st := e.states[id]
		st.evicted = true
		st.launch = 0 // void any in-flight prefill for this request
		st.recomputes++
		e.recomputes++
		st.prefillLen = st.req.InputLen + st.generated
		st.ctx = 0
		st.cached = 0
		e.stealer.Remove(id)
		e.removeImported(id)
		e.waiting.PushFront(id)
	}
	if err := e.kv.Append(needID, 1); err != nil {
		// Even eviction could not free a block: the current batch
		// fills the machine. Evict this request itself.
		st := e.states[needID]
		e.kv.Free(needID)
		st.evicted = true
		st.launch = 0
		st.recomputes++
		e.recomputes++
		st.prefillLen = st.req.InputLen + st.generated
		st.ctx = 0
		st.cached = 0
		e.removeImported(needID)
		e.waiting.PushFront(needID)
	}
}

// removeImported drops an evicted request from the staged-import list
// so its recompute path owns it exclusively (otherwise a later
// injection could enter it into a decode batch twice). The scan is
// O(staged) on the rare eviction path only.
func (e *Engine) removeImported(id int) {
	for i, v := range e.imported {
		if v == id {
			e.imported = append(e.imported[:i], e.imported[i+1:]...)
			return
		}
	}
}

func (e *Engine) finishReq(id int, t sim.Time) {
	st := e.states[id]
	st.done = true
	st.finishedAt = t
	e.kv.Free(id)
	e.finished++
	if e.onFinish != nil {
		e.onFinish(id)
	}
}

func (e *Engine) finish(t sim.Time) {
	if t > e.doneAt {
		e.doneAt = t
	}
}

func (e *Engine) recordKV() {
	if e.cfg.RecordKV {
		e.kvTimeline.Add(e.step, float64(e.eng.Now()), e.kv.UsageRatio(), e.phase)
	}
}

func (e *Engine) buildResult() *Result {
	rep := metrics.Report{
		Scheduler: "TD-Pipe",
		Node:      e.cfg.Node.Name,
		Model:     e.cfg.Spec.Name,
		GPUs:      e.cfg.World,
		Requests:  e.finished,
		Elapsed:   float64(e.doneAt),
	}
	finished := make([]sim.Time, len(e.states))
	records := make([]metrics.RequestRecord, len(e.states))
	for i, st := range e.states {
		if st.aborted {
			// Crash-lost copy: its record stays unfinished (zero Finish,
			// zero tokens — Faults.LostOutputTokens accounts the work)
			// and the re-dispatched copy reports elsewhere.
			records[i] = metrics.RequestRecord{ID: i, Arrival: float64(st.arrival)}
			continue
		}
		rep.InputTokens += st.req.InputLen
		rep.OutputTokens += st.generated
		finished[i] = st.finishedAt
		records[i] = metrics.RequestRecord{
			ID:           i,
			Arrival:      float64(st.arrival),
			FirstToken:   float64(st.firstTokenAt),
			Finish:       float64(st.finishedAt),
			OutputTokens: st.generated,
		}
	}
	rep.PhaseSwitches = e.switches
	rep.Recomputes = e.recomputes
	rep.PrefixCachedTokens = e.prefixCached
	rep.MeanUtilization = e.cluster.Rec.MeanUtilization(0, float64(e.doneAt))
	rep.BubbleRatio = 1 - rep.MeanUtilization
	rep.KVPeakUsage = e.kvTimeline.Peak()
	if !e.cfg.RecordKV {
		rep.KVPeakUsage = float64(e.kv.PeakBlocks()) / float64(e.kv.CapacityBlocks())
	}
	rep.Latency = metrics.Digest(records, e.cfg.SLO)
	rep.Faults = metrics.FaultStats{
		Crashes:          e.crashes,
		AbortedRequests:  e.aborted,
		Checkpoints:      e.checkpoints,
		CheckpointBytes:  e.checkpointBytes,
		LostOutputTokens: e.lostOutputTokens,
	}
	var kvt *metrics.KVTimeline
	if e.cfg.RecordKV {
		kvt = e.kvTimeline
	}
	return &Result{Report: rep, Rec: e.cluster.Rec, KV: kvt, Finished: finished, Records: records, Steps: e.eng.Steps()}
}

// Run is the package-level convenience: build an engine on a fresh
// simulation and run the trace.
func Run(cfg Config, reqs []workload.Request) (*Result, error) {
	eng := sim.NewEngine()
	e, err := NewEngine(eng, cfg)
	if err != nil {
		return nil, err
	}
	return e.Run(reqs)
}
