package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ids returns n fresh request ids starting at base.
func ids(base, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = base + i
	}
	return out
}

// TestFig9Replay replays the paper's Figure-9 example: 512 requests in
// four batches of 128. Batch 0 returns with 48 finished (80 left) and
// is resubmitted whole because 80 is below the new average of 116;
// batch 1 returns with 8 finished (120 left) against an average of 114,
// so 6 requests are stolen and 114 submitted.
func TestFig9Replay(t *testing.T) {
	s := NewStealer(4, true)
	s.Prime([]int{128, 128, 128, 128})

	// Batch 0 returns with 80 survivors.
	if avgBefore := func() int { s.window[0] = 80; a := s.average(); s.window[0] = 128; return a }(); avgBefore != 116 {
		t.Errorf("average after batch0 = %d, want 116 (Fig. 9)", avgBefore)
	}
	sub := s.Rebalance(0, ids(0, 80))
	if len(sub) != 80 {
		t.Errorf("batch0 resubmitted %d, want all 80 (below average)", len(sub))
	}
	if s.StashLen() != 0 {
		t.Errorf("stash = %d after batch0", s.StashLen())
	}

	// Batch 1 returns with 120 survivors; average is (80+120+128+128)/4 = 114.
	sub = s.Rebalance(1, ids(1000, 120))
	if len(sub) != 114 {
		t.Errorf("batch1 resubmitted %d, want 114 (steal 6, Fig. 9)", len(sub))
	}
	if s.StashLen() != 6 {
		t.Errorf("stash = %d, want 6", s.StashLen())
	}

	// Batches 2 and 3 return full; they shed toward the average too.
	sub2 := s.Rebalance(2, ids(2000, 128))
	sub3 := s.Rebalance(3, ids(3000, 128))
	if len(sub2) > 128 || len(sub3) > 128 || len(sub2) < 105 || len(sub3) < 105 {
		t.Errorf("batches 2/3 resubmitted %d/%d, want near the average", len(sub2), len(sub3))
	}

	// Next round: batch 0 (still 80) is topped up from the stash.
	sub = s.Rebalance(0, ids(0, 80))
	if len(sub) <= 80 {
		t.Errorf("batch0 not supplemented: %d", len(sub))
	}
}

func TestStealingConvergesTowardBalance(t *testing.T) {
	s := NewStealer(4, true)
	sizes := []int{128, 128, 128, 128}
	s.Prime(sizes)
	batches := [][]int{ids(0, 128), ids(200, 128), ids(400, 128), ids(600, 128)}
	rng := rand.New(rand.NewSource(1))
	// Simulate 60 rounds with random completions concentrated in batch 0.
	for round := 0; round < 60; round++ {
		for slot := 0; slot < 4; slot++ {
			b := batches[slot]
			finish := 0
			if slot == 0 && len(b) > 4 {
				finish = rng.Intn(4)
			} else if len(b) > 2 && rng.Intn(3) == 0 {
				finish = 1
			}
			b = b[:len(b)-finish]
			batches[slot] = s.Rebalance(slot, b)
		}
	}
	min, max := 1<<30, 0
	for _, b := range batches {
		if len(b) < min {
			min = len(b)
		}
		if len(b) > max {
			max = len(b)
		}
	}
	// Convergence is bounded by the stealing tolerance (avg/32 per
	// batch, so ~2x that across the spread).
	if max-min > max/8+4 {
		t.Errorf("batches did not converge: sizes spread %d..%d", min, max)
	}
}

func TestStealerDisabledPassesThrough(t *testing.T) {
	s := NewStealer(2, false)
	s.Prime([]int{10, 100})
	sub := s.Rebalance(1, ids(0, 100))
	if len(sub) != 100 {
		t.Errorf("disabled stealer changed batch: %d", len(sub))
	}
	if s.StashLen() != 0 {
		t.Errorf("disabled stealer stashed %d", s.StashLen())
	}
}

func TestStealerDrainStash(t *testing.T) {
	s := NewStealer(2, true)
	s.Prime([]int{100, 10})
	s.Rebalance(0, ids(0, 100)) // sheds toward avg 55
	n := s.StashLen()
	if n == 0 {
		t.Fatal("expected withheld requests")
	}
	drained := s.DrainStash()
	if len(drained) != n || s.StashLen() != 0 {
		t.Errorf("drain returned %d, stash now %d", len(drained), s.StashLen())
	}
}

func TestStealerRemove(t *testing.T) {
	s := NewStealer(2, true)
	s.Prime([]int{100, 0})
	s.Rebalance(0, ids(0, 100))
	if s.StashLen() == 0 {
		t.Fatal("no stash to remove from")
	}
	victim := s.stash[0]
	if !s.Remove(victim) {
		t.Error("Remove failed for stashed id")
	}
	if s.Remove(victim) {
		t.Error("Remove succeeded twice")
	}
}

// Property: rebalancing conserves requests — everything returned is
// either resubmitted or in the stash, with no duplication.
func TestStealerConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStealer(4, true)
		s.Prime([]int{64, 64, 64, 64})
		owned := map[int]bool{}
		next := 0
		batches := make([][]int, 4)
		for slot := range batches {
			for i := 0; i < 64; i++ {
				batches[slot] = append(batches[slot], next)
				owned[next] = true
				next++
			}
		}
		for round := 0; round < 40; round++ {
			slot := rng.Intn(4)
			b := batches[slot]
			// Finish a few randomly.
			for len(b) > 0 && rng.Intn(4) == 0 {
				delete(owned, b[len(b)-1])
				b = b[:len(b)-1]
			}
			batches[slot] = s.Rebalance(slot, b)
		}
		seen := map[int]bool{}
		total := 0
		for _, b := range batches {
			for _, id := range b {
				if seen[id] || !owned[id] {
					return false
				}
				seen[id] = true
				total++
			}
		}
		for _, id := range s.DrainStash() {
			if seen[id] || !owned[id] {
				return false
			}
			seen[id] = true
			total++
		}
		return total == len(owned)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
