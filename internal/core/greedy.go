package core

// Approach 1: AI-based greedy prefill (§3.3, Algorithm 1).
//
// The engine keeps prefilling as long as the *simulated future* KV
// usage stays within capacity. The simulation walks discrete future
// decode steps ("futurePoints": the 32nd, 64th, ..., 1024th) and sums,
// per point, the KV held by every request predicted to still be alive
// there. A request with input length in and predicted output length
// out contributes in+fp tokens at every futurePoint fp <= out — after
// that it is predicted to have finished and freed its cache.

// usageSim is the engine's Algorithm-1 state: predicted KV usage (in
// tokens) at each futurePoint.
type usageSim struct {
	stride int
	points []int // futurePoint step numbers
	usage  []int // predicted tokens held at each point
}

// newUsageSim builds the futurePoint grid.
func newUsageSim(stride, max int) *usageSim {
	s := &usageSim{stride: stride}
	for fp := stride; fp <= max; fp += stride {
		s.points = append(s.points, fp)
	}
	s.usage = make([]int, len(s.points))
	return s
}

// Reset clears the simulation for a new prefill phase.
func (s *usageSim) Reset() {
	for i := range s.usage {
		s.usage[i] = 0
	}
}

// UpdateUsage is Algorithm 1's UpdateUsage: account a request that will
// hold ctx+fp tokens at each future point until its predicted remaining
// output remaining is exhausted.
func (s *usageSim) UpdateUsage(ctx, remaining int) {
	for i, fp := range s.points {
		if fp <= remaining {
			s.usage[i] += ctx + fp
		}
	}
}

// MaxUsage is the peak predicted usage across future points
// (Algorithm 1's CheckSwitch scan).
func (s *usageSim) MaxUsage() int {
	max := 0
	for _, u := range s.usage {
		if u > max {
			max = u
		}
	}
	return max
}

// ShouldSwitch is Algorithm 1's CheckSwitch: switch to decode when the
// predicted peak exceeds capacity.
func (s *usageSim) ShouldSwitch(kvCapacityTokens int) bool {
	return s.MaxUsage() > kvCapacityTokens
}
