package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func prefixTrace(n int, seed int64, groups, plen int) []workload.Request {
	reqs, err := workload.StampPrefixes(smallTrace(n, seed), workload.PrefixConfig{
		Groups: groups, PrefixLen: plen, Turns: 3, Seed: seed + 50,
	})
	if err != nil {
		panic(err)
	}
	return reqs
}

// Unstructured traces must be untouched by the prefix-cache machinery:
// with sharing enabled (the default) and disabled, reports, completion
// times and records are bit-identical — the regression gate that keeps
// the PR-1/PR-2 offline and online numbers authoritative.
func TestNoPrefixTraceBitIdenticalWithSharingOnOff(t *testing.T) {
	reqs := smallTrace(300, 21)
	on, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(4)
	cfg.DisablePrefixCache = true
	off, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if on.Report != off.Report {
		t.Errorf("reports differ on an unstructured trace:\non:  %+v\noff: %+v", on.Report, off.Report)
	}
	if on.Report.PrefixCachedTokens != 0 {
		t.Errorf("cached %d tokens with no prefix structure", on.Report.PrefixCachedTokens)
	}
	for i := range on.Finished {
		if on.Finished[i] != off.Finished[i] {
			t.Fatalf("request %d finished at %v with sharing on, %v off", i, on.Finished[i], off.Finished[i])
		}
		if on.Records[i] != off.Records[i] {
			t.Fatalf("request %d records differ: %+v vs %+v", i, on.Records[i], off.Records[i])
		}
	}
}

// On a prefix-structured trace, sharing must actually reuse KV: the
// report shows a positive hit rate and the run completes no slower
// (virtual time) than the no-sharing ablation.
func TestPrefixSharingSkipsPrefillWork(t *testing.T) {
	reqs := prefixTrace(300, 23, 6, 128)
	shared, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(4)
	cfg.DisablePrefixCache = true
	cold, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Report.PrefixCachedTokens <= 0 {
		t.Fatal("no tokens served from the prefix cache on a structured trace")
	}
	if cold.Report.PrefixCachedTokens != 0 {
		t.Errorf("ablation cached %d tokens", cold.Report.PrefixCachedTokens)
	}
	if hr := shared.Report.PrefixHitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %v, want in (0,1)", hr)
	}
	if shared.Report.Elapsed > cold.Report.Elapsed {
		t.Errorf("sharing slowed the run: %.3fs vs %.3fs cold", shared.Report.Elapsed, cold.Report.Elapsed)
	}
	if shared.Report.Requests != len(reqs) || cold.Report.Requests != len(reqs) {
		t.Errorf("incomplete runs: %d/%d of %d", shared.Report.Requests, cold.Report.Requests, len(reqs))
	}
}

// The warmth probe must see blocks left behind by finished requests
// and respect the disable flag.
func TestPrefixWarmTokens(t *testing.T) {
	reqs := prefixTrace(100, 27, 2, 256)
	cfg := fastConfig(2)
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.PrefixCachedTokens <= 0 {
		t.Fatal("two-group trace produced no cache hits")
	}
	// Exercise the probe on a fresh engine: before any allocation
	// nothing is warm, and unstructured requests always read 0.
	e, err := NewEngine(sim.NewEngine(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if w := e.PrefixWarmTokens(reqs[0]); w != 0 {
		t.Errorf("cold engine reports %d warm tokens", w)
	}
	bare := workload.StripPrefixes(reqs)
	if w := e.PrefixWarmTokens(bare[0]); w != 0 {
		t.Errorf("unstructured request reports %d warm tokens", w)
	}
}

// Instant arrivals on a prefix trace must reproduce the offline prefix
// run exactly — the online/offline equivalence holds with sharing too.
func TestPrefixInstantArrivalsReproduceOffline(t *testing.T) {
	reqs := prefixTrace(200, 29, 4, 128)
	offline, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	online, err := Run(fastConfig(4), workload.StampArrivals(reqs, workload.Instant{}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if offline.Report != online.Report {
		t.Errorf("reports differ:\noffline: %+v\ninstant: %+v", offline.Report, online.Report)
	}
}
