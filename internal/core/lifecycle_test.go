package core

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// Lifecycle hardening around crashes that land mid-recovery: a restore
// cannot fire before the crash's restart instant, a second crash during
// recompute recovery hands the recovered requests back for another
// round, and a checkpoint resume targeted at a replica that died while
// the transfer was in flight is rejected cleanly (the caller re-enters
// recovery) instead of stranding the request.

// runFn adapts a closure to the simulation's event callback shape.
func runFn(ctx any, _, _ int) { ctx.(func())() }

// Restore before the restart instant is a lifecycle bug and must be
// rejected; at the instant it succeeds.
func TestRestoreBeforeRestartRejected(t *testing.T) {
	eng := sim.NewEngine()
	e, err := NewEngine(eng, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Shutdown()
	if err := e.StartOnline(); err != nil {
		t.Fatal(err)
	}
	for _, r := range smallTrace(40, 23) {
		if _, err := e.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	eng.AtFunc(0.02, runFn, func() {
		if _, err := e.Crash(0.05); err != nil {
			t.Fatalf("Crash: %v", err)
		}
	}, 0, 0)
	eng.AtFunc(0.03, runFn, func() {
		err := e.Restore()
		if err == nil {
			t.Fatal("Restore before the restart instant accepted")
		}
		if !strings.Contains(err.Error(), "before the restart instant") {
			t.Fatalf("error %q does not name the restart instant", err)
		}
		if e.Alive() {
			t.Fatal("early restore resurrected the engine")
		}
	}, 0, 0)
	eng.AtFunc(0.05, runFn, func() {
		if err := e.Restore(); err != nil {
			t.Fatalf("Restore at the restart instant: %v", err)
		}
		if !e.Alive() {
			t.Fatal("restored engine not alive")
		}
	}, 0, 0)
	eng.Run()
	if _, err := e.Finalize(); err != nil {
		t.Fatal(err)
	}
}

// Crash during restore-driven recompute recovery: requests re-admitted
// after the first crash are aborted again by a second crash and hand
// themselves back for another recovery round — nothing is stranded,
// nothing double-finishes.
func TestCrashDuringRecomputeRecovery(t *testing.T) {
	eng := sim.NewEngine()
	e, err := NewEngine(eng, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartOnline(); err != nil {
		t.Fatal(err)
	}
	reqs := smallTrace(80, 29)
	for _, r := range reqs {
		if _, err := e.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	var lost1, lost2 []Lost
	recovered1 := make(map[int]bool)
	resubmits := 0
	resubmit := func(lost []Lost, track map[int]bool) {
		for _, l := range lost {
			id, err := e.SubmitRecovered(l.Req, l.Generated, l.FirstTokenAt)
			if err != nil {
				t.Fatalf("SubmitRecovered: %v", err)
			}
			if track != nil {
				track[id] = true
			}
			resubmits++
		}
	}
	eng.AtFunc(0.02, runFn, func() {
		l, err := e.Crash(0.04)
		if err != nil {
			t.Fatalf("first Crash: %v", err)
		}
		lost1 = l
	}, 0, 0)
	eng.AtFunc(0.04, runFn, func() {
		if err := e.Restore(); err != nil {
			t.Fatalf("first Restore: %v", err)
		}
		resubmit(lost1, recovered1)
	}, 0, 0)
	// The second crash lands while the first round's recoveries are
	// still in flight.
	eng.AtFunc(0.045, runFn, func() {
		l, err := e.Crash(0.065)
		if err != nil {
			t.Fatalf("second Crash: %v", err)
		}
		lost2 = l
	}, 0, 0)
	eng.AtFunc(0.065, runFn, func() {
		if err := e.Restore(); err != nil {
			t.Fatalf("second Restore: %v", err)
		}
		resubmit(lost2, nil)
	}, 0, 0)
	eng.Run()
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(lost1) == 0 || len(lost2) == 0 {
		t.Fatalf("crashes aborted %d and %d requests; pick better instants", len(lost1), len(lost2))
	}
	reAborted := 0
	for _, l := range lost2 {
		if recovered1[l.Local] {
			reAborted++
		}
	}
	if reAborted == 0 {
		t.Fatal("second crash caught no in-flight recovery; the scenario did not exercise crash-during-restore")
	}
	// Exactly-once: every original finishes exactly once across its
	// recovery copies.
	if res.Report.Requests != len(reqs) {
		t.Fatalf("finished %d, want %d originals", res.Report.Requests, len(reqs))
	}
	f := res.Report.Faults
	if f.Crashes != 2 || f.AbortedRequests != len(lost1)+len(lost2) {
		t.Fatalf("fault stats %+v, want 2 crashes / %d aborted", f, len(lost1)+len(lost2))
	}
}

// Crash mid-checkpoint-resume: the replica a checkpoint is being
// replayed onto dies while the transfer is in flight. The import is
// rejected cleanly at arrival (dead engine), the caller re-enters
// recovery with recompute, and every request still finishes exactly
// once.
func TestCrashMidCheckpointResume(t *testing.T) {
	cfg := fastConfig(2)
	cfg.CheckpointInterval = 0.005
	eng := sim.NewEngine()
	e, err := NewEngine(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartOnline(); err != nil {
		t.Fatal(err)
	}
	spare, err := NewEngine(eng, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := spare.StartOnline(); err != nil {
		t.Fatal(err)
	}
	reqs := smallTrace(80, 31)
	for _, r := range reqs {
		if _, err := e.Submit(r); err != nil {
			t.Fatal(err)
		}
	}
	var lost []Lost
	eng.AtFunc(0.03, runFn, func() {
		l, err := e.Crash(0.08)
		if err != nil {
			t.Fatalf("Crash: %v", err)
		}
		lost = l
	}, 0, 0)
	// The spare dies before the resume transfers land on it.
	eng.AtFunc(0.075, runFn, func() {
		if _, err := spare.Crash(0.2); err != nil {
			t.Fatalf("spare Crash: %v", err)
		}
	}, 0, 0)
	deadImports, hadCkpt := 0, 0
	eng.AtFunc(0.08, runFn, func() {
		if err := e.Restore(); err != nil {
			t.Fatalf("Restore: %v", err)
		}
		for _, l := range lost {
			if l.Ckpt != nil {
				hadCkpt++
				// The resume the router scheduled is arriving on a dead
				// replica: SubmitDecoded must reject it, not strand it.
				_, err := spare.SubmitDecoded(l.Req, Handoff{
					Local: -1, Req: l.Req, KV: l.Ckpt.KV,
					Generated: l.Ckpt.Generated, FirstTokenAt: l.Ckpt.FirstTokenAt,
					At: eng.Now(),
				})
				if err == nil {
					t.Fatal("dead spare accepted a checkpoint resume")
				}
				if !strings.Contains(err.Error(), "crashed engine") {
					t.Fatalf("dead import error %q does not say crashed", err)
				}
				deadImports++
			}
			// Recovery falls back to recompute on the restored origin.
			if _, err := e.SubmitRecovered(l.Req, l.Generated, l.FirstTokenAt); err != nil {
				t.Fatalf("recompute fallback: %v", err)
			}
		}
	}, 0, 0)
	eng.Run()
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	spareRes, err := spare.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if hadCkpt == 0 {
		t.Fatal("no checkpointed loss; crash later or checkpoint more often")
	}
	if deadImports != hadCkpt {
		t.Fatalf("%d of %d checkpoint resumes hit the dead-import guard", deadImports, hadCkpt)
	}
	if res.Report.Requests != len(reqs) {
		t.Fatalf("origin finished %d, want all %d via recompute fallback", res.Report.Requests, len(reqs))
	}
	if spareRes.Report.Requests != 0 {
		t.Fatalf("dead spare finished %d requests", spareRes.Report.Requests)
	}
}
