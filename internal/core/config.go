// Package core implements the TD-Pipe centralized engine — the control
// plane of the hierarchy-controller structure (paper §3). It owns
// batching, memory accounting and phase switching, and drives the
// distributed runtime (package runtime) purely through control
// messages, mirroring Figure 7:
//
//   - temporally-disaggregated phases: the engine keeps the pipeline in
//     a single phase (prefill or decode) for long stretches (§3.1);
//   - Approach 1, AI-based greedy prefill: predicted output lengths +
//     simulated future KV usage decide when to stop prefilling
//     (Algorithm 1, §3.3);
//   - Approach 2, inter-batch work stealing: a sliding-window average
//     rebalances decode batches as requests finish (§3.4, Fig. 9);
//   - Approach 3, spatial-temporal intensity comparison: profiled
//     decode intensity vs. projected switch bubble decides when to
//     return to prefill (§3.5, Fig. 10).
package core

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/workload"
)

// LenPredictor estimates a request's output length. The production
// implementation is predictor.Classifier; tests also use oracles and
// constants.
type LenPredictor interface {
	PredictLen(r workload.Request) int
}

// OraclePredictor returns the true output length — the upper bound for
// ablating prediction quality.
type OraclePredictor struct{}

// PredictLen returns the request's actual output length.
func (OraclePredictor) PredictLen(r workload.Request) int { return r.OutputLen }

// ConstPredictor always predicts a fixed length.
type ConstPredictor int

// PredictLen returns the constant.
func (c ConstPredictor) PredictLen(workload.Request) int { return int(c) }

// Config parameterizes a TD-Pipe engine.
type Config struct {
	// Node is the hardware; World GPUs are used as pipeline stages.
	Node  hw.Node
	Spec  model.Spec
	World int

	// Predictor supplies output-length estimates for Approach 1.
	Predictor LenPredictor

	// MemUtilization is the fraction of device memory usable
	// (vLLM's gpu_memory_utilization; default 0.90).
	MemUtilization float64
	// ReserveGB is per-GPU memory withheld for activations, CUDA
	// context and NCCL workspace, as vLLM's memory profiler would.
	ReserveGB float64
	// BlockSize is the KV block granularity in tokens.
	BlockSize int
	// MaxPrefillTokens caps tokens per prefill batch.
	MaxPrefillTokens int

	// FuturePointStride/FuturePointMax define Algorithm 1's
	// decision steps (the paper checks the 32nd, 64th, ..., 1024th).
	FuturePointStride int
	FuturePointMax    int

	// PeakProfileBatch is the "sufficiently large batch size" used to
	// profile Peak for spatial intensity (§3.5).
	PeakProfileBatch int

	// FixedPrefillSwitchRatio, when > 0, replaces Approach 1 with the
	// Fig.-13 ablation hyperparameter: switch to decode once this
	// fraction of KV blocks is occupied.
	FixedPrefillSwitchRatio float64
	// FixedDecodeSwitchRatio, when > 0, replaces Approach 3 with the
	// Fig.-16 ablation hyperparameter: switch to prefill once this
	// fraction of the decode phase's requests have finished.
	FixedDecodeSwitchRatio float64
	// DisableWorkStealing turns off Approach 2 (Fig.-15 "wo" bar);
	// the balanced split at phase entry is kept.
	DisableWorkStealing bool

	// DisablePrefixCache turns off shared-prefix KV reuse: every
	// request prefills its full prompt even on prefix-structured
	// traces (workload.StampPrefixes) — the no-sharing ablation.
	// Sharing is a no-op on unstructured traces either way, so the
	// default (enabled) reproduces all pre-prefix results exactly.
	DisablePrefixCache bool

	// RecordKV enables the Fig.-12 KV usage timeline.
	RecordKV bool

	// Transport selects the control-plane transport between the
	// engine and its workers. The zero value is the zero-roundtrip
	// runtime.TransportDirect; runtime.TransportMailbox restores the
	// goroutine-actor execution plane. All transports produce
	// bit-identical reports (regression-tested).
	Transport runtime.Transport

	// SLO is the latency objective folded into the run's latency
	// digest (goodput accounting). The zero value disables it.
	SLO metrics.SLO

	// Slowdown stretches every pass's duration by this factor — the
	// straggler-replica model of the fault injector (1.0 and 0 both
	// mean nominal speed; 1.3 models a 30% slower node).
	Slowdown float64

	// CheckpointInterval, when > 0, snapshots the KV of every resident
	// request with output every this many virtual seconds, so a crash
	// can resume them from the checkpoint instead of re-prefilling
	// (fault-tolerance trade-off: each round stalls the GPUs for the
	// serialization time). Zero disables checkpointing entirely — no
	// extra events are scheduled, preserving bit-identical fault-free
	// runs.
	CheckpointInterval float64
}

// DefaultConfig returns paper-faithful settings for a node/model/world.
func DefaultConfig(node hw.Node, spec model.Spec, world int) Config {
	return Config{
		Node:              node,
		Spec:              spec,
		World:             world,
		Predictor:         OraclePredictor{},
		MemUtilization:    0.90,
		ReserveGB:         3,
		BlockSize:         16,
		MaxPrefillTokens:  2048,
		FuturePointStride: 32,
		FuturePointMax:    1024,
		PeakProfileBatch:  512,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.World <= 0:
		return fmt.Errorf("core: world = %d", c.World)
	case c.Predictor == nil:
		return fmt.Errorf("core: nil predictor")
	case c.MemUtilization <= 0 || c.MemUtilization > 1:
		return fmt.Errorf("core: MemUtilization = %v", c.MemUtilization)
	case c.MaxPrefillTokens <= 0:
		return fmt.Errorf("core: MaxPrefillTokens = %d", c.MaxPrefillTokens)
	case c.FuturePointStride <= 0 || c.FuturePointMax < c.FuturePointStride:
		return fmt.Errorf("core: future points %d/%d", c.FuturePointStride, c.FuturePointMax)
	case c.PeakProfileBatch <= 0:
		return fmt.Errorf("core: PeakProfileBatch = %d", c.PeakProfileBatch)
	case c.Slowdown < 0:
		return fmt.Errorf("core: Slowdown = %v", c.Slowdown)
	case c.CheckpointInterval < 0:
		return fmt.Errorf("core: CheckpointInterval = %v", c.CheckpointInterval)
	}
	if err := c.Node.Validate(); err != nil {
		return err
	}
	return c.Spec.Validate()
}

// KVCapacityTokens computes the pipeline's KV capacity in tokens: each
// stage dedicates its memory (minus weights) to the KV slices of its
// own layers, and every resident token needs a slice on every stage, so
// the tightest stage bounds the whole pipeline.
func KVCapacityTokens(cfg Config) (int, error) {
	plan, err := model.Partition(cfg.Spec, cfg.World)
	if err != nil {
		return 0, err
	}
	capTokens := -1
	for st := range plan.Stages {
		avail := cfg.Node.GPU.MemBytes()*cfg.MemUtilization - cfg.ReserveGB*1e9 - plan.StageWeightBytes(st)
		if avail <= 0 {
			return 0, fmt.Errorf("core: OOM: stage %d weights %.1f GB exceed usable memory %.1f GB",
				st, plan.StageWeightBytes(st)/1e9, cfg.Node.GPU.MemBytes()*cfg.MemUtilization/1e9)
		}
		t := int(avail / plan.StageKVBytesPerToken(st))
		if capTokens < 0 || t < capTokens {
			capTokens = t
		}
	}
	if capTokens < cfg.MaxPrefillTokens {
		return 0, fmt.Errorf("core: OOM: KV capacity %d tokens cannot hold one prefill batch", capTokens)
	}
	return capTokens, nil
}
