package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The instantaneous arrival process must reproduce the offline run
// bit-identically: stamping every arrival at t=0 and not stamping at
// all are the same workload, so reports, per-request completion times
// and records must match exactly.
func TestInstantArrivalsReproduceOfflineRun(t *testing.T) {
	reqs := smallTrace(200, 3)
	offline, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	stamped := workload.StampArrivals(reqs, workload.Instant{}, 99)
	online, err := Run(fastConfig(4), stamped)
	if err != nil {
		t.Fatal(err)
	}
	if offline.Report != online.Report {
		t.Errorf("reports differ:\noffline: %+v\ninstant: %+v", offline.Report, online.Report)
	}
	if len(offline.Finished) != len(online.Finished) {
		t.Fatalf("finished lengths differ: %d vs %d", len(offline.Finished), len(online.Finished))
	}
	for i := range offline.Finished {
		if offline.Finished[i] != online.Finished[i] {
			t.Fatalf("request %d finished at %v offline, %v under instant arrivals",
				i, offline.Finished[i], online.Finished[i])
		}
		if offline.Records[i] != online.Records[i] {
			t.Fatalf("request %d records differ: %+v vs %+v", i, offline.Records[i], online.Records[i])
		}
	}
}

// Open-loop arrivals: the engine must admit requests only once virtual
// time reaches their arrival, finish everything, and produce causally
// consistent per-request records.
func TestPoissonArrivalsAdmissionCausality(t *testing.T) {
	reqs := workload.StampArrivals(smallTrace(150, 5), workload.Poisson{Rate: 50}, 7)
	res, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != len(reqs) {
		t.Fatalf("completed %d of %d", res.Report.Requests, len(reqs))
	}
	if res.Report.Latency.Requests != len(reqs) {
		t.Fatalf("latency digest covers %d of %d", res.Report.Latency.Requests, len(reqs))
	}
	var lastArrival float64
	for i, rec := range res.Records {
		if rec.Arrival != reqs[i].ArrivalTime {
			t.Fatalf("request %d arrival %v, stamped %v", i, rec.Arrival, reqs[i].ArrivalTime)
		}
		if rec.FirstToken < rec.Arrival {
			t.Fatalf("request %d produced its first token at %v before arriving at %v",
				i, rec.FirstToken, rec.Arrival)
		}
		if rec.Finish < rec.FirstToken {
			t.Fatalf("request %d finished at %v before first token at %v", i, rec.Finish, rec.FirstToken)
		}
		if rec.Arrival > lastArrival {
			lastArrival = rec.Arrival
		}
	}
	if res.Report.Elapsed < lastArrival {
		t.Errorf("elapsed %v precedes last arrival %v", res.Report.Elapsed, lastArrival)
	}
	// Open-loop must actually spread work: the run cannot be faster
	// than the arrival span.
	if res.Report.Elapsed <= 0 {
		t.Errorf("elapsed = %v", res.Report.Elapsed)
	}
}

// A long arrival gap must drain the engine to idle and restart it; the
// late request's TTFT is measured from its own arrival, not t=0.
func TestIdleGapRestart(t *testing.T) {
	reqs := smallTrace(2, 9)
	reqs[1].ArrivalTime = 1000
	res, err := Run(fastConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Elapsed < 1000 {
		t.Fatalf("elapsed %v; late request ignored?", res.Report.Elapsed)
	}
	late := res.Records[1]
	if late.FirstToken < 1000 {
		t.Errorf("late request got first token at %v, before its arrival", late.FirstToken)
	}
	if ttft := late.TTFT(); ttft < 0 || ttft > 100 {
		t.Errorf("late request TTFT = %v; want small and measured from its arrival", ttft)
	}
	early := res.Records[0]
	if early.Finish >= 1000 {
		t.Errorf("early request finished at %v; should complete during the gap", early.Finish)
	}
}

// StartOnline + Submit on a shared simulation must behave like Run on
// the same trace: the co-simulation entry points are a refactoring of
// the same machine.
func TestSubmitMatchesRun(t *testing.T) {
	reqs := workload.StampArrivals(smallTrace(60, 11), workload.Poisson{Rate: 40}, 3)

	want, err := Run(fastConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine()
	e, err := NewEngine(eng, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.StartOnline(); err != nil {
		t.Fatal(err)
	}
	if err := e.StartOnline(); err == nil {
		t.Fatal("double StartOnline accepted")
	}
	for _, r := range reqs {
		r := r
		eng.At(sim.Time(r.ArrivalTime), func() { e.Submit(r) })
	}
	eng.Run()
	got, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if want.Report != got.Report {
		t.Errorf("reports differ:\nRun:    %+v\nSubmit: %+v", want.Report, got.Report)
	}
}

// The SLO must flow into the digest and count good requests.
func TestEngineSLOGoodput(t *testing.T) {
	cfg := fastConfig(2)
	cfg.SLO = metrics.SLO{E2E: 1e9} // everything is good
	res, err := Run(cfg, smallTrace(50, 13))
	if err != nil {
		t.Fatal(err)
	}
	if g := res.Report.Latency.Goodput(); g != 1 {
		t.Errorf("goodput under loose SLO = %v", g)
	}
	cfg = fastConfig(2)
	cfg.SLO = metrics.SLO{TTFT: 1e-9} // nothing is good
	res, err = Run(cfg, smallTrace(50, 13))
	if err != nil {
		t.Fatal(err)
	}
	if g := res.Report.Latency.Goodput(); g != 0 {
		t.Errorf("goodput under impossible SLO = %v", g)
	}
}
