package core

import (
	"math"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// fastConfig is a small configuration that completes in milliseconds of
// wall time: Tiny model on the test node.
func fastConfig(world int) Config {
	cfg := DefaultConfig(hw.L20, model.Tiny, world)
	cfg.ReserveGB = 0
	cfg.MaxPrefillTokens = 512
	cfg.PeakProfileBatch = 128
	return cfg
}

func smallTrace(n int, seed int64) []workload.Request {
	cfg := workload.DefaultConfig(n, seed)
	cfg.MaxInputLen = 255
	cfg.MaxOutputLen = 128
	cfg.InputLogMean = 4.0
	return workload.MustGenerate(cfg)
}

func TestEngineValidatesConfig(t *testing.T) {
	bad := fastConfig(0)
	if _, err := NewEngine(sim.NewEngine(), bad); err == nil {
		t.Error("world=0 accepted")
	}
	bad = fastConfig(2)
	bad.Predictor = nil
	if _, err := NewEngine(sim.NewEngine(), bad); err == nil {
		t.Error("nil predictor accepted")
	}
}

func TestEngineReportsOOMForOversizedModel(t *testing.T) {
	// 70B on a single L20 (48 GB) cannot even hold weights.
	cfg := DefaultConfig(hw.L20, model.Llama2_70B, 1)
	if _, err := NewEngine(sim.NewEngine(), cfg); err == nil {
		t.Error("70B on one L20 did not report OOM")
	}
}

func TestEngineCompletesAllRequests(t *testing.T) {
	reqs := smallTrace(120, 3)
	res, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Requests != 120 {
		t.Errorf("requests = %d", rep.Requests)
	}
	wantOut := 0
	for _, r := range reqs {
		wantOut += r.OutputLen
	}
	if rep.OutputTokens != wantOut {
		t.Errorf("output tokens = %d, want %d (every request fully decoded)", rep.OutputTokens, wantOut)
	}
	if rep.Elapsed <= 0 {
		t.Errorf("elapsed = %v", rep.Elapsed)
	}
	for id, ft := range res.Finished {
		if ft <= 0 {
			t.Fatalf("request %d has no finish time", id)
		}
	}
}

func TestEngineDeterministic(t *testing.T) {
	reqs := smallTrace(80, 5)
	a, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Elapsed != b.Report.Elapsed || a.Report.PhaseSwitches != b.Report.PhaseSwitches {
		t.Errorf("runs differ: %+v vs %+v", a.Report, b.Report)
	}
	for i := range a.Finished {
		if a.Finished[i] != b.Finished[i] {
			t.Fatalf("finish time of %d differs", i)
		}
	}
}

func TestEngineRejectsNonDenseIDs(t *testing.T) {
	reqs := smallTrace(10, 1)
	reqs[3].ID = 99
	if _, err := Run(fastConfig(2), reqs); err == nil {
		t.Error("non-dense IDs accepted")
	}
}

func TestEngineEmptyTrace(t *testing.T) {
	res, err := Run(fastConfig(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != 0 || res.Report.Elapsed != 0 {
		t.Errorf("empty run report = %+v", res.Report)
	}
}

func TestEngineSingleRequest(t *testing.T) {
	reqs := smallTrace(1, 9)
	res, err := Run(fastConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.OutputTokens != reqs[0].OutputLen {
		t.Errorf("output = %d, want %d", res.Report.OutputTokens, reqs[0].OutputLen)
	}
}

func TestEngineSingleGPU(t *testing.T) {
	reqs := smallTrace(40, 11)
	res, err := Run(fastConfig(1), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != 40 {
		t.Errorf("report = %+v", res.Report)
	}
}

func TestEngineOutputLenOneFinishesAtPrefill(t *testing.T) {
	reqs := smallTrace(8, 13)
	for i := range reqs {
		reqs[i].OutputLen = 1
	}
	res, err := Run(fastConfig(2), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.OutputTokens != 8 {
		t.Errorf("output tokens = %d, want 8", res.Report.OutputTokens)
	}
}

func TestEnginePhasesAlternate(t *testing.T) {
	cfg := fastConfig(4)
	cfg.RecordKV = true
	// Constrain memory so multiple phase cycles are needed.
	cfg.MemUtilization = 0.0001
	reqs := smallTrace(300, 17)
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.PhaseSwitches < 2 {
		t.Errorf("phase switches = %d, want alternation", res.Report.PhaseSwitches)
	}
	if res.KV == nil || len(res.KV.Points) == 0 {
		t.Fatal("KV timeline not recorded")
	}
	if res.KV.Peak() <= 0 || res.KV.Peak() > 1.0 {
		t.Errorf("KV peak = %v", res.KV.Peak())
	}
}

// Fig.-12 dynamics: usage grows during prefill phases and declines over
// decode phases as requests finish.
func TestKVTimelineShape(t *testing.T) {
	cfg := fastConfig(4)
	cfg.RecordKV = true
	cfg.MemUtilization = 0.0001
	reqs := smallTrace(400, 19)
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	pts := res.KV.Points
	// Usage must reach a high watermark and come back down to ~0.
	if res.KV.Peak() < 0.5 {
		t.Errorf("peak usage = %v, memory never filled", res.KV.Peak())
	}
	last := pts[len(pts)-1]
	if last.Usage > 0.2 {
		t.Errorf("final usage = %v, cache not drained", last.Usage)
	}
}

func TestEngineWithRealisticModelAndPredictor(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full A100+70B run")
	}
	cfg := DefaultConfig(hw.A100, model.Llama2_70B, 4)
	reqs := workload.MustGenerate(workload.DefaultConfig(1500, 23))
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MeanUtilization < 0.5 {
		t.Errorf("utilization = %v, TD-Pipe should keep the pipeline busy", res.Report.MeanUtilization)
	}
	if tp := res.Report.OutputThroughput(); tp < 400 || tp > 50000 {
		t.Errorf("throughput = %.0f tokens/s, implausible", tp)
	}
	t.Logf("report: %v", res.Report)
}

func TestWorkStealingImprovesOrMatchesThroughput(t *testing.T) {
	reqs := smallTrace(300, 29)
	with := fastConfig(4)
	without := fastConfig(4)
	without.DisableWorkStealing = true
	a, err := Run(with, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(without, reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Allow a tiny tolerance: stealing must not hurt materially.
	if a.Report.Elapsed > b.Report.Elapsed*1.05 {
		t.Errorf("stealing slowed the run: with=%.3fs without=%.3fs", a.Report.Elapsed, b.Report.Elapsed)
	}
}

func TestFixedRatioAblationModesRun(t *testing.T) {
	reqs := smallTrace(150, 31)
	for _, ratio := range []float64{0.35, 0.95} {
		cfg := fastConfig(4)
		cfg.FixedPrefillSwitchRatio = ratio
		if _, err := Run(cfg, reqs); err != nil {
			t.Errorf("prefill ratio %v failed: %v", ratio, err)
		}
	}
	for _, ratio := range []float64{0.05, 0.80} {
		cfg := fastConfig(4)
		cfg.FixedDecodeSwitchRatio = ratio
		if _, err := Run(cfg, reqs); err != nil {
			t.Errorf("decode ratio %v failed: %v", ratio, err)
		}
	}
}

func TestPredictorsPluggable(t *testing.T) {
	reqs := smallTrace(60, 37)
	for _, p := range []LenPredictor{OraclePredictor{}, ConstPredictor(64)} {
		cfg := fastConfig(2)
		cfg.Predictor = p
		if _, err := Run(cfg, reqs); err != nil {
			t.Errorf("predictor %T failed: %v", p, err)
		}
	}
	if (ConstPredictor(5)).PredictLen(workload.Request{}) != 5 {
		t.Error("ConstPredictor wrong")
	}
	if (OraclePredictor{}).PredictLen(workload.Request{OutputLen: 9}) != 9 {
		t.Error("OraclePredictor wrong")
	}
}

// Underprediction stress: a predictor that always says "1 token" admits
// far too much; the engine must survive via recompute-eviction and
// still finish every request.
func TestRecomputeUnderMisprediction(t *testing.T) {
	cfg := fastConfig(4)
	cfg.Predictor = ConstPredictor(1)
	cfg.MemUtilization = 0.0001
	reqs := smallTrace(250, 41)
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	wantOut := 0
	for _, r := range reqs {
		wantOut += r.OutputLen
	}
	if res.Report.OutputTokens != wantOut {
		t.Errorf("output = %d, want %d despite evictions", res.Report.OutputTokens, wantOut)
	}
	t.Logf("recomputes under misprediction: %d", res.Report.Recomputes)
}

func TestEngineCannotRunTwice(t *testing.T) {
	eng := sim.NewEngine()
	e, err := NewEngine(eng, fastConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(smallTrace(5, 43)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(smallTrace(5, 43)); err == nil {
		t.Error("second Run accepted")
	}
}

func TestCapacityTokens(t *testing.T) {
	cfg := DefaultConfig(hw.A100, model.Llama2_70B, 4)
	capTok, err := KVCapacityTokens(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ~37 GB usable per stage / ~81.9 KB per token per stage -> ~450k.
	if capTok < 100000 || capTok > 2000000 {
		t.Errorf("capacity = %d tokens, implausible", capTok)
	}
	if _, err := KVCapacityTokens(DefaultConfig(hw.L20, model.Llama2_70B, 2)); err == nil {
		t.Error("70B on 2x L20 did not OOM")
	}
}

func TestUtilizationWithinBounds(t *testing.T) {
	reqs := smallTrace(100, 47)
	res, err := Run(fastConfig(4), reqs)
	if err != nil {
		t.Fatal(err)
	}
	u := res.Report.MeanUtilization
	if u <= 0 || u > 1 || math.IsNaN(u) {
		t.Errorf("utilization = %v", u)
	}
	if math.Abs(res.Report.BubbleRatio-(1-u)) > 1e-12 {
		t.Errorf("bubble ratio inconsistent: %v vs 1-%v", res.Report.BubbleRatio, u)
	}
}
