package core

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/workload"
)

// BenchmarkEngineEndToEnd measures full TD-Pipe runs on the paper's
// largest configuration — the simulator's overall speed, which bounds
// how large a sweep the experiment harness can afford.
func BenchmarkEngineEndToEnd(b *testing.B) {
	b.ReportAllocs()
	reqs := workload.MustGenerate(workload.DefaultConfig(1000, 3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig(hw.A100, model.Llama2_70B, 4)
		if _, err := Run(cfg, reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStealerRebalance measures the per-decode-step balancing cost.
func BenchmarkStealerRebalance(b *testing.B) {
	b.ReportAllocs()
	s := NewStealer(4, true)
	s.Prime([]int{128, 128, 128, 128})
	batch := make([]int, 128)
	for i := range batch {
		batch[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := s.Rebalance(i%4, batch[:120+i%8])
		_ = out
	}
}

// BenchmarkUsageSim measures Algorithm 1's per-prefill bookkeeping.
func BenchmarkUsageSim(b *testing.B) {
	b.ReportAllocs()
	s := newUsageSim(32, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.UpdateUsage(300, 400)
		if i%1000 == 0 {
			s.Reset()
		}
	}
}

// BenchmarkIntensityDecision measures the per-step switch evaluation.
func BenchmarkIntensityDecision(b *testing.B) {
	b.ReportAllocs()
	cm, err := costmodel.New(hw.A100, model.Llama2_70B)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := model.Partition(model.Llama2_70B, 4)
	if err != nil {
		b.Fatal(err)
	}
	x := NewIntensity(cm, plan, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		si := x.Spatial(100+i%50, 500, 200)
		ti := x.Temporal(nil, 0.02, 4)
		_ = x.ShouldSwitch(si, ti)
	}
}
