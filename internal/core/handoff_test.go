package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// A prefill engine wired straight into a decode engine (zero-delay
// transfer) must complete every multi-token request on the decode
// side, preserving arrival and first-token instants across the
// hand-off.
func TestEngineHandoffLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	cfg := fastConfig(2)
	pre, err := NewEngine(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pre.Shutdown()
	dec, err := NewEngine(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Shutdown()
	if err := dec.StartOnline(); err != nil {
		t.Fatal(err)
	}

	reqs := workload.StampArrivals(smallTrace(120, 31), workload.Poisson{Rate: 300}, 3)
	handoffs := 0
	pre.SetHandoff(func(h Handoff) {
		handoffs++
		if h.Generated < 1 {
			t.Fatalf("hand-off before any output token: %+v", h)
		}
		if h.KV.Tokens <= 0 {
			t.Fatalf("hand-off carries no KV: %+v", h)
		}
		if !dec.CanImportKV(h.KV) {
			t.Fatalf("decode engine cannot import %d blocks", h.KV.Blocks())
		}
		// Map back through the prefill engine's dense ids: the trace
		// request is h.Req with its original arrival.
		if _, err := dec.SubmitDecoded(h.Req, h); err != nil {
			t.Fatal(err)
		}
	})
	if err := pre.Start(reqs); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	preRes, err := pre.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	decRes, err := dec.Finalize()
	if err != nil {
		t.Fatal(err)
	}

	multi := 0
	for _, r := range reqs {
		if r.OutputLen > 1 {
			multi++
		}
	}
	if handoffs != multi {
		t.Errorf("%d hand-offs for %d multi-token requests", handoffs, multi)
	}
	if got := decRes.Report.Requests; got != multi {
		t.Errorf("decode engine completed %d requests, want %d", got, multi)
	}
	// Decode-side records must span the whole lifecycle: original
	// arrival, prefill-side first token, full output.
	for _, rec := range decRes.Records {
		if !rec.Finished() {
			t.Errorf("unfinished decode record %+v", rec)
		}
		if rec.FirstToken < rec.Arrival {
			t.Errorf("first token %v before arrival %v", rec.FirstToken, rec.Arrival)
		}
		if rec.OutputTokens < 2 {
			t.Errorf("decode record with %d tokens (single-token outputs stay at prefill)", rec.OutputTokens)
		}
	}
	// Token conservation across the pools.
	wantOut := 0
	for _, r := range reqs {
		wantOut += r.OutputLen
	}
	gotOut := decRes.Report.OutputTokens
	for _, r := range reqs {
		if r.OutputLen == 1 {
			gotOut++ // finished at the prefill engine
		}
	}
	if gotOut != wantOut {
		t.Errorf("output tokens %d, want %d", gotOut, wantOut)
	}
	// The prefill engine retired everything (hand-off counts as local
	// completion) and never entered a decode phase.
	if preRes.Report.Requests != len(reqs) {
		t.Errorf("prefill engine retired %d of %d", preRes.Report.Requests, len(reqs))
	}
	if preRes.Report.PhaseSwitches != 0 {
		t.Errorf("prefill server switched phases %d times", preRes.Report.PhaseSwitches)
	}
}

// SubmitDecoded on an idle decode engine must start a decode phase by
// itself, and staged imports must be injected into the running batch
// at step boundaries (continuous batching), not parked until the
// phase drains.
func TestSubmitDecodedContinuousBatching(t *testing.T) {
	eng := sim.NewEngine()
	cfg := fastConfig(2)
	src, err := NewEngine(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Shutdown()
	dec, err := NewEngine(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Shutdown()
	if err := dec.StartOnline(); err != nil {
		t.Fatal(err)
	}

	// Long-output requests arriving in a staggered stream: if imports
	// waited for the phase to drain, the makespan would be nearly
	// serial in the number of requests.
	reqs := make([]workload.Request, 8)
	for i := range reqs {
		reqs[i] = workload.Request{
			ID: i, InputLen: 64, OutputLen: 200,
			ArrivalTime: float64(i) * 0.01,
		}
	}
	src.SetHandoff(func(h Handoff) {
		if _, err := dec.SubmitDecoded(h.Req, h); err != nil {
			t.Fatal(err)
		}
	})
	if err := src.Start(reqs); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, err := src.Finalize(); err != nil {
		t.Fatal(err)
	}
	res, err := dec.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Requests != len(reqs) {
		t.Fatalf("decoded %d of %d", res.Report.Requests, len(reqs))
	}
	// Continuous batching bound: with all requests joining one running
	// batch, the makespan is close to one request's decode time, far
	// below the serial sum. Allow 3x one request's span for join
	// skew; serial would be ~8x.
	var minSpan, maxFinish float64
	for i, rec := range res.Records {
		span := rec.Finish - rec.FirstToken
		if i == 0 || span < minSpan {
			minSpan = span
		}
		if rec.Finish > maxFinish {
			maxFinish = rec.Finish
		}
	}
	if maxFinish > 3*minSpan {
		t.Errorf("makespan %v vs fastest decode span %v: imports not batched continuously", maxFinish, minSpan)
	}
}
