package core

import (
	"repro/internal/costmodel"
	"repro/internal/model"
)

// Approach 3: spatial-temporal intensity comparison (§3.5, Fig. 10).
//
// Spatial intensity measures how efficiently the hardware runs if the
// decode phase continues: the profiled per-request rate at the current
// batch size relative to the rate at a saturating batch size ("Peak").
// Temporal intensity measures how efficiently the next cycle runs if we
// switch now: 1 minus the fraction of the cycle lost to the switch
// bubble. The engine switches to prefill when SI < TI.

// Intensity evaluates both intensities from the profiled cost model —
// the same way the real system derives them from on-device profiling.
type Intensity struct {
	cm        *costmodel.Model
	plan      model.PipelinePlan
	peakBatch int
}

// NewIntensity profiles with peakBatch as the "sufficiently large batch
// size" for Peak.
func NewIntensity(cm *costmodel.Model, plan model.PipelinePlan, peakBatch int) *Intensity {
	return &Intensity{cm: cm, plan: plan, peakBatch: peakBatch}
}

// perRequestRate is the profiled reciprocal of average execution time
// per request at a batch size (Fig. 10 left), using the bottleneck
// stage since it paces the pipeline.
func (x *Intensity) perRequestRate(batch, avgCtx int) float64 {
	if batch <= 0 {
		return 0
	}
	t := x.cm.DecodeBottleneck(x.plan, batch, batch*avgCtx)
	if t <= 0 {
		return 0
	}
	return float64(batch) / t
}

// Spatial returns Achieved/Peak for the current per-slot batch size and
// average context length, clamped to [0, 1]. feasiblePeak bounds the
// profiling batch: "peak achievable performance" means achievable
// within this deployment's KV capacity, so on fat-KV models the
// reference batch is the largest one memory can actually hold, not an
// abstract saturating size.
func (x *Intensity) Spatial(batch, avgCtx, feasiblePeak int) float64 {
	pb := x.peakBatch
	if feasiblePeak > 0 && feasiblePeak < pb {
		pb = feasiblePeak
	}
	if pb < 1 {
		pb = 1
	}
	peak := x.perRequestRate(pb, avgCtx)
	if peak <= 0 {
		return 0
	}
	si := x.perRequestRate(batch, avgCtx) / peak
	if si > 1 {
		si = 1
	}
	return si
}

// Temporal returns 1 - bubble/total for the pending prefill batches
// that could launch now. The bubble is the mismatch between the longest
// pending prefill and the current decode step; the total is the pending
// prefill work plus one decode step per pipeline batch plus the bubble
// (§3.5). With nothing to prefill it returns 0 — switching buys
// nothing.
func (x *Intensity) Temporal(pending []costmodel.PrefillBatch, decodeStep float64, slots int) float64 {
	if len(pending) == 0 {
		return 0
	}
	var longest, total float64
	for _, b := range pending {
		t := x.cm.PrefillBottleneck(x.plan, b)
		total += t
		if t > longest {
			longest = t
		}
	}
	bubble := longest - decodeStep
	if bubble < 0 {
		bubble = 0
	}
	total += float64(slots)*decodeStep + bubble
	if total <= 0 {
		return 0
	}
	return 1 - bubble/total
}

// ShouldSwitch applies the §3.5 decision rule.
func (x *Intensity) ShouldSwitch(si, ti float64) bool { return si < ti }
