// Package policy is the serving-policy sandbox: composable, seeded,
// deterministic front-door components a fleet router attaches in front
// of its replicas, plus the elastic autoscaler that breathes the fleet
// with load.
//
// Every component runs in virtual time (the shared simulation clock)
// and keeps only plain scalar state, so a run with a given stack and
// seed is bit-reproducible and independent of the fleet fabric's
// worker count. The components are:
//
//   - TokenBucket: admission control / rate limiting at the front door.
//     Arrivals that find the bucket empty are shed.
//   - Breaker: a per-replica circuit breaker (closed -> open ->
//     half-open) fed by the replica's TTFT-SLO outcomes; open breakers
//     are skipped by routing until a half-open probe succeeds.
//   - Backoff: the deterministic retry schedule shed or dropped
//     requests re-enter admission with.
//   - Autoscaler: watches windowed SLO signals (TTFT p99, queue depth,
//     goodput) and scales the active replica set between Min and Max,
//     paying a modeled cold-start (weight-load) delay on the way up.
//   - Preemption: priority tiers; under KV pressure a high-priority
//     arrival evicts low-priority decodes through the engine's
//     eviction-recompute path.
//
// A Stack composes any subset. The zero/nil stack is inactive: routers
// take their exact pre-policy code path, byte-for-byte (enforced by the
// fleet determinism suite).
package policy

// Stack bundles the front-door policies and the autoscaler one router
// run composes. Nil fields disable the component; a nil or all-nil
// stack is inactive and routers bypass the policy layer entirely.
type Stack struct {
	// Admission is the front-door token bucket; arrivals that find it
	// empty are shed (and retried when Retry is configured).
	Admission *TokenBucket
	// Retry schedules re-admission of shed requests. Without it a shed
	// request is dropped immediately.
	Retry *Backoff
	// Breaker, when non-nil, gives every replica a circuit breaker
	// built from this configuration.
	Breaker *BreakerConfig
	// Autoscaler scales the active replica set; nil pins the fleet at
	// its static size.
	Autoscaler *Autoscaler
	// Preemption enables priority tiers with low-priority decode
	// eviction.
	Preemption *PreemptionConfig
}

// Active reports whether any component is configured. Inactive stacks
// (nil, or no components) make routers take the exact policy-free code
// path, preserving byte-identical reports.
func (s *Stack) Active() bool {
	return s != nil && (s.Admission != nil || s.Retry != nil || s.Breaker != nil ||
		s.Autoscaler != nil || s.Preemption != nil)
}

// PreemptionConfig enables priority tiers with preemption: requests
// carry a workload Priority tier (0 is highest), and a tier-0 arrival
// that finds its replica short on KV headroom evicts resident requests
// of tier >= EvictTier through the engine's eviction-recompute path —
// the victims requeue locally for a fresh prefill behind the
// preemptor.
type PreemptionConfig struct {
	// EvictTier is the lowest-importance tier protected from eviction
	// minus one: requests with Priority >= EvictTier are evictable.
	// Zero defaults to 1 (everything below the top tier).
	EvictTier int
}

// Evictable returns the minimum evictable priority tier.
func (p PreemptionConfig) Evictable() int {
	if p.EvictTier <= 0 {
		return 1
	}
	return p.EvictTier
}
