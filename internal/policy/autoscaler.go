package policy

import "fmt"

// Signals is the windowed SLO view the router hands the autoscaler at
// each evaluation tick: everything observed since the previous tick.
type Signals struct {
	// QueuePerReplica is the outstanding (admitted, unfinished) request
	// count divided by the active replica count at the tick instant.
	QueuePerReplica float64
	// TTFTP99 is the 99th-percentile time-to-first-token of the
	// completions in the window (0 when nothing completed).
	TTFTP99 float64
	// Goodput is the fraction of window completions meeting the TTFT
	// target (1 when nothing completed).
	Goodput float64
	// Active is the number of replicas currently serving traffic;
	// Warming counts replicas paying their cold-start weight load.
	Active, Warming int
}

// Autoscaler decides replica-count changes from windowed SLO signals.
// It is a pure state machine over virtual time: the same tick sequence
// always produces the same decisions. The router executes decisions on
// the fleet's control timeline — scale-ups pay ColdStart seconds of
// weight-load warming before the replica becomes routable, scale-downs
// drain the victim (no new traffic, running requests finish) before
// its GPU-second meter stops.
type Autoscaler struct {
	cfg        AutoscalerConfig
	lastUp     float64
	lastDown   float64
	everTicked bool
}

// AutoscalerConfig parameterizes the controller.
type AutoscalerConfig struct {
	// Min and Max bound the active replica count. The router clamps
	// Max to the provisioned fleet size.
	Min, Max int
	// Initial is the active count at t=0 (0 defaults to Min).
	Initial int
	// Interval is the evaluation cadence in virtual seconds.
	Interval float64
	// ColdStart is the scale-up delay in virtual seconds (weight-load
	// time for the replica's pipeline stages; see
	// faults.WeightReloadTime).
	ColdStart float64
	// ScaleUpQueue adds a replica when QueuePerReplica exceeds it.
	ScaleUpQueue float64
	// ScaleDownQueue removes a replica when QueuePerReplica (counted
	// against one fewer replica) stays under it.
	ScaleDownQueue float64
	// TTFTTarget, when > 0, also votes to scale up while the windowed
	// TTFT p99 exceeds it, and blocks scale-downs while it does.
	TTFTTarget float64
	// UpCooldown and DownCooldown are the minimum virtual seconds
	// between consecutive scale-ups / scale-downs. Zero means the
	// Interval itself is the only pacing.
	UpCooldown, DownCooldown float64
	// Step is the replica count per scale action. Zero defaults to 1.
	Step int
}

// Validate reports a configuration error, if any.
func (c AutoscalerConfig) Validate() error {
	switch {
	case c.Min < 1:
		return fmt.Errorf("policy: autoscaler Min = %d", c.Min)
	case c.Max < c.Min:
		return fmt.Errorf("policy: autoscaler Max %d < Min %d", c.Max, c.Min)
	case c.Initial != 0 && (c.Initial < c.Min || c.Initial > c.Max):
		return fmt.Errorf("policy: autoscaler Initial %d outside [%d, %d]", c.Initial, c.Min, c.Max)
	case c.Interval <= 0:
		return fmt.Errorf("policy: autoscaler Interval = %v", c.Interval)
	case c.ColdStart < 0:
		return fmt.Errorf("policy: autoscaler ColdStart = %v", c.ColdStart)
	case c.ScaleUpQueue <= 0:
		return fmt.Errorf("policy: autoscaler ScaleUpQueue = %v", c.ScaleUpQueue)
	case c.ScaleDownQueue < 0 || c.ScaleDownQueue >= c.ScaleUpQueue:
		return fmt.Errorf("policy: autoscaler ScaleDownQueue %v must be in [0, ScaleUpQueue)", c.ScaleDownQueue)
	}
	return nil
}

// NewAutoscaler builds the controller; cfg must validate.
func NewAutoscaler(cfg AutoscalerConfig) (*Autoscaler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Step <= 0 {
		cfg.Step = 1
	}
	return &Autoscaler{cfg: cfg}, nil
}

// Config returns the validated configuration.
func (a *Autoscaler) Config() AutoscalerConfig { return a.cfg }

// InitialReplicas returns the active count the fleet starts with.
func (a *Autoscaler) InitialReplicas() int {
	if a.cfg.Initial > 0 {
		return a.cfg.Initial
	}
	return a.cfg.Min
}

// Decide returns the replica delta for the tick at virtual time t:
// positive to scale up (the router warms that many replicas), negative
// to scale down (the router drains that many), zero to hold. The
// provisioned count (active + warming) is what the decision moves.
func (a *Autoscaler) Decide(t float64, s Signals) int {
	provisioned := s.Active + s.Warming
	overloaded := s.QueuePerReplica > a.cfg.ScaleUpQueue ||
		(a.cfg.TTFTTarget > 0 && s.TTFTP99 > a.cfg.TTFTTarget)
	if overloaded && provisioned < a.cfg.Max {
		if a.everTicked && a.cfg.UpCooldown > 0 && t-a.lastUp < a.cfg.UpCooldown {
			return 0
		}
		a.everTicked = true
		a.lastUp = t
		n := a.cfg.Step
		if provisioned+n > a.cfg.Max {
			n = a.cfg.Max - provisioned
		}
		return n
	}
	// Scale down only when the remaining replicas would still sit
	// under the low-water queue mark and the latency tail is healthy.
	if provisioned > a.cfg.Min && s.Warming == 0 && !overloaded &&
		(a.cfg.TTFTTarget <= 0 || s.TTFTP99 <= a.cfg.TTFTTarget) {
		shrunk := float64(s.Active) * s.QueuePerReplica / float64(max(s.Active-a.cfg.Step, 1))
		if shrunk >= a.cfg.ScaleDownQueue {
			return 0
		}
		if a.everTicked && a.cfg.DownCooldown > 0 && t-a.lastDown < a.cfg.DownCooldown {
			return 0
		}
		a.everTicked = true
		a.lastDown = t
		n := a.cfg.Step
		if provisioned-n < a.cfg.Min {
			n = provisioned - a.cfg.Min
		}
		return -n
	}
	return 0
}
