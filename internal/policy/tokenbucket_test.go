package policy

import "testing"

func TestTokenBucket(t *testing.T) {
	cases := []struct {
		name    string
		rate    float64
		burst   float64
		arrives []float64
		want    []bool
	}{
		{
			name:    "burst then starve",
			rate:    1,
			burst:   2,
			arrives: []float64{0, 0, 0, 0.5, 1.5},
			want:    []bool{true, true, false, false, true},
		},
		{
			name:    "steady rate admits steady traffic",
			rate:    2,
			burst:   1,
			arrives: []float64{0, 0.5, 1.0, 1.5},
			want:    []bool{true, true, true, true},
		},
		{
			name:    "refill caps at burst",
			rate:    10,
			burst:   2,
			arrives: []float64{0, 100, 100, 100},
			want:    []bool{true, true, true, false},
		},
		{
			name:    "sub-token refill accumulates",
			rate:    0.5,
			burst:   1,
			arrives: []float64{0, 1, 2, 2.1},
			want:    []bool{true, false, true, false},
		},
		{
			name:    "burst below one rounds up",
			rate:    1,
			burst:   0.25,
			arrives: []float64{0, 0, 1},
			want:    []bool{true, false, true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewTokenBucket(tc.rate, tc.burst)
			for i, at := range tc.arrives {
				if got := b.Allow(at); got != tc.want[i] {
					t.Fatalf("arrival %d at t=%v: Allow = %v, want %v", i, at, got, tc.want[i])
				}
			}
		})
	}
}

func TestTokenBucketDeterministic(t *testing.T) {
	arrives := []float64{0, 0.1, 0.2, 0.9, 1.0, 1.7, 3.2, 3.3, 3.4, 9}
	run := func() []bool {
		b := NewTokenBucket(1.5, 3)
		out := make([]bool, len(arrives))
		for i, at := range arrives {
			out[i] = b.Allow(at)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}
