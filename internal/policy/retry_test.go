package policy

import "testing"

func TestBackoffEnvelope(t *testing.T) {
	b := NewBackoff(BackoffConfig{Base: 1, Factor: 2, Max: 10})
	want := []float64{1, 2, 4, 8, 10, 10}
	for i, w := range want {
		if got := b.Delay(i + 1); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := b.Delay(0); got != 1 {
		t.Fatalf("Delay(0) = %v, want clamp to first attempt (1)", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := NewBackoff(BackoffConfig{Base: 2, Factor: 2, Max: 100, Jitter: 0.5, Seed: 7})
	for attempt := 1; attempt <= 6; attempt++ {
		raw := 2.0
		for i := 1; i < attempt; i++ {
			raw *= 2
		}
		if raw > 100 {
			raw = 100
		}
		got := b.Delay(attempt)
		if got < raw || got > raw*1.5 {
			t.Fatalf("Delay(%d) = %v outside jitter envelope [%v, %v]", attempt, got, raw, raw*1.5)
		}
	}
}

func TestBackoffSeededDeterminism(t *testing.T) {
	mk := func(seed int64) []float64 {
		b := NewBackoff(BackoffConfig{Base: 1, Factor: 2, Max: 60, Jitter: 0.25, Seed: seed})
		out := make([]float64, 8)
		for i := range out {
			out[i] = b.Delay(i + 1)
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jittered schedules")
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := NewBackoff(BackoffConfig{})
	if b.MaxAttempts() != DefaultMaxAttempts {
		t.Fatalf("MaxAttempts = %d, want %d", b.MaxAttempts(), DefaultMaxAttempts)
	}
	if got := b.Delay(1); got != 1 {
		t.Fatalf("default Delay(1) = %v, want 1", got)
	}
	if got := b.Delay(2); got != 2 {
		t.Fatalf("default Delay(2) = %v, want 2", got)
	}
	if got := b.Delay(20); got != 60 {
		t.Fatalf("default Delay(20) = %v, want cap 60", got)
	}
}
