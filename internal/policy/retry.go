package policy

import "math/rand"

// Backoff is a deterministic exponential-backoff schedule with seeded
// jitter: attempt k (1-based) waits Base*Factor^(k-1) seconds, capped
// at Max, stretched by a uniform jitter drawn from the seeded RNG.
// Draws happen in Delay-call order, which the router makes canonical
// (control events execute in time order), so retry schedules are
// bit-reproducible for a fixed seed.
type Backoff struct {
	base        float64
	factor      float64
	max         float64
	jitter      float64
	maxAttempts int
	rng         *rand.Rand
}

// DefaultMaxAttempts bounds admission retries when BackoffConfig leaves
// MaxAttempts zero.
const DefaultMaxAttempts = 3

// BackoffConfig parameterizes a Backoff schedule.
type BackoffConfig struct {
	// Base is the first delay in seconds. Zero defaults to 1 s.
	Base float64
	// Factor multiplies the delay each attempt. Zero defaults to 2.
	Factor float64
	// Max caps any single delay. Zero defaults to 60 s.
	Max float64
	// Jitter is the fractional spread: each delay is multiplied by a
	// uniform draw from [1, 1+Jitter]. Zero means no jitter.
	Jitter float64
	// MaxAttempts bounds re-admissions before a request is dropped.
	// Zero defaults to DefaultMaxAttempts.
	MaxAttempts int
	// Seed drives the jitter RNG.
	Seed int64
}

// NewBackoff builds the schedule (zero config fields take the
// documented defaults).
func NewBackoff(cfg BackoffConfig) *Backoff {
	if cfg.Base <= 0 {
		cfg.Base = 1
	}
	if cfg.Factor <= 0 {
		cfg.Factor = 2
	}
	if cfg.Max <= 0 {
		cfg.Max = 60
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	return &Backoff{
		base:        cfg.Base,
		factor:      cfg.Factor,
		max:         cfg.Max,
		jitter:      cfg.Jitter,
		maxAttempts: cfg.MaxAttempts,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
}

// MaxAttempts returns the retry budget.
func (b *Backoff) MaxAttempts() int { return b.maxAttempts }

// Delay returns the wait before re-admission attempt number attempt
// (1-based). Attempts at or below zero are treated as the first.
func (b *Backoff) Delay(attempt int) float64 {
	if attempt < 1 {
		attempt = 1
	}
	d := b.base
	for i := 1; i < attempt; i++ {
		d *= b.factor
		if d >= b.max {
			d = b.max
			break
		}
	}
	if d > b.max {
		d = b.max
	}
	if b.jitter > 0 {
		d *= 1 + b.jitter*b.rng.Float64()
	}
	return d
}
