package policy

// TokenBucket is a deterministic virtual-time token bucket: capacity
// Burst tokens, refilled continuously at Rate tokens per second. Each
// admitted request takes one token; a request that finds less than one
// token is shed. State is two scalars, so admission decisions depend
// only on the arrival instants — never on wall clock or worker count.
type TokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   float64
}

// NewTokenBucket returns a full bucket refilling at rate tokens/s up to
// burst capacity. Rate and burst must be positive; burst below one
// token would shed everything and is rounded up to one.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}
}

// Rate returns the refill rate in tokens per second.
func (b *TokenBucket) Rate() float64 { return b.rate }

// Burst returns the bucket capacity in tokens.
func (b *TokenBucket) Burst() float64 { return b.burst }

// Allow consumes one token at virtual time t and reports whether the
// request is admitted. Calls must be non-decreasing in t (the router
// invokes it from time-ordered control events); an earlier t refills
// nothing.
func (b *TokenBucket) Allow(t float64) bool {
	if dt := t - b.last; dt > 0 {
		b.tokens += dt * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = t
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
