package policy

import "testing"

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, Cooldown: 10, HalfOpenSuccesses: 2})

	if got := b.State(0); got != Closed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	// Two failures: still closed.
	b.OnFailure(1)
	b.OnFailure(2)
	if got := b.State(2); got != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	// A success resets the consecutive-failure count.
	b.OnSuccess(3)
	b.OnFailure(4)
	b.OnFailure(5)
	if got := b.State(5); got != Closed {
		t.Fatalf("success should reset failures; state = %v, want closed", got)
	}
	// Third consecutive failure trips it open.
	b.OnFailure(6)
	if got := b.State(6); got != Open {
		t.Fatalf("state after threshold failures = %v, want open", got)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	if b.Allow(7) {
		t.Fatal("open breaker allowed a request inside cooldown")
	}
	// Cooldown elapses: half-open, one probe at a time.
	if got := b.State(16); got != HalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}
	if !b.Allow(16) {
		t.Fatal("half-open breaker refused the first probe")
	}
	if b.Allow(16.5) {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	// First probe succeeds; need one more to close.
	b.OnSuccess(17)
	if got := b.State(17); got != HalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", got)
	}
	if !b.Allow(17) {
		t.Fatal("half-open breaker refused the second probe after the first resolved")
	}
	b.OnSuccess(18)
	if got := b.State(18); got != Closed {
		t.Fatalf("state after %d probe successes = %v, want closed", 2, got)
	}
	if !b.Allow(19) {
		t.Fatal("closed breaker refused a request")
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: 5, HalfOpenSuccesses: 1})
	b.OnFailure(0)
	if got := b.State(0); got != Open {
		t.Fatalf("state = %v, want open", got)
	}
	if !b.Allow(5) {
		t.Fatal("half-open breaker refused its probe")
	}
	b.OnFailure(6)
	if got := b.State(6); got != Open {
		t.Fatalf("state after failed probe = %v, want open again", got)
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
	// Second cooldown, successful probe closes.
	if !b.Allow(11) {
		t.Fatal("half-open breaker refused probe after second cooldown")
	}
	b.OnSuccess(12)
	if got := b.State(12); got != Closed {
		t.Fatalf("state = %v, want closed", got)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	for i := 0; i < 4; i++ {
		b.OnFailure(float64(i))
	}
	if got := b.State(4); got != Closed {
		t.Fatalf("state after 4 failures under default threshold 5 = %v, want closed", got)
	}
	b.OnFailure(4)
	if got := b.State(4); got != Open {
		t.Fatalf("state after 5 failures = %v, want open", got)
	}
	if got := b.State(4 + 29); got != Open {
		t.Fatalf("state inside default 30 s cooldown = %v, want open", got)
	}
	if got := b.State(4 + 30); got != HalfOpen {
		t.Fatalf("state after default cooldown = %v, want half-open", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	for s, want := range map[BreakerState]string{Closed: "closed", Open: "open", HalfOpen: "half-open"} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", int(s), got, want)
		}
	}
}
