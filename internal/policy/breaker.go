package policy

// BreakerState is a circuit breaker's position.
type BreakerState int

// Circuit breaker states: Closed passes traffic, Open short-circuits
// it, HalfOpen passes a single probe to test recovery.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String renders the state for logs and test failures.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	default:
		return "half-open"
	}
}

// BreakerConfig parameterizes a replica circuit breaker.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that trips the
	// breaker open. Zero defaults to 5.
	FailureThreshold int
	// Cooldown is how long (virtual seconds) the breaker stays open
	// before admitting a half-open probe. Zero defaults to 30 s.
	Cooldown float64
	// HalfOpenSuccesses is the consecutive probe successes needed to
	// close again. Zero defaults to 2.
	HalfOpenSuccesses int
}

// withDefaults fills zero fields.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 2
	}
	return c
}

// Breaker is one replica's circuit breaker: closed until
// FailureThreshold consecutive failures, then open for Cooldown
// virtual seconds, then half-open — one probe request at a time — and
// closed again after HalfOpenSuccesses consecutive probe successes (a
// probe failure reopens it). All transitions are pure functions of the
// virtual-time signal sequence, so breaker behavior is deterministic.
type Breaker struct {
	cfg      BreakerConfig
	state    BreakerState
	fails    int
	succ     int
	openedAt float64
	probes   int // probes admitted and not yet resolved
	trips    int
}

// NewBreaker returns a closed breaker under cfg (zero fields take the
// documented defaults).
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the breaker position at virtual time t (an open breaker
// past its cooldown reports — and becomes — half-open).
func (b *Breaker) State(t float64) BreakerState {
	if b.state == Open && t-b.openedAt >= b.cfg.Cooldown {
		b.state = HalfOpen
		b.succ = 0
		b.probes = 0
	}
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int { return b.trips }

// Routable reports whether Allow would admit a request at virtual time
// t, without consuming the half-open probe slot. Routers use it to
// filter candidates before picking one, then call Allow on the pick.
func (b *Breaker) Routable(t float64) bool {
	switch b.State(t) {
	case Closed:
		return true
	case HalfOpen:
		return b.probes == 0
	default:
		return false
	}
}

// Allow reports whether a request may route to this replica at virtual
// time t. Closed always allows; open allows nothing until the cooldown
// elapses; half-open allows one probe at a time.
func (b *Breaker) Allow(t float64) bool {
	switch b.State(t) {
	case Closed:
		return true
	case HalfOpen:
		if b.probes > 0 {
			return false
		}
		b.probes++
		return true
	default:
		return false
	}
}

// OnSuccess records a successful completion at virtual time t.
func (b *Breaker) OnSuccess(t float64) {
	switch b.State(t) {
	case Closed:
		b.fails = 0
	case HalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		b.succ++
		if b.succ >= b.cfg.HalfOpenSuccesses {
			b.state = Closed
			b.fails = 0
			b.succ = 0
		}
	}
}

// OnFailure records a failed (SLO-violating or aborted) completion at
// virtual time t.
func (b *Breaker) OnFailure(t float64) {
	switch b.State(t) {
	case Closed:
		b.fails++
		if b.fails >= b.cfg.FailureThreshold {
			b.open(t)
		}
	case HalfOpen:
		b.open(t)
	}
}

// open trips the breaker at t.
func (b *Breaker) open(t float64) {
	b.state = Open
	b.openedAt = t
	b.fails = 0
	b.succ = 0
	b.probes = 0
	b.trips++
}
