package policy

import "testing"

func mustAutoscaler(t *testing.T, cfg AutoscalerConfig) *Autoscaler {
	t.Helper()
	a, err := NewAutoscaler(cfg)
	if err != nil {
		t.Fatalf("NewAutoscaler: %v", err)
	}
	return a
}

func TestAutoscalerConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  AutoscalerConfig
		ok   bool
	}{
		{"valid", AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 8, ScaleDownQueue: 2}, true},
		{"min zero", AutoscalerConfig{Min: 0, Max: 4, Interval: 10, ScaleUpQueue: 8}, false},
		{"max below min", AutoscalerConfig{Min: 3, Max: 2, Interval: 10, ScaleUpQueue: 8}, false},
		{"initial outside range", AutoscalerConfig{Min: 2, Max: 4, Initial: 1, Interval: 10, ScaleUpQueue: 8}, false},
		{"no interval", AutoscalerConfig{Min: 1, Max: 4, ScaleUpQueue: 8}, false},
		{"down watermark above up", AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 4, ScaleDownQueue: 5}, false},
		{"negative coldstart", AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 8, ColdStart: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatal("Validate() = nil, want error")
			}
		})
	}
}

func TestAutoscalerScaleUpOnQueue(t *testing.T) {
	a := mustAutoscaler(t, AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 8, ScaleDownQueue: 2})
	if got := a.Decide(10, Signals{QueuePerReplica: 12, Active: 1}); got != 1 {
		t.Fatalf("Decide under overload = %d, want +1", got)
	}
	// Clamp at Max even with Step overshoot.
	b := mustAutoscaler(t, AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 8, ScaleDownQueue: 2, Step: 3})
	if got := b.Decide(10, Signals{QueuePerReplica: 12, Active: 3}); got != 1 {
		t.Fatalf("Decide near Max with Step 3 = %d, want clamp to +1", got)
	}
	if got := b.Decide(20, Signals{QueuePerReplica: 12, Active: 4}); got != 0 {
		t.Fatalf("Decide at Max = %d, want 0", got)
	}
}

func TestAutoscalerScaleUpOnTTFT(t *testing.T) {
	a := mustAutoscaler(t, AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 8, ScaleDownQueue: 2, TTFTTarget: 10})
	if got := a.Decide(10, Signals{QueuePerReplica: 1, TTFTP99: 25, Active: 1}); got != 1 {
		t.Fatalf("Decide under TTFT violation = %d, want +1", got)
	}
}

func TestAutoscalerUpCooldown(t *testing.T) {
	a := mustAutoscaler(t, AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 8, ScaleDownQueue: 2, UpCooldown: 30})
	overload := Signals{QueuePerReplica: 20, Active: 1}
	if got := a.Decide(10, overload); got != 1 {
		t.Fatalf("first Decide = %d, want +1", got)
	}
	overload.Warming = 1
	if got := a.Decide(20, overload); got != 0 {
		t.Fatalf("Decide inside cooldown = %d, want 0", got)
	}
	if got := a.Decide(40, overload); got != 1 {
		t.Fatalf("Decide after cooldown = %d, want +1", got)
	}
}

func TestAutoscalerScaleDown(t *testing.T) {
	a := mustAutoscaler(t, AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 8, ScaleDownQueue: 2})
	if got := a.Decide(10, Signals{QueuePerReplica: 0.25, Active: 4}); got != -1 {
		t.Fatalf("Decide under idle fleet = %d, want -1", got)
	}
	// Never below Min.
	if got := a.Decide(20, Signals{QueuePerReplica: 0, Active: 1}); got != 0 {
		t.Fatalf("Decide at Min = %d, want 0", got)
	}
	// A shrink that would push queue back over the low-water mark holds.
	if got := a.Decide(30, Signals{QueuePerReplica: 1.9, Active: 2}); got != 0 {
		t.Fatalf("Decide with projected overload after shrink = %d, want 0", got)
	}
	// Warming replicas block scale-down (a decision is already in flight).
	if got := a.Decide(40, Signals{QueuePerReplica: 0, Active: 2, Warming: 1}); got != 0 {
		t.Fatalf("Decide while warming = %d, want 0", got)
	}
}

func TestAutoscalerDownCooldownAndTTFTGuard(t *testing.T) {
	a := mustAutoscaler(t, AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 8, ScaleDownQueue: 4, TTFTTarget: 10, DownCooldown: 60})
	idle := Signals{QueuePerReplica: 0.1, Active: 4}
	if got := a.Decide(10, idle); got != -1 {
		t.Fatalf("first scale-down = %d, want -1", got)
	}
	idle.Active = 3
	if got := a.Decide(20, idle); got != 0 {
		t.Fatalf("scale-down inside cooldown = %d, want 0", got)
	}
	// Unhealthy tail blocks scale-down even after the cooldown.
	if got := a.Decide(100, Signals{QueuePerReplica: 0.1, TTFTP99: 50, Active: 3}); got != 1 {
		t.Fatalf("Decide with bad TTFT = %d, want +1 (overload vote)", got)
	}
}

func TestAutoscalerInitialReplicas(t *testing.T) {
	a := mustAutoscaler(t, AutoscalerConfig{Min: 2, Max: 6, Interval: 10, ScaleUpQueue: 8})
	if got := a.InitialReplicas(); got != 2 {
		t.Fatalf("InitialReplicas = %d, want Min (2)", got)
	}
	b := mustAutoscaler(t, AutoscalerConfig{Min: 2, Max: 6, Initial: 4, Interval: 10, ScaleUpQueue: 8})
	if got := b.InitialReplicas(); got != 4 {
		t.Fatalf("InitialReplicas = %d, want Initial (4)", got)
	}
}

func TestAutoscalerDeterministic(t *testing.T) {
	ticks := []Signals{
		{QueuePerReplica: 10, Active: 1},
		{QueuePerReplica: 10, Active: 1, Warming: 1},
		{QueuePerReplica: 5, Active: 2},
		{QueuePerReplica: 0.2, Active: 2},
		{QueuePerReplica: 0.2, Active: 1},
	}
	run := func() []int {
		a := mustAutoscaler(t, AutoscalerConfig{Min: 1, Max: 4, Interval: 10, ScaleUpQueue: 8, ScaleDownQueue: 2})
		out := make([]int, len(ticks))
		for i, s := range ticks {
			out[i] = a.Decide(float64(10*(i+1)), s)
		}
		return out
	}
	x, y := run(), run()
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("decision %d differs across identical runs: %d vs %d", i, x[i], y[i])
		}
	}
}

func TestStackActive(t *testing.T) {
	var nilStack *Stack
	if nilStack.Active() {
		t.Fatal("nil stack reported active")
	}
	if (&Stack{}).Active() {
		t.Fatal("empty stack reported active")
	}
	if !(&Stack{Admission: NewTokenBucket(1, 1)}).Active() {
		t.Fatal("stack with admission reported inactive")
	}
	a := mustAutoscaler(t, AutoscalerConfig{Min: 1, Max: 2, Interval: 10, ScaleUpQueue: 8})
	if !(&Stack{Autoscaler: a}).Active() {
		t.Fatal("stack with autoscaler reported inactive")
	}
}

func TestPreemptionEvictable(t *testing.T) {
	if got := (PreemptionConfig{}).Evictable(); got != 1 {
		t.Fatalf("default Evictable = %d, want 1", got)
	}
	if got := (PreemptionConfig{EvictTier: 3}).Evictable(); got != 3 {
		t.Fatalf("Evictable = %d, want 3", got)
	}
}
