// Package faults generates seeded, deterministic fault plans for the
// simulated serving fleet: replica crash/restart schedules drawn from
// an exponential MTBF, per-replica straggler slowdowns, and KV-link
// degradation/partition windows for disaggregated deployments. A plan
// is computed entirely up front from a seed, so fault runs are
// reproducible byte-for-byte, and an empty plan is inert — routers fall
// back to the exact fault-free code path, preserving bit-identical
// results.
package faults

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/hw"
	"repro/internal/model"
)

// DefaultMaxRetries bounds how many times a crash-lost request is
// re-dispatched before it is dropped with a reason.
const DefaultMaxRetries = 3

// linkSlots is how many equal windows the horizon is divided into when
// drawing KV-link impairments.
const linkSlots = 8

// Config parameterizes a fault plan. The zero value is fault-free.
type Config struct {
	// Seed drives every random draw; a fixed seed gives a fixed plan.
	Seed int64
	// Horizon bounds fault activity in virtual seconds: no crash is
	// scheduled past it and link windows tile [0, Horizon]. Required
	// whenever MTBF or link impairments are enabled.
	Horizon float64

	// MTBF is each replica's mean time between failures in virtual
	// seconds (exponential inter-crash times); 0 disables crashes.
	MTBF float64
	// RestartDelay is the process-restart cost added to every crash's
	// downtime, on top of the weight-reload transfer time.
	RestartDelay float64
	// MaxCrashes caps the total crash count across the fleet (earliest
	// crashes win); 0 means unlimited within the horizon.
	MaxCrashes int
	// MaxRetries bounds re-dispatches per request before it is dropped;
	// 0 means DefaultMaxRetries.
	MaxRetries int

	// Stragglers marks this many replicas (chosen by the seed) as
	// stragglers whose pass durations stretch by StragglerFactor.
	Stragglers int
	// StragglerFactor is the slowdown multiplier (>1; e.g. 1.3 = 30%
	// slower). Ignored when Stragglers is 0.
	StragglerFactor float64

	// LinkDegradeFrac is the probability that each of the horizon's
	// link windows runs degraded (KV transfers stretched by
	// LinkDegradeFactor); LinkPartitionFrac the probability it is fully
	// partitioned (transfers stall until the window closes). Partition
	// wins when both are drawn. Only disaggregated KV hand-offs are
	// affected.
	LinkDegradeFrac   float64
	LinkDegradeFactor float64
	LinkPartitionFrac float64

	// CheckpointInterval, when > 0, enables periodic KV checkpointing
	// on every replica with this cadence (virtual seconds), so crash
	// recovery can resume from the checkpoint instead of re-prefilling.
	CheckpointInterval float64

	// Topology places the fleet's replicas into racks and zones for
	// correlated domain outages. Required when DomainMTBF > 0; its
	// Replicas field may be left 0 to adopt the fleet size passed to
	// NewPlan.
	Topology hw.Topology
	// DomainMTBF is each rack's mean time between correlated outage
	// events in virtual seconds (exponential inter-event gaps, the next
	// drawn after the previous outage ends); 0 disables domain outages.
	DomainMTBF float64
	// DomainKind selects what a domain outage does: DomainPower (every
	// member crashes together and restarts at the shared window end),
	// DomainNetwork (members keep serving but their KV links partition
	// for the window), or DomainMixed (each event draws one of the two
	// with equal probability). Empty means DomainPower.
	DomainKind string
	// ZoneFrac is the probability that a domain outage escalates from
	// its rack to the rack's whole zone (a power-feed or spine failure
	// instead of a ToR event); 0 keeps every event rack-scoped.
	ZoneFrac float64
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.Horizon < 0:
		return fmt.Errorf("faults: Horizon = %v", c.Horizon)
	case c.MTBF < 0:
		return fmt.Errorf("faults: MTBF = %v", c.MTBF)
	case c.MTBF > 0 && c.Horizon <= 0:
		return fmt.Errorf("faults: MTBF %v needs a positive Horizon", c.MTBF)
	case c.RestartDelay < 0:
		return fmt.Errorf("faults: RestartDelay = %v", c.RestartDelay)
	case c.MaxCrashes < 0:
		return fmt.Errorf("faults: MaxCrashes = %d", c.MaxCrashes)
	case c.MaxRetries < 0:
		return fmt.Errorf("faults: MaxRetries = %d", c.MaxRetries)
	case c.Stragglers < 0:
		return fmt.Errorf("faults: Stragglers = %d", c.Stragglers)
	case c.Stragglers > 0 && c.StragglerFactor <= 1:
		return fmt.Errorf("faults: StragglerFactor = %v (need > 1)", c.StragglerFactor)
	case c.LinkDegradeFrac < 0 || c.LinkDegradeFrac > 1:
		return fmt.Errorf("faults: LinkDegradeFrac = %v", c.LinkDegradeFrac)
	case c.LinkPartitionFrac < 0 || c.LinkPartitionFrac > 1:
		return fmt.Errorf("faults: LinkPartitionFrac = %v", c.LinkPartitionFrac)
	case c.LinkDegradeFrac+c.LinkPartitionFrac > 1:
		return fmt.Errorf("faults: link fractions sum to %v (> 1)", c.LinkDegradeFrac+c.LinkPartitionFrac)
	case c.LinkDegradeFrac > 0 && c.LinkDegradeFactor <= 1:
		return fmt.Errorf("faults: LinkDegradeFactor = %v (need > 1)", c.LinkDegradeFactor)
	case (c.LinkDegradeFrac > 0 || c.LinkPartitionFrac > 0) && c.Horizon <= 0:
		return fmt.Errorf("faults: link impairments need a positive Horizon")
	case c.CheckpointInterval < 0:
		return fmt.Errorf("faults: CheckpointInterval = %v", c.CheckpointInterval)
	case c.DomainMTBF < 0:
		return fmt.Errorf("faults: DomainMTBF = %v", c.DomainMTBF)
	case c.DomainMTBF > 0 && !c.Topology.Enabled():
		return fmt.Errorf("faults: DomainMTBF %v needs a topology (racks > 0)", c.DomainMTBF)
	case c.DomainMTBF > 0 && c.Horizon <= 0:
		return fmt.Errorf("faults: DomainMTBF %v needs a positive Horizon", c.DomainMTBF)
	case c.ZoneFrac < 0 || c.ZoneFrac > 1:
		return fmt.Errorf("faults: ZoneFrac = %v", c.ZoneFrac)
	}
	switch c.DomainKind {
	case "", DomainPower, DomainNetwork, DomainMixed:
	default:
		return fmt.Errorf("faults: DomainKind %q (want %q, %q or %q)",
			c.DomainKind, DomainPower, DomainNetwork, DomainMixed)
	}
	if c.Topology.Enabled() && c.Topology.Replicas > 0 {
		if err := c.Topology.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Enabled reports whether the configuration injects anything at all.
func (c Config) Enabled() bool {
	return c.MTBF > 0 || c.Stragglers > 0 ||
		c.LinkDegradeFrac > 0 || c.LinkPartitionFrac > 0 ||
		c.CheckpointInterval > 0 || c.DomainMTBF > 0
}

// Crash is one scheduled replica failure: the replica dies at At and
// its GPUs come back (weights reloaded) at RestartAt.
type Crash struct {
	Replica   int
	At        float64
	RestartAt float64
}

// Window is one KV-link impairment interval. Factor > 1 stretches
// transfer time spent inside the window; Factor == 0 is a full
// partition (no progress until End).
type Window struct {
	Start, End float64
	Factor     float64
}

// Plan is a fully materialized fault schedule for one fleet run. A nil
// *Plan is valid everywhere and means "no faults".
type Plan struct {
	Config   Config
	Replicas int
	// Downtime is each crash's total outage: RestartDelay plus the
	// weight-reload transfer time (recorded for reports).
	Downtime float64
	// Crashes is the fleet-wide schedule, ordered by (At, Replica).
	Crashes []Crash
	// Slowdowns[i] is replica i's pass-duration multiplier (0 =
	// nominal).
	Slowdowns []float64
	// Links are the fleet-shared KV-link impairment windows, ordered
	// and disjoint.
	Links []Window
	// Domains are the correlated outage events drawn from the
	// topology, ordered by (Start, Rack). Power events are already
	// materialized into Crashes (members merged window-by-window);
	// network events into ReplicaLinks.
	Domains []DomainOutage
	// ReplicaLinks[i], when non-nil, replaces Links for transfers
	// sourced from replica i: its rack's network-outage partitions
	// merged over the shared timeline. Nil entries use Links.
	ReplicaLinks [][]Window
}

// NewPlan draws a deterministic plan from cfg.Seed for a fleet of
// replicas whose per-crash outage lasts downtime seconds (use
// cfg.RestartDelay + WeightReloadTime(...)). Per replica, inter-crash
// gaps are exponential with mean MTBF and the next failure is drawn
// only after the previous restart, so one replica's outages never
// overlap.
func NewPlan(cfg Config, replicas int, downtime float64) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("faults: replicas = %d", replicas)
	}
	if downtime < 0 {
		return nil, fmt.Errorf("faults: downtime = %v", downtime)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Plan{Config: cfg, Replicas: replicas, Downtime: downtime}
	if cfg.MTBF > 0 {
		for i := 0; i < replicas; i++ {
			t := rng.ExpFloat64() * cfg.MTBF
			for t < cfg.Horizon {
				c := Crash{Replica: i, At: t, RestartAt: t + downtime}
				p.Crashes = append(p.Crashes, c)
				t = c.RestartAt + rng.ExpFloat64()*cfg.MTBF
			}
		}
		sort.Slice(p.Crashes, func(a, b int) bool {
			if p.Crashes[a].At != p.Crashes[b].At {
				return p.Crashes[a].At < p.Crashes[b].At
			}
			return p.Crashes[a].Replica < p.Crashes[b].Replica
		})
		if cfg.MaxCrashes > 0 && len(p.Crashes) > cfg.MaxCrashes {
			p.Crashes = p.Crashes[:cfg.MaxCrashes]
		}
	}
	if cfg.Stragglers > 0 {
		p.Slowdowns = make([]float64, replicas)
		n := cfg.Stragglers
		if n > replicas {
			n = replicas
		}
		for _, i := range rng.Perm(replicas)[:n] {
			p.Slowdowns[i] = cfg.StragglerFactor
		}
	}
	if cfg.LinkDegradeFrac > 0 || cfg.LinkPartitionFrac > 0 {
		slot := cfg.Horizon / linkSlots
		for s := 0; s < linkSlots; s++ {
			u := rng.Float64()
			w := Window{Start: float64(s) * slot, End: float64(s+1) * slot}
			switch {
			case u < cfg.LinkPartitionFrac:
				w.Factor = 0
				p.Links = append(p.Links, w)
			case u < cfg.LinkPartitionFrac+cfg.LinkDegradeFrac:
				w.Factor = cfg.LinkDegradeFactor
				p.Links = append(p.Links, w)
			}
		}
	}
	if cfg.DomainMTBF > 0 {
		if err := p.drawDomains(rng, downtime); err != nil {
			return nil, err
		}
	}
	if err := Validate(p); err != nil {
		return nil, fmt.Errorf("faults: generated plan failed validation: %w", err)
	}
	return p, nil
}

// Active reports whether the plan injects anything — false for nil
// plans, so routers can branch to the exact fault-free path.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	if len(p.Crashes) > 0 || len(p.Links) > 0 || len(p.Domains) > 0 ||
		p.Config.CheckpointInterval > 0 {
		return true
	}
	for _, f := range p.Slowdowns {
		if f > 0 {
			return true
		}
	}
	return false
}

// SlowdownFor returns replica i's pass-duration multiplier (0 =
// nominal), nil-safe.
func (p *Plan) SlowdownFor(i int) float64 {
	if p == nil || i < 0 || i >= len(p.Slowdowns) {
		return 0
	}
	return p.Slowdowns[i]
}

// MaxRetries returns the per-request re-dispatch budget, nil-safe.
func (p *Plan) MaxRetries() int {
	if p == nil || p.Config.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return p.Config.MaxRetries
}

// TransferDone maps a KV transfer starting at start with nominal
// duration dur onto the shared impaired link timeline and returns its
// completion instant: inside a degrade window progress runs Factor
// times slower, inside a partition it stops entirely until the window
// closes, and outside windows it runs at nominal rate. With no link
// windows (or a nil plan) this is exactly start + dur.
//
// Windows are half-open [Start, End): a window impairs only work
// strictly inside it, so boundary instants are pinned — a transfer
// whose remaining work runs out exactly at a window's Start completes
// at that Start untouched by the window, and a transfer that exactly
// exhausts a degrade window's capacity completes at that window's End
// even when a partition abuts it at the same instant (the abutting
// window never extends it). Completion lands on the shared boundary
// exactly, not a floating-point neighbour of it.
func (p *Plan) TransferDone(start, dur float64) float64 {
	if p == nil {
		return start + dur
	}
	return transferDone(p.Links, start, dur)
}

// TransferDoneFrom is TransferDone on the timeline seen by transfers
// sourced from the given replica: a replica whose rack is inside a
// network domain outage sees those partition windows merged over the
// shared timeline. Replica -1 — or any replica without domain
// impairments — uses the shared timeline; checkpoint restores from
// stable storage take that path.
func (p *Plan) TransferDoneFrom(replica int, start, dur float64) float64 {
	if p == nil {
		return start + dur
	}
	wins := p.Links
	if replica >= 0 && replica < len(p.ReplicaLinks) && p.ReplicaLinks[replica] != nil {
		wins = p.ReplicaLinks[replica]
	}
	return transferDone(wins, start, dur)
}

// PartitionedAt reports whether the replica's KV links sit inside a
// network domain outage at instant t — replica-scoped partition
// windows only, half-open [Start, End). Routers use it to skip import
// targets that cannot receive KV right now; the shared link timeline
// governs transfer durations instead and is not consulted here.
func (p *Plan) PartitionedAt(replica int, t float64) bool {
	if p == nil || replica < 0 || replica >= len(p.ReplicaLinks) {
		return false
	}
	for _, w := range p.ReplicaLinks[replica] {
		if w.Start > t {
			return false
		}
		if t < w.End && w.Factor == 0 {
			return true
		}
	}
	return false
}

// PartitionLiftsAt returns the instant the partition covering t on the
// replica's links ends — the earliest moment the replica can receive
// KV again — or t itself when no partition is active. Routers use it
// to schedule placement retries instead of stranding work behind a
// network domain outage.
func (p *Plan) PartitionLiftsAt(replica int, t float64) float64 {
	if p == nil || replica < 0 || replica >= len(p.ReplicaLinks) {
		return t
	}
	for _, w := range p.ReplicaLinks[replica] {
		if w.Start > t {
			return t
		}
		if t < w.End && w.Factor == 0 {
			return w.End
		}
	}
	return t
}

// transferDone walks an ordered disjoint window timeline (see
// TransferDone for the boundary contract).
func transferDone(wins []Window, start, dur float64) float64 {
	if len(wins) == 0 || dur <= 0 {
		return start + dur
	}
	t, rem := start, dur
	for _, w := range wins {
		if w.End <= t {
			continue
		}
		if w.Start > t {
			gap := w.Start - t
			if rem <= gap {
				// Done strictly before (or exactly at) the window's
				// Start: the window does not apply.
				return t + rem
			}
			rem -= gap
			t = w.Start
		}
		if w.Factor == 0 {
			// Partitioned: no progress until the window closes.
			t = w.End
			continue
		}
		capacity := (w.End - t) / w.Factor
		if rem < capacity {
			return t + rem*w.Factor
		}
		rem -= capacity
		t = w.End
		if rem <= 0 {
			// Exhausted exactly at the window's End: complete on the
			// boundary; an abutting window (even a partition starting
			// at this instant) never extends the transfer.
			return t
		}
	}
	return t + rem
}

// WeightReloadTime models re-loading a crashed replica's weights: the
// pipeline's stages reload in parallel over independent host links, so
// the largest stage bounds the outage. Returns 0 when the model cannot
// be partitioned (the engine would have rejected the config anyway).
func WeightReloadTime(node hw.Node, spec model.Spec, world int) float64 {
	plan, err := model.Partition(spec, world)
	if err != nil {
		return 0
	}
	var max float64
	for st := range plan.Stages {
		if b := plan.StageWeightBytes(st); b > max {
			max = b
		}
	}
	return node.P2PTime(max)
}
