package faults

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hw"
)

// Satellite: the boundary semantics of the impaired-link walk, pinned.
// Windows are half-open [Start, End); completion exactly on a shared
// boundary between two windows lands on that boundary exactly and the
// later window never applies.
func TestTransferDoneBoundaryTable(t *testing.T) {
	degradeThenPartition := []Window{
		{Start: 10, End: 20, Factor: 2}, // capacity: 5s of work
		{Start: 20, End: 30, Factor: 0}, // partition abuts at 20
	}
	partitionThenDegrade := []Window{
		{Start: 10, End: 20, Factor: 0},
		{Start: 20, End: 30, Factor: 4}, // degrade abuts at 20
	}
	cases := []struct {
		name       string
		wins       []Window
		start, dur float64
		want       float64
	}{
		// A transfer that exactly exhausts the degrade window's
		// capacity completes at its End — the abutting partition never
		// extends it, and the result is the boundary instant exactly.
		{"exhausts degrade at shared boundary", degradeThenPartition, 10, 5, 20},
		{"exhausts degrade from inside", degradeThenPartition, 15, 2.5, 20},
		// One epsilon more work stalls through the whole partition.
		{"spills into abutting partition", degradeThenPartition, 10, 5.5, 30.5},
		// Work running out exactly at a window's Start completes there:
		// the window governs only work strictly inside it.
		{"ends exactly at degrade start", degradeThenPartition, 0, 10, 10},
		{"ends exactly at partition start", []Window{{Start: 20, End: 30, Factor: 0}}, 0, 20, 20},
		// Partition then degrade: stalled work resumes at the shared
		// boundary under the degrade factor.
		{"through partition into degrade", partitionThenDegrade, 5, 6, 24},
		{"ends exactly at partition start (abutting pair)", partitionThenDegrade, 5, 5, 10},
		// Two abutting degrade windows: crossing the boundary switches
		// factor with no discontinuity.
		{"abutting degrades", []Window{
			{Start: 10, End: 20, Factor: 2},
			{Start: 20, End: 30, Factor: 5},
		}, 10, 6, 25},
		// Start exactly at a partition's End: untouched.
		{"starts at partition end", degradeThenPartition, 30, 3, 33},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := &Plan{Links: tc.wins}
			got := p.TransferDone(tc.start, tc.dur)
			if got != tc.want {
				// Boundary cases must be exact, not within-epsilon: the
				// routers schedule events at these instants and event
				// order is what determinism hangs on.
				t.Fatalf("TransferDone(%v, %v) = %v, want exactly %v", tc.start, tc.dur, got, tc.want)
			}
		})
	}
}

func TestTransferDoneFrom(t *testing.T) {
	p := &Plan{
		Replicas: 3,
		Links:    []Window{{Start: 10, End: 20, Factor: 2}},
		ReplicaLinks: [][]Window{
			nil,
			{{Start: 0, End: 50, Factor: 0}}, // replica 1: partitioned
			nil,
		},
	}
	if got := p.TransferDoneFrom(-1, 0, 5); got != 5 {
		t.Fatalf("stable-storage transfer = %v, want 5", got)
	}
	if got, want := p.TransferDoneFrom(0, 8, 4), p.TransferDone(8, 4); got != want {
		t.Fatalf("replica 0 transfer = %v, want shared-timeline %v", got, want)
	}
	if got := p.TransferDoneFrom(1, 8, 4); got != 54 {
		t.Fatalf("partitioned replica transfer = %v, want 54", got)
	}
	if got := p.TransferDoneFrom(99, 8, 4); got != p.TransferDone(8, 4) {
		t.Fatalf("out-of-range replica transfer = %v, want shared-timeline fallback", got)
	}
	var nilPlan *Plan
	if got := nilPlan.TransferDoneFrom(0, 3, 2); got != 5 {
		t.Fatalf("nil plan TransferDoneFrom = %v, want 5", got)
	}
}

func TestMergeWindows(t *testing.T) {
	cases := []struct {
		name string
		in   []Window
		want []Window
	}{
		{"empty", nil, nil},
		{"zero width dropped", []Window{{Start: 5, End: 5, Factor: 0}}, nil},
		{"partition dominates overlap",
			[]Window{{Start: 0, End: 10, Factor: 3}, {Start: 5, End: 15, Factor: 0}},
			[]Window{{Start: 0, End: 5, Factor: 3}, {Start: 5, End: 15, Factor: 0}}},
		{"max factor on degrade overlap",
			[]Window{{Start: 0, End: 10, Factor: 2}, {Start: 5, End: 15, Factor: 4}},
			[]Window{{Start: 0, End: 5, Factor: 2}, {Start: 5, End: 15, Factor: 4}}},
		{"touching equal factors coalesce",
			[]Window{{Start: 0, End: 5, Factor: 2}, {Start: 5, End: 10, Factor: 2}},
			[]Window{{Start: 0, End: 10, Factor: 2}}},
		{"disjoint preserved",
			[]Window{{Start: 20, End: 30, Factor: 0}, {Start: 0, End: 10, Factor: 2}},
			[]Window{{Start: 0, End: 10, Factor: 2}, {Start: 20, End: 30, Factor: 0}}},
		{"containment",
			[]Window{{Start: 0, End: 30, Factor: 0}, {Start: 10, End: 20, Factor: 2}},
			[]Window{{Start: 0, End: 30, Factor: 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := mergeWindows(append([]Window(nil), tc.in...))
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("mergeWindows(%v) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestConfigValidateDomains(t *testing.T) {
	base := func() Config {
		return Config{
			Seed: 1, Horizon: 100,
			Topology:   hw.Topology{Racks: 2},
			DomainMTBF: 50,
		}
	}
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"valid", func(c *Config) {}, true},
		{"mixed kind", func(c *Config) { c.DomainKind = DomainMixed }, true},
		{"negative domain mtbf", func(c *Config) { c.DomainMTBF = -1 }, false},
		{"domains need topology", func(c *Config) { c.Topology = hw.Topology{} }, false},
		{"domains need horizon", func(c *Config) { c.Horizon = 0 }, false},
		{"unknown kind", func(c *Config) { c.DomainKind = "gremlins" }, false},
		{"zone frac range", func(c *Config) { c.ZoneFrac = 1.5 }, false},
		{"bad topology", func(c *Config) { c.Topology = hw.Topology{Replicas: 1, Racks: 4} }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := base()
			tc.mut(&c)
			if err := c.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

// Power outages: every member of the failing domain is down for the
// whole shared window, schedules merge with independent draws without
// overlap, and the plan validates.
func TestNewPlanDomainsPower(t *testing.T) {
	cfg := Config{
		Seed: 11, Horizon: 300,
		MTBF: 80, RestartDelay: 1,
		Topology:   hw.Topology{Racks: 2},
		DomainMTBF: 60,
	}
	const downtime = 5.0
	p, err := NewPlan(cfg, 4, downtime)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) == 0 {
		t.Fatal("expected domain outages over the horizon")
	}
	if p.Config.Topology.Replicas != 4 {
		t.Fatalf("topology did not adopt fleet size: %+v", p.Config.Topology)
	}
	for _, ev := range p.Domains {
		if ev.Kind != DomainPower {
			t.Fatalf("default kind = %q, want power", ev.Kind)
		}
		want := p.Config.Topology.RackMembers(ev.Rack)
		if !reflect.DeepEqual(ev.Members, want) {
			t.Fatalf("rack %d members %v, want %v", ev.Rack, ev.Members, want)
		}
		// Each member must be dead for the whole window: some crash
		// window contains [Start, End].
		for _, m := range ev.Members {
			covered := false
			for _, c := range p.Crashes {
				if c.Replica == m && c.At <= ev.Start && c.RestartAt >= ev.End {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("member %d not down for outage [%v, %v]", m, ev.Start, ev.End)
			}
		}
	}
	if err := Validate(p); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	// Determinism.
	q, err := NewPlan(cfg, 4, downtime)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatal("same seed produced different domain plans")
	}
}

// Network outages crash nobody; members' link timelines carry the
// partitions (merged over the shared windows), non-members are
// untouched.
func TestNewPlanDomainsNetwork(t *testing.T) {
	cfg := Config{
		Seed: 5, Horizon: 300,
		Topology:   hw.Topology{Racks: 2},
		DomainMTBF: 60,
		DomainKind: DomainNetwork,
	}
	p, err := NewPlan(cfg, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) == 0 {
		t.Fatal("expected domain outages")
	}
	if len(p.Crashes) != 0 {
		t.Fatalf("network outages produced %d crashes", len(p.Crashes))
	}
	if len(p.ReplicaLinks) != 4 {
		t.Fatalf("ReplicaLinks len %d, want 4", len(p.ReplicaLinks))
	}
	affected := make(map[int]bool)
	for _, ev := range p.Domains {
		for _, m := range ev.Members {
			affected[m] = true
		}
		// A transfer started mid-outage by a member makes no progress
		// until the window closes.
		m := ev.Members[0]
		if got := p.TransferDoneFrom(m, ev.Start, 0.001); got < ev.End {
			t.Fatalf("member %d transfer done %v inside outage ending %v", m, got, ev.End)
		}
	}
	for i := 0; i < 4; i++ {
		if affected[i] && p.ReplicaLinks[i] == nil {
			t.Fatalf("affected replica %d has no link timeline", i)
		}
		if !affected[i] && p.ReplicaLinks[i] != nil {
			t.Fatalf("unaffected replica %d has a link timeline", i)
		}
	}
}

// Zone escalation: with ZoneFrac 1 every event covers the rack's whole
// zone.
func TestNewPlanZoneEscalation(t *testing.T) {
	cfg := Config{
		Seed: 9, Horizon: 200,
		Topology:   hw.Topology{Racks: 4, RacksPerZone: 2},
		DomainMTBF: 80,
		ZoneFrac:   1,
	}
	p, err := NewPlan(cfg, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Domains) == 0 {
		t.Fatal("expected domain outages")
	}
	for _, ev := range p.Domains {
		if ev.Zone < 0 {
			t.Fatalf("event not zone-scoped: %+v", ev)
		}
		want := p.Config.Topology.ZoneMembers(ev.Zone)
		if !reflect.DeepEqual(ev.Members, want) {
			t.Fatalf("zone %d members %v, want %v", ev.Zone, ev.Members, want)
		}
	}
}

// Mixed kind draws both flavors over a long horizon.
func TestNewPlanDomainsMixed(t *testing.T) {
	cfg := Config{
		Seed: 2, Horizon: 2000,
		Topology:   hw.Topology{Racks: 2},
		DomainMTBF: 40,
		DomainKind: DomainMixed,
	}
	p, err := NewPlan(cfg, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, ev := range p.Domains {
		kinds[ev.Kind]++
	}
	if kinds[DomainPower] == 0 || kinds[DomainNetwork] == 0 {
		t.Fatalf("mixed draw produced %v", kinds)
	}
}

// Enabling domains must not perturb the independent draws for a given
// seed (domain draws happen last).
func TestDomainsPreserveIndependentDraws(t *testing.T) {
	base := Config{
		Seed: 21, Horizon: 300, MTBF: 60, Stragglers: 1, StragglerFactor: 1.3,
		LinkDegradeFrac: 0.3, LinkDegradeFactor: 2,
	}
	plain, err := NewPlan(base, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	withDomains := base
	withDomains.Topology = hw.Topology{Racks: 2}
	withDomains.DomainMTBF = 90
	dom, err := NewPlan(withDomains, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Slowdowns, dom.Slowdowns) {
		t.Fatal("domains perturbed straggler draws")
	}
	if !reflect.DeepEqual(plain.Links, dom.Links) {
		t.Fatal("domains perturbed link draws")
	}
}

// Satellite: Validate rejects malformed plans with legible messages.
func TestPlanValidateErrors(t *testing.T) {
	valid := func() *Plan {
		return &Plan{
			Config:   Config{Horizon: 100},
			Replicas: 4,
			Crashes: []Crash{
				{Replica: 0, At: 10, RestartAt: 15},
				{Replica: 0, At: 20, RestartAt: 25},
			},
			Domains: []DomainOutage{
				{Kind: DomainPower, Rack: 0, Zone: -1, Members: []int{0, 1}, Start: 10, End: 15},
				{Kind: DomainNetwork, Rack: 1, Zone: -1, Members: []int{2, 3}, Start: 30, End: 35},
			},
		}
	}
	if err := Validate(valid()); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := Validate(nil); err != nil {
		t.Fatalf("nil plan rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Plan)
		want string
	}{
		{"unknown replica in members",
			func(p *Plan) { p.Domains[1].Members = []int{2, 7} },
			"unknown replica"},
		{"negative member",
			func(p *Plan) { p.Domains[0].Members = []int{-1, 1} },
			"unknown replica"},
		{"overlapping member sets",
			func(p *Plan) { p.Domains[1].Members = []int{1, 2} },
			"member sets overlap"},
		{"inconsistent rack members",
			func(p *Plan) {
				p.Domains = append(p.Domains, DomainOutage{
					Kind: DomainPower, Rack: 0, Zone: -1, Members: []int{0}, Start: 50, End: 55,
				})
			},
			"inconsistent member sets"},
		{"unsorted members",
			func(p *Plan) { p.Domains[0].Members = []int{1, 0} },
			"ascending"},
		{"empty members",
			func(p *Plan) { p.Domains[0].Members = nil },
			"no members"},
		{"same-rack outages overlap in time",
			func(p *Plan) {
				p.Domains = append(p.Domains, DomainOutage{
					Kind: DomainPower, Rack: 0, Zone: -1, Members: []int{0, 1}, Start: 12, End: 18,
				})
			},
			"overlap in time"},
		{"mixed kind not materialized",
			func(p *Plan) { p.Domains[0].Kind = DomainMixed },
			"materialized"},
		{"inverted outage window",
			func(p *Plan) { p.Domains[0].Start, p.Domains[0].End = 15, 10 },
			"inverted"},
		{"crash on unknown replica",
			func(p *Plan) { p.Crashes[0].Replica = 9 },
			"unknown replica"},
		{"overlapping crash windows",
			func(p *Plan) { p.Crashes[1].At = 14 },
			"overlap"},
		{"crash at previous restart instant",
			func(p *Plan) { p.Crashes[1].At = 15 },
			"overlap"},
		{"restart before crash",
			func(p *Plan) { p.Crashes[0].RestartAt = 5 },
			"before it happens"},
		{"unordered crashes",
			func(p *Plan) { p.Crashes[0], p.Crashes[1] = p.Crashes[1], p.Crashes[0] },
			"not ordered"},
		{"overlapping link windows",
			func(p *Plan) { p.Links = []Window{{Start: 0, End: 10, Factor: 2}, {Start: 5, End: 15, Factor: 0}} },
			"overlap"},
		{"bad link factor",
			func(p *Plan) { p.Links = []Window{{Start: 0, End: 10, Factor: 0.5}} },
			"factor"},
		{"replica links wrong length",
			func(p *Plan) { p.ReplicaLinks = make([][]Window, 2) },
			"link timelines"},
		{"no replicas",
			func(p *Plan) { p.Replicas = 0 },
			"replicas"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := valid()
			tc.mut(p)
			err := Validate(p)
			if err == nil {
				t.Fatal("Validate() = nil, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Domain windows inherit the plan downtime, like crash restarts.
func TestDomainOutageDuration(t *testing.T) {
	cfg := Config{
		Seed: 4, Horizon: 300,
		Topology:   hw.Topology{Racks: 2},
		DomainMTBF: 70,
	}
	const downtime = 7.0
	p, err := NewPlan(cfg, 4, downtime)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range p.Domains {
		if got := ev.End - ev.Start; math.Abs(got-downtime) > 1e-12 {
			t.Fatalf("outage length %v, want %v", got, downtime)
		}
	}
	if _, err := NewPlan(cfg, 4, 0); err == nil {
		t.Fatal("zero downtime accepted for domain outages")
	}
}
