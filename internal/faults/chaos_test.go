package faults_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// Chaos harness: randomized-but-seeded fault plans swept across domain
// shapes, outage kinds, checkpoint cadences and (in long mode) retry
// budgets, served by both fleet fault routers with the parallel fabric
// at one and four workers. Every run must satisfy the exactly-once
// invariant — each trace request finished exactly once XOR carries a
// drop reason — and every (scenario, router) pair must produce
// byte-identical reports run-to-run and across worker counts. The
// harness lives outside package faults (faults cannot import fleet),
// which also means it exercises only the exported surface.
//
// The short sweep runs in CI (`make chaos`); TDPIPE_CHAOS_LONG=1 widens
// the seed set and varies the retry budget.

// chaosConfig mirrors the fleet test configuration: Tiny model on the
// L20 node, milliseconds of wall time per run.
func chaosConfig() core.Config {
	cfg := core.DefaultConfig(hw.L20, model.Tiny, 2)
	cfg.ReserveGB = 0
	cfg.MaxPrefillTokens = 512
	cfg.PeakProfileBatch = 128
	return cfg
}

// chaosTrace is an arrival-stamped trace so outages land mid-stream.
func chaosTrace(n int, seed int64) []workload.Request {
	wc := workload.DefaultConfig(n, seed)
	wc.MaxInputLen = 255
	wc.MaxOutputLen = 128
	wc.InputLogMean = 4.0
	return workload.StampArrivals(workload.MustGenerate(wc), workload.Poisson{Rate: 2000}, seed+1)
}

// chaosScenario is one cell of the sweep.
type chaosScenario struct {
	name     string
	topo     hw.Topology
	kind     string
	zoneFrac float64
	ckptFrac float64 // checkpoint cadence as a fraction of the horizon (0 = off)
	retries  int
}

// chaosScenarios enumerates the sweep: domain shapes x outage kinds x
// checkpoint cadences, with retry budgets added in long mode.
func chaosScenarios(long bool) []chaosScenario {
	shapes := []struct {
		label string
		topo  hw.Topology
		zf    float64
	}{
		{"rack2", hw.Topology{Racks: 2}, 0},
		{"zone", hw.Topology{Racks: 4, RacksPerZone: 2}, 0.5},
	}
	kinds := []string{faults.DomainPower, faults.DomainNetwork, faults.DomainMixed}
	cadences := []float64{0, 1.0 / 8}
	budgets := []int{3}
	if long {
		budgets = []int{1, 3}
	}
	var out []chaosScenario
	for _, sh := range shapes {
		for _, kind := range kinds {
			for _, ck := range cadences {
				for _, budget := range budgets {
					ckLabel := "off"
					if ck > 0 {
						ckLabel = "h/8"
					}
					out = append(out, chaosScenario{
						name:     fmt.Sprintf("%s-%s-ckpt_%s-retry%d", sh.label, kind, ckLabel, budget),
						topo:     sh.topo,
						kind:     kind,
						zoneFrac: sh.zf,
						ckptFrac: ck,
						retries:  budget,
					})
				}
			}
		}
	}
	return out
}

// marshalChaos serializes the comparable surface of a run.
func marshalChaos(t *testing.T, report metrics.Report, records []metrics.RequestRecord) string {
	t.Helper()
	b, err := json.Marshal(struct {
		Report  metrics.Report
		Records []metrics.RequestRecord
	}{report, records})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// checkChaosConservation asserts exactly-once finished-xor-dropped
// from the outside: the record count matches the trace, finished
// records match the report, and finished + dropped covers everything.
func checkChaosConservation(t *testing.T, label string, report metrics.Report, records []metrics.RequestRecord, n int) {
	t.Helper()
	if len(records) != n {
		t.Fatalf("%s: %d records for %d requests", label, len(records), n)
	}
	finished := 0
	for _, rec := range records {
		if rec.Finished() {
			finished++
		}
	}
	if finished != report.Requests {
		t.Fatalf("%s: %d finished records, report says %d", label, finished, report.Requests)
	}
	if got := report.Requests + report.Faults.Dropped; got != n {
		t.Fatalf("%s: finished %d + dropped %d = %d, want %d",
			label, report.Requests, report.Faults.Dropped, got, n)
	}
}

// TestChaosSweep is the harness core: every scenario's plan is drawn
// seeded, layered over light independent crash pressure, and served by
// the online and disaggregated fault routers at one and four workers.
func TestChaosSweep(t *testing.T) {
	long := os.Getenv("TDPIPE_CHAOS_LONG") == "1"
	cfg := chaosConfig()
	const replicas = 4
	dc := fleet.DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2}
	reqs := chaosTrace(100, 47)
	n := len(reqs)

	policy := func() fleet.Policy {
		p, err := fleet.New(fleet.LeastWork, fleet.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	base, err := fleet.RunOnline(cfg, replicas, policy(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	horizon := base.Report.Elapsed

	seeds := []int64{101}
	if long {
		seeds = []int64{101, 202, 303}
	}
	for _, sc := range chaosScenarios(long) {
		for _, seed := range seeds {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				fc := faults.Config{
					Seed:               seed,
					Horizon:            horizon,
					MTBF:               horizon, // light independent pressure under the domains
					RestartDelay:       horizon / 10,
					CheckpointInterval: sc.ckptFrac * horizon,
					MaxRetries:         sc.retries,
					Topology:           sc.topo,
					DomainMTBF:         horizon / 3,
					DomainKind:         sc.kind,
					ZoneFrac:           sc.zoneFrac,
				}
				plan, err := faults.NewPlan(fc, replicas, fc.RestartDelay)
				if err != nil {
					t.Fatal(err)
				}
				if err := faults.Validate(plan); err != nil {
					t.Fatalf("generated plan invalid: %v", err)
				}

				// Online fault router: two runs at one worker (run-to-run
				// identity), one at four (cross-worker identity).
				var online string
				for i, workers := range []int{1, 1, 4} {
					res, err := fleet.RunOnlineFaultsWorkers(cfg, replicas, policy(), reqs, plan, workers)
					if err != nil {
						t.Fatalf("online workers=%d: %v", workers, err)
					}
					label := fmt.Sprintf("online workers=%d", workers)
					checkChaosConservation(t, label, res.Report, res.Records, n)
					if got := res.Report.Faults.DomainOutages; got != len(plan.Domains) {
						t.Errorf("%s: %d domain outages reported, plan has %d", label, got, len(plan.Domains))
					}
					b := marshalChaos(t, res.Report, res.Records)
					if i > 0 && b != online {
						t.Fatalf("%s diverged from the first run", label)
					}
					online = b
				}

				// Disaggregated fault router, same sweep.
				var disagg string
				for i, workers := range []int{1, 1, 4} {
					d := dc
					d.Workers = workers
					res, err := fleet.RunDisaggFaults(cfg, d, reqs, plan)
					if err != nil {
						t.Fatalf("disagg workers=%d: %v", workers, err)
					}
					label := fmt.Sprintf("disagg workers=%d", workers)
					checkChaosConservation(t, label, res.Report, res.Records, n)
					b := marshalChaos(t, res.Report, res.Records)
					if i > 0 && b != disagg {
						t.Fatalf("%s diverged from the first run", label)
					}
					disagg = b
				}
			})
		}
	}
}

// TestChaosInactivePlan pins the fault-free contract: a plan that
// draws nothing (or nil) must reproduce the clean run bit for bit on
// both routers.
func TestChaosInactivePlan(t *testing.T) {
	cfg := chaosConfig()
	const replicas = 4
	dc := fleet.DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2}
	reqs := chaosTrace(100, 53)

	policy := func() fleet.Policy {
		p, err := fleet.New(fleet.LeastWork, fleet.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	inactive, err := faults.NewPlan(faults.Config{Seed: 9}, replicas, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inactive.Active() {
		t.Fatal("empty config produced an active plan")
	}

	obase, err := fleet.RunOnline(cfg, replicas, policy(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	dbase, err := fleet.RunDisagg(cfg, dc, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []*faults.Plan{nil, inactive} {
		ores, err := fleet.RunOnlineFaults(cfg, replicas, policy(), reqs, plan)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := marshalChaos(t, ores.Report, ores.Records), marshalChaos(t, obase.Report, obase.Records); got != want {
			t.Errorf("inactive plan %v perturbed the online run", plan)
		}
		dres, err := fleet.RunDisaggFaults(cfg, dc, reqs, plan)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := marshalChaos(t, dres.Report, dres.Records), marshalChaos(t, dbase.Report, dbase.Records); got != want {
			t.Errorf("inactive plan %v perturbed the disagg run", plan)
		}
	}
}
