package faults

import (
	"fmt"
	"math/rand"
	"sort"
)

// Correlated failure domains: real fleets rarely fail one replica at a
// time — a rack power event or ToR switch failure takes out every
// member (and every KV link) in a domain at once. The topology
// (hw.Topology) places replicas into racks and zones; drawDomains
// layers seeded domain-level outage events over the independent
// per-replica schedules, and the materialization below keeps the
// plan's standing invariants: per-replica crash windows stay strictly
// non-overlapping (union-merged, so the router never crashes an
// already-dead engine) and link timelines stay ordered and disjoint
// (partition wins where windows overlap).

// DomainKind values for Config.DomainKind and DomainOutage.Kind.
const (
	// DomainPower crashes every member together; all restart at the
	// shared window end (one breaker, one restart storm).
	DomainPower = "power"
	// DomainNetwork leaves members serving but partitions their KV
	// links for the window (ToR/spine loss: compute is fine, bytes
	// don't move).
	DomainNetwork = "network"
	// DomainMixed draws power or network per event with equal
	// probability. Only valid in Config.DomainKind; materialized
	// events always carry one of the two concrete kinds.
	DomainMixed = "mixed"
)

// DomainOutage is one correlated domain-level event.
type DomainOutage struct {
	// Kind is DomainPower or DomainNetwork.
	Kind string
	// Rack is the failing rack. For zone-wide events it is the rack
	// whose draw escalated.
	Rack int
	// Zone is -1 for rack-scoped events, else the zone the event
	// escalated to.
	Zone int
	// Members are the affected replicas, ascending.
	Members []int
	// Start and End bound the outage window (End may exceed the
	// horizon, like crash restarts).
	Start, End float64
}

// drawDomains appends seeded domain outage events to the plan and
// materializes them: power events become per-member crash windows
// union-merged with the independent schedule; network events become
// per-member link partitions merged over the shared timeline. Draw
// order is fixed (rack-major, time-ascending), so plans stay
// deterministic, and domain draws happen after all independent draws,
// so enabling domains never perturbs the independent schedule for a
// given seed.
func (p *Plan) drawDomains(rng *rand.Rand, downtime float64) error {
	cfg := p.Config
	if downtime <= 0 {
		return fmt.Errorf("faults: domain outages need a positive downtime (got %v)", downtime)
	}
	top := cfg.Topology
	if top.Replicas == 0 {
		top.Replicas = p.Replicas
	}
	if err := top.Validate(); err != nil {
		return err
	}
	if top.Replicas != p.Replicas {
		return fmt.Errorf("faults: topology covers %d replicas, fleet has %d", top.Replicas, p.Replicas)
	}
	p.Config.Topology = top

	for rack := 0; rack < top.Racks; rack++ {
		t := rng.ExpFloat64() * cfg.DomainMTBF
		for t < cfg.Horizon {
			kind := cfg.DomainKind
			if kind == "" {
				kind = DomainPower
			}
			if kind == DomainMixed {
				if rng.Float64() < 0.5 {
					kind = DomainPower
				} else {
					kind = DomainNetwork
				}
			}
			ev := DomainOutage{Kind: kind, Rack: rack, Zone: -1, Start: t, End: t + downtime}
			if cfg.ZoneFrac > 0 && rng.Float64() < cfg.ZoneFrac {
				ev.Zone = top.Zone(rack)
				ev.Members = top.ZoneMembers(ev.Zone)
			} else {
				ev.Members = top.RackMembers(rack)
			}
			p.Domains = append(p.Domains, ev)
			t = ev.End + rng.ExpFloat64()*cfg.DomainMTBF
		}
	}
	if len(p.Domains) == 0 {
		return nil
	}
	sort.Slice(p.Domains, func(a, b int) bool {
		if p.Domains[a].Start != p.Domains[b].Start {
			return p.Domains[a].Start < p.Domains[b].Start
		}
		return p.Domains[a].Rack < p.Domains[b].Rack
	})
	p.materializeDomains()
	return nil
}

// materializeDomains folds the drawn domain events into the plan's
// executable schedules.
func (p *Plan) materializeDomains() {
	var havePower bool
	netWins := make(map[int][]Window)
	for _, ev := range p.Domains {
		switch ev.Kind {
		case DomainPower:
			havePower = true
		case DomainNetwork:
			for _, m := range ev.Members {
				netWins[m] = append(netWins[m], Window{Start: ev.Start, End: ev.End, Factor: 0})
			}
		}
	}

	if havePower {
		// Collect every crash window per replica — independent draws
		// plus domain power events — and union-merge overlaps, so a
		// replica that was already down when its rack lost power just
		// stays down until the later of the two restarts.
		perReplica := make([][]Crash, p.Replicas)
		for _, c := range p.Crashes {
			perReplica[c.Replica] = append(perReplica[c.Replica], c)
		}
		for _, ev := range p.Domains {
			if ev.Kind != DomainPower {
				continue
			}
			for _, m := range ev.Members {
				perReplica[m] = append(perReplica[m], Crash{Replica: m, At: ev.Start, RestartAt: ev.End})
			}
		}
		merged := p.Crashes[:0]
		for i, wins := range perReplica {
			sort.Slice(wins, func(a, b int) bool { return wins[a].At < wins[b].At })
			for _, c := range wins {
				if n := len(merged); n > 0 && merged[n-1].Replica == i && c.At <= merged[n-1].RestartAt {
					if c.RestartAt > merged[n-1].RestartAt {
						merged[n-1].RestartAt = c.RestartAt
					}
					continue
				}
				merged = append(merged, c)
			}
		}
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].At != merged[b].At {
				return merged[a].At < merged[b].At
			}
			return merged[a].Replica < merged[b].Replica
		})
		if max := p.Config.MaxCrashes; max > 0 && len(merged) > max {
			merged = merged[:max]
		}
		p.Crashes = merged
	}

	if len(netWins) > 0 {
		p.ReplicaLinks = make([][]Window, p.Replicas)
		for m, wins := range netWins {
			p.ReplicaLinks[m] = mergeWindows(append(wins, p.Links...))
		}
	}
}

// mergeWindows normalizes possibly-overlapping impairment windows into
// the ordered disjoint timeline transferDone walks: where windows
// overlap, a partition (Factor 0) dominates, otherwise the largest
// slowdown factor applies; touching windows with equal factors
// coalesce. The input is not modified beyond reordering.
func mergeWindows(ws []Window) []Window {
	in := make([]Window, 0, len(ws))
	for _, w := range ws {
		if w.End > w.Start {
			in = append(in, w)
		}
	}
	if len(in) == 0 {
		return nil
	}
	// Cut the timeline at every window boundary and resolve each
	// elementary interval independently; n is small (a handful of
	// outages × 8 link slots), so the quadratic sweep is fine.
	cuts := make([]float64, 0, 2*len(in))
	for _, w := range in {
		cuts = append(cuts, w.Start, w.End)
	}
	sort.Float64s(cuts)
	var out []Window
	for i := 0; i+1 < len(cuts); i++ {
		a, b := cuts[i], cuts[i+1]
		if b <= a {
			continue
		}
		covered, partition := false, false
		factor := 0.0
		for _, w := range in {
			if w.Start <= a && w.End >= b {
				covered = true
				if w.Factor == 0 {
					partition = true
				} else if w.Factor > factor {
					factor = w.Factor
				}
			}
		}
		if !covered {
			continue
		}
		if partition {
			factor = 0
		}
		if n := len(out); n > 0 && out[n-1].End == a && out[n-1].Factor == factor {
			out[n-1].End = b
			continue
		}
		out = append(out, Window{Start: a, End: b, Factor: factor})
	}
	return out
}

// Validate checks a materialized plan's standing invariants: replicas
// and members in range, per-replica crash windows strictly
// non-overlapping, link timelines ordered and disjoint, and domain
// events forming a consistent partition of the fleet (no two racks
// sharing members, no unknown replicas). NewPlan validates every plan
// it generates; hand-built plans should be validated before use. A nil
// plan is valid (it means "no faults").
func Validate(p *Plan) error {
	if p == nil {
		return nil
	}
	if p.Replicas <= 0 {
		return fmt.Errorf("faults: plan covers %d replicas", p.Replicas)
	}
	if err := p.Config.Validate(); err != nil {
		return err
	}
	if n := len(p.Slowdowns); n != 0 && n != p.Replicas {
		return fmt.Errorf("faults: %d slowdowns for %d replicas", n, p.Replicas)
	}

	lastRestart := make(map[int]float64)
	var prev *Crash
	for i := range p.Crashes {
		c := &p.Crashes[i]
		if c.Replica < 0 || c.Replica >= p.Replicas {
			return fmt.Errorf("faults: crash %d references unknown replica %d (fleet has %d)", i, c.Replica, p.Replicas)
		}
		if c.RestartAt < c.At {
			return fmt.Errorf("faults: crash %d restarts at %v before it happens at %v", i, c.RestartAt, c.At)
		}
		if prev != nil && (c.At < prev.At || (c.At == prev.At && c.Replica < prev.Replica)) {
			return fmt.Errorf("faults: crashes not ordered by (At, Replica) at index %d", i)
		}
		if r, ok := lastRestart[c.Replica]; ok && c.At <= r {
			return fmt.Errorf("faults: replica %d crash windows overlap (crash at %v, previous restart %v)", c.Replica, c.At, r)
		}
		lastRestart[c.Replica] = c.RestartAt
		prev = c
	}

	if err := validateWindows("link", p.Links); err != nil {
		return err
	}
	if n := len(p.ReplicaLinks); n != 0 && n != p.Replicas {
		return fmt.Errorf("faults: %d replica link timelines for %d replicas", n, p.Replicas)
	}
	for i, wins := range p.ReplicaLinks {
		if err := validateWindows(fmt.Sprintf("replica %d link", i), wins); err != nil {
			return err
		}
	}
	return validateDomains(p)
}

func validateWindows(what string, wins []Window) error {
	for i, w := range wins {
		if w.End <= w.Start {
			return fmt.Errorf("faults: %s window %d is empty or inverted [%v, %v)", what, i, w.Start, w.End)
		}
		if w.Factor != 0 && w.Factor < 1 {
			return fmt.Errorf("faults: %s window %d has factor %v (want 0 for partition or >= 1)", what, i, w.Factor)
		}
		if i > 0 && w.Start < wins[i-1].End {
			return fmt.Errorf("faults: %s windows %d and %d overlap", what, i-1, i)
		}
	}
	return nil
}

func validateDomains(p *Plan) error {
	rackMembers := make(map[int][]int)
	rackEnd := make(map[int]float64)
	for i, ev := range p.Domains {
		if ev.Kind != DomainPower && ev.Kind != DomainNetwork {
			return fmt.Errorf("faults: domain outage %d has kind %q (materialized events must be %q or %q)",
				i, ev.Kind, DomainPower, DomainNetwork)
		}
		if ev.End <= ev.Start {
			return fmt.Errorf("faults: domain outage %d window empty or inverted [%v, %v)", i, ev.Start, ev.End)
		}
		if len(ev.Members) == 0 {
			return fmt.Errorf("faults: domain outage %d has no members", i)
		}
		for j, m := range ev.Members {
			if m < 0 || m >= p.Replicas {
				return fmt.Errorf("faults: domain outage %d (rack %d) references unknown replica %d (fleet has %d)",
					i, ev.Rack, m, p.Replicas)
			}
			if j > 0 && m <= ev.Members[j-1] {
				return fmt.Errorf("faults: domain outage %d members not strictly ascending: %v", i, ev.Members)
			}
		}
		if top := p.Config.Topology; top.Enabled() {
			want := top.RackMembers(ev.Rack)
			if ev.Zone >= 0 {
				want = top.ZoneMembers(ev.Zone)
			}
			if !equalInts(ev.Members, want) {
				return fmt.Errorf("faults: domain outage %d members %v do not match topology domain %v", i, ev.Members, want)
			}
		}
		if ev.Zone < 0 {
			// Rack-scoped events define the rack→members partition:
			// a rack's member set must be consistent across events and
			// disjoint from every other rack's.
			if seen, ok := rackMembers[ev.Rack]; ok {
				if !equalInts(seen, ev.Members) {
					return fmt.Errorf("faults: rack %d has inconsistent member sets %v and %v", ev.Rack, seen, ev.Members)
				}
			} else {
				for rack, members := range rackMembers {
					if intersects(members, ev.Members) {
						return fmt.Errorf("faults: rack %d and rack %d member sets overlap (%v ∩ %v)",
							rack, ev.Rack, members, ev.Members)
					}
				}
				rackMembers[ev.Rack] = ev.Members
			}
		}
		// Same-rack events must not overlap in time (the next is drawn
		// after the previous outage ends).
		if end, ok := rackEnd[ev.Rack]; ok && ev.Start < end {
			return fmt.Errorf("faults: rack %d outages overlap in time (start %v before previous end %v)", ev.Rack, ev.Start, end)
		}
		if ev.End > rackEnd[ev.Rack] {
			rackEnd[ev.Rack] = ev.End
		}
	}
	return nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}
