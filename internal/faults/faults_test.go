package faults

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
)

func validCfg() Config {
	return Config{
		Seed:    1,
		Horizon: 100,
		MTBF:    40,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		ok   bool
	}{
		{"zero is fault-free", func(c *Config) { *c = Config{} }, true},
		{"valid crashes", func(c *Config) {}, true},
		{"negative horizon", func(c *Config) { c.Horizon = -1 }, false},
		{"negative mtbf", func(c *Config) { c.MTBF = -1 }, false},
		{"mtbf without horizon", func(c *Config) { c.Horizon = 0 }, false},
		{"negative restart delay", func(c *Config) { c.RestartDelay = -1 }, false},
		{"negative max crashes", func(c *Config) { c.MaxCrashes = -1 }, false},
		{"negative max retries", func(c *Config) { c.MaxRetries = -1 }, false},
		{"negative stragglers", func(c *Config) { c.Stragglers = -1 }, false},
		{"straggler factor 1", func(c *Config) { c.Stragglers = 1; c.StragglerFactor = 1 }, false},
		{"straggler ok", func(c *Config) { c.Stragglers = 1; c.StragglerFactor = 1.3 }, true},
		{"degrade frac range", func(c *Config) { c.LinkDegradeFrac = 1.5 }, false},
		{"partition frac range", func(c *Config) { c.LinkPartitionFrac = -0.1 }, false},
		{"fracs sum over 1", func(c *Config) { c.LinkDegradeFrac = 0.6; c.LinkDegradeFactor = 2; c.LinkPartitionFrac = 0.6 }, false},
		{"degrade needs factor", func(c *Config) { c.LinkDegradeFrac = 0.5; c.LinkDegradeFactor = 1 }, false},
		{"links need horizon", func(c *Config) { *c = Config{LinkPartitionFrac: 0.5} }, false},
		{"negative checkpoint interval", func(c *Config) { c.CheckpointInterval = -1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := validCfg()
			tc.mut(&c)
			err := c.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("Validate() = nil, want error")
			}
		})
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	cfg := Config{
		Seed: 42, Horizon: 200, MTBF: 50, RestartDelay: 2,
		Stragglers: 1, StragglerFactor: 1.4,
		LinkDegradeFrac: 0.3, LinkDegradeFactor: 3, LinkPartitionFrac: 0.2,
	}
	a, err := NewPlan(cfg, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(cfg, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 43
	c, err := NewPlan(cfg, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Crashes, c.Crashes) && reflect.DeepEqual(a.Slowdowns, c.Slowdowns) && reflect.DeepEqual(a.Links, c.Links) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestNewPlanCrashInvariants(t *testing.T) {
	cfg := Config{Seed: 7, Horizon: 500, MTBF: 30, RestartDelay: 1}
	const downtime = 4.0
	p, err := NewPlan(cfg, 3, downtime)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Crashes) == 0 {
		t.Fatal("expected crashes over a long horizon")
	}
	last := make(map[int]float64)
	for i, c := range p.Crashes {
		if c.At < 0 || c.At >= cfg.Horizon {
			t.Fatalf("crash %d at %v outside [0, %v)", i, c.At, cfg.Horizon)
		}
		if got := c.RestartAt - c.At; math.Abs(got-downtime) > 1e-12 {
			t.Fatalf("crash %d downtime %v, want %v", i, got, downtime)
		}
		if i > 0 && p.Crashes[i-1].At > c.At {
			t.Fatalf("crashes not sorted at %d", i)
		}
		// Per replica, the next crash must come after the previous
		// restart: no overlapping outages.
		if prev, ok := last[c.Replica]; ok && c.At < prev {
			t.Fatalf("replica %d crashes at %v before restart %v", c.Replica, c.At, prev)
		}
		last[c.Replica] = c.RestartAt
	}

	cfg.MaxCrashes = 2
	p2, err := NewPlan(cfg, 3, downtime)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Crashes) != 2 {
		t.Fatalf("MaxCrashes=2 kept %d crashes", len(p2.Crashes))
	}
}

func TestPlanStragglers(t *testing.T) {
	cfg := Config{Seed: 3, Stragglers: 2, StragglerFactor: 1.5}
	p, err := NewPlan(cfg, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for i := 0; i < 5; i++ {
		if f := p.SlowdownFor(i); f != 0 {
			if f != 1.5 {
				t.Fatalf("SlowdownFor(%d) = %v", i, f)
			}
			n++
		}
	}
	if n != 2 {
		t.Fatalf("%d stragglers, want 2", n)
	}
	if got := p.SlowdownFor(99); got != 0 {
		t.Fatalf("out-of-range SlowdownFor = %v", got)
	}
}

func TestNilPlanSafe(t *testing.T) {
	var p *Plan
	if p.Active() {
		t.Fatal("nil plan Active")
	}
	if got := p.SlowdownFor(0); got != 0 {
		t.Fatalf("nil SlowdownFor = %v", got)
	}
	if got := p.MaxRetries(); got != DefaultMaxRetries {
		t.Fatalf("nil MaxRetries = %d", got)
	}
	if got := p.TransferDone(3, 2); got != 5 {
		t.Fatalf("nil TransferDone = %v", got)
	}
}

func TestTransferDone(t *testing.T) {
	p := &Plan{Links: []Window{
		{Start: 10, End: 20, Factor: 2}, // degraded: half rate
		{Start: 30, End: 40, Factor: 0}, // partition: no progress
	}}
	cases := []struct {
		name       string
		start, dur float64
		want       float64
	}{
		{"before windows", 0, 5, 5},
		{"ends at window edge", 0, 10, 10},
		{"straddles degrade", 8, 4, 14},    // 2s clean, 2s at half rate = 4s in-window
		{"inside degrade", 12, 3, 18},      // 3s of work takes 6s
		{"spans past degrade", 10, 7, 22},  // window supplies 5s capacity in 10s, 2s after
		{"hits partition", 28, 4, 42},      // 2s clean, stall to 40, 2s after
		{"starts in partition", 33, 1, 41}, // stall to 40 first
		{"after all windows", 50, 3, 53},   // clean
		{"zero duration", 15, 0, 15},       // no-op
		{"through both", 0, 25, 50},        // 10 clean + 5 in degrade + 10 clean(20..30) = dur 25 at t=40? recompute below
	}
	for _, tc := range cases[:len(cases)-1] {
		t.Run(tc.name, func(t *testing.T) {
			if got := p.TransferDone(tc.start, tc.dur); math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("TransferDone(%v, %v) = %v, want %v", tc.start, tc.dur, got, tc.want)
			}
		})
	}
	// through both: 10s clean [0,10), degrade [10,20) supplies 5s of
	// work, clean [20,30) supplies the remaining 10s — done exactly at
	// the partition's edge, never entering it.
	if got := p.TransferDone(0, 25); math.Abs(got-30) > 1e-9 {
		t.Fatalf("TransferDone(0, 25) = %v, want 30", got)
	}
	// One more second of work would stall through the partition.
	if got := p.TransferDone(0, 26); math.Abs(got-41) > 1e-9 {
		t.Fatalf("TransferDone(0, 26) = %v, want 41", got)
	}
}

func TestWeightReloadTime(t *testing.T) {
	node, spec := hw.L20, model.Tiny
	got := WeightReloadTime(node, spec, 2)
	if got <= 0 {
		t.Fatalf("WeightReloadTime = %v, want > 0", got)
	}
	plan, err := model.Partition(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	var max float64
	for st := range plan.Stages {
		if b := plan.StageWeightBytes(st); b > max {
			max = b
		}
	}
	if want := node.P2PTime(max); math.Abs(got-want) > 1e-12 {
		t.Fatalf("WeightReloadTime = %v, want %v", got, want)
	}
	// Unpartitionable world: graceful zero, not a panic.
	if got := WeightReloadTime(node, spec, 10_000); got != 0 {
		t.Fatalf("unpartitionable WeightReloadTime = %v, want 0", got)
	}
}
