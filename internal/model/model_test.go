package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable2Shapes(t *testing.T) {
	// Paper Table 2 columns: layers, heads, hidden size.
	cases := []struct {
		s             Spec
		layers, heads int
		hidden        int
	}{
		{Llama2_13B, 40, 40, 5120},
		{Qwen2_5_32B, 64, 40, 5120},
		{Llama2_70B, 80, 64, 8192},
	}
	for _, c := range cases {
		if c.s.Layers != c.layers || c.s.Heads != c.heads || c.s.Hidden != c.hidden {
			t.Errorf("%s shape drifted from Table 2: %+v", c.s.Name, c.s)
		}
		if err := c.s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", c.s.Name, err)
		}
	}
}

func TestTable2WeightSizes(t *testing.T) {
	// Paper Table 2 parameter-memory column: 26 GB, 64 GB, 140 GB.
	cases := []struct {
		s      Spec
		wantGB float64
		tolGB  float64
	}{
		{Llama2_13B, 26, 1.5},
		{Qwen2_5_32B, 64, 3.0},
		{Llama2_70B, 140, 5.0},
	}
	for _, c := range cases {
		gotGB := c.s.WeightBytes() / 1e9
		if math.Abs(gotGB-c.wantGB) > c.tolGB {
			t.Errorf("%s weights = %.1f GB, want %.0f GB (Table 2)", c.s.Name, gotGB, c.wantGB)
		}
	}
}

func TestGQAShrinksKVCache(t *testing.T) {
	// Paper: "the 32B and 70B models use GQA, which results in a
	// smaller KV cache capacity for the same token count."
	perTok13 := Llama2_13B.KVBytesPerToken()
	perTok32 := Qwen2_5_32B.KVBytesPerToken()
	perTok70 := Llama2_70B.KVBytesPerToken()
	if perTok32 >= perTok13 {
		t.Errorf("32B GQA KV/token (%.0f) not smaller than 13B MHA (%.0f)", perTok32, perTok13)
	}
	if perTok70 >= perTok13 {
		t.Errorf("70B GQA KV/token (%.0f) not smaller than 13B MHA (%.0f)", perTok70, perTok13)
	}
	// Llama2-13B MHA: 2*40*128*2 bytes * 40 layers = 819200 B/token.
	if perTok13 != 819200 {
		t.Errorf("13B KV/token = %v, want 819200", perTok13)
	}
}

func TestKVMagnitudeMatchesPaperExample(t *testing.T) {
	// Paper §2.2.1: Llama-30B takes 1.52 MB/token, and 400 requests of
	// average length 300 need ~178 GB. Our 13B (same family, MHA)
	// should be about half that per token.
	perTok := Llama2_13B.KVBytesPerToken() / 1e6
	if perTok < 0.5 || perTok > 1.2 {
		t.Errorf("13B KV = %.2f MB/token, expected 0.5-1.2 MB", perTok)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := Llama2_13B
	bad.Heads = 0
	if bad.Validate() == nil {
		t.Error("zero heads validated")
	}
	bad = Llama2_13B
	bad.Hidden = 5121
	if bad.Validate() == nil {
		t.Error("indivisible hidden validated")
	}
	bad = Llama2_13B
	bad.KVHeads = 3
	if bad.Validate() == nil {
		t.Error("indivisible kv heads validated")
	}
	bad = Llama2_13B
	bad.BytesPerParam = 0
	if bad.Validate() == nil {
		t.Error("zero precision validated")
	}
}

func TestFLOPFormulas(t *testing.T) {
	s := Tiny
	if got, want := s.DenseFLOPsPerTokenLayer(), 2*s.LayerParams(); got != want {
		t.Errorf("dense FLOPs = %v, want %v", got, want)
	}
	if got, want := s.AttnFLOPsPerTokenLayer(10), 4.0*256*10; got != want {
		t.Errorf("attn FLOPs = %v, want %v", got, want)
	}
	// Prefill FLOPs grow superlinearly in sequence length.
	f1 := s.PrefillFLOPsLayer(100)
	f2 := s.PrefillFLOPsLayer(200)
	if f2 <= 2*f1 {
		t.Errorf("prefill FLOPs not superlinear: f(100)=%v f(200)=%v", f1, f2)
	}
}

func TestPartitionEven(t *testing.T) {
	p, err := Partition(Llama2_70B, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, st := range p.Stages {
		if st.Layers != 20 {
			t.Errorf("stage %d layers = %d, want 20", i, st.Layers)
		}
		total += st.Layers
	}
	if total != 80 {
		t.Errorf("total layers = %d", total)
	}
	if !p.Stages[0].HasEmbed || p.Stages[0].HasHead {
		t.Error("stage 0 roles wrong")
	}
	if !p.Stages[3].HasHead || p.Stages[3].HasEmbed {
		t.Error("last stage roles wrong")
	}
}

func TestPartitionRemainder(t *testing.T) {
	m := Tiny
	m.Layers = 10
	p, err := Partition(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 3, 2, 2}
	for i, st := range p.Stages {
		if st.Layers != want[i] {
			t.Errorf("stage %d layers = %d, want %d", i, st.Layers, want[i])
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(Tiny, 0); err == nil {
		t.Error("0-stage partition accepted")
	}
	if _, err := Partition(Tiny, 100); err == nil {
		t.Error("more stages than layers accepted")
	}
}

func TestPartitionConservesWeights(t *testing.T) {
	for _, m := range Models() {
		for _, g := range []int{1, 2, 4} {
			p, err := Partition(m, g)
			if err != nil {
				t.Fatal(err)
			}
			var sum float64
			for i := range p.Stages {
				sum += p.StageWeightBytes(i)
			}
			if math.Abs(sum-m.WeightBytes()) > 1 {
				t.Errorf("%s/%d stages: stage weights sum %.0f != total %.0f", m.Name, g, sum, m.WeightBytes())
			}
		}
	}
}

func TestPartitionConservesKV(t *testing.T) {
	p, _ := Partition(Llama2_70B, 4)
	var sum float64
	for i := range p.Stages {
		sum += p.StageKVBytesPerToken(i)
	}
	if math.Abs(sum-Llama2_70B.KVBytesPerToken()) > 1e-9 {
		t.Errorf("stage KV sum %v != total %v", sum, Llama2_70B.KVBytesPerToken())
	}
}

func TestTensorParallelShards(t *testing.T) {
	sh, err := TensorParallel(Llama2_13B, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sh.RankWeightBytes(), Llama2_13B.WeightBytes()/4; got != want {
		t.Errorf("rank weights = %v, want %v", got, want)
	}
	if got, want := sh.RankKVBytesPerToken(), Llama2_13B.KVBytesPerToken()/4; got != want {
		t.Errorf("rank KV = %v, want %v", got, want)
	}
	if _, err := TensorParallel(Llama2_13B, 0); err == nil {
		t.Error("0-world TP accepted")
	}
	if _, err := TensorParallel(Llama2_70B, 3); err == nil {
		t.Error("indivisible TP accepted")
	}
}

func TestActivationBytes(t *testing.T) {
	if got := Tiny.ActivationBytes(10); got != 10*256*2 {
		t.Errorf("activation bytes = %v", got)
	}
}

// Property: partitioning over any valid stage count conserves layers and
// assigns every stage at least one layer.
func TestPartitionProperty(t *testing.T) {
	prop := func(layers, stages uint8) bool {
		l := int(layers%64) + 1
		g := int(stages%8) + 1
		m := Tiny
		m.Layers = l
		p, err := Partition(m, g)
		if g > l {
			return err != nil
		}
		if err != nil {
			return false
		}
		sum := 0
		for _, st := range p.Stages {
			if st.Layers < 1 {
				return false
			}
			sum += st.Layers
		}
		return sum == l
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
