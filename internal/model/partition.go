package model

import "fmt"

// Stage describes the slice of a model owned by one pipeline stage.
type Stage struct {
	// Index is the stage rank, 0-based.
	Index int
	// Layers is the number of transformer blocks on this stage.
	Layers int
	// HasEmbed marks the first stage (token embedding lookup).
	HasEmbed bool
	// HasHead marks the last stage (final norm + LM head).
	HasHead bool
}

// PipelinePlan is a partition of a model over pipeline stages.
type PipelinePlan struct {
	Model  Spec
	Stages []Stage
}

// Partition splits the model's layers over stages pipeline stages as
// evenly as possible (remainder layers go to the earliest stages, as
// vLLM does), with the embedding on stage 0 and the LM head on the last
// stage.
func Partition(m Spec, stages int) (PipelinePlan, error) {
	if stages <= 0 {
		return PipelinePlan{}, fmt.Errorf("model: partition over %d stages", stages)
	}
	if stages > m.Layers {
		return PipelinePlan{}, fmt.Errorf("model: %d stages for %d layers", stages, m.Layers)
	}
	base, rem := m.Layers/stages, m.Layers%stages
	plan := PipelinePlan{Model: m, Stages: make([]Stage, stages)}
	for i := range plan.Stages {
		l := base
		if i < rem {
			l++
		}
		plan.Stages[i] = Stage{
			Index:    i,
			Layers:   l,
			HasEmbed: i == 0,
			HasHead:  i == stages-1,
		}
	}
	return plan, nil
}

// StageParams returns the parameter count hosted by stage st.
func (p PipelinePlan) StageParams(st int) float64 {
	s := p.Stages[st]
	params := float64(s.Layers) * p.Model.LayerParams()
	if s.HasEmbed {
		params += p.Model.EmbedParams() / 2
	}
	if s.HasHead {
		params += p.Model.EmbedParams() / 2
	}
	return params
}

// StageWeightBytes returns weight bytes hosted by stage st.
func (p PipelinePlan) StageWeightBytes(st int) float64 {
	return p.StageParams(st) * float64(p.Model.BytesPerParam)
}

// StageKVBytesPerToken returns per-token KV bytes held by stage st.
func (p PipelinePlan) StageKVBytesPerToken(st int) float64 {
	return float64(p.Stages[st].Layers) * p.Model.KVBytesPerTokenLayer()
}

// MaxStageWeightBytes returns the largest per-stage weight footprint;
// the stage with the most weights constrains KV capacity.
func (p PipelinePlan) MaxStageWeightBytes() float64 {
	var max float64
	for i := range p.Stages {
		if b := p.StageWeightBytes(i); b > max {
			max = b
		}
	}
	return max
}

// ActivationBytes returns the bytes of the hidden-state activation
// handed between stages for a microbatch of tokens tokens.
func (m Spec) ActivationBytes(tokens int) float64 {
	return float64(tokens) * float64(m.Hidden) * float64(m.BytesPerParam)
}

// TPShard describes the per-GPU share of a tensor-parallel deployment:
// every layer is split across all GPUs, so each rank holds 1/World of
// the weights and of the KV cache.
type TPShard struct {
	Model Spec
	World int
}

// TensorParallel returns the per-rank shard for a world-size deployment.
func TensorParallel(m Spec, world int) (TPShard, error) {
	if world <= 0 {
		return TPShard{}, fmt.Errorf("model: tensor parallel world %d", world)
	}
	if m.Heads%world != 0 {
		return TPShard{}, fmt.Errorf("model: %d heads not divisible by world %d", m.Heads, world)
	}
	return TPShard{Model: m, World: world}, nil
}

// RankWeightBytes returns weight bytes per GPU.
func (t TPShard) RankWeightBytes() float64 {
	return t.Model.WeightBytes() / float64(t.World)
}

// RankKVBytesPerToken returns per-token KV bytes per GPU.
func (t TPShard) RankKVBytesPerToken() float64 {
	return t.Model.KVBytesPerToken() / float64(t.World)
}
