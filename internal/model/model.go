// Package model describes the transformer models the paper evaluates
// (Table 2) and derives the quantities the cost model needs: parameter
// counts, weight bytes, KV-cache bytes per token, FLOP counts per token,
// and the layer partitioning used by pipeline and tensor parallelism.
package model

import "fmt"

// Spec describes a decoder-only transformer.
type Spec struct {
	Name string
	// Layers is the number of transformer blocks.
	Layers int
	// Heads is the number of attention (query) heads.
	Heads int
	// KVHeads is the number of key/value heads (GQA when < Heads).
	KVHeads int
	// Hidden is the model dimension.
	Hidden int
	// Intermediate is the MLP inner dimension (SwiGLU: 3 matrices).
	Intermediate int
	// Vocab is the vocabulary size (embedding and LM head).
	Vocab int
	// BytesPerParam is 2 for FP16/BF16.
	BytesPerParam int
}

// Validate reports a configuration error, if any.
func (s Spec) Validate() error {
	switch {
	case s.Layers <= 0 || s.Heads <= 0 || s.KVHeads <= 0 || s.Hidden <= 0:
		return fmt.Errorf("model: %q has non-positive dimensions", s.Name)
	case s.Hidden%s.Heads != 0:
		return fmt.Errorf("model: %q hidden %d not divisible by heads %d", s.Name, s.Hidden, s.Heads)
	case s.Heads%s.KVHeads != 0:
		return fmt.Errorf("model: %q heads %d not divisible by kv heads %d", s.Name, s.Heads, s.KVHeads)
	case s.BytesPerParam <= 0:
		return fmt.Errorf("model: %q has no precision", s.Name)
	}
	return nil
}

// HeadDim returns the per-head dimension.
func (s Spec) HeadDim() int { return s.Hidden / s.Heads }

// LayerParams returns the parameter count of one transformer block:
// attention projections (Q, O full-width; K, V at KV width) plus a
// 3-matrix SwiGLU MLP. Norm parameters are negligible and ignored.
func (s Spec) LayerParams() float64 {
	h := float64(s.Hidden)
	kvWidth := float64(s.KVHeads * s.HeadDim())
	attn := 2*h*h + 2*h*kvWidth
	mlp := 3 * h * float64(s.Intermediate)
	return attn + mlp
}

// EmbedParams returns embedding plus (untied) LM head parameters.
func (s Spec) EmbedParams() float64 {
	return 2 * float64(s.Vocab) * float64(s.Hidden)
}

// TotalParams returns the full parameter count.
func (s Spec) TotalParams() float64 {
	return float64(s.Layers)*s.LayerParams() + s.EmbedParams()
}

// WeightBytes returns the memory footprint of all weights.
func (s Spec) WeightBytes() float64 {
	return s.TotalParams() * float64(s.BytesPerParam)
}

// KVBytesPerTokenLayer returns KV-cache bytes for one token in one layer
// (keys and values at KV width).
func (s Spec) KVBytesPerTokenLayer() float64 {
	return 2 * float64(s.KVHeads*s.HeadDim()) * float64(s.BytesPerParam)
}

// KVBytesPerToken returns KV-cache bytes for one token across all
// layers. For Llama-2-13B this is ~0.8 MB, matching the magnitude the
// paper quotes for Llama-30B (1.52 MB/token).
func (s Spec) KVBytesPerToken() float64 {
	return float64(s.Layers) * s.KVBytesPerTokenLayer()
}

// DenseFLOPsPerTokenLayer returns the matmul FLOPs to push one token
// through one block, excluding attention-score computation: 2 FLOPs per
// parameter.
func (s Spec) DenseFLOPsPerTokenLayer() float64 {
	return 2 * s.LayerParams()
}

// AttnFLOPsPerTokenLayer returns attention score+value FLOPs for one new
// token attending over a context of ctx tokens in one layer: QK^T and
// AV each cost 2*Hidden*ctx (query heads dominate; GQA reduces KV reads,
// not score FLOPs).
func (s Spec) AttnFLOPsPerTokenLayer(ctx int) float64 {
	return 4 * float64(s.Hidden) * float64(ctx)
}

// PrefillFLOPsLayer returns FLOPs for one layer of a prefill over one
// sequence of seqLen tokens (dense + causal attention ~ s^2/2 pairs).
func (s Spec) PrefillFLOPsLayer(seqLen int) float64 {
	sl := float64(seqLen)
	return sl*s.DenseFLOPsPerTokenLayer() + 2*float64(s.Hidden)*sl*sl
}

// Paper Table 2 models. Intermediate sizes and vocabularies are from the
// public model cards; the Table-2 columns (params, layers, heads, hidden
// size, precision) are asserted in tests.
var (
	// Llama2_13B is Llama2-13B-chat (26 GB FP16, MHA).
	Llama2_13B = Spec{
		Name: "Llama2-13B-chat", Layers: 40, Heads: 40, KVHeads: 40,
		Hidden: 5120, Intermediate: 13824, Vocab: 32000, BytesPerParam: 2,
	}
	// Qwen2_5_32B is Qwen2.5-32B-Instruct (64 GB BF16, GQA 8 KV heads).
	Qwen2_5_32B = Spec{
		Name: "Qwen2.5-32B-Instruct", Layers: 64, Heads: 40, KVHeads: 8,
		Hidden: 5120, Intermediate: 27648, Vocab: 152064, BytesPerParam: 2,
	}
	// Llama2_70B is Llama2-70B-chat (140 GB FP16, GQA 8 KV heads).
	Llama2_70B = Spec{
		Name: "Llama2-70B-chat", Layers: 80, Heads: 64, KVHeads: 8,
		Hidden: 8192, Intermediate: 28672, Vocab: 32000, BytesPerParam: 2,
	}
	// Llama30B is Llama-30B, used by the paper's Figure-6 tensor-
	// parallel scaling case study (§2.2.3). 52 heads divide evenly
	// over 1/2/4 GPUs.
	Llama30B = Spec{
		Name: "Llama-30B", Layers: 60, Heads: 52, KVHeads: 52,
		Hidden: 6656, Intermediate: 17920, Vocab: 32000, BytesPerParam: 2,
	}
	// Tiny is a small model for fast unit tests.
	Tiny = Spec{
		Name: "tiny", Layers: 4, Heads: 4, KVHeads: 4,
		Hidden: 256, Intermediate: 1024, Vocab: 1000, BytesPerParam: 2,
	}
)

// Models lists the evaluation models from the paper in Table-2 order.
func Models() []Spec { return []Spec{Llama2_13B, Qwen2_5_32B, Llama2_70B} }
