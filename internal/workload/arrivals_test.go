package workload

import (
	"math"
	"math/rand"
	"testing"
)

func processes() []ArrivalProcess {
	return []ArrivalProcess{
		Instant{},
		Poisson{Rate: 5},
		Bursty{OnRate: 10, OffRate: 0, MeanOn: 30, MeanOff: 30},
		Diurnal{BaseRate: 2.5, PeakRate: 7.5, Period: 600},
	}
}

// Every process must produce non-decreasing, non-negative times, and be
// bit-identical for the same seed.
func TestArrivalProcessInvariants(t *testing.T) {
	for _, p := range processes() {
		t.Run(p.Name(), func(t *testing.T) {
			a := p.Times(2000, rand.New(rand.NewSource(7)))
			b := p.Times(2000, rand.New(rand.NewSource(7)))
			if len(a) != 2000 {
				t.Fatalf("got %d times", len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("times[%d] differ for same seed: %v vs %v", i, a[i], b[i])
				}
				if a[i] < 0 {
					t.Fatalf("times[%d] = %v < 0", i, a[i])
				}
				if i > 0 && a[i] < a[i-1] {
					t.Fatalf("times decrease at %d: %v after %v", i, a[i], a[i-1])
				}
			}
		})
	}
}

func TestInstantIsAllZero(t *testing.T) {
	for _, tm := range (Instant{}).Times(100, rand.New(rand.NewSource(1))) {
		if tm != 0 {
			t.Fatalf("instant arrival at %v", tm)
		}
	}
}

// The empirical mean rate of each stochastic process must be close to
// its configured mean.
func TestArrivalMeanRates(t *testing.T) {
	cases := []struct {
		p    ArrivalProcess
		want float64
	}{
		{Poisson{Rate: 5}, 5},
		{Bursty{OnRate: 10, OffRate: 0, MeanOn: 30, MeanOff: 30}, 5},
		{Bursty{OnRate: 8, OffRate: 2, MeanOn: 10, MeanOff: 30}, (8*10 + 2*30) / 40.0},
		{Diurnal{BaseRate: 2.5, PeakRate: 7.5, Period: 600}, 5},
	}
	const n = 20000
	for _, c := range cases {
		t.Run(c.p.Name(), func(t *testing.T) {
			times := c.p.Times(n, rand.New(rand.NewSource(11)))
			got := float64(n) / times[n-1]
			if math.Abs(got-c.want)/c.want > 0.15 {
				t.Errorf("empirical rate %.2f req/s, want ~%.2f", got, c.want)
			}
		})
	}
}

// Bursty with a silent off state must leave visible gaps: the largest
// inter-arrival gap should be on the order of the off period, far above
// the on-state mean gap.
func TestBurstyLeavesGaps(t *testing.T) {
	b := Bursty{OnRate: 10, OffRate: 0, MeanOn: 20, MeanOff: 20}
	times := b.Times(5000, rand.New(rand.NewSource(3)))
	var maxGap float64
	for i := 1; i < len(times); i++ {
		if g := times[i] - times[i-1]; g > maxGap {
			maxGap = g
		}
	}
	if maxGap < 5 {
		t.Errorf("max gap %.2fs; expected off periods around 20s", maxGap)
	}
}

// The diurnal rate function must hit its bounds and average to the
// configured mean.
func TestDiurnalRateCurve(t *testing.T) {
	d := Diurnal{BaseRate: 1, PeakRate: 3, Period: 600}
	if r := d.RateAt(0); math.Abs(r-1) > 1e-9 {
		t.Errorf("rate at t=0 is %v, want 1", r)
	}
	if r := d.RateAt(300); math.Abs(r-3) > 1e-9 {
		t.Errorf("rate at half period is %v, want 3", r)
	}
	var sum float64
	for i := 0; i < 600; i++ {
		sum += d.RateAt(float64(i))
	}
	if mean := sum / 600; math.Abs(mean-2) > 0.05 {
		t.Errorf("mean rate %v, want ~2", mean)
	}
}

func TestArrivalConfig(t *testing.T) {
	for _, kind := range ArrivalKinds() {
		cfg := ArrivalConfig{Kind: kind, Rate: 4, Seed: 1}
		p, err := cfg.Process()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p.Name() != kind {
			t.Errorf("kind %q built process %q", kind, p.Name())
		}
	}
	if err := (ArrivalConfig{Kind: "no-such"}).Validate(); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := (ArrivalConfig{Kind: ArrivalPoisson, Rate: 0}).Validate(); err == nil {
		t.Error("poisson with zero rate accepted")
	}
	if err := (ArrivalConfig{Kind: ArrivalInstant}).Validate(); err != nil {
		t.Errorf("instant with zero rate rejected: %v", err)
	}
}

// Stamping must not mutate the input, must preserve everything but
// ArrivalTime, and must assign times in request order.
func TestStampArrivals(t *testing.T) {
	reqs := MustGenerate(DefaultConfig(200, 1))
	stamped := StampArrivals(reqs, Poisson{Rate: 5}, 9)
	if len(stamped) != len(reqs) {
		t.Fatalf("stamped %d of %d", len(stamped), len(reqs))
	}
	for i, r := range reqs {
		if r.ArrivalTime != 0 {
			t.Fatalf("input mutated: request %d arrival %v", i, r.ArrivalTime)
		}
		s := stamped[i]
		if s.ID != r.ID || s.InputLen != r.InputLen || s.OutputLen != r.OutputLen || s.Topic != r.Topic {
			t.Fatalf("request %d mutated beyond ArrivalTime", i)
		}
		if i > 0 && s.ArrivalTime < stamped[i-1].ArrivalTime {
			t.Fatalf("arrival order broken at %d", i)
		}
	}
	if !HasArrivals(stamped) {
		t.Error("stamped trace reports no arrivals")
	}
	if HasArrivals(reqs) {
		t.Error("unstamped trace reports arrivals")
	}
}

func TestSortByArrival(t *testing.T) {
	reqs := []Request{
		{ID: 0, ArrivalTime: 5},
		{ID: 1, ArrivalTime: 1},
		{ID: 2, ArrivalTime: 1},
		{ID: 3, ArrivalTime: 0},
	}
	got := SortByArrival(reqs)
	want := []int{3, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}
