package workload

import (
	"encoding/json"
	"fmt"
	"io"
)

// Traces can be exported and re-imported as JSON so users can evaluate
// the schedulers on their own request mixes (e.g. real dataset lengths)
// instead of the synthetic generator.

// jsonRequest is the stable wire form of a Request.
type jsonRequest struct {
	ID        int       `json:"id"`
	InputLen  int       `json:"input_len"`
	OutputLen int       `json:"output_len"`
	Topic     int       `json:"topic,omitempty"`
	Features  []float64 `json:"features,omitempty"`
}

// WriteJSON exports a trace.
func WriteJSON(w io.Writer, reqs []Request) error {
	out := make([]jsonRequest, len(reqs))
	for i, r := range reqs {
		out[i] = jsonRequest{ID: r.ID, InputLen: r.InputLen, OutputLen: r.OutputLen, Topic: r.Topic, Features: r.Features}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON imports a trace, validating that every request is usable by
// the schedulers (positive lengths, dense IDs in file order).
func ReadJSON(r io.Reader) ([]Request, error) {
	var in []jsonRequest
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	reqs := make([]Request, len(in))
	for i, jr := range in {
		if jr.InputLen <= 0 || jr.OutputLen <= 0 {
			return nil, fmt.Errorf("workload: request %d has non-positive lengths (%d, %d)", i, jr.InputLen, jr.OutputLen)
		}
		reqs[i] = Request{ID: i, InputLen: jr.InputLen, OutputLen: jr.OutputLen, Topic: jr.Topic, Features: jr.Features}
	}
	return reqs, nil
}
