package workload

import (
	"reflect"
	"testing"
)

func stampedTrace(t *testing.T, n int, cfg PrefixConfig) ([]Request, []Request) {
	t.Helper()
	base := MustGenerate(DefaultConfig(n, 11))
	out, err := StampPrefixes(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return base, out
}

func TestStampPrefixesDeterministicAndStructured(t *testing.T) {
	cfg := DefaultPrefixConfig(8, 256, 5)
	base, out := stampedTrace(t, 400, cfg)
	again, err := StampPrefixes(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, again) {
		t.Fatal("stamping is not deterministic for a seed")
	}
	if !HasPrefixes(out) || HasPrefixes(base) {
		t.Fatal("HasPrefixes wrong before/after stamping")
	}
	groups := map[int]int{}
	for i, r := range out {
		if r.ID != base[i].ID || r.OutputLen != base[i].OutputLen || r.ArrivalTime != base[i].ArrivalTime {
			t.Fatalf("request %d: stamping changed non-prefix fields", i)
		}
		if r.PrefixLen <= 0 || r.PrefixLen >= r.InputLen {
			t.Fatalf("request %d: prefix %d of input %d", i, r.PrefixLen, r.InputLen)
		}
		if r.InputLen != base[i].InputLen+r.PrefixLen {
			t.Fatalf("request %d: input %d != original %d + prefix %d", i, r.InputLen, base[i].InputLen, r.PrefixLen)
		}
		if r.PrefixGroup < 0 || r.PrefixGroup >= cfg.Groups {
			t.Fatalf("request %d: group %d of %d", i, r.PrefixGroup, cfg.Groups)
		}
		groups[r.PrefixGroup]++
	}
	if len(groups) < cfg.Groups/2 {
		t.Errorf("only %d of %d groups used", len(groups), cfg.Groups)
	}
	if s := PrefixShare(out); s <= 0 || s >= 1 {
		t.Errorf("prefix share = %v, want in (0,1)", s)
	}
}

// Within a group the shared prefix grows monotonically with turns and
// saturates at the configured depth, so later turns re-walk (and
// extend) the earlier turns' block chain.
func TestStampPrefixesTurnGrowth(t *testing.T) {
	cfg := PrefixConfig{Groups: 2, PrefixLen: 128, Turns: 3, Seed: 9}
	_, out := stampedTrace(t, 200, cfg)
	last := map[int]int{}
	distinct := map[int]map[int]bool{}
	for _, r := range out {
		if r.PrefixLen < last[r.PrefixGroup] {
			t.Fatalf("group %d prefix shrank: %d -> %d", r.PrefixGroup, last[r.PrefixGroup], r.PrefixLen)
		}
		last[r.PrefixGroup] = r.PrefixLen
		if distinct[r.PrefixGroup] == nil {
			distinct[r.PrefixGroup] = map[int]bool{}
		}
		distinct[r.PrefixGroup][r.PrefixLen] = true
	}
	for g, set := range distinct {
		if len(set) != cfg.Turns {
			t.Errorf("group %d saw %d distinct prefix lengths, want %d", g, len(set), cfg.Turns)
		}
	}
}

func TestStampPrefixesComposesWithArrivals(t *testing.T) {
	base := MustGenerate(DefaultConfig(100, 3))
	stamped := StampArrivals(base, Poisson{Rate: 5}, 7)
	out, err := StampPrefixes(stamped, DefaultPrefixConfig(4, 64, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].ArrivalTime != stamped[i].ArrivalTime {
			t.Fatalf("request %d: arrival changed by prefix stamping", i)
		}
	}
	if HasArrivals(out) != true {
		t.Error("arrival structure lost")
	}
}

func TestStripPrefixes(t *testing.T) {
	_, out := stampedTrace(t, 50, DefaultPrefixConfig(4, 128, 1))
	bare := StripPrefixes(out)
	if HasPrefixes(bare) {
		t.Fatal("StripPrefixes left prefix structure")
	}
	for i := range bare {
		if bare[i].InputLen != out[i].InputLen || bare[i].OutputLen != out[i].OutputLen {
			t.Fatalf("request %d: StripPrefixes changed lengths", i)
		}
	}
}

func TestPrefixConfigValidate(t *testing.T) {
	for _, cfg := range []PrefixConfig{
		{Groups: 0, PrefixLen: 10, Turns: 1},
		{Groups: 1, PrefixLen: 0, Turns: 1},
		{Groups: 1, PrefixLen: 10, Turns: 0},
	} {
		if _, err := StampPrefixes(nil, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}
