// Package workload generates synthetic LLM inference traces with
// ShareGPT-like statistics. The real evaluation uses ShareGPT V3
// filtered to inputs under 1024 tokens (paper §4.1); that dataset is not
// available offline, so we generate seeded traces whose marginals match:
// heavy-tailed prompt lengths below 1024 tokens, heavy-tailed output
// lengths, and output lengths that are *partially* predictable from the
// prompt — requests carry a latent topic whose noisy embedding stands in
// for the BERT [CLS] representation the paper's predictor consumes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Request is one inference request.
type Request struct {
	// ID is unique within a trace.
	ID int
	// InputLen is the prompt length in tokens.
	InputLen int
	// OutputLen is the true generation length in tokens. Schedulers
	// must not read it for decisions — only the predictor's estimate —
	// but the simulator uses it to know when a request finishes.
	OutputLen int
	// Topic is the latent class that drives output length.
	Topic int
	// Features is the observable embedding of the prompt (the
	// stand-in for a BERT [CLS] vector): a noisy topic centroid plus
	// normalized prompt length.
	Features []float64
	// ArrivalTime is when the request enters the system, in virtual
	// seconds. Zero (the generator default) means the request exists
	// from the start — the offline-batch regime. Stamp arrival times
	// with an ArrivalProcess for open-loop online serving.
	ArrivalTime float64
	// PrefixGroup identifies the shared prefix (system prompt or
	// conversation) this request opens with; meaningful only when
	// PrefixLen > 0. Stamp with StampPrefixes.
	PrefixGroup int
	// PrefixLen is how many leading tokens of InputLen are the group's
	// shared prefix. Zero (the generator default) means the prompt is
	// unique — no KV reuse is possible and engines behave exactly as
	// they do for unstructured traces.
	PrefixLen int
	// Priority is the serving tier: 0 is the most important, higher
	// values matter less. Zero (the generator default) means every
	// request is top tier and priority policies are inert. Stamp with
	// StampPriorities; only policy-aware fleet routers read it.
	Priority int
}

// TotalLen returns input + output tokens.
func (r Request) TotalLen() int { return r.InputLen + r.OutputLen }

// Config controls trace generation.
type Config struct {
	// N is the number of requests.
	N int
	// Seed makes the trace reproducible.
	Seed int64
	// Topics is the number of latent output-length classes.
	Topics int
	// MaxInputLen filters prompts like the paper (< 1024 tokens).
	MaxInputLen int
	// MaxOutputLen caps generations.
	MaxOutputLen int
	// InputLogMean/InputLogStd parameterize the lognormal prompt
	// length distribution.
	InputLogMean, InputLogStd float64
	// OutputLogStd is the within-topic output-length noise; it bounds
	// how predictable output lengths are (paper reports ~52-58%
	// five-bin accuracy).
	OutputLogStd float64
	// FeatureNoise is the std of the noise added to topic centroids.
	FeatureNoise float64
	// FeatureDim is the embedding dimensionality.
	FeatureDim int
}

// DefaultConfig returns ShareGPT-like settings for n requests.
func DefaultConfig(n int, seed int64) Config {
	return Config{
		N:            n,
		Seed:         seed,
		Topics:       8,
		MaxInputLen:  1023,
		MaxOutputLen: 1024,
		InputLogMean: 5.2, // median ~180 tokens
		InputLogStd:  0.9,
		OutputLogStd: 0.42,
		FeatureNoise: 0.55,
		FeatureDim:   16,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.N <= 0:
		return fmt.Errorf("workload: N = %d", c.N)
	case c.Topics <= 0:
		return fmt.Errorf("workload: Topics = %d", c.Topics)
	case c.MaxInputLen < 4 || c.MaxOutputLen < 1:
		return fmt.Errorf("workload: bad length caps %d/%d", c.MaxInputLen, c.MaxOutputLen)
	case c.FeatureDim < c.Topics:
		return fmt.Errorf("workload: FeatureDim %d < Topics %d", c.FeatureDim, c.Topics)
	}
	return nil
}

// Generate produces a deterministic trace for the config.
func Generate(cfg Config) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Topic centroids: orthogonal unit directions in feature space.
	centroids := make([][]float64, cfg.Topics)
	for t := range centroids {
		v := make([]float64, cfg.FeatureDim)
		v[t] = 1
		centroids[t] = v
	}
	// Topic base output scales spread log-uniformly so topics map to
	// distinct length regimes (short answers ... long generations).
	baseLog := make([]float64, cfg.Topics)
	for t := range baseLog {
		baseLog[t] = 3.2 + 2.6*float64(t)/float64(cfg.Topics-1)
	}

	reqs := make([]Request, cfg.N)
	for i := range reqs {
		topic := rng.Intn(cfg.Topics)
		in := clampInt(int(math.Exp(rng.NormFloat64()*cfg.InputLogStd+cfg.InputLogMean)), 4, cfg.MaxInputLen)
		// Output length: topic base, mild coupling to prompt length,
		// and irreducible noise.
		mu := baseLog[topic] + 0.15*(math.Log(float64(in))-cfg.InputLogMean)
		out := clampInt(int(math.Exp(rng.NormFloat64()*cfg.OutputLogStd+mu)), 1, cfg.MaxOutputLen)

		feat := make([]float64, cfg.FeatureDim+1)
		for d := 0; d < cfg.FeatureDim; d++ {
			feat[d] = centroids[topic][d] + rng.NormFloat64()*cfg.FeatureNoise
		}
		feat[cfg.FeatureDim] = float64(in) / float64(cfg.MaxInputLen)

		reqs[i] = Request{ID: i, InputLen: in, OutputLen: out, Topic: topic, Features: feat}
	}
	return reqs, nil
}

// MustGenerate is Generate for tests and examples with known-good
// configs; it panics on error.
func MustGenerate(cfg Config) []Request {
	reqs, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return reqs
}

// Split partitions a trace into train/validation/test subsets by the
// given fractions, preserving order (the paper uses 60/20/20). The
// fractions must be non-negative and sum to at most 1; the test split
// receives whatever remains. Counts are truncated, then clamped so the
// three subsets always concatenate back to the input exactly —
// float64(n)*frac can land a hair above n for frac sums near 1, which
// used to slice out of range.
func Split(reqs []Request, trainFrac, valFrac float64) (train, val, test []Request, err error) {
	if math.IsNaN(trainFrac) || math.IsNaN(valFrac) || trainFrac < 0 || valFrac < 0 || trainFrac+valFrac > 1 {
		return nil, nil, nil, fmt.Errorf("workload: split fractions %v/%v (need non-negative, sum <= 1)",
			trainFrac, valFrac)
	}
	n := len(reqs)
	nt := int(float64(n) * trainFrac)
	if nt > n {
		nt = n
	}
	nv := int(float64(n) * valFrac)
	if nv > n-nt {
		nv = n - nt
	}
	return reqs[:nt], reqs[nt : nt+nv], reqs[nt+nv:], nil
}

// Sample draws k requests without replacement (deterministic for a
// seed), re-numbering IDs 0..k-1 so schedulers can use dense indices.
func Sample(reqs []Request, k int, seed int64) []Request {
	if k >= len(reqs) {
		k = len(reqs)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(reqs))[:k]
	sort.Ints(idx)
	out := make([]Request, k)
	for i, j := range idx {
		out[i] = reqs[j]
		out[i].ID = i
	}
	return out
}

// Stats summarizes a trace.
type Stats struct {
	N                       int
	TotalInput, TotalOutput int
	MeanInput, MeanOutput   float64
	P50Input, P99Input      int
	P50Output, P99Output    int
	MaxInput, MaxOutput     int
}

// Summarize computes trace statistics.
func Summarize(reqs []Request) Stats {
	s := Stats{N: len(reqs)}
	if s.N == 0 {
		return s
	}
	ins := make([]int, len(reqs))
	outs := make([]int, len(reqs))
	for i, r := range reqs {
		ins[i], outs[i] = r.InputLen, r.OutputLen
		s.TotalInput += r.InputLen
		s.TotalOutput += r.OutputLen
		if r.InputLen > s.MaxInput {
			s.MaxInput = r.InputLen
		}
		if r.OutputLen > s.MaxOutput {
			s.MaxOutput = r.OutputLen
		}
	}
	s.MeanInput = float64(s.TotalInput) / float64(s.N)
	s.MeanOutput = float64(s.TotalOutput) / float64(s.N)
	sort.Ints(ins)
	sort.Ints(outs)
	s.P50Input, s.P99Input = PercentileInt(ins, 50), PercentileInt(ins, 99)
	s.P50Output, s.P99Output = PercentileInt(outs, 50), PercentileInt(outs, 99)
	return s
}

// PercentileInt returns the p-th percentile of values. Sorted input is
// used as-is; unsorted input is copied and sorted first, so callers
// never get a silently wrong quantile. p is clamped to [0, 100]; the
// empty slice yields 0.
func PercentileInt(values []int, p float64) int {
	if len(values) == 0 {
		return 0
	}
	if !sort.IntsAreSorted(values) {
		c := append([]int(nil), values...)
		sort.Ints(c)
		values = c
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	idx := int(p / 100 * float64(len(values)-1))
	return values[idx]
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
