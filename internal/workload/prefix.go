package workload

// Prefix structure: real serving traffic rarely consists of unrelated
// prompts. Requests share system prompts, few-shot templates and
// multi-turn conversation history — exactly the redundancy
// PagedAttention-style prefix caching exploits. StampPrefixes overlays
// that structure on a generated trace: requests are assigned to prefix
// groups (one group = one shared system prompt / conversation), and
// within a group successive requests are conversation turns whose
// shared prefix grows as the dialogue accumulates.

import (
	"fmt"
	"math/rand"
)

// PrefixConfig controls the shared-prefix structure stamped on a trace.
type PrefixConfig struct {
	// Groups is the number of distinct shared prefixes (system prompts
	// or conversations). Fewer groups mean more sharing.
	Groups int
	// PrefixLen is the mean base prefix length in tokens; each group
	// draws its own base uniformly from [PrefixLen/2, 3*PrefixLen/2).
	PrefixLen int
	// Turns is the conversation depth: the t-th request of a group
	// (t < Turns) extends the shared prefix by t half-bases, modeling
	// history accumulated over turns. 1 means a static shared prompt.
	Turns int
	// Seed makes group assignment and base lengths reproducible.
	Seed int64
}

// DefaultPrefixConfig returns a chat-serving-like structure: a moderate
// number of conversations with multi-turn history growth.
func DefaultPrefixConfig(groups int, prefixLen int, seed int64) PrefixConfig {
	return PrefixConfig{Groups: groups, PrefixLen: prefixLen, Turns: 4, Seed: seed}
}

// Validate reports a configuration error, if any.
func (c PrefixConfig) Validate() error {
	switch {
	case c.Groups <= 0:
		return fmt.Errorf("workload: prefix Groups = %d", c.Groups)
	case c.PrefixLen <= 0:
		return fmt.Errorf("workload: PrefixLen = %d", c.PrefixLen)
	case c.Turns <= 0:
		return fmt.Errorf("workload: prefix Turns = %d", c.Turns)
	}
	return nil
}

// StampPrefixes returns a copy of reqs carrying shared-prefix
// structure: each request joins a seeded-random group and its prompt is
// extended in front by the group's shared prefix (base plus per-turn
// growth), so InputLen = PrefixLen + the original unique prompt. IDs,
// arrival times and everything else are preserved — stamping composes
// with StampArrivals in either order. The input slice is not modified.
func StampPrefixes(reqs []Request, cfg PrefixConfig) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	bases := make([]int, cfg.Groups)
	for g := range bases {
		bases[g] = cfg.PrefixLen/2 + rng.Intn(cfg.PrefixLen)
		if bases[g] < 1 {
			bases[g] = 1
		}
	}
	turn := make([]int, cfg.Groups)
	out := append([]Request(nil), reqs...)
	for i := range out {
		g := rng.Intn(cfg.Groups)
		t := turn[g]
		if t < cfg.Turns-1 {
			turn[g]++
		}
		plen := bases[g] + t*(bases[g]/2+1)
		out[i].PrefixGroup = g
		out[i].PrefixLen = plen
		out[i].InputLen += plen
	}
	return out, nil
}

// HasPrefixes reports whether any request carries shared-prefix
// structure.
func HasPrefixes(reqs []Request) bool {
	for _, r := range reqs {
		if r.PrefixLen > 0 {
			return true
		}
	}
	return false
}

// StripPrefixes returns a copy of reqs with the prefix structure
// removed but prompt lengths kept — the same physical workload with KV
// reuse made impossible, the no-sharing control for ablations.
func StripPrefixes(reqs []Request) []Request {
	out := append([]Request(nil), reqs...)
	for i := range out {
		out[i].PrefixGroup = 0
		out[i].PrefixLen = 0
	}
	return out
}

// PrefixShare returns the fraction of trace input tokens covered by
// shared prefixes — the upper bound on prefill work a perfect cache
// could skip (less one cold pass per group).
func PrefixShare(reqs []Request) float64 {
	var total, shared int
	for _, r := range reqs {
		total += r.InputLen
		shared += r.PrefixLen
	}
	if total == 0 {
		return 0
	}
	return float64(shared) / float64(total)
}
