package workload

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig := MustGenerate(DefaultConfig(50, 9))
	var buf bytes.Buffer
	if err := WriteJSON(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("lengths: %d vs %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].InputLen != orig[i].InputLen || got[i].OutputLen != orig[i].OutputLen ||
			got[i].Topic != orig[i].Topic || got[i].ID != i {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, got[i], orig[i])
		}
		if len(got[i].Features) != len(orig[i].Features) {
			t.Fatalf("request %d features lost", i)
		}
	}
}

func TestReadJSONRenumbersIDs(t *testing.T) {
	in := `[{"id": 7, "input_len": 10, "output_len": 5}, {"id": 3, "input_len": 20, "output_len": 2}]`
	reqs, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].ID != 0 || reqs[1].ID != 1 {
		t.Errorf("IDs not densified: %v %v", reqs[0].ID, reqs[1].ID)
	}
}

func TestReadJSONValidates(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`[{"input_len": 0, "output_len": 5}]`)); err == nil {
		t.Error("zero input accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"input_len": 5, "output_len": -1}]`)); err == nil {
		t.Error("negative output accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{nope`)); err == nil {
		t.Error("bad json accepted")
	}
}

func TestImportedTraceRunsWithoutFeatures(t *testing.T) {
	// An imported trace may lack features; schedulers using oracle or
	// constant predictors must still work (facade-level property, but
	// the invariant starts here: nil features are preserved).
	in := `[{"input_len": 10, "output_len": 5}]`
	reqs, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if reqs[0].Features != nil {
		t.Errorf("features = %v, want nil", reqs[0].Features)
	}
}
