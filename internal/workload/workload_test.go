package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(500, 7)
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	for i := range a {
		if a[i].InputLen != b[i].InputLen || a[i].OutputLen != b[i].OutputLen || a[i].Topic != b[i].Topic {
			t.Fatalf("trace not deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := MustGenerate(DefaultConfig(200, 1))
	b := MustGenerate(DefaultConfig(200, 2))
	same := 0
	for i := range a {
		if a[i].InputLen == b[i].InputLen && a[i].OutputLen == b[i].OutputLen {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateRespectsLengthCaps(t *testing.T) {
	cfg := DefaultConfig(2000, 3)
	for _, r := range MustGenerate(cfg) {
		if r.InputLen < 4 || r.InputLen > cfg.MaxInputLen {
			t.Fatalf("input len %d outside [4,%d]", r.InputLen, cfg.MaxInputLen)
		}
		if r.OutputLen < 1 || r.OutputLen > cfg.MaxOutputLen {
			t.Fatalf("output len %d outside [1,%d]", r.OutputLen, cfg.MaxOutputLen)
		}
		if len(r.Features) != cfg.FeatureDim+1 {
			t.Fatalf("feature dim %d", len(r.Features))
		}
	}
}

func TestShareGPTLikeMarginals(t *testing.T) {
	s := Summarize(MustGenerate(DefaultConfig(20000, 11)))
	// ShareGPT-like: prompt median in the low hundreds, mean a few
	// hundred, heavy tail toward the 1023 cap.
	if s.P50Input < 80 || s.P50Input > 400 {
		t.Errorf("median input = %d, want 80-400", s.P50Input)
	}
	if s.MeanInput < 150 || s.MeanInput > 500 {
		t.Errorf("mean input = %.0f, want 150-500", s.MeanInput)
	}
	if s.MaxInput > 1023 {
		t.Errorf("max input = %d", s.MaxInput)
	}
	// Outputs: mean in the low hundreds with a long tail.
	if s.MeanOutput < 100 || s.MeanOutput > 500 {
		t.Errorf("mean output = %.0f, want 100-500", s.MeanOutput)
	}
	if s.P99Output < 2*s.P50Output {
		t.Errorf("output tail too light: p50=%d p99=%d", s.P50Output, s.P99Output)
	}
}

func TestTopicsDriveOutputLength(t *testing.T) {
	reqs := MustGenerate(DefaultConfig(20000, 5))
	cfg := DefaultConfig(0, 0)
	sums := make([]float64, cfg.Topics)
	counts := make([]int, cfg.Topics)
	for _, r := range reqs {
		sums[r.Topic] += float64(r.OutputLen)
		counts[r.Topic]++
	}
	lo := sums[0] / float64(counts[0])
	hi := sums[cfg.Topics-1] / float64(counts[cfg.Topics-1])
	if hi < 3*lo {
		t.Errorf("topic output means not separated: topic0=%.0f topicN=%.0f", lo, hi)
	}
}

func TestValidate(t *testing.T) {
	bad := DefaultConfig(10, 1)
	bad.N = 0
	if _, err := Generate(bad); err == nil {
		t.Error("N=0 accepted")
	}
	bad = DefaultConfig(10, 1)
	bad.Topics = 0
	if _, err := Generate(bad); err == nil {
		t.Error("Topics=0 accepted")
	}
	bad = DefaultConfig(10, 1)
	bad.FeatureDim = 2
	if _, err := Generate(bad); err == nil {
		t.Error("FeatureDim < Topics accepted")
	}
	bad = DefaultConfig(10, 1)
	bad.MaxInputLen = 1
	if _, err := Generate(bad); err == nil {
		t.Error("tiny MaxInputLen accepted")
	}
}

func TestSplitFractions(t *testing.T) {
	reqs := MustGenerate(DefaultConfig(1000, 9))
	train, val, test, err := Split(reqs, 0.6, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(train) != 600 || len(val) != 200 || len(test) != 200 {
		t.Errorf("split sizes = %d/%d/%d", len(train), len(val), len(test))
	}
	if train[0].ID != reqs[0].ID || test[199].ID != reqs[999].ID {
		t.Error("split reordered requests")
	}
}

func TestSplitEdgeCases(t *testing.T) {
	cases := []struct {
		name               string
		n                  int
		trainFrac, valFrac float64
		wantErr            bool
		// wantTrain/wantVal are checked only when wantErr is false;
		// test always gets the remainder.
		wantTrain, wantVal int
	}{
		{name: "exact thirds", n: 9, trainFrac: 1.0 / 3, valFrac: 1.0 / 3, wantTrain: 3, wantVal: 3},
		{name: "all train", n: 10, trainFrac: 1, valFrac: 0, wantTrain: 10, wantVal: 0},
		{name: "all val", n: 10, trainFrac: 0, valFrac: 1, wantTrain: 0, wantVal: 10},
		{name: "empty trace", n: 0, trainFrac: 0.6, valFrac: 0.2},
		{name: "single request", n: 1, trainFrac: 0.6, valFrac: 0.2, wantTrain: 0, wantVal: 0},
		// 0.7+0.3 sums to 1 within float64 but 7*0.7 truncates to 4
		// and 7*0.3 to 2: clamping must still cover the trace.
		{name: "truncating fractions", n: 7, trainFrac: 0.7, valFrac: 0.3, wantTrain: 4, wantVal: 2},
		{name: "negative train", n: 10, trainFrac: -0.1, valFrac: 0.2, wantErr: true},
		{name: "negative val", n: 10, trainFrac: 0.6, valFrac: -0.2, wantErr: true},
		{name: "sum above one", n: 10, trainFrac: 0.8, valFrac: 0.3, wantErr: true},
		{name: "NaN fraction", n: 10, trainFrac: math.NaN(), valFrac: 0.2, wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var reqs []Request
			if tc.n > 0 {
				reqs = MustGenerate(DefaultConfig(tc.n, 3))
			}
			train, val, test, err := Split(reqs, tc.trainFrac, tc.valFrac)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Split(%v, %v) accepted", tc.trainFrac, tc.valFrac)
				}
				return
			}
			if err != nil {
				t.Fatalf("Split(%v, %v): %v", tc.trainFrac, tc.valFrac, err)
			}
			if len(train)+len(val)+len(test) != tc.n {
				t.Fatalf("split %d+%d+%d != %d", len(train), len(val), len(test), tc.n)
			}
			if len(train) != tc.wantTrain || len(val) != tc.wantVal {
				t.Errorf("split sizes = %d/%d/%d, want %d/%d/%d", len(train), len(val), len(test),
					tc.wantTrain, tc.wantVal, tc.n-tc.wantTrain-tc.wantVal)
			}
			for i, r := range append(append(append([]Request(nil), train...), val...), test...) {
				if r.ID != i {
					t.Fatalf("split request at position %d has ID %d", i, r.ID)
				}
			}
		})
	}
}

func TestSampleRenumbersAndBounds(t *testing.T) {
	reqs := MustGenerate(DefaultConfig(100, 9))
	s := Sample(reqs, 10, 42)
	if len(s) != 10 {
		t.Fatalf("sample size = %d", len(s))
	}
	for i, r := range s {
		if r.ID != i {
			t.Errorf("sample ID %d at %d not renumbered", r.ID, i)
		}
	}
	// Oversampling returns everything.
	if got := Sample(reqs, 1000, 42); len(got) != 100 {
		t.Errorf("oversample size = %d", len(got))
	}
	// Deterministic.
	a, b := Sample(reqs, 10, 7), Sample(reqs, 10, 7)
	for i := range a {
		if a[i].InputLen != b[i].InputLen {
			t.Fatal("sample not deterministic")
		}
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.MeanInput != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestPercentileInt(t *testing.T) {
	sorted := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := PercentileInt(sorted, 0); got != 1 {
		t.Errorf("p0 = %d", got)
	}
	if got := PercentileInt(sorted, 100); got != 10 {
		t.Errorf("p100 = %d", got)
	}
	if got := PercentileInt(sorted, 50); got != 5 {
		t.Errorf("p50 = %d", got)
	}
	if got := PercentileInt(nil, 50); got != 0 {
		t.Errorf("empty percentile = %d", got)
	}
}

// PercentileInt must not silently assume sorted input: unsorted slices
// are sorted defensively (on a copy), single elements are returned
// directly, and out-of-range p is clamped.
func TestPercentileIntDefensive(t *testing.T) {
	unsorted := []int{9, 1, 5, 3, 7, 2, 10, 4, 8, 6}
	if got := PercentileInt(unsorted, 50); got != 5 {
		t.Errorf("unsorted p50 = %d, want 5", got)
	}
	if got := PercentileInt(unsorted, 100); got != 10 {
		t.Errorf("unsorted p100 = %d, want 10", got)
	}
	// The input must not be reordered.
	if unsorted[0] != 9 || unsorted[9] != 6 {
		t.Errorf("input mutated: %v", unsorted)
	}
	if got := PercentileInt([]int{42}, 99); got != 42 {
		t.Errorf("single-element p99 = %d, want 42", got)
	}
	if got := PercentileInt([]int{42}, 0); got != 42 {
		t.Errorf("single-element p0 = %d, want 42", got)
	}
	sorted := []int{1, 2, 3}
	if got := PercentileInt(sorted, 150); got != 3 {
		t.Errorf("p150 = %d, want clamp to max", got)
	}
	if got := PercentileInt(sorted, -5); got != 1 {
		t.Errorf("p-5 = %d, want clamp to min", got)
	}
}

func TestTotalLen(t *testing.T) {
	r := Request{InputLen: 3, OutputLen: 4}
	if r.TotalLen() != 7 {
		t.Errorf("TotalLen = %d", r.TotalLen())
	}
}

// Property: any valid config yields requests within bounds with correct
// feature dimensionality.
func TestGenerateBoundsProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		cfg := DefaultConfig(int(n%64)+1, seed)
		reqs, err := Generate(cfg)
		if err != nil {
			return false
		}
		for _, r := range reqs {
			if r.InputLen < 4 || r.InputLen > cfg.MaxInputLen ||
				r.OutputLen < 1 || r.OutputLen > cfg.MaxOutputLen ||
				r.Topic < 0 || r.Topic >= cfg.Topics ||
				len(r.Features) != cfg.FeatureDim+1 {
				return false
			}
			for _, f := range r.Features {
				if math.IsNaN(f) || math.IsInf(f, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
