package workload

import "testing"

// FuzzGenerateSplitInvariants checks trace-generation and splitting
// invariants over arbitrary seeds, sizes and split fractions: lengths
// stay inside the configured bounds, IDs are dense, generation is
// deterministic, and Split partitions the trace without duplicating or
// dropping a request.
func FuzzGenerateSplitInvariants(f *testing.F) {
	f.Add(int64(1), uint16(200), uint8(60), uint8(20))
	f.Add(int64(-7), uint16(1), uint8(0), uint8(0))
	f.Add(int64(42), uint16(999), uint8(100), uint8(100))
	f.Add(int64(0), uint16(17), uint8(33), uint8(77))
	f.Fuzz(func(t *testing.T, seed int64, size uint16, trainPct, valPct uint8) {
		n := int(size)%1000 + 1
		cfg := DefaultConfig(n, seed)
		reqs, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Generate(%+v): %v", cfg, err)
		}
		if len(reqs) != n {
			t.Fatalf("generated %d of %d requests", len(reqs), n)
		}
		for i, r := range reqs {
			if r.ID != i {
				t.Fatalf("request %d has ID %d", i, r.ID)
			}
			if r.InputLen < 4 || r.InputLen > cfg.MaxInputLen {
				t.Fatalf("request %d input length %d outside [4, %d]", i, r.InputLen, cfg.MaxInputLen)
			}
			if r.OutputLen < 1 || r.OutputLen > cfg.MaxOutputLen {
				t.Fatalf("request %d output length %d outside [1, %d]", i, r.OutputLen, cfg.MaxOutputLen)
			}
			if r.Topic < 0 || r.Topic >= cfg.Topics {
				t.Fatalf("request %d topic %d outside [0, %d)", i, r.Topic, cfg.Topics)
			}
			if len(r.Features) != cfg.FeatureDim+1 {
				t.Fatalf("request %d has %d features, want %d", i, len(r.Features), cfg.FeatureDim+1)
			}
			if r.TotalLen() != r.InputLen+r.OutputLen {
				t.Fatalf("request %d TotalLen %d != %d+%d", i, r.TotalLen(), r.InputLen, r.OutputLen)
			}
		}

		again, err := Generate(cfg)
		if err != nil {
			t.Fatalf("regenerate: %v", err)
		}
		for i := range reqs {
			if reqs[i].InputLen != again[i].InputLen || reqs[i].OutputLen != again[i].OutputLen ||
				reqs[i].Topic != again[i].Topic {
				t.Fatalf("generation not deterministic at request %d", i)
			}
		}

		// Split fractions in [0,1] with trainFrac+valFrac <= 1.
		trainFrac := float64(trainPct%101) / 100
		valFrac := float64(valPct%101) / 100
		if trainFrac+valFrac > 1 {
			valFrac = 1 - trainFrac
		}
		train, val, test, err := Split(reqs, trainFrac, valFrac)
		if err != nil {
			t.Fatalf("split %v/%v: %v", trainFrac, valFrac, err)
		}
		if len(train)+len(val)+len(test) != n {
			t.Fatalf("split %d+%d+%d != %d", len(train), len(val), len(test), n)
		}
		// The three parts concatenated must be the original trace in
		// order: no request duplicated, dropped or reordered.
		k := 0
		for _, part := range [][]Request{train, val, test} {
			for _, r := range part {
				if r.ID != k {
					t.Fatalf("split request at position %d has ID %d", k, r.ID)
				}
				k++
			}
		}

		// Sample must clamp k, renumber densely, and draw without
		// replacement (strictly increasing source order).
		k2 := n/2 + 1
		sampled := Sample(reqs, k2+n, seed)
		if len(sampled) != n {
			t.Fatalf("oversized sample returned %d of %d", len(sampled), n)
		}
		sampled = Sample(reqs, k2, seed)
		if len(sampled) != k2 {
			t.Fatalf("sample returned %d of %d", len(sampled), k2)
		}
		// Each sampled request must come from a strictly later source
		// position than the previous one (Sample sorts its draw), which
		// rules out duplication; feature-slice identity pins the source.
		j := 0
		for i, r := range sampled {
			if r.ID != i {
				t.Fatalf("sampled request %d has ID %d", i, r.ID)
			}
			for j < n && &reqs[j].Features[0] != &r.Features[0] {
				j++
			}
			if j == n {
				t.Fatalf("sampled request %d not found after previous draw", i)
			}
			j++
		}
	})
}
