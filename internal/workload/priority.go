// Priority tiers model mixed serving classes — interactive traffic
// sharing a fleet with batch/background work. StampPriorities overlays
// tier labels on any generated trace; the labels are inert everywhere
// except policy-aware fleet routers, which may preempt low tiers under
// KV pressure.

package workload

import (
	"fmt"
	"math/rand"
)

// PriorityConfig drives StampPriorities.
type PriorityConfig struct {
	// Tiers is how many priority classes exist; requests get tiers
	// 0..Tiers-1 (0 most important). Must be at least 2 — one tier is
	// the zero default and needs no stamping.
	Tiers int
	// HighFraction is the probability a request lands in tier 0. The
	// remainder spreads uniformly over tiers 1..Tiers-1. Must be in
	// (0, 1).
	HighFraction float64
	// Seed drives the deterministic tier assignment.
	Seed int64
}

// Validate reports a configuration error, if any.
func (c PriorityConfig) Validate() error {
	if c.Tiers < 2 {
		return fmt.Errorf("workload: priority Tiers = %d, need >= 2", c.Tiers)
	}
	if c.HighFraction <= 0 || c.HighFraction >= 1 {
		return fmt.Errorf("workload: priority HighFraction = %v, need (0, 1)", c.HighFraction)
	}
	return nil
}

// StampPriorities returns a copy of reqs carrying priority tiers drawn
// deterministically from cfg.Seed: tier 0 with probability
// HighFraction, otherwise uniform over the lower tiers. Request order
// is preserved.
func StampPriorities(reqs []Request, cfg PriorityConfig) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := append([]Request(nil), reqs...)
	for i := range out {
		if rng.Float64() < cfg.HighFraction {
			out[i].Priority = 0
		} else {
			out[i].Priority = 1 + rng.Intn(cfg.Tiers-1)
		}
	}
	return out, nil
}

// HasPriorities reports whether any request carries a non-zero tier —
// i.e. whether priority policies would have anything to act on.
func HasPriorities(reqs []Request) bool {
	for i := range reqs {
		if reqs[i].Priority != 0 {
			return true
		}
	}
	return false
}
