package workload

import "testing"

func TestStampPrioritiesDeterministicAndTiered(t *testing.T) {
	base := MustGenerate(DefaultConfig(400, 7))
	cfg := PriorityConfig{Tiers: 3, HighFraction: 0.3, Seed: 11}
	out, err := StampPriorities(base, cfg)
	if err != nil {
		t.Fatalf("StampPriorities: %v", err)
	}
	again, err := StampPriorities(base, cfg)
	if err != nil {
		t.Fatalf("StampPriorities: %v", err)
	}
	if !HasPriorities(out) {
		t.Fatal("no priorities stamped")
	}
	if HasPriorities(base) {
		t.Fatal("StampPriorities mutated its input")
	}
	seen := map[int]int{}
	for i := range out {
		if out[i].Priority != again[i].Priority {
			t.Fatalf("request %d: priority differs across identical stamps", i)
		}
		if out[i].Priority < 0 || out[i].Priority >= cfg.Tiers {
			t.Fatalf("request %d: priority %d outside [0, %d)", i, out[i].Priority, cfg.Tiers)
		}
		seen[out[i].Priority]++
	}
	for tier := 0; tier < cfg.Tiers; tier++ {
		if seen[tier] == 0 {
			t.Fatalf("tier %d never assigned across %d requests", tier, len(out))
		}
	}
}

func TestPriorityConfigValidate(t *testing.T) {
	bad := []PriorityConfig{
		{Tiers: 1, HighFraction: 0.5},
		{Tiers: 2, HighFraction: 0},
		{Tiers: 2, HighFraction: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("Validate(%+v) = nil, want error", cfg)
		}
	}
	if err := (PriorityConfig{Tiers: 2, HighFraction: 0.5}).Validate(); err != nil {
		t.Fatalf("Validate = %v, want nil", err)
	}
}
