package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// ArrivalProcess generates the arrival times of a trace: a
// non-decreasing sequence of virtual-time seconds, deterministic for a
// seeded rng. Processes describe when requests enter the system; what
// the requests are stays with the trace generator.
type ArrivalProcess interface {
	// Name identifies the process in reports and flags.
	Name() string
	// Times returns n non-decreasing arrival times in seconds.
	Times(n int, rng *rand.Rand) []float64
}

// Instant is the closed-loop process: every request arrives at t=0,
// reproducing the offline-batch behavior the system had before open-loop
// serving.
type Instant struct{}

// Name returns "instant".
func (Instant) Name() string { return "instant" }

// Times returns n zeros.
func (Instant) Times(n int, _ *rand.Rand) []float64 { return make([]float64, n) }

// Poisson is a homogeneous Poisson process: independent exponential
// inter-arrival gaps at Rate requests per second.
type Poisson struct {
	// Rate is the mean arrival rate in requests per second.
	Rate float64
}

// Name returns "poisson".
func (Poisson) Name() string { return "poisson" }

// Times draws n exponential gaps.
func (p Poisson) Times(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += rng.ExpFloat64() / p.Rate
		out[i] = t
	}
	return out
}

// Bursty is a two-state MMPP (Markov-modulated Poisson process): the
// system alternates between an "on" state emitting at OnRate and an
// "off" state emitting at OffRate, with exponentially distributed state
// holding times. OffRate may be zero (pure on/off bursts).
type Bursty struct {
	// OnRate/OffRate are the per-state arrival rates in requests/s.
	OnRate, OffRate float64
	// MeanOn/MeanOff are the mean state holding times in seconds.
	MeanOn, MeanOff float64
}

// Name returns "bursty".
func (Bursty) Name() string { return "bursty" }

// MeanRate returns the long-run average arrival rate.
func (b Bursty) MeanRate() float64 {
	return (b.OnRate*b.MeanOn + b.OffRate*b.MeanOff) / (b.MeanOn + b.MeanOff)
}

// Times simulates the modulated process.
func (b Bursty) Times(n int, rng *rand.Rand) []float64 {
	out := make([]float64, 0, n)
	t := 0.0
	on := true
	periodEnd := rng.ExpFloat64() * b.MeanOn
	for len(out) < n {
		rate := b.OnRate
		if !on {
			rate = b.OffRate
		}
		// With a silent state, jump straight to the next transition.
		var gap float64
		if rate > 0 {
			gap = rng.ExpFloat64() / rate
		} else {
			gap = math.Inf(1)
		}
		if t+gap <= periodEnd {
			t += gap
			out = append(out, t)
			continue
		}
		t = periodEnd
		on = !on
		if on {
			periodEnd = t + rng.ExpFloat64()*b.MeanOn
		} else {
			periodEnd = t + rng.ExpFloat64()*b.MeanOff
		}
	}
	return out
}

// Diurnal is a non-homogeneous Poisson process whose rate ramps
// sinusoidally between BaseRate and PeakRate with the given period — a
// compressed day/night traffic curve. Arrivals are drawn by thinning
// against PeakRate.
type Diurnal struct {
	// BaseRate/PeakRate bound the instantaneous rate in requests/s.
	BaseRate, PeakRate float64
	// Period is the cycle length in seconds; the rate starts at
	// BaseRate, peaks at Period/2, and returns to BaseRate at Period.
	Period float64
}

// Name returns "diurnal".
func (Diurnal) Name() string { return "diurnal" }

// RateAt returns the instantaneous arrival rate at time t.
func (d Diurnal) RateAt(t float64) float64 {
	phase := (1 - math.Cos(2*math.Pi*t/d.Period)) / 2
	return d.BaseRate + (d.PeakRate-d.BaseRate)*phase
}

// Times draws n arrivals by thinning a PeakRate Poisson stream.
func (d Diurnal) Times(n int, rng *rand.Rand) []float64 {
	out := make([]float64, 0, n)
	t := 0.0
	for len(out) < n {
		t += rng.ExpFloat64() / d.PeakRate
		if rng.Float64()*d.PeakRate <= d.RateAt(t) {
			out = append(out, t)
		}
	}
	return out
}

// Arrival process kinds accepted by ArrivalConfig and the CLIs.
const (
	ArrivalInstant = "instant"
	ArrivalPoisson = "poisson"
	ArrivalBursty  = "bursty"
	ArrivalDiurnal = "diurnal"
)

// ArrivalKinds lists the built-in processes.
func ArrivalKinds() []string {
	return []string{ArrivalInstant, ArrivalPoisson, ArrivalBursty, ArrivalDiurnal}
}

// ArrivalConfig is the flag-friendly description of an arrival process:
// a kind, a target mean rate, and a seed. The bursty and diurnal
// processes derive their shape parameters from the mean rate so a
// single -rate flag moves the whole family.
type ArrivalConfig struct {
	// Kind selects the process (see ArrivalKinds).
	Kind string
	// Rate is the target mean arrival rate in requests per second.
	// Ignored by the instant process.
	Rate float64
	// Seed drives the process's randomness; arrival times are
	// deterministic for a (config, seed) pair.
	Seed int64
}

// Validate reports a configuration error, if any.
func (c ArrivalConfig) Validate() error {
	switch strings.ToLower(c.Kind) {
	case ArrivalInstant:
		return nil
	case ArrivalPoisson, ArrivalBursty, ArrivalDiurnal:
		if c.Rate <= 0 {
			return fmt.Errorf("workload: arrival kind %q needs Rate > 0 (got %v)", c.Kind, c.Rate)
		}
		return nil
	}
	return fmt.Errorf("workload: unknown arrival kind %q (have %v)", c.Kind, ArrivalKinds())
}

// Process builds the configured arrival process.
func (c ArrivalConfig) Process() (ArrivalProcess, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	switch strings.ToLower(c.Kind) {
	case ArrivalInstant:
		return Instant{}, nil
	case ArrivalPoisson:
		return Poisson{Rate: c.Rate}, nil
	case ArrivalBursty:
		// 50% duty cycle, silent off state: bursts at twice the mean
		// rate keep the long-run average at Rate.
		return Bursty{OnRate: 2 * c.Rate, OffRate: 0, MeanOn: 30, MeanOff: 30}, nil
	case ArrivalDiurnal:
		// Sinusoid between 0.5x and 1.5x averages to Rate over a
		// compressed 600 s "day".
		return Diurnal{BaseRate: 0.5 * c.Rate, PeakRate: 1.5 * c.Rate, Period: 600}, nil
	}
	return nil, fmt.Errorf("workload: unknown arrival kind %q", c.Kind)
}

// StampArrivals returns a copy of reqs with arrival times drawn from p
// under the seed, assigned in request order (times are non-decreasing,
// so request order is arrival order). The input slice is not modified.
func StampArrivals(reqs []Request, p ArrivalProcess, seed int64) []Request {
	rng := rand.New(rand.NewSource(seed))
	times := p.Times(len(reqs), rng)
	out := append([]Request(nil), reqs...)
	for i := range out {
		out[i].ArrivalTime = times[i]
	}
	return out
}

// Stamp applies the configured process to reqs (see StampArrivals).
func (c ArrivalConfig) Stamp(reqs []Request) ([]Request, error) {
	p, err := c.Process()
	if err != nil {
		return nil, err
	}
	return StampArrivals(reqs, p, c.Seed), nil
}

// HasArrivals reports whether any request arrives after t=0, i.e.
// whether the trace is open-loop.
func HasArrivals(reqs []Request) bool {
	for _, r := range reqs {
		if r.ArrivalTime > 0 {
			return true
		}
	}
	return false
}

// SortByArrival returns request indices ordered by (ArrivalTime, ID) —
// the canonical online processing order.
func SortByArrival(reqs []Request) []int {
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ra, rb := reqs[idx[a]], reqs[idx[b]]
		if ra.ArrivalTime != rb.ArrivalTime {
			return ra.ArrivalTime < rb.ArrivalTime
		}
		return ra.ID < rb.ID
	})
	return idx
}
