// Package baselines implements the four vLLM-style schedulers the paper
// compares against (§4.1), on exactly the same simulated substrate as
// TD-Pipe:
//
//	TP+SB — tensor parallelism with separate batching (vLLM default):
//	        prefill-prioritized continuous batching, two all-reduces
//	        per layer.
//	TP+HB — tensor parallelism with hybrid batching and chunked
//	        prefill: a per-iteration token budget mixes decodes with
//	        prefill chunks.
//	PP+SB — pipeline parallelism with separate batching: per-slot
//	        continuous batching interleaves prefill batches and decode
//	        steps, suffering the Fig.-1 bubbles.
//	PP+HB — pipeline parallelism with hybrid batching and chunked
//	        prefill.
//
// All four use the paper's recompute strategy on KV overflow: the most
// recently admitted requests are evicted and requeued for re-prefill.
package baselines

import (
	"fmt"
	"sort"

	"repro/internal/deque"

	"repro/internal/hw"
	"repro/internal/kvcache"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Method selects a baseline scheduler.
type Method int

// The four baselines.
const (
	TPSB Method = iota
	TPHB
	PPSB
	PPHB
)

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case TPSB:
		return "TP+SB"
	case TPHB:
		return "TP+HB"
	case PPSB:
		return "PP+SB"
	case PPHB:
		return "PP+HB"
	}
	return "unknown"
}

// IsTP reports whether the method shards tensors rather than layers.
func (m Method) IsTP() bool { return m == TPSB || m == TPHB }

// Methods lists all four baselines in the paper's order.
func Methods() []Method { return []Method{TPSB, TPHB, PPSB, PPHB} }

// Config parameterizes a baseline run.
type Config struct {
	Node  hw.Node
	Spec  model.Spec
	World int
	// Method picks the scheduler.
	Method Method
	// MemUtilization mirrors vLLM's gpu_memory_utilization.
	MemUtilization float64
	// ReserveGB is per-GPU memory withheld for activations, CUDA
	// context and NCCL workspace.
	ReserveGB float64
	// BlockSize is KV block granularity in tokens.
	BlockSize int
	// MaxPrefillTokens caps a separate-batching prefill batch.
	MaxPrefillTokens int
	// ChunkTokens is the hybrid-batching per-iteration token budget
	// (vLLM's max_num_batched_tokens for chunked prefill).
	ChunkTokens int
	// MaxBatch caps requests per running batch (vLLM max_num_seqs).
	MaxBatch int
	// SchedBaseOverhead and SchedPerSeqOverhead model the synchronous
	// engine-loop scheduling gap paid before every iteration (batch
	// assembly, output processing, block-table updates) in seconds and
	// seconds-per-sequence. In stock vLLM this work sits on the
	// critical path and serializes across pipeline microbatches —
	// the cost TD-Pipe's hierarchy-controller moves off the execution
	// plane (§3.2).
	SchedBaseOverhead   float64
	SchedPerSeqOverhead float64

	// SLO is the latency objective folded into the run's latency
	// digest (goodput accounting). The zero value disables it.
	SLO metrics.SLO
}

// DefaultConfig returns vLLM-like defaults.
func DefaultConfig(node hw.Node, spec model.Spec, world int, m Method) Config {
	return Config{
		Node:                node,
		Spec:                spec,
		World:               world,
		Method:              m,
		MemUtilization:      0.90,
		ReserveGB:           3,
		BlockSize:           16,
		MaxPrefillTokens:    2048,
		ChunkTokens:         512,
		MaxBatch:            1024,
		SchedBaseOverhead:   2e-3,
		SchedPerSeqOverhead: 25e-6,
	}
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	switch {
	case c.World <= 0:
		return fmt.Errorf("baselines: world = %d", c.World)
	case c.MemUtilization <= 0 || c.MemUtilization > 1:
		return fmt.Errorf("baselines: MemUtilization = %v", c.MemUtilization)
	case c.MaxPrefillTokens <= 0 || c.ChunkTokens <= 0 || c.MaxBatch <= 0:
		return fmt.Errorf("baselines: non-positive batching limits")
	}
	if err := c.Node.Validate(); err != nil {
		return err
	}
	return c.Spec.Validate()
}

// schedOverhead returns the engine-loop gap before an iteration over
// seqs sequences.
func (c Config) schedOverhead(seqs int) float64 {
	return c.SchedBaseOverhead + float64(seqs)*c.SchedPerSeqOverhead
}

// kvCapacity computes usable KV tokens for the deployment.
func kvCapacity(cfg Config) (int, error) {
	if cfg.Method.IsTP() {
		sh, err := model.TensorParallel(cfg.Spec, cfg.World)
		if err != nil {
			return 0, err
		}
		avail := cfg.Node.GPU.MemBytes()*cfg.MemUtilization - cfg.ReserveGB*1e9 - sh.RankWeightBytes()
		if avail <= 0 {
			return 0, fmt.Errorf("baselines: OOM: TP rank weights %.1f GB exceed usable memory", sh.RankWeightBytes()/1e9)
		}
		capTok := int(avail / sh.RankKVBytesPerToken())
		if capTok < cfg.MaxPrefillTokens {
			return 0, fmt.Errorf("baselines: OOM: capacity %d tokens below one batch", capTok)
		}
		return capTok, nil
	}
	plan, err := model.Partition(cfg.Spec, cfg.World)
	if err != nil {
		return 0, err
	}
	capTok := -1
	for st := range plan.Stages {
		avail := cfg.Node.GPU.MemBytes()*cfg.MemUtilization - cfg.ReserveGB*1e9 - plan.StageWeightBytes(st)
		if avail <= 0 {
			return 0, fmt.Errorf("baselines: OOM: stage %d weights exceed usable memory", st)
		}
		t := int(avail / plan.StageKVBytesPerToken(st))
		if capTok < 0 || t < capTok {
			capTok = t
		}
	}
	if capTok < cfg.MaxPrefillTokens {
		return 0, fmt.Errorf("baselines: OOM: capacity %d tokens below one batch", capTok)
	}
	return capTok, nil
}

// reqState mirrors core's request tracking.
type reqState struct {
	req        workload.Request
	ctx        int // cached tokens
	prefilled  int // prompt tokens already prefilled (chunked prefill)
	generated  int
	prefillLen int
	done       bool
	evicted    bool
	// arrival gates admission: the scheduler never sees the request
	// before this virtual time.
	arrival sim.Time
	// firstTokenAt is when the first output token was produced.
	firstTokenAt sim.Time
	finishedAt   sim.Time
}

// Result is the outcome of a baseline run.
type Result struct {
	Report metrics.Report
	Rec    *metrics.Recorder
	// Records holds per-request lifecycle timestamps by request ID;
	// Report.Latency digests them.
	Records []metrics.RequestRecord
}

// Run executes the trace under the configured baseline and returns its
// report.
func Run(cfg Config, reqs []workload.Request) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	capTok, err := kvCapacity(cfg)
	if err != nil {
		return nil, err
	}
	// Floor-align the byte-derived capacity to keep the historical
	// block count (NewManager now rounds up instead of truncating).
	kv, err := kvcache.NewManager(kvcache.AlignTokens(capTok, cfg.BlockSize), cfg.BlockSize)
	if err != nil {
		return nil, err
	}
	states := make([]*reqState, len(reqs))
	for i, r := range reqs {
		if r.ID != i {
			return nil, fmt.Errorf("baselines: request IDs must be dense 0..n-1")
		}
		states[i] = &reqState{req: r, prefillLen: r.InputLen, arrival: sim.Time(r.ArrivalTime)}
	}
	var runner interface {
		run() (sim.Time, error)
		recorder() *metrics.Recorder
		recomputes() int
	}
	base := &common{cfg: cfg, kv: kv, states: states}
	// Requests due at t=0 form the initial waiting queue (the whole
	// trace in the offline regime); the rest are admitted only once
	// virtual time reaches their arrival.
	for i, st := range states {
		if st.arrival <= 0 {
			base.waiting.PushBack(i)
		} else {
			base.pending = append(base.pending, i)
		}
	}
	sort.SliceStable(base.pending, func(a, b int) bool {
		return states[base.pending[a]].arrival < states[base.pending[b]].arrival
	})
	if cfg.Method.IsTP() {
		runner = newTPRunner(base)
	} else {
		r, err := newPPRunner(base)
		if err != nil {
			return nil, err
		}
		runner = r
	}
	end, err := runner.run()
	if err != nil {
		return nil, err
	}
	rep := metrics.Report{
		Scheduler: cfg.Method.String(),
		Node:      cfg.Node.Name,
		Model:     cfg.Spec.Name,
		GPUs:      cfg.World,
		Requests:  len(reqs),
		Elapsed:   float64(end),
	}
	records := make([]metrics.RequestRecord, len(states))
	for i, st := range states {
		rep.InputTokens += st.req.InputLen
		rep.OutputTokens += st.generated
		records[i] = metrics.RequestRecord{
			ID:           i,
			Arrival:      float64(st.arrival),
			FirstToken:   float64(st.firstTokenAt),
			Finish:       float64(st.finishedAt),
			OutputTokens: st.generated,
		}
	}
	rec := runner.recorder()
	rep.MeanUtilization = rec.MeanUtilization(0, float64(end))
	rep.BubbleRatio = 1 - rep.MeanUtilization
	rep.Recomputes = runner.recomputes()
	rep.KVPeakUsage = float64(kv.PeakBlocks()) / float64(kv.CapacityBlocks())
	rep.Latency = metrics.Digest(records, cfg.SLO)
	return &Result{Report: rep, Rec: rec, Records: records}, nil
}

// common holds scheduler-independent state.
type common struct {
	cfg    Config
	kv     *kvcache.Manager
	states []*reqState
	// waiting holds admitted (arrived) requests awaiting prefill: a
	// ring-buffer deque so eviction-recompute front-insertions are O(1).
	waiting deque.Int
	// pending holds not-yet-arrived requests in arrival order.
	pending    []int
	finished   int
	nRecompute int
}

// admitDue moves pending requests whose arrival is at or before t into
// the waiting queue.
func (c *common) admitDue(t sim.Time) {
	for len(c.pending) > 0 && c.states[c.pending[0]].arrival <= t {
		c.waiting.PushBack(c.pending[0])
		c.pending = c.pending[1:]
	}
}

// admitPrefill packs the next separate-batching prefill batch from the
// waiting queue, allocating KV. Returns nil if nothing fits.
func (c *common) admitPrefill() (ids []int, lens []int) {
	tokens := 0
	for c.waiting.Len() > 0 && tokens < c.cfg.MaxPrefillTokens && len(ids) < c.cfg.MaxBatch {
		id := c.waiting.Front()
		st := c.states[id]
		if !c.kv.CanAllocate(st.prefillLen) {
			break
		}
		if err := c.kv.Allocate(id, st.prefillLen); err != nil {
			break
		}
		c.waiting.PopFront()
		st.evicted = false
		ids = append(ids, id)
		lens = append(lens, st.prefillLen)
		tokens += st.prefillLen
	}
	return ids, lens
}

// completePrefill marks a separate-batching prefill batch done at t.
// It returns the ids that continue into decode.
func (c *common) completePrefill(ids []int, t sim.Time) []int {
	var live []int
	for _, id := range ids {
		st := c.states[id]
		if st.evicted {
			continue
		}
		st.ctx = st.prefillLen
		st.prefilled = st.prefillLen
		if st.generated == 0 {
			st.firstTokenAt = t
		}
		st.generated++
		if st.generated >= st.req.OutputLen {
			c.finishReq(id, t)
		} else {
			live = append(live, id)
		}
	}
	return live
}

// decodeAppend advances one decode token for id, evicting most-recent
// requests on OOM (the recompute strategy). keep lists ids that must
// not be evicted. It reports whether the request finished.
func (c *common) decodeAppend(id int, t sim.Time, keep map[int]bool) (finished bool) {
	st := c.states[id]
	st.generated++
	st.ctx++
	if st.generated >= st.req.OutputLen {
		// The final token needs no KV slot; the request is done.
		c.finishReq(id, t)
		return true
	}
	if err := c.kv.Append(id, 1); err != nil {
		victims := c.kv.EvictMostRecent(c.kv.BlocksFor(1), keep)
		for _, v := range victims {
			c.evict(v)
		}
		if err := c.kv.Append(id, 1); err != nil {
			c.kv.Free(id)
			c.evict(id)
		}
	}
	return false
}

func (c *common) evict(id int) {
	st := c.states[id]
	st.evicted = true
	st.prefillLen = st.req.InputLen + st.generated
	st.ctx = 0
	st.prefilled = 0
	c.nRecompute++
	c.waiting.PushFront(id)
}

func (c *common) finishReq(id int, t sim.Time) {
	st := c.states[id]
	st.done = true
	st.finishedAt = t
	c.kv.Free(id)
	c.finished++
}

// live filters ids down to non-evicted, non-done entries.
func (c *common) live(ids []int) []int {
	out := ids[:0]
	for _, id := range ids {
		st := c.states[id]
		if !st.evicted && !st.done {
			out = append(out, id)
		}
	}
	return out
}

// kvTokens sums cached tokens of ids.
func (c *common) kvTokens(ids []int) int {
	n := 0
	for _, id := range ids {
		n += c.states[id].ctx
	}
	return n
}
