package baselines

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/workload"
)

func fastCfg(world int, m Method) Config {
	cfg := DefaultConfig(hw.L20, model.Tiny, world, m)
	cfg.ReserveGB = 0
	cfg.MaxPrefillTokens = 512
	cfg.ChunkTokens = 256
	return cfg
}

func smallTrace(n int, seed int64) []workload.Request {
	cfg := workload.DefaultConfig(n, seed)
	cfg.MaxInputLen = 255
	cfg.MaxOutputLen = 128
	cfg.InputLogMean = 4.0
	return workload.MustGenerate(cfg)
}

func TestMethodStringsAndKinds(t *testing.T) {
	if TPSB.String() != "TP+SB" || TPHB.String() != "TP+HB" || PPSB.String() != "PP+SB" || PPHB.String() != "PP+HB" {
		t.Error("method names wrong")
	}
	if Method(99).String() != "unknown" {
		t.Error("unknown method name wrong")
	}
	if !TPSB.IsTP() || !TPHB.IsTP() || PPSB.IsTP() || PPHB.IsTP() {
		t.Error("IsTP classification wrong")
	}
	if len(Methods()) != 4 {
		t.Error("Methods() incomplete")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := fastCfg(0, TPSB)
	if _, err := Run(bad, smallTrace(5, 1)); err == nil {
		t.Error("world=0 accepted")
	}
	bad = fastCfg(2, TPSB)
	bad.MemUtilization = 0
	if _, err := Run(bad, smallTrace(5, 1)); err == nil {
		t.Error("MemUtilization=0 accepted")
	}
	bad = fastCfg(2, PPHB)
	bad.ChunkTokens = 0
	if _, err := Run(bad, smallTrace(5, 1)); err == nil {
		t.Error("ChunkTokens=0 accepted")
	}
}

func TestAllMethodsCompleteAllRequests(t *testing.T) {
	reqs := smallTrace(80, 7)
	wantOut := 0
	for _, r := range reqs {
		wantOut += r.OutputLen
	}
	for _, m := range Methods() {
		res, err := Run(fastCfg(4, m), reqs)
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		if res.Report.OutputTokens != wantOut {
			t.Errorf("%v: output = %d, want %d", m, res.Report.OutputTokens, wantOut)
		}
		if res.Report.Elapsed <= 0 {
			t.Errorf("%v: elapsed = %v", m, res.Report.Elapsed)
		}
		if u := res.Report.MeanUtilization; u <= 0 || u > 1 {
			t.Errorf("%v: utilization = %v", m, u)
		}
	}
}

func TestAllMethodsDeterministic(t *testing.T) {
	reqs := smallTrace(50, 11)
	for _, m := range Methods() {
		a, err := Run(fastCfg(4, m), reqs)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		b, err := Run(fastCfg(4, m), reqs)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if a.Report.Elapsed != b.Report.Elapsed {
			t.Errorf("%v not deterministic: %v vs %v", m, a.Report.Elapsed, b.Report.Elapsed)
		}
	}
}

func TestSingleGPUAllMethods(t *testing.T) {
	reqs := smallTrace(30, 13)
	for _, m := range Methods() {
		if _, err := Run(fastCfg(1, m), reqs); err != nil {
			t.Errorf("%v on 1 GPU: %v", m, err)
		}
	}
}

func TestOOMReported(t *testing.T) {
	for _, m := range Methods() {
		cfg := DefaultConfig(hw.L20, model.Llama2_70B, 1, m)
		if _, err := Run(cfg, smallTrace(5, 1)); err == nil {
			t.Errorf("%v: 70B on one L20 did not OOM", m)
		}
	}
	// Paper Fig. 11: 70B needs all 4 A100s; 2 is OOM.
	for _, m := range []Method{TPSB, PPSB} {
		cfg := DefaultConfig(hw.A100, model.Llama2_70B, 2, m)
		if _, err := Run(cfg, smallTrace(5, 1)); err == nil {
			t.Errorf("%v: 70B on 2x A100 did not OOM", m)
		}
	}
}

func TestRecomputeUnderMemoryPressure(t *testing.T) {
	reqs := smallTrace(150, 17)
	for _, m := range Methods() {
		cfg := fastCfg(4, m)
		cfg.MemUtilization = 0.0001
		res, err := Run(cfg, reqs)
		if err != nil {
			t.Errorf("%v under pressure: %v", m, err)
			continue
		}
		wantOut := 0
		for _, r := range reqs {
			wantOut += r.OutputLen
		}
		if res.Report.OutputTokens != wantOut {
			t.Errorf("%v: output = %d, want %d", m, res.Report.OutputTokens, wantOut)
		}
	}
}

func TestNonDenseIDsRejected(t *testing.T) {
	reqs := smallTrace(10, 1)
	reqs[4].ID = 77
	if _, err := Run(fastCfg(2, TPSB), reqs); err == nil {
		t.Error("non-dense IDs accepted")
	}
}

// PP methods must show visible pipeline bubbles on mixed workloads —
// that inefficiency is the paper's motivation.
func TestPPBaselinesHaveBubbles(t *testing.T) {
	reqs := smallTrace(120, 19)
	for _, m := range []Method{PPSB, PPHB} {
		cfg := fastCfg(4, m)
		cfg.MemUtilization = 0.0002
		res, err := Run(cfg, reqs)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Report.BubbleRatio < 0.02 {
			t.Errorf("%v: bubble ratio = %v, expected visible bubbles", m, res.Report.BubbleRatio)
		}
	}
}

func TestTPUtilizationReflectsCommStalls(t *testing.T) {
	// On multi-GPU TP, the all-reduce time must show up as idle time.
	reqs := smallTrace(60, 23)
	res, err := Run(fastCfg(4, TPSB), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.MeanUtilization > 0.98 {
		t.Errorf("TP utilization = %v, communication stalls missing", res.Report.MeanUtilization)
	}
}
