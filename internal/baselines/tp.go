package baselines

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// tpRunner executes the TP+SB and TP+HB baselines. Tensor parallelism
// runs every GPU in lockstep (SPMD), so no event queue is needed: time
// advances iteration by iteration. GPUs are busy during the compute
// part of an iteration and stall during all-reduces, which is how the
// paper's Fig.-6 breakdown attributes time.
type tpRunner struct {
	*common
	cm  *costmodel.Model
	rec *metrics.Recorder
	t   sim.Time

	running []int
	// partial tracks requests mid-chunked-prefill (TP+HB only).
	partial []int
}

func newTPRunner(c *common) *tpRunner {
	cm, err := costmodel.New(c.cfg.Node, c.cfg.Spec)
	if err != nil {
		panic(err) // Config.Validate already vetted node and spec
	}
	return &tpRunner{common: c, cm: cm, rec: metrics.NewRecorder(c.cfg.World)}
}

func (r *tpRunner) recorder() *metrics.Recorder { return r.rec }
func (r *tpRunner) recomputes() int             { return r.nRecompute }

// spend advances time by one iteration: the engine-loop scheduling gap
// first (all GPUs idle), then compute (busy on every GPU), then
// communication (idle).
func (r *tpRunner) spend(compute, comm float64, seqs int) {
	r.t += sim.Time(r.cfg.schedOverhead(seqs))
	for g := 0; g < r.cfg.World; g++ {
		r.rec.Add(g, float64(r.t), float64(r.t)+compute)
	}
	r.t += sim.Time(compute + comm)
}

func (r *tpRunner) run() (sim.Time, error) {
	maxIters := 64*len(r.states)*1024 + 1024
	for iter := 0; r.finished < len(r.states); iter++ {
		if iter > maxIters {
			return 0, fmt.Errorf("baselines: TP scheduler made no progress after %d iterations", iter)
		}
		r.admitDue(r.t)
		tBefore, finBefore, recBefore := r.t, r.finished, r.nRecompute
		if r.cfg.Method == TPSB {
			r.stepSB()
		} else {
			r.stepHB()
		}
		if r.t == tBefore && r.finished == finBefore && r.nRecompute == recBefore && len(r.pending) > 0 {
			// Nothing runnable yet the trace is not exhausted: the
			// engine is idle between arrivals. Fast-forward the clock
			// to the next arrival (GPUs stay idle over the gap).
			if next := r.states[r.pending[0]].arrival; next > r.t {
				r.t = next
			}
		}
	}
	return r.t, nil
}

// stepSB is one vLLM-default iteration: prefill-prioritized separate
// batching.
func (r *tpRunner) stepSB() {
	if r.waiting.Len() > 0 {
		ids, lens := r.admitPrefill()
		if len(ids) > 0 {
			comp, comm := r.cm.TPPrefill(r.cfg.World, costmodel.NewPrefillBatch(lens))
			r.spend(comp, comm, len(ids))
			r.running = append(r.running, r.completePrefill(ids, r.t)...)
			return
		}
	}
	r.decodeStep()
}

func (r *tpRunner) decodeStep() {
	r.running = r.live(r.running)
	if len(r.running) == 0 {
		return
	}
	batch := r.running
	if len(batch) > r.cfg.MaxBatch {
		batch = batch[:r.cfg.MaxBatch]
	}
	comp, comm := r.cm.TPDecode(r.cfg.World, len(batch), r.kvTokens(batch))
	r.spend(comp, comm, len(batch))
	keep := make(map[int]bool, len(batch))
	for _, id := range batch {
		keep[id] = true
	}
	for _, id := range batch {
		if r.states[id].evicted || r.states[id].done {
			continue
		}
		r.decodeAppend(id, r.t, keep)
	}
	r.running = r.live(r.running)
}

// stepHB is one chunked-prefill hybrid iteration: decodes first, then
// prefill chunks up to the token budget.
func (r *tpRunner) stepHB() {
	r.running = r.live(r.running)
	r.partial = r.live(r.partial)
	budget := r.cfg.ChunkTokens
	decodes := r.running
	if len(decodes) > budget {
		decodes = decodes[:budget]
	}
	budget -= len(decodes)

	chunkTokens, chunkCtx := r.admitChunks(&budget)

	if len(decodes) == 0 && chunkTokens == 0 {
		// Nothing runnable: memory is full of partially prefilled
		// requests with no decodes to free it. Evict the newest
		// partial to guarantee progress.
		if len(r.partial) > 0 {
			victim := r.partial[len(r.partial)-1]
			r.kv.Free(victim)
			r.evict(victim)
			r.partial = r.live(r.partial)
			return
		}
		return
	}

	comp, comm := r.cm.TPHybrid(r.cfg.World, len(decodes), r.kvTokens(decodes), chunkTokens, chunkCtx)
	r.spend(comp, comm, len(decodes)+len(r.partial))

	keep := make(map[int]bool, len(decodes)+len(r.partial))
	for _, id := range decodes {
		keep[id] = true
	}
	for _, id := range r.partial {
		keep[id] = true
	}
	for _, id := range decodes {
		if r.states[id].evicted || r.states[id].done {
			continue
		}
		r.decodeAppend(id, r.t, keep)
	}
	r.advanceChunks()
	r.running = r.live(r.running)
}

// admitChunks consumes the remaining budget with prefill chunks: first
// the oldest partially prefilled request, then fresh admissions. It
// returns total chunk tokens and the cached context those chunks re-read.
func (r *tpRunner) admitChunks(budget *int) (chunkTokens, chunkCtx int) {
	// Continue partial prefills first.
	for _, id := range r.partial {
		if *budget <= 0 {
			break
		}
		st := r.states[id]
		remain := st.prefillLen - st.prefilled
		take := remain
		if take > *budget {
			take = *budget
		}
		chunkTokens += take
		chunkCtx += st.prefilled
		st.prefilled += take // applied now; completion processed in advanceChunks
		*budget -= take
	}
	// Admit new requests while budget remains.
	for *budget > 0 && r.waiting.Len() > 0 {
		id := r.waiting.Front()
		st := r.states[id]
		if !r.kv.CanAllocate(st.prefillLen) {
			break
		}
		if err := r.kv.Allocate(id, st.prefillLen); err != nil {
			break
		}
		r.waiting.PopFront()
		st.evicted = false
		st.prefilled = 0
		take := st.prefillLen
		if take > *budget {
			take = *budget
		}
		chunkTokens += take
		st.prefilled = take
		*budget -= take
		r.partial = append(r.partial, id)
	}
	return chunkTokens, chunkCtx
}

// advanceChunks promotes fully prefilled requests into the running set.
func (r *tpRunner) advanceChunks() {
	var still []int
	for _, id := range r.partial {
		st := r.states[id]
		if st.evicted || st.done {
			continue
		}
		if st.prefilled >= st.prefillLen {
			st.ctx = st.prefillLen
			if st.generated == 0 {
				st.firstTokenAt = r.t
			}
			st.generated++
			if st.generated >= st.req.OutputLen {
				r.finishReq(id, r.t)
			} else {
				r.running = append(r.running, id)
			}
		} else {
			still = append(still, id)
		}
	}
	r.partial = still
}
