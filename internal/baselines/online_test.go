package baselines

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/workload"
)

func onlineConfig(m Method) Config {
	cfg := DefaultConfig(hw.L20, model.Tiny, 2, m)
	cfg.ReserveGB = 0
	cfg.MaxPrefillTokens = 512
	cfg.ChunkTokens = 256
	return cfg
}

func onlineTrace(n int, seed int64) []workload.Request {
	cfg := workload.DefaultConfig(n, seed)
	cfg.MaxInputLen = 255
	cfg.MaxOutputLen = 128
	cfg.InputLogMean = 4.0
	return workload.MustGenerate(cfg)
}

// Instant arrivals must reproduce the offline baseline run
// bit-identically for every method.
func TestBaselineInstantArrivalsReproduceOffline(t *testing.T) {
	reqs := onlineTrace(150, 3)
	for _, m := range Methods() {
		t.Run(m.String(), func(t *testing.T) {
			offline, err := Run(onlineConfig(m), reqs)
			if err != nil {
				t.Fatal(err)
			}
			stamped := workload.StampArrivals(reqs, workload.Instant{}, 42)
			online, err := Run(onlineConfig(m), stamped)
			if err != nil {
				t.Fatal(err)
			}
			if offline.Report != online.Report {
				t.Errorf("reports differ:\noffline: %+v\ninstant: %+v", offline.Report, online.Report)
			}
			for i := range offline.Records {
				if offline.Records[i] != online.Records[i] {
					t.Fatalf("request %d records differ: %+v vs %+v",
						i, offline.Records[i], online.Records[i])
				}
			}
		})
	}
}

// Open-loop arrivals must complete every request on every method, with
// causally consistent records: no request is served before it arrives.
func TestBaselineOpenLoopAdmission(t *testing.T) {
	base := onlineTrace(120, 7)
	wantOut := 0
	for _, r := range base {
		wantOut += r.OutputLen
	}
	reqs := workload.StampArrivals(base, workload.Poisson{Rate: 20}, 5)
	for _, m := range Methods() {
		t.Run(m.String(), func(t *testing.T) {
			res, err := Run(onlineConfig(m), reqs)
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Requests != len(reqs) {
				t.Fatalf("completed %d of %d", res.Report.Requests, len(reqs))
			}
			if res.Report.OutputTokens != wantOut {
				t.Errorf("output tokens = %d, want %d", res.Report.OutputTokens, wantOut)
			}
			if res.Report.Latency.Requests != len(reqs) {
				t.Errorf("digest covers %d of %d", res.Report.Latency.Requests, len(reqs))
			}
			var lastArrival float64
			for i, rec := range res.Records {
				if rec.Arrival != reqs[i].ArrivalTime {
					t.Fatalf("request %d arrival %v, stamped %v", i, rec.Arrival, reqs[i].ArrivalTime)
				}
				if rec.FirstToken < rec.Arrival {
					t.Fatalf("request %d first token at %v before arrival %v",
						i, rec.FirstToken, rec.Arrival)
				}
				if rec.Finish < rec.FirstToken {
					t.Fatalf("request %d finish %v before first token %v",
						i, rec.Finish, rec.FirstToken)
				}
				if rec.Arrival > lastArrival {
					lastArrival = rec.Arrival
				}
			}
			if res.Report.Elapsed < lastArrival {
				t.Errorf("elapsed %v precedes last arrival %v", res.Report.Elapsed, lastArrival)
			}
		})
	}
}

// A long gap between two requests must park the scheduler and restart
// it on the late arrival, for both the iteration-clock (TP) and
// event-driven (PP) runners.
func TestBaselineIdleGap(t *testing.T) {
	reqs := onlineTrace(2, 9)
	reqs[1].ArrivalTime = 500
	for _, m := range Methods() {
		t.Run(m.String(), func(t *testing.T) {
			res, err := Run(onlineConfig(m), reqs)
			if err != nil {
				t.Fatal(err)
			}
			if res.Report.Elapsed < 500 {
				t.Fatalf("elapsed %v; late request ignored?", res.Report.Elapsed)
			}
			late := res.Records[1]
			if late.FirstToken < 500 {
				t.Errorf("late request first token at %v, before its arrival", late.FirstToken)
			}
			if ttft := late.TTFT(); ttft < 0 || ttft > 100 {
				t.Errorf("late request TTFT = %v; want small, measured from arrival", ttft)
			}
			if early := res.Records[0]; early.Finish >= 500 {
				t.Errorf("early request finished at %v; should complete during the gap", early.Finish)
			}
		})
	}
}
