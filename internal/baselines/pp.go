package baselines

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/metrics"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// ppRunner executes the PP+SB and PP+HB baselines on the same worker
// cluster TD-Pipe uses, but with the stock-vLLM behaviours the paper
// identifies as bubble sources (§2.3, Fig. 1):
//
//   - blocking device-to-device transfers (§3.2);
//   - a synchronous engine loop: microbatches are scheduled in
//     lockstep rounds — exactly the row-by-row schedule Figure 1
//     draws — so one long pass (e.g. a prefill among decode steps
//     under separate batching) stalls every other microbatch;
//   - per-iteration scheduling overhead serialized through the single
//     engine thread.
type ppRunner struct {
	*common
	eng     *sim.Engine
	cluster *runtime.Cluster

	// batch[slot] holds the slot's decode requests.
	batch [][]int
	// partial[slot] holds the slot's mid-chunked-prefill requests
	// (PP+HB only).
	partial [][]int
	// engineFree is when the single-threaded engine loop next becomes
	// available; iteration scheduling serializes through it.
	engineFree sim.Time
	end        sim.Time

	outstanding int
	roundEnd    sim.Time
	rounds      int

	// pendingArrivals counts scheduled arrival events that have not
	// fired; while positive, an empty round parks the runner instead
	// of declaring a stall.
	pendingArrivals int
	// idle is true when the runner is parked between arrivals; the
	// next arrival event restarts the round loop.
	idle bool
}

func newPPRunner(c *common) (*ppRunner, error) {
	eng := sim.NewEngine()
	cluster, err := runtime.NewCluster(eng, c.cfg.Node, c.cfg.Spec, c.cfg.World)
	if err != nil {
		return nil, err
	}
	// Stock vLLM pipeline parallelism sends activations in a blocking
	// style (§3.2) — the bubble amplifier TD-Pipe's asynchronous
	// runtime removes.
	cluster.BlockingP2P = true
	return &ppRunner{
		common:  c,
		eng:     eng,
		cluster: cluster,
		batch:   make([][]int, c.cfg.World),
		partial: make([][]int, c.cfg.World),
	}, nil
}

func (r *ppRunner) recorder() *metrics.Recorder { return r.cluster.Rec }
func (r *ppRunner) recomputes() int             { return r.nRecompute }

func (r *ppRunner) run() (sim.Time, error) {
	defer r.cluster.Shutdown()
	// Future arrivals become simulation events: each admits its request
	// at its arrival instant and, if the pipeline drained to idle in
	// the meantime, restarts the round loop.
	for _, id := range r.pending {
		id := id
		r.pendingArrivals++
		r.eng.At(r.states[id].arrival, func() {
			r.pendingArrivals--
			r.waiting.PushBack(id)
			if r.idle {
				r.idle = false
				r.startRound(r.eng.Now())
			}
		})
	}
	r.pending = nil
	r.startRound(0)
	r.eng.Run()
	if r.finished != len(r.states) {
		return 0, fmt.Errorf("baselines: %s stalled with %d/%d finished (waiting=%d)",
			r.cfg.Method, r.finished, len(r.states), r.waiting.Len())
	}
	return r.end, nil
}

// gate serializes an iteration's scheduling through the engine loop and
// returns when the iteration may start on the pipeline.
func (r *ppRunner) gate(ready sim.Time, seqs int) sim.Time {
	start := ready
	if r.engineFree > start {
		start = r.engineFree
	}
	end := start + sim.Time(r.cfg.schedOverhead(seqs))
	r.engineFree = end
	return end
}

func (r *ppRunner) noteEnd(t sim.Time) {
	if t > r.end {
		r.end = t
	}
	if t > r.roundEnd {
		r.roundEnd = t
	}
}

// startRound schedules one lockstep round: every slot gets at most one
// pass; the next round begins only after all of them complete.
func (r *ppRunner) startRound(now sim.Time) {
	r.rounds++
	if r.rounds > 64*len(r.states)*1024+1024 {
		panic(fmt.Sprintf("baselines: %s runaway after %d rounds", r.cfg.Method, r.rounds))
	}
	r.outstanding = 0
	r.roundEnd = now
	for slot := 0; slot < r.cfg.World; slot++ {
		if r.cfg.Method == PPSB {
			r.submitSB(slot, now)
		} else {
			r.submitHB(slot, now)
		}
	}
	if r.outstanding == 0 {
		// Nothing runnable anywhere. Either we are done, the pipeline
		// is idle between arrivals, or (PP+HB) memory is wedged by
		// partial prefills with no decodes.
		if r.finished == len(r.states) {
			return
		}
		wedged := false
		for slot := 0; slot < r.cfg.World; slot++ {
			if n := len(r.partial[slot]); n > 0 {
				victim := r.partial[slot][n-1]
				r.kv.Free(victim)
				r.evict(victim)
				r.partial[slot] = r.live(r.partial[slot])
				wedged = true
			}
		}
		if !wedged && r.waiting.Len() == 0 && r.pendingArrivals > 0 {
			// Drained with more traffic to come: park until the next
			// arrival event restarts the loop.
			r.idle = true
			return
		}
		r.eng.Immediately(func() { r.startRound(r.eng.Now()) })
	}
}

// passDone accounts one pass completion and opens the next round at the
// barrier.
func (r *ppRunner) passDone() {
	r.outstanding--
	if r.outstanding == 0 {
		end := r.roundEnd
		r.eng.At(end, func() { r.startRound(end) })
	}
}

// --- PP + separate batching -------------------------------------------

func (r *ppRunner) submitSB(slot int, now sim.Time) {
	// Prefill priority, as in vLLM's default scheduler.
	if r.waiting.Len() > 0 {
		ids, lens := r.admitPrefill()
		if len(ids) > 0 {
			r.outstanding++
			r.cluster.SubmitPass(runtime.PrefillTask(costmodel.NewPrefillBatch(lens)), r.gate(now, len(ids)), func(res runtime.PassResult) {
				r.noteEnd(res.End)
				r.batch[slot] = append(r.batch[slot], r.completePrefill(ids, res.End)...)
				r.passDone()
			})
			return
		}
	}
	r.batch[slot] = r.live(r.batch[slot])
	if len(r.batch[slot]) > 0 {
		ids := r.batch[slot]
		r.outstanding++
		r.cluster.SubmitPass(runtime.DecodeTask(len(ids), r.kvTokens(ids)), r.gate(now, len(ids)), func(res runtime.PassResult) {
			r.noteEnd(res.End)
			r.completeDecode(slot, res.End)
			r.passDone()
		})
	}
}

func (r *ppRunner) completeDecode(slot int, t sim.Time) {
	ids := r.batch[slot]
	keep := make(map[int]bool, len(ids))
	for _, id := range ids {
		keep[id] = true
	}
	for _, id := range ids {
		st := r.states[id]
		if st.evicted || st.done {
			continue
		}
		r.decodeAppend(id, t, keep)
	}
	r.batch[slot] = r.live(r.batch[slot])
}

// --- PP + hybrid batching (chunked prefill) ----------------------------

func (r *ppRunner) submitHB(slot int, now sim.Time) {
	r.batch[slot] = r.live(r.batch[slot])
	r.partial[slot] = r.live(r.partial[slot])

	budget := r.cfg.ChunkTokens
	decodes := len(r.batch[slot])
	if decodes > budget {
		decodes = budget
	}
	budget -= decodes
	chunkTokens, chunkCtx := r.admitChunksSlot(slot, &budget)

	if decodes == 0 && chunkTokens == 0 {
		return
	}

	dec := r.batch[slot][:decodes]
	r.outstanding++
	r.cluster.SubmitPass(runtime.HybridTask(decodes, r.kvTokens(dec), chunkTokens, chunkCtx), r.gate(now, decodes+len(r.partial[slot])), func(res runtime.PassResult) {
		r.noteEnd(res.End)
		r.completeHybrid(slot, decodes, res.End)
		r.passDone()
	})
}

// admitChunksSlot fills the slot's budget with prefill chunks.
func (r *ppRunner) admitChunksSlot(slot int, budget *int) (chunkTokens, chunkCtx int) {
	for _, id := range r.partial[slot] {
		if *budget <= 0 {
			break
		}
		st := r.states[id]
		remain := st.prefillLen - st.prefilled
		take := remain
		if take > *budget {
			take = *budget
		}
		chunkTokens += take
		chunkCtx += st.prefilled
		st.prefilled += take
		*budget -= take
	}
	for *budget > 0 && r.waiting.Len() > 0 {
		id := r.waiting.Front()
		st := r.states[id]
		if !r.kv.CanAllocate(st.prefillLen) {
			break
		}
		if err := r.kv.Allocate(id, st.prefillLen); err != nil {
			break
		}
		r.waiting.PopFront()
		st.evicted = false
		take := st.prefillLen
		if take > *budget {
			take = *budget
		}
		st.prefilled = take
		*budget -= take
		chunkTokens += take
		r.partial[slot] = append(r.partial[slot], id)
	}
	return chunkTokens, chunkCtx
}

// completeHybrid applies one hybrid iteration's effects.
func (r *ppRunner) completeHybrid(slot, decodes int, t sim.Time) {
	ids := r.batch[slot]
	if decodes > len(ids) {
		decodes = len(ids)
	}
	keep := make(map[int]bool)
	for _, id := range ids {
		keep[id] = true
	}
	for _, id := range r.partial[slot] {
		keep[id] = true
	}
	for _, id := range ids[:decodes] {
		st := r.states[id]
		if st.evicted || st.done {
			continue
		}
		r.decodeAppend(id, t, keep)
	}
	r.batch[slot] = r.live(r.batch[slot])

	var still []int
	for _, id := range r.partial[slot] {
		st := r.states[id]
		if st.evicted || st.done {
			continue
		}
		if st.prefilled >= st.prefillLen {
			st.ctx = st.prefillLen
			if st.generated == 0 {
				st.firstTokenAt = t
			}
			st.generated++
			if st.generated >= st.req.OutputLen {
				r.finishReq(id, t)
			} else {
				r.batch[slot] = append(r.batch[slot], id)
			}
		} else {
			still = append(still, id)
		}
	}
	r.partial[slot] = still
}
