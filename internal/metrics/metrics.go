// Package metrics collects simulation observables: per-GPU busy
// intervals (for the Fig.-2 utilization timelines and bubble
// accounting), KV-cache usage timelines (Fig. 12), and the run report
// all schedulers return.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Interval is one busy span of a device.
type Interval struct {
	Start, End float64
}

// Recorder accumulates busy intervals for a fixed set of GPUs.
type Recorder struct {
	busy [][]Interval
}

// NewRecorder tracks gpus devices.
func NewRecorder(gpus int) *Recorder {
	return &Recorder{busy: make([][]Interval, gpus)}
}

// GPUs returns the tracked device count.
func (r *Recorder) GPUs() int { return len(r.busy) }

// Add records a busy interval for gpu.
func (r *Recorder) Add(gpu int, start, end float64) {
	if end <= start {
		return
	}
	r.busy[gpu] = append(r.busy[gpu], Interval{start, end})
}

// ObserverFor adapts Add to the sim.Resource observer signature.
func (r *Recorder) ObserverFor(gpu int) func(start, end sim.Time) {
	return func(s, e sim.Time) { r.Add(gpu, float64(s), float64(e)) }
}

// BusyTime returns total busy seconds of gpu within [from, to].
func (r *Recorder) BusyTime(gpu int, from, to float64) float64 {
	var t float64
	for _, iv := range r.busy[gpu] {
		s, e := iv.Start, iv.End
		if s < from {
			s = from
		}
		if e > to {
			e = to
		}
		if e > s {
			t += e - s
		}
	}
	return t
}

// MeanUtilization returns the average busy fraction over all GPUs in
// [from, to].
func (r *Recorder) MeanUtilization(from, to float64) float64 {
	if to <= from || len(r.busy) == 0 {
		return 0
	}
	var sum float64
	for g := range r.busy {
		sum += r.BusyTime(g, from, to) / (to - from)
	}
	return sum / float64(len(r.busy))
}

// UtilPoint is one sample of a utilization timeline.
type UtilPoint struct {
	// Time is the window end in seconds.
	Time float64
	// Utilization is the mean busy fraction across GPUs in the window.
	Utilization float64
}

// Timeline samples mean utilization in consecutive windows of width
// window seconds from 0 to until.
func (r *Recorder) Timeline(window, until float64) []UtilPoint {
	if window <= 0 || until <= 0 {
		return nil
	}
	var out []UtilPoint
	for t := window; t < until+window; t += window {
		lo, hi := t-window, t
		if hi > until {
			hi = until
		}
		if hi <= lo {
			break
		}
		out = append(out, UtilPoint{Time: hi, Utilization: r.MeanUtilization(lo, hi)})
	}
	return out
}

// BubbleRatio returns 1 - mean utilization over [0, until]: the
// fraction of GPU-time lost to pipeline bubbles.
func (r *Recorder) BubbleRatio(until float64) float64 {
	if until <= 0 {
		return 0
	}
	return 1 - r.MeanUtilization(0, until)
}

// Phase labels a scheduler phase for KV timelines.
type Phase int

// Phases of the temporally-disaggregated schedule.
const (
	PhasePrefill Phase = iota
	PhaseDecode
)

// String names the execution phase.
func (p Phase) String() string {
	if p == PhasePrefill {
		return "prefill"
	}
	return "decode"
}

// KVPoint is one sample of KV-cache occupancy.
type KVPoint struct {
	// Step is the engine iteration number.
	Step int
	// Time is the virtual time of the sample.
	Time float64
	// Usage is used/capacity in [0,1].
	Usage float64
	// Phase is the phase active when sampled.
	Phase Phase
}

// KVTimeline accumulates KV usage samples (paper Fig. 12).
type KVTimeline struct {
	Points []KVPoint
}

// Add appends a sample.
func (k *KVTimeline) Add(step int, t, usage float64, ph Phase) {
	k.Points = append(k.Points, KVPoint{Step: step, Time: t, Usage: usage, Phase: ph})
}

// Peak returns the maximum recorded usage.
func (k *KVTimeline) Peak() float64 {
	var m float64
	for _, p := range k.Points {
		if p.Usage > m {
			m = p.Usage
		}
	}
	return m
}

// PhaseSwitches counts prefill<->decode transitions.
func (k *KVTimeline) PhaseSwitches() int {
	n := 0
	for i := 1; i < len(k.Points); i++ {
		if k.Points[i].Phase != k.Points[i-1].Phase {
			n++
		}
	}
	return n
}

// Report is the outcome of one simulated run.
type Report struct {
	Scheduler string
	Node      string
	Model     string
	GPUs      int

	Requests     int
	InputTokens  int
	OutputTokens int
	// Elapsed is virtual seconds from first prefill to last completion.
	Elapsed float64

	// MeanUtilization is the average GPU busy fraction.
	MeanUtilization float64
	// BubbleRatio is 1 - MeanUtilization.
	BubbleRatio float64
	// PhaseSwitches counts prefill<->decode transitions (TD-Pipe and
	// PP+SB; 0 where not meaningful).
	PhaseSwitches int
	// Recomputes counts requests evicted and re-prefilled after OOM.
	Recomputes int
	// KVPeakUsage is the high-water KV occupancy ratio.
	KVPeakUsage float64
	// PrefixCachedTokens counts prompt tokens whose prefill was
	// skipped because their KV was already resident in shared prefix
	// blocks (0 unless the trace carries prefix structure and the
	// engine has sharing enabled).
	PrefixCachedTokens int

	// Latency digests per-request records: TTFT/TPOT/E2E percentiles
	// and goodput under the run's SLO. Under instantaneous arrivals
	// (the offline regime) TTFT and E2E include the whole-batch
	// queueing delay from t=0.
	Latency LatencyDigest

	// Faults accounts injected failures and the recovery work they
	// forced. All-zero (the default) for fault-free runs.
	Faults FaultStats

	// Autoscale accounts elastic fleet-size changes and the GPU time
	// they saved or spent. All-zero (the default) for static fleets.
	Autoscale AutoscaleStats

	// Admission accounts front-door policy decisions (shedding,
	// retries, breaker activity, preemption). All-zero (the default)
	// when no policy stack is attached.
	Admission AdmissionStats
}

// FaultStats accounts fault injection and recovery in one run. The
// fields are plain scalars so reports stay comparable (and JSON
// round-trips byte-identically in the determinism suite).
type FaultStats struct {
	// Crashes counts replica crash events executed.
	Crashes int
	// AbortedRequests counts in-flight requests lost to crashes
	// (each re-dispatch that later crashes again counts once more).
	AbortedRequests int
	// Checkpoints counts periodic KV checkpoint rounds taken;
	// CheckpointBytes is the KV volume they serialized.
	Checkpoints     int
	CheckpointBytes float64
	// RecoveredRecompute counts crash-lost requests resumed by
	// re-prefilling input+generated tokens from scratch;
	// RecoveredCheckpoint counts those resumed from a periodic KV
	// checkpoint instead.
	RecoveredRecompute  int
	RecoveredCheckpoint int
	// Dropped counts requests abandoned with a reason (retry budget
	// exhausted, or unplaceable when the run drained).
	Dropped int
	// LostOutputTokens sums output tokens that were resident on a
	// replica when it crashed — generation work recovery must redo
	// (checkpoint resumes redo only the post-checkpoint suffix).
	LostOutputTokens int
	// DomainOutages counts correlated failure-domain events (rack or
	// zone power / network outages) the plan materialized, as opposed
	// to the independent per-replica draws counted by Crashes.
	DomainOutages int
}

// Any reports whether any fault activity was recorded.
func (f FaultStats) Any() bool { return f != FaultStats{} }

// Add accumulates o into f (fleet-level merges).
func (f *FaultStats) Add(o FaultStats) {
	f.Crashes += o.Crashes
	f.AbortedRequests += o.AbortedRequests
	f.Checkpoints += o.Checkpoints
	f.CheckpointBytes += o.CheckpointBytes
	f.RecoveredRecompute += o.RecoveredRecompute
	f.RecoveredCheckpoint += o.RecoveredCheckpoint
	f.Dropped += o.Dropped
	f.LostOutputTokens += o.LostOutputTokens
	f.DomainOutages += o.DomainOutages
}

// AutoscaleStats accounts one run's elastic replica-count activity.
// The fields are plain scalars so reports stay comparable (and JSON
// round-trips byte-identically in the determinism suite).
type AutoscaleStats struct {
	// Ticks counts autoscaler evaluations executed.
	Ticks int
	// ScaleUps and ScaleDowns count replicas added / drained (a Step=2
	// action counts 2).
	ScaleUps   int
	ScaleDowns int
	// PeakReplicas is the largest provisioned (active+warming) count.
	PeakReplicas int
	// GPUSeconds sums, over replicas, GPUs x virtual seconds the
	// replica was provisioned (warming and draining included) — the
	// cost axis of the elastic-vs-static frontier.
	GPUSeconds float64
	// ColdStartSeconds sums the modeled weight-load delays scale-ups
	// paid before their replica became routable.
	ColdStartSeconds float64
}

// Any reports whether any autoscale activity was recorded.
func (a AutoscaleStats) Any() bool { return a != AutoscaleStats{} }

// Add accumulates o into a (fleet-level merges). PeakReplicas takes
// the max; everything else sums.
func (a *AutoscaleStats) Add(o AutoscaleStats) {
	a.Ticks += o.Ticks
	a.ScaleUps += o.ScaleUps
	a.ScaleDowns += o.ScaleDowns
	if o.PeakReplicas > a.PeakReplicas {
		a.PeakReplicas = o.PeakReplicas
	}
	a.GPUSeconds += o.GPUSeconds
	a.ColdStartSeconds += o.ColdStartSeconds
}

// AdmissionStats accounts one run's front-door policy decisions.
type AdmissionStats struct {
	// Shed counts arrivals refused by the token bucket (each refusal
	// counts, so one request can shed several times while retrying).
	Shed int
	// Retries counts scheduled re-admission attempts.
	Retries int
	// Dropped counts requests abandoned after exhausting the retry
	// budget (or shed with no retry policy attached).
	Dropped int
	// BreakerTrips counts circuit breakers opening; BreakerSkips
	// counts routing decisions that had to exclude an open replica.
	BreakerTrips int
	BreakerSkips int
	// Preemptions counts low-priority requests evicted to recompute by
	// a high-priority arrival.
	Preemptions int
}

// Any reports whether any admission-policy activity was recorded.
func (a AdmissionStats) Any() bool { return a != AdmissionStats{} }

// Add accumulates o into a (fleet-level merges).
func (a *AdmissionStats) Add(o AdmissionStats) {
	a.Shed += o.Shed
	a.Retries += o.Retries
	a.Dropped += o.Dropped
	a.BreakerTrips += o.BreakerTrips
	a.BreakerSkips += o.BreakerSkips
	a.Preemptions += o.Preemptions
}

// OutputThroughput returns generated tokens per second, the paper's
// headline metric.
func (r Report) OutputThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.OutputTokens) / r.Elapsed
}

// PrefixHitRate returns the fraction of prompt tokens served from
// shared prefix KV instead of being prefilled (0 when no sharing
// happened or no input was processed).
func (r Report) PrefixHitRate() float64 {
	if r.InputTokens <= 0 {
		return 0
	}
	return float64(r.PrefixCachedTokens) / float64(r.InputTokens)
}

// TotalThroughput returns processed (input+output) tokens per second.
func (r Report) TotalThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.InputTokens+r.OutputTokens) / r.Elapsed
}

// String renders the report's headline numbers on one line.
func (r Report) String() string {
	return fmt.Sprintf("%s %s+%s x%d: %d reqs in %.1fs, %.0f tok/s out (%.0f total), util %.1f%%, %d switches",
		r.Scheduler, r.Node, r.Model, r.GPUs, r.Requests, r.Elapsed,
		r.OutputThroughput(), r.TotalThroughput(), 100*r.MeanUtilization, r.PhaseSwitches)
}

// SortIntervals orders a recorder's intervals; useful for tests that
// inspect them.
func (r *Recorder) SortIntervals() {
	for g := range r.busy {
		iv := r.busy[g]
		sort.Slice(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })
	}
}

// Intervals returns the recorded busy intervals of gpu.
func (r *Recorder) Intervals(gpu int) []Interval { return r.busy[gpu] }
