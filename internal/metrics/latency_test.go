package metrics

import (
	"math"
	"testing"
)

func TestRequestRecordMath(t *testing.T) {
	r := RequestRecord{Arrival: 10, FirstToken: 12, Finish: 22, OutputTokens: 11}
	if got := r.TTFT(); got != 2 {
		t.Errorf("TTFT = %v", got)
	}
	if got := r.TPOT(); got != 1 {
		t.Errorf("TPOT = %v", got)
	}
	if got := r.E2E(); got != 12 {
		t.Errorf("E2E = %v", got)
	}
	one := RequestRecord{Arrival: 0, FirstToken: 1, Finish: 1, OutputTokens: 1}
	if got := one.TPOT(); got != 0 {
		t.Errorf("single-token TPOT = %v", got)
	}
}

func TestSLO(t *testing.T) {
	var none SLO
	if none.Enabled() {
		t.Error("zero SLO enabled")
	}
	if !none.Met(RequestRecord{Arrival: 0, FirstToken: 1e6, Finish: 2e6, OutputTokens: 5}) {
		t.Error("disabled SLO rejected a record")
	}
	s := SLO{TTFT: 2, E2E: 20}
	ok := RequestRecord{Arrival: 0, FirstToken: 1, Finish: 15, OutputTokens: 10}
	slow := RequestRecord{Arrival: 0, FirstToken: 3, Finish: 15, OutputTokens: 10}
	long := RequestRecord{Arrival: 0, FirstToken: 1, Finish: 25, OutputTokens: 10}
	if !s.Met(ok) {
		t.Error("good record rejected")
	}
	if s.Met(slow) {
		t.Error("slow-TTFT record accepted")
	}
	if s.Met(long) {
		t.Error("slow-E2E record accepted")
	}
	tp := SLO{TPOT: 0.5}
	bad := RequestRecord{Arrival: 0, FirstToken: 0, Finish: 10, OutputTokens: 11}
	if tp.Met(bad) {
		t.Error("1 s/token accepted under 0.5 s/token SLO")
	}
}

func TestDigest(t *testing.T) {
	var records []RequestRecord
	for i := 0; i < 100; i++ {
		// TTFT = i/10 seconds, 10 tokens at 0.1 s/token.
		records = append(records, RequestRecord{
			ID:           i,
			Arrival:      float64(i),
			FirstToken:   float64(i) + float64(i)/10,
			Finish:       float64(i) + float64(i)/10 + 0.9,
			OutputTokens: 10,
		})
	}
	slo := SLO{TTFT: 5}
	d := Digest(records, slo)
	if d.Requests != 100 {
		t.Fatalf("requests = %d", d.Requests)
	}
	// Index-style percentiles: p50 -> idx 49, p99 -> idx 98.
	if math.Abs(d.TTFTP50-4.9) > 1e-6 || math.Abs(d.TTFTP99-9.8) > 1e-6 {
		t.Errorf("ttft p50/p99 = %v/%v", d.TTFTP50, d.TTFTP99)
	}
	if math.Abs(d.TPOTP50-0.1) > 1e-6 {
		t.Errorf("tpot p50 = %v", d.TPOTP50)
	}
	if math.Abs(d.E2EP99-10.7) > 1e-6 {
		t.Errorf("e2e p99 = %v", d.E2EP99)
	}
	// TTFT <= 5 for i <= 50: 51 good requests.
	if d.SLOMet != 51 {
		t.Errorf("SLOMet = %d, want 51", d.SLOMet)
	}
	if g := d.Goodput(); math.Abs(g-0.51) > 1e-9 {
		t.Errorf("goodput = %v", g)
	}
	// Digest must be order-independent.
	rev := make([]RequestRecord, len(records))
	for i, r := range records {
		rev[len(records)-1-i] = r
	}
	if Digest(rev, slo) != d {
		t.Error("digest depends on record order")
	}
}

func TestDigestEmpty(t *testing.T) {
	d := Digest(nil, DefaultSLO())
	if d.Requests != 0 || d.TTFTP99 != 0 {
		t.Errorf("empty digest = %+v", d)
	}
	if d.Goodput() != 1 {
		t.Errorf("empty goodput = %v", d.Goodput())
	}
}

// Digest edge cases: degenerate record sets must yield defined,
// finite digests — zeros, never NaN and never negative "latencies"
// computed from zero-valued timestamps of unfinished requests.
func TestDigestEdgeCases(t *testing.T) {
	finite := func(t *testing.T, d LatencyDigest) {
		t.Helper()
		for name, v := range map[string]float64{
			"ttft p50": d.TTFTP50, "ttft p95": d.TTFTP95, "ttft p99": d.TTFTP99,
			"tpot p50": d.TPOTP50, "tpot p95": d.TPOTP95, "tpot p99": d.TPOTP99,
			"e2e p50": d.E2EP50, "e2e p95": d.E2EP95, "e2e p99": d.E2EP99,
			"mean ttft": d.MeanTTFT, "mean e2e": d.MeanE2E, "goodput": d.Goodput(),
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("%s = %v", name, v)
			}
		}
	}
	cases := []struct {
		name        string
		records     []RequestRecord
		slo         SLO
		wantMet     int
		wantGoodput float64
		wantTTFTP99 float64
	}{
		{
			name:        "0 records",
			records:     nil,
			slo:         DefaultSLO(),
			wantMet:     0,
			wantGoodput: 1, // no traffic, nothing violated
		},
		{
			name:        "1 record",
			records:     []RequestRecord{{Arrival: 1, FirstToken: 3, Finish: 5, OutputTokens: 3}},
			slo:         DefaultSLO(),
			wantMet:     1,
			wantGoodput: 1,
			wantTTFTP99: 2,
		},
		{
			name: "all records miss the SLO",
			records: []RequestRecord{
				{Arrival: 0, FirstToken: 100, Finish: 200, OutputTokens: 5},
				{Arrival: 1, FirstToken: 150, Finish: 300, OutputTokens: 5},
			},
			slo:         SLO{TTFT: 1},
			wantMet:     0,
			wantGoodput: 0,
			wantTTFTP99: 100, // index-style percentile: idx int(.99*1) = 0
		},
		{
			name: "all records unfinished (zero-valued timestamps)",
			records: []RequestRecord{
				{Arrival: 10}, // admitted, no first token yet
				{Arrival: 20},
			},
			slo:         DefaultSLO(),
			wantMet:     0,
			wantGoodput: 0, // in-flight requests are not good requests
			wantTTFTP99: 0, // no finished sample: defined zero, not -10
		},
		{
			name: "unfinished records mixed with finished ones",
			records: []RequestRecord{
				{Arrival: 0, FirstToken: 2, Finish: 4, OutputTokens: 3},
				{Arrival: 50}, // still in flight
			},
			slo:         DefaultSLO(),
			wantMet:     1,
			wantGoodput: 0.5,
			wantTTFTP99: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := Digest(tc.records, tc.slo)
			finite(t, d)
			if d.Requests != len(tc.records) {
				t.Errorf("requests = %d, want %d", d.Requests, len(tc.records))
			}
			if d.SLOMet != tc.wantMet {
				t.Errorf("SLOMet = %d, want %d", d.SLOMet, tc.wantMet)
			}
			if g := d.Goodput(); math.Abs(g-tc.wantGoodput) > 1e-9 {
				t.Errorf("goodput = %v, want %v", g, tc.wantGoodput)
			}
			if math.Abs(d.TTFTP99-tc.wantTTFTP99) > 1e-9 {
				t.Errorf("ttft p99 = %v, want %v", d.TTFTP99, tc.wantTTFTP99)
			}
		})
	}
}

func TestRequestRecordFinished(t *testing.T) {
	cases := []struct {
		rec  RequestRecord
		want bool
	}{
		{RequestRecord{Arrival: 1, FirstToken: 2, Finish: 3, OutputTokens: 5}, true},
		{RequestRecord{Arrival: 0, FirstToken: 0, Finish: 0, OutputTokens: 1}, true}, // instant single token
		{RequestRecord{Arrival: 10}, false},                                          // zero-valued remainder
		{RequestRecord{Arrival: 1, FirstToken: 2, Finish: 3}, false},                 // no tokens
		{RequestRecord{Arrival: 5, FirstToken: 2, Finish: 8, OutputTokens: 2}, false},
		{RequestRecord{Arrival: 1, FirstToken: 4, Finish: 3, OutputTokens: 2}, false},
	}
	for i, tc := range cases {
		if got := tc.rec.Finished(); got != tc.want {
			t.Errorf("case %d: Finished(%+v) = %v, want %v", i, tc.rec, got, tc.want)
		}
	}
}

func TestPercentileFloat(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := Percentile([]float64{3}, 99); got != 3 {
		t.Errorf("single = %v", got)
	}
	unsorted := []float64{5, 1, 3, 2, 4}
	if got := Percentile(unsorted, 50); got != 3 {
		t.Errorf("unsorted p50 = %v", got)
	}
	if unsorted[0] != 5 {
		t.Errorf("input mutated: %v", unsorted)
	}
	if got := Percentile([]float64{1, 2}, 200); got != 2 {
		t.Errorf("clamped p200 = %v", got)
	}
}
