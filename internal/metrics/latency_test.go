package metrics

import (
	"math"
	"testing"
)

func TestRequestRecordMath(t *testing.T) {
	r := RequestRecord{Arrival: 10, FirstToken: 12, Finish: 22, OutputTokens: 11}
	if got := r.TTFT(); got != 2 {
		t.Errorf("TTFT = %v", got)
	}
	if got := r.TPOT(); got != 1 {
		t.Errorf("TPOT = %v", got)
	}
	if got := r.E2E(); got != 12 {
		t.Errorf("E2E = %v", got)
	}
	one := RequestRecord{Arrival: 0, FirstToken: 1, Finish: 1, OutputTokens: 1}
	if got := one.TPOT(); got != 0 {
		t.Errorf("single-token TPOT = %v", got)
	}
}

func TestSLO(t *testing.T) {
	var none SLO
	if none.Enabled() {
		t.Error("zero SLO enabled")
	}
	if !none.Met(RequestRecord{Arrival: 0, FirstToken: 1e6, Finish: 2e6, OutputTokens: 5}) {
		t.Error("disabled SLO rejected a record")
	}
	s := SLO{TTFT: 2, E2E: 20}
	ok := RequestRecord{Arrival: 0, FirstToken: 1, Finish: 15, OutputTokens: 10}
	slow := RequestRecord{Arrival: 0, FirstToken: 3, Finish: 15, OutputTokens: 10}
	long := RequestRecord{Arrival: 0, FirstToken: 1, Finish: 25, OutputTokens: 10}
	if !s.Met(ok) {
		t.Error("good record rejected")
	}
	if s.Met(slow) {
		t.Error("slow-TTFT record accepted")
	}
	if s.Met(long) {
		t.Error("slow-E2E record accepted")
	}
	tp := SLO{TPOT: 0.5}
	bad := RequestRecord{Arrival: 0, FirstToken: 0, Finish: 10, OutputTokens: 11}
	if tp.Met(bad) {
		t.Error("1 s/token accepted under 0.5 s/token SLO")
	}
}

func TestDigest(t *testing.T) {
	var records []RequestRecord
	for i := 0; i < 100; i++ {
		// TTFT = i/10 seconds, 10 tokens at 0.1 s/token.
		records = append(records, RequestRecord{
			ID:           i,
			Arrival:      float64(i),
			FirstToken:   float64(i) + float64(i)/10,
			Finish:       float64(i) + float64(i)/10 + 0.9,
			OutputTokens: 10,
		})
	}
	slo := SLO{TTFT: 5}
	d := Digest(records, slo)
	if d.Requests != 100 {
		t.Fatalf("requests = %d", d.Requests)
	}
	// Index-style percentiles: p50 -> idx 49, p99 -> idx 98.
	if math.Abs(d.TTFTP50-4.9) > 1e-6 || math.Abs(d.TTFTP99-9.8) > 1e-6 {
		t.Errorf("ttft p50/p99 = %v/%v", d.TTFTP50, d.TTFTP99)
	}
	if math.Abs(d.TPOTP50-0.1) > 1e-6 {
		t.Errorf("tpot p50 = %v", d.TPOTP50)
	}
	if math.Abs(d.E2EP99-10.7) > 1e-6 {
		t.Errorf("e2e p99 = %v", d.E2EP99)
	}
	// TTFT <= 5 for i <= 50: 51 good requests.
	if d.SLOMet != 51 {
		t.Errorf("SLOMet = %d, want 51", d.SLOMet)
	}
	if g := d.Goodput(); math.Abs(g-0.51) > 1e-9 {
		t.Errorf("goodput = %v", g)
	}
	// Digest must be order-independent.
	rev := make([]RequestRecord, len(records))
	for i, r := range records {
		rev[len(records)-1-i] = r
	}
	if Digest(rev, slo) != d {
		t.Error("digest depends on record order")
	}
}

func TestDigestEmpty(t *testing.T) {
	d := Digest(nil, DefaultSLO())
	if d.Requests != 0 || d.TTFTP99 != 0 {
		t.Errorf("empty digest = %+v", d)
	}
	if d.Goodput() != 1 {
		t.Errorf("empty goodput = %v", d.Goodput())
	}
}

func TestPercentileFloat(t *testing.T) {
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := Percentile([]float64{3}, 99); got != 3 {
		t.Errorf("single = %v", got)
	}
	unsorted := []float64{5, 1, 3, 2, 4}
	if got := Percentile(unsorted, 50); got != 3 {
		t.Errorf("unsorted p50 = %v", got)
	}
	if unsorted[0] != 5 {
		t.Errorf("input mutated: %v", unsorted)
	}
	if got := Percentile([]float64{1, 2}, 200); got != 2 {
		t.Errorf("clamped p200 = %v", got)
	}
}
