package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBusyTimeClipsToWindow(t *testing.T) {
	r := NewRecorder(1)
	r.Add(0, 1, 3)
	r.Add(0, 5, 9)
	if got := r.BusyTime(0, 0, 10); got != 6 {
		t.Errorf("busy = %v, want 6", got)
	}
	if got := r.BusyTime(0, 2, 6); got != 2 {
		t.Errorf("clipped busy = %v, want 2 (1 from each interval)", got)
	}
	if got := r.BusyTime(0, 3, 5); got != 0 {
		t.Errorf("gap busy = %v, want 0", got)
	}
}

func TestAddIgnoresEmptyIntervals(t *testing.T) {
	r := NewRecorder(1)
	r.Add(0, 5, 5)
	r.Add(0, 5, 4)
	if len(r.Intervals(0)) != 0 {
		t.Errorf("empty intervals recorded: %v", r.Intervals(0))
	}
}

func TestMeanUtilization(t *testing.T) {
	r := NewRecorder(2)
	r.Add(0, 0, 10) // GPU0 fully busy
	r.Add(1, 0, 5)  // GPU1 half busy
	if got := r.MeanUtilization(0, 10); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("mean util = %v, want 0.75", got)
	}
	if got := r.MeanUtilization(10, 10); got != 0 {
		t.Errorf("degenerate window util = %v", got)
	}
	if got := NewRecorder(0).MeanUtilization(0, 1); got != 0 {
		t.Errorf("no-gpu util = %v", got)
	}
}

func TestTimelineWindows(t *testing.T) {
	r := NewRecorder(1)
	r.Add(0, 0, 1) // busy during first second only
	pts := r.Timeline(1, 3)
	if len(pts) != 3 {
		t.Fatalf("timeline has %d points, want 3", len(pts))
	}
	if pts[0].Utilization != 1 || pts[1].Utilization != 0 || pts[2].Utilization != 0 {
		t.Errorf("timeline = %v", pts)
	}
	if r.Timeline(0, 3) != nil || r.Timeline(1, 0) != nil {
		t.Error("degenerate timeline not nil")
	}
	// Partial last window.
	pts = r.Timeline(2, 3)
	if len(pts) != 2 || pts[1].Time != 3 {
		t.Errorf("partial window timeline = %v", pts)
	}
}

func TestBubbleRatio(t *testing.T) {
	r := NewRecorder(2)
	r.Add(0, 0, 10)
	r.Add(1, 0, 10)
	if got := r.BubbleRatio(10); got != 0 {
		t.Errorf("full pipeline bubble = %v", got)
	}
	r2 := NewRecorder(1)
	r2.Add(0, 0, 2)
	if got := r2.BubbleRatio(10); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("bubble = %v, want 0.8", got)
	}
}

func TestKVTimeline(t *testing.T) {
	var k KVTimeline
	k.Add(0, 0, 0.3, PhasePrefill)
	k.Add(1, 1, 0.9, PhasePrefill)
	k.Add(2, 2, 0.95, PhaseDecode)
	k.Add(3, 3, 0.5, PhaseDecode)
	k.Add(4, 4, 0.7, PhasePrefill)
	if got := k.Peak(); got != 0.95 {
		t.Errorf("peak = %v", got)
	}
	if got := k.PhaseSwitches(); got != 2 {
		t.Errorf("switches = %d, want 2", got)
	}
}

func TestPhaseString(t *testing.T) {
	if PhasePrefill.String() != "prefill" || PhaseDecode.String() != "decode" {
		t.Error("phase strings wrong")
	}
}

func TestReportThroughputs(t *testing.T) {
	r := Report{InputTokens: 100, OutputTokens: 300, Elapsed: 10}
	if got := r.OutputThroughput(); got != 30 {
		t.Errorf("output throughput = %v", got)
	}
	if got := r.TotalThroughput(); got != 40 {
		t.Errorf("total throughput = %v", got)
	}
	zero := Report{}
	if zero.OutputThroughput() != 0 || zero.TotalThroughput() != 0 {
		t.Error("zero-elapsed throughput not 0")
	}
}

func TestReportString(t *testing.T) {
	r := Report{Scheduler: "TD-Pipe", Node: "A100", Model: "70B", GPUs: 4,
		Requests: 10, OutputTokens: 100, Elapsed: 2, MeanUtilization: 0.9}
	s := r.String()
	for _, want := range []string{"TD-Pipe", "A100", "70B", "x4"} {
		if !strings.Contains(s, want) {
			t.Errorf("report string %q missing %q", s, want)
		}
	}
}

// Property: BusyTime over any window is between 0 and the window width
// times interval count, and utilization is within [0, 1] when intervals
// don't overlap.
func TestBusyTimeBoundsProperty(t *testing.T) {
	prop := func(starts []float64) bool {
		r := NewRecorder(1)
		t0 := 0.0
		for _, d := range starts {
			d = math.Abs(d)
			if math.IsNaN(d) || math.IsInf(d, 0) || d > 1e6 {
				continue
			}
			r.Add(0, t0, t0+d)
			t0 += d + 1 // keep disjoint
		}
		u := r.MeanUtilization(0, t0+1)
		return u >= 0 && u <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
