package metrics

import (
	"fmt"
	"sort"
)

// RequestRecord captures one request's lifecycle in virtual time: when
// it arrived, when its first output token was produced, and when it
// finished. Records are the unit the fleet layer merges across
// replicas, so they carry the request's trace-level ID.
type RequestRecord struct {
	// ID is the request's index in the trace the record belongs to
	// (replica-local before a fleet merge, trace-global after).
	ID int
	// Arrival is when the request entered the system, in seconds.
	Arrival float64
	// FirstToken is when the first output token was produced.
	FirstToken float64
	// Finish is when the last output token was produced.
	Finish float64
	// OutputTokens is the number of tokens generated.
	OutputTokens int
}

// TTFT returns the time to first token: queueing plus prefill.
func (r RequestRecord) TTFT() float64 { return r.FirstToken - r.Arrival }

// TPOT returns the mean time per output token after the first (0 for
// single-token outputs).
func (r RequestRecord) TPOT() float64 {
	if r.OutputTokens <= 1 {
		return 0
	}
	return (r.Finish - r.FirstToken) / float64(r.OutputTokens-1)
}

// E2E returns the end-to-end latency from arrival to completion.
func (r RequestRecord) E2E() float64 { return r.Finish - r.Arrival }

// Finished reports whether the record describes a completed request:
// at least one output token and a monotone arrival -> first-token ->
// finish lifecycle. Records of admitted-but-unfinished requests (e.g.
// a zero-valued record merged for a request still in flight) fail
// this; digesting them as if complete would feed negative "latencies"
// into the percentiles.
func (r RequestRecord) Finished() bool {
	return r.OutputTokens > 0 && r.FirstToken >= r.Arrival && r.Finish >= r.FirstToken
}

// SLO is a service-level objective over per-request latencies. A zero
// component disables that check; the zero value disables the SLO
// entirely (every request is "good").
type SLO struct {
	// TTFT is the max acceptable time to first token, in seconds.
	TTFT float64
	// TPOT is the max acceptable mean time per output token, in seconds.
	TPOT float64
	// E2E is the max acceptable end-to-end latency, in seconds.
	E2E float64
}

// Enabled reports whether any component is set.
func (s SLO) Enabled() bool { return s.TTFT > 0 || s.TPOT > 0 || s.E2E > 0 }

// Met reports whether the record satisfies every enabled component.
func (s SLO) Met(r RequestRecord) bool {
	if s.TTFT > 0 && r.TTFT() > s.TTFT {
		return false
	}
	if s.TPOT > 0 && r.TPOT() > s.TPOT {
		return false
	}
	if s.E2E > 0 && r.E2E() > s.E2E {
		return false
	}
	return true
}

// String renders the enabled objective components.
func (s SLO) String() string {
	if !s.Enabled() {
		return "none"
	}
	out := ""
	app := func(label string, v float64) {
		if v <= 0 {
			return
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s<=%.3gs", label, v)
	}
	app("ttft", s.TTFT)
	app("tpot", s.TPOT)
	app("e2e", s.E2E)
	return out
}

// DefaultSLO is a serving objective calibrated for the simulated
// deployments: first token within 10 s, 2.5 s per output token, and
// seven minutes end to end. The TPOT bound is deliberately loose —
// in a temporally-disaggregated engine the effective per-token time
// includes the decode pauses spent in prefill phases.
func DefaultSLO() SLO { return SLO{TTFT: 10, TPOT: 2.5, E2E: 420} }

// LatencyDigest summarizes per-request latency records: TTFT/TPOT/E2E
// percentiles plus goodput under an SLO. It holds only scalars so
// Report stays comparable with ==.
type LatencyDigest struct {
	// Requests is the number of records digested.
	Requests int

	TTFTP50, TTFTP95, TTFTP99 float64
	TPOTP50, TPOTP95, TPOTP99 float64
	E2EP50, E2EP95, E2EP99    float64

	MeanTTFT, MeanE2E float64

	// SLO is the objective the digest was computed under.
	SLO SLO
	// SLOMet counts requests meeting every enabled SLO component
	// (all of them when the SLO is disabled).
	SLOMet int
}

// Goodput returns the fraction of requests meeting the SLO (1 when the
// digest is empty or the SLO is disabled).
func (d LatencyDigest) Goodput() float64 {
	if d.Requests == 0 {
		return 1
	}
	return float64(d.SLOMet) / float64(d.Requests)
}

// String renders the digest's percentile summary on one line.
func (d LatencyDigest) String() string {
	return fmt.Sprintf("ttft p50/p99 %.2f/%.2fs, tpot p50/p99 %.0f/%.0fms, e2e p50/p99 %.1f/%.1fs, goodput %.1f%% (slo %s)",
		d.TTFTP50, d.TTFTP99, 1e3*d.TPOTP50, 1e3*d.TPOTP99, d.E2EP50, d.E2EP99, 100*d.Goodput(), d.SLO)
}

// Digest folds records into a latency digest under the SLO. The input
// order does not matter; the result is deterministic for a set of
// records. Unfinished records (see RequestRecord.Finished) count
// toward Requests but never toward SLOMet, and are excluded from the
// percentiles and means: an empty or all-unfinished record set yields
// defined zeros in every latency field, never NaN or negative
// "latencies" from zero-valued timestamps.
func Digest(records []RequestRecord, slo SLO) LatencyDigest {
	d := LatencyDigest{Requests: len(records), SLO: slo}
	if len(records) == 0 {
		return d
	}
	ttft := make([]float64, 0, len(records))
	tpot := make([]float64, 0, len(records))
	e2e := make([]float64, 0, len(records))
	for _, r := range records {
		if !r.Finished() {
			continue
		}
		ttft = append(ttft, r.TTFT())
		tpot = append(tpot, r.TPOT())
		e2e = append(e2e, r.E2E())
		if slo.Met(r) {
			d.SLOMet++
		}
	}
	if len(ttft) == 0 {
		return d
	}
	sort.Float64s(ttft)
	sort.Float64s(tpot)
	sort.Float64s(e2e)
	// Sum means over the sorted values so the digest is bit-identical
	// regardless of input order (fleet merges rely on this).
	for i := range ttft {
		d.MeanTTFT += ttft[i]
		d.MeanE2E += e2e[i]
	}
	d.MeanTTFT /= float64(len(ttft))
	d.MeanE2E /= float64(len(ttft))
	d.TTFTP50, d.TTFTP95, d.TTFTP99 = Percentile(ttft, 50), Percentile(ttft, 95), Percentile(ttft, 99)
	d.TPOTP50, d.TPOTP95, d.TPOTP99 = Percentile(tpot, 50), Percentile(tpot, 95), Percentile(tpot, 99)
	d.E2EP50, d.E2EP95, d.E2EP99 = Percentile(e2e, 50), Percentile(e2e, 95), Percentile(e2e, 99)
	return d
}

// Percentile returns the p-th percentile of values. Sorted input is
// used as-is; unsorted input is copied and sorted first. p is clamped
// to [0, 100]; the empty slice yields 0.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	if !sort.Float64sAreSorted(values) {
		c := append([]float64(nil), values...)
		sort.Float64s(c)
		values = c
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	return values[int(p/100*float64(len(values)-1))]
}
