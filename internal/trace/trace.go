// Package trace exports simulation observables — utilization timelines,
// KV-usage traces and per-GPU busy intervals — as CSV and JSON, so
// results can be plotted or diffed outside the repository.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/metrics"
)

// WriteUtilizationCSV writes a utilization timeline as (time, util)
// rows.
func WriteUtilizationCSV(w io.Writer, pts []metrics.UtilPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "utilization"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.FormatFloat(p.Time, 'f', 6, 64),
			strconv.FormatFloat(p.Utilization, 'f', 6, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteKVCSV writes a KV-usage timeline as (step, time, usage, phase)
// rows — the raw data behind the paper's Figure 12.
func WriteKVCSV(w io.Writer, pts []metrics.KVPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"step", "time_s", "usage", "phase"}); err != nil {
		return err
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			strconv.Itoa(p.Step),
			strconv.FormatFloat(p.Time, 'f', 6, 64),
			strconv.FormatFloat(p.Usage, 'f', 6, 64),
			p.Phase.String(),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteBusyIntervalsCSV writes every recorded busy interval as
// (gpu, start, end) rows — a Gantt chart source for bubble inspection.
func WriteBusyIntervalsCSV(w io.Writer, rec *metrics.Recorder) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"gpu", "start_s", "end_s"}); err != nil {
		return err
	}
	for g := 0; g < rec.GPUs(); g++ {
		for _, iv := range rec.Intervals(g) {
			if err := cw.Write([]string{
				strconv.Itoa(g),
				strconv.FormatFloat(iv.Start, 'f', 6, 64),
				strconv.FormatFloat(iv.End, 'f', 6, 64),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// Run bundles a report with its timelines for JSON export.
type Run struct {
	Report      metrics.Report      `json:"report"`
	Utilization []metrics.UtilPoint `json:"utilization,omitempty"`
	KV          []metrics.KVPoint   `json:"kv,omitempty"`
}

// WriteRunJSON writes the bundle as indented JSON.
func WriteRunJSON(w io.Writer, run Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(run)
}

// ReadRunJSON parses a bundle written by WriteRunJSON.
func ReadRunJSON(r io.Reader) (Run, error) {
	var run Run
	if err := json.NewDecoder(r).Decode(&run); err != nil {
		return Run{}, fmt.Errorf("trace: decoding run: %w", err)
	}
	return run, nil
}
