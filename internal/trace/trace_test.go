package trace

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func TestWriteUtilizationCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []metrics.UtilPoint{{Time: 1, Utilization: 0.5}, {Time: 2, Utilization: 0.75}}
	if err := WriteUtilizationCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0][0] != "time_s" {
		t.Fatalf("rows = %v", rows)
	}
	if rows[2][1] != "0.750000" {
		t.Errorf("utilization cell = %q", rows[2][1])
	}
}

func TestWriteKVCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []metrics.KVPoint{
		{Step: 1, Time: 0.5, Usage: 0.25, Phase: metrics.PhasePrefill},
		{Step: 2, Time: 1.0, Usage: 0.50, Phase: metrics.PhaseDecode},
	}
	if err := WriteKVCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "prefill") || !strings.Contains(s, "decode") {
		t.Errorf("csv missing phases: %q", s)
	}
	rows, _ := csv.NewReader(strings.NewReader(s)).ReadAll()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestWriteBusyIntervalsCSV(t *testing.T) {
	rec := metrics.NewRecorder(2)
	rec.Add(0, 0, 1)
	rec.Add(1, 0.5, 2)
	var buf bytes.Buffer
	if err := WriteBusyIntervalsCSV(&buf, rec); err != nil {
		t.Fatal(err)
	}
	rows, _ := csv.NewReader(&buf).ReadAll()
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[2][0] != "1" {
		t.Errorf("gpu column = %q", rows[2][0])
	}
}

func TestRunJSONRoundTrip(t *testing.T) {
	run := Run{
		Report:      metrics.Report{Scheduler: "TD-Pipe", OutputTokens: 100, Elapsed: 2},
		Utilization: []metrics.UtilPoint{{Time: 1, Utilization: 0.9}},
		KV:          []metrics.KVPoint{{Step: 3, Usage: 0.4, Phase: metrics.PhaseDecode}},
	}
	var buf bytes.Buffer
	if err := WriteRunJSON(&buf, run); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRunJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Report.Scheduler != "TD-Pipe" || got.Report.OutputTokens != 100 {
		t.Errorf("report round trip = %+v", got.Report)
	}
	if len(got.Utilization) != 1 || len(got.KV) != 1 {
		t.Errorf("timelines round trip = %+v", got)
	}
	if got.KV[0].Phase != metrics.PhaseDecode {
		t.Errorf("phase round trip = %v", got.KV[0].Phase)
	}
}

func TestReadRunJSONError(t *testing.T) {
	if _, err := ReadRunJSON(strings.NewReader("{nope")); err == nil {
		t.Error("bad json accepted")
	}
}
