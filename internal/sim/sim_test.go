package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{3, 1, 2, 5, 4} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	end := e.Run()
	if end != 5 {
		t.Fatalf("final time = %v, want 5", end)
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order not FIFO: %v", got)
		}
	}
}

func TestEngineAfterAndImmediately(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(1, func() {
		e.Immediately(func() { order = append(order, "imm") })
		e.After(2, func() { order = append(order, "after") })
		order = append(order, "first")
	})
	e.Run()
	want := []string{"first", "imm", "after"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("final time = %v, want 3", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.At(1, func() { n++; e.Stop() })
	e.At(2, func() { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("ran %d events before stop, want 1", n)
	}
	// Run again resumes with remaining events.
	e.Run()
	if n != 2 {
		t.Fatalf("ran %d events total, want 2", n)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=2.5, want 2", len(fired))
	}
	if e.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", e.Now())
	}
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
}

func TestEngineRunBefore(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	// Strict horizon: the event at t=3 stays pending, and the clock
	// parks at the last executed event, not at the horizon.
	e.RunBefore(3)
	if len(fired) != 2 {
		t.Fatalf("fired %d events before t=3, want 2", len(fired))
	}
	if e.Now() != 2 {
		t.Fatalf("clock = %v after RunBefore(3), want 2", e.Now())
	}
	if got := e.NextEventTime(); got != 3 {
		t.Fatalf("NextEventTime = %v, want 3", got)
	}
	// Events cascading inside the window still run: an event at 3.5
	// scheduling one at 3.75 drains both under RunBefore(4).
	e.At(3.5, func() { e.At(3.75, func() { fired = append(fired, 3.75) }) })
	e.RunBefore(4)
	if len(fired) != 4 || fired[3] != 3.75 {
		t.Fatalf("fired = %v, want cascade through 3.75", fired)
	}
	e.Run()
	if e.NextEventTime() != Infinity {
		t.Fatalf("NextEventTime on empty queue = %v, want Infinity", e.NextEventTime())
	}
}

func TestEngineAdvanceTo(t *testing.T) {
	e := NewEngine()
	e.At(1, func() {})
	e.RunBefore(2)
	e.AdvanceTo(2)
	if e.Now() != 2 {
		t.Fatalf("clock = %v after AdvanceTo(2), want 2", e.Now())
	}
	// Advancing onto a pending event's instant is allowed (the event
	// can still fire at now); advancing past it must panic.
	e.At(3, func() {})
	e.AdvanceTo(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AdvanceTo past a pending event did not panic")
			}
		}()
		e.AdvanceTo(3.5)
	}()
	e.Run()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("AdvanceTo into the past did not panic")
			}
		}()
		e.AdvanceTo(1)
	}()
}

func TestEngineMaxStepsGuard(t *testing.T) {
	e := NewEngine()
	e.MaxSteps = 100
	var loop func()
	loop = func() { e.Immediately(loop) }
	e.Immediately(loop)
	defer func() {
		if recover() == nil {
			t.Error("livelock did not trip MaxSteps panic")
		}
	}()
	e.Run()
}

func TestResourceFIFOAndBusyTime(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "gpu0")
	s1, e1 := r.Acquire(0, 2, nil)
	s2, e2 := r.Acquire(0, 3, nil)
	s3, e3 := r.Acquire(10, 1, nil)
	if s1 != 0 || e1 != 2 {
		t.Fatalf("first interval [%v,%v], want [0,2]", s1, e1)
	}
	if s2 != 2 || e2 != 5 {
		t.Fatalf("second interval [%v,%v], want [2,5] (FIFO queue)", s2, e2)
	}
	if s3 != 10 || e3 != 11 {
		t.Fatalf("third interval [%v,%v], want [10,11] (respects readyAt)", s3, e3)
	}
	if r.BusyTime() != 6 {
		t.Fatalf("busy time = %v, want 6", r.BusyTime())
	}
}

func TestResourceCompletionCallback(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "gpu0")
	var doneAt Time = -1
	r.Acquire(1, 2, func() { doneAt = e.Now() })
	e.Run()
	if doneAt != 3 {
		t.Fatalf("completion at %v, want 3", doneAt)
	}
}

func TestResourceObserver(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, "gpu0")
	var intervals [][2]Time
	r.Observe(func(s, en Time) { intervals = append(intervals, [2]Time{s, en}) })
	r.Acquire(0, 1, nil)
	r.Acquire(0, 0, nil) // zero-length work is not observed
	r.Acquire(5, 2, nil)
	if len(intervals) != 2 {
		t.Fatalf("observed %d intervals, want 2", len(intervals))
	}
	if intervals[1] != [2]Time{5, 7} {
		t.Fatalf("second interval = %v, want [5 7]", intervals[1])
	}
}

// Property: however events are scheduled, they execute in nondecreasing
// time order and the engine clock never moves backwards.
func TestEventOrderProperty(t *testing.T) {
	prop := func(times []float64) bool {
		e := NewEngine()
		var fired []Time
		for _, raw := range times {
			at := Time(raw)
			if at < 0 {
				at = -at
			}
			if at > 1e12 {
				continue
			}
			at2 := at
			e.At(at2, func() { fired = append(fired, at2) })
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a resource never overlaps two work items and its busy time
// equals the sum of the requested durations.
func TestResourceNoOverlapProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		r := NewResource(e, "r")
		var prevEnd Time
		var total Duration
		for i := 0; i < int(n%50); i++ {
			ready := Time(rng.Float64() * 100)
			dur := rng.Float64() * 10
			s, en := r.Acquire(ready, dur, nil)
			if s < prevEnd || en < s || s < ready {
				return false
			}
			prevEnd = en
			total += dur
		}
		return r.BusyTime() == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
