// Package sim provides a deterministic discrete-event simulation kernel.
//
// All TD-Pipe experiments run in virtual time: schedulers and the
// distributed runtime schedule work as events on an Engine, and the
// engine executes them in strict (time, sequence) order. Determinism is
// guaranteed by breaking time ties with a monotonically increasing
// sequence number, so two runs with the same seed produce identical
// traces.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Infinity is a time later than any event the simulation will produce.
const Infinity Time = Time(math.MaxFloat64)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap over (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	steps   uint64
	// MaxSteps bounds the number of events processed by Run as a
	// runaway guard; 0 means no limit.
	MaxSteps uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a scheduler bug, not a recoverable condition.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+Time(d), fn)
}

// Immediately schedules fn at the current time, after all events already
// scheduled for the current time.
func (e *Engine) Immediately(fn func()) { e.At(e.now, fn) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// Run executes events in order until the queue is empty, Stop is called,
// or MaxSteps is exceeded (which panics, as it indicates a scheduler
// livelock). It returns the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.at < e.now {
			panic("sim: event heap time went backwards")
		}
		e.now = ev.at
		e.steps++
		if e.MaxSteps > 0 && e.steps > e.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", e.MaxSteps, e.now))
		}
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with time <= deadline and then stops, leaving
// later events queued. It returns the final virtual time (== deadline if
// any events remained).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > deadline {
			e.now = deadline
			return e.now
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		e.steps++
		if e.MaxSteps > 0 && e.steps > e.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", e.MaxSteps, e.now))
		}
		ev.fn()
	}
	return e.now
}
