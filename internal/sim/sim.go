// Package sim provides a deterministic discrete-event simulation kernel.
//
// All TD-Pipe experiments run in virtual time: schedulers and the
// distributed runtime schedule work as events on an Engine, and the
// engine executes them in strict (time, sequence) order. Determinism is
// guaranteed by breaking time ties with a monotonically increasing
// sequence number, so two runs with the same seed produce identical
// traces.
//
// The kernel is built for throughput: the priority queue is a 4-ary
// heap of small value-typed entries (time, sequence, body index), the
// event bodies live in an arena recycled through a free list, and
// AtFunc schedules fixed callbacks without allocating a closure. In
// steady state the hot path performs no heap allocation per event.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration = float64

// Infinity is a time later than any event the simulation will produce.
const Infinity Time = Time(math.MaxFloat64)

// EventFunc is the fast-path callback signature used by AtFunc: a fixed
// function plus a context and two integer arguments. Passing a
// package-level function and a long-lived pointer context schedules an
// event with zero allocations.
type EventFunc func(ctx any, a, b int)

// event is a scheduled callback's body. Bodies live in the engine's
// arena, indexed by heap entries and recycled through a free list, so
// completed events cost no garbage.
type event struct {
	// fn is the closure path (At / After / Immediately).
	fn func()
	// cb, ctx, a, b are the allocation-free path (AtFunc); used when
	// fn is nil.
	cb  EventFunc
	ctx any
	a   int
	b   int
	// next links the free list while the slot is recycled.
	next int32
}

// entry is one element of the event heap: the ordering key plus the
// body's arena index. Entries are small values, so sift operations move
// 24 bytes over contiguous memory instead of chasing pointers.
type entry struct {
	at  Time
	seq uint64
	idx int32
}

// before reports whether a fires before b: earlier time first, with
// ties broken by scheduling order.
func (a entry) before(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; construct with NewEngine.
type Engine struct {
	now Time
	seq uint64
	// heap is a 4-ary min-heap over (at, seq): shallower than a binary
	// heap, and the four-way child comparison scans adjacent memory.
	heap  []entry
	arena []event
	// free heads the recycled-body list; -1 when empty.
	free    int32
	stopped bool
	steps   uint64
	// MaxSteps bounds the number of events processed by Run as a
	// runaway guard; 0 means no limit.
	MaxSteps uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{free: -1}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Steps returns the number of events processed so far. Dividing by
// elapsed wall-clock time yields the kernel's steps/sec rate.
func (e *Engine) Steps() uint64 { return e.steps }

// alloc takes a body slot from the free list, growing the arena only
// when no completed event can be recycled.
//
//det:hotpath
func (e *Engine) alloc() int32 {
	if i := e.free; i >= 0 {
		e.free = e.arena[i].next
		return i
	}
	e.arena = append(e.arena, event{}) //det:ignore hotalloc amortized arena growth; steady state recycles slots off the free list
	return int32(len(e.arena) - 1)
}

// recycle clears a completed body (releasing fn/ctx to the GC) and
// pushes its slot onto the free list.
//
//det:hotpath
func (e *Engine) recycle(i int32) {
	e.arena[i] = event{next: e.free}
	e.free = i
}

// push inserts a heap entry for body idx at time t.
//
//det:hotpath
func (e *Engine) push(t Time, idx int32) {
	e.seq++
	ent := entry{at: t, seq: e.seq, idx: idx}
	e.heap = append(e.heap, ent) //det:ignore hotalloc amortized heap growth; steady state reuses the popped slot's capacity
	i := len(e.heap) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !ent.before(e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		i = p
	}
	e.heap[i] = ent
}

// pop removes and returns the earliest entry.
//
//det:hotpath
func (e *Engine) pop() entry {
	top := e.heap[0]
	n := len(e.heap) - 1
	ent := e.heap[n]
	e.heap = e.heap[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			m := c
			hi := c + 4
			if hi > n {
				hi = n
			}
			for k := c + 1; k < hi; k++ {
				if e.heap[k].before(e.heap[m]) {
					m = k
				}
			}
			if !e.heap[m].before(ent) {
				break
			}
			e.heap[i] = e.heap[m]
			i = m
		}
		e.heap[i] = ent
	}
	return top
}

// At schedules fn to run at absolute time t. Scheduling in the past
// panics: it indicates a scheduler bug, not a recoverable condition.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.alloc()
	e.arena[idx].fn = fn
	e.push(t, idx)
}

// AtFunc schedules cb(ctx, a, b) at absolute time t. It is the hot-path
// scheduling primitive: unlike At no closure is allocated, so with a
// package-level cb and a pointer ctx the event costs only a recycled
// arena slot. Scheduling in the past panics, as with At.
//
//det:hotpath
func (e *Engine) AtFunc(t Time, cb EventFunc, ctx any, a, b int) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	idx := e.alloc()
	ev := &e.arena[idx]
	ev.cb, ev.ctx, ev.a, ev.b = cb, ctx, a, b
	e.push(t, idx)
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+Time(d), fn)
}

// AfterFunc schedules cb(ctx, a, b) d seconds from now, allocation-free
// like AtFunc.
//
//det:hotpath
func (e *Engine) AfterFunc(d Duration, cb EventFunc, ctx any, a, b int) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.AtFunc(e.now+Time(d), cb, ctx, a, b)
}

// Immediately schedules fn at the current time, after all events already
// scheduled for the current time.
func (e *Engine) Immediately(fn func()) { e.At(e.now, fn) }

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Pending reports the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.heap) }

// dispatch advances the clock to ent and invokes its callback. The body
// is copied out and recycled first, so callbacks are free to schedule
// new events into the just-vacated slot.
//
//det:hotpath
func (e *Engine) dispatch(ent entry) {
	if ent.at < e.now {
		panic("sim: event heap time went backwards")
	}
	e.now = ent.at
	e.steps++
	if e.MaxSteps > 0 && e.steps > e.MaxSteps {
		panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", e.MaxSteps, e.now))
	}
	ev := e.arena[ent.idx]
	e.recycle(ent.idx)
	if ev.fn != nil {
		ev.fn()
	} else {
		ev.cb(ev.ctx, ev.a, ev.b)
	}
}

// Run executes events in order until the queue is empty, Stop is called,
// or MaxSteps is exceeded (which panics, as it indicates a scheduler
// livelock). It returns the final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		e.dispatch(e.pop())
	}
	return e.now
}

// RunUntil executes events with time <= deadline and then stops, leaving
// later events queued. It returns the final virtual time (== deadline if
// any events remained).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].at > deadline {
			e.now = deadline
			return e.now
		}
		e.dispatch(e.pop())
	}
	return e.now
}

// RunBefore executes events with time strictly less than horizon and
// then stops, leaving events at or after the horizon queued. Unlike
// RunUntil it does not move the clock up to the horizon: the clock
// stays at the last executed event, so a later AdvanceTo (or the next
// RunBefore) decides where time lands. It returns the final virtual
// time. Conservative parallel co-simulation is the intended caller:
// each shard engine drains its window up to a safe horizon while the
// events at the horizon itself stay pending for the coordinator.
func (e *Engine) RunBefore(horizon Time) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.heap[0].at >= horizon {
			break
		}
		e.dispatch(e.pop())
	}
	return e.now
}

// NextEventTime returns the time of the earliest pending event, or
// Infinity when the queue is empty.
func (e *Engine) NextEventTime() Time {
	if len(e.heap) == 0 {
		return Infinity
	}
	return e.heap[0].at
}

// AdvanceTo moves the clock forward to t without executing anything.
// It panics if t is in the past or if an event earlier than t is still
// pending (advancing would let it fire in the engine's past). Callers
// drain the window first — RunBefore(t) followed by AdvanceTo(t) parks
// the engine exactly at t so externally injected work (Submit, Crash)
// is stamped with the coordinator's clock.
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: advancing clock to %v before now %v", t, e.now))
	}
	if len(e.heap) > 0 && e.heap[0].at < t {
		panic(fmt.Sprintf("sim: advancing clock to %v past pending event at %v", t, e.heap[0].at))
	}
	e.now = t
}
