package sim

import "testing"

// BenchmarkEventThroughput measures raw event dispatch rate — the DES
// kernel's hot path — and reports it as steps/sec. Steady state is
// allocation-free: the closure is shared and event bodies recycle
// through the pool.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(1, tick)
	e.Run()
	b.ReportMetric(float64(e.Steps())/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkEventThroughputAtFunc measures the closure-free fast path:
// a fixed callback with a context pointer and integer arguments.
func BenchmarkEventThroughputAtFunc(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick EventFunc
	tick = func(ctx any, _, _ int) {
		n++
		if n < b.N {
			e.AfterFunc(1, tick, ctx, 0, 0)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.AfterFunc(1, tick, e, 0, 0)
	e.Run()
	b.ReportMetric(float64(e.Steps())/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkResourceAcquire measures FIFO reservation cost.
func BenchmarkResourceAcquire(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "gpu")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(Time(i), 0.5, nil)
	}
}

// BenchmarkHeapChurn measures interleaved scheduling at many distinct
// times with the full b.N backlog queued at once (worst case for the
// event heap: every sift walks a deep, cache-cold tree).
func BenchmarkHeapChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Time(i % 1024)
		e.At(t+Time(b.N), func() {})
	}
	e.Run()
}

// BenchmarkSteadyChurn measures the simulator's realistic regime: a
// bounded pending set (as produced by in-flight pipeline passes and
// arrivals) with one push per pop.
func BenchmarkSteadyChurn(b *testing.B) {
	e := NewEngine()
	const pending = 1024
	n := 0
	var tick EventFunc
	tick = func(ctx any, i, _ int) {
		n++
		if n+pending <= b.N {
			e.AfterFunc(float64(1+i%7), tick, ctx, i, 0)
		}
	}
	for i := 0; i < pending && i < b.N; i++ {
		e.AfterFunc(float64(1+i%7), tick, e, i, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
	b.ReportMetric(float64(e.Steps())/b.Elapsed().Seconds(), "steps/s")
}
