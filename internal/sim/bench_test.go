package sim

import "testing"

// BenchmarkEventThroughput measures raw event dispatch rate — the DES
// kernel's hot path.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			e.After(1, tick)
		}
	}
	b.ResetTimer()
	e.After(1, tick)
	e.Run()
}

// BenchmarkResourceAcquire measures FIFO reservation cost.
func BenchmarkResourceAcquire(b *testing.B) {
	e := NewEngine()
	r := NewResource(e, "gpu")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(Time(i), 0.5, nil)
	}
}

// BenchmarkHeapChurn measures interleaved scheduling at many distinct
// times (worst case for the event heap).
func BenchmarkHeapChurn(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := Time(i % 1024)
		e.At(t+Time(b.N), func() {})
	}
	e.Run()
}
