package sim

import (
	"container/heap"
	"math/rand"
	"reflect"
	"testing"
)

// --- reference implementation -----------------------------------------
//
// refEngine is the original pointer-heap kernel (container/heap over
// *refEvent), kept verbatim as the oracle for property-testing the
// value-based 4-ary heap: both must execute any schedule in the exact
// same (time, seq) order.

type refEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x interface{}) { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

type refEngine struct {
	now    Time
	seq    uint64
	events refHeap
}

func (e *refEngine) At(t Time, fn func()) {
	e.seq++
	heap.Push(&e.events, &refEvent{at: t, seq: e.seq, fn: fn})
}

func (e *refEngine) Run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*refEvent)
		e.now = ev.at
		ev.fn()
	}
}

// scheduler is the minimal interface the property-test scenario drives.
type scheduler interface {
	At(t Time, fn func())
}

// driveScenario runs a deterministic pseudo-random schedule to
// completion and returns the firing order: n root events at times drawn
// from a tiny alphabet (maximizing ties), each optionally rescheduling
// children at the current or a later instant.
func driveScenario(seed int64, n int, newEng func() (scheduler, func() Time, func())) []int {
	s, now, run := newEng()
	rng := rand.New(rand.NewSource(seed))
	var order []int
	next := n
	times := []Time{0, 0.25, 0.25, 0.5, 1, 1, 2, 3}
	var schedule func(id int, at Time)
	var depthOf map[int]int
	depthOf = map[int]int{}
	schedule = func(id int, at Time) {
		s.At(at, func() {
			order = append(order, id)
			if depthOf[id] < 2 && rng.Intn(3) == 0 {
				child := next
				next++
				depthOf[child] = depthOf[id] + 1
				schedule(child, now())
				child = next
				next++
				depthOf[child] = depthOf[id] + 1
				schedule(child, now()+Time(times[rng.Intn(len(times))]))
			}
		})
	}
	for i := 0; i < n; i++ {
		schedule(i, times[rng.Intn(len(times))])
	}
	run()
	return order
}

func TestKernelOrderPropertyVsReference(t *testing.T) {
	for seed := int64(1); seed <= 300; seed++ {
		got := driveScenario(seed, 60, func() (scheduler, func() Time, func()) {
			e := NewEngine()
			return e, e.Now, func() { e.Run() }
		})
		want := driveScenario(seed, 60, func() (scheduler, func() Time, func()) {
			r := &refEngine{}
			return r, func() Time { return r.now }, r.Run
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: firing order diverged from pointer-heap reference:\n got %v\nwant %v", seed, got, want)
		}
	}
}

// Mass time-ties: thousands of events at the same instant must fire in
// exact scheduling order, exercising deep sift chains of equal keys.
func TestMassTimeTiesFIFO(t *testing.T) {
	e := NewEngine()
	const n = 5000
	var order []int
	for i := 0; i < n; i++ {
		i := i
		// Two tied instants interleaved to stress the comparator.
		e.At(Time(i%2), func() { order = append(order, i) })
	}
	e.Run()
	if len(order) != n {
		t.Fatalf("fired %d of %d", len(order), n)
	}
	// All t=0 events (even i) in scheduling order, then all t=1 (odd).
	want := 0
	for k := 0; k < n/2; k++ {
		if order[k] != want {
			t.Fatalf("t=0 event %d fired as %d, want %d", k, order[k], want)
		}
		want += 2
	}
	want = 1
	for k := n / 2; k < n; k++ {
		if order[k] != want {
			t.Fatalf("t=1 event %d fired as %d, want %d", k, order[k], want)
		}
		want += 2
	}
}

// Event pool reuse after Stop: stopping mid-run must leave queued
// events intact, and recycled slots from the executed prefix must not
// corrupt the remainder when the run resumes.
func TestEventReuseAfterStop(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(i), func() {
			order = append(order, i)
			if i == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if len(order) != 5 || e.Pending() != 5 {
		t.Fatalf("after stop: order=%v pending=%d", order, e.Pending())
	}
	// Schedule more events; their bodies reuse slots recycled by the
	// first half.
	for i := 10; i < 15; i++ {
		i := i
		e.At(Time(i), func() { order = append(order, i) })
	}
	e.Run()
	want := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("resumed order = %v, want %v", order, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after drain", e.Pending())
	}
}

// Scheduling at the current instant from inside a callback must run
// within the same Run, after events already queued for that instant.
func TestScheduleAtCurrentInstantFromCallback(t *testing.T) {
	e := NewEngine()
	var order []string
	e.At(1, func() {
		order = append(order, "a")
		e.Immediately(func() { order = append(order, "a-imm") })
		e.AtFunc(e.Now(), func(_ any, _, _ int) { order = append(order, "a-atfunc") }, nil, 0, 0)
	})
	e.At(1, func() { order = append(order, "b") })
	e.At(2, func() { order = append(order, "c") })
	e.Run()
	want := []string{"a", "b", "a-imm", "a-atfunc", "c"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
}

// AtFunc and At events interleave in strict scheduling order at tied
// times, and AtFunc passes its context and arguments through.
func TestAtFuncOrderingAndArgs(t *testing.T) {
	e := NewEngine()
	type rec struct {
		tag string
		a   int
		b   int
	}
	var got []rec
	ctx := &got
	cb := func(c any, a, b int) {
		g := c.(*[]rec)
		*g = append(*g, rec{"f", a, b})
	}
	e.AtFunc(1, cb, ctx, 1, 2)
	e.At(1, func() { got = append(got, rec{tag: "c"}) })
	e.AtFunc(1, cb, ctx, 3, 4)
	e.Run()
	want := []rec{{"f", 1, 2}, {tag: "c"}, {"f", 3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// RunUntil leaves later events queued with their bodies intact; a
// subsequent Run executes them in order with the pool warm.
func TestRunUntilPreservesPooledEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		e.At(Time(i), func() { order = append(order, i) })
	}
	if got := e.RunUntil(9.5); got != 9.5 {
		t.Fatalf("RunUntil = %v", got)
	}
	if len(order) != 10 || e.Pending() != 10 {
		t.Fatalf("after RunUntil: fired=%d pending=%d", len(order), e.Pending())
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d", i, v)
		}
	}
}
