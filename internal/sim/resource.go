package sim

// Resource models a serially-occupied device (a GPU stream, a PCIe
// link): work items run one at a time in submission order. It tracks
// cumulative busy time so utilization can be derived.
type Resource struct {
	eng  *Engine
	name string

	freeAt Time // time the resource finishes its last accepted work
	busy   Duration

	// optional busy-interval observer, used by metrics recorders.
	onBusy func(start, end Time)
}

// NewResource creates a resource bound to engine e.
func NewResource(e *Engine, name string) *Resource {
	return &Resource{eng: e, name: name}
}

// Name returns the resource name given at construction.
func (r *Resource) Name() string { return r.name }

// FreeAt returns the earliest time at which the resource is free.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime returns total time the resource has spent occupied.
func (r *Resource) BusyTime() Duration { return r.busy }

// Observe registers fn to be called with every busy interval accepted by
// the resource. Only one observer is supported; later calls replace it.
func (r *Resource) Observe(fn func(start, end Time)) { r.onBusy = fn }

// Occupy blocks the resource until t without counting the time as busy
// work: the device is unavailable but idle (e.g. a GPU stalled on a
// blocking send). No-op if the resource is already occupied past t.
func (r *Resource) Occupy(until Time) {
	if until > r.freeAt {
		r.freeAt = until
	}
}

// Acquire reserves the resource for dur seconds starting no earlier than
// readyAt, queueing FIFO behind prior work. It returns the start and end
// of the reserved interval and schedules done (if non-nil) at the end.
func (r *Resource) Acquire(readyAt Time, dur Duration, done func()) (start, end Time) {
	if dur < 0 {
		panic("sim: negative duration")
	}
	start = readyAt
	if r.freeAt > start {
		start = r.freeAt
	}
	if now := r.eng.Now(); now > start {
		start = now
	}
	end = start + Time(dur)
	r.freeAt = end
	r.busy += dur
	if r.onBusy != nil && dur > 0 {
		r.onBusy(start, end)
	}
	if done != nil {
		r.eng.At(end, done)
	}
	return start, end
}
