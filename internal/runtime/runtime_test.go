package runtime

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sim"
)

func newTestCluster(t *testing.T, world int) *Cluster {
	t.Helper()
	eng := sim.NewEngine()
	c, err := NewCluster(eng, hw.L20, model.Tiny, world)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestNewClusterValidates(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewCluster(eng, hw.L20, model.Tiny, 8); err == nil {
		t.Error("world > node GPUs accepted")
	}
	if _, err := NewCluster(eng, hw.L20, model.Tiny, 100); err == nil {
		t.Error("world > layers accepted")
	}
}

func TestWorkerInitAndExec(t *testing.T) {
	c := newTestCluster(t, 2)
	rep := c.Workers[0].Call(ExecPrefill{Batch: costmodel.NewPrefillBatch([]int{64})})
	er, ok := rep.(ExecResult)
	if !ok {
		t.Fatalf("reply = %#v", rep)
	}
	if er.Dur <= 0 {
		t.Errorf("duration = %v", er.Dur)
	}
	if er.SendTokens != 64 {
		t.Errorf("stage 0 of 2 should forward 64 tokens, got %d", er.SendTokens)
	}
	// Last stage does not forward.
	rep = c.Workers[1].Call(ExecDecode{BatchSize: 8, KVTokens: 80})
	if er := rep.(ExecResult); er.SendTokens != 0 {
		t.Errorf("last stage forwards %d tokens, want 0", er.SendTokens)
	}
}

func TestWorkerRejectsExecBeforeInit(t *testing.T) {
	w := NewWorker()
	defer w.Call(Shutdown{})
	rep := w.Call(ExecDecode{BatchSize: 1, KVTokens: 1})
	if !isErr(rep) {
		t.Errorf("exec before init replied %#v", rep)
	}
}

func TestWorkerRejectsBadInit(t *testing.T) {
	w := NewWorker()
	defer w.Call(Shutdown{})
	plan, _ := model.Partition(model.Tiny, 2)
	cm, _ := costmodel.New(hw.L20, model.Tiny)
	if rep := w.Call(Init{Plan: plan, Rank: 5, World: 2, Cost: cm}); !isErr(rep) {
		t.Errorf("bad rank accepted: %#v", rep)
	}
	if rep := w.Call(Init{Plan: plan, Rank: 0, World: 3, Cost: cm}); !isErr(rep) {
		t.Errorf("world/stages mismatch accepted: %#v", rep)
	}
}

func TestWorkerUnknownMessage(t *testing.T) {
	w := NewWorker()
	defer w.Call(Shutdown{})
	if rep := w.Call(Ack{}); !isErr(rep) {
		t.Errorf("unknown message replied %#v", rep)
	}
}

func TestInitAckReportsWeights(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCluster(eng, hw.A100, model.Llama2_70B, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	w := NewWorker()
	defer w.Call(Shutdown{})
	rep := w.Call(Init{Plan: c.Plan, Rank: 1, World: 4, Cost: c.Cost})
	ack, ok := rep.(InitAck)
	if !ok {
		t.Fatalf("reply = %#v", rep)
	}
	if math.Abs(ack.WeightBytes-c.Plan.StageWeightBytes(1)) > 1 {
		t.Errorf("weights = %v, want %v", ack.WeightBytes, c.Plan.StageWeightBytes(1))
	}
}

func TestSubmitPassChainsStages(t *testing.T) {
	c := newTestCluster(t, 4)
	var res PassResult
	done := false
	c.SubmitPass(PrefillTask(costmodel.NewPrefillBatch([]int{128})), 0, func(r PassResult) {
		res, done = r, true
	})
	c.Eng.Run()
	if !done {
		t.Fatal("pass never completed")
	}
	if res.Start != 0 {
		t.Errorf("start = %v", res.Start)
	}
	for st := 1; st < 4; st++ {
		if res.StageEnds[st] <= res.StageEnds[st-1] {
			t.Errorf("stage %d ended at %v, not after stage %d at %v",
				st, res.StageEnds[st], st-1, res.StageEnds[st-1])
		}
	}
	if res.End != res.StageEnds[3] {
		t.Errorf("end = %v, want %v", res.End, res.StageEnds[3])
	}
}

func TestBackToBackPassesOverlap(t *testing.T) {
	// Two prefill passes submitted together should overlap across
	// stages: pass B's stage 0 runs while pass A is on stage 1.
	c := newTestCluster(t, 2)
	batch := costmodel.NewPrefillBatch([]int{512})
	var a, b PassResult
	c.SubmitPass(PrefillTask(batch), 0, func(r PassResult) { a = r })
	c.SubmitPass(PrefillTask(batch), 0, func(r PassResult) { b = r })
	c.Eng.Run()
	if b.StageEnds[0] >= a.StageEnds[1] {
		t.Errorf("no overlap: B stage0 end %v, A stage1 end %v", b.StageEnds[0], a.StageEnds[1])
	}
	if b.End <= a.End {
		t.Errorf("pass order violated: B end %v <= A end %v", b.End, a.End)
	}
}

func TestAsyncP2PFreesGPUDuringTransfer(t *testing.T) {
	// The GPU must be free once its compute ends even though the
	// activation is still in flight on the link.
	c := newTestCluster(t, 2)
	var res PassResult
	c.SubmitPass(PrefillTask(costmodel.NewPrefillBatch([]int{256})), 0, func(r PassResult) { res = r })
	c.Eng.Run()
	if got := c.GPUs[0].FreeAt(); got != res.StageEnds[0] {
		t.Errorf("gpu0 free at %v, want compute end %v (transfer must not block it)", got, res.StageEnds[0])
	}
	// Stage 1 starts strictly after the transfer.
	xfer := c.Cost.P2PActivation(256)
	wantStart := res.StageEnds[0] + sim.Time(xfer)
	gotStart := res.StageEnds[1] - sim.Time(c.Cost.PrefillStage(c.Plan, 1, costmodel.NewPrefillBatch([]int{256})))
	if math.Abs(float64(gotStart-wantStart)) > 1e-12 {
		t.Errorf("stage 1 start = %v, want %v", gotStart, wantStart)
	}
}

func TestRecorderSeesBusyIntervals(t *testing.T) {
	c := newTestCluster(t, 2)
	c.SubmitPass(DecodeTask(16, 16*64), 0, nil)
	c.Eng.Run()
	for g := 0; g < 2; g++ {
		if len(c.Rec.Intervals(g)) != 1 {
			t.Errorf("gpu %d recorded %d intervals, want 1", g, len(c.Rec.Intervals(g)))
		}
	}
}

func TestDecodePassDependencyChaining(t *testing.T) {
	// Simulate two decode steps of the same batch: step 2 must not
	// begin stage 0 before step 1 completes the last stage (inter-
	// decode-step data dependency).
	c := newTestCluster(t, 2)
	var step1 PassResult
	var step2 PassResult
	c.SubmitPass(DecodeTask(8, 800), 0, func(r1 PassResult) {
		step1 = r1
		c.SubmitPass(DecodeTask(8, 808), r1.End, func(r2 PassResult) { step2 = r2 })
	})
	c.Eng.Run()
	if step2.Start < step1.End {
		t.Errorf("step 2 started at %v before step 1 ended at %v", step2.Start, step1.End)
	}
}

func TestHybridAndChunkedTasks(t *testing.T) {
	c := newTestCluster(t, 2)
	rep := c.Workers[0].Call(ExecChunked{ChunkTokens: 64, CtxTokens: 128})
	if er := rep.(ExecResult); er.Dur <= 0 || er.SendTokens != 64 {
		t.Errorf("chunked exec = %+v", er)
	}
	rep = c.Workers[0].Call(ExecHybrid{DecodeBatch: 4, KVTokens: 400, ChunkTokens: 32, ChunkCtx: 0})
	if er := rep.(ExecResult); er.Dur <= 0 || er.SendTokens != 36 {
		t.Errorf("hybrid exec = %+v", er)
	}
	var res PassResult
	c.SubmitPass(HybridTask(4, 400, 32, 0), 0, func(r PassResult) { res = r })
	c.Eng.Run()
	if res.End <= 0 {
		t.Errorf("hybrid pass end = %v", res.End)
	}
}
