package runtime

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// Transport selects how a Cluster reaches its workers.
type Transport int

const (
	// TransportDirect dispatches control messages as plain method
	// calls on the calling goroutine — the zero-roundtrip default.
	TransportDirect Transport = iota
	// TransportMailbox runs each worker as a goroutine actor with a
	// channel mailbox — the original execution plane, kept for
	// cross-transport equivalence tests and actor-style deployments.
	TransportMailbox
)

// Cluster binds a pipeline of workers to simulated GPU and link
// resources. Schedulers submit per-stage tasks; the cluster routes them
// through worker endpoints for timing and chains the stages with
// asynchronous point-to-point transfers.
type Cluster struct {
	Eng  *sim.Engine
	Node hw.Node
	Cost *costmodel.Model
	Plan model.PipelinePlan

	// Workers are the execution-plane endpoints. They are Callers so
	// the control plane can talk to them through any transport — plain
	// method calls (NewDirectCaller), the in-process mailbox
	// (NewWorker) or net/rpc (package rpc).
	Workers []Caller
	// GPUs[i] serializes compute on device i.
	GPUs []*sim.Resource
	// Links[i] serializes the i -> i+1 activation channel.
	Links []*sim.Resource
	// Rec records busy intervals for utilization metrics.
	Rec *metrics.Recorder

	// BlockingP2P switches stage-to-stage transfers to the blocking
	// rendezvous style of stock vLLM pipeline parallelism (§3.2): a
	// send waits for the receiver to be free and stalls the sender
	// until delivery. TD-Pipe's hierarchy-controller leaves this
	// false — transfers are asynchronous and the sender GPU is
	// released at compute end.
	BlockingP2P bool

	// passFree heads the recycled pass-state free list; completed
	// passes return here instead of the garbage collector.
	passFree *pass

	// slowdown scales every stage's compute time (straggler modeling
	// for fault injection). Zero or one means nominal speed; the
	// nominal path never touches the multiplication, so fault-free
	// schedules stay bit-identical.
	slowdown float64
}

// NewCluster builds a world-size pipeline over the node's GPUs using the
// direct (zero-roundtrip) transport, and wires busy-interval recording.
func NewCluster(eng *sim.Engine, node hw.Node, spec model.Spec, world int) (*Cluster, error) {
	return NewClusterTransport(eng, node, spec, world, TransportDirect)
}

// NewClusterTransport is NewCluster with an explicit worker transport.
// All transports produce bit-identical schedules; the mailbox exists
// for equivalence testing and for deployments that want worker actors.
func NewClusterTransport(eng *sim.Engine, node hw.Node, spec model.Spec, world int, tr Transport) (*Cluster, error) {
	if world > node.NumGPUs {
		return nil, fmt.Errorf("runtime: world %d exceeds node GPUs %d", world, node.NumGPUs)
	}
	cost, err := costmodel.New(node, spec)
	if err != nil {
		return nil, err
	}
	plan, err := model.Partition(spec, world)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Eng:  eng,
		Node: node,
		Cost: cost,
		Plan: plan,
		Rec:  metrics.NewRecorder(world),
	}
	for i := 0; i < world; i++ {
		gpu := sim.NewResource(eng, fmt.Sprintf("gpu%d", i))
		gpu.Observe(c.Rec.ObserverFor(i))
		c.GPUs = append(c.GPUs, gpu)
		if i < world-1 {
			c.Links = append(c.Links, sim.NewResource(eng, fmt.Sprintf("link%d-%d", i, i+1)))
		}
		var w Caller
		if tr == TransportMailbox {
			w = NewWorker()
		} else {
			w = NewDirectCaller()
		}
		if rep := w.Call(Init{Plan: plan, Rank: i, World: world, Cost: cost}); isErr(rep) {
			return nil, rep.(ErrorReply).Err
		}
		c.Workers = append(c.Workers, w)
	}
	return c, nil
}

// World returns the pipeline depth.
func (c *Cluster) World() int { return len(c.Workers) }

// SetSlowdown scales all subsequent stage compute times by f — the
// straggler knob of fault injection (f > 1 slows the node down). f <= 0
// or f == 1 restores nominal speed. Call before the simulation runs for
// a static straggler, or mid-run to model degradation windows.
func (c *Cluster) SetSlowdown(f float64) {
	if f == 1 {
		f = 0
	}
	c.slowdown = f
}

// Stall makes every GPU unavailable for dur seconds starting no earlier
// than at (later if a pass holds the device), without counting the span
// as busy compute — downtime, not work. Crash/restart and checkpoint
// serialization use it to push subsequent passes out in time.
func (c *Cluster) Stall(at sim.Time, dur float64) {
	if dur <= 0 {
		return
	}
	for _, g := range c.GPUs {
		from := g.FreeAt()
		if at > from {
			from = at
		}
		g.Occupy(from + sim.Time(dur))
	}
}

// Shutdown stops all workers (a no-op for direct endpoints, a goroutine
// join for mailbox workers).
func (c *Cluster) Shutdown() {
	for _, w := range c.Workers {
		w.Call(Shutdown{})
	}
}

func isErr(m Msg) bool {
	_, bad := m.(ErrorReply)
	return bad
}

// StageTask produces the control message for one stage of a pipeline
// pass. Schedulers supply it so each stage can carry stage-specific
// work (e.g. hybrid batches differ per stage only in timing).
type StageTask func(stage int) Msg

// PassResult reports the completion of a full pipeline pass.
type PassResult struct {
	// Start is when stage 0 began computing.
	Start sim.Time
	// End is when the last stage finished computing.
	End sim.Time
	// StageEnds are per-stage compute completion times. The slice is
	// recycled once the pass's completion callback returns; callbacks
	// that retain it past their own scope must copy it.
	StageEnds []sim.Time
}

// pass tracks one pipeline pass through the stages. Pass states are
// pooled on the cluster: recycled when the completion callback returns,
// so steady-state passes allocate nothing. Decode passes (the hot path)
// carry their spec by value instead of a StageTask, avoiding the
// per-step closure and message boxing.
type pass struct {
	c      *Cluster
	task   StageTask  // nil for decode-spec passes
	decode ExecDecode // used when task is nil
	onDone func(PassResult)
	res    PassResult
	next   *pass
}

// getPass takes a pass from the free list (or allocates one) and
// prepares its result buffer for the cluster's world size.
func (c *Cluster) getPass(task StageTask, onDone func(PassResult)) *pass {
	p := c.passFree
	if p == nil {
		p = &pass{c: c}
	} else {
		c.passFree = p.next
		p.next = nil
	}
	p.task, p.onDone = task, onDone
	if cap(p.res.StageEnds) < len(c.Workers) {
		p.res.StageEnds = make([]sim.Time, len(c.Workers))
	} else {
		p.res.StageEnds = p.res.StageEnds[:len(c.Workers)]
	}
	p.res.Start, p.res.End = 0, 0
	return p
}

// putPass recycles a completed pass.
func (c *Cluster) putPass(p *pass) {
	p.task, p.onDone = nil, nil
	p.next = c.passFree
	c.passFree = p
}

// SubmitPass runs one task through every pipeline stage in order,
// beginning no earlier than readyAt. Stage s+1 starts after stage s's
// compute completes and the activation crosses link s (the link is a
// separate resource, so the sender GPU is free during the transfer —
// asynchronous P2P). onDone, if non-nil, fires at the final stage's
// completion; the PassResult it receives shares a recycled StageEnds
// slice, valid only during the callback. SubmitPass returns
// immediately; all effects happen in virtual time.
//
// Stages are reserved eagerly in submission order, which preserves FIFO
// execution per GPU across interleaved passes — exactly the in-order
// launch queue a real stream gives you.
func (c *Cluster) SubmitPass(task StageTask, readyAt sim.Time, onDone func(PassResult)) {
	c.runStage(c.getPass(task, onDone), 0, readyAt)
}

// SubmitDecode is SubmitPass for one decode step, the scheduler's hot
// path: the spec travels by value in the pooled pass state, so a
// steady-state decode step allocates nothing at all.
func (c *Cluster) SubmitDecode(batch, kvTokens int, readyAt sim.Time, onDone func(PassResult)) {
	p := c.getPass(nil, onDone)
	p.decode = ExecDecode{BatchSize: batch, KVTokens: kvTokens}
	c.runStage(p, 0, readyAt)
}

// passNext continues a pass on its next stage once the activation has
// landed (scheduled via AtFunc: ctx is the pass, a the stage).
func passNext(ctx any, st, _ int) {
	p := ctx.(*pass)
	p.c.runStage(p, st, p.c.Eng.Now())
}

// passDone fires the completion callback and recycles the pass.
func passDone(ctx any, _, _ int) {
	p := ctx.(*pass)
	if p.onDone != nil {
		p.onDone(p.res)
	}
	p.c.putPass(p)
}

func (c *Cluster) runStage(p *pass, st int, arrival sim.Time) {
	var er ExecResult
	if p.task == nil {
		er = c.execDecode(st, p.decode)
	} else {
		er = c.exec(st, p.task(st))
	}
	if c.slowdown > 0 {
		er.Dur *= c.slowdown
	}
	start, end := c.GPUs[st].Acquire(arrival, er.Dur, nil)
	if st == 0 {
		p.res.Start = start
	}
	p.res.StageEnds[st] = end
	if st == c.World()-1 {
		p.res.End = end
		c.Eng.AtFunc(end, passDone, p, 0, 0)
		return
	}
	// Transfer occupies the link; compute of the next stage begins
	// when the payload lands.
	xfer := c.Cost.P2PActivation(er.SendTokens)
	xferReady := end
	if c.BlockingP2P {
		// Rendezvous send: wait for the receiver to drain its queue,
		// and stall the sender (unavailable, not busy) until the
		// payload is delivered.
		if recvFree := c.GPUs[st+1].FreeAt(); recvFree > xferReady {
			xferReady = recvFree
		}
	}
	_, landed := c.Links[st].Acquire(xferReady, xfer, nil)
	if c.BlockingP2P {
		c.GPUs[st].Occupy(landed)
	}
	c.Eng.AtFunc(landed, passNext, p, st+1, 0)
}

// execDecode routes one decode stage to its worker. On the direct
// transport neither the message nor the reply is boxed.
func (c *Cluster) execDecode(st int, spec ExecDecode) ExecResult {
	if d, ok := c.Workers[st].(*DirectCaller); ok {
		er, err := d.state.execDecode(spec)
		if err != nil {
			panic(fmt.Sprintf("runtime: stage %d worker error: %v", st, err))
		}
		return er
	}
	return c.exec(st, spec)
}

// exec routes one stage task to its worker. Direct endpoints skip the
// Msg boxing of the reply; every other transport goes through Call.
func (c *Cluster) exec(st int, msg Msg) ExecResult {
	if d, ok := c.Workers[st].(*DirectCaller); ok {
		er, err := d.state.exec(msg)
		if err != nil {
			panic(fmt.Sprintf("runtime: stage %d worker error: %v", st, err))
		}
		return er
	}
	rep := c.Workers[st].Call(msg)
	er, ok := rep.(ExecResult)
	if !ok {
		panic(fmt.Sprintf("runtime: stage %d worker error: %v", st, rep))
	}
	return er
}

// PrefillTask returns a StageTask for a prefill batch. The message is
// boxed once and shared by every stage of the pass.
func PrefillTask(b costmodel.PrefillBatch) StageTask {
	msg := Msg(ExecPrefill{Batch: b})
	return func(int) Msg { return msg }
}

// DecodeTask returns a StageTask for one decode step.
func DecodeTask(batch, kvTokens int) StageTask {
	msg := Msg(ExecDecode{BatchSize: batch, KVTokens: kvTokens})
	return func(int) Msg { return msg }
}

// HybridTask returns a StageTask for a hybrid iteration.
func HybridTask(decodeBatch, kvTokens, chunkTokens, chunkCtx int) StageTask {
	msg := Msg(ExecHybrid{DecodeBatch: decodeBatch, KVTokens: kvTokens, ChunkTokens: chunkTokens, ChunkCtx: chunkCtx})
	return func(int) Msg { return msg }
}
