package runtime

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/sim"
)

// Cluster binds a pipeline of workers to simulated GPU and link
// resources. Schedulers submit per-stage tasks; the cluster routes them
// through worker actors for timing and chains the stages with
// asynchronous point-to-point transfers.
type Cluster struct {
	Eng  *sim.Engine
	Node hw.Node
	Cost *costmodel.Model
	Plan model.PipelinePlan

	// Workers are the execution-plane endpoints. They are Callers so
	// the control plane can talk to them through any transport — the
	// in-process mailbox (NewWorker) or net/rpc (package rpc).
	Workers []Caller
	// GPUs[i] serializes compute on device i.
	GPUs []*sim.Resource
	// Links[i] serializes the i -> i+1 activation channel.
	Links []*sim.Resource
	// Rec records busy intervals for utilization metrics.
	Rec *metrics.Recorder

	// BlockingP2P switches stage-to-stage transfers to the blocking
	// rendezvous style of stock vLLM pipeline parallelism (§3.2): a
	// send waits for the receiver to be free and stalls the sender
	// until delivery. TD-Pipe's hierarchy-controller leaves this
	// false — transfers are asynchronous and the sender GPU is
	// released at compute end.
	BlockingP2P bool
}

// NewCluster builds a world-size pipeline over the node's GPUs, spawns
// and initializes the worker actors, and wires busy-interval recording.
func NewCluster(eng *sim.Engine, node hw.Node, spec model.Spec, world int) (*Cluster, error) {
	if world > node.NumGPUs {
		return nil, fmt.Errorf("runtime: world %d exceeds node GPUs %d", world, node.NumGPUs)
	}
	cost, err := costmodel.New(node, spec)
	if err != nil {
		return nil, err
	}
	plan, err := model.Partition(spec, world)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		Eng:  eng,
		Node: node,
		Cost: cost,
		Plan: plan,
		Rec:  metrics.NewRecorder(world),
	}
	for i := 0; i < world; i++ {
		gpu := sim.NewResource(eng, fmt.Sprintf("gpu%d", i))
		gpu.Observe(c.Rec.ObserverFor(i))
		c.GPUs = append(c.GPUs, gpu)
		if i < world-1 {
			c.Links = append(c.Links, sim.NewResource(eng, fmt.Sprintf("link%d-%d", i, i+1)))
		}
		w := NewWorker()
		if rep := w.Call(Init{Plan: plan, Rank: i, World: world, Cost: cost}); isErr(rep) {
			return nil, rep.(ErrorReply).Err
		}
		c.Workers = append(c.Workers, w)
	}
	return c, nil
}

// World returns the pipeline depth.
func (c *Cluster) World() int { return len(c.Workers) }

// Shutdown stops all worker goroutines.
func (c *Cluster) Shutdown() {
	for _, w := range c.Workers {
		w.Call(Shutdown{})
	}
}

func isErr(m Msg) bool {
	_, bad := m.(ErrorReply)
	return bad
}

// StageTask produces the control message for one stage of a pipeline
// pass. Schedulers supply it so each stage can carry stage-specific
// work (e.g. hybrid batches differ per stage only in timing).
type StageTask func(stage int) Msg

// PassResult reports the completion of a full pipeline pass.
type PassResult struct {
	// Start is when stage 0 began computing.
	Start sim.Time
	// End is when the last stage finished computing.
	End sim.Time
	// StageEnds are per-stage compute completion times.
	StageEnds []sim.Time
}

// SubmitPass runs one task through every pipeline stage in order,
// beginning no earlier than readyAt. Stage s+1 starts after stage s's
// compute completes and the activation crosses link s (the link is a
// separate resource, so the sender GPU is free during the transfer —
// asynchronous P2P). onDone, if non-nil, fires at the final stage's
// completion. SubmitPass returns immediately; all effects happen in
// virtual time.
//
// Stages are reserved eagerly in submission order, which preserves FIFO
// execution per GPU across interleaved passes — exactly the in-order
// launch queue a real stream gives you.
func (c *Cluster) SubmitPass(task StageTask, readyAt sim.Time, onDone func(PassResult)) {
	res := PassResult{StageEnds: make([]sim.Time, c.World())}
	c.runStage(task, 0, readyAt, &res, onDone)
}

func (c *Cluster) runStage(task StageTask, st int, arrival sim.Time, res *PassResult, onDone func(PassResult)) {
	rep := c.Workers[st].Call(task(st))
	er, ok := rep.(ExecResult)
	if !ok {
		panic(fmt.Sprintf("runtime: stage %d worker error: %v", st, rep))
	}
	start, end := c.GPUs[st].Acquire(arrival, er.Dur, nil)
	if st == 0 {
		res.Start = start
	}
	res.StageEnds[st] = end
	if st == c.World()-1 {
		res.End = end
		if onDone != nil {
			c.Eng.At(end, func() { onDone(*res) })
		}
		return
	}
	// Transfer occupies the link; compute of the next stage begins
	// when the payload lands.
	xfer := c.Cost.P2PActivation(er.SendTokens)
	xferReady := end
	if c.BlockingP2P {
		// Rendezvous send: wait for the receiver to drain its queue,
		// and stall the sender (unavailable, not busy) until the
		// payload is delivered.
		if recvFree := c.GPUs[st+1].FreeAt(); recvFree > xferReady {
			xferReady = recvFree
		}
	}
	_, landed := c.Links[st].Acquire(xferReady, xfer, nil)
	if c.BlockingP2P {
		c.GPUs[st].Occupy(landed)
	}
	c.Eng.At(landed, func() {
		c.runStage(task, st+1, landed, res, onDone)
	})
}

// PrefillTask returns a StageTask for a prefill batch.
func PrefillTask(b costmodel.PrefillBatch) StageTask {
	return func(int) Msg { return ExecPrefill{Batch: b} }
}

// DecodeTask returns a StageTask for one decode step.
func DecodeTask(batch, kvTokens int) StageTask {
	return func(int) Msg { return ExecDecode{BatchSize: batch, KVTokens: kvTokens} }
}

// HybridTask returns a StageTask for a hybrid iteration.
func HybridTask(decodeBatch, kvTokens, chunkTokens, chunkCtx int) StageTask {
	return func(int) Msg {
		return ExecHybrid{DecodeBatch: decodeBatch, KVTokens: kvTokens, ChunkTokens: chunkTokens, ChunkCtx: chunkCtx}
	}
}
