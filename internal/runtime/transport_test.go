package runtime

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sim"
)

// The direct (zero-roundtrip) transport must be observationally
// identical to the goroutine mailbox: same replies for every message.
func TestDirectCallerEquivalentToMailbox(t *testing.T) {
	plan, err := model.Partition(model.Tiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := costmodel.New(hw.L20, model.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < 2; rank++ {
		direct := NewDirectCaller()
		mailbox := NewWorker()
		defer mailbox.Call(Shutdown{})
		init := Init{Plan: plan, Rank: rank, World: 2, Cost: cm}
		d1, d2 := direct.Call(init), mailbox.Call(init)
		if d1 != d2 {
			t.Fatalf("init replies differ: %#v vs %#v", d1, d2)
		}
		tasks := []Msg{
			ExecPrefill{Batch: costmodel.NewPrefillBatch([]int{64, 128})},
			ExecDecode{BatchSize: 16, KVTokens: 1600},
			ExecChunked{ChunkTokens: 32, CtxTokens: 64},
			ExecHybrid{DecodeBatch: 8, KVTokens: 800, ChunkTokens: 16, ChunkCtx: 32},
		}
		for _, task := range tasks {
			r1 := direct.Call(task)
			r2 := mailbox.Call(task)
			e1, ok1 := r1.(ExecResult)
			e2, ok2 := r2.(ExecResult)
			if !ok1 || !ok2 {
				t.Fatalf("replies %#v vs %#v", r1, r2)
			}
			if math.Abs(e1.Dur-e2.Dur) != 0 || e1.SendTokens != e2.SendTokens {
				t.Errorf("%T: direct %+v != mailbox %+v", task, e1, e2)
			}
		}
	}
}

// Direct endpoints report errors the same way the mailbox does.
func TestDirectCallerErrors(t *testing.T) {
	d := NewDirectCaller()
	if rep := d.Call(ExecDecode{BatchSize: 1, KVTokens: 1}); !isErr(rep) {
		t.Errorf("exec before init replied %#v", rep)
	}
	plan, _ := model.Partition(model.Tiny, 2)
	cm, _ := costmodel.New(hw.L20, model.Tiny)
	if rep := d.Call(Init{Plan: plan, Rank: 5, World: 2, Cost: cm}); !isErr(rep) {
		t.Errorf("bad rank accepted: %#v", rep)
	}
	if rep := d.Call(Ack{}); !isErr(rep) {
		t.Errorf("unknown message replied %#v", rep)
	}
	if _, ok := d.Call(Shutdown{}).(Ack); !ok {
		t.Error("shutdown not acknowledged")
	}
}

// A cluster on the mailbox transport produces the exact same schedule
// as the default direct cluster, for both task-based and decode-spec
// passes.
func TestClusterScheduleIdenticalAcrossTransports(t *testing.T) {
	run := func(tr Transport) (prefillEnd, decodeEnd sim.Time) {
		eng := sim.NewEngine()
		c, err := NewClusterTransport(eng, hw.L20, model.Tiny, 4, tr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		c.SubmitPass(PrefillTask(costmodel.NewPrefillBatch([]int{256, 64})), 0, func(r PassResult) {
			prefillEnd = r.End
			c.SubmitDecode(4, 1280, r.End, func(r2 PassResult) { decodeEnd = r2.End })
		})
		eng.Run()
		return prefillEnd, decodeEnd
	}
	p1, d1 := run(TransportDirect)
	p2, d2 := run(TransportMailbox)
	if p1 != p2 || d1 != d2 {
		t.Errorf("schedules differ: direct (%v, %v) vs mailbox (%v, %v)", p1, d1, p2, d2)
	}
	if d1 <= p1 || p1 <= 0 {
		t.Errorf("implausible schedule: prefill end %v, decode end %v", p1, d1)
	}
}

// SubmitDecode must time exactly like the equivalent DecodeTask pass —
// it is an allocation optimization, not a semantic change.
func TestSubmitDecodeMatchesDecodeTask(t *testing.T) {
	run := func(useSpec bool) sim.Time {
		eng := sim.NewEngine()
		c, err := NewCluster(eng, hw.L20, model.Tiny, 3)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		var end sim.Time
		done := func(r PassResult) { end = r.End }
		if useSpec {
			c.SubmitDecode(8, 960, 0, done)
		} else {
			c.SubmitPass(DecodeTask(8, 960), 0, done)
		}
		eng.Run()
		return end
	}
	if a, b := run(true), run(false); a != b || a <= 0 {
		t.Errorf("SubmitDecode end %v != DecodeTask end %v", a, b)
	}
}

// Interleaved pooled passes must not share result state: two
// overlapping passes completing at different times keep distinct
// StageEnds during their callbacks.
func TestPooledPassesDoNotAlias(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCluster(eng, hw.L20, model.Tiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	type seen struct {
		start, end sim.Time
		stages     []sim.Time
	}
	var got []seen
	capture := func(r PassResult) {
		s := seen{start: r.Start, end: r.End}
		s.stages = append(s.stages, r.StageEnds...) // copy: recycled after return
		got = append(got, s)
	}
	for i := 0; i < 4; i++ {
		c.SubmitDecode(4+i, 400, 0, capture)
	}
	eng.Run()
	if len(got) != 4 {
		t.Fatalf("completed %d of 4 passes", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].end <= got[i-1].end {
			t.Errorf("pass %d ended at %v, not after pass %d at %v", i, got[i].end, i-1, got[i-1].end)
		}
		if got[i].stages[1] != got[i].end {
			t.Errorf("pass %d stage end %v != end %v", i, got[i].stages[1], got[i].end)
		}
	}
}
