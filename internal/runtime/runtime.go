// Package runtime implements the paper's distributed runtime — the
// execution plane of the hierarchy-controller structure (§3.2). Each
// GPU is served by a worker endpoint; the centralized engine (the
// control plane, package core) sends typed control messages and
// receives typed replies, never touching worker state directly. Workers
// know only their own stage, their rank in the global communication
// context, and which neighbour they send activations to — the SPMD
// property of §3.2.2.
//
// Three transports implement the control plane's Caller view of a
// worker: DirectCaller dispatches messages as plain method calls (no
// goroutine, no channel — the zero-roundtrip default for simulation),
// Worker runs a goroutine actor with a channel mailbox, and package rpc
// carries the same messages over net/rpc. All three are observationally
// identical; the mailbox and RPC transports model the deployment shapes
// the paper describes.
//
// Virtual time lives in the simulation kernel: a worker computes how
// long a task runs (via the cost model, standing in for the GPU), and
// the cluster schedules that duration on the GPU's resource. Transfers
// occupy a separate link resource, so computation is released before
// the activation lands on the next stage — the "unblocked transmission"
// the hierarchy-controller exists to enable.
package runtime

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/model"
)

// Msg is a control-plane message.
type Msg interface{ isMsg() }

// Init configures a worker with its model slice and comm context.
type Init struct {
	Plan  model.PipelinePlan
	Rank  int
	World int
	Cost  *costmodel.Model
}

// InitAck reports the worker's resident weight bytes.
type InitAck struct {
	Rank        int
	WeightBytes float64
}

// ExecPrefill asks a worker to run its layers over a prefill batch.
type ExecPrefill struct {
	Batch costmodel.PrefillBatch
}

// ExecDecode asks a worker to run one decode step.
type ExecDecode struct {
	BatchSize int
	KVTokens  int
}

// ExecChunked asks a worker to run a chunked-prefill piece.
type ExecChunked struct {
	ChunkTokens int
	CtxTokens   int
}

// ExecHybrid asks a worker to run a hybrid (decode + prefill chunk)
// iteration.
type ExecHybrid struct {
	DecodeBatch int
	KVTokens    int
	ChunkTokens int
	ChunkCtx    int
}

// ExecResult reports a task duration and the activation payload the
// worker forwards to its pipeline neighbour (0 for the last stage).
type ExecResult struct {
	Rank       int
	Dur        float64
	SendTokens int
}

// Shutdown stops the worker goroutine.
type Shutdown struct{}

// Ack is the empty successful reply.
type Ack struct{}

// ErrorReply carries a worker-side failure.
type ErrorReply struct{ Err error }

func (Init) isMsg()        {}
func (InitAck) isMsg()     {}
func (ExecPrefill) isMsg() {}
func (ExecDecode) isMsg()  {}
func (ExecChunked) isMsg() {}
func (ExecHybrid) isMsg()  {}
func (ExecResult) isMsg()  {}
func (Shutdown) isMsg()    {}
func (Ack) isMsg()         {}
func (ErrorReply) isMsg()  {}

// Caller is the control plane's view of a worker endpoint: send one
// control message, get one reply. Implemented by *DirectCaller (plain
// method calls), *Worker (in-process mailbox) and by the RPC client in
// package rpc.
type Caller interface {
	Call(Msg) Msg
}

// workerState is the execution-plane logic, independent of transport.
// Every transport routes messages to exactly one workerState, which is
// mutated only by Init, so the one-message-at-a-time discipline of the
// control plane keeps it race-free on all transports.
type workerState struct {
	rank  int
	world int
	plan  model.PipelinePlan
	cost  *costmodel.Model
	ready bool
}

// handle processes one control message and produces its reply.
func (w *workerState) handle(msg Msg) Msg {
	switch m := msg.(type) {
	case Init:
		if m.Rank < 0 || m.Rank >= m.World || m.World != len(m.Plan.Stages) {
			return ErrorReply{fmt.Errorf("runtime: bad init rank=%d world=%d stages=%d", m.Rank, m.World, len(m.Plan.Stages))}
		}
		w.rank, w.world, w.plan, w.cost = m.Rank, m.World, m.Plan, m.Cost
		w.ready = true
		return InitAck{Rank: w.rank, WeightBytes: w.plan.StageWeightBytes(w.rank)}
	case ExecPrefill, ExecDecode, ExecChunked, ExecHybrid:
		er, err := w.exec(msg)
		if err != nil {
			return ErrorReply{err}
		}
		return er
	case Shutdown:
		return Ack{}
	default:
		return ErrorReply{fmt.Errorf("runtime: unknown message %T", msg)}
	}
}

// exec runs one execution message without boxing the result into a Msg
// — the hot path the direct transport calls per pipeline stage.
func (w *workerState) exec(msg Msg) (ExecResult, error) {
	if !w.ready {
		return ExecResult{}, fmt.Errorf("runtime: exec before init")
	}
	switch m := msg.(type) {
	case ExecPrefill:
		return ExecResult{
			Rank:       w.rank,
			Dur:        w.cost.PrefillStage(w.plan, w.rank, m.Batch),
			SendTokens: w.sendTokens(m.Batch.Tokens),
		}, nil
	case ExecDecode:
		return w.execDecode(m)
	case ExecChunked:
		return ExecResult{
			Rank:       w.rank,
			Dur:        w.cost.ChunkedPrefillStage(w.plan, w.rank, m.ChunkTokens, m.CtxTokens),
			SendTokens: w.sendTokens(m.ChunkTokens),
		}, nil
	case ExecHybrid:
		return ExecResult{
			Rank:       w.rank,
			Dur:        w.cost.HybridStage(w.plan, w.rank, m.DecodeBatch, m.KVTokens, m.ChunkTokens, m.ChunkCtx),
			SendTokens: w.sendTokens(m.DecodeBatch + m.ChunkTokens),
		}, nil
	default:
		return ExecResult{}, fmt.Errorf("runtime: not an exec message %T", msg)
	}
}

// execDecode runs one decode step without any interface traffic — the
// per-token hot path of the whole simulator.
func (w *workerState) execDecode(m ExecDecode) (ExecResult, error) {
	if !w.ready {
		return ExecResult{}, fmt.Errorf("runtime: exec before init")
	}
	return ExecResult{
		Rank:       w.rank,
		Dur:        w.cost.DecodeStage(w.plan, w.rank, m.BatchSize, m.KVTokens),
		SendTokens: w.sendTokens(m.BatchSize),
	}, nil
}

// sendTokens returns the activation tokens forwarded downstream, or 0 on
// the last stage (its output goes back to the engine as metadata, which
// the paper treats as negligible RPC traffic).
func (w *workerState) sendTokens(tokens int) int {
	if w.rank == w.world-1 {
		return 0
	}
	return tokens
}

// DirectCaller is the zero-roundtrip in-process transport: control
// messages dispatch as plain method calls on worker state owned by the
// calling goroutine — no goroutine, no channel, no scheduler crossing.
// It is the Cluster default. The simulation's single-threaded event
// loop already serializes control messages, so the mailbox's queueing
// buys nothing there; keep Worker or package rpc for actor-style or
// cross-process deployments.
type DirectCaller struct {
	state workerState
}

// NewDirectCaller returns an uninitialized direct worker endpoint; send
// Init before exec messages, as with every transport.
func NewDirectCaller() *DirectCaller { return &DirectCaller{} }

// Call dispatches msg synchronously on the caller's goroutine.
func (d *DirectCaller) Call(msg Msg) Msg { return d.state.handle(msg) }

// call pairs a message with its reply channel.
type call struct {
	msg   Msg
	reply chan Msg
}

// Worker is one execution-plane actor: the mailbox transport. Each
// worker owns a goroutine that drains a channel of control messages.
type Worker struct {
	inbox chan call
	state workerState
}

// NewWorker starts a worker goroutine and returns its handle.
func NewWorker() *Worker {
	w := &Worker{inbox: make(chan call)}
	//det:ignore goroutine mailbox transport is an explicit actor boundary; one worker drains one channel so message order is the caller's call order
	go w.loop()
	return w
}

// Call sends msg and blocks until the worker replies. Messages are
// processed strictly one at a time, so interaction remains
// deterministic under the simulation's single-threaded event loop.
func (w *Worker) Call(msg Msg) Msg {
	c := call{msg: msg, reply: make(chan Msg)}
	w.inbox <- c
	return <-c.reply
}

func (w *Worker) loop() {
	for c := range w.inbox {
		reply := w.state.handle(c.msg)
		c.reply <- reply
		if _, stop := c.msg.(Shutdown); stop {
			return
		}
	}
}
