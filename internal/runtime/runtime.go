// Package runtime implements the paper's distributed runtime — the
// execution plane of the hierarchy-controller structure (§3.2). Each
// GPU is served by a worker actor running in its own goroutine with a
// channel mailbox; the centralized engine (the control plane, package
// core) sends typed control messages and receives typed replies, never
// touching worker state directly. Workers know only their own stage,
// their rank in the global communication context, and which neighbour
// they send activations to — the SPMD property of §3.2.2.
//
// Virtual time lives in the simulation kernel: a worker computes how
// long a task runs (via the cost model, standing in for the GPU), and
// the cluster schedules that duration on the GPU's resource. Transfers
// occupy a separate link resource, so computation is released before
// the activation lands on the next stage — the "unblocked transmission"
// the hierarchy-controller exists to enable.
package runtime

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/model"
)

// Msg is a control-plane message.
type Msg interface{ isMsg() }

// Init configures a worker with its model slice and comm context.
type Init struct {
	Plan  model.PipelinePlan
	Rank  int
	World int
	Cost  *costmodel.Model
}

// InitAck reports the worker's resident weight bytes.
type InitAck struct {
	Rank        int
	WeightBytes float64
}

// ExecPrefill asks a worker to run its layers over a prefill batch.
type ExecPrefill struct {
	Batch costmodel.PrefillBatch
}

// ExecDecode asks a worker to run one decode step.
type ExecDecode struct {
	BatchSize int
	KVTokens  int
}

// ExecChunked asks a worker to run a chunked-prefill piece.
type ExecChunked struct {
	ChunkTokens int
	CtxTokens   int
}

// ExecHybrid asks a worker to run a hybrid (decode + prefill chunk)
// iteration.
type ExecHybrid struct {
	DecodeBatch int
	KVTokens    int
	ChunkTokens int
	ChunkCtx    int
}

// ExecResult reports a task duration and the activation payload the
// worker forwards to its pipeline neighbour (0 for the last stage).
type ExecResult struct {
	Rank       int
	Dur        float64
	SendTokens int
}

// Shutdown stops the worker goroutine.
type Shutdown struct{}

// Ack is the empty successful reply.
type Ack struct{}

// ErrorReply carries a worker-side failure.
type ErrorReply struct{ Err error }

func (Init) isMsg()        {}
func (InitAck) isMsg()     {}
func (ExecPrefill) isMsg() {}
func (ExecDecode) isMsg()  {}
func (ExecChunked) isMsg() {}
func (ExecHybrid) isMsg()  {}
func (ExecResult) isMsg()  {}
func (Shutdown) isMsg()    {}
func (Ack) isMsg()         {}
func (ErrorReply) isMsg()  {}

// Caller is the control plane's view of a worker endpoint: send one
// control message, get one reply. Implemented by *Worker (in-process
// mailbox) and by the RPC client in package rpc.
type Caller interface {
	Call(Msg) Msg
}

// call pairs a message with its reply channel.
type call struct {
	msg   Msg
	reply chan Msg
}

// Worker is one execution-plane actor.
type Worker struct {
	inbox chan call

	// Worker-local state, owned by the worker goroutine after start.
	rank  int
	world int
	plan  model.PipelinePlan
	cost  *costmodel.Model
	ready bool
}

// NewWorker starts a worker goroutine and returns its handle.
func NewWorker() *Worker {
	w := &Worker{inbox: make(chan call)}
	go w.loop()
	return w
}

// Call sends msg and blocks until the worker replies. Messages are
// processed strictly one at a time, so interaction remains
// deterministic under the simulation's single-threaded event loop.
func (w *Worker) Call(msg Msg) Msg {
	c := call{msg: msg, reply: make(chan Msg)}
	w.inbox <- c
	return <-c.reply
}

func (w *Worker) loop() {
	for c := range w.inbox {
		reply := w.handle(c.msg)
		c.reply <- reply
		if _, stop := c.msg.(Shutdown); stop {
			return
		}
	}
}

func (w *Worker) handle(msg Msg) Msg {
	switch m := msg.(type) {
	case Init:
		if m.Rank < 0 || m.Rank >= m.World || m.World != len(m.Plan.Stages) {
			return ErrorReply{fmt.Errorf("runtime: bad init rank=%d world=%d stages=%d", m.Rank, m.World, len(m.Plan.Stages))}
		}
		w.rank, w.world, w.plan, w.cost = m.Rank, m.World, m.Plan, m.Cost
		w.ready = true
		return InitAck{Rank: w.rank, WeightBytes: w.plan.StageWeightBytes(w.rank)}
	case ExecPrefill:
		if !w.ready {
			return ErrorReply{fmt.Errorf("runtime: exec before init")}
		}
		return ExecResult{
			Rank:       w.rank,
			Dur:        w.cost.PrefillStage(w.plan, w.rank, m.Batch),
			SendTokens: w.sendTokens(m.Batch.Tokens),
		}
	case ExecDecode:
		if !w.ready {
			return ErrorReply{fmt.Errorf("runtime: exec before init")}
		}
		return ExecResult{
			Rank:       w.rank,
			Dur:        w.cost.DecodeStage(w.plan, w.rank, m.BatchSize, m.KVTokens),
			SendTokens: w.sendTokens(m.BatchSize),
		}
	case ExecChunked:
		if !w.ready {
			return ErrorReply{fmt.Errorf("runtime: exec before init")}
		}
		return ExecResult{
			Rank:       w.rank,
			Dur:        w.cost.ChunkedPrefillStage(w.plan, w.rank, m.ChunkTokens, m.CtxTokens),
			SendTokens: w.sendTokens(m.ChunkTokens),
		}
	case ExecHybrid:
		if !w.ready {
			return ErrorReply{fmt.Errorf("runtime: exec before init")}
		}
		return ExecResult{
			Rank:       w.rank,
			Dur:        w.cost.HybridStage(w.plan, w.rank, m.DecodeBatch, m.KVTokens, m.ChunkTokens, m.ChunkCtx),
			SendTokens: w.sendTokens(m.DecodeBatch + m.ChunkTokens),
		}
	case Shutdown:
		return Ack{}
	default:
		return ErrorReply{fmt.Errorf("runtime: unknown message %T", msg)}
	}
}

// sendTokens returns the activation tokens forwarded downstream, or 0 on
// the last stage (its output goes back to the engine as metadata, which
// the paper treats as negligible RPC traffic).
func (w *Worker) sendTokens(tokens int) int {
	if w.rank == w.world-1 {
		return 0
	}
	return tokens
}
