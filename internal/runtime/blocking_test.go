package runtime

import (
	"testing"

	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/sim"
)

// Blocking-P2P mode (the stock-vLLM behaviour the baselines use) must
// stall the sender until delivery and delay delivery until the receiver
// is free — and asynchronous mode must not.
func TestBlockingP2PStallsSender(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCluster(eng, hw.L20, model.Tiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	c.BlockingP2P = true

	var res PassResult
	c.SubmitPass(PrefillTask(costmodel.NewPrefillBatch([]int{512})), 0, func(r PassResult) { res = r })
	eng.Run()

	// Sender GPU must be occupied through the transfer.
	xfer := c.Cost.P2PActivation(512)
	wantFree := res.StageEnds[0] + sim.Time(xfer)
	if got := c.GPUs[0].FreeAt(); got < wantFree {
		t.Errorf("blocking sender free at %v, want >= %v (stalled through transfer)", got, wantFree)
	}
}

func TestBlockingP2PWaitsForReceiver(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCluster(eng, hw.L20, model.Tiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	c.BlockingP2P = true

	// Occupy the receiver so the first pass's transfer must wait.
	busyUntil := sim.Time(10.0)
	c.GPUs[1].Acquire(0, float64(busyUntil), nil)

	var res PassResult
	c.SubmitPass(PrefillTask(costmodel.NewPrefillBatch([]int{64})), 0, func(r PassResult) { res = r })
	eng.Run()
	if res.StageEnds[1] <= busyUntil {
		t.Errorf("stage 1 finished at %v despite receiver busy until %v", res.StageEnds[1], busyUntil)
	}
	// The sender must have been held until at least the rendezvous.
	if got := c.GPUs[0].FreeAt(); got < busyUntil {
		t.Errorf("sender released at %v before receiver freed at %v", got, busyUntil)
	}
}

// A worker that was never initialized makes SubmitPass panic — a
// programming error surfaced loudly rather than silently mistimed.
func TestSubmitPassPanicsOnBrokenWorker(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCluster(eng, hw.L20, model.Tiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	// Sabotage: replace worker 1 with an uninitialized one.
	old := c.Workers[1]
	c.Workers[1] = NewWorker()
	defer func() {
		c.Workers[1].Call(Shutdown{})
		c.Workers[1] = old
		if recover() == nil {
			t.Error("broken worker did not panic")
		}
	}()
	c.SubmitPass(DecodeTask(4, 40), 0, nil)
	eng.Run()
}

// Shutdown must terminate worker goroutines: further Calls would hang,
// so we only verify the Ack.
func TestWorkerShutdownAck(t *testing.T) {
	w := NewWorker()
	if _, ok := w.Call(Shutdown{}).(Ack); !ok {
		t.Error("shutdown not acknowledged")
	}
}

// Workers process messages strictly in order even under rapid calls.
func TestWorkerSerializesCalls(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCluster(eng, hw.A100, model.Llama2_70B, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	w := c.Workers[2]
	prev := -1.0
	for i := 1; i <= 50; i++ {
		rep := w.Call(ExecDecode{BatchSize: i, KVTokens: i * 100})
		er, ok := rep.(ExecResult)
		if !ok {
			t.Fatalf("call %d: %#v", i, rep)
		}
		if er.Dur <= prev {
			t.Fatalf("durations not increasing with batch: %v after %v", er.Dur, prev)
		}
		prev = er.Dur
	}
}
