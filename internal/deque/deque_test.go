package deque

import (
	"math/rand"
	"testing"
)

func TestPushPopFIFO(t *testing.T) {
	var d Int
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 0; i < 100; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("pop %d = %d", i, got)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("len = %d after drain", d.Len())
	}
}

func TestPushFrontOrdering(t *testing.T) {
	var d Int
	d.PushBack(1)
	d.PushBack(2)
	d.PushFront(0)
	want := []int{0, 1, 2}
	for i, w := range want {
		if got := d.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
	if d.Front() != 0 {
		t.Fatalf("front = %d", d.Front())
	}
}

// The deque must behave exactly like a slice used with the engines'
// access pattern: PushBack, PushFront, PopFront, At, under wrap-around
// and growth.
func TestMatchesSliceReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var d Int
	var ref []int
	for op := 0; op < 20000; op++ {
		switch rng.Intn(4) {
		case 0, 1: // bias toward growth
			v := rng.Intn(1000)
			d.PushBack(v)
			ref = append(ref, v)
		case 2:
			v := rng.Intn(1000)
			d.PushFront(v)
			ref = append([]int{v}, ref...)
		case 3:
			if len(ref) == 0 {
				continue
			}
			got := d.PopFront()
			want := ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("op %d: pop = %d, want %d", op, got, want)
			}
		}
		if d.Len() != len(ref) {
			t.Fatalf("op %d: len = %d, want %d", op, d.Len(), len(ref))
		}
		if len(ref) > 0 {
			i := rng.Intn(len(ref))
			if d.At(i) != ref[i] {
				t.Fatalf("op %d: At(%d) = %d, want %d", op, i, d.At(i), ref[i])
			}
		}
	}
}

func TestResetKeepsBuffer(t *testing.T) {
	var d Int
	for i := 0; i < 64; i++ {
		d.PushBack(i)
	}
	d.Reset()
	if d.Len() != 0 {
		t.Fatalf("len = %d after reset", d.Len())
	}
	d.PushBack(7)
	if d.Front() != 7 || d.Len() != 1 {
		t.Fatalf("reuse after reset: front=%d len=%d", d.Front(), d.Len())
	}
}

func TestEmptyPanics(t *testing.T) {
	var d Int
	for name, fn := range map[string]func(){
		"Front":    func() { d.Front() },
		"PopFront": func() { d.PopFront() },
		"At":       func() { d.At(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty deque did not panic", name)
				}
			}()
			fn()
		}()
	}
}
