package deque

import (
	"math/rand"
	"testing"
)

func TestPushPopFIFO(t *testing.T) {
	var d Int
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	if d.Len() != 100 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := 0; i < 100; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("pop %d = %d", i, got)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("len = %d after drain", d.Len())
	}
}

func TestPushFrontOrdering(t *testing.T) {
	var d Int
	d.PushBack(1)
	d.PushBack(2)
	d.PushFront(0)
	want := []int{0, 1, 2}
	for i, w := range want {
		if got := d.At(i); got != w {
			t.Fatalf("At(%d) = %d, want %d", i, got, w)
		}
	}
	if d.Front() != 0 {
		t.Fatalf("front = %d", d.Front())
	}
}

// The deque must behave exactly like a slice used with the engines'
// access pattern: PushBack, PushFront, PopFront, At, under wrap-around
// and growth.
func TestMatchesSliceReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var d Int
	var ref []int
	for op := 0; op < 20000; op++ {
		switch rng.Intn(4) {
		case 0, 1: // bias toward growth
			v := rng.Intn(1000)
			d.PushBack(v)
			ref = append(ref, v)
		case 2:
			v := rng.Intn(1000)
			d.PushFront(v)
			ref = append([]int{v}, ref...)
		case 3:
			if len(ref) == 0 {
				continue
			}
			got := d.PopFront()
			want := ref[0]
			ref = ref[1:]
			if got != want {
				t.Fatalf("op %d: pop = %d, want %d", op, got, want)
			}
		}
		if d.Len() != len(ref) {
			t.Fatalf("op %d: len = %d, want %d", op, d.Len(), len(ref))
		}
		if len(ref) > 0 {
			i := rng.Intn(len(ref))
			if d.At(i) != ref[i] {
				t.Fatalf("op %d: At(%d) = %d, want %d", op, i, d.At(i), ref[i])
			}
		}
	}
}

// After a burst drains, the backing array must decay instead of
// retaining the high-water capacity for the rest of a long online run —
// and the shrink must lose no queued elements on the way down.
func TestCapacityDecaysAfterBurst(t *testing.T) {
	const burst = 1 << 14
	var d Int
	for i := 0; i < burst; i++ {
		d.PushBack(i)
	}
	peak := d.Cap()
	if peak < burst {
		t.Fatalf("cap = %d after %d pushes", peak, burst)
	}
	// Drain to a small steady-state residue, checking FIFO order.
	const keep = 3
	for i := 0; i < burst-keep; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("pop %d = %d during drain", i, got)
		}
	}
	if d.Cap() >= peak {
		t.Fatalf("cap = %d did not decay from burst peak %d", d.Cap(), peak)
	}
	if d.Cap() > 4*minCap {
		t.Errorf("cap = %d retained after draining to %d elements", d.Cap(), keep)
	}
	for i := 0; i < keep; i++ {
		if got := d.PopFront(); got != burst-keep+i {
			t.Fatalf("residue pop = %d, want %d", got, burst-keep+i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("len = %d after full drain", d.Len())
	}
	// The floor holds: tiny queues never shrink below minCap.
	d.PushBack(1)
	d.PopFront()
	if d.Cap() != minCap {
		t.Errorf("cap = %d at steady state, want the %d floor", d.Cap(), minCap)
	}
}

// Oscillating across a power-of-two boundary must not resize on every
// operation (the quarter-occupancy hysteresis).
func TestShrinkHysteresis(t *testing.T) {
	var d Int
	for i := 0; i < minCap*4+1; i++ {
		d.PushBack(i)
	}
	d.PopFront()
	c := d.Cap()
	// Length now c/2: alternating push/pop stays well above the
	// quarter threshold and below capacity, so it must not move.
	for i := 0; i < 1000; i++ {
		d.PushBack(i)
		d.PopFront()
		if d.Cap() != c {
			t.Fatalf("op %d: cap changed %d -> %d at occupancy %d", i, c, d.Cap(), d.Len())
		}
	}
}

func TestResetKeepsBuffer(t *testing.T) {
	var d Int
	for i := 0; i < 64; i++ {
		d.PushBack(i)
	}
	d.Reset()
	if d.Len() != 0 {
		t.Fatalf("len = %d after reset", d.Len())
	}
	d.PushBack(7)
	if d.Front() != 7 || d.Len() != 1 {
		t.Fatalf("reuse after reset: front=%d len=%d", d.Front(), d.Len())
	}
}

func TestEmptyPanics(t *testing.T) {
	var d Int
	for name, fn := range map[string]func(){
		"Front":    func() { d.Front() },
		"PopFront": func() { d.PopFront() },
		"At":       func() { d.At(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty deque did not panic", name)
				}
			}()
			fn()
		}()
	}
}
