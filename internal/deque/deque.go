// Package deque provides a ring-buffer deque of ints for scheduler
// queues. The engines' waiting queues see pushes at both ends (arrivals
// at the back, eviction-recompute victims at the front) and pops at the
// front; the ring buffer makes all of them O(1), replacing the
// O(n)-per-eviction `append([]int{id}, queue...)` front-insertion.
//
// Capacity tracks the live length in both directions: the buffer
// doubles when full and halves when occupancy falls below a quarter,
// so a long-lived online engine that absorbed one traffic burst does
// not retain the burst's high-water backing array forever.
package deque

// Int is a double-ended queue of ints backed by a power-of-two ring
// buffer. The zero value is an empty, ready-to-use deque.
type Int struct {
	buf  []int
	head int
	n    int
}

// Len returns the number of queued elements.
func (d *Int) Len() int { return d.n }

// Reset empties the deque, keeping its buffer.
func (d *Int) Reset() {
	d.head, d.n = 0, 0
}

// minCap is the smallest non-zero buffer; shrinking stops here so
// small steady-state queues do not thrash allocations.
const minCap = 8

// grow doubles the buffer, laying the elements out from index 0.
func (d *Int) grow() {
	c := len(d.buf) * 2
	if c == 0 {
		c = minCap
	}
	d.resize(c)
}

// shrink halves the buffer once occupancy drops below a quarter,
// releasing burst high-water capacity back to the allocator. The
// quarter threshold (not half) keeps grow/shrink cycles hysteretic: a
// queue oscillating around a power-of-two boundary never resizes on
// every operation.
func (d *Int) shrink() {
	if len(d.buf) > minCap && d.n < len(d.buf)/4 {
		d.resize(len(d.buf) / 2)
	}
}

// resize re-lays the elements into a fresh power-of-two buffer from
// index 0.
func (d *Int) resize(c int) {
	buf := make([]int, c)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf, d.head = buf, 0
}

// PushBack appends v at the tail.
//
//det:hotpath
func (d *Int) PushBack(v int) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = v
	d.n++
}

// PushFront inserts v at the head.
//
//det:hotpath
func (d *Int) PushFront(v int) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.n++
}

// Front returns the head element; it panics on an empty deque.
func (d *Int) Front() int {
	if d.n == 0 {
		panic("deque: Front of empty deque")
	}
	return d.buf[d.head]
}

// PopFront removes and returns the head element; it panics on an empty
// deque.
//
//det:hotpath
func (d *Int) PopFront() int {
	v := d.Front()
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	if d.n == 0 {
		d.head = 0
	}
	d.shrink()
	return v
}

// Cap returns the current buffer capacity (for tests and telemetry).
func (d *Int) Cap() int { return len(d.buf) }

// At returns the i-th element from the head (0 <= i < Len).
func (d *Int) At(i int) int {
	if i < 0 || i >= d.n {
		panic("deque: index out of range")
	}
	return d.buf[(d.head+i)&(len(d.buf)-1)]
}
