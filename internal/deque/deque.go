// Package deque provides a ring-buffer deque of ints for scheduler
// queues. The engines' waiting queues see pushes at both ends (arrivals
// at the back, eviction-recompute victims at the front) and pops at the
// front; the ring buffer makes all of them O(1), replacing the
// O(n)-per-eviction `append([]int{id}, queue...)` front-insertion.
package deque

// Int is a double-ended queue of ints backed by a power-of-two ring
// buffer. The zero value is an empty, ready-to-use deque.
type Int struct {
	buf  []int
	head int
	n    int
}

// Len returns the number of queued elements.
func (d *Int) Len() int { return d.n }

// Reset empties the deque, keeping its buffer.
func (d *Int) Reset() {
	d.head, d.n = 0, 0
}

// grow doubles the buffer, laying the elements out from index 0.
func (d *Int) grow() {
	c := len(d.buf) * 2
	if c == 0 {
		c = 8
	}
	buf := make([]int, c)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)&(len(d.buf)-1)]
	}
	d.buf, d.head = buf, 0
}

// PushBack appends v at the tail.
func (d *Int) PushBack(v int) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)&(len(d.buf)-1)] = v
	d.n++
}

// PushFront inserts v at the head.
func (d *Int) PushFront(v int) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1) & (len(d.buf) - 1)
	d.buf[d.head] = v
	d.n++
}

// Front returns the head element; it panics on an empty deque.
func (d *Int) Front() int {
	if d.n == 0 {
		panic("deque: Front of empty deque")
	}
	return d.buf[d.head]
}

// PopFront removes and returns the head element; it panics on an empty
// deque.
func (d *Int) PopFront() int {
	v := d.Front()
	d.head = (d.head + 1) & (len(d.buf) - 1)
	d.n--
	if d.n == 0 {
		d.head = 0
	}
	return v
}

// At returns the i-th element from the head (0 <= i < Len).
func (d *Int) At(i int) int {
	if i < 0 || i >= d.n {
		panic("deque: index out of range")
	}
	return d.buf[(d.head+i)&(len(d.buf)-1)]
}
