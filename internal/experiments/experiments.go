// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated substrate. Each Fig*/Table* function
// returns structured rows plus a formatted text rendering, so the same
// code backs the CLI, the benchmarks and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/predictor"
	"repro/internal/workload"
)

// Options scales an experiment run.
type Options struct {
	// PoolSize is the size of the generated ShareGPT-like corpus
	// (the paper builds 86,612 pairs).
	PoolSize int
	// Requests is the evaluation sample (the paper uses 5,000).
	Requests int
	// Seed drives trace generation and sampling.
	Seed int64
	// Workers parallelizes the co-simulated fleet paths (online,
	// disagg, faults) across goroutines: 0 or 1 runs sequentially,
	// fleet.WorkersAuto picks GOMAXPROCS on large fleets. Results are
	// byte-identical across worker counts.
	Workers int
}

// Quick returns a scaled-down configuration for tests and benchmarks.
// 4,000 requests is the smallest sample that reaches the memory-bound,
// multi-cycle decode regime the paper evaluates in on every node-model
// combination; smaller samples leave the KV pool underfilled and
// flatten the scheduler differences.
func Quick() Options { return Options{PoolSize: 20000, Requests: 4000, Seed: 1} }

// Paper returns the paper-scale configuration (§4.1).
func Paper() Options { return Options{PoolSize: 86612, Requests: 5000, Seed: 1} }

// Validate reports an option error, if any.
func (o Options) Validate() error {
	if o.PoolSize < 100 || o.Requests < 10 || o.Requests > o.PoolSize {
		return fmt.Errorf("experiments: bad options %+v", o)
	}
	return nil
}

// Env is the shared experimental setup: the corpus, its 60/20/20 split,
// the trained output-length predictor, and the evaluation sample.
type Env struct {
	Opts       Options
	Pool       []workload.Request
	Train, Val []workload.Request
	Test       []workload.Request
	Classifier *predictor.Classifier
	Requests   []workload.Request
}

// NewEnv builds the corpus, trains the predictor on the 60% split
// (§4.1) and samples the evaluation requests.
func NewEnv(o Options) (*Env, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	pool, err := workload.Generate(workload.DefaultConfig(o.PoolSize, o.Seed))
	if err != nil {
		return nil, err
	}
	train, val, test, err := workload.Split(pool, 0.6, 0.2)
	if err != nil {
		return nil, err
	}
	clf, err := predictor.Train(train, predictor.DefaultTrainConfig())
	if err != nil {
		return nil, err
	}
	return &Env{
		Opts:       o,
		Pool:       pool,
		Train:      train,
		Val:        val,
		Test:       test,
		Classifier: clf,
		Requests:   workload.Sample(pool, o.Requests, o.Seed+1000),
	}, nil
}

// renderTable formats rows with aligned columns.
func renderTable(title string, header []string, rows [][]string) string {
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteString("\n")
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	return sb.String()
}
