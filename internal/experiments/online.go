package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// OnlineRow is one point of the open-loop rate sweep: a Poisson offered
// load against the 4xA100 + 70B TD-Pipe deployment.
type OnlineRow struct {
	// Label names the point ("offline" or the load factor, e.g. "0.75x").
	Label string
	// Rate is the offered arrival rate in requests/s (0 for offline).
	Rate float64
	// Report carries throughput plus the latency digest.
	Report metrics.Report
}

// onlineLoadFactors are the sweep points as fractions of the offline
// (closed-loop) service rate: comfortably under capacity, near
// saturation, and just past it.
var onlineLoadFactors = []float64{0.5, 0.75, 0.9, 1.1}

// Online sweeps offered load on the 4xA100 + 70B deployment: the
// closed-loop run calibrates the service capacity in requests/s, then
// Poisson arrivals at increasing fractions of that capacity show how
// TTFT/E2E tails and SLO goodput degrade as the system approaches and
// passes saturation — the open-loop view the paper's offline evaluation
// cannot give.
func Online(e *Env) ([]OnlineRow, error) {
	cfg := core.DefaultConfig(hw.A100, model.Llama2_70B, 4)
	cfg.Predictor = e.Classifier
	cfg.SLO = metrics.DefaultSLO()

	// Calibrate: the offline makespan bounds the service rate.
	offline, err := core.Run(cfg, e.Requests)
	if err != nil {
		return nil, err
	}
	rows := []OnlineRow{{Label: "offline", Rate: 0, Report: offline.Report}}
	if offline.Report.Elapsed <= 0 {
		return rows, nil
	}
	capacity := float64(len(e.Requests)) / offline.Report.Elapsed

	for _, f := range onlineLoadFactors {
		rate := f * capacity
		stamped := workload.StampArrivals(e.Requests, workload.Poisson{Rate: rate}, e.Opts.Seed+7)
		res, err := core.Run(cfg, stamped)
		if err != nil {
			return nil, err
		}
		rows = append(rows, OnlineRow{
			Label:  fmt.Sprintf("%.2fx", f),
			Rate:   rate,
			Report: res.Report,
		})
	}
	return rows, nil
}

// FormatOnline renders the rate sweep with latency and goodput columns.
func FormatOnline(rows []OnlineRow) string {
	header := []string{"load", "req/s", "out tok/s", "ttft p50/p99 (s)", "tpot p99 (ms)", "e2e p99 (s)", "goodput %"}
	var table [][]string
	for _, r := range rows {
		rate := "-"
		if r.Rate > 0 {
			rate = fmt.Sprintf("%.2f", r.Rate)
		}
		d := r.Report.Latency
		table = append(table, []string{
			r.Label,
			rate,
			fmt.Sprintf("%.0f", r.Report.OutputThroughput()),
			fmt.Sprintf("%.1f/%.1f", d.TTFTP50, d.TTFTP99),
			fmt.Sprintf("%.0f", 1e3*d.TPOTP99),
			fmt.Sprintf("%.1f", d.E2EP99),
			fmt.Sprintf("%.1f", 100*d.Goodput()),
		})
	}
	return renderTable(fmt.Sprintf("Online: open-loop Poisson rate sweep (4xA100 + 70B, slo %s)", metrics.DefaultSLO()), header, table)
}
