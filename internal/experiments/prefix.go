package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// PrefixRow is one policy point of the shared-prefix serving sweep.
type PrefixRow struct {
	// Label names the point: a dispatch policy, or the no-cache
	// control.
	Label string
	// Report carries throughput, the prefix hit rate and the latency
	// digest.
	Report metrics.Report
}

// prefixPolicies are the dispatch policies the sweep compares: the
// affinity policy against the oblivious baseline and the load-only
// fallback it degrades to.
var prefixPolicies = []string{fleet.RoundRobin, fleet.LeastWork, fleet.PrefixAffinity}

// Prefix sweeps shared-prefix KV reuse on a 4-replica fleet of 4xA100 +
// 70B deployments: the evaluation sample is stamped with multi-turn
// prefix groups (system prompts / conversations), offered at saturating
// Poisson load, and served online under each dispatch policy. Cache
// hits shrink prefill work, so the question is how much of that the
// router can bank: round-robin scatters each group over every replica
// (each must warm its own copy), while prefix-affinity routes a group
// to the replica already holding its blocks. A no-cache control run
// isolates what sharing itself buys.
func Prefix(e *Env) ([]PrefixRow, error) {
	const replicas = 4
	cfg := core.DefaultConfig(hw.A100, model.Llama2_70B, 4)
	cfg.Predictor = e.Classifier
	cfg.SLO = metrics.DefaultSLO()

	groups := len(e.Requests) / 12
	if groups < 8 {
		groups = 8
	}
	stamped, err := workload.StampPrefixes(e.Requests, workload.PrefixConfig{
		Groups: groups, PrefixLen: 512, Turns: 3, Seed: e.Opts.Seed + 40,
	})
	if err != nil {
		return nil, err
	}

	// Calibrate offered load from the closed-loop service rate of one
	// engine, then push the fleet slightly past saturation so wasted
	// prefill work surfaces as queueing delay in TTFT.
	offline, err := core.Run(cfg, stamped)
	if err != nil {
		return nil, err
	}
	if offline.Report.Elapsed <= 0 {
		return nil, fmt.Errorf("experiments: degenerate calibration run")
	}
	rate := 1.2 * float64(replicas) * float64(len(stamped)) / offline.Report.Elapsed
	open := workload.StampArrivals(stamped, workload.Poisson{Rate: rate}, e.Opts.Seed+41)

	runPolicy := func(cfg core.Config, policy string) (metrics.Report, error) {
		p, err := fleet.New(policy, fleet.Options{Seed: e.Opts.Seed, Predictor: e.Classifier})
		if err != nil {
			return metrics.Report{}, err
		}
		res, err := fleet.RunOnlineWorkers(cfg, replicas, p, open, e.Opts.Workers)
		if err != nil {
			return metrics.Report{}, err
		}
		return res.Report, nil
	}

	cold := cfg
	cold.DisablePrefixCache = true
	rep, err := runPolicy(cold, fleet.RoundRobin)
	if err != nil {
		return nil, err
	}
	rows := []PrefixRow{{Label: "no-cache", Report: rep}}
	for _, policy := range prefixPolicies {
		rep, err := runPolicy(cfg, policy)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PrefixRow{Label: policy, Report: rep})
	}
	return rows, nil
}

// FormatPrefix renders the shared-prefix sweep.
func FormatPrefix(rows []PrefixRow) string {
	header := []string{"dispatch", "hit %", "out tok/s", "ttft mean/p99 (s)", "e2e p99 (s)", "goodput %"}
	var table [][]string
	for _, r := range rows {
		d := r.Report.Latency
		table = append(table, []string{
			r.Label,
			fmt.Sprintf("%.1f", 100*r.Report.PrefixHitRate()),
			fmt.Sprintf("%.0f", r.Report.OutputThroughput()),
			fmt.Sprintf("%.1f/%.1f", d.MeanTTFT, d.TTFTP99),
			fmt.Sprintf("%.1f", d.E2EP99),
			fmt.Sprintf("%.1f", 100*d.Goodput()),
		})
	}
	return renderTable("Prefix: shared-prefix KV reuse across dispatch policies (4 replicas x 4xA100 + 70B, saturating load)", header, table)
}
