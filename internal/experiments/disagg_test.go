package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The disaggregation sweep must cover every (load, split) cell with
// complete digests, and run deterministically.
func TestDisaggSweep(t *testing.T) {
	env, err := NewEnv(Options{PoolSize: 2000, Requests: 250, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Disagg(env)
	if err != nil {
		t.Fatal(err)
	}
	want := len(disaggLoadFactors) * (1 + len(disaggSplits))
	if len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Rate <= 0 {
			t.Errorf("row %s/%s rate = %v", r.Load, r.Split, r.Rate)
		}
		d := r.Report.Latency
		if d.Requests != 250 {
			t.Errorf("row %s/%s digest covers %d requests", r.Load, r.Split, d.Requests)
		}
		if g := d.Goodput(); g < 0 || g > 1 {
			t.Errorf("row %s/%s goodput = %v", r.Load, r.Split, g)
		}
		if r.Split == "colocated" {
			if r.Handoffs != 0 {
				t.Errorf("colocated control reports %d hand-offs", r.Handoffs)
			}
		} else if r.Handoffs == 0 {
			t.Errorf("split %s migrated nothing", r.Split)
		}
	}
	out := FormatDisagg(rows)
	for _, col := range []string{"colocated", "1P+3D", "handoffs", "goodput"} {
		if !strings.Contains(out, col) {
			t.Errorf("formatted table missing %q:\n%s", col, out)
		}
	}

	again, err := Disagg(env)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, again) {
		t.Error("disagg sweep not deterministic across runs")
	}
}
