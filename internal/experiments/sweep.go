package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
)

// Design-choice sweeps: ablation benches for the knobs DESIGN.md calls
// out beyond the paper's own figures — the TD-Pipe prefill batch size
// and the chunked-prefill token budget of the hybrid baselines.

// SweepRow is one setting of a sweep.
type SweepRow struct {
	Param        string
	Value        int
	TokensPerSec float64
}

// SweepPrefillBatch varies TD-Pipe's MaxPrefillTokens on 4xA100 + 70B.
// Larger batches amortize per-pass overheads but coarsen Algorithm 1's
// admission granularity.
func SweepPrefillBatch(env *Env) ([]SweepRow, error) {
	var rows []SweepRow
	for _, tokens := range []int{512, 1024, 2048, 4096, 8192} {
		cfg := core.DefaultConfig(hw.A100, model.Llama2_70B, 4)
		cfg.Predictor = env.Classifier
		cfg.MaxPrefillTokens = tokens
		res, err := core.Run(cfg, env.Requests)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{"MaxPrefillTokens", tokens, res.Report.OutputThroughput()})
	}
	return rows, nil
}

// SweepChunkTokens varies the hybrid baselines' per-iteration token
// budget (vLLM's max_num_batched_tokens) on 4xA100 + 70B: small budgets
// starve decode batches, huge ones reintroduce prefill-decode
// imbalance.
func SweepChunkTokens(env *Env) ([]SweepRow, error) {
	var rows []SweepRow
	for _, tokens := range []int{256, 512, 1024, 2048} {
		cfg := baselines.DefaultConfig(hw.A100, model.Llama2_70B, 4, baselines.PPHB)
		cfg.ChunkTokens = tokens
		res, err := baselines.Run(cfg, env.Requests)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{"ChunkTokens", tokens, res.Report.OutputThroughput()})
	}
	return rows, nil
}

// FormatSweep renders sweep rows.
func FormatSweep(title string, rows []SweepRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Param, fmt.Sprintf("%d", r.Value), fmt.Sprintf("%.0f", r.TokensPerSec)})
	}
	return renderTable(title, []string{"parameter", "value", "tokens/s"}, out)
}
