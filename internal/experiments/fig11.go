package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
)

// Combo is one node-model pairing from the paper's Figure 11.
type Combo struct {
	Node hw.Node
	Spec model.Spec
}

// Fig11Combos returns the four evaluated pairings: L20+13B, L20+32B,
// A100+32B, A100+70B.
func Fig11Combos() []Combo {
	return []Combo{
		{hw.L20, model.Llama2_13B},
		{hw.L20, model.Qwen2_5_32B},
		{hw.A100, model.Qwen2_5_32B},
		{hw.A100, model.Llama2_70B},
	}
}

// Fig11Schedulers lists the five compared systems in plot order.
func Fig11Schedulers() []string {
	return []string{"TP+SB", "TP+HB", "PP+SB", "PP+HB", "TD-Pipe"}
}

// Fig11Cell is one bar of Figure 11.
type Fig11Cell struct {
	Node      string
	Model     string
	GPUs      int
	Scheduler string
	// TokensPerSec is generated-token throughput; 0 when OOM.
	TokensPerSec float64
	OOM          bool
	// Utilization is the mean GPU busy fraction.
	Utilization float64
}

// Fig11 regenerates the overall-performance grid: every scheduler on
// every node-model combination at 1, 2 and 4 GPUs.
func Fig11(env *Env) ([]Fig11Cell, error) {
	var cells []Fig11Cell
	for _, combo := range Fig11Combos() {
		for _, gpus := range []int{1, 2, 4} {
			for _, sched := range Fig11Schedulers() {
				cell, err := runFig11Cell(env, combo, gpus, sched)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}

func runFig11Cell(env *Env, combo Combo, gpus int, sched string) (Fig11Cell, error) {
	cell := Fig11Cell{Node: combo.Node.Name, Model: combo.Spec.Name, GPUs: gpus, Scheduler: sched}
	if sched == "TD-Pipe" {
		cfg := core.DefaultConfig(combo.Node, combo.Spec, gpus)
		cfg.Predictor = env.Classifier
		res, err := core.Run(cfg, env.Requests)
		if err != nil {
			cell.OOM = true
			return cell, nil
		}
		cell.TokensPerSec = res.Report.OutputThroughput()
		cell.Utilization = res.Report.MeanUtilization
		return cell, nil
	}
	var method baselines.Method
	switch sched {
	case "TP+SB":
		method = baselines.TPSB
	case "TP+HB":
		method = baselines.TPHB
	case "PP+SB":
		method = baselines.PPSB
	case "PP+HB":
		method = baselines.PPHB
	default:
		return cell, fmt.Errorf("experiments: unknown scheduler %q", sched)
	}
	res, err := baselines.Run(baselines.DefaultConfig(combo.Node, combo.Spec, gpus, method), env.Requests)
	if err != nil {
		cell.OOM = true
		return cell, nil
	}
	cell.TokensPerSec = res.Report.OutputThroughput()
	cell.Utilization = res.Report.MeanUtilization
	return cell, nil
}

// FormatFig11 renders the grid as the paper's four sub-plots.
func FormatFig11(cells []Fig11Cell) string {
	var out string
	type key struct{ node, mdl string }
	groups := map[key][]Fig11Cell{}
	var order []key
	for _, c := range cells {
		k := key{c.Node, c.Model}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		header := []string{"scheduler", "1 GPU", "2 GPUs", "4 GPUs"}
		var rows [][]string
		for _, sched := range Fig11Schedulers() {
			row := []string{sched}
			for _, gpus := range []int{1, 2, 4} {
				val := "?"
				for _, c := range groups[k] {
					if c.Scheduler == sched && c.GPUs == gpus {
						if c.OOM {
							val = "OOM"
						} else {
							val = fmt.Sprintf("%.0f", c.TokensPerSec)
						}
					}
				}
				row = append(row, val)
			}
			rows = append(rows, row)
		}
		out += renderTable(fmt.Sprintf("Figure 11: throughput (tokens/s), %s + %s", k.node, k.mdl), header, rows) + "\n"
	}
	return out
}

// Fig11Cell lookup helper for tests and EXPERIMENTS.md claims.
func FindCell(cells []Fig11Cell, node, mdl string, gpus int, sched string) (Fig11Cell, bool) {
	for _, c := range cells {
		if c.Node == node && c.Model == mdl && c.GPUs == gpus && c.Scheduler == sched {
			return c, true
		}
	}
	return Fig11Cell{}, false
}
