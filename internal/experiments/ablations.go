package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
)

// AblationCombos returns the two configurations used by the paper's
// ablation study (§4.4): 4xL20 + 32B and 4xA100 + 70B.
func AblationCombos() []Combo {
	return []Combo{
		{hw.L20, model.Qwen2_5_32B},
		{hw.A100, model.Llama2_70B},
	}
}

// AblationRow is one bar of an ablation figure.
type AblationRow struct {
	Node  string
	Model string
	// Label is the hyperparameter setting ("20%", ..., "TD-Pipe",
	// "wo", "wi").
	Label        string
	TokensPerSec float64
}

func runTDPipe(env *Env, combo Combo, mutate func(*core.Config)) (float64, error) {
	cfg := core.DefaultConfig(combo.Node, combo.Spec, 4)
	cfg.Predictor = env.Classifier
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := core.Run(cfg, env.Requests)
	if err != nil {
		return 0, err
	}
	return res.Report.OutputThroughput(), nil
}

// Fig13 regenerates the prefill-to-decode switching ablation: fixed KV
// occupancy ratios {20..95}% versus the AI-based greedy prefill.
func Fig13(env *Env) ([]AblationRow, error) {
	var rows []AblationRow
	for _, combo := range AblationCombos() {
		for _, ratio := range []float64{0.20, 0.35, 0.50, 0.65, 0.80, 0.95} {
			r := ratio
			tp, err := runTDPipe(env, combo, func(c *core.Config) { c.FixedPrefillSwitchRatio = r })
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{combo.Node.Name, combo.Spec.Name, fmt.Sprintf("%.0f%%", 100*ratio), tp})
		}
		tp, err := runTDPipe(env, combo, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{combo.Node.Name, combo.Spec.Name, "TD-Pipe", tp})
	}
	return rows, nil
}

// Fig15 regenerates the work-stealing ablation: decode-phase dynamic
// balancing off (wo) and on (wi).
func Fig15(env *Env) ([]AblationRow, error) {
	var rows []AblationRow
	for _, combo := range AblationCombos() {
		wo, err := runTDPipe(env, combo, func(c *core.Config) { c.DisableWorkStealing = true })
		if err != nil {
			return nil, err
		}
		wi, err := runTDPipe(env, combo, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows,
			AblationRow{combo.Node.Name, combo.Spec.Name, "wo", wo},
			AblationRow{combo.Node.Name, combo.Spec.Name, "wi", wi})
	}
	return rows, nil
}

// Fig16 regenerates the decode-to-prefill switching ablation: fixed
// request-finish ratios {80..5}% versus the spatial-temporal intensity
// comparison.
func Fig16(env *Env) ([]AblationRow, error) {
	var rows []AblationRow
	for _, combo := range AblationCombos() {
		for _, ratio := range []float64{0.80, 0.65, 0.50, 0.35, 0.20, 0.05} {
			r := ratio
			tp, err := runTDPipe(env, combo, func(c *core.Config) { c.FixedDecodeSwitchRatio = r })
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationRow{combo.Node.Name, combo.Spec.Name, fmt.Sprintf("%.0f%%", 100*ratio), tp})
		}
		tp, err := runTDPipe(env, combo, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{combo.Node.Name, combo.Spec.Name, "TD-Pipe", tp})
	}
	return rows, nil
}

// FormatAblation renders ablation rows grouped by configuration.
func FormatAblation(title string, rows []AblationRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Node + "+" + r.Model, r.Label, fmt.Sprintf("%.0f", r.TokensPerSec)})
	}
	return renderTable(title, []string{"config", "setting", "tokens/s"}, out)
}
