package experiments

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/model"
)

// FormatTable1 renders the GPU configurations (paper Table 1).
func FormatTable1() string {
	var rows [][]string
	for _, n := range hw.Nodes() {
		rows = append(rows, []string{
			n.GPU.Name,
			fmt.Sprintf("%.1f TFLOPS", n.GPU.FP16TFLOPS),
			fmt.Sprintf("%.0f GB/s", n.GPU.HBMGBps),
			fmt.Sprintf("%.0f GB", n.GPU.MemGB),
			fmt.Sprintf("%.2f GB/s", n.AllReduceGBps),
		})
	}
	return renderTable("Table 1: GPU configurations",
		[]string{"device", "FP16 tensor core", "bandwidth", "memory", "all-reduce"}, rows)
}

// FormatTable2 renders the model specifications (paper Table 2).
func FormatTable2() string {
	var rows [][]string
	for _, m := range model.Models() {
		rows = append(rows, []string{
			m.Name,
			fmt.Sprintf("%.0f GB", m.WeightBytes()/1e9),
			fmt.Sprintf("%d", m.Layers),
			fmt.Sprintf("%d", m.Heads),
			fmt.Sprintf("%d", m.Hidden),
			fmt.Sprintf("%.2f MB", m.KVBytesPerToken()/1e6),
		})
	}
	return renderTable("Table 2: model specifications",
		[]string{"name", "parameters", "layers", "heads", "hidden size", "KV/token"}, rows)
}
