package experiments

import (
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/workload"
)

// The headline result must not be an artifact of the default seed:
// TD-Pipe beats the strongest pipeline baseline and TP+SB at 4 GPUs on
// the flagship config across independent traces.
func TestHeadlineRobustAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	node, spec := hw.A100, model.Llama2_70B
	for _, seed := range []int64{11, 222, 3333} {
		pool := workload.MustGenerate(workload.DefaultConfig(12000, seed))
		reqs := workload.Sample(pool, 2500, seed+1)

		cfg := core.DefaultConfig(node, spec, 4)
		res, err := core.Run(cfg, reqs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		td := res.Report.OutputThroughput()

		for _, m := range []baselines.Method{baselines.TPSB, baselines.PPHB} {
			bres, err := baselines.Run(baselines.DefaultConfig(node, spec, 4, m), reqs)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, m, err)
			}
			if td <= bres.Report.OutputThroughput() {
				t.Errorf("seed %d: TD-Pipe (%.0f) did not beat %v (%.0f)",
					seed, td, m, bres.Report.OutputThroughput())
			}
		}
	}
}

// Determinism across the whole experiment harness: the same Env options
// produce the same Fig11 numbers.
func TestHarnessDeterminism(t *testing.T) {
	opts := Options{PoolSize: 3000, Requests: 400, Seed: 5}
	envA, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	envB, err := NewEnv(opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Fig6(envA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig6(envB)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fig6 row %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
