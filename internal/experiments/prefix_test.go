package experiments

import (
	"strings"
	"testing"
)

// The prefix sweep must produce the no-cache control plus one row per
// policy, with sharing visible only where it is enabled and the
// affinity policy banking at least as many hits as round-robin.
func TestPrefixSweep(t *testing.T) {
	env, err := NewEnv(Options{PoolSize: 2000, Requests: 250, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Prefix(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(prefixPolicies) {
		t.Fatalf("got %d rows, want %d", len(rows), 1+len(prefixPolicies))
	}
	if rows[0].Label != "no-cache" || rows[0].Report.PrefixCachedTokens != 0 {
		t.Errorf("control row = %q with %d cached tokens", rows[0].Label, rows[0].Report.PrefixCachedTokens)
	}
	byLabel := map[string]float64{}
	for _, r := range rows {
		if r.Report.Requests != 250 {
			t.Errorf("row %q completed %d of 250", r.Label, r.Report.Requests)
		}
		if hr := r.Report.PrefixHitRate(); hr < 0 || hr >= 1 {
			t.Errorf("row %q hit rate = %v", r.Label, hr)
		}
		byLabel[r.Label] = r.Report.PrefixHitRate()
	}
	if byLabel["prefix-affinity"] <= 0 {
		t.Error("prefix-affinity produced no cache hits")
	}
	if byLabel["prefix-affinity"] < byLabel["round-robin"] {
		t.Errorf("affinity hit rate %.3f below round-robin %.3f",
			byLabel["prefix-affinity"], byLabel["round-robin"])
	}
	out := FormatPrefix(rows)
	for _, want := range []string{"no-cache", "prefix-affinity", "hit %"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
}
