package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
)

// FleetCell is one fleet-size x dispatch-policy measurement.
type FleetCell struct {
	Policy   string
	Replicas int
	Report   metrics.Report
	// MinShard/MaxShard are the smallest and largest shard sizes, a
	// direct view of dispatch balance.
	MinShard, MaxShard int
}

// Fleet sweeps the data-parallel serving layer on the 4xA100 + 70B
// deployment: every registered dispatch policy at 1, 2 and 4 replicas
// over the shared evaluation sample. This is the scenario axis
// (replica count x policy x workload) later scaling work builds on.
func Fleet(e *Env) ([]FleetCell, error) {
	var out []FleetCell
	var base *FleetCell
	for _, replicas := range []int{1, 2, 4} {
		for _, name := range fleet.Names() {
			// With one replica every policy produces the same single
			// shard and the engine is deterministic, so simulate the
			// baseline once and reuse it across policies.
			if replicas == 1 && base != nil {
				cell := *base
				cell.Policy = name
				out = append(out, cell)
				continue
			}
			cfg := core.DefaultConfig(hw.A100, model.Llama2_70B, 4)
			cfg.Predictor = e.Classifier
			p, err := fleet.New(name, fleet.Options{Seed: e.Opts.Seed, Predictor: e.Classifier})
			if err != nil {
				return nil, err
			}
			res, err := fleet.Run(cfg, replicas, p, e.Requests)
			if err != nil {
				return nil, err
			}
			cell := FleetCell{Policy: name, Replicas: replicas, Report: res.Report, MinShard: -1}
			for _, sh := range res.Shards {
				if cell.MinShard < 0 || len(sh.Reqs) < cell.MinShard {
					cell.MinShard = len(sh.Reqs)
				}
				if len(sh.Reqs) > cell.MaxShard {
					cell.MaxShard = len(sh.Reqs)
				}
			}
			if replicas == 1 {
				base = &cell
			}
			out = append(out, cell)
		}
	}
	return out, nil
}

// FormatFleet renders the fleet sweep with per-cell throughput,
// utilization and the speedup over the single-replica run of the same
// policy.
func FormatFleet(cells []FleetCell) string {
	base := map[string]float64{}
	for _, c := range cells {
		if c.Replicas == 1 {
			base[c.Policy] = c.Report.OutputThroughput()
		}
	}
	header := []string{"policy", "replicas", "gpus", "out tok/s", "speedup", "util %", "shard min/max"}
	var rows [][]string
	for _, c := range cells {
		speedup := "-"
		if b := base[c.Policy]; b > 0 {
			speedup = fmt.Sprintf("%.2fx", c.Report.OutputThroughput()/b)
		}
		rows = append(rows, []string{
			c.Policy,
			fmt.Sprintf("%d", c.Replicas),
			fmt.Sprintf("%d", c.Report.GPUs),
			fmt.Sprintf("%.0f", c.Report.OutputThroughput()),
			speedup,
			fmt.Sprintf("%.1f", 100*c.Report.MeanUtilization),
			fmt.Sprintf("%d/%d", c.MinShard, c.MaxShard),
		})
	}
	return renderTable("Fleet: data-parallel TD-Pipe replicas (4xA100 + 70B each)", header, rows)
}
