package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/policy"
	"repro/internal/workload"
)

// AutoscaleRow is one deployment on the GPU-hours vs goodput frontier:
// a provisioning strategy served against the shared diurnal trace.
type AutoscaleRow struct {
	// Deployment names the provisioning strategy.
	Deployment string
	// Replicas describes the replica budget ("4", "2", or "1..4").
	Replicas string
	// GPUHours is the provisioned GPU bill: replicas x world x wall
	// time for the static rows, the autoscaler's span accounting for
	// the elastic row.
	GPUHours float64
	// Report carries throughput, the latency digest, and — for the
	// elastic row — Report.Autoscale and Report.Admission.
	Report metrics.Report
}

// Replica budgets for the autoscaling study: the static-peak fleet
// holds autoscaleMax replicas for the whole run, static-mean holds
// autoscaleMean, and the elastic fleet breathes between 1 and
// autoscaleMax starting from autoscaleMean.
const (
	autoscaleMax  = 4
	autoscaleMean = 2
)

// Autoscale studies elastic provisioning on the 4xA100 + 70B fleet
// under a diurnal trace (two compressed day/night cycles whose peak
// offered load needs more than the mean fleet but less than the peak
// fleet). Three deployments serve the identical trace: static-peak
// (autoscaleMax replicas all run), static-mean (autoscaleMean), and
// elastic (an SLO-watching autoscaler between 1 and autoscaleMax, each
// scale-up paying the modeled weight-load cold start). The frontier
// question: does elasticity buy back GPU-hours without giving up
// goodput?
func Autoscale(e *Env) ([]AutoscaleRow, error) {
	cfg := core.DefaultConfig(hw.A100, model.Llama2_70B, 4)
	cfg.Predictor = e.Classifier
	cfg.SLO = metrics.DefaultSLO()

	// Calibrate: one replica's closed-loop makespan gives its service
	// rate; shape the diurnal curve so the peak needs ~70% of the peak
	// fleet (static-mean drowns, elastic must scale to follow).
	offline, err := core.Run(cfg, e.Requests)
	if err != nil {
		return nil, err
	}
	if offline.Report.Elapsed <= 0 {
		return nil, fmt.Errorf("experiments: degenerate autoscale calibration run")
	}
	srate := float64(len(e.Requests)) / offline.Report.Elapsed
	mean := 0.7 * float64(autoscaleMax) * srate / 1.5
	period := float64(len(e.Requests)) / mean / 2
	proc := workload.Diurnal{BaseRate: 0.5 * mean, PeakRate: 1.5 * mean, Period: period}
	open := workload.StampArrivals(e.Requests, proc, e.Opts.Seed+83)

	newPolicy := func() (fleet.Policy, error) {
		return fleet.New(fleet.LeastWork, fleet.Options{Seed: e.Opts.Seed, Predictor: e.Classifier})
	}
	static := func(name string, replicas int) (AutoscaleRow, error) {
		p, err := newPolicy()
		if err != nil {
			return AutoscaleRow{}, err
		}
		res, err := fleet.RunOnlineWorkers(cfg, replicas, p, open, e.Opts.Workers)
		if err != nil {
			return AutoscaleRow{}, err
		}
		return AutoscaleRow{
			Deployment: name,
			Replicas:   fmt.Sprintf("%d", replicas),
			GPUHours:   float64(replicas*cfg.World) * res.Report.Elapsed / 3600,
			Report:     res.Report,
		}, nil
	}

	peak, err := static("static-peak", autoscaleMax)
	if err != nil {
		return nil, err
	}
	meanRow, err := static("static-mean", autoscaleMean)
	if err != nil {
		return nil, err
	}

	// The elastic fleet starts provisioned for the mean and follows the
	// curve: scale up early (at half the TTFT SLO) so the cold start is
	// paid before the SLO is at risk, scale down only once the trough's
	// queue would stay comfortable on the smaller fleet.
	as, err := policy.NewAutoscaler(policy.AutoscalerConfig{
		Min:            1,
		Max:            autoscaleMax,
		Initial:        autoscaleMean,
		Interval:       period / 100,
		TTFTTarget:     cfg.SLO.TTFT / 2,
		ScaleUpQueue:   6,
		ScaleDownQueue: 2,
		UpCooldown:     period / 50,
		DownCooldown:   period / 10,
	})
	if err != nil {
		return nil, err
	}
	p, err := newPolicy()
	if err != nil {
		return nil, err
	}
	eres, err := fleet.RunOnlineElasticWorkers(cfg, autoscaleMax, p, open, &policy.Stack{Autoscaler: as}, e.Opts.Workers)
	if err != nil {
		return nil, err
	}
	elastic := AutoscaleRow{
		Deployment: "elastic",
		Replicas:   fmt.Sprintf("1..%d", autoscaleMax),
		GPUHours:   eres.Report.Autoscale.GPUSeconds / 3600,
		Report:     eres.Report,
	}
	return []AutoscaleRow{peak, meanRow, elastic}, nil
}

// FormatAutoscale renders the GPU-hours vs goodput frontier.
func FormatAutoscale(rows []AutoscaleRow) string {
	header := []string{"deployment", "replicas", "gpu-hours", "out tok/s", "ttft p99 (s)", "goodput %", "scale up/down", "cold-start (s)"}
	var table [][]string
	for _, r := range rows {
		scale, cold := "-", "-"
		if a := r.Report.Autoscale; a.Any() {
			scale = fmt.Sprintf("%d/%d", a.ScaleUps, a.ScaleDowns)
			cold = fmt.Sprintf("%.0f", a.ColdStartSeconds)
		}
		table = append(table, []string{
			r.Deployment,
			r.Replicas,
			fmt.Sprintf("%.2f", r.GPUHours),
			fmt.Sprintf("%.0f", r.Report.OutputThroughput()),
			fmt.Sprintf("%.1f", r.Report.Latency.TTFTP99),
			fmt.Sprintf("%.1f", 100*r.Report.Latency.Goodput()),
			scale,
			cold,
		})
	}
	return renderTable(fmt.Sprintf("Autoscale: diurnal trace, static vs elastic provisioning (4xA100 + 70B, slo %s)",
		metrics.DefaultSLO()), header, table)
}
