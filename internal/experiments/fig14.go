package experiments

import (
	"fmt"

	"repro/internal/predictor"
	"repro/internal/workload"
)

// Fig14Result holds the predictor-quality evaluation (§4.4.1, Fig. 14):
// per-model single-request accuracies and the accumulated error as a
// function of group size.
type Fig14Result struct {
	// ModelNames labels the three per-model predictors. The paper
	// trains one predictor per LLM on that model's own generations;
	// our substitute trains on three independently seeded corpora.
	ModelNames []string
	// Accuracies are single-request bin accuracies per model.
	Accuracies []float64
	// Baselines are the matching majority-class accuracies.
	Baselines []float64
	// GroupSizes are the request-count buckets (2..512).
	GroupSizes []int
	// AccumErr[m][g] is the accumulated relative error of model m's
	// predictor at group size g.
	AccumErr [][]float64
}

// Fig14GroupSizes matches the paper's x-axis.
func Fig14GroupSizes() []int { return []int{2, 4, 8, 16, 32, 64, 128, 256, 512} }

// Fig14 trains the three per-model predictors and evaluates accuracy
// and accumulated error.
func Fig14(env *Env) (*Fig14Result, error) {
	res := &Fig14Result{
		ModelNames: []string{"Llama2-13B-chat", "Qwen2.5-32B-Instruct", "Llama2-70B-chat"},
		GroupSizes: Fig14GroupSizes(),
	}
	for i := range res.ModelNames {
		// Each model generates its own outputs; a fresh seed stands in
		// for each model's generation distribution.
		pool, err := workload.Generate(workload.DefaultConfig(env.Opts.PoolSize, env.Opts.Seed+int64(100+i)))
		if err != nil {
			return nil, err
		}
		train, _, test, err := workload.Split(pool, 0.6, 0.2)
		if err != nil {
			return nil, err
		}
		clf, err := predictor.Train(train, predictor.DefaultTrainConfig())
		if err != nil {
			return nil, err
		}
		res.Accuracies = append(res.Accuracies, clf.Accuracy(test))
		res.Baselines = append(res.Baselines, predictor.MajorityBaseline(clf.Bins(), train, test))
		var errs []float64
		for _, g := range res.GroupSizes {
			errs = append(errs, clf.AccumulatedError(test, g))
		}
		res.AccumErr = append(res.AccumErr, errs)
	}
	return res, nil
}

// FormatFig14 renders the accuracy summary and error curves.
func FormatFig14(r *Fig14Result) string {
	var rows [][]string
	for i, name := range r.ModelNames {
		rows = append(rows, []string{name,
			fmt.Sprintf("%.4f", r.Accuracies[i]),
			fmt.Sprintf("%.4f", r.Baselines[i])})
	}
	out := renderTable("§4.4.1: single-request prediction accuracy",
		[]string{"model", "accuracy", "majority baseline"}, rows)

	header := []string{"model"}
	for _, g := range r.GroupSizes {
		header = append(header, fmt.Sprintf("%d", g))
	}
	rows = nil
	for i, name := range r.ModelNames {
		row := []string{name}
		for _, e := range r.AccumErr[i] {
			row = append(row, fmt.Sprintf("%.3f", e))
		}
		rows = append(rows, row)
	}
	out += "\n" + renderTable("Figure 14: accumulated error vs request number", header, rows)
	return out
}
