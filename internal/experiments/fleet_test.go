package experiments

import (
	"strings"
	"testing"

	"repro/internal/fleet"
)

// The fleet sweep runs on a reduced env: scheduler contrast is not the
// point here, coverage of the replica x policy grid is.
func TestFleetSweep(t *testing.T) {
	env, err := NewEnv(Options{PoolSize: 2000, Requests: 300, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cells, err := Fleet(env)
	if err != nil {
		t.Fatal(err)
	}
	if want := 3 * len(fleet.Names()); len(cells) != want {
		t.Fatalf("got %d cells, want %d (3 sizes x %d policies)", len(cells), want, len(fleet.Names()))
	}
	for _, c := range cells {
		if c.Report.Requests != env.Opts.Requests {
			t.Errorf("%s x%d completed %d requests", c.Policy, c.Replicas, c.Report.Requests)
		}
		if c.Report.GPUs != 4*c.Replicas {
			t.Errorf("%s x%d reports %d GPUs", c.Policy, c.Replicas, c.Report.GPUs)
		}
		if c.MinShard < 0 || c.MaxShard < c.MinShard {
			t.Errorf("%s x%d shard bounds %d/%d", c.Policy, c.Replicas, c.MinShard, c.MaxShard)
		}
	}
	text := FormatFleet(cells)
	for _, want := range []string{"Fleet", "round-robin", "predicted-cost", "speedup"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted sweep missing %q", want)
		}
	}
}
