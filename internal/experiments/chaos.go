package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// ChaosRow is one cell of the correlated-failure study: an outage
// model served on the 4-replica fleet, with the domain accounting next
// to the goodput it costs.
type ChaosRow struct {
	// Scenario names the outage model.
	Scenario string
	// Ckpt labels the checkpoint cadence ("off" or the interval).
	Ckpt string
	// Report carries throughput, the latency digest and Report.Faults.
	Report metrics.Report
}

// chaosReplicas is the fleet size every scenario uses.
const chaosReplicas = 4

// Chaos compares correlated failure domains against independent
// per-replica crashes at equal aggregate failure rate on the 4xA100 +
// 70B fleet. Per-rack domain draws with mean DomainMTBF produce the
// same expected replica-crash rate as independent draws with MTBF set
// to the same value (each of the Racks streams fires rack outages that
// crash Replicas/Racks members), so any difference between the rows is
// the correlation itself: whole racks vanishing together concentrates
// recovery pressure and lengthens the tail, where the same failure
// mass spread independently is absorbed by the survivors. Network
// domains partition KV links instead of crashing members and are
// served disaggregated, where the hand-off path pays for them.
func Chaos(e *Env) ([]ChaosRow, error) {
	cfg := core.DefaultConfig(hw.A100, model.Llama2_70B, 4)
	cfg.Predictor = e.Classifier
	cfg.SLO = metrics.DefaultSLO()

	// Calibrate exactly like the faults study: offer 80% of the fleet's
	// closed-loop service rate so the control run has headroom.
	offline, err := core.Run(cfg, e.Requests)
	if err != nil {
		return nil, err
	}
	if offline.Report.Elapsed <= 0 {
		return nil, fmt.Errorf("experiments: degenerate chaos calibration run")
	}
	rate := 0.8 * float64(chaosReplicas) * float64(len(e.Requests)) / offline.Report.Elapsed
	acfg := workload.ArrivalConfig{Kind: workload.ArrivalPoisson, Rate: rate, Seed: e.Opts.Seed + 83}
	open, err := acfg.Stamp(e.Requests)
	if err != nil {
		return nil, err
	}

	newPolicy := func() (fleet.Policy, error) {
		return fleet.New(fleet.LeastWork, fleet.Options{Seed: e.Opts.Seed, Predictor: e.Classifier})
	}
	p, err := newPolicy()
	if err != nil {
		return nil, err
	}
	control, err := fleet.RunOnlineWorkers(cfg, chaosReplicas, p, open, e.Opts.Workers)
	if err != nil {
		return nil, err
	}
	makespan := control.Report.Elapsed
	rows := []ChaosRow{{Scenario: "fault-free", Ckpt: "off", Report: control.Report}}

	restartDelay := makespan / 50
	downtime := restartDelay + faults.WeightReloadTime(cfg.Node, cfg.Spec, cfg.World)
	ckptInterval := makespan / 8
	ckptLabel := fmt.Sprintf("%.0fs", ckptInterval)
	mtbf := makespan / 2

	online := func(scenario string, fc faults.Config) error {
		plan, err := faults.NewPlan(fc, chaosReplicas, downtime)
		if err != nil {
			return err
		}
		p, err := newPolicy()
		if err != nil {
			return err
		}
		res, err := fleet.RunOnlineFaultsWorkers(cfg, chaosReplicas, p, open, plan, e.Opts.Workers)
		if err != nil {
			return err
		}
		rows = append(rows, ChaosRow{Scenario: scenario, Ckpt: ckptLabel, Report: res.Report})
		return nil
	}

	// Independent per-replica crashes: the baseline failure mass.
	if err := online("independent mtbf=0.5x", faults.Config{
		Seed:               e.Opts.Seed + 89,
		Horizon:            makespan,
		MTBF:               mtbf,
		RestartDelay:       restartDelay,
		CheckpointInterval: ckptInterval,
	}); err != nil {
		return nil, err
	}
	// The same aggregate rate, correlated: whole racks crash together.
	if err := online("rack power dmtbf=0.5x", faults.Config{
		Seed:               e.Opts.Seed + 89,
		Horizon:            makespan,
		RestartDelay:       restartDelay,
		CheckpointInterval: ckptInterval,
		Topology:           hw.Topology{Racks: 2},
		DomainMTBF:         mtbf,
		DomainKind:         faults.DomainPower,
	}); err != nil {
		return nil, err
	}
	// Zone escalation: every rack outage widens to its whole zone.
	if err := online("zone power dmtbf=0.5x", faults.Config{
		Seed:               e.Opts.Seed + 89,
		Horizon:            makespan,
		RestartDelay:       restartDelay,
		CheckpointInterval: ckptInterval,
		Topology:           hw.Topology{Racks: 2, RacksPerZone: 2},
		DomainMTBF:         mtbf,
		DomainKind:         faults.DomainPower,
		ZoneFrac:           1,
	}); err != nil {
		return nil, err
	}

	// Network domains partition KV links without crashing members; the
	// disaggregated hand-off path is where they bite.
	dc := fleet.DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2, Workers: e.Opts.Workers}
	dfc := faults.Config{
		Seed:               e.Opts.Seed + 89,
		Horizon:            makespan,
		RestartDelay:       restartDelay,
		CheckpointInterval: ckptInterval,
		Topology:           hw.Topology{Racks: 2},
		DomainMTBF:         mtbf,
		DomainKind:         faults.DomainNetwork,
	}
	dplan, err := faults.NewPlan(dfc, chaosReplicas, downtime)
	if err != nil {
		return nil, err
	}
	dres, err := fleet.RunDisaggFaults(cfg, dc, open, dplan)
	if err != nil {
		return nil, err
	}
	rows = append(rows, ChaosRow{Scenario: "disagg 2P+2D rack network", Ckpt: ckptLabel, Report: dres.Report})
	return rows, nil
}

// FormatChaos renders the correlated-failure study.
func FormatChaos(rows []ChaosRow) string {
	header := []string{"scenario", "ckpt", "domains", "crashes", "aborted", "dropped", "out tok/s", "ttft p99 (s)", "goodput %"}
	var table [][]string
	for _, r := range rows {
		f := r.Report.Faults
		table = append(table, []string{
			r.Scenario,
			r.Ckpt,
			fmt.Sprintf("%d", f.DomainOutages),
			fmt.Sprintf("%d", f.Crashes),
			fmt.Sprintf("%d", f.AbortedRequests),
			fmt.Sprintf("%d", f.Dropped),
			fmt.Sprintf("%.0f", r.Report.OutputThroughput()),
			fmt.Sprintf("%.1f", r.Report.Latency.TTFTP99),
			fmt.Sprintf("%.1f", 100*r.Report.Latency.Goodput()),
		})
	}
	return renderTable(fmt.Sprintf("Chaos: correlated failure domains vs independent crashes at equal aggregate rate (%d replicas x 4xA100 + 70B, slo %s)",
		chaosReplicas, metrics.DefaultSLO()), header, table)
}
