package experiments

import (
	"strings"
	"testing"
)

// The acceptance bar for the autoscaling study on the quick config:
// elastic provisioning must come in at or under the static-peak GPU
// bill while matching its goodput.
func TestAutoscaleFrontier(t *testing.T) {
	env := testEnv(t)
	rows, err := Autoscale(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 deployments, got %d", len(rows))
	}
	byName := map[string]AutoscaleRow{}
	for _, r := range rows {
		byName[r.Deployment] = r
		if r.GPUHours <= 0 {
			t.Errorf("%s: non-positive GPU-hours %.3f", r.Deployment, r.GPUHours)
		}
		if r.Report.Requests != len(env.Requests) {
			t.Errorf("%s: finished %d of %d requests", r.Deployment, r.Report.Requests, len(env.Requests))
		}
	}
	peak, mean, elastic := byName["static-peak"], byName["static-mean"], byName["elastic"]
	if elastic.GPUHours > peak.GPUHours {
		t.Errorf("elastic GPU-hours %.2f exceed static-peak %.2f", elastic.GPUHours, peak.GPUHours)
	}
	if elastic.Report.Latency.Goodput() < peak.Report.Latency.Goodput() {
		t.Errorf("elastic goodput %.3f below static-peak %.3f",
			elastic.Report.Latency.Goodput(), peak.Report.Latency.Goodput())
	}
	if !elastic.Report.Autoscale.Any() || elastic.Report.Autoscale.ScaleUps == 0 {
		t.Errorf("elastic run recorded no autoscale activity: %+v", elastic.Report.Autoscale)
	}
	// The diurnal peak must actually stress the mean fleet, or the
	// study degenerates into three idle deployments.
	if mean.Report.Latency.TTFTP99 <= peak.Report.Latency.TTFTP99 {
		t.Errorf("static-mean ttft p99 %.2f not above static-peak %.2f — trace too gentle",
			mean.Report.Latency.TTFTP99, peak.Report.Latency.TTFTP99)
	}

	out := FormatAutoscale(rows)
	for _, want := range []string{"static-peak", "static-mean", "elastic", "gpu-hours", "goodput"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatAutoscale missing %q:\n%s", want, out)
		}
	}
}
