package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/offload"
)

// OffloadRow is one row of the §2.2.2 motivation experiment: offloading
// instances contending for the root complex vs. TD-Pipe's pipeline.
type OffloadRow struct {
	System       string
	GPUs         int
	TokensPerSec float64
	// ScalingEff is aggregate throughput relative to GPUs x the
	// 1-GPU offloading result.
	ScalingEff float64
}

// Offload regenerates the §2.2.2 argument on L20 + 32B: the model does
// not fit one GPU resident, offloading runs it anywhere but stops
// scaling with GPU count, while TD-Pipe turns the same 4 GPUs into a
// pipeline.
func Offload(env *Env) ([]OffloadRow, error) {
	node, spec := hw.L20, model.Qwen2_5_32B
	reqs := env.Requests

	var rows []OffloadRow
	var base float64
	for _, gpus := range []int{1, 2, 4} {
		res, err := offload.Run(offload.DefaultConfig(node, spec, gpus), reqs)
		if err != nil {
			return nil, err
		}
		tput := res.Report.OutputThroughput()
		if gpus == 1 {
			base = tput
		}
		rows = append(rows, OffloadRow{
			System:       "Offload",
			GPUs:         gpus,
			TokensPerSec: tput,
			ScalingEff:   tput / (base * float64(gpus)),
		})
	}
	cfg := core.DefaultConfig(node, spec, 4)
	cfg.Predictor = env.Classifier
	res, err := core.Run(cfg, reqs)
	if err != nil {
		return nil, err
	}
	rows = append(rows, OffloadRow{
		System:       "TD-Pipe",
		GPUs:         4,
		TokensPerSec: res.Report.OutputThroughput(),
		ScalingEff:   res.Report.OutputThroughput() / (base * 4),
	})
	return rows, nil
}

// FormatOffload renders the comparison table.
func FormatOffload(rows []OffloadRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.System, fmt.Sprintf("%d", r.GPUs),
			fmt.Sprintf("%.0f", r.TokensPerSec),
			fmt.Sprintf("%.2f", r.ScalingEff),
		})
	}
	return renderTable("§2.2.2: offloading vs pipeline parallelism (L20 + 32B)",
		[]string{"system", "GPUs", "tokens/s", "scaling eff"}, out)
}
