package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// DisaggRow is one cell of the disaggregation sweep: a pool split
// (or the colocated control) served at one offered load.
type DisaggRow struct {
	// Load labels the offered load as a fraction of fleet capacity.
	Load string
	// Split names the deployment: "colocated" or "<p>P+<d>D".
	Split string
	// Rate is the offered arrival rate in requests/s.
	Rate float64
	// Report carries throughput plus the latency digest.
	Report metrics.Report
	// Handoffs counts KV migrations (0 for the colocated control);
	// Queued of them waited for decode-pool headroom.
	Handoffs int
	Queued   int
}

// disaggSplits are the pool splits swept against the colocated
// control, all over the same total replica count.
var disaggSplits = []fleet.DisaggConfig{
	{PrefillReplicas: 1, DecodeReplicas: 3},
	{PrefillReplicas: 2, DecodeReplicas: 2},
	{PrefillReplicas: 3, DecodeReplicas: 1},
}

// disaggLoadFactors are the swept offered loads as fractions of the
// fleet's closed-loop service capacity: below, near and past
// saturation. Bursty arrivals push instantaneous load to twice the
// mean, so even the 0.7x point spends its bursts saturated — where
// phase interference shows up in the TTFT tail.
var disaggLoadFactors = []float64{0.7, 0.9, 1.2}

// disaggReplicas is the total replica count every deployment uses.
const disaggReplicas = 4

// Disagg sweeps phase-disaggregated serving on the 4xA100 + 70B
// deployment: 4 replicas are split into prefill and decode pools with
// an explicit KV hand-off over the node's KV link, versus a colocated
// least-work control, under bursty (MMPP) arrivals at and past
// saturation. Colocated replicas interleave prefill and decode phases,
// so a burst arriving mid-decode waits out the phase — the TTFT tail
// the split is designed to cut. The decode pools pay for it with the
// modeled transfer and fewer token slots, which the TPOT and goodput
// columns surface.
func Disagg(e *Env) ([]DisaggRow, error) {
	cfg := core.DefaultConfig(hw.A100, model.Llama2_70B, 4)
	cfg.Predictor = e.Classifier
	cfg.SLO = metrics.DefaultSLO()

	// Calibrate: one replica's closed-loop makespan bounds the fleet's
	// service rate.
	offline, err := core.Run(cfg, e.Requests)
	if err != nil {
		return nil, err
	}
	if offline.Report.Elapsed <= 0 {
		return nil, fmt.Errorf("experiments: degenerate disagg calibration run")
	}
	capacity := float64(disaggReplicas) * float64(len(e.Requests)) / offline.Report.Elapsed

	var rows []DisaggRow
	for _, f := range disaggLoadFactors {
		rate := f * capacity
		acfg := workload.ArrivalConfig{Kind: workload.ArrivalBursty, Rate: rate, Seed: e.Opts.Seed + 51}
		open, err := acfg.Stamp(e.Requests)
		if err != nil {
			return nil, err
		}
		load := fmt.Sprintf("%.1fx", f)

		p, err := fleet.New(fleet.LeastWork, fleet.Options{Seed: e.Opts.Seed, Predictor: e.Classifier})
		if err != nil {
			return nil, err
		}
		colo, err := fleet.RunOnlineWorkers(cfg, disaggReplicas, p, open, e.Opts.Workers)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DisaggRow{Load: load, Split: "colocated", Rate: rate, Report: colo.Report})

		for _, dc := range disaggSplits {
			wdc := dc
			wdc.Workers = e.Opts.Workers
			res, err := fleet.RunDisagg(cfg, wdc, open)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DisaggRow{
				Load:     load,
				Split:    fmt.Sprintf("%dP+%dD", dc.PrefillReplicas, dc.DecodeReplicas),
				Rate:     rate,
				Report:   res.Report,
				Handoffs: res.Handoffs,
				Queued:   res.QueuedHandoffs,
			})
		}
	}
	return rows, nil
}

// FormatDisagg renders the disaggregation sweep.
func FormatDisagg(rows []DisaggRow) string {
	header := []string{"load", "split", "req/s", "out tok/s", "ttft p50/p99 (s)", "tpot p99 (ms)", "goodput %", "handoffs (queued)"}
	var table [][]string
	for _, r := range rows {
		d := r.Report.Latency
		hand := "-"
		if r.Split != "colocated" {
			hand = fmt.Sprintf("%d (%d)", r.Handoffs, r.Queued)
		}
		table = append(table, []string{
			r.Load,
			r.Split,
			fmt.Sprintf("%.2f", r.Rate),
			fmt.Sprintf("%.0f", r.Report.OutputThroughput()),
			fmt.Sprintf("%.1f/%.1f", d.TTFTP50, d.TTFTP99),
			fmt.Sprintf("%.0f", 1e3*d.TPOTP99),
			fmt.Sprintf("%.1f", 100*d.Goodput()),
			hand,
		})
	}
	return renderTable(fmt.Sprintf("Disagg: prefill/decode disaggregation vs colocated under bursty arrivals (%d replicas x 4xA100 + 70B, slo %s)",
		disaggReplicas, metrics.DefaultSLO()), header, table)
}
