package experiments

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/plot"
)

// Fig2Result holds the two utilization timelines of Figure 2: the
// chunked-prefill pipeline baseline (PP+HB) against TD-Pipe on the same
// workload and hardware.
type Fig2Result struct {
	Window   float64
	Baseline []metrics.UtilPoint
	TDPipe   []metrics.UtilPoint
	// Mean utilizations over each full run.
	BaselineMean, TDPipeMean float64
}

// Fig2 regenerates the GPU-utilization comparison on 4xL20 + 32B.
func Fig2(env *Env) (*Fig2Result, error) {
	node, spec := hw.L20, model.Qwen2_5_32B
	world := 4

	bres, err := baselines.Run(baselines.DefaultConfig(node, spec, world, baselines.PPHB), env.Requests)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(node, spec, world)
	cfg.Predictor = env.Classifier
	tres, err := core.Run(cfg, env.Requests)
	if err != nil {
		return nil, err
	}
	window := bres.Report.Elapsed / 50
	if w2 := tres.Report.Elapsed / 50; w2 > window {
		window = w2
	}
	return &Fig2Result{
		Window:       window,
		Baseline:     bres.Rec.Timeline(window, bres.Report.Elapsed),
		TDPipe:       tres.Rec.Timeline(window, tres.Report.Elapsed),
		BaselineMean: bres.Report.MeanUtilization,
		TDPipeMean:   tres.Report.MeanUtilization,
	}, nil
}

// FormatFig2 renders both series as sparkline rows plus a shared line
// chart, the closest text analogue of the paper's two panels.
func FormatFig2(r *Fig2Result) string {
	rows := [][]string{
		{"vLLM chunked prefill PP", sparkline(r.Baseline), fmt.Sprintf("mean %.1f%%", 100*r.BaselineMean)},
		{"TD-Pipe", sparkline(r.TDPipe), fmt.Sprintf("mean %.1f%%", 100*r.TDPipeMean)},
	}
	out := renderTable("Figure 2: GPU utilization over time (4xL20 + 32B)",
		[]string{"system", "utilization timeline", ""}, rows)
	toSeries := func(name string, pts []metrics.UtilPoint) plot.Series {
		s := plot.Series{Name: name}
		for _, p := range pts {
			s.X = append(s.X, p.Time)
			s.Y = append(s.Y, p.Utilization)
		}
		return s
	}
	out += "\n" + plot.Line([]plot.Series{
		toSeries("vLLM chunked prefill PP", r.Baseline),
		toSeries("TD-Pipe", r.TDPipe),
	}, 72, 10, 1)
	return out
}

func sparkline(pts []metrics.UtilPoint) string {
	glyphs := []rune("▁▂▃▄▅▆▇█")
	out := make([]rune, len(pts))
	for i, p := range pts {
		g := int(p.Utilization * float64(len(glyphs)))
		if g >= len(glyphs) {
			g = len(glyphs) - 1
		}
		if g < 0 {
			g = 0
		}
		out[i] = glyphs[g]
	}
	return string(out)
}

// Fig6Row is one bar group of Figure 6: the prefill execution-time
// breakdown under tensor parallelism.
type Fig6Row struct {
	Node string
	GPUs int
	// Normalized is total time relative to the 1-GPU run.
	Normalized float64
	// ComputeFrac and CommFrac split the bar.
	ComputeFrac, CommFrac float64
}

// Fig6 regenerates the TP prefill breakdown: Llama-30B, 2048 prompts,
// L20 and A100 nodes, 1/2/4 GPUs (§2.2.3).
func Fig6(env *Env) ([]Fig6Row, error) {
	prompts := env.Pool
	if len(prompts) > 2048 {
		prompts = prompts[:2048]
	}
	var rows []Fig6Row
	for _, node := range []hw.Node{hw.L20, hw.A100} {
		cm, err := costmodel.New(node, model.Llama30B)
		if err != nil {
			return nil, err
		}
		base := 0.0
		for _, world := range []int{1, 2, 4} {
			var comp, comm float64
			// Batch prompts as the serving engine would (2048-token
			// prefill batches).
			var lens []int
			tokens := 0
			flush := func() {
				if len(lens) == 0 {
					return
				}
				c, m := cm.TPPrefill(world, costmodel.NewPrefillBatch(lens))
				comp += c
				comm += m
				lens, tokens = nil, 0
			}
			for _, r := range prompts {
				lens = append(lens, r.InputLen)
				tokens += r.InputLen
				if tokens >= 2048 {
					flush()
				}
			}
			flush()
			total := comp + comm
			if world == 1 {
				base = total
			}
			rows = append(rows, Fig6Row{
				Node:        node.Name,
				GPUs:        world,
				Normalized:  total / base,
				ComputeFrac: comp / total,
				CommFrac:    comm / total,
			})
		}
	}
	return rows, nil
}

// FormatFig6 renders the breakdown table.
func FormatFig6(rows []Fig6Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Node, fmt.Sprintf("%d", r.GPUs),
			fmt.Sprintf("%.2f", r.Normalized),
			fmt.Sprintf("%.1f%%", 100*r.ComputeFrac),
			fmt.Sprintf("%.1f%%", 100*r.CommFrac),
		})
	}
	return renderTable("Figure 6: TP prefill time breakdown (Llama-30B, 2048 prompts)",
		[]string{"node", "GPUs", "normalized time", "computation", "communication"}, out)
}

// Fig12Result is the KV-usage timeline of Figure 12.
type Fig12Result struct {
	Points []metrics.KVPoint
	Peak   float64
	// PhaseSwitches counts prefill<->decode alternations.
	PhaseSwitches int
}

// Fig12 regenerates the KV-cache fluctuation trace on 4xA100 + 70B.
func Fig12(env *Env) (*Fig12Result, error) {
	cfg := core.DefaultConfig(hw.A100, model.Llama2_70B, 4)
	cfg.Predictor = env.Classifier
	cfg.RecordKV = true
	res, err := core.Run(cfg, env.Requests)
	if err != nil {
		return nil, err
	}
	return &Fig12Result{
		Points:        res.KV.Points,
		Peak:          res.KV.Peak(),
		PhaseSwitches: res.KV.PhaseSwitches(),
	}, nil
}

// FormatFig12 renders the usage trace compressed to a fixed width.
func FormatFig12(r *Fig12Result) string {
	const width = 72
	pts := r.Points
	line := make([]metrics.UtilPoint, 0, width)
	if len(pts) > 0 {
		stride := len(pts) / width
		if stride < 1 {
			stride = 1
		}
		for i := 0; i < len(pts); i += stride {
			line = append(line, metrics.UtilPoint{Time: pts[i].Time, Utilization: pts[i].Usage})
		}
	}
	rows := [][]string{
		{"KV usage", sparkline(line)},
		{"peak", fmt.Sprintf("%.2f", r.Peak)},
		{"phase switches", fmt.Sprintf("%d", r.PhaseSwitches)},
	}
	out := renderTable("Figure 12: KV cache memory usage over steps (4xA100 + 70B)",
		[]string{"", ""}, rows)
	s := plot.Series{Name: "KV usage ratio"}
	for _, p := range r.Points {
		s.X = append(s.X, float64(p.Step))
		s.Y = append(s.Y, p.Usage)
	}
	out += "\n" + plot.Line([]plot.Series{s}, 72, 10, 1)
	return out
}
