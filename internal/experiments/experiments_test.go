package experiments

import (
	"strings"
	"sync"
	"testing"
)

// Tests share one Env (trace generation + predictor training are the
// slow parts) and a cached Fig11 grid.
var (
	envOnce sync.Once
	envInst *Env
	envErr  error

	fig11Once  sync.Once
	fig11Cells []Fig11Cell
	fig11Err   error
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { envInst, envErr = NewEnv(Quick()) })
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envInst
}

func fig11Grid(t *testing.T) []Fig11Cell {
	t.Helper()
	env := testEnv(t)
	fig11Once.Do(func() { fig11Cells, fig11Err = Fig11(env) })
	if fig11Err != nil {
		t.Fatal(fig11Err)
	}
	return fig11Cells
}

func TestOptionsValidate(t *testing.T) {
	if err := Quick().Validate(); err != nil {
		t.Error(err)
	}
	if err := Paper().Validate(); err != nil {
		t.Error(err)
	}
	bad := Quick()
	bad.Requests = bad.PoolSize + 1
	if bad.Validate() == nil {
		t.Error("sample larger than pool accepted")
	}
	if (Options{}).Validate() == nil {
		t.Error("zero options accepted")
	}
}

func TestNewEnvBuildsEverything(t *testing.T) {
	env := testEnv(t)
	if len(env.Pool) != env.Opts.PoolSize || len(env.Requests) != env.Opts.Requests {
		t.Fatalf("env sizes: pool=%d sample=%d", len(env.Pool), len(env.Requests))
	}
	if env.Classifier == nil {
		t.Fatal("no classifier")
	}
	if acc := env.Classifier.Accuracy(env.Test); acc < 0.3 {
		t.Errorf("classifier accuracy = %v", acc)
	}
}

func TestFig11GridComplete(t *testing.T) {
	cells := fig11Grid(t)
	want := 4 * 3 * 5
	if len(cells) != want {
		t.Fatalf("%d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if !c.OOM && c.TokensPerSec <= 0 {
			t.Errorf("cell %+v has no throughput and no OOM", c)
		}
	}
}

// Paper Fig. 11 headline: at 4 GPUs TD-Pipe beats every baseline in
// every node-model combination.
func TestFig11TDPipeWinsAtFourGPUs(t *testing.T) {
	cells := fig11Grid(t)
	for _, combo := range Fig11Combos() {
		td, ok := FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "TD-Pipe")
		if !ok || td.OOM {
			t.Fatalf("missing TD-Pipe cell for %s+%s", combo.Node.Name, combo.Spec.Name)
		}
		for _, sched := range []string{"TP+SB", "TP+HB", "PP+SB", "PP+HB"} {
			b, ok := FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, sched)
			if !ok {
				t.Fatalf("missing %s cell", sched)
			}
			if b.OOM {
				continue
			}
			if td.TokensPerSec <= b.TokensPerSec {
				t.Errorf("%s+%s x4: TD-Pipe (%.0f) did not beat %s (%.0f)",
					combo.Node.Name, combo.Spec.Name, td.TokensPerSec, sched, b.TokensPerSec)
			}
		}
	}
}

// Paper: "up to 1.91x over TP and 2.73x over PP" — our factors must be
// comfortably above 1 and PP+SB must be the weakest pipeline baseline.
func TestFig11SpeedupFactors(t *testing.T) {
	cells := fig11Grid(t)
	var maxTP, maxPPSB float64
	for _, combo := range Fig11Combos() {
		td, _ := FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "TD-Pipe")
		tp, _ := FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "TP+SB")
		pp, _ := FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "PP+SB")
		if !td.OOM && !tp.OOM && td.TokensPerSec/tp.TokensPerSec > maxTP {
			maxTP = td.TokensPerSec / tp.TokensPerSec
		}
		if !td.OOM && !pp.OOM && td.TokensPerSec/pp.TokensPerSec > maxPPSB {
			maxPPSB = td.TokensPerSec / pp.TokensPerSec
		}
	}
	if maxTP < 1.2 || maxTP > 3.0 {
		t.Errorf("max TD/TP+SB factor = %.2f, want paper-like (1.91x) in [1.2, 3.0]", maxTP)
	}
	if maxPPSB < 1.5 || maxPPSB > 4.5 {
		t.Errorf("max TD/PP+SB factor = %.2f, want paper-like (2.73x) in [1.5, 4.5]", maxPPSB)
	}
	if maxPPSB <= maxTP {
		t.Errorf("PP+SB factor (%.2f) should exceed TP factor (%.2f) as in the paper", maxPPSB, maxTP)
	}
}

// Paper: hybrid batching helps pipeline parallelism (PP+HB > PP+SB)
// while TP+SB and TP+HB show fewer differences.
func TestFig11HybridBatchingEffects(t *testing.T) {
	cells := fig11Grid(t)
	for _, combo := range Fig11Combos() {
		ppsb, _ := FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "PP+SB")
		pphb, _ := FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "PP+HB")
		if ppsb.OOM || pphb.OOM {
			continue
		}
		if pphb.TokensPerSec <= ppsb.TokensPerSec {
			t.Errorf("%s+%s: PP+HB (%.0f) not above PP+SB (%.0f)",
				combo.Node.Name, combo.Spec.Name, pphb.TokensPerSec, ppsb.TokensPerSec)
		}
		tpsb, _ := FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "TP+SB")
		tphb, _ := FindCell(cells, combo.Node.Name, combo.Spec.Name, 4, "TP+HB")
		ratio := tphb.TokensPerSec / tpsb.TokensPerSec
		if ratio < 0.7 || ratio > 1.3 {
			t.Errorf("%s+%s: TP+HB/TP+SB = %.2f, paper reports few differences",
				combo.Node.Name, combo.Spec.Name, ratio)
		}
	}
}

// Paper Fig. 11: the OOM pattern — 32B does not fit one L20; 70B does
// not fit 1-2 A100s; 13B fits everywhere on L20.
func TestFig11OOMPattern(t *testing.T) {
	cells := fig11Grid(t)
	for _, sched := range Fig11Schedulers() {
		if c, _ := FindCell(cells, "L20", "Qwen2.5-32B-Instruct", 1, sched); !c.OOM {
			t.Errorf("%s: 32B on one L20 not OOM", sched)
		}
		if c, _ := FindCell(cells, "A100", "Llama2-70B-chat", 1, sched); !c.OOM {
			t.Errorf("%s: 70B on one A100 not OOM", sched)
		}
		if c, _ := FindCell(cells, "A100", "Llama2-70B-chat", 2, sched); !c.OOM {
			t.Errorf("%s: 70B on two A100s not OOM", sched)
		}
		for _, gpus := range []int{1, 2, 4} {
			if c, _ := FindCell(cells, "L20", "Llama2-13B-chat", gpus, sched); c.OOM {
				t.Errorf("%s: 13B on %d L20s OOM", sched, gpus)
			}
		}
	}
}

// Paper §4.2: TD-Pipe shows super-linear speedup from 2 to 4 GPUs where
// memory capacity relief kicks in (L20 + 32B grew 2.97x).
func TestFig11SuperLinearScaling(t *testing.T) {
	cells := fig11Grid(t)
	td2, _ := FindCell(cells, "L20", "Qwen2.5-32B-Instruct", 2, "TD-Pipe")
	td4, _ := FindCell(cells, "L20", "Qwen2.5-32B-Instruct", 4, "TD-Pipe")
	if td2.OOM || td4.OOM {
		t.Fatal("unexpected OOM")
	}
	growth := td4.TokensPerSec / td2.TokensPerSec
	if growth <= 2.0 {
		t.Errorf("L20+32B 2->4 GPU growth = %.2fx, want super-linear (> 2)", growth)
	}
}

func TestFig2UtilizationGap(t *testing.T) {
	env := testEnv(t)
	r, err := Fig2(env)
	if err != nil {
		t.Fatal(err)
	}
	if r.TDPipeMean <= r.BaselineMean {
		t.Errorf("TD-Pipe utilization (%.2f) not above chunked-prefill PP (%.2f)",
			r.TDPipeMean, r.BaselineMean)
	}
	if len(r.Baseline) == 0 || len(r.TDPipe) == 0 {
		t.Error("empty timelines")
	}
	if s := FormatFig2(r); !strings.Contains(s, "TD-Pipe") {
		t.Error("format output incomplete")
	}
}

func TestFig6BreakdownShape(t *testing.T) {
	env := testEnv(t)
	rows, err := Fig6(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows, want 6", len(rows))
	}
	for _, r := range rows {
		if r.GPUs == 1 && r.CommFrac != 0 {
			t.Errorf("%s x1: comm frac = %v, want 0", r.Node, r.CommFrac)
		}
		if r.GPUs == 4 && (r.CommFrac < 0.3 || r.CommFrac > 0.65) {
			t.Errorf("%s x4: comm frac = %v, want ~half (paper: 47-54%%)", r.Node, r.CommFrac)
		}
		if r.Normalized <= 0 || r.Normalized > 1.01 {
			t.Errorf("%s x%d: normalized = %v", r.Node, r.GPUs, r.Normalized)
		}
	}
	// A100's 4-GPU comm share exceeds L20's (paper: 53.9% vs 47.4%).
	var l20, a100 float64
	for _, r := range rows {
		if r.GPUs == 4 {
			if r.Node == "L20" {
				l20 = r.CommFrac
			} else {
				a100 = r.CommFrac
			}
		}
	}
	if a100 <= l20 {
		t.Errorf("A100 comm frac (%.2f) not above L20 (%.2f)", a100, l20)
	}
}

func TestFig12KVDynamics(t *testing.T) {
	env := testEnv(t)
	r, err := Fig12(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no KV points")
	}
	if r.Peak <= 0 || r.Peak > 1 {
		t.Errorf("peak = %v", r.Peak)
	}
	// Usage must decline to ~zero at the end (all requests finished).
	last := r.Points[len(r.Points)-1]
	if last.Usage > 0.2 {
		t.Errorf("final usage = %v", last.Usage)
	}
}

// Paper Fig. 13: the AI-based greedy prefill beats (or matches within
// noise) every fixed occupancy ratio.
func TestFig13GreedyPrefillCompetitive(t *testing.T) {
	env := testEnv(t)
	rows, err := Fig13(env)
	if err != nil {
		t.Fatal(err)
	}
	assertAdaptiveBest(t, rows, "TD-Pipe", 0.97)
}

// Paper Fig. 15: stealing gives 1.07-1.14x; at least it must not hurt.
func TestFig15WorkStealingHelps(t *testing.T) {
	env := testEnv(t)
	rows, err := Fig15(env)
	if err != nil {
		t.Fatal(err)
	}
	byConfig := map[string]map[string]float64{}
	for _, r := range rows {
		k := r.Node + r.Model
		if byConfig[k] == nil {
			byConfig[k] = map[string]float64{}
		}
		byConfig[k][r.Label] = r.TokensPerSec
	}
	for k, m := range byConfig {
		if m["wi"] < m["wo"]*0.98 {
			t.Errorf("%s: stealing hurt: wi=%.0f wo=%.0f", k, m["wi"], m["wo"])
		}
	}
}

// Paper Fig. 16: the intensity comparison is at least as good as every
// fixed finish ratio.
func TestFig16IntensityCompetitive(t *testing.T) {
	env := testEnv(t)
	rows, err := Fig16(env)
	if err != nil {
		t.Fatal(err)
	}
	assertAdaptiveBest(t, rows, "TD-Pipe", 0.97)
}

// assertAdaptiveBest checks per config that the adaptive label is within
// slack of the best fixed setting (and usually above it).
func assertAdaptiveBest(t *testing.T, rows []AblationRow, label string, slack float64) {
	t.Helper()
	type cfg struct{ node, mdl string }
	best := map[cfg]float64{}
	adaptive := map[cfg]float64{}
	for _, r := range rows {
		k := cfg{r.Node, r.Model}
		if r.Label == label {
			adaptive[k] = r.TokensPerSec
			continue
		}
		if r.TokensPerSec > best[k] {
			best[k] = r.TokensPerSec
		}
	}
	for k, a := range adaptive {
		if a < best[k]*slack {
			t.Errorf("%v: adaptive %.0f below best fixed %.0f", k, a, best[k])
		}
	}
}

func TestFig14PredictorQuality(t *testing.T) {
	env := testEnv(t)
	r, err := Fig14(env)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range r.ModelNames {
		if r.Accuracies[i] < 0.30 || r.Accuracies[i] > 0.85 {
			t.Errorf("%s accuracy = %v, outside paper-like range", name, r.Accuracies[i])
		}
		if r.Accuracies[i] <= r.Baselines[i] {
			t.Errorf("%s accuracy below majority baseline", name)
		}
		first, last := r.AccumErr[i][0], r.AccumErr[i][len(r.AccumErr[i])-1]
		if last >= first {
			t.Errorf("%s accumulated error did not shrink: %v -> %v", name, first, last)
		}
		if last > 0.15 {
			t.Errorf("%s error at 512 = %v, want small (paper: 2.8-6.2%% at 256)", name, last)
		}
	}
}

func TestFormatters(t *testing.T) {
	env := testEnv(t)
	cells := fig11Grid(t)
	if s := FormatFig11(cells); !strings.Contains(s, "OOM") || !strings.Contains(s, "TD-Pipe") {
		t.Error("Fig11 format incomplete")
	}
	rows6, err := Fig6(env)
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatFig6(rows6); !strings.Contains(s, "communication") {
		t.Error("Fig6 format incomplete")
	}
	r14, err := Fig14(env)
	if err != nil {
		t.Fatal(err)
	}
	if s := FormatFig14(r14); !strings.Contains(s, "accuracy") {
		t.Error("Fig14 format incomplete")
	}
	if s := FormatTable1(); !strings.Contains(s, "L20") || !strings.Contains(s, "A100") {
		t.Error("Table1 format incomplete")
	}
	if s := FormatTable2(); !strings.Contains(s, "Llama2-70B-chat") {
		t.Error("Table2 format incomplete")
	}
	if s := FormatAblation("x", []AblationRow{{"n", "m", "l", 1}}); !strings.Contains(s, "tokens/s") {
		t.Error("ablation format incomplete")
	}
}

// Paper §2.2.2: offloading stops scaling with GPU count (root-complex
// contention) while TD-Pipe's pipeline uses the same GPUs effectively.
func TestOffloadMotivation(t *testing.T) {
	env := testEnv(t)
	rows, err := Offload(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	var off1, off4, td float64
	for _, r := range rows {
		switch {
		case r.System == "Offload" && r.GPUs == 1:
			off1 = r.TokensPerSec
		case r.System == "Offload" && r.GPUs == 4:
			off4 = r.TokensPerSec
		case r.System == "TD-Pipe":
			td = r.TokensPerSec
		}
	}
	if off4 > 2.2*off1 {
		t.Errorf("offload scaled %0.2fx from 1 to 4 GPUs; contention should cap it", off4/off1)
	}
	if td <= off4 {
		t.Errorf("TD-Pipe (%.0f) did not beat 4-GPU offloading (%.0f)", td, off4)
	}
	if s := FormatOffload(rows); !strings.Contains(s, "Offload") {
		t.Error("format incomplete")
	}
}

// Design-choice sweeps: every setting must complete, and the defaults
// must be competitive (within 10% of the best swept value).
func TestSweeps(t *testing.T) {
	env := testEnv(t)
	pb, err := SweepPrefillBatch(env)
	if err != nil {
		t.Fatal(err)
	}
	var best, def float64
	for _, r := range pb {
		if r.TokensPerSec > best {
			best = r.TokensPerSec
		}
		if r.Value == 2048 {
			def = r.TokensPerSec
		}
	}
	if def < 0.9*best {
		t.Errorf("default MaxPrefillTokens=2048 (%.0f) more than 10%% below best (%.0f)", def, best)
	}
	ct, err := SweepChunkTokens(env)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ct {
		if r.TokensPerSec <= 0 {
			t.Errorf("chunk sweep %d produced no throughput", r.Value)
		}
	}
	if s := FormatSweep("t", pb); !strings.Contains(s, "MaxPrefillTokens") {
		t.Error("sweep format incomplete")
	}
}
