package experiments

import (
	"strings"
	"testing"
)

// The online sweep must calibrate against the offline run, cover every
// load factor, and produce finite latency/goodput columns.
func TestOnlineSweep(t *testing.T) {
	env, err := NewEnv(Options{PoolSize: 2000, Requests: 250, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Online(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+len(onlineLoadFactors) {
		t.Fatalf("got %d rows, want %d", len(rows), 1+len(onlineLoadFactors))
	}
	if rows[0].Label != "offline" || rows[0].Rate != 0 {
		t.Errorf("first row = %+v, want offline calibration", rows[0])
	}
	for i, r := range rows[1:] {
		if r.Rate <= 0 {
			t.Errorf("row %d rate = %v", i+1, r.Rate)
		}
		if i > 0 && r.Rate <= rows[i].Rate {
			t.Errorf("rates not increasing at row %d", i+1)
		}
		d := r.Report.Latency
		if d.Requests != 250 {
			t.Errorf("row %q digest covers %d requests", r.Label, d.Requests)
		}
		if g := d.Goodput(); g < 0 || g > 1 {
			t.Errorf("row %q goodput = %v", r.Label, g)
		}
		if d.TTFTP99 < d.TTFTP50 {
			t.Errorf("row %q ttft p99 %v < p50 %v", r.Label, d.TTFTP99, d.TTFTP50)
		}
	}
	// Lighter load must not have worse p99 TTFT than the heaviest
	// point (queueing grows with load).
	lightest, heaviest := rows[1].Report.Latency, rows[len(rows)-1].Report.Latency
	if lightest.TTFTP99 > heaviest.TTFTP99 {
		t.Errorf("ttft p99 shrank with load: %.2f at light vs %.2f at heavy",
			lightest.TTFTP99, heaviest.TTFTP99)
	}
	out := FormatOnline(rows)
	if !strings.Contains(out, "offline") || !strings.Contains(out, "goodput") {
		t.Errorf("formatted table missing columns:\n%s", out)
	}
}
