package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/workload"
)

// FaultsRow is one cell of the fault-injection study: a failure
// scenario served on the 4-replica fleet, with the recovery accounting
// next to the goodput it costs.
type FaultsRow struct {
	// Scenario names the injected failure mode.
	Scenario string
	// Ckpt labels the checkpoint cadence ("off" or the interval).
	Ckpt string
	// Report carries throughput, the latency digest and Report.Faults.
	Report metrics.Report
}

// faultsReplicas is the fleet size every scenario uses.
const faultsReplicas = 4

// faultsMTBFFractions sweeps crash pressure as fractions of the
// fault-free makespan: one expected crash per replica per run, two,
// and four.
var faultsMTBFFractions = []float64{1.0, 0.5, 0.25}

// Faults sweeps seeded fault injection on the 4xA100 + 70B online
// fleet: replica crashes at increasing MTBF pressure, each served
// recompute-only and with periodic KV checkpointing (the recovery
// trade-off: checkpoint stall time vs. redone generation), plus a
// straggler scenario and a disaggregated deployment whose crashes and
// KV-link impairments cross the hand-off path. Every scenario is a
// deterministic plan drawn from the run seed; crash-lost requests are
// re-dispatched with a bounded retry budget, and requests that exhaust
// it are dropped with a reason — the goodput column pays for them.
func Faults(e *Env) ([]FaultsRow, error) {
	cfg := core.DefaultConfig(hw.A100, model.Llama2_70B, 4)
	cfg.Predictor = e.Classifier
	cfg.SLO = metrics.DefaultSLO()

	// Calibrate: one replica's closed-loop makespan bounds the fleet's
	// service rate; offer 80% of it so the control run has headroom.
	offline, err := core.Run(cfg, e.Requests)
	if err != nil {
		return nil, err
	}
	if offline.Report.Elapsed <= 0 {
		return nil, fmt.Errorf("experiments: degenerate faults calibration run")
	}
	rate := 0.8 * float64(faultsReplicas) * float64(len(e.Requests)) / offline.Report.Elapsed
	acfg := workload.ArrivalConfig{Kind: workload.ArrivalPoisson, Rate: rate, Seed: e.Opts.Seed + 61}
	open, err := acfg.Stamp(e.Requests)
	if err != nil {
		return nil, err
	}

	newPolicy := func() (fleet.Policy, error) {
		return fleet.New(fleet.LeastWork, fleet.Options{Seed: e.Opts.Seed, Predictor: e.Classifier})
	}

	p, err := newPolicy()
	if err != nil {
		return nil, err
	}
	control, err := fleet.RunOnlineWorkers(cfg, faultsReplicas, p, open, e.Opts.Workers)
	if err != nil {
		return nil, err
	}
	makespan := control.Report.Elapsed
	rows := []FaultsRow{{Scenario: "fault-free", Ckpt: "off", Report: control.Report}}

	// Each crash's outage: process restart plus reloading the largest
	// pipeline stage's weights over the host link.
	restartDelay := makespan / 50
	downtime := restartDelay + faults.WeightReloadTime(cfg.Node, cfg.Spec, cfg.World)
	ckptInterval := makespan / 8

	for _, frac := range faultsMTBFFractions {
		for _, ckpt := range []float64{0, ckptInterval} {
			fc := faults.Config{
				Seed:               e.Opts.Seed + 71,
				Horizon:            makespan,
				MTBF:               frac * makespan,
				RestartDelay:       restartDelay,
				CheckpointInterval: ckpt,
			}
			plan, err := faults.NewPlan(fc, faultsReplicas, downtime)
			if err != nil {
				return nil, err
			}
			p, err := newPolicy()
			if err != nil {
				return nil, err
			}
			res, err := fleet.RunOnlineFaultsWorkers(cfg, faultsReplicas, p, open, plan, e.Opts.Workers)
			if err != nil {
				return nil, err
			}
			ck := "off"
			if ckpt > 0 {
				ck = fmt.Sprintf("%.0fs", ckpt)
			}
			rows = append(rows, FaultsRow{
				Scenario: fmt.Sprintf("crash mtbf=%gx", frac),
				Ckpt:     ck,
				Report:   res.Report,
			})
		}
	}

	// One straggler at 30% slower: no losses, pure makespan stretch.
	strag, err := faults.NewPlan(faults.Config{
		Seed: e.Opts.Seed + 73, Stragglers: 1, StragglerFactor: 1.3,
	}, faultsReplicas, 0)
	if err != nil {
		return nil, err
	}
	p, err = newPolicy()
	if err != nil {
		return nil, err
	}
	sres, err := fleet.RunOnlineFaultsWorkers(cfg, faultsReplicas, p, open, strag, e.Opts.Workers)
	if err != nil {
		return nil, err
	}
	rows = append(rows, FaultsRow{Scenario: "1 straggler 1.3x", Ckpt: "off", Report: sres.Report})

	// Disaggregated deployment under the same crash pressure plus an
	// impaired KV hand-off link (degraded and partitioned windows).
	dc := fleet.DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2, Workers: e.Opts.Workers}
	dfc := faults.Config{
		Seed:               e.Opts.Seed + 79,
		Horizon:            makespan,
		MTBF:               makespan / 2,
		RestartDelay:       restartDelay,
		LinkDegradeFrac:    0.25,
		LinkDegradeFactor:  4,
		LinkPartitionFrac:  0.125,
		CheckpointInterval: ckptInterval,
	}
	dplan, err := faults.NewPlan(dfc, faultsReplicas, downtime)
	if err != nil {
		return nil, err
	}
	dres, err := fleet.RunDisaggFaults(cfg, dc, open, dplan)
	if err != nil {
		return nil, err
	}
	rows = append(rows, FaultsRow{Scenario: "disagg 2P+2D mtbf=0.5x +link", Ckpt: fmt.Sprintf("%.0fs", ckptInterval), Report: dres.Report})
	return rows, nil
}

// FormatFaults renders the fault-injection study.
func FormatFaults(rows []FaultsRow) string {
	header := []string{"scenario", "ckpt", "crashes", "aborted", "recovered (rc/ck)", "dropped", "out tok/s", "ttft p99 (s)", "goodput %"}
	var table [][]string
	for _, r := range rows {
		f := r.Report.Faults
		table = append(table, []string{
			r.Scenario,
			r.Ckpt,
			fmt.Sprintf("%d", f.Crashes),
			fmt.Sprintf("%d", f.AbortedRequests),
			fmt.Sprintf("%d/%d", f.RecoveredRecompute, f.RecoveredCheckpoint),
			fmt.Sprintf("%d", f.Dropped),
			fmt.Sprintf("%.0f", r.Report.OutputThroughput()),
			fmt.Sprintf("%.1f", r.Report.Latency.TTFTP99),
			fmt.Sprintf("%.1f", 100*r.Report.Latency.Goodput()),
		})
	}
	return renderTable(fmt.Sprintf("Faults: seeded crash/straggler/link injection with recovery (%d replicas x 4xA100 + 70B, slo %s)",
		faultsReplicas, metrics.DefaultSLO()), header, table)
}
