package kvcache

// Prefix sharing: PagedAttention-style ref-counted block reuse behind a
// prefix trie of hash-chained block keys.
//
// Requests that open with the same shared prefix (system prompt,
// conversation history) map their first full blocks to the same chain
// of keys: key_i = mix(key_{i-1}, i), rooted at the prefix group. The
// chain IS the trie — looking up a prefix walks keys from the root and
// stops at the first miss, so a longer conversation extends a shorter
// one's chain instead of duplicating it. Each resident shared block is
// counted once in the pool no matter how many sequences reference it;
// blocks whose refcount drops to zero stay resident ("warm") and are
// reclaimed LRU, chain tails first, only under memory pressure.
//
// Copy-on-write: only full blocks are shared between prefix groups, so
// decode appends never write a group-shared block. Fork clones a whole
// sequence zero-copy (multi-turn conversation branching); the clone's
// partial tail block stays shared until one side appends, which copies
// it (refs > 1) or adopts it in place (sole owner) — see Append.

import (
	"fmt"
	"sort"
)

// sharedBlock is one resident ref-counted block.
type sharedBlock struct {
	refs    int
	lastUse int // touchSeq stamp; LRU order for reclaiming warm blocks
}

// ShareStats counts prefix-sharing traffic since the manager was built.
type ShareStats struct {
	// HitBlocks/MissBlocks count shared-prefix blocks found resident
	// vs. newly inserted at allocation time.
	HitBlocks, MissBlocks int
	// ReclaimedBlocks counts warm blocks dropped under memory pressure.
	ReclaimedBlocks int
	// CoWCopies counts copy-on-write block copies taken on append.
	CoWCopies int
}

// Stats returns the sharing counters.
func (m *Manager) Stats() ShareStats { return m.stats }

// SharedBlocks returns the number of resident shared blocks.
func (m *Manager) SharedBlocks() int { return len(m.shared) }

// WarmBlocks returns resident shared blocks no live sequence references.
func (m *Manager) WarmBlocks() int { return m.reclaimable }

// chainKeys returns the hash-chained keys of the first n full blocks of
// group's shared prefix: a splitmix-style chain rooted at the group id,
// so equal (group, block index) pairs collide on purpose and everything
// else does not (up to 64-bit hashing).
func chainKeys(group, n int) []uint64 {
	if n <= 0 {
		return nil
	}
	keys := make([]uint64, n)
	h := uint64(group)*0x9E3779B97F4A7C15 + 0x85EBCA77C2B2AE63
	for i := range keys {
		h += uint64(i) + 0x9E3779B97F4A7C15
		h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
		h = (h ^ (h >> 27)) * 0x94D049BB133111EB
		h ^= h >> 31
		keys[i] = h
	}
	return keys
}

// forkKey returns a fresh key for a block promoted to shared by Fork.
func (m *Manager) forkKey() uint64 {
	m.forkSeq++
	h := uint64(m.forkSeq)*0xD6E8FEB86659FD93 + 0xA0761D6478BD642F
	h = (h ^ (h >> 32)) * 0xE7037ED1A0B428DB
	return h ^ (h >> 29)
}

// touch advances the LRU clock and returns the new stamp.
func (m *Manager) touch() int {
	m.touchSeq++
	return m.touchSeq
}

// MatchPrefix returns how many tokens of the first prefixTokens tokens
// of group's shared prefix are resident right now — the longest warm or
// referenced chain walk from the root, in whole blocks. This is the
// signal cache-affinity dispatch reads and the prefill skip the engine
// applies.
func (m *Manager) MatchPrefix(group, prefixTokens int) int {
	n := prefixTokens / m.blockSize
	hit := 0
	for _, k := range chainKeys(group, n) {
		if _, ok := m.shared[k]; !ok {
			break
		}
		hit++
	}
	return hit * m.blockSize
}

// sharedPlan sizes an AllocateShared call: the chain keys, which are
// resident, how many blocks must be newly taken, and the contiguous hit
// length in tokens.
type sharedPlan struct {
	keys      []uint64
	resident  []bool
	newBlocks int // missing chain blocks + private blocks
	hitTokens int
	hitBlocks int
}

func (m *Manager) planShared(tokens, group, prefixTokens int) sharedPlan {
	if prefixTokens > tokens {
		prefixTokens = tokens
	}
	if prefixTokens < 0 {
		prefixTokens = 0
	}
	n := prefixTokens / m.blockSize
	p := sharedPlan{keys: chainKeys(group, n), resident: make([]bool, n)}
	contig := n
	missing := 0
	for i, k := range p.keys {
		if _, ok := m.shared[k]; ok {
			p.resident[i] = true
			p.hitBlocks++
		} else {
			missing++
			if i < contig {
				contig = i
			}
		}
	}
	// Only a contiguous chain from the root skips prefill work: KV for
	// position t needs every earlier position resident too.
	p.hitTokens = contig * m.blockSize
	p.newBlocks = missing + m.BlocksFor(tokens) - n
	return p
}

// CanAllocateShared reports whether a new sequence of tokens tokens
// whose first prefixTokens tokens belong to group's shared prefix fits,
// counting resident chain blocks as already paid for and warm blocks as
// reclaimable.
func (m *Manager) CanAllocateShared(tokens, group, prefixTokens int) bool {
	return m.planShared(tokens, group, prefixTokens).newBlocks <= m.FreeBlocks()+m.reclaimable
}

// AllocateShared reserves blocks for a new sequence whose first
// prefixTokens tokens are group's shared prefix. Resident chain blocks
// are referenced instead of re-allocated; missing ones are inserted
// (ref 1) so later sequences hit them. It returns the contiguous hit
// length in tokens — prefill work the caller may skip.
func (m *Manager) AllocateShared(id, tokens, group, prefixTokens int) (int, error) {
	if tokens <= 0 {
		return 0, fmt.Errorf("kvcache: allocate %d tokens", tokens)
	}
	if id < 0 {
		return 0, fmt.Errorf("kvcache: negative sequence id %d", id)
	}
	if m.Has(id) {
		return 0, fmt.Errorf("kvcache: sequence %d already allocated", id)
	}
	p := m.planShared(tokens, group, prefixTokens)
	// Reference resident chain blocks first so reclaim cannot drop them
	// while making room for the rest.
	for i, k := range p.keys {
		if !p.resident[i] {
			continue
		}
		b := m.shared[k]
		b.refs++
		if b.refs == 1 {
			m.reclaimable--
		}
	}
	if p.newBlocks > m.FreeBlocks() {
		m.reclaim(p.newBlocks - m.FreeBlocks())
	}
	if p.newBlocks > m.FreeBlocks() {
		for i, k := range p.keys { // roll the references back
			if !p.resident[i] {
				continue
			}
			b := m.shared[k]
			b.refs--
			if b.refs == 0 {
				m.reclaimable++
			}
		}
		return 0, fmt.Errorf("kvcache: out of memory: need %d blocks, free %d", p.newBlocks, m.FreeBlocks())
	}
	for i, k := range p.keys {
		if !p.resident[i] {
			m.shared[k] = &sharedBlock{refs: 1}
			m.used++
		}
	}
	// Touch tail-first so LRU reclaim drops chain tails before roots,
	// keeping surviving chains contiguous (and so hittable).
	for i := len(p.keys) - 1; i >= 0; i-- {
		m.shared[p.keys[i]].lastUse = m.touch()
	}
	priv := m.BlocksFor(tokens) - len(p.keys)
	m.allocSeq++
	m.setSeq(id, seqAlloc{tokens: tokens, blocks: priv, keys: p.keys, arrival: m.allocSeq})
	m.used += priv
	if m.used > m.peak {
		m.peak = m.used
	}
	m.stats.HitBlocks += p.hitBlocks
	m.stats.MissBlocks += len(p.keys) - p.hitBlocks
	return p.hitTokens, nil
}

// Fork clones parent's cache for child zero-copy: every block of the
// parent becomes shared between the two, private blocks are promoted to
// ref-counted shared blocks in place, and the first append to the
// (possibly partial) tail block triggers copy-on-write in Append. The
// child starts with the parent's token count and no private blocks.
func (m *Manager) Fork(parentID, childID int) error {
	p, ok := m.seq(parentID)
	if !ok {
		return fmt.Errorf("kvcache: fork of unknown sequence %d", parentID)
	}
	if childID < 0 {
		return fmt.Errorf("kvcache: negative sequence id %d", childID)
	}
	if m.Has(childID) {
		return fmt.Errorf("kvcache: sequence %d already allocated", childID)
	}
	for _, k := range p.keys {
		b := m.shared[k]
		b.refs++
		if b.refs == 1 {
			m.reclaimable--
		}
	}
	all := append([]uint64(nil), p.keys...)
	for i := 0; i < p.blocks; i++ {
		k := m.forkKey()
		m.shared[k] = &sharedBlock{refs: 2}
		all = append(all, k)
	}
	for i := len(all) - 1; i >= 0; i-- {
		m.shared[all[i]].lastUse = m.touch()
	}
	// used is unchanged: p.blocks private blocks became p.blocks shared
	// blocks, each still counted once.
	p.blocks = 0
	p.keys = all
	m.seqs[parentID-m.base] = p
	m.allocSeq++
	m.setSeq(childID, seqAlloc{tokens: p.tokens, keys: append([]uint64(nil), all...), arrival: m.allocSeq})
	return nil
}

// reclaim drops up to need warm shared blocks (refs == 0), least
// recently used first, turning cached-but-unreferenced memory back into
// free blocks.
func (m *Manager) reclaim(need int) {
	if need <= 0 || m.reclaimable == 0 {
		return
	}
	type cand struct {
		key     uint64
		lastUse int
	}
	cands := make([]cand, 0, m.reclaimable)
	for k, b := range m.shared {
		if b.refs == 0 {
			cands = append(cands, cand{k, b.lastUse})
		}
	}
	// lastUse stamps are unique (one touch per block event), so the
	// order — and therefore the whole simulation — is deterministic.
	sort.Slice(cands, func(i, j int) bool { return cands[i].lastUse < cands[j].lastUse })
	for _, c := range cands {
		if need <= 0 {
			break
		}
		delete(m.shared, c.key)
		m.used--
		m.reclaimable--
		m.stats.ReclaimedBlocks++
		need--
	}
}
