package kvcache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustManager(t *testing.T, tokens, bs int) *Manager {
	t.Helper()
	m, err := NewManager(tokens, bs)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(0, 16); err == nil {
		t.Error("zero capacity accepted")
	}
	m := mustManager(t, 1000, 0)
	if m.BlockSize() != DefaultBlockSize {
		t.Errorf("default block size = %d", m.BlockSize())
	}
	// 1000 tokens round UP to 63 blocks: a capacity not divisible by
	// the block size must not silently drop the remainder.
	if m.CapacityBlocks() != 63 {
		t.Errorf("capacity blocks = %d, want 63 (rounded up)", m.CapacityBlocks())
	}
	if m.CapacityTokens() != 63*16 {
		t.Errorf("capacity tokens = %d, want %d", m.CapacityTokens(), 63*16)
	}
}

func TestNewManagerBytes(t *testing.T) {
	m, err := NewManagerBytes(1<<20, 1024, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.CapacityTokens() != 1024 {
		t.Errorf("capacity tokens = %d, want 1024", m.CapacityTokens())
	}
	if _, err := NewManagerBytes(1<<20, 0, 16); err == nil {
		t.Error("zero bytes-per-token accepted")
	}
}

func TestAllocateFreeRoundTrip(t *testing.T) {
	m := mustManager(t, 1600, 16) // 100 blocks
	if err := m.Allocate(1, 100); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 7 { // ceil(100/16)
		t.Errorf("used = %d, want 7", m.UsedBlocks())
	}
	if m.Tokens(1) != 100 || !m.Has(1) || m.Live() != 1 {
		t.Error("sequence state wrong after allocate")
	}
	m.Free(1)
	if m.UsedBlocks() != 0 || m.Has(1) || m.Live() != 0 {
		t.Error("state not clean after free")
	}
	m.Free(1) // double free is a no-op
	if m.UsedBlocks() != 0 {
		t.Error("double free corrupted accounting")
	}
}

func TestAllocateErrors(t *testing.T) {
	m := mustManager(t, 160, 16) // 10 blocks
	if err := m.Allocate(1, 0); err == nil {
		t.Error("zero-token allocation accepted")
	}
	if err := m.Allocate(1, 100); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(1, 10); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := m.Allocate(2, 100); err == nil {
		t.Error("over-capacity allocation accepted")
	}
}

func TestAppendGrowsByBlocks(t *testing.T) {
	m := mustManager(t, 160, 16)
	if err := m.Allocate(1, 16); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 1 {
		t.Fatalf("used = %d", m.UsedBlocks())
	}
	// Appending one token crosses a block boundary.
	if !m.CanAppend(1, 1) {
		t.Fatal("CanAppend(1) = false")
	}
	if err := m.Append(1, 1); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 2 || m.Tokens(1) != 17 {
		t.Errorf("used = %d tokens = %d", m.UsedBlocks(), m.Tokens(1))
	}
	// Appending within the block takes no new blocks.
	if err := m.Append(1, 15); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 2 {
		t.Errorf("used = %d after intra-block growth", m.UsedBlocks())
	}
}

func TestAppendErrors(t *testing.T) {
	m := mustManager(t, 32, 16)
	if err := m.Append(9, 1); err == nil {
		t.Error("append to unknown sequence accepted")
	}
	if err := m.Allocate(1, 16); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(1, 0); err == nil {
		t.Error("zero append accepted")
	}
	if err := m.Allocate(2, 16); err != nil {
		t.Fatal(err)
	}
	if m.CanAppend(1, 1) {
		t.Error("CanAppend true with no free blocks")
	}
	if err := m.Append(1, 1); err == nil {
		t.Error("OOM append accepted")
	}
	if m.CanAppend(42, 1) {
		t.Error("CanAppend true for unknown sequence")
	}
}

func TestPeakTracksHighWater(t *testing.T) {
	m := mustManager(t, 160, 16)
	_ = m.Allocate(1, 64) // 4 blocks
	_ = m.Allocate(2, 64) // 4 blocks
	m.Free(1)
	if m.PeakBlocks() != 8 {
		t.Errorf("peak = %d, want 8", m.PeakBlocks())
	}
	if m.UsedBlocks() != 4 {
		t.Errorf("used = %d, want 4", m.UsedBlocks())
	}
}

func TestEvictMostRecent(t *testing.T) {
	m := mustManager(t, 160, 16) // 10 blocks
	_ = m.Allocate(1, 48)        // 3 blocks, oldest
	_ = m.Allocate(2, 48)        // 3 blocks
	_ = m.Allocate(3, 48)        // 3 blocks, newest
	// Need 6 free blocks -> evict newest first: 3, then 2.
	evicted := m.EvictMostRecent(6, nil)
	if len(evicted) != 2 || evicted[0] != 3 || evicted[1] != 2 {
		t.Fatalf("evicted = %v, want [3 2]", evicted)
	}
	if !m.Has(1) || m.Has(2) || m.Has(3) {
		t.Error("wrong sequences evicted")
	}
	if m.FreeBlocks() < 6 {
		t.Errorf("free = %d after eviction", m.FreeBlocks())
	}
}

func TestEvictRespectsKeepSet(t *testing.T) {
	m := mustManager(t, 96, 16) // 6 blocks
	_ = m.Allocate(1, 32)
	_ = m.Allocate(2, 32)
	_ = m.Allocate(3, 32)
	evicted := m.EvictMostRecent(2, map[int]bool{3: true})
	if len(evicted) != 1 || evicted[0] != 2 {
		t.Fatalf("evicted = %v, want [2]", evicted)
	}
	if !m.Has(3) {
		t.Error("kept sequence was evicted")
	}
}

func TestEvictNoOpWhenEnoughFree(t *testing.T) {
	m := mustManager(t, 160, 16)
	_ = m.Allocate(1, 16)
	if ev := m.EvictMostRecent(1, nil); ev != nil {
		t.Errorf("needless eviction: %v", ev)
	}
}

func TestSnapshotSortedByID(t *testing.T) {
	m := mustManager(t, 1600, 16)
	for _, id := range []int{5, 1, 3} {
		_ = m.Allocate(id, 20)
	}
	snap := m.Snapshot()
	if len(snap) != 3 || snap[0].ID != 1 || snap[1].ID != 3 || snap[2].ID != 5 {
		t.Errorf("snapshot = %v", snap)
	}
	if snap[0].Tokens != 20 || snap[0].Blocks != 2 {
		t.Errorf("snapshot entry = %+v", snap[0])
	}
}

// Property: under any sequence of operations the accounting invariants
// hold: used == sum of per-seq blocks, 0 <= used <= capacity, blocks
// always match BlocksFor(tokens).
func TestAccountingInvariantProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, _ := NewManager(16*64, 16)
		live := map[int]bool{}
		next := 0
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0:
				next++
				tokens := rng.Intn(200) + 1
				if m.CanAllocate(tokens) {
					if err := m.Allocate(next, tokens); err != nil {
						return false
					}
					live[next] = true
				} else if err := m.Allocate(next, tokens); err == nil {
					return false // CanAllocate said no but Allocate worked
				}
			case 1:
				for id := range live {
					n := rng.Intn(40) + 1
					if m.CanAppend(id, n) {
						if err := m.Append(id, n); err != nil {
							return false
						}
					}
					break
				}
			case 2:
				for id := range live {
					m.Free(id)
					delete(live, id)
					break
				}
			}
			sum := 0
			for _, s := range m.Snapshot() {
				if s.Blocks != m.BlocksFor(s.Tokens) {
					return false
				}
				sum += s.Blocks
			}
			if sum != m.UsedBlocks() || m.UsedBlocks() < 0 || m.UsedBlocks() > m.CapacityBlocks() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
