package kvcache

import "testing"

// Interleaved allocation and free must keep eviction strictly
// most-recent-first in allocation order, with a re-allocated id taking
// its new, refreshed recency.
func TestEvictionOrderInterleavedAllocFree(t *testing.T) {
	m := mustManager(t, 16*10, 16) // 10 blocks
	for _, id := range []int{1, 2, 3} {
		if err := m.Allocate(id, 32); err != nil { // 2 blocks each
			t.Fatal(err)
		}
	}
	m.Free(2)
	for _, id := range []int{4, 5, 2} { // 2 comes back as the newest
		if err := m.Allocate(id, 32); err != nil {
			t.Fatal(err)
		}
	}
	evicted := m.EvictMostRecent(6, nil)
	if len(evicted) != 3 || evicted[0] != 2 || evicted[1] != 5 || evicted[2] != 4 {
		t.Fatalf("evicted = %v, want [2 5 4] (most recent first)", evicted)
	}
	if !m.Has(1) || !m.Has(3) {
		t.Error("older sequences evicted out of order")
	}
	if m.FreeBlocks() < 6 {
		t.Errorf("free = %d after eviction", m.FreeBlocks())
	}
}

// Two sequences sharing a prefix pay for the shared blocks once; the
// second allocation reports the full hit, and freeing both leaves the
// chain warm and matchable.
func TestAllocateSharedHitMiss(t *testing.T) {
	m := mustManager(t, 16*100, 16)
	hit, err := m.AllocateShared(1, 100, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hit != 0 {
		t.Errorf("cold allocation hit %d tokens", hit)
	}
	if m.UsedBlocks() != 7 { // 4 shared + ceil(100/16)-4 = 3 private
		t.Errorf("used = %d, want 7", m.UsedBlocks())
	}
	hit, err = m.AllocateShared(2, 100, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hit != 64 {
		t.Errorf("second allocation hit %d tokens, want 64", hit)
	}
	if m.UsedBlocks() != 10 { // shared counted once: +3 private only
		t.Errorf("used = %d, want 10", m.UsedBlocks())
	}
	if st := m.Stats(); st.HitBlocks != 4 || st.MissBlocks != 4 {
		t.Errorf("stats = %+v, want 4 hits / 4 misses", st)
	}
	// A different group must not hit this chain.
	if got := m.MatchPrefix(8, 64); got != 0 {
		t.Errorf("foreign group matched %d tokens", got)
	}

	m.Free(1)
	if m.WarmBlocks() != 0 { // seq 2 still references the chain
		t.Errorf("warm = %d with a live referencer", m.WarmBlocks())
	}
	m.Free(2)
	if m.WarmBlocks() != 4 || m.UsedBlocks() != 4 {
		t.Errorf("warm = %d used = %d after freeing both, want 4/4", m.WarmBlocks(), m.UsedBlocks())
	}
	if got := m.MatchPrefix(7, 64); got != 64 {
		t.Errorf("warm chain matches %d tokens, want 64", got)
	}
	// The next allocation hits the warm chain without re-paying.
	hit, err = m.AllocateShared(3, 70, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hit != 64 {
		t.Errorf("warm reuse hit %d tokens, want 64", hit)
	}
}

// Double-freeing a sharing sequence must not drop its references twice.
func TestDoubleFreeSharedDropsRefsOnce(t *testing.T) {
	m := mustManager(t, 16*20, 16)
	if _, err := m.AllocateShared(1, 64, 3, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocateShared(2, 64, 3, 64); err != nil {
		t.Fatal(err)
	}
	m.Free(1)
	m.Free(1) // no-op: refs must not go negative
	if m.WarmBlocks() != 0 {
		t.Fatalf("warm = %d; double free dropped live refs", m.WarmBlocks())
	}
	if got := m.MatchPrefix(3, 64); got != 64 {
		t.Errorf("chain matches %d tokens after double free, want 64", got)
	}
	m.Free(2)
	if m.WarmBlocks() != 4 {
		t.Errorf("warm = %d after final free, want 4", m.WarmBlocks())
	}
}

// Fork clones a sequence zero-copy; the first append to the shared
// partial tail copies it (other referencers) or adopts it (sole owner).
func TestForkCopyOnWrite(t *testing.T) {
	m := mustManager(t, 16*10, 16)
	if err := m.Allocate(1, 24); err != nil { // 2 blocks, partial tail
		t.Fatal(err)
	}
	if err := m.Fork(1, 2); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 2 {
		t.Fatalf("used = %d after zero-copy fork, want 2", m.UsedBlocks())
	}
	if m.Tokens(2) != 24 {
		t.Fatalf("child tokens = %d, want 24", m.Tokens(2))
	}
	if err := m.Fork(1, 2); err == nil {
		t.Error("fork onto an existing id accepted")
	}
	if err := m.Fork(42, 9); err == nil {
		t.Error("fork of unknown sequence accepted")
	}

	// Child appends into the shared partial tail -> copy-on-write.
	if err := m.Append(2, 4); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 3 {
		t.Errorf("used = %d after CoW copy, want 3", m.UsedBlocks())
	}
	if st := m.Stats(); st.CoWCopies != 1 {
		t.Errorf("CoW copies = %d, want 1", st.CoWCopies)
	}
	if m.Tokens(1) != 24 || m.Tokens(2) != 28 {
		t.Errorf("tokens = %d/%d, want 24/28", m.Tokens(1), m.Tokens(2))
	}

	// Parent is now the tail's sole owner: append adopts it in place.
	if err := m.Append(1, 4); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 3 {
		t.Errorf("used = %d after adopt, want 3 (no new block)", m.UsedBlocks())
	}
	if st := m.Stats(); st.CoWCopies != 1 {
		t.Errorf("adopt counted as a copy: %+v", st)
	}

	m.Free(1)
	m.Free(2)
	// Both privates freed; the one still-shared full block stays warm.
	if m.UsedBlocks() != 1 || m.WarmBlocks() != 1 {
		t.Errorf("used/warm = %d/%d after frees, want 1/1", m.UsedBlocks(), m.WarmBlocks())
	}
}

// CanAppend must agree with Append on forked sequences: the CoW copy
// needs a block even when the token count alone says otherwise, and
// the adopt path needs none.
func TestCanAppendMatchesAppendOnForkedTail(t *testing.T) {
	m := mustManager(t, 16, 16) // exactly 1 block
	if err := m.Allocate(1, 8); err != nil {
		t.Fatal(err)
	}
	if err := m.Fork(1, 2); err != nil {
		t.Fatal(err)
	}
	// Zero free blocks: the CoW copy cannot be taken.
	if m.CanAppend(2, 1) {
		t.Error("CanAppend true though the CoW copy has no free block")
	}
	if err := m.Append(2, 1); err == nil {
		t.Error("OOM CoW append accepted")
	}
	// Parent gone -> sole owner -> adopt in place, no new block needed.
	m.Free(1)
	if !m.CanAppend(2, 1) {
		t.Error("CanAppend false though adopt needs no block")
	}
	if err := m.Append(2, 1); err != nil {
		t.Errorf("adopt append failed: %v", err)
	}
	if m.UsedBlocks() != 1 || m.Tokens(2) != 9 {
		t.Errorf("used/tokens = %d/%d after adopt, want 1/9", m.UsedBlocks(), m.Tokens(2))
	}
}

// Evicting a sequence that shares blocks must only drop its references:
// surviving referencers keep the chain, and warm blocks are reclaimed
// tail-first so the remaining chain stays contiguous and hittable.
func TestEvictWhileShared(t *testing.T) {
	m := mustManager(t, 16*12, 16) // 12 blocks
	if _, err := m.AllocateShared(1, 64, 5, 64); err != nil {
		t.Fatal(err) // 4 shared
	}
	if _, err := m.AllocateShared(2, 80, 5, 64); err != nil {
		t.Fatal(err) // +1 private
	}
	if err := m.Allocate(3, 112); err != nil { // +7 private: pool full
		t.Fatal(err)
	}
	evicted := m.EvictMostRecent(2, map[int]bool{3: true})
	if len(evicted) != 2 || evicted[0] != 2 || evicted[1] != 1 {
		t.Fatalf("evicted = %v, want [2 1]", evicted)
	}
	if m.FreeBlocks() < 2 {
		t.Errorf("free = %d after eviction", m.FreeBlocks())
	}
	// Eviction dropped refs, then reclaimed only what it needed, from
	// the chain tail: the surviving prefix must still match from the
	// root.
	if got := m.MatchPrefix(5, 64); got != 48 {
		t.Errorf("surviving chain matches %d tokens, want 48", got)
	}
}

// Warm chains are reclaimed LRU tail-first by ordinary allocations too,
// and CanAllocate counts warm blocks as allocatable space.
func TestReclaimKeepsChainContiguous(t *testing.T) {
	m := mustManager(t, 16*8, 16) // 8 blocks
	if _, err := m.AllocateShared(1, 96, 9, 96); err != nil {
		t.Fatal(err) // 6 shared, 0 private
	}
	m.Free(1)
	if m.WarmBlocks() != 6 || m.FreeBlocks() != 2 {
		t.Fatalf("warm/free = %d/%d, want 6/2", m.WarmBlocks(), m.FreeBlocks())
	}
	if !m.CanAllocate(64) { // needs 4 blocks; 2 free + reclaimable warm
		t.Fatal("CanAllocate ignores reclaimable warm blocks")
	}
	if err := m.Allocate(2, 64); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.ReclaimedBlocks != 2 {
		t.Errorf("reclaimed = %d, want 2", st.ReclaimedBlocks)
	}
	if got := m.MatchPrefix(9, 96); got != 64 {
		t.Errorf("chain matches %d tokens after tail reclaim, want 64", got)
	}
}

// CanAllocateShared sizes against missing blocks only, and a full-pool
// shared allocation fails cleanly with references rolled back.
func TestAllocateSharedOOMRollback(t *testing.T) {
	m := mustManager(t, 16*6, 16) // 6 blocks
	if _, err := m.AllocateShared(1, 64, 2, 64); err != nil {
		t.Fatal(err) // 4 shared
	}
	// 2 free blocks: a 100-token (7-block) newcomer hits 4 shared and
	// needs 3 new -> must be refused even though it shares.
	if m.CanAllocateShared(112, 2, 64) {
		t.Error("CanAllocateShared accepted an over-capacity allocation")
	}
	if _, err := m.AllocateShared(9, 112, 2, 64); err == nil {
		t.Fatal("over-capacity shared allocation accepted")
	}
	// The failed attempt must not leave stray references: freeing the
	// only real referencer leaves the chain fully warm.
	m.Free(1)
	if m.WarmBlocks() != 4 {
		t.Errorf("warm = %d after rollback + free, want 4", m.WarmBlocks())
	}
	// A fitting sharer still succeeds against the warm chain.
	hit, err := m.AllocateShared(10, 80, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	if hit != 64 {
		t.Errorf("hit = %d tokens, want 64", hit)
	}
}
