package kvcache

// KV hand-off: serializing a sequence's block window out of one manager
// and re-materializing it in another (or the same one), preserving
// shared-prefix ref-counts and the sharing counters. This is the
// substrate of disaggregated prefill/decode serving: a prefill replica
// exports the finished prefix KV, the modeled interconnect carries the
// blocks, and the decode replica imports them and resumes generation.
//
// Chain keys (hash-chained from the prefix group, see sharing.go) are
// globally consistent, so an export referencing group-shared blocks
// imports into any manager: resident chain blocks are re-referenced
// instead of re-stored, which is exactly the affinity signal a
// disaggregated router exploits. Fork-derived keys are manager-local
// (drawn from the exporting manager's fork sequence), so exports of
// forked sequences round-trip only within their own manager.

import "fmt"

// ExportedSeq is a portable description of one sequence's KV block
// window: how many tokens it caches, how many private blocks back it,
// and the shared block keys it references, in chain order.
type ExportedSeq struct {
	// Tokens is the cached token count.
	Tokens int
	// PrivateBlocks is the number of blocks owned solely by the
	// sequence; their contents always travel with the export.
	PrivateBlocks int
	// Keys are the shared block keys the sequence referenced, root
	// first. On import, resident keys are re-referenced in place and
	// missing ones re-inserted from the transferred data.
	Keys []uint64
}

// Blocks returns the total block footprint of the export.
func (ex ExportedSeq) Blocks() int { return ex.PrivateBlocks + len(ex.Keys) }

// ExportKV detaches sequence id from the manager and returns its block
// window. The sequence's private blocks are released (their contents
// travel with the export) and its references on shared blocks are
// dropped — still-referenced blocks stay, zero-ref blocks stay resident
// as warm cache exactly as Free leaves them. No sharing counters are
// touched: an export followed by an import leaves the manager's
// statistics identical to never having exported.
func (m *Manager) ExportKV(id int) (ExportedSeq, error) {
	s, ok := m.seq(id)
	if !ok {
		return ExportedSeq{}, fmt.Errorf("kvcache: export of unknown sequence %d", id)
	}
	ex := ExportedSeq{
		Tokens:        s.tokens,
		PrivateBlocks: s.blocks,
		Keys:          append([]uint64(nil), s.keys...),
	}
	m.used -= s.blocks
	for _, k := range s.keys {
		b := m.shared[k]
		b.refs--
		if b.refs == 0 {
			m.reclaimable++
		}
	}
	m.seqs[id-m.base] = seqAlloc{}
	m.live--
	return ex, nil
}

// SnapshotKV returns sequence id's block window like ExportKV but
// WITHOUT detaching it: the sequence stays allocated and decoding can
// continue. This is the periodic-checkpoint primitive — a crash-safe
// copy a recovery path can later feed to ImportKV on another manager.
// The snapshot is immutable (keys are copied), so it stays valid as the
// live sequence keeps appending past it.
func (m *Manager) SnapshotKV(id int) (ExportedSeq, error) {
	s, ok := m.seq(id)
	if !ok {
		return ExportedSeq{}, fmt.Errorf("kvcache: snapshot of unknown sequence %d", id)
	}
	return ExportedSeq{
		Tokens:        s.tokens,
		PrivateBlocks: s.blocks,
		Keys:          append([]uint64(nil), s.keys...),
	}, nil
}

// ResidentBlocks returns how many of ex's shared keys are resident in m
// right now — blocks an import would reference instead of re-storing,
// and KV a hand-off need not move again. Private blocks are never
// resident elsewhere, so they do not count.
func (m *Manager) ResidentBlocks(ex ExportedSeq) int {
	n := 0
	for _, k := range ex.Keys {
		if _, ok := m.shared[k]; ok {
			n++
		}
	}
	return n
}

// MissingBlocks returns the blocks an import of ex into m would have to
// store: the private blocks plus every shared key not resident here.
// This sizes the import's memory footprint — the headroom a
// disaggregated router checks before placing a hand-off. (The modeled
// transfer always moves the whole window, ex.Blocks(); residency
// saves storage on the target, not link traffic.)
func (m *Manager) MissingBlocks(ex ExportedSeq) int {
	return ex.PrivateBlocks + len(ex.Keys) - m.ResidentBlocks(ex)
}

// CanImport reports whether ImportKV(id, ex) would fit right now,
// counting warm shared blocks as reclaimable space — except warm
// blocks that are themselves part of the export's chain: the import
// re-references those first, which takes them out of the reclaimable
// pool, so counting them as headroom too would promise space the
// import cannot actually free (mirrors ImportKV's arithmetic exactly).
func (m *Manager) CanImport(ex ExportedSeq) bool {
	resident, residentWarm := 0, 0
	for _, k := range ex.Keys {
		if b, ok := m.shared[k]; ok {
			resident++
			if b.refs == 0 {
				residentWarm++
			}
		}
	}
	missing := ex.PrivateBlocks + len(ex.Keys) - resident
	return missing <= m.FreeBlocks()+m.reclaimable-residentWarm
}

// ImportKV re-materializes an exported sequence as id. Resident shared
// keys are re-referenced in place; missing ones are re-inserted from the
// transferred data (ref 1); private blocks are re-allocated. It returns
// the number of shared blocks found resident (KV the import did not have
// to store). Like ExportKV it leaves the sharing counters untouched, so
// an export/import round trip is invisible in the statistics.
func (m *Manager) ImportKV(id int, ex ExportedSeq) (int, error) {
	if ex.Tokens <= 0 {
		return 0, fmt.Errorf("kvcache: import of %d tokens", ex.Tokens)
	}
	if id < 0 {
		return 0, fmt.Errorf("kvcache: negative sequence id %d", id)
	}
	if m.Has(id) {
		return 0, fmt.Errorf("kvcache: sequence %d already allocated", id)
	}
	if ex.PrivateBlocks < 0 || ex.Blocks() != m.BlocksFor(ex.Tokens) {
		return 0, fmt.Errorf("kvcache: malformed export: %d tokens need %d blocks, export carries %d",
			ex.Tokens, m.BlocksFor(ex.Tokens), ex.Blocks())
	}
	// Reference resident keys first so reclaim cannot drop them while
	// making room for the rest (mirrors AllocateShared).
	resident := 0
	for _, k := range ex.Keys {
		b, ok := m.shared[k]
		if !ok {
			continue
		}
		resident++
		b.refs++
		if b.refs == 1 {
			m.reclaimable--
		}
	}
	need := ex.PrivateBlocks + len(ex.Keys) - resident
	if need > m.FreeBlocks() {
		m.reclaim(need - m.FreeBlocks())
	}
	if need > m.FreeBlocks() {
		for _, k := range ex.Keys { // roll the references back
			b, ok := m.shared[k]
			if !ok {
				continue
			}
			b.refs--
			if b.refs == 0 {
				m.reclaimable++
			}
		}
		return 0, fmt.Errorf("kvcache: out of memory importing sequence %d: need %d blocks, free %d",
			id, need, m.FreeBlocks())
	}
	for _, k := range ex.Keys {
		if _, ok := m.shared[k]; !ok {
			m.shared[k] = &sharedBlock{refs: 1}
			m.used++
		}
	}
	// Touch tail-first so LRU reclaim drops chain tails before roots,
	// as AllocateShared does.
	for i := len(ex.Keys) - 1; i >= 0; i-- {
		m.shared[ex.Keys[i]].lastUse = m.touch()
	}
	m.allocSeq++
	m.setSeq(id, seqAlloc{
		tokens:  ex.Tokens,
		blocks:  ex.PrivateBlocks,
		keys:    append([]uint64(nil), ex.Keys...),
		arrival: m.allocSeq,
	})
	m.used += ex.PrivateBlocks
	if m.used > m.peak {
		m.peak = m.used
	}
	return resident, nil
}

// AvailableBlocks returns blocks an allocation could take right now:
// free blocks plus warm shared blocks reclaimable under pressure.
func (m *Manager) AvailableBlocks() int { return m.capacity - m.used + m.reclaimable }
