// Package kvcache implements a paged KV-cache block manager in the
// style of vLLM's PagedAttention allocator: per-request token counts are
// rounded up to fixed-size blocks drawn from a bounded pool. The
// schedulers use it for admission control, the greedy-prefill simulation
// for capacity checks, and the baselines for recompute-eviction when
// memory overflows (paper §4.1 "re-computation strategy").
package kvcache

import (
	"fmt"
	"sort"
)

// DefaultBlockSize is vLLM's default block granularity in tokens.
const DefaultBlockSize = 16

// Manager tracks block allocations for a set of sequences against a
// fixed capacity. It is not safe for concurrent use; in TD-Pipe only the
// centralized engine touches it, which mirrors the paper's design.
type Manager struct {
	blockSize int
	capacity  int // blocks

	used int // blocks
	seqs map[int]seqAlloc

	// peak tracks the high-water mark in blocks.
	peak int
	// allocSeq orders allocations for most-recent-first eviction.
	allocSeq int
}

type seqAlloc struct {
	tokens  int
	blocks  int
	arrival int
}

// NewManager returns a manager with capacity for capacityTokens tokens
// at the given block size (DefaultBlockSize if blockSize <= 0).
func NewManager(capacityTokens, blockSize int) (*Manager, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if capacityTokens <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive capacity %d", capacityTokens)
	}
	return &Manager{
		blockSize: blockSize,
		capacity:  capacityTokens / blockSize,
		seqs:      make(map[int]seqAlloc),
	}, nil
}

// NewManagerBytes sizes the pool from available bytes and per-token KV
// bytes.
func NewManagerBytes(availBytes, bytesPerToken float64, blockSize int) (*Manager, error) {
	if bytesPerToken <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive bytes per token %v", bytesPerToken)
	}
	return NewManager(int(availBytes/bytesPerToken), blockSize)
}

// BlockSize returns the block granularity in tokens.
func (m *Manager) BlockSize() int { return m.blockSize }

// CapacityBlocks returns the total block count.
func (m *Manager) CapacityBlocks() int { return m.capacity }

// CapacityTokens returns the capacity in tokens.
func (m *Manager) CapacityTokens() int { return m.capacity * m.blockSize }

// UsedBlocks returns blocks currently allocated.
func (m *Manager) UsedBlocks() int { return m.used }

// FreeBlocks returns blocks currently available.
func (m *Manager) FreeBlocks() int { return m.capacity - m.used }

// UsageRatio returns used/capacity in [0,1].
func (m *Manager) UsageRatio() float64 {
	return float64(m.used) / float64(m.capacity)
}

// PeakBlocks returns the allocation high-water mark.
func (m *Manager) PeakBlocks() int { return m.peak }

// Live returns the number of resident sequences.
func (m *Manager) Live() int { return len(m.seqs) }

// Tokens returns the cached token count for sequence id (0 if absent).
func (m *Manager) Tokens(id int) int { return m.seqs[id].tokens }

// Has reports whether sequence id is resident.
func (m *Manager) Has(id int) bool {
	_, ok := m.seqs[id]
	return ok
}

// BlocksFor returns the number of blocks needed for tokens tokens.
func (m *Manager) BlocksFor(tokens int) int {
	return (tokens + m.blockSize - 1) / m.blockSize
}

// CanAllocate reports whether a new sequence of tokens tokens fits.
func (m *Manager) CanAllocate(tokens int) bool {
	return m.BlocksFor(tokens) <= m.FreeBlocks()
}

// Allocate reserves blocks for a new sequence.
func (m *Manager) Allocate(id, tokens int) error {
	if tokens <= 0 {
		return fmt.Errorf("kvcache: allocate %d tokens", tokens)
	}
	if m.Has(id) {
		return fmt.Errorf("kvcache: sequence %d already allocated", id)
	}
	need := m.BlocksFor(tokens)
	if need > m.FreeBlocks() {
		return fmt.Errorf("kvcache: out of memory: need %d blocks, free %d", need, m.FreeBlocks())
	}
	m.allocSeq++
	m.seqs[id] = seqAlloc{tokens: tokens, blocks: need, arrival: m.allocSeq}
	m.used += need
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// CanAppend reports whether sequence id can grow by n tokens.
func (m *Manager) CanAppend(id, n int) bool {
	s, ok := m.seqs[id]
	if !ok {
		return false
	}
	return m.BlocksFor(s.tokens+n)-s.blocks <= m.FreeBlocks()
}

// Append grows sequence id by n tokens, taking new blocks as needed.
func (m *Manager) Append(id, n int) error {
	s, ok := m.seqs[id]
	if !ok {
		return fmt.Errorf("kvcache: append to unknown sequence %d", id)
	}
	if n <= 0 {
		return fmt.Errorf("kvcache: append %d tokens", n)
	}
	newBlocks := m.BlocksFor(s.tokens + n)
	grow := newBlocks - s.blocks
	if grow > m.FreeBlocks() {
		return fmt.Errorf("kvcache: out of memory growing sequence %d: need %d blocks, free %d", id, grow, m.FreeBlocks())
	}
	s.tokens += n
	s.blocks = newBlocks
	m.seqs[id] = s
	m.used += grow
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Free releases sequence id's blocks. Freeing an absent id is a no-op,
// matching allocator conventions.
func (m *Manager) Free(id int) {
	s, ok := m.seqs[id]
	if !ok {
		return
	}
	m.used -= s.blocks
	delete(m.seqs, id)
}

// EvictMostRecent frees the most recently admitted sequences until at
// least needBlocks are available, returning the evicted ids (most recent
// first). This is the paper's recompute strategy: "the KV cache of
// recently arrived requests will be freed once memory capacity is
// saturated". It never evicts ids in keep.
func (m *Manager) EvictMostRecent(needBlocks int, keep map[int]bool) []int {
	if m.FreeBlocks() >= needBlocks {
		return nil
	}
	type cand struct{ id, arrival int }
	cands := make([]cand, 0, len(m.seqs))
	for id, s := range m.seqs {
		if keep[id] {
			continue
		}
		cands = append(cands, cand{id, s.arrival})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].arrival > cands[j].arrival })
	var evicted []int
	for _, c := range cands {
		if m.FreeBlocks() >= needBlocks {
			break
		}
		m.Free(c.id)
		evicted = append(evicted, c.id)
	}
	return evicted
}

// Snapshot returns the resident (id, tokens) pairs sorted by id, for
// deterministic iteration by schedulers.
func (m *Manager) Snapshot() []SeqInfo {
	out := make([]SeqInfo, 0, len(m.seqs))
	for id, s := range m.seqs {
		out = append(out, SeqInfo{ID: id, Tokens: s.tokens, Blocks: s.blocks})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SeqInfo describes one resident sequence.
type SeqInfo struct {
	ID     int
	Tokens int
	Blocks int
}
