// Package kvcache implements a paged KV-cache block manager in the
// style of vLLM's PagedAttention allocator: per-request token counts are
// rounded up to fixed-size blocks drawn from a bounded pool. The
// schedulers use it for admission control, the greedy-prefill simulation
// for capacity checks, and the baselines for recompute-eviction when
// memory overflows (paper §4.1 "re-computation strategy").
package kvcache

import (
	"fmt"
	"sort"
)

// DefaultBlockSize is vLLM's default block granularity in tokens.
const DefaultBlockSize = 16

// Manager tracks block allocations for a set of sequences against a
// fixed capacity. It is not safe for concurrent use; in TD-Pipe only the
// centralized engine touches it, which mirrors the paper's design.
//
// Sequence ids are expected to be small and dense (the engines number
// requests 0..n-1): the per-sequence table is a flat slice indexed by
// id, so the per-decode-token Append path costs an array index, not a
// map probe.
//
// Beyond per-sequence private blocks, the manager supports ref-counted
// shared prefix blocks (see sharing.go): a sequence may reference a
// chain of shared blocks for its prompt prefix, paying for each shared
// block only once across the sequences that reference it.
type Manager struct {
	blockSize int
	capacity  int // blocks

	// used counts private blocks (summed over sequences) plus every
	// resident shared block exactly once, warm or referenced.
	used int
	// seqs is a dense window over sequence ids: seqs[i] holds id
	// base+i, and arrival == 0 marks an absent sequence (allocSeq
	// stamps start at 1). The window rebases whenever the table
	// empties, so long-lived managers serving ever-increasing ids stay
	// small.
	seqs []seqAlloc
	base int
	live int

	// shared holds resident shared blocks by hash-chained key; blocks
	// whose refcount drops to zero stay resident ("warm") until
	// reclaimed under memory pressure.
	shared      map[uint64]*sharedBlock
	reclaimable int // shared blocks with zero refs
	touchSeq    int // LRU clock for shared-block reclaim
	forkSeq     int // distinct keyspace for CoW-forked blocks
	stats       ShareStats

	// peak tracks the high-water mark in blocks.
	peak int
	// allocSeq orders allocations for most-recent-first eviction.
	allocSeq int
}

type seqAlloc struct {
	tokens int
	// blocks counts the sequence's private blocks; shared prefix blocks
	// are tracked by keys and counted once globally.
	blocks  int
	keys    []uint64
	arrival int
}

// NewManager returns a manager with capacity for capacityTokens tokens
// at the given block size (DefaultBlockSize if blockSize <= 0). The
// capacity is rounded UP to whole blocks, so a capacity that is not a
// multiple of the block size still admits every requested token rather
// than silently truncating to the next-lower block boundary.
func NewManager(capacityTokens, blockSize int) (*Manager, error) {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if capacityTokens <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive capacity %d", capacityTokens)
	}
	return &Manager{
		blockSize: blockSize,
		capacity:  (capacityTokens + blockSize - 1) / blockSize,
		shared:    make(map[uint64]*sharedBlock),
	}, nil
}

// AlignTokens floors tokens to a whole-block multiple of blockSize
// (DefaultBlockSize if blockSize <= 0). Callers that derived a token
// budget from raw bytes pass their capacity through this to keep the
// pre-rounding block count now that NewManager rounds up instead of
// silently truncating.
func AlignTokens(tokens, blockSize int) int {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return tokens - tokens%blockSize
}

// NewManagerBytes sizes the pool from available bytes and per-token KV
// bytes.
func NewManagerBytes(availBytes, bytesPerToken float64, blockSize int) (*Manager, error) {
	if bytesPerToken <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive bytes per token %v", bytesPerToken)
	}
	return NewManager(int(availBytes/bytesPerToken), blockSize)
}

// BlockSize returns the block granularity in tokens.
func (m *Manager) BlockSize() int { return m.blockSize }

// CapacityBlocks returns the total block count.
func (m *Manager) CapacityBlocks() int { return m.capacity }

// CapacityTokens returns the capacity in tokens.
func (m *Manager) CapacityTokens() int { return m.capacity * m.blockSize }

// UsedBlocks returns blocks currently allocated.
func (m *Manager) UsedBlocks() int { return m.used }

// FreeBlocks returns blocks currently available.
func (m *Manager) FreeBlocks() int { return m.capacity - m.used }

// UsageRatio returns used/capacity in [0,1].
func (m *Manager) UsageRatio() float64 {
	return float64(m.used) / float64(m.capacity)
}

// PeakBlocks returns the allocation high-water mark.
func (m *Manager) PeakBlocks() int { return m.peak }

// Live returns the number of resident sequences.
func (m *Manager) Live() int { return m.live }

// seq returns the allocation for id and whether it is resident.
func (m *Manager) seq(id int) (seqAlloc, bool) {
	i := id - m.base
	if i < 0 || i >= len(m.seqs) {
		return seqAlloc{}, false
	}
	s := m.seqs[i]
	return s, s.arrival != 0
}

// setSeq installs s for id, growing the dense table as needed.
//
// Invariant: every table slot at index >= len(m.seqs) and < cap is
// zero — fresh capacity comes zeroed from make, Free zeroes slots, and
// the table only shrinks (rebases) when all slots have been freed — so
// reslicing into spare capacity needs no clearing.
func (m *Manager) setSeq(id int, s seqAlloc) {
	if m.live == 0 {
		// Empty table: rebase the window to this id, so a long-lived
		// manager serving ever-increasing ids reuses its buffer
		// instead of growing with the id space.
		m.base = id
		m.seqs = m.seqs[:0]
	}
	if id < m.base {
		// Rare: extend the window downward by rebasing to id.
		shift := m.base - id
		grown := make([]seqAlloc, len(m.seqs)+shift, max(2*(len(m.seqs)+shift), 16))
		copy(grown[shift:], m.seqs)
		m.seqs = grown
		m.base = id
	}
	i := id - m.base
	if i >= len(m.seqs) {
		if i < cap(m.seqs) {
			m.seqs = m.seqs[:i+1]
		} else {
			grown := make([]seqAlloc, i+1, max(2*(i+1), 16))
			copy(grown, m.seqs)
			m.seqs = grown
		}
	}
	if m.seqs[i].arrival == 0 {
		m.live++
	}
	m.seqs[i] = s
}

// Tokens returns the cached token count for sequence id (0 if absent).
func (m *Manager) Tokens(id int) int {
	s, _ := m.seq(id)
	return s.tokens
}

// Has reports whether sequence id is resident.
func (m *Manager) Has(id int) bool {
	_, ok := m.seq(id)
	return ok
}

// BlocksFor returns the number of blocks needed for tokens tokens.
func (m *Manager) BlocksFor(tokens int) int {
	return (tokens + m.blockSize - 1) / m.blockSize
}

// CanAllocate reports whether a new sequence of tokens tokens fits,
// counting warm shared blocks as reclaimable space.
func (m *Manager) CanAllocate(tokens int) bool {
	return m.BlocksFor(tokens) <= m.FreeBlocks()+m.reclaimable
}

// Allocate reserves blocks for a new sequence, reclaiming warm shared
// blocks if the free pool alone is too small.
func (m *Manager) Allocate(id, tokens int) error {
	if tokens <= 0 {
		return fmt.Errorf("kvcache: allocate %d tokens", tokens)
	}
	if id < 0 {
		return fmt.Errorf("kvcache: negative sequence id %d", id)
	}
	if m.Has(id) {
		return fmt.Errorf("kvcache: sequence %d already allocated", id)
	}
	need := m.BlocksFor(tokens)
	if need > m.FreeBlocks() {
		m.reclaim(need - m.FreeBlocks())
	}
	if need > m.FreeBlocks() {
		return fmt.Errorf("kvcache: out of memory: need %d blocks, free %d", need, m.FreeBlocks())
	}
	m.allocSeq++
	m.setSeq(id, seqAlloc{tokens: tokens, blocks: need, arrival: m.allocSeq})
	m.used += need
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// appendPlan sizes growing s by n tokens: how the (possibly shared,
// possibly partial) tail block is handled, the resulting private block
// count, and the net new blocks required. A partial shared tail exists
// iff all blocks are shared and the last one is not full; appending
// writes into it, triggering copy-on-write (cow: other sequences still
// reference it) or adoption in place (adopt: sole owner).
func (m *Manager) appendPlan(s seqAlloc, n int) (keyCount, newPriv, grow int, cow, adopt bool) {
	keyCount = len(s.keys)
	if s.blocks == 0 && keyCount > 0 && s.tokens%m.blockSize != 0 {
		if m.shared[s.keys[keyCount-1]].refs > 1 {
			cow = true
		} else {
			adopt = true
		}
		keyCount--
	}
	newPriv = m.BlocksFor(s.tokens+n) - keyCount
	grow = newPriv - s.blocks
	if adopt {
		grow-- // the adopted block converts in place, shared -> private
	}
	return keyCount, newPriv, grow, cow, adopt
}

// CanAppend reports whether sequence id can grow by n tokens,
// including any copy-on-write block the growth would take.
func (m *Manager) CanAppend(id, n int) bool {
	s, ok := m.seq(id)
	if !ok {
		return false
	}
	_, _, grow, _, _ := m.appendPlan(s, n)
	return grow <= m.FreeBlocks()+m.reclaimable
}

// Append grows sequence id by n tokens, taking new blocks as needed.
// If the sequence's last block is a shared partial block (a CoW fork),
// the write triggers copy-on-write: the block is copied into a private
// block when other sequences still reference it, or adopted in place
// when this sequence is the sole owner.
func (m *Manager) Append(id, n int) error {
	s, ok := m.seq(id)
	if !ok {
		return fmt.Errorf("kvcache: append to unknown sequence %d", id)
	}
	if n <= 0 {
		return fmt.Errorf("kvcache: append %d tokens", n)
	}
	keyCount, newPriv, grow, cow, adopt := m.appendPlan(s, n)
	if grow > m.FreeBlocks() {
		m.reclaim(grow - m.FreeBlocks())
	}
	if grow > m.FreeBlocks() {
		return fmt.Errorf("kvcache: out of memory growing sequence %d: need %d blocks, free %d", id, grow, m.FreeBlocks())
	}
	if cow || adopt {
		k := s.keys[keyCount]
		b := m.shared[k]
		if cow {
			b.refs--
			m.stats.CoWCopies++
		} else {
			delete(m.shared, k)
		}
		s.keys = s.keys[:keyCount]
	}
	s.tokens += n
	s.blocks = newPriv
	m.seqs[id-m.base] = s
	m.used += grow
	if m.used > m.peak {
		m.peak = m.used
	}
	return nil
}

// Free releases sequence id's private blocks and drops its references
// on shared blocks. Shared blocks still referenced by other sequences
// stay; blocks whose refcount reaches zero stay resident as warm cache
// until reclaimed under pressure. Freeing an absent id is a no-op,
// matching allocator conventions (a double free drops no refs twice).
func (m *Manager) Free(id int) {
	s, ok := m.seq(id)
	if !ok {
		return
	}
	m.used -= s.blocks
	for _, k := range s.keys {
		b := m.shared[k]
		b.refs--
		if b.refs == 0 {
			m.reclaimable++
		}
	}
	m.seqs[id-m.base] = seqAlloc{}
	m.live--
}

// EvictMostRecent frees the most recently admitted sequences until at
// least needBlocks are available, returning the evicted ids (most recent
// first). This is the paper's recompute strategy: "the KV cache of
// recently arrived requests will be freed once memory capacity is
// saturated". It never evicts ids in keep.
func (m *Manager) EvictMostRecent(needBlocks int, keep map[int]bool) []int {
	// Warm shared blocks are the cheapest space: reclaim them before
	// evicting any live sequence (no recompute needed to restore them).
	if m.FreeBlocks() < needBlocks {
		m.reclaim(needBlocks - m.FreeBlocks())
	}
	if m.FreeBlocks() >= needBlocks {
		return nil
	}
	type cand struct{ id, arrival int }
	cands := make([]cand, 0, m.live)
	for i := range m.seqs {
		id := m.base + i
		if m.seqs[i].arrival == 0 || keep[id] {
			continue
		}
		cands = append(cands, cand{id, m.seqs[i].arrival})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].arrival > cands[j].arrival })
	var evicted []int
	for _, c := range cands {
		if m.FreeBlocks() >= needBlocks {
			break
		}
		m.Free(c.id)
		// Freeing a sharing sequence may only have dropped refs; turn
		// any now-warm blocks into free space before evicting more.
		if m.FreeBlocks() < needBlocks {
			m.reclaim(needBlocks - m.FreeBlocks())
		}
		evicted = append(evicted, c.id)
	}
	return evicted
}

// Snapshot returns the resident (id, tokens) pairs sorted by id, for
// deterministic iteration by schedulers. The dense table iterates in id
// order, so no sort is needed.
func (m *Manager) Snapshot() []SeqInfo {
	out := make([]SeqInfo, 0, m.live)
	for i := range m.seqs {
		s := m.seqs[i]
		if s.arrival == 0 {
			continue
		}
		out = append(out, SeqInfo{ID: m.base + i, Tokens: s.tokens, Blocks: s.blocks + len(s.keys), Shared: len(s.keys)})
	}
	return out
}

// SeqInfo describes one resident sequence.
type SeqInfo struct {
	ID     int
	Tokens int
	// Blocks is the total block footprint; Shared of them are
	// ref-counted shared prefix blocks (counted once fleet-wide).
	Blocks int
	Shared int
}
