package kvcache

import "testing"

// BenchmarkAllocateFree measures the admission-path cost the engine
// pays per prefill batch member.
func BenchmarkAllocateFree(b *testing.B) {
	b.ReportAllocs()
	m, err := NewManager(1<<24, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Allocate(i, 300); err != nil {
			b.Fatal(err)
		}
		m.Free(i)
	}
}

// BenchmarkAppend measures the per-decode-token growth path.
func BenchmarkAppend(b *testing.B) {
	b.ReportAllocs()
	m, err := NewManager(1<<30, 16)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.Allocate(1, 16); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Append(1, 1); err != nil {
			b.StopTimer()
			m.Free(1)
			_ = m.Allocate(1, 16)
			b.StartTimer()
		}
	}
}

// BenchmarkEvictMostRecent measures the recompute path under pressure.
func BenchmarkEvictMostRecent(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, _ := NewManager(16*1024, 16)
		for id := 0; id < 64; id++ {
			_ = m.Allocate(id, 256)
		}
		b.StartTimer()
		m.EvictMostRecent(512, nil)
	}
}

// BenchmarkAllocateSharedHit measures the warm-chain admission path —
// what a prefix-cache hit costs relative to a cold Allocate.
func BenchmarkAllocateSharedHit(b *testing.B) {
	b.ReportAllocs()
	m, err := NewManager(1<<24, 16)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.AllocateShared(0, 512, 1, 512); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		if _, err := m.AllocateShared(i, 512, 1, 512); err != nil {
			b.Fatal(err)
		}
		m.Free(i)
	}
}

// BenchmarkMatchPrefix measures the router's warmth probe.
func BenchmarkMatchPrefix(b *testing.B) {
	b.ReportAllocs()
	m, err := NewManager(1<<24, 16)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.AllocateShared(0, 1024, 1, 1024); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.MatchPrefix(1, 1024) != 1024 {
			b.Fatal("cold probe")
		}
	}
}
