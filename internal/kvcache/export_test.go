package kvcache

import (
	"math/rand"
	"testing"
)

// exportObs captures every observable the round-trip property compares:
// pool accounting, sharing counters, per-sequence footprints, and the
// per-key refcounts of the shared block table.
type exportObs struct {
	used, live, warm, shared int
	stats                    ShareStats
	seqs                     []SeqInfo
	refs                     map[uint64]int
}

func observe(m *Manager) exportObs {
	o := exportObs{
		used:   m.UsedBlocks(),
		live:   m.Live(),
		warm:   m.WarmBlocks(),
		shared: m.SharedBlocks(),
		stats:  m.Stats(),
		seqs:   m.Snapshot(),
		refs:   make(map[uint64]int, len(m.shared)),
	}
	for k, b := range m.shared {
		o.refs[k] = b.refs
	}
	return o
}

func sameObs(t *testing.T, label string, got, want exportObs) {
	t.Helper()
	if got.used != want.used || got.live != want.live || got.warm != want.warm || got.shared != want.shared {
		t.Fatalf("%s: pool diverged: got used=%d live=%d warm=%d shared=%d, want used=%d live=%d warm=%d shared=%d",
			label, got.used, got.live, got.warm, got.shared, want.used, want.live, want.warm, want.shared)
	}
	if got.stats != want.stats {
		t.Fatalf("%s: sharing counters diverged: got %+v, want %+v", label, got.stats, want.stats)
	}
	if len(got.seqs) != len(want.seqs) {
		t.Fatalf("%s: %d sequences vs %d", label, len(got.seqs), len(want.seqs))
	}
	for i := range got.seqs {
		if got.seqs[i] != want.seqs[i] {
			t.Fatalf("%s: sequence %d diverged: %+v vs %+v", label, i, got.seqs[i], want.seqs[i])
		}
	}
	if len(got.refs) != len(want.refs) {
		t.Fatalf("%s: shared table sizes differ: %d vs %d", label, len(got.refs), len(want.refs))
	}
	for k, r := range want.refs {
		if got.refs[k] != r {
			t.Fatalf("%s: key %x refcount %d, want %d", label, k, got.refs[k], r)
		}
	}
}

// Export immediately followed by import must be invisible: ref-counts,
// CoW flags, hit/miss/reclaim counters and every sequence footprint
// identical to a manager that ran the same history without the round
// trip. The two managers run mirrored random workloads (shared
// allocations, appends, forks, frees) with ample capacity, and only one
// of them round-trips sequences through ExportKV/ImportKV.
func TestExportImportRoundTripProperty(t *testing.T) {
	const capTokens, bs = 16 * 1024, 16
	a := mustManager(t, capTokens, bs) // round-trips
	b := mustManager(t, capTokens, bs) // control
	rng := rand.New(rand.NewSource(42))

	live := []int{}
	next := 0
	for step := 0; step < 600; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // allocate, usually onto a shared group chain
			id := next
			next++
			tokens := 1 + rng.Intn(300)
			group := rng.Intn(5)
			prefix := rng.Intn(tokens + 1)
			ha, ea := a.AllocateShared(id, tokens, group, prefix)
			hb, eb := b.AllocateShared(id, tokens, group, prefix)
			if (ea == nil) != (eb == nil) || ha != hb {
				t.Fatalf("step %d: alloc diverged: (%d,%v) vs (%d,%v)", step, ha, ea, hb, eb)
			}
			if ea == nil {
				live = append(live, id)
			}
		case op < 6 && len(live) > 0: // append (exercises CoW/adopt)
			id := live[rng.Intn(len(live))]
			n := 1 + rng.Intn(40)
			ea, eb := a.Append(id, n), b.Append(id, n)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("step %d: append diverged: %v vs %v", step, ea, eb)
			}
		case op < 7 && len(live) > 0: // fork (creates CoW-shared tails)
			parent := live[rng.Intn(len(live))]
			child := next
			next++
			ea, eb := a.Fork(parent, child), b.Fork(parent, child)
			if (ea == nil) != (eb == nil) {
				t.Fatalf("step %d: fork diverged: %v vs %v", step, ea, eb)
			}
			if ea == nil {
				live = append(live, child)
			}
		case op < 8 && len(live) > 0: // free
			i := rng.Intn(len(live))
			id := live[i]
			a.Free(id)
			b.Free(id)
			live = append(live[:i], live[i+1:]...)
		default: // round-trip a live sequence on a only
			if len(live) == 0 {
				continue
			}
			id := live[rng.Intn(len(live))]
			ex, err := a.ExportKV(id)
			if err != nil {
				t.Fatalf("step %d: export %d: %v", step, id, err)
			}
			if a.Has(id) {
				t.Fatalf("step %d: sequence %d still resident after export", step, id)
			}
			if _, err := a.ImportKV(id, ex); err != nil {
				t.Fatalf("step %d: import %d: %v", step, id, err)
			}
			sameObs(t, "after round trip", observe(a), observe(b))
		}
	}
	sameObs(t, "final", observe(a), observe(b))
}

// An import into a different manager references whatever chain blocks
// are already resident there and stores only the rest; the source keeps
// still-shared blocks warm.
func TestExportImportCrossManager(t *testing.T) {
	const bs = 16
	src := mustManager(t, 4096, bs)
	dst := mustManager(t, 4096, bs)

	// Destination already serves the first 2 blocks of group 7's chain.
	if _, err := dst.AllocateShared(0, 2*bs, 7, 2*bs); err != nil {
		t.Fatal(err)
	}
	// Source holds a longer same-group sequence: 4 chain blocks + 1
	// private tail block.
	if _, err := src.AllocateShared(0, 4*bs+8, 7, 4*bs); err != nil {
		t.Fatal(err)
	}
	ex, err := src.ExportKV(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := ex.Blocks(); got != 5 {
		t.Fatalf("export carries %d blocks, want 5", got)
	}
	if src.UsedBlocks() != 4 {
		// The 4 chain blocks stay resident (warm) on the source.
		t.Errorf("source holds %d blocks after export, want 4 warm", src.UsedBlocks())
	}
	if src.WarmBlocks() != 4 {
		t.Errorf("source warm blocks = %d, want 4", src.WarmBlocks())
	}
	if got := dst.ResidentBlocks(ex); got != 2 {
		t.Fatalf("destination resident blocks = %d, want 2", got)
	}
	if got := dst.MissingBlocks(ex); got != 3 {
		t.Fatalf("destination missing blocks = %d, want 3 (2 chain + 1 private)", got)
	}
	before := dst.Stats()
	hit, err := dst.ImportKV(1, ex)
	if err != nil {
		t.Fatal(err)
	}
	if hit != 2 {
		t.Errorf("import referenced %d resident blocks, want 2", hit)
	}
	if dst.Stats() != before {
		t.Errorf("import moved the sharing counters: %+v vs %+v", dst.Stats(), before)
	}
	if dst.Tokens(1) != 4*bs+8 {
		t.Errorf("imported sequence caches %d tokens, want %d", dst.Tokens(1), 4*bs+8)
	}
	// Both sequences share the chain root blocks: 2 original chain +
	// 2 imported chain + 1 imported private, each counted once.
	if dst.UsedBlocks() != 5 {
		t.Errorf("destination used blocks = %d, want 5", dst.UsedBlocks())
	}
	if err := dst.Append(1, 1); err != nil {
		t.Fatalf("append after import: %v", err)
	}
}

// A failed import must roll back completely: no refcount, usage or
// reclaimable drift.
func TestImportOOMRollsBack(t *testing.T) {
	const bs = 16
	dst := mustManager(t, 8*bs, bs)
	if err := dst.Allocate(0, 6*bs); err != nil {
		t.Fatal(err)
	}
	src := mustManager(t, 4096, bs)
	if _, err := src.AllocateShared(0, 4*bs, 3, 4*bs); err != nil {
		t.Fatal(err)
	}
	ex, err := src.ExportKV(0)
	if err != nil {
		t.Fatal(err)
	}
	before := observe(dst)
	if dst.CanImport(ex) {
		t.Fatalf("import of %d blocks into %d free should not fit", ex.Blocks(), dst.FreeBlocks())
	}
	if _, err := dst.ImportKV(1, ex); err == nil {
		t.Fatal("oversized import accepted")
	}
	sameObs(t, "after failed import", observe(dst), before)
}

// CanImport must mirror ImportKV's arithmetic exactly: warm blocks
// that belong to the export's own chain are re-referenced by the
// import (leaving the reclaimable pool), so they must not be counted
// as reclaimable headroom on top of being resident. Regression for a
// confirmed false-positive: CanImport said yes, ImportKV failed OOM.
func TestCanImportMatchesImportUnderWarmChain(t *testing.T) {
	const bs = 16
	m := mustManager(t, 4*bs, bs) // capacity: 4 blocks
	// Leave 2 warm zero-ref chain blocks resident (free=2, warm=2).
	if _, err := m.AllocateShared(0, 2*bs, 9, 2*bs); err != nil {
		t.Fatal(err)
	}
	m.Free(0)
	if m.WarmBlocks() != 2 || m.FreeBlocks() != 2 {
		t.Fatalf("setup: warm=%d free=%d, want 2/2", m.WarmBlocks(), m.FreeBlocks())
	}
	// An export referencing those 2 chain keys plus 3 private blocks
	// needs 3 new blocks but only 2 are genuinely available once the
	// chain is re-referenced.
	src := mustManager(t, 16*bs, bs)
	if _, err := src.AllocateShared(0, 5*bs, 9, 2*bs); err != nil {
		t.Fatal(err)
	}
	ex, err := src.ExportKV(0)
	if err != nil {
		t.Fatal(err)
	}
	can := m.CanImport(ex)
	_, importErr := m.ImportKV(1, ex)
	if can != (importErr == nil) {
		t.Fatalf("CanImport = %v but ImportKV error = %v", can, importErr)
	}
	if can {
		t.Fatalf("import of %d missing blocks into free=2+warm-chain accepted", m.MissingBlocks(ex))
	}
}

// Malformed exports (token/block mismatch) are rejected.
func TestImportRejectsMalformedExport(t *testing.T) {
	m := mustManager(t, 1024, 16)
	if _, err := m.ImportKV(0, ExportedSeq{Tokens: 64, PrivateBlocks: 1}); err == nil {
		t.Error("import of 64 tokens in 1 block accepted")
	}
	if _, err := m.ImportKV(0, ExportedSeq{Tokens: 0, PrivateBlocks: 0}); err == nil {
		t.Error("import of 0 tokens accepted")
	}
	if _, err := m.ImportKV(-1, ExportedSeq{Tokens: 16, PrivateBlocks: 1}); err == nil {
		t.Error("negative id accepted")
	}
}

// FuzzExportImportRebase drives the dense sequence window through its
// rebase boundary: export the only live sequence (the table empties and
// rebases on the next insert), allocate at a distant id, then re-import
// the original id — exercising both the upward reslice and the
// downward rebase of setSeq — and checks the round trip lands intact.
func FuzzExportImportRebase(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(40))
	f.Add(int64(7), uint16(0), uint16(1))
	f.Add(int64(9), uint16(5000), uint16(300))
	f.Fuzz(func(t *testing.T, seed int64, gap uint16, tok uint16) {
		tokens := int(tok)%500 + 1
		m, err := NewManager(4096, 16)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		id0 := rng.Intn(50)
		group := rng.Intn(8)
		if _, err := m.AllocateShared(id0, tokens, group, tokens/2); err != nil {
			t.Fatal(err)
		}
		wantTokens := m.Tokens(id0)
		wantUsed := m.UsedBlocks()
		ex, err := m.ExportKV(id0)
		if err != nil {
			t.Fatal(err)
		}
		if m.Live() != 0 {
			t.Fatalf("live = %d after exporting the only sequence", m.Live())
		}
		// Force a rebase far from id0, both above and (on re-import)
		// below the new base.
		far := id0 + 1 + int(gap)
		if err := m.Allocate(far, 32); err != nil {
			t.Fatal(err)
		}
		if _, err := m.ImportKV(id0, ex); err != nil {
			t.Fatalf("import across rebase: %v", err)
		}
		if got := m.Tokens(id0); got != wantTokens {
			t.Fatalf("tokens after rebase round trip = %d, want %d", got, wantTokens)
		}
		if got := m.UsedBlocks(); got != wantUsed+m.BlocksFor(32) {
			t.Fatalf("used = %d, want %d", got, wantUsed+m.BlocksFor(32))
		}
		if !m.Has(far) || !m.Has(id0) {
			t.Fatal("sequence lost across rebase")
		}
		// The re-imported sequence must still be appendable and
		// freeable without leaking blocks.
		if err := m.Append(id0, 3); err != nil {
			t.Fatal(err)
		}
		m.Free(id0)
		m.Free(far)
		if m.Live() != 0 {
			t.Fatalf("live = %d after freeing everything", m.Live())
		}
		if m.UsedBlocks() != m.SharedBlocks() {
			t.Fatalf("used %d != resident shared %d after freeing all sequences",
				m.UsedBlocks(), m.SharedBlocks())
		}
	})
}

// SnapshotKV must capture the window without detaching the sequence:
// the live sequence keeps appending, the snapshot stays importable into
// a fresh manager at its captured length, and taking it perturbs no
// observable state.
func TestSnapshotKVNonDestructive(t *testing.T) {
	m, err := NewManager(64*16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(0, 40); err != nil {
		t.Fatal(err)
	}
	before := observe(m)
	snap, err := m.SnapshotKV(0)
	if err != nil {
		t.Fatal(err)
	}
	sameObs(t, "after snapshot", observe(m), before)
	if snap.Tokens != 40 || snap.Blocks() != m.BlocksFor(40) {
		t.Fatalf("snapshot = %d tokens / %d blocks, want 40 / %d", snap.Tokens, snap.Blocks(), m.BlocksFor(40))
	}
	// The live sequence moves on; the snapshot must not.
	if err := m.Append(0, 30); err != nil {
		t.Fatal(err)
	}
	if snap.Tokens != 40 {
		t.Fatalf("snapshot tokens moved to %d", snap.Tokens)
	}
	other, err := NewManager(64*16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.ImportKV(7, snap); err != nil {
		t.Fatalf("import of snapshot: %v", err)
	}
	if !other.Has(7) {
		t.Fatal("imported snapshot not resident")
	}
	if _, err := m.SnapshotKV(99); err == nil {
		t.Fatal("snapshot of unknown sequence accepted")
	}
}
