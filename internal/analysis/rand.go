package analysis

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand entry points that build an
// explicitly-seeded source; everything else at package level draws
// from (or reseeds) the process-global source and is forbidden.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// UnseededRand forbids the process-global math/rand source
// everywhere: top-level draws (rand.Intn, rand.Float64, rand.Seed,
// ...) are nondeterministic across runs since Go 1.20 auto-seeding,
// and constructors seeded from the wall clock
// (rand.NewSource(time.Now().UnixNano())) smuggle the same
// nondeterminism in through the side door. Only explicitly-seeded
// sources pass; methods on a *rand.Rand are always fine because
// constructing one deterministically is the checked step.
var UnseededRand = &Analyzer{
	Name:      "unseededrand",
	Doc:       "forbid global math/rand functions and wall-clock-seeded sources",
	NeedTypes: true,
	Run:       runUnseededRand,
}

// isRandPath matches both math/rand generations.
func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runUnseededRand(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := info.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || !isRandPath(fn.Pkg().Path()) {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // method on an explicitly-constructed source
				}
				if !randConstructors[fn.Name()] {
					pass.Reportf(n.Pos(),
						"math/rand.%s draws from the process-global source; construct rand.New(rand.NewSource(seed)) from a config seed",
						fn.Name())
				}
			case *ast.CallExpr:
				fn := calleeFunc(info, n)
				if fn == nil || !isPkgFunc(fn, "math/rand") && !isPkgFunc(fn, "math/rand/v2") {
					return true
				}
				if !randConstructors[fn.Name()] {
					return true
				}
				for _, arg := range n.Args {
					if timeCall := findTimeUse(info, arg); timeCall != nil {
						pass.Reportf(n.Pos(),
							"rand.%s seeded from the wall clock is nondeterministic; seed from a config value",
							fn.Name())
						break
					}
				}
			}
			return true
		})
	}
}

// findTimeUse returns the first reference to a package time function
// inside e, or nil.
func findTimeUse(info *types.Info, e ast.Expr) ast.Node {
	var hit ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && isPkgFunc(fn, "time") {
			hit = sel
		}
		return hit == nil
	})
	return hit
}
