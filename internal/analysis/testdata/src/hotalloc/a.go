// Package hotalloc exercises the hotalloc analyzer.
package hotalloc

import "fmt"

// ring is a toy hot-path structure with a sanctioned scratch buffer.
type ring struct {
	buf     []int
	scratch []int
}

// step is the annotated hot loop with every forbidden allocation.
//
//det:hotpath
func (r *ring) step(x int) int {
	tmp := make([]int, 4)            // want `make allocates in //det:hotpath ring.step`
	r.buf = append(r.buf, x)         // want `append may grow r.buf`
	r.scratch = append(r.scratch, x) // scratch buffers are exempt by name
	f := func() int { return x }     // want `closure literal allocates`
	p := &ring{}                     // want `&composite literal escapes to the heap`
	m := map[string]int{"x": x}      // want `map literal allocates`
	s := []int{x}                    // want `slice literal allocates`
	_ = fmt.Sprint(x)                // want `fmt.Sprint allocates`
	if x < 0 {
		panic(fmt.Sprintf("bad %d", x)) // crash paths are exempt
	}
	return tmp[0] + f() + m["x"] + s[0] + len(p.buf)
}

// cold is unannotated: the same constructs pass here.
func cold(x int) []int {
	out := make([]int, 0, 1)
	return append(out, x)
}
