// Package wallclock exercises the wallclock analyzer.
package wallclock

import "time"

// Stamp reads the host clock in the ways the analyzer forbids.
func Stamp() time.Duration {
	start := time.Now()                  // want `time.Now reads the host wall clock`
	<-time.After(time.Millisecond)       // want `time.After reads the host wall clock`
	t := time.NewTimer(time.Millisecond) // want `time.NewTimer reads the host wall clock`
	t.Stop()
	time.Sleep(0)            // want `time.Sleep reads the host wall clock`
	return time.Since(start) // want `time.Since reads the host wall clock`
}

// Pure does only time arithmetic, which is allowed.
func Pure(d time.Duration) time.Duration { return 2 * d }
