// Package ignores exercises the //det:ignore suppression syntax.
package ignores

import (
	"math/rand"
	"time"
)

// Jitter documents a sanctioned suppression: the wall-clock seed on
// the next line is silenced by a directive that carries a reason.
func Jitter() *rand.Rand {
	//det:ignore unseededrand golden-file fixture for the documented escape hatch
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// Bare shows a reason-less directive: it is itself a finding and
// suppresses nothing.
func Bare() int {
	// want:+1 `det:ignore needs an analyzer name and a reason`
	//det:ignore unseededrand
	return rand.Int() // want `draws from the process-global source`
}

// Unknown names an analyzer that does not exist.
func Unknown() int {
	// want:+1 `det:ignore names unknown analyzer "nosuchlint"`
	//det:ignore nosuchlint the analyzer name is misspelled
	return 0
}

// Stale carries a well-formed directive that suppresses nothing.
func Stale() int {
	// want:+1 `det:ignore unseededrand suppresses no finding`
	//det:ignore unseededrand nothing on the next line draws randomness
	return 0
}
