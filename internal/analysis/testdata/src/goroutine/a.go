// Package goroutine exercises the goroutine analyzer.
package goroutine

// Spawn launches concurrency outside the fabric.
func Spawn(ch chan int) int {
	go send(ch) // want `go statement outside the parallel fabric`
	select {    // want `select outside the parallel fabric`
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// send is a plain helper; calling it synchronously is fine.
func send(ch chan int) { ch <- 1 }
