// Package docs exercises the Docs analyzer in parse-only mode.
package docs

// Documented carries a doc comment and passes.
func Documented() {}

func Exported() {} // want `exported Exported has no doc comment`

// want:+2 `exported Thing has no doc comment`

type Thing struct{}

// want:+2 `exported Limit has no doc comment`

var Limit = 3

// Block docs cover every spec inside the group.
const (
	A = 1
	B = 2
)

func unexported() {}
