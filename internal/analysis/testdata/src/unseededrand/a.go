// Package unseededrand exercises the unseededrand analyzer.
package unseededrand

import (
	"math/rand"
	"time"
)

// Draw exercises forbidden and allowed randomness sources.
func Draw(seed int64) int {
	n := rand.Intn(10)                                      // want `math/rand.Intn draws from the process-global source`
	wall := rand.New(rand.NewSource(time.Now().UnixNano())) // want `seeded from the wall clock`
	good := rand.New(rand.NewSource(seed))
	pick := rand.Float64 // want `math/rand.Float64 draws from the process-global source`
	return n + wall.Intn(10) + good.Intn(10) + int(pick())
}
