// Package maporder exercises the maporder analyzer.
package maporder

import (
	"fmt"
	"sort"

	"repro/internal/metrics"
)

// Collect appends map keys with no later sort.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appends to out in map iteration order`
	}
	return out
}

// CollectSorted is the sanctioned collect-then-sort idiom and passes.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Print writes output in iteration order.
func Print(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt.Printf writes output inside a map range`
	}
}

// Sum accumulates commutatively and passes.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Join concatenates onto an outer string in iteration order.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `concatenates onto s in map iteration order`
	}
	return s
}

// MergeFaults feeds a metrics merge in map iteration order.
func MergeFaults(m map[int]metrics.FaultStats) metrics.FaultStats {
	var total metrics.FaultStats
	for _, fs := range m {
		total.Add(fs) // want `feeds metrics.Add inside a map range`
	}
	return total
}

// LoopLocal appends to a slice scoped inside the loop body and passes.
func LoopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}
