package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// fabricFile is the one file allowed to spawn goroutines and select
// on channels: the conservative parallel fabric, whose epoch barrier
// is what keeps multi-worker runs byte-identical to sequential.
const fabricFile = "internal/fleet/parallel.go"

// Goroutine forbids `go` statements and channel `select` outside the
// parallel fabric (internal/fleet/parallel.go) and the explicit actor
// transport (internal/rpc): all other concurrency must ride the
// control timeline, or replica interleavings leak into reports. The
// two historical exceptions in internal/runtime and internal/fleet
// carry audited //det:ignore directives instead of a scope carve-out.
var Goroutine = &Analyzer{
	Name:  "goroutine",
	Doc:   "forbid go statements and select outside the parallel fabric",
	Scope: func(p *Package) bool { return !strings.HasSuffix(p.ImportPath, "internal/rpc") },
	Run:   runGoroutine,
}

func runGoroutine(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		name := filepath.ToSlash(pass.Pkg.Fset.Position(f.Pos()).Filename)
		if strings.HasSuffix(name, fabricFile) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement outside the parallel fabric; concurrency must stay behind the control timeline (internal/fleet/parallel.go, internal/rpc)")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(),
					"select outside the parallel fabric; channel nondeterminism must stay behind the control timeline (internal/fleet/parallel.go, internal/rpc)")
			}
			return true
		})
	}
}
