package analysis

import "go/ast"

// Docs enforces the repo's doc contract — every exported identifier
// carries a godoc comment. It is the cmd/lintdocs analyzer, ported
// onto the shared framework so both linters parse the tree through
// one loader and share its exemption rules (testdata, dot
// directories, test files). Grouped const/var/type declarations pass
// when the block itself is documented; methods on unexported types
// are held to the same standard because those types routinely leak
// through exported APIs.
var Docs = &Analyzer{
	Name: "docs",
	Doc:  "require a godoc comment on every exported identifier",
	Run:  runDocs,
}

func runDocs(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || d.Doc != nil {
					continue
				}
				pass.Reportf(d.Pos(), "exported %s has no doc comment", funcDisplayName(d))
			case *ast.GenDecl:
				if d.Doc != nil {
					continue // a block doc covers every spec inside
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
							pass.Reportf(s.Pos(), "exported %s has no doc comment", s.Name.Name)
						}
					case *ast.ValueSpec:
						if s.Doc != nil || s.Comment != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								pass.Reportf(n.Pos(), "exported %s has no doc comment", n.Name)
							}
						}
					}
				}
			}
		}
	}
}
