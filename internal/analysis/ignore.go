package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// ignoreDirective is the audited suppression syntax:
// //det:ignore <analyzer> <reason...>. The directive silences that
// analyzer's findings on its own line and on the line immediately
// below, so it reads either trailing the offending expression or on
// its own line directly above it.
const ignoreDirective = "//det:ignore"

// ignore is one parsed //det:ignore comment.
type ignore struct {
	pos      token.Position
	analyzer string
	reason   string
	ok       bool // carries both an analyzer name and a reason
	used     bool // suppressed at least one finding this run
}

// parseIgnores extracts every //det:ignore directive in pkg.
func parseIgnores(pkg *Package) []*ignore {
	var out []*ignore
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, found := strings.CutPrefix(c.Text, ignoreDirective)
				if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				ig := &ignore{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				if len(fields) >= 1 {
					ig.analyzer = fields[0]
				}
				if len(fields) >= 2 {
					ig.reason = strings.Join(fields[1:], " ")
					ig.ok = true
				}
				out = append(out, ig)
			}
		}
	}
	return out
}

// applyIgnores filters raw findings through the //det:ignore
// directives of pkgs and appends the directive audit: malformed
// directives (no reason), directives naming an unknown analyzer, and
// well-formed directives that suppressed nothing are all findings
// themselves, attributed to the pseudo-analyzer "ignore".
func applyIgnores(pkgs []*Package, analyzers []*Analyzer, raw []Finding) []Finding {
	known := make(map[string]bool)
	for _, a := range Registry() {
		known[a.Name] = true
	}
	running := make(map[string]bool)
	for _, a := range analyzers {
		running[a.Name] = true
	}
	var igs []*ignore
	for _, pkg := range pkgs {
		igs = append(igs, parseIgnores(pkg)...)
	}
	out := make([]Finding, 0, len(raw))
	for _, f := range raw {
		suppressed := false
		for _, ig := range igs {
			if ig.ok && ig.analyzer == f.Analyzer && ig.pos.Filename == f.Pos.Filename &&
				(ig.pos.Line == f.Pos.Line || ig.pos.Line == f.Pos.Line-1) {
				ig.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, f)
		}
	}
	for _, ig := range igs {
		switch {
		case !ig.ok:
			out = append(out, Finding{Pos: ig.pos, Analyzer: "ignore",
				Message: "det:ignore needs an analyzer name and a reason: //det:ignore <analyzer> <reason>"})
		case !known[ig.analyzer]:
			out = append(out, Finding{Pos: ig.pos, Analyzer: "ignore",
				Message: "det:ignore names unknown analyzer " + strconv.Quote(ig.analyzer)})
		case running[ig.analyzer] && !ig.used:
			out = append(out, Finding{Pos: ig.pos, Analyzer: "ignore",
				Message: "det:ignore " + ig.analyzer + " suppresses no finding; delete the stale directive"})
		}
	}
	return out
}
