package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc holds //det:hotpath-annotated functions allocation-free:
// make/new, map and slice literals, heap-escaping &T{} literals,
// closures, fmt calls, and append onto anything not named like a
// scratch buffer are findings; panic arguments are exempt because
// crash paths never run in steady state. The PR-4 kernel, deque and
// router loops carry the annotation; their amortized-growth appends carry
// audited //det:ignore directives, so a new allocation in a hot loop
// fails `make detlint` instead of surfacing as a benchmark
// regression three PRs later.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "forbid allocations inside //det:hotpath functions",
	NeedTypes: true,
	Run:       runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	for _, fd := range pass.Hot {
		if fd.Body == nil {
			continue
		}
		name := funcDisplayName(fd)
		info := pass.Pkg.Info
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				pass.Reportf(n.Pos(), "closure literal allocates in //det:hotpath %s; bind the callback once outside the loop", name)
			case *ast.CompositeLit:
				switch pass.compositeKind(n) {
				case "map":
					pass.Reportf(n.Pos(), "map literal allocates in //det:hotpath %s", name)
				case "slice":
					pass.Reportf(n.Pos(), "slice literal allocates in //det:hotpath %s", name)
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
						pass.Reportf(n.Pos(), "&composite literal escapes to the heap in //det:hotpath %s", name)
					}
				}
			case *ast.CallExpr:
				switch builtinName(info, n.Fun) {
				case "panic":
					// Crash-path arguments (panic(fmt.Sprintf(...)))
					// never run in steady state; don't descend.
					return false
				case "make":
					pass.Reportf(n.Pos(), "make allocates in //det:hotpath %s; preallocate outside the loop", name)
				case "new":
					pass.Reportf(n.Pos(), "new allocates in //det:hotpath %s; preallocate outside the loop", name)
				case "append":
					if len(n.Args) > 0 {
						dst := exprName(n.Args[0])
						if !strings.Contains(strings.ToLower(dst), "scratch") {
							pass.Reportf(n.Pos(),
								"append may grow %s in //det:hotpath %s; reuse a scratch buffer or //det:ignore the amortized growth",
								dst, name)
						}
					}
				default:
					if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
						pass.Reportf(n.Pos(), "fmt.%s allocates in //det:hotpath %s", fn.Name(), name)
					}
				}
			}
			return true
		})
	}
}

// compositeKind classifies a composite literal as "map", "slice" or
// "" (value struct/array literals live on the stack and pass).
func (p *Pass) compositeKind(lit *ast.CompositeLit) string {
	t := p.Pkg.TypeOf(lit)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return ""
}
