package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed — and, when the loader type-checks, fully
// resolved — Go package as the analyzers see it. Test files
// (*_test.go) are never loaded: the determinism contract governs
// shipped simulation code, and the test suites are exactly where
// wall-clock timing and ad-hoc goroutines are legitimate.
type Package struct {
	// Name is the package name from the package clauses.
	Name string
	// ImportPath is the module-qualified import path derived from the
	// enclosing go.mod (e.g. repro/internal/sim). Directories outside
	// any module fall back to the directory basename.
	ImportPath string
	// Dir is the directory the package was loaded from.
	Dir string
	// Fset is the loader's shared file set; all positions resolve
	// through it.
	Fset *token.FileSet
	// Files holds the parsed files in deterministic (sorted filename)
	// order.
	Files []*ast.File
	// Types is the type-checked package, nil when the loader ran in
	// parse-only mode.
	Types *types.Package
	// Info carries identifier resolution and expression types, nil in
	// parse-only mode.
	Info *types.Info
}

// IsCommand reports whether the package lives under a main-program
// tree (a cmd/ or examples/ path segment). Commands may read the wall
// clock — they time the simulator itself — while simulation packages
// may not.
func (p *Package) IsCommand() bool {
	for _, seg := range strings.Split(filepath.ToSlash(p.ImportPath), "/") {
		if seg == "cmd" || seg == "examples" {
			return true
		}
	}
	return false
}

// TypeOf returns the type of e, or nil in parse-only mode or when the
// checker recorded nothing for e.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// Loader parses package directories into Packages. One Loader shares a
// file set and (in type-check mode) one source importer, so the
// standard library and intra-module dependencies are parsed once per
// process however many packages are loaded. Both cmd/detlint and
// cmd/lintdocs load through it, so the two linters walk and exempt the
// tree identically.
type Loader struct {
	// TypeCheck enables go/types resolution through the stdlib source
	// importer (importer.ForCompiler "source") — no external
	// dependencies. Parse-only mode (lintdocs) skips it for speed.
	TypeCheck bool
	// Fset is the shared file set for every package this loader
	// produces.
	Fset *token.FileSet

	imp types.Importer
}

// NewLoader returns a loader; typeCheck selects full go/types
// resolution versus parse-only mode.
func NewLoader(typeCheck bool) *Loader {
	return &Loader{TypeCheck: typeCheck, Fset: token.NewFileSet()}
}

// SkipDir reports whether a directory basename is exempt from
// recursive package walks: dot-directories, testdata fixtures and
// vendor trees. The rule is shared by every linter built on this
// package so exemptions cannot drift between them.
func SkipDir(name string) bool {
	return strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor"
}

// Load parses the packages rooted at dirs, in deterministic order.
// With recurse, each root is walked depth-first (skipping SkipDir
// entries below the root itself); otherwise each dir is loaded alone.
// Directories without Go files contribute nothing.
func (l *Loader) Load(recurse bool, dirs ...string) ([]*Package, error) {
	var all []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			all = append(all, dir)
		}
	}
	for _, root := range dirs {
		if !recurse {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			if path != root && SkipDir(d.Name()) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, dir := range all {
		ps, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, ps...)
	}
	return pkgs, nil
}

// loadDir parses one directory into zero or more Packages (multiple
// package clauses in one directory each load separately).
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	astPkgs, err := parser.ParseDir(l.Fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	if len(astPkgs) == 0 {
		return nil, nil
	}
	importPath, err := importPathFor(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(astPkgs))
	for name := range astPkgs {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []*Package
	for _, name := range names {
		ap := astPkgs[name]
		fnames := make([]string, 0, len(ap.Files))
		for fname := range ap.Files {
			fnames = append(fnames, fname)
		}
		sort.Strings(fnames)
		p := &Package{Name: name, ImportPath: importPath, Dir: dir, Fset: l.Fset}
		for _, fname := range fnames {
			p.Files = append(p.Files, ap.Files[fname])
		}
		if l.TypeCheck {
			if err := l.check(p); err != nil {
				return nil, err
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// check resolves p with go/types. Dependencies — standard library and
// module-local alike — are type-checked from source by the shared
// importer, so the linter needs no pre-built export data and no
// third-party loader.
func (l *Loader) check(p *Package) error {
	if l.imp == nil {
		l.imp = importer.ForCompiler(l.Fset, "source", nil)
	}
	conf := types.Config{Importer: l.imp}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	tp, err := conf.Check(p.ImportPath, l.Fset, p.Files, info)
	if err != nil {
		return fmt.Errorf("type-check %s: %w", p.ImportPath, err)
	}
	p.Types, p.Info = tp, info
	return nil
}

// importPathFor derives a module-qualified import path for dir by
// locating the nearest enclosing go.mod. Outside any module the
// directory basename stands in (good enough for fixtures).
func importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for mod := abs; ; {
		data, err := os.ReadFile(filepath.Join(mod, "go.mod"))
		if err == nil {
			modPath := modulePath(data)
			if modPath == "" {
				return "", fmt.Errorf("no module line in %s/go.mod", mod)
			}
			rel, err := filepath.Rel(mod, abs)
			if err != nil {
				return "", err
			}
			if rel == "." {
				return modPath, nil
			}
			return modPath + "/" + filepath.ToSlash(rel), nil
		}
		parent := filepath.Dir(mod)
		if parent == mod {
			return filepath.Base(abs), nil
		}
		mod = parent
	}
}

// modulePath extracts the module path from go.mod contents.
func modulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}
